// IPv6 prefix (CIDR) value type.
//
// Prefixes are stored canonically: host bits are zeroed at construction, so
// two prefixes compare equal iff they denote the same network. The hitlist
// pipeline leans on three lengths in particular: /32 (AS allocation), /48
// (routing + the paper's release granularity), and /64 (subnet/IID split).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv6.h"

namespace v6::net {

class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() = default;

  // Canonicalizes: bits past `length` are cleared. length is clamped to 128.
  Ipv6Prefix(const Ipv6Address& address, int length);

  const Ipv6Address& address() const noexcept { return address_; }
  int length() const noexcept { return length_; }

  bool contains(const Ipv6Address& a) const noexcept;
  // True iff `other` is equal to or more specific than *this.
  bool contains(const Ipv6Prefix& other) const noexcept;

  // The enclosing prefix of the given (shorter or equal) length.
  Ipv6Prefix truncated(int length) const;

  // Number of addresses if length >= 64 (else saturates at u64 max).
  std::uint64_t address_count() const noexcept;

  // First address of the n-th /64 subnet within this prefix (length <= 64).
  Ipv6Address nth_subnet64(std::uint64_t n) const;

  // "2001:db8::/32".
  std::string to_string() const;
  static std::optional<Ipv6Prefix> parse(std::string_view text);

  friend auto operator<=>(const Ipv6Prefix&, const Ipv6Prefix&) = default;

 private:
  Ipv6Address address_;
  int length_ = 0;
};

// Convenience: the /48 and /64 containing an address. These two
// granularities appear throughout the paper's analyses.
Ipv6Prefix slash48_of(const Ipv6Address& a);
Ipv6Prefix slash64_of(const Ipv6Address& a);

struct Ipv6PrefixHash {
  std::size_t operator()(const Ipv6Prefix& p) const noexcept;
};

}  // namespace v6::net

template <>
struct std::hash<v6::net::Ipv6Prefix> {
  std::size_t operator()(const v6::net::Ipv6Prefix& p) const noexcept {
    return v6::net::Ipv6PrefixHash{}(p);
  }
};
