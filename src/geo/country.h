// ISO 3166-1 alpha-2 country codes.
//
// The paper reports all geography at country granularity (MaxMind lookups
// aggregated to country; vantage steering by coarse geolocation). A
// CountryCode packs the two ASCII letters into a u16 so it can key flat maps
// cheaply.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace v6::geo {

class CountryCode {
 public:
  constexpr CountryCode() = default;
  constexpr CountryCode(char a, char b)
      : value_(static_cast<std::uint16_t>((a << 8) | b)) {}

  static std::optional<CountryCode> parse(std::string_view text);

  constexpr std::uint16_t value() const noexcept { return value_; }
  constexpr bool valid() const noexcept { return value_ != 0; }

  std::string to_string() const {
    if (!valid()) return "??";
    return std::string{static_cast<char>(value_ >> 8),
                       static_cast<char>(value_ & 0xff)};
  }

  friend constexpr auto operator<=>(CountryCode, CountryCode) = default;

 private:
  std::uint16_t value_ = 0;
};

// Metadata for a country known to the simulation.
struct CountryInfo {
  CountryCode code;
  std::string_view name;
  double latitude;   // representative centroid
  double longitude;
  // Relative share of the world's NTP-client population; drives the
  // country mix of the generated world (paper: IN/CN/US/BR/ID = 76%).
  double client_weight;
};

// The static registry of countries the simulation draws from (a superset of
// every country named in the paper). Sorted by descending client_weight.
std::span<const CountryInfo> all_countries();

// Lookup by code; nullptr when unknown.
const CountryInfo* find_country(CountryCode code);

// The registry country whose centroid is nearest to (latitude, longitude).
// Used to attribute wardriving-derived locations to countries, the way the
// paper reports its geolocation results per country.
CountryCode nearest_country(double latitude, double longitude);

}  // namespace v6::geo

template <>
struct std::hash<v6::geo::CountryCode> {
  std::size_t operator()(v6::geo::CountryCode c) const noexcept {
    return std::hash<std::uint16_t>{}(c.value());
  }
};
