file(REMOVE_RECURSE
  "../bench/bench_fig4_as_entropy"
  "../bench/bench_fig4_as_entropy.pdb"
  "CMakeFiles/bench_fig4_as_entropy.dir/bench_fig4_as_entropy.cpp.o"
  "CMakeFiles/bench_fig4_as_entropy.dir/bench_fig4_as_entropy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_as_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
