#include "hitlist/tiered_corpus.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "hitlist/corpus_io.h"

namespace v6::hitlist {

namespace fs = std::filesystem;

namespace {

// Unique-per-process suffix for auto-created spill directories: parallel
// ctest jobs share the temp root, so the pid alone is not enough once a
// process builds several engines.
std::uint64_t next_directory_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::string zero_padded(std::uint64_t v) {
  std::string digits = std::to_string(v);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return digits;
}

}  // namespace

TieredCorpus::TieredCorpus(SpillConfig config, obs::Registry* metrics)
    : config_(std::move(config)) {
  if (config_.directory.empty()) {
    const fs::path dir =
        fs::temp_directory_path() /
        ("v6pool-runs-" + std::to_string(::getpid()) + "-" +
         std::to_string(next_directory_id()));
    fs::create_directories(dir);
    config_.directory = dir.string();
    owns_directory_ = true;
  } else {
    owns_directory_ = !fs::exists(config_.directory);
    fs::create_directories(config_.directory);
  }
  if (metrics != nullptr) {
    metric_spills_ = metrics->counter(
        "v6_corpus_spills_total", "Shard tables flushed into on-disk runs");
    metric_spilled_records_ =
        metrics->counter("v6_corpus_spilled_records_total",
                         "Address records written across all spills");
    metric_spill_bytes_ = metrics->counter(
        "v6_corpus_spill_bytes_total", "Run-file bytes written by spills");
    metric_compactions_ = metrics->counter(
        "v6_corpus_compactions_total", "Multi-run merges into a single run");
    metric_runs_ =
        metrics->gauge("v6_corpus_runs", "Live on-disk runs right now");
  }
}

TieredCorpus::~TieredCorpus() {
  if (!config_.keep_files) remove_run_files();
}

void TieredCorpus::remove_run_files() {
  std::error_code ec;  // destructor path: never throw, best effort
  for (const Run& run : runs_) fs::remove(run.path, ec);
  if (owns_directory_) fs::remove(config_.directory, ec);
}

void TieredCorpus::invalidate_caches() {
  merged_size_cache_.reset();
  bounds_cache_.reset();
}

void TieredCorpus::spill(Corpus&& shard) {
  if (shard.size() == 0) return;
  shard.canonicalize();

  Run run;
  // spills + compactions counts every file ever created, so the sequence
  // number stays unique across compactions that delete earlier runs.
  run.path = (fs::path(config_.directory) /
              ("run-" + zero_padded(stats_.spills + stats_.compactions) +
               ".v6run"))
                 .string();
  RunFileStats written;
  {
    std::ofstream out(run.path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("tiered corpus: cannot create run file: " +
                               run.path);
    }
    RunWriter writer(out, {.block_records = config_.block_records});
    for (const AddressRecord& rec : shard.records()) writer.append(rec);
    written = writer.finish();
    out.flush();
    if (!out) {
      throw std::runtime_error("tiered corpus: run write failed: " +
                               run.path);
    }
  }
  shard = Corpus(0);  // release the table before the validation read

  // Re-open and validate immediately: a spill that would not round-trip
  // (disk error, format bug) must fail here, not at analysis time. The
  // validated header and index are cached for segment planning.
  std::ifstream in(run.path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("tiered corpus: cannot reopen run file: " +
                             run.path);
  }
  RunReader reader(in);
  run.records = reader.records();
  run.observations = reader.observations();
  run.bytes = written.bytes;
  run.blocks = reader.blocks();
  runs_.push_back(std::move(run));

  stats_.spills += 1;
  stats_.spilled_records += written.records;
  stats_.disk_bytes += written.bytes;
  metric_spills_.inc();
  metric_spilled_records_.inc(written.records);
  metric_spill_bytes_.inc(written.bytes);
  metric_runs_.set(static_cast<double>(runs_.size()));
  invalidate_caches();
}

std::vector<RecordStream> TieredCorpus::open_streams(
    const net::Ipv6Address* lo,
    std::vector<std::unique_ptr<std::ifstream>>& files,
    std::vector<std::unique_ptr<RunReader>>& readers) const {
  std::vector<RecordStream> streams;
  streams.reserve(runs_.size());
  for (const Run& run : runs_) {
    auto file = std::make_unique<std::ifstream>(run.path, std::ios::binary);
    if (!*file) {
      throw std::runtime_error("tiered corpus: cannot open run file: " +
                               run.path);
    }
    auto reader = std::make_unique<RunReader>(*file);
    auto cursor = (lo != nullptr) ? reader->cursor_at(*lo) : reader->cursor();
    streams.push_back([cur = std::move(cursor)](AddressRecord& out) mutable {
      return cur.next(out);
    });
    files.push_back(std::move(file));
    readers.push_back(std::move(reader));
  }
  return streams;
}

void TieredCorpus::compact() {
  if (runs_.size() <= 1) return;

  const std::string path =
      (fs::path(config_.directory) /
       ("run-" + zero_padded(stats_.spills + stats_.compactions) + ".v6run"))
          .string();
  RunFileStats written;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("tiered corpus: cannot create run file: " +
                               path);
    }
    RunWriter writer(out, {.block_records = config_.block_records});
    {
      std::vector<std::unique_ptr<std::ifstream>> files;
      std::vector<std::unique_ptr<RunReader>> readers;
      merge_record_streams(open_streams(nullptr, files, readers),
                           [&writer](const AddressRecord& rec) {
                             writer.append(rec);
                             return true;
                           });
    }
    written = writer.finish();
    out.flush();
    if (!out) {
      throw std::runtime_error("tiered corpus: run write failed: " + path);
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("tiered corpus: cannot reopen run file: " +
                             path);
  }
  RunReader reader(in);
  Run merged;
  merged.path = path;
  merged.records = reader.records();
  merged.observations = reader.observations();
  merged.bytes = written.bytes;
  merged.blocks = reader.blocks();

  std::error_code ec;
  for (const Run& run : runs_) fs::remove(run.path, ec);
  runs_.clear();
  runs_.push_back(std::move(merged));
  stats_.compactions += 1;
  stats_.disk_bytes = written.bytes;
  metric_compactions_.inc();
  metric_runs_.set(static_cast<double>(runs_.size()));
  invalidate_caches();
}

std::uint64_t TieredCorpus::merged_size() const {
  if (merged_size_cache_.has_value()) return *merged_size_cache_;
  std::uint64_t unique = 0;
  std::vector<std::unique_ptr<std::ifstream>> files;
  std::vector<std::unique_ptr<RunReader>> readers;
  merge_record_streams(open_streams(nullptr, files, readers),
                       [&unique](const AddressRecord&) {
                         ++unique;
                         return true;
                       });
  merged_size_cache_ = unique;
  return unique;
}

std::uint64_t TieredCorpus::merged_size_with(const Corpus& extra) const {
  std::vector<std::unique_ptr<std::ifstream>> files;
  std::vector<std::unique_ptr<RunReader>> readers;
  auto streams = open_streams(nullptr, files, readers);
  // `extra` must be canonicalized: the merge requires strictly-ascending
  // inputs, and a canonical record array is exactly that.
  streams.push_back(
      [span = extra.records(), i = std::size_t{0}](AddressRecord& out)
          mutable {
        if (i >= span.size()) return false;
        out = span[i++];
        return true;
      });
  std::uint64_t unique = 0;
  merge_record_streams(std::move(streams),
                       [&unique](const AddressRecord&) {
                         ++unique;
                         return true;
                       });
  return unique;
}

std::uint64_t TieredCorpus::total_observations() const noexcept {
  std::uint64_t total = 0;
  for (const Run& run : runs_) total += run.observations;
  return total;
}

void TieredCorpus::for_each_merged(
    const std::function<void(const AddressRecord&)>& fn) const {
  std::vector<std::unique_ptr<std::ifstream>> files;
  std::vector<std::unique_ptr<RunReader>> readers;
  merge_record_streams(open_streams(nullptr, files, readers),
                       [&fn](const AddressRecord& rec) {
                         fn(rec);
                         return true;
                       });
}

const std::vector<net::Ipv6Address>& TieredCorpus::segment_bounds() const {
  if (!bounds_cache_.has_value()) {
    std::vector<net::Ipv6Address> bounds;
    for (const Run& run : runs_) {
      for (const RunBlockInfo& block : run.blocks) {
        bounds.push_back(block.first_address);
      }
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    bounds_cache_ = std::move(bounds);
  }
  return *bounds_cache_;
}

void TieredCorpus::scan_segments(
    std::size_t begin, std::size_t end,
    const std::function<void(const AddressRecord&)>& fn) const {
  const auto& bounds = segment_bounds();
  end = std::min(end, bounds.size());
  if (begin >= end) return;
  const net::Ipv6Address lo = bounds[begin];
  const bool bounded = end < bounds.size();
  const net::Ipv6Address hi = bounded ? bounds[end] : net::Ipv6Address{};
  std::vector<std::unique_ptr<std::ifstream>> files;
  std::vector<std::unique_ptr<RunReader>> readers;
  merge_record_streams(open_streams(&lo, files, readers),
                       [&](const AddressRecord& rec) {
                         if (bounded && !(rec.address < hi)) return false;
                         fn(rec);
                         return true;
                       });
}

void TieredCorpus::scan_segment_blocks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::span<const AddressRecord>)>& fn) const {
  // The k-way merge surfaces one aggregated record at a time; stage them
  // in a scan-local buffer and hand off full blocks. Same stream, same
  // order — only the callback granularity changes.
  std::vector<AddressRecord> buffer;
  buffer.reserve(kScanBlockRecords);
  scan_segments(begin, end, [&](const AddressRecord& rec) {
    buffer.push_back(rec);
    if (buffer.size() == kScanBlockRecords) {
      fn(std::span<const AddressRecord>(buffer));
      buffer.clear();
    }
  });
  if (!buffer.empty()) fn(std::span<const AddressRecord>(buffer));
}

std::optional<AddressRecord> TieredCorpus::find(
    const net::Ipv6Address& address) const {
  std::optional<AddressRecord> result;
  for (const Run& run : runs_) {
    std::ifstream file(run.path, std::ios::binary);
    if (!file) {
      throw std::runtime_error("tiered corpus: cannot open run file: " +
                               run.path);
    }
    RunReader reader(file);
    auto cursor = reader.cursor_at(address);
    AddressRecord rec;
    if (!cursor.next(rec) || rec.address != address) continue;
    if (!result.has_value()) {
      result = rec;
    } else {
      result->first_seen = std::min(result->first_seen, rec.first_seen);
      result->last_seen = std::max(result->last_seen, rec.last_seen);
      result->count += rec.count;
      result->vantage_mask |= rec.vantage_mask;
    }
  }
  return result;
}

Corpus TieredCorpus::collapse() const {
  Corpus corpus(static_cast<std::size_t>(merged_size()));
  for_each_merged(
      [&corpus](const AddressRecord& rec) { corpus.add_record(rec); });
  return corpus;  // ascending insertion order: already canonical
}

std::size_t TieredCorpus::save(std::ostream& out) const {
  // Two passes over the merge (count, then write): the snapshot header
  // holds the totals up front and CorpusSnapshotWriter cross-checks them,
  // so a merge that is not repeatable fails loudly at finish().
  CorpusSnapshotWriter writer(out, merged_size(), total_observations());
  for_each_merged(
      [&writer](const AddressRecord& rec) { writer.append(rec); });
  return writer.finish();
}

}  // namespace v6::hitlist
