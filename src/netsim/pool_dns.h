// The NTP Pool's DNS round-robin with coarse geo-steering.
//
// pool.ntp.org resolves differently per client: the pool geolocates the
// resolver/client IP and returns servers near it, rotating among candidates
// (DNS round robin). This stand-in steers by the *IP-geolocation database's*
// country verdict — not ground truth — so MaxMind errors propagate into
// vantage assignment exactly as they would in production, then falls back
// to great-circle-nearest vantage countries.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "geo/country.h"
#include "net/ipv6.h"
#include "netsim/fault_schedule.h"
#include "obs/metrics.h"
#include "sim/world.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace v6::netsim {

class PoolDns {
 public:
  // `global_fraction` models the pool's global-zone fallback: that share
  // of queries is answered with a random worldwide server regardless of
  // client location (under-served regions lean on it heavily).
  // `vantage_share` is the probability a pool query lands on one of *our*
  // vantage servers at all: the pool has thousands of servers and ours
  // are a sliver of the rotation, so most polls are simply invisible to
  // the study. resolve() returns nullptr for those.
  explicit PoolDns(const sim::World& world, double global_fraction = 0.10,
                   double vantage_share = 1.0);

  // Resolves pool.ntp.org for this client: picks one of the vantage
  // servers appropriate for the client's (IP-geolocated) country, with
  // round-robin rotation driven by `rng`. Returns nullptr when the pool
  // has no vantage at all (empty world). Thread-safe: the steering table
  // is materialized at construction and read-only afterwards (collection
  // shards resolve concurrently), and all randomness comes from the
  // caller's `rng`.
  const sim::VantagePoint* resolve(const net::Ipv6Address& client,
                                   util::Rng& rng) const;

  // Health-aware resolution at time t. A vantage whose crash the pool
  // monitor has had `monitoring_delay` to notice (see
  // FaultSchedule::marked_down) is removed from steering, so its share of
  // polls redistributes across the surviving candidates; it re-enters
  // rotation `monitoring_delay` after recovery. When the candidate list is
  // entirely down the pick falls back to any healthy vantage worldwide,
  // and only if *every* vantage is marked down does it answer from the
  // unfiltered list (the real pool never returns an empty answer while it
  // has servers). `steered_away`, when non-null, is set to true iff health
  // filtering removed at least one candidate from the consulted list.
  // With no health monitor attached (or none of the candidates down) this
  // behaves bit-identically to the time-free overload.
  const sim::VantagePoint* resolve(const net::Ipv6Address& client,
                                   util::Rng& rng, util::SimTime t,
                                   bool* steered_away = nullptr) const;

  // Attaches the pool-monitoring view of a fault schedule. The schedule is
  // read-only and shared; pass nullptr to detach.
  void set_health_monitor(const FaultSchedule* faults,
                          util::SimDuration monitoring_delay) noexcept {
    health_ = faults;
    monitoring_delay_ = monitoring_delay;
  }

  // Wires steering counters into `registry` (nullptr detaches). Counter
  // increments are relaxed atomics, so concurrent const resolve() calls
  // stay race-free; the counters never feed back into steering decisions.
  void set_metrics(obs::Registry* registry);

  // The steering candidates for a country (exposed for tests): vantages in
  // the country itself if any, else those of the nearest vantage country.
  const std::vector<const sim::VantagePoint*>& candidates(
      geo::CountryCode country) const;

 private:
  const sim::VantagePoint* pick(
      const std::vector<const sim::VantagePoint*>& list, util::Rng& rng,
      util::SimTime t, bool* steered_away) const;

  const sim::World* world_;
  double global_fraction_;
  double vantage_share_;
  const FaultSchedule* health_ = nullptr;
  util::SimDuration monitoring_delay_ = 0;
  std::unordered_map<geo::CountryCode, std::vector<const sim::VantagePoint*>>
      by_country_;
  // Country (any known to the registry) -> steering candidates. Filled
  // for every registry country in the constructor so lookups never write
  // (concurrent resolve() calls would otherwise race on a lazy cache).
  std::unordered_map<geo::CountryCode,
                     std::vector<const sim::VantagePoint*>>
      steer_cache_;
  std::vector<const sim::VantagePoint*> all_;
  obs::Counter metric_resolutions_;
  obs::Counter metric_steer_flips_;
};

}  // namespace v6::netsim
