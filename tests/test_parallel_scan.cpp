#include "analysis/parallel_scan.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "analysis/address_categories.h"
#include "analysis/as_entropy.h"
#include "analysis/dataset_compare.h"
#include "analysis/entropy_distribution.h"
#include "analysis/lifetimes.h"
#include "core/study.h"

namespace v6::analysis {
namespace {

// Bitwise double comparison: EXPECT_EQ would call 0.0 == -0.0 equal; the
// parallel engine promises the same *bits* as the serial path.
void expect_bits_eq(const std::vector<double>& a,
                    const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "sample " << i;
  }
}

hitlist::Corpus synthetic_corpus(std::size_t n) {
  hitlist::Corpus corpus(1 << 10);
  for (std::uint64_t i = 0; i < n; ++i) {
    corpus.add(net::Ipv6Address::from_u64(0x2001'0db8'0000'0000ULL | (i / 3),
                                          i * 0x9e3779b97f4a7c15ULL),
               static_cast<util::SimTime>(i % 977),
               static_cast<std::uint8_t>(i % 27));
  }
  return corpus;
}

TEST(ParallelScanEngine, ShardConcatenationReproducesSerialOrder) {
  const auto corpus = synthetic_corpus(5000);
  std::vector<std::uint64_t> serial;
  corpus.for_each([&serial](const hitlist::AddressRecord& rec) {
    serial.push_back(rec.address.iid());
  });

  for (unsigned threads : {2u, 4u, 7u}) {
    AnalysisConfig config;
    config.threads = threads;
    const auto visited = scan_corpus<std::vector<std::uint64_t>>(
        corpus, config, "visit-order",
        [] { return std::vector<std::uint64_t>(); },
        [](std::vector<std::uint64_t>& v, const hitlist::AddressRecord& rec) {
          v.push_back(rec.address.iid());
        },
        [](std::vector<std::uint64_t>& into,
           std::vector<std::uint64_t>&& from) {
          into.insert(into.end(), from.begin(), from.end());
        });
    EXPECT_EQ(visited, serial) << "threads=" << threads;
  }
}

TEST(ParallelScanEngine, OnePassServesMultipleKernels) {
  const auto corpus = synthetic_corpus(2000);
  AnalysisConfig config;
  config.threads = 4;
  ParallelScan scan(config);
  std::uint64_t records = 0;
  std::uint64_t observations = 0;
  scan.add_kernel<std::uint64_t>(
      "records", [] { return std::uint64_t{0}; },
      [](std::uint64_t& n, const hitlist::AddressRecord&) { ++n; },
      [](std::uint64_t& into, std::uint64_t&& from) { into += from; },
      [&records](std::uint64_t&& n) { records = n; });
  scan.add_kernel<std::uint64_t>(
      "observations", [] { return std::uint64_t{0}; },
      [](std::uint64_t& n, const hitlist::AddressRecord& rec) {
        n += rec.count;
      },
      [](std::uint64_t& into, std::uint64_t&& from) { into += from; },
      [&observations](std::uint64_t&& n) { observations = n; });
  scan.run(corpus);

  EXPECT_EQ(records, corpus.size());
  EXPECT_EQ(observations, corpus.total_observations());
  ASSERT_EQ(scan.stats().size(), 2u);
  for (const auto& stat : scan.stats()) {
    EXPECT_EQ(stat.records, corpus.size());
    EXPECT_EQ(stat.threads, 4u);
    EXPECT_LE(stat.merge_us, stat.wall_us);
  }
  EXPECT_EQ(scan.stats()[0].stage, "records");
  EXPECT_EQ(scan.stats()[1].stage, "observations");
}

TEST(ParallelScanEngine, EmptyCorpusAndMoreShardsThanSlots) {
  hitlist::Corpus empty(1 << 6);
  AnalysisConfig config;
  config.threads = 16;
  const auto n = scan_corpus<std::uint64_t>(
      empty, config, "empty", [] { return std::uint64_t{0}; },
      [](std::uint64_t& c, const hitlist::AddressRecord&) { ++c; },
      [](std::uint64_t& into, std::uint64_t&& from) { into += from; });
  EXPECT_EQ(n, 0u);
}

TEST(ParallelScanEngine, ZeroThreadsResolvesToHardware) {
  AnalysisConfig config;
  config.threads = 0;
  EXPECT_GE(config.resolved_threads(), 1u);
  config.threads = 3;
  EXPECT_EQ(config.resolved_threads(), 3u);
}

// ---------------------------------------------------------------------------
// Parallel == serial bit-identity over a seeded Study corpus, the property
// the whole port hangs on: threads ∈ {2, 4} must reproduce the threads=1
// result exactly — same doubles, same ordering.

class ParallelIdentityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::StudyConfig config;
    config.world.seed = 20230807;
    config.world.total_sites = 400;
    config.pool_capture_share = 1.0;
    config.world.study_duration = 30 * util::kDay;
    config.hitlist_campaign.start = 2 * util::kDay;
    config.hitlist_campaign.duration = 4 * util::kWeek;
    config.caida_campaign.start = 2 * util::kDay;
    config.caida_campaign.duration = 10 * util::kDay;
    config.caida_campaign.slash48_fraction = 0.005;
    study_ = new core::Study(config);
    study_->collect();
    study_->run_campaigns();
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }

  static const hitlist::Corpus& ntp() { return study_->results().ntp; }
  static const hitlist::Corpus& hitlist_corpus() {
    return study_->results().hitlist.corpus;
  }
  static const sim::World& world() { return study_->world(); }
  static AnalysisConfig threaded(unsigned threads) {
    AnalysisConfig config;
    config.threads = threads;
    return config;
  }

  static core::Study* study_;
};

core::Study* ParallelIdentityTest::study_ = nullptr;

TEST_F(ParallelIdentityTest, EntropyDistribution) {
  const auto serial = entropy_distribution(ntp(), threaded(1));
  ASSERT_GT(serial.count(), 1000u);
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = entropy_distribution(ntp(), threaded(threads));
    expect_bits_eq(parallel.sorted_samples(), serial.sorted_samples());
  }
}

TEST_F(ParallelIdentityTest, IntersectionScans) {
  const auto serial =
      intersection_entropy_distribution(ntp(), hitlist_corpus(), threaded(1));
  const auto serial_n = intersection_size(ntp(), hitlist_corpus(), threaded(1));
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = intersection_entropy_distribution(
        ntp(), hitlist_corpus(), threaded(threads));
    expect_bits_eq(parallel.sorted_samples(), serial.sorted_samples());
    EXPECT_EQ(intersection_size(ntp(), hitlist_corpus(), threaded(threads)),
              serial_n);
  }
}

TEST_F(ParallelIdentityTest, Table1Summary) {
  const auto serial = summarize_dataset("hitlist", hitlist_corpus(), world(),
                                        &ntp(), threaded(1));
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = summarize_dataset("hitlist", hitlist_corpus(),
                                            world(), &ntp(),
                                            threaded(threads));
    EXPECT_EQ(parallel.addresses, serial.addresses);
    EXPECT_EQ(parallel.asns, serial.asns);
    EXPECT_EQ(parallel.slash48s, serial.slash48s);
    EXPECT_EQ(parallel.common_addresses, serial.common_addresses);
    EXPECT_EQ(parallel.common_asns, serial.common_asns);
    EXPECT_EQ(parallel.common_slash48s, serial.common_slash48s);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parallel.addrs_per_slash48),
              std::bit_cast<std::uint64_t>(serial.addrs_per_slash48));
  }
}

TEST_F(ParallelIdentityTest, AsTypeFractions) {
  const auto serial = as_type_fractions(ntp(), world(), threaded(1));
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = as_type_fractions(ntp(), world(), threaded(threads));
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].first, serial[i].first);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(parallel[i].second),
                std::bit_cast<std::uint64_t>(serial[i].second));
    }
  }
}

TEST_F(ParallelIdentityTest, AddressLifetimes) {
  const std::vector<util::SimDuration> points = {
      0, util::kDay, util::kWeek, util::kMonth, 6 * util::kMonth};
  const auto serial = address_lifetimes(ntp(), points, threaded(1));
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = address_lifetimes(ntp(), points, threaded(threads));
    EXPECT_EQ(parallel.total, serial.total);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parallel.fraction_once),
              std::bit_cast<std::uint64_t>(serial.fraction_once));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parallel.fraction_week),
              std::bit_cast<std::uint64_t>(serial.fraction_week));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parallel.fraction_month),
              std::bit_cast<std::uint64_t>(serial.fraction_month));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parallel.fraction_six_months),
              std::bit_cast<std::uint64_t>(serial.fraction_six_months));
    ASSERT_EQ(parallel.ccdf.size(), serial.ccdf.size());
    for (std::size_t i = 0; i < serial.ccdf.size(); ++i) {
      EXPECT_EQ(parallel.ccdf[i].first, serial.ccdf[i].first);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(parallel.ccdf[i].second),
                std::bit_cast<std::uint64_t>(serial.ccdf[i].second));
    }
  }
}

TEST_F(ParallelIdentityTest, IidLifetimes) {
  const std::vector<util::SimDuration> points = {0, util::kDay, util::kWeek,
                                                 util::kMonth};
  const auto serial = iid_lifetimes(ntp(), points, threaded(1));
  ASSERT_GT(serial.unique_iids, 0u);
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = iid_lifetimes(ntp(), points, threaded(threads));
    EXPECT_EQ(parallel.unique_iids, serial.unique_iids);
    for (std::size_t band = 0; band < serial.bands.size(); ++band) {
      const auto& sb = serial.bands[band];
      const auto& pb = parallel.bands[band];
      EXPECT_EQ(pb.total, sb.total);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(pb.fraction_once),
                std::bit_cast<std::uint64_t>(sb.fraction_once));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(pb.fraction_week),
                std::bit_cast<std::uint64_t>(sb.fraction_week));
      ASSERT_EQ(pb.cdf.size(), sb.cdf.size());
      for (std::size_t i = 0; i < sb.cdf.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(pb.cdf[i].second),
                  std::bit_cast<std::uint64_t>(sb.cdf[i].second));
      }
    }
  }
}

TEST_F(ParallelIdentityTest, AsEntropyProfiles) {
  const auto serial = top_as_entropy_profiles(ntp(), world(), 10, 0,
                                              40 * util::kDay, threaded(1));
  ASSERT_FALSE(serial.empty());
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = top_as_entropy_profiles(
        ntp(), world(), 10, 0, 40 * util::kDay, threaded(threads));
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].as_index, serial[i].as_index);
      EXPECT_EQ(parallel[i].asn, serial[i].asn);
      EXPECT_EQ(parallel[i].addresses, serial[i].addresses);
      expect_bits_eq(parallel[i].entropy.sorted_samples(),
                     serial[i].entropy.sorted_samples());
    }
  }
}

TEST_F(ParallelIdentityTest, AddressCategories) {
  const auto serial = categorize_corpus(ntp(), world(), 0, 40 * util::kDay,
                                        {}, threaded(1));
  ASSERT_GT(serial.total, 0u);
  for (unsigned threads : {2u, 4u}) {
    const auto parallel = categorize_corpus(ntp(), world(), 0,
                                            40 * util::kDay, {},
                                            threaded(threads));
    EXPECT_EQ(parallel.total, serial.total);
    EXPECT_EQ(parallel.counts, serial.counts);
  }
}

TEST_F(ParallelIdentityTest, StageStatsAreRecorded) {
  std::vector<AnalysisStageStats> stats;
  entropy_distribution(ntp(), threaded(4), &stats);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].stage, "entropy_distribution");
  EXPECT_EQ(stats[0].threads, 4u);
  EXPECT_EQ(stats[0].records, ntp().size());
  EXPECT_LE(stats[0].merge_us, stats[0].wall_us);

  stats.clear();
  categorize_corpus(ntp(), world(), 0, 40 * util::kDay, {}, threaded(2),
                    &stats);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].stage, "categorize_corpus/per_as");
  EXPECT_EQ(stats[1].stage, "categorize_corpus/classify");
}

TEST_F(ParallelIdentityTest, StudyRunAnalysisUsesKnobAndRecordsStats) {
  study_->run_analysis();
  const auto& report = study_->results().analysis;
  EXPECT_GT(report.entropy.count(), 1000u);
  ASSERT_EQ(report.table1.size(), 3u);
  EXPECT_EQ(report.table1[0].name, "NTP corpus");
  EXPECT_EQ(report.table1[0].addresses, ntp().size());
  EXPECT_GT(report.address_lifetimes.total, 0u);
  EXPECT_GT(report.iid_lifetimes.unique_iids, 0u);
  EXPECT_FALSE(report.top_ases.empty());
  EXPECT_GT(report.categories.total, 0u);
  EXPECT_FALSE(report.stage_stats.empty());
  for (const auto& stat : report.stage_stats) {
    EXPECT_EQ(stat.threads, 1u) << stat.stage;  // default knob is serial
  }
}

}  // namespace
}  // namespace v6::analysis
