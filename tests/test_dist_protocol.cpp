// V6DIST01 framing: round-trips, exhaustive hostile-input sweeps
// (corruption and truncation at every byte offset), and the frame-log
// linter's accept/reject behavior.
#include "dist/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace v6::dist {
namespace {

Frame sample_frame() {
  Frame frame;
  frame.type = FrameType::kCheckpointUpload;
  frame.sender = 3;
  frame.subset = 1;
  frame.epoch = 2;
  frame.seq = 7;
  frame.sim_time = 604800;
  Artifact artifact;
  artifact.path = "ckpt/s1-e2-t604800.v6ckpt";
  artifact.bytes = 12345;
  artifact.crc = 0xdeadbeef;
  frame.payload = encode_artifact(artifact);
  return frame;
}

std::string_view as_view(const std::vector<std::uint8_t>& bytes) {
  return std::string_view(reinterpret_cast<const char*>(bytes.data()),
                          bytes.size());
}

TEST(DistProtocol, FrameRoundTrip) {
  const Frame in = sample_frame();
  const std::vector<std::uint8_t> bytes = encode_frame(in);
  ASSERT_GE(bytes.size(), kFrameHeaderBytes + 4);

  std::size_t consumed = 0;
  const Frame out = decode_frame(bytes, &consumed);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.sender, in.sender);
  EXPECT_EQ(out.subset, in.subset);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.sim_time, in.sim_time);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(DistProtocol, EmptyPayloadFrameRoundTrip) {
  Frame in;
  in.type = FrameType::kHeartbeat;
  in.sender = 12;
  in.subset = kNoSubset;
  in.seq = 0;
  const std::vector<std::uint8_t> bytes = encode_frame(in);
  const Frame out = decode_frame(bytes);
  EXPECT_EQ(out.type, FrameType::kHeartbeat);
  EXPECT_EQ(out.sender, 12u);
  EXPECT_TRUE(out.payload.empty());
}

TEST(DistProtocol, LeaseGrantRoundTrip) {
  LeaseGrant in;
  in.window_start = 100;
  in.window_end = 2000;
  in.chunk_interval = 250;
  in.resume_from = 600;
  in.subset_count = 4;
  in.checkpoint_path = "ckpt/s2-e1-t600.v6ckpt";
  const LeaseGrant out = decode_lease_grant(encode_lease_grant(in));
  EXPECT_EQ(out.window_start, in.window_start);
  EXPECT_EQ(out.window_end, in.window_end);
  EXPECT_EQ(out.chunk_interval, in.chunk_interval);
  EXPECT_EQ(out.resume_from, in.resume_from);
  EXPECT_EQ(out.subset_count, in.subset_count);
  EXPECT_EQ(out.checkpoint_path, in.checkpoint_path);
}

TEST(DistProtocol, ArtifactRoundTrip) {
  Artifact in;
  in.path = "ckpt/s0-final-e3.v6ckpt";
  in.bytes = 1u << 30;
  in.crc = 0x12345678;
  const Artifact out = decode_artifact(encode_artifact(in));
  EXPECT_EQ(out.path, in.path);
  EXPECT_EQ(out.bytes, in.bytes);
  EXPECT_EQ(out.crc, in.crc);
}

// The exhaustive hostile-input sweep the header promises: flip every
// single byte of an encoded frame and the decoder must throw (bad magic,
// bad CRC, bad length — never a silent misparse, never UB). The
// fault-tolerance story rests on this: a worker dying mid-post can
// truncate, and a hostile peer can say anything.
TEST(DistProtocol, CorruptionAtEveryByteOffsetIsRejected) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> evil = bytes;
    evil[i] ^= 0x5a;
    EXPECT_THROW(decode_frame(evil), std::runtime_error)
        << "byte " << i << " flipped but the frame still decoded";
  }
}

TEST(DistProtocol, TruncationAtEveryLengthIsRejected) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(decode_frame(cut), std::runtime_error)
        << "frame truncated to " << len << " bytes still decoded";
  }
}

TEST(DistProtocol, OversizedPayloadLengthIsRejected) {
  std::vector<std::uint8_t> bytes = encode_frame(sample_frame());
  // payload_len lives at offset 37..40 (big-endian u32); claim 2 MiB.
  bytes[37] = 0x00;
  bytes[38] = 0x20;
  bytes[39] = 0x00;
  bytes[40] = 0x00;
  EXPECT_THROW(decode_frame(bytes), std::runtime_error);
}

TEST(DistProtocol, LeaseGrantTrailingBytesRejected) {
  std::vector<std::uint8_t> payload = encode_lease_grant(LeaseGrant{});
  payload.push_back(0);
  EXPECT_THROW(decode_lease_grant(payload), std::runtime_error);
}

TEST(DistProtocol, ArtifactCorruptionSweep) {
  Artifact artifact;
  artifact.path = "ckpt/x.v6ckpt";
  artifact.bytes = 99;
  const std::vector<std::uint8_t> payload = encode_artifact(artifact);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::vector<std::uint8_t> cut(payload.begin(),
                                        payload.begin() + len);
    EXPECT_THROW(decode_artifact(cut), std::runtime_error)
        << "artifact truncated to " << len << " bytes still decoded";
  }
}

TEST(DistProtocol, ValidateArtifactPath) {
  EXPECT_FALSE(validate_artifact_path("ckpt/s0-e0-t0.v6ckpt").has_value());
  EXPECT_TRUE(validate_artifact_path("").has_value());
  EXPECT_TRUE(validate_artifact_path("/etc/passwd").has_value());
  EXPECT_TRUE(validate_artifact_path("../secrets").has_value());
  EXPECT_TRUE(validate_artifact_path("ckpt/../../x").has_value());
  EXPECT_TRUE(validate_artifact_path("a\\b").has_value());
  EXPECT_TRUE(validate_artifact_path(std::string("a\0b", 3)).has_value());
  EXPECT_TRUE(validate_artifact_path("a\nb").has_value());
  EXPECT_TRUE(validate_artifact_path(std::string(5000, 'a')).has_value());
  // ".." only as a whole segment; "..x" is a legal (odd) name.
  EXPECT_FALSE(validate_artifact_path("ckpt/..odd").has_value());
}

// --- obs report ------------------------------------------------------------

ObsReport sample_obs_report() {
  ObsReport report;
  obs::MetricSample counter;
  counter.name = "v6_collector_polls_total";
  counter.help = "NTP poll packets attempted by pool clients";
  counter.type = obs::MetricType::kCounter;
  counter.counter_value = 113828;
  report.snapshot.samples.push_back(counter);
  obs::MetricSample gauge;
  gauge.name = "v6_worker_backlog";
  gauge.type = obs::MetricType::kGauge;
  gauge.labels = {{"stage", "collect"}};
  gauge.gauge_value = -2.5;
  report.snapshot.samples.push_back(gauge);
  obs::MetricSample hist;
  hist.name = "v6_serve_latency_us";
  hist.type = obs::MetricType::kHistogram;
  hist.labels = {{"kind", "point"}};
  hist.histogram.bounds = {1.0, 4.0};
  hist.histogram.counts = {1, 2, 1};
  hist.histogram.count = 4;
  hist.histogram.sum = 17.25;
  report.snapshot.samples.push_back(hist);

  obs::WindowRecord window;
  window.begin = 0;
  window.end = 604800;
  window.stage = "collect";
  window.counters.push_back({"v6_collector_records_total", {}, 2189});
  window.gauges.push_back({"depth", {{"kind", "a"}}, 1.5});
  window.vantages.push_back({2, 10, 9, 1, 8});
  window.histograms.push_back({"wall_us", {}, 3, 123.5});
  report.windows.push_back(std::move(window));
  return report;
}

TEST(DistProtocol, ObsReportRoundTrip) {
  const ObsReport in = sample_obs_report();
  const ObsReport out = decode_obs_report(encode_obs_report(in));
  ASSERT_EQ(out.snapshot.samples.size(), 3u);
  EXPECT_EQ(out.snapshot.samples[0].name, "v6_collector_polls_total");
  EXPECT_EQ(out.snapshot.samples[0].help,
            "NTP poll packets attempted by pool clients");
  EXPECT_EQ(out.snapshot.samples[0].counter_value, 113828u);
  EXPECT_EQ(out.snapshot.samples[1].labels, in.snapshot.samples[1].labels);
  EXPECT_EQ(out.snapshot.samples[1].gauge_value, -2.5);
  EXPECT_EQ(out.snapshot.samples[2].histogram.bounds,
            in.snapshot.samples[2].histogram.bounds);
  EXPECT_EQ(out.snapshot.samples[2].histogram.counts,
            in.snapshot.samples[2].histogram.counts);
  EXPECT_EQ(out.snapshot.samples[2].histogram.count, 4u);
  EXPECT_EQ(out.snapshot.samples[2].histogram.sum, 17.25);
  EXPECT_TRUE(out.snapshot.spans.empty());
  ASSERT_EQ(out.windows.size(), 1u);
  EXPECT_EQ(out.windows[0].begin, 0);
  EXPECT_EQ(out.windows[0].end, 604800);
  EXPECT_EQ(out.windows[0].stage, "collect");
  ASSERT_EQ(out.windows[0].counters.size(), 1u);
  EXPECT_EQ(out.windows[0].counters[0].delta, 2189u);
  ASSERT_EQ(out.windows[0].gauges.size(), 1u);
  EXPECT_EQ(out.windows[0].gauges[0].value, 1.5);
  ASSERT_EQ(out.windows[0].vantages.size(), 1u);
  EXPECT_EQ(out.windows[0].vantages[0].polls, 10u);
  ASSERT_EQ(out.windows[0].histograms.size(), 1u);
  EXPECT_EQ(out.windows[0].histograms[0].count_delta, 3u);
  EXPECT_EQ(out.windows[0].histograms[0].sum_delta, 123.5);
}

TEST(DistProtocol, EmptyObsReportRoundTrip) {
  const ObsReport out = decode_obs_report(encode_obs_report(ObsReport{}));
  EXPECT_TRUE(out.snapshot.samples.empty());
  EXPECT_TRUE(out.windows.empty());
}

// The same hostile-input promise the frame codec makes: truncating the
// payload at ANY byte offset must throw, never misparse or allocate from
// an unchecked length (every element count is validated against the bytes
// actually remaining).
TEST(DistProtocol, ObsReportTruncationAtEveryLengthIsRejected) {
  const std::vector<std::uint8_t> payload =
      encode_obs_report(sample_obs_report());
  ASSERT_GT(payload.size(), 8u);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::vector<std::uint8_t> cut(payload.begin(),
                                        payload.begin() + len);
    EXPECT_THROW(decode_obs_report(cut), std::runtime_error)
        << "obs report truncated to " << len << " bytes still decoded";
  }
}

TEST(DistProtocol, ObsReportTrailingBytesRejected) {
  std::vector<std::uint8_t> payload = encode_obs_report(sample_obs_report());
  payload.push_back(0);
  EXPECT_THROW(decode_obs_report(payload), std::runtime_error);
}

TEST(DistProtocol, ObsReportHugeCountClaimsRejected) {
  // A hostile sample_count far beyond the payload must bounce on the
  // bounds check, not reserve gigabytes.
  std::vector<std::uint8_t> payload = {0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW(decode_obs_report(payload), std::runtime_error);
}

// --- linter ----------------------------------------------------------------

std::vector<std::uint8_t> lint_log(std::vector<Frame> frames) {
  std::vector<std::uint8_t> log;
  for (const Frame& frame : frames) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    log.insert(log.end(), bytes.begin(), bytes.end());
  }
  return log;
}

Frame hello(std::uint32_t sender, std::uint64_t seq) {
  Frame frame;
  frame.type = FrameType::kHello;
  frame.sender = sender;
  frame.subset = kNoSubset;
  frame.seq = seq;
  return frame;
}

TEST(DistLint, EmptyLogIsClean) {
  EXPECT_FALSE(lint_dist_frames("").has_value());
}

TEST(DistLint, WellFormedLogIsClean) {
  Frame grant;
  grant.type = FrameType::kLeaseGrant;
  grant.sender = kCoordinatorId;
  grant.subset = 0;
  grant.seq = 0;
  LeaseGrant lease;
  lease.window_start = 0;
  lease.window_end = 1000;
  lease.chunk_interval = 100;
  lease.subset_count = 2;
  grant.payload = encode_lease_grant(lease);

  Frame upload;
  upload.type = FrameType::kCheckpointUpload;
  upload.sender = 1;
  upload.subset = 0;
  upload.seq = 1;
  Artifact artifact;
  artifact.path = "ckpt/s0-e0-t100.v6ckpt";
  upload.payload = encode_artifact(artifact);

  const auto log = lint_log({hello(1, 0), grant, upload});
  EXPECT_FALSE(lint_dist_frames(as_view(log)).has_value());
}

TEST(DistLint, TrailingGarbageIsReported) {
  auto log = lint_log({hello(1, 0)});
  log.push_back(0x56);  // half a magic
  const auto problem = lint_dist_frames(as_view(log));
  ASSERT_TRUE(problem.has_value());
}

TEST(DistLint, SeqMustStartAtZeroPerSender) {
  const auto log = lint_log({hello(1, 5)});
  const auto problem = lint_dist_frames(as_view(log));
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("seq"), std::string::npos) << *problem;
}

TEST(DistLint, SeqMustStrictlyIncrease) {
  const auto log = lint_log({hello(1, 0), hello(1, 0)});
  EXPECT_TRUE(lint_dist_frames(as_view(log)).has_value());
}

TEST(DistLint, IndependentSendersHaveIndependentSeqs) {
  const auto log = lint_log({hello(1, 0), hello(2, 0), hello(1, 1)});
  EXPECT_FALSE(lint_dist_frames(as_view(log)).has_value());
}

TEST(DistLint, GrantsMustComeFromCoordinator) {
  Frame grant;
  grant.type = FrameType::kLeaseGrant;
  grant.sender = 3;  // a worker impersonating the coordinator
  grant.subset = 0;
  grant.seq = 0;
  LeaseGrant lease;
  lease.window_end = 10;
  lease.chunk_interval = 1;
  grant.payload = encode_lease_grant(lease);
  const auto log = lint_log({grant});
  const auto problem = lint_dist_frames(as_view(log));
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("coordinator"), std::string::npos) << *problem;
}

TEST(DistLint, UploadWithHostilePathIsReported) {
  Frame upload;
  upload.type = FrameType::kCheckpointUpload;
  upload.sender = 1;
  upload.subset = 0;
  upload.seq = 0;
  Artifact artifact;
  artifact.path = "../../etc/passwd";
  upload.payload = encode_artifact(artifact);
  const auto log = lint_log({upload});
  EXPECT_TRUE(lint_dist_frames(as_view(log)).has_value());
}

TEST(DistLint, HeartbeatWithPayloadIsReported) {
  Frame beat;
  beat.type = FrameType::kHeartbeat;
  beat.sender = 1;
  beat.seq = 0;
  beat.payload = {1, 2, 3};
  const auto log = lint_log({beat});
  EXPECT_TRUE(lint_dist_frames(as_view(log)).has_value());
}

TEST(DistLint, WellFormedObsReportIsClean) {
  Frame frame;
  frame.type = FrameType::kObsReport;
  frame.sender = 1;
  frame.subset = 0;
  frame.seq = 0;
  frame.payload = encode_obs_report(sample_obs_report());
  const auto log = lint_log({frame});
  EXPECT_FALSE(lint_dist_frames(as_view(log)).has_value());
}

TEST(DistLint, ObsReportFromCoordinatorIsReported) {
  Frame frame;
  frame.type = FrameType::kObsReport;
  frame.sender = kCoordinatorId;
  frame.subset = 0;
  frame.seq = 0;
  frame.payload = encode_obs_report(ObsReport{});
  const auto log = lint_log({frame});
  const auto problem = lint_dist_frames(as_view(log));
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("coordinator"), std::string::npos) << *problem;
}

TEST(DistLint, ObsReportWithoutSubsetIsReported) {
  Frame frame;
  frame.type = FrameType::kObsReport;
  frame.sender = 1;
  frame.subset = kNoSubset;
  frame.seq = 0;
  frame.payload = encode_obs_report(ObsReport{});
  const auto log = lint_log({frame});
  EXPECT_TRUE(lint_dist_frames(as_view(log)).has_value());
}

TEST(DistLint, ObsReportWithMalformedPayloadIsReported) {
  Frame frame;
  frame.type = FrameType::kObsReport;
  frame.sender = 1;
  frame.subset = 0;
  frame.seq = 0;
  frame.payload = {0xff, 0xff, 0xff, 0xff};  // hostile sample_count
  const auto log = lint_log({frame});
  EXPECT_TRUE(lint_dist_frames(as_view(log)).has_value());
}

TEST(DistLint, CorruptFrameMidLogIsLocated) {
  auto log = lint_log({hello(1, 0), hello(1, 1), hello(1, 2)});
  // Flip a byte inside the second frame's header.
  const std::size_t frame_size = encode_frame(hello(1, 0)).size();
  log[frame_size + 9] ^= 0xff;
  const auto problem = lint_dist_frames(as_view(log));
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("frame 1"), std::string::npos) << *problem;
}

}  // namespace
}  // namespace v6::dist
