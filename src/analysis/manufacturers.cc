#include "analysis/manufacturers.h"

#include <algorithm>
#include <unordered_map>

namespace v6::analysis {

std::vector<ManufacturerRow> manufacturer_table(
    std::span<const MacTrack> tracks, const sim::OuiRegistry& registry,
    std::size_t top) {
  std::unordered_map<std::string, std::uint64_t> counts;
  for (const auto& track : tracks) {
    const auto name = registry.resolve(track.mac.oui());
    counts[std::string(name.value_or("Unlisted"))]++;
  }
  std::vector<ManufacturerRow> rows;
  rows.reserve(counts.size());
  for (auto& [name, count] : counts) rows.push_back({name, count});
  std::sort(rows.begin(), rows.end(),
            [](const ManufacturerRow& a, const ManufacturerRow& b) {
              if (a.mac_count != b.mac_count) return a.mac_count > b.mac_count;
              return a.name < b.name;
            });
  if (rows.size() > top) {
    ManufacturerRow rest{"(other)", 0};
    for (std::size_t i = top; i < rows.size(); ++i) {
      rest.mac_count += rows[i].mac_count;
    }
    rows.resize(top);
    rows.push_back(rest);
  }
  return rows;
}

std::uint64_t single_mac_unlisted_ouis(std::span<const MacTrack> tracks,
                                       const sim::OuiRegistry& registry) {
  std::unordered_map<std::uint32_t, std::uint32_t> unlisted_oui_macs;
  for (const auto& track : tracks) {
    const net::Oui oui = track.mac.oui();
    if (!registry.resolve(oui)) ++unlisted_oui_macs[oui.value()];
  }
  std::uint64_t singles = 0;
  for (const auto& [oui, n] : unlisted_oui_macs) {
    if (n == 1) ++singles;
  }
  return singles;
}

}  // namespace v6::analysis
