#include "hitlist/alias_detection.h"

#include <gtest/gtest.h>

namespace v6::hitlist {
namespace {

class AliasDetectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    // Seed chosen so the world contains aliased customer sites (the
    // DetectsAliasedSlash64InsideSite case needs one).
    config.seed = 92;
    config.total_sites = 500;
    world_ = new sim::World(sim::World::generate(config));
    plane_ = new netsim::DataPlane(*world_, {0.0, 5});
  }
  static void TearDownTestSuite() {
    delete plane_;
    delete world_;
  }
  static AliasDetectorConfig config(std::uint32_t probes = 8) {
    return {world_->vantages().front().address, probes, probes, 123};
  }
  static sim::World* world_;
  static netsim::DataPlane* plane_;
};

sim::World* AliasDetectionTest::world_ = nullptr;
netsim::DataPlane* AliasDetectionTest::plane_ = nullptr;

TEST_F(AliasDetectionTest, DetectsFullyAliasedSlash48) {
  const auto prefixes = world_->aliased_datacenter_prefixes();
  ASSERT_FALSE(prefixes.empty());
  AliasDetector detector(*plane_, config());
  EXPECT_TRUE(detector.is_aliased(prefixes[0], 1000));
}

TEST_F(AliasDetectionTest, OrdinarySlash48IsNotAliased) {
  AliasDetector detector(*plane_, config());
  // The infra region of AS 0: routers answer at ::1 but random addresses
  // do not.
  const net::Ipv6Prefix p48(
      net::Ipv6Address::from_u64(world_->ases()[0].prefix_hi, 0), 48);
  EXPECT_FALSE(detector.is_aliased(p48, 1000));
}

TEST_F(AliasDetectionTest, UnroutedPrefixIsNotAliased) {
  AliasDetector detector(*plane_, config());
  EXPECT_FALSE(detector.is_aliased(*net::Ipv6Prefix::parse("2001:db8::/48"),
                                   1000));
}

TEST_F(AliasDetectionTest, DetectsAliasedSlash64InsideSite) {
  // Aliased customer sites answer on all four of their /64s.
  for (const auto& site : world_->sites()) {
    if (!site.aliased) continue;
    const auto hi = world_->site_prefix_hi(site.id, 1000) | 1;
    AliasDetector detector(*plane_, config());
    EXPECT_TRUE(detector.is_aliased(
        net::Ipv6Prefix(net::Ipv6Address::from_u64(hi, 0), 64), 1000));
    return;
  }
  FAIL() << "seed 92 is expected to contain an aliased site";
}

TEST_F(AliasDetectionTest, ThresholdBelowProbesToleratesLoss) {
  // At 15% per-direction loss, a probe answers with P = 0.85^2 = 0.72:
  // requiring all 8 of 8 almost always fails, 5 of 8 usually succeeds.
  const auto prefixes = world_->aliased_datacenter_prefixes();
  netsim::DataPlane lossy_a(*world_, {0.15, 3});
  AliasDetector strict(lossy_a,
                       {world_->vantages().front().address, 8, 8, 99});
  netsim::DataPlane lossy_b(*world_, {0.15, 3});
  AliasDetector tolerant(lossy_b,
                         {world_->vantages().front().address, 8, 5, 99});
  int strict_hits = 0, tolerant_hits = 0;
  for (int i = 0; i < 20; ++i) {
    if (strict.is_aliased(prefixes[0], 1000 + i)) ++strict_hits;
    if (tolerant.is_aliased(prefixes[0], 1000 + i)) ++tolerant_hits;
  }
  EXPECT_GT(tolerant_hits, strict_hits);
  EXPECT_GE(tolerant_hits, 12);
}

TEST_F(AliasDetectionTest, FilterAliasedPartitionsInput) {
  const auto aliased = world_->aliased_datacenter_prefixes();
  std::vector<net::Ipv6Prefix> mixed = {
      aliased[0],
      *net::Ipv6Prefix::parse("2001:db8::/48"),
  };
  AliasDetector detector(*plane_, config());
  const auto result = detector.filter_aliased(mixed, 1000);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], aliased[0]);
}

}  // namespace
}  // namespace v6::hitlist
