// Point-in-time view of an obs::Registry: every metric's folded value plus
// the tracer's recorded spans. A Snapshot is plain data — no atomics, no
// registry pointers — so it can be stored in StudyResults, serialized by
// exposition.h, and compared in tests.
//
// Ordering contract: Registry::snapshot() sorts samples by (name, labels),
// so two snapshots of registries holding the same values render to
// byte-identical exposition text regardless of registration order — the
// property the golden-file tests pin down.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sim_time.h"

namespace v6::obs {

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

// Label pairs attached to one metric instance, e.g. {{"vantage", "3"}}.
// Order is part of the metric identity; keep it consistent per family.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Folded histogram state. `bounds` holds the finite upper bucket edges in
// ascending order; `counts` has bounds.size() + 1 entries, the last being
// the implicit +Inf bucket. Counts are per-bucket (not cumulative); the
// Prometheus renderer accumulates them into `le` form.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricSample {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  std::uint64_t counter_value = 0;  // kCounter
  double gauge_value = 0.0;         // kGauge
  HistogramData histogram;          // kHistogram
};

// One trace span, stamped with *simulated* time (the study's virtual
// clock), never the wall clock. `parent` is an index into the snapshot's
// span vector, -1 for roots; `depth` is the nesting level.
struct SpanRecord {
  std::string name;
  util::SimTime begin = 0;
  util::SimTime end = 0;
  std::int32_t parent = -1;
  std::uint32_t depth = 0;
  bool closed = false;
};

struct Snapshot {
  std::vector<MetricSample> samples;
  std::vector<SpanRecord> spans;

  // Sums counter_value over every sample named `name`, across all label
  // sets (e.g. the per-vantage poll counters fold into one study total).
  // Returns 0 when the family is absent.
  std::uint64_t counter_sum(std::string_view name) const noexcept;
  // First sample with this exact name and empty labels, or nullptr.
  const MetricSample* find(std::string_view name) const noexcept;
};

}  // namespace v6::obs
