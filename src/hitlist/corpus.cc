#include "hitlist/corpus.h"

#include <algorithm>

namespace v6::hitlist {

namespace {

std::size_t capacity_for(std::size_t expected) {
  std::size_t cap = 64;
  // Keep the load factor at or below ~0.66.
  while (cap * 2 < expected * 3) cap <<= 1;
  return cap;
}

}  // namespace

Corpus::Corpus(std::size_t expected_addresses) {
  const std::size_t cap = capacity_for(expected_addresses);
  slots_.assign(cap, AddressRecord{});
  mask_ = cap - 1;
}

AddressRecord* Corpus::lookup_slot(const net::Ipv6Address& address) noexcept {
  std::size_t i = net::Ipv6AddressHash{}(address) & mask_;
  while (true) {
    AddressRecord& slot = slots_[i];
    // count == 0 marks an empty slot (every stored record has count >= 1).
    if (slot.count == 0 || slot.address == address) return &slot;
    i = (i + 1) & mask_;
  }
}

void Corpus::add(const net::Ipv6Address& address, util::SimTime t,
                 std::uint8_t vantage) {
  const auto ts = static_cast<std::uint32_t>(std::max<util::SimTime>(t, 0));
  ++observations_;
  AddressRecord* slot = lookup_slot(address);
  if (slot->count == 0) {
    if ((size_ + 1) * 3 > slots_.size() * 2) {
      grow();
      slot = lookup_slot(address);
    }
    slot->address = address;
    slot->first_seen = ts;
    slot->last_seen = ts;
    slot->count = 1;
    slot->vantage_mask = vantage < 32 ? (1u << vantage) : 0;
    ++size_;
    return;
  }
  slot->first_seen = std::min(slot->first_seen, ts);
  slot->last_seen = std::max(slot->last_seen, ts);
  ++slot->count;
  if (vantage < 32) slot->vantage_mask |= 1u << vantage;
}

void Corpus::add_record(const AddressRecord& rec) {
  AddressRecord* slot = lookup_slot(rec.address);
  if (slot->count == 0) {
    if ((size_ + 1) * 3 > slots_.size() * 2) {
      grow();
      slot = lookup_slot(rec.address);
    }
    *slot = rec;
    ++size_;
  } else {
    slot->first_seen = std::min(slot->first_seen, rec.first_seen);
    slot->last_seen = std::max(slot->last_seen, rec.last_seen);
    slot->count += rec.count;
    slot->vantage_mask |= rec.vantage_mask;
  }
  observations_ += rec.count;
}

void Corpus::merge(const Corpus& other) {
  other.for_each([this](const AddressRecord& rec) { add_record(rec); });
}

const AddressRecord* Corpus::find(
    const net::Ipv6Address& address) const noexcept {
  std::size_t i = net::Ipv6AddressHash{}(address) & mask_;
  while (true) {
    const AddressRecord& slot = slots_[i];
    if (slot.count == 0) return nullptr;
    if (slot.address == address) return &slot;
    i = (i + 1) & mask_;
  }
}

void Corpus::grow() {
  std::vector<AddressRecord> old = std::move(slots_);
  slots_.assign(old.size() * 2, AddressRecord{});
  mask_ = slots_.size() - 1;
  for (const auto& rec : old) {
    if (rec.count == 0) continue;
    std::size_t i = net::Ipv6AddressHash{}(rec.address) & mask_;
    while (slots_[i].count != 0) i = (i + 1) & mask_;
    slots_[i] = rec;
  }
}

}  // namespace v6::hitlist
