file(REMOVE_RECURSE
  "CMakeFiles/v6_net.dir/classify.cc.o"
  "CMakeFiles/v6_net.dir/classify.cc.o.d"
  "CMakeFiles/v6_net.dir/entropy.cc.o"
  "CMakeFiles/v6_net.dir/entropy.cc.o.d"
  "CMakeFiles/v6_net.dir/eui64.cc.o"
  "CMakeFiles/v6_net.dir/eui64.cc.o.d"
  "CMakeFiles/v6_net.dir/ipv4.cc.o"
  "CMakeFiles/v6_net.dir/ipv4.cc.o.d"
  "CMakeFiles/v6_net.dir/ipv6.cc.o"
  "CMakeFiles/v6_net.dir/ipv6.cc.o.d"
  "CMakeFiles/v6_net.dir/mac.cc.o"
  "CMakeFiles/v6_net.dir/mac.cc.o.d"
  "CMakeFiles/v6_net.dir/prefix.cc.o"
  "CMakeFiles/v6_net.dir/prefix.cc.o.d"
  "libv6_net.a"
  "libv6_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
