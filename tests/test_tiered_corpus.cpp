#include "hitlist/tiered_corpus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <vector>

#include "analysis/parallel_scan.h"
#include "analysis/scan_source.h"
#include "core/study.h"
#include "hitlist/corpus_io.h"
#include "util/rng.h"

namespace v6::hitlist {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

struct Sighting {
  net::Ipv6Address address;
  util::SimTime time;
  std::uint8_t vantage;
};

std::vector<Sighting> random_sightings(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Sighting> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Small key space: plenty of duplicates across spill boundaries.
    out.push_back({addr(rng.bounded(64), rng.bounded(256)),
                   static_cast<util::SimTime>(rng.bounded(1 << 20)),
                   static_cast<std::uint8_t>(rng.bounded(34))});
  }
  return out;
}

Corpus reference_corpus(const std::vector<Sighting>& sightings) {
  Corpus corpus(64);
  for (const auto& s : sightings) corpus.add(s.address, s.time, s.vantage);
  corpus.canonicalize();
  return corpus;
}

// Feeds `sightings` through a TieredCorpus in `spills` equal slices.
// (unique_ptr: TieredCorpus pins its run files and is neither copyable
// nor movable.)
std::unique_ptr<TieredCorpus> spilled(const std::vector<Sighting>& sightings,
                                      std::size_t spills,
                                      std::uint32_t block_records = 16) {
  SpillConfig config;
  config.memory_budget_bytes = 1;
  config.block_records = block_records;
  auto runs = std::make_unique<TieredCorpus>(config);
  const std::size_t per = sightings.size() / spills + 1;
  for (std::size_t begin = 0; begin < sightings.size(); begin += per) {
    Corpus shard(16);
    const std::size_t end = std::min(begin + per, sightings.size());
    for (std::size_t i = begin; i < end; ++i) {
      shard.add(sightings[i].address, sightings[i].time,
                sightings[i].vantage);
    }
    runs->spill(std::move(shard));
  }
  return runs;
}

void expect_stream_matches(const TieredCorpus& runs, const Corpus& want) {
  ASSERT_EQ(runs.merged_size(), want.size());
  EXPECT_EQ(runs.total_observations(), want.total_observations());
  std::size_t i = 0;
  const auto records = want.records();
  runs.for_each_merged([&](const AddressRecord& rec) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(rec.address, records[i].address) << "record " << i;
    EXPECT_EQ(rec.first_seen, records[i].first_seen) << "record " << i;
    EXPECT_EQ(rec.last_seen, records[i].last_seen) << "record " << i;
    EXPECT_EQ(rec.count, records[i].count) << "record " << i;
    EXPECT_EQ(rec.vantage_mask, records[i].vantage_mask) << "record " << i;
    ++i;
  });
  EXPECT_EQ(i, records.size());
}

TEST(TieredCorpus, MergedStreamMatchesReferenceAcrossSpillCounts) {
  const auto sightings = random_sightings(8000, 3);
  const Corpus want = reference_corpus(sightings);
  for (const std::size_t spills : {1u, 2u, 5u, 13u}) {
    const auto runs = spilled(sightings, spills);
    EXPECT_EQ(runs->stats().spills, spills);
    expect_stream_matches(*runs, want);
  }
}

TEST(TieredCorpus, EmptySpillsAreIgnored) {
  SpillConfig config;
  config.memory_budget_bytes = 1;
  TieredCorpus runs(config);
  runs.spill(Corpus(16));
  EXPECT_EQ(runs.stats().spills, 0u);
  EXPECT_EQ(runs.run_count(), 0u);
  EXPECT_EQ(runs.merged_size(), 0u);
  std::size_t visits = 0;
  runs.for_each_merged([&](const AddressRecord&) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

TEST(TieredCorpus, FindAggregatesAcrossRuns) {
  const auto sightings = random_sightings(4000, 7);
  const Corpus want = reference_corpus(sightings);
  const auto runs = spilled(sightings, 6);
  want.for_each([&](const AddressRecord& rec) {
    const auto got = runs->find(rec.address);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->first_seen, rec.first_seen);
    EXPECT_EQ(got->last_seen, rec.last_seen);
    EXPECT_EQ(got->count, rec.count);
    EXPECT_EQ(got->vantage_mask, rec.vantage_mask);
  });
  EXPECT_FALSE(runs->contains(addr(0xdead, 0xbeef)));
  EXPECT_FALSE(runs->find(addr(0xdead, 0xbeef)).has_value());
}

TEST(TieredCorpus, CollapseMaterializesTheMergedStream) {
  const auto sightings = random_sightings(3000, 11);
  const Corpus want = reference_corpus(sightings);
  const auto runs = spilled(sightings, 4);
  const Corpus got = runs->collapse();
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(got.total_observations(), want.total_observations());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.records()[i].address, want.records()[i].address);
    EXPECT_EQ(got.records()[i].count, want.records()[i].count);
  }
}

TEST(TieredCorpus, SaveBytesMatchInMemorySnapshot) {
  const auto sightings = random_sightings(5000, 13);
  const Corpus want = reference_corpus(sightings);
  std::stringstream expected(std::ios::in | std::ios::out |
                             std::ios::binary);
  save_corpus(expected, want);

  for (const std::size_t spills : {1u, 3u, 9u}) {
    const auto runs = spilled(sightings, spills);
    std::stringstream got(std::ios::in | std::ios::out | std::ios::binary);
    const auto bytes = runs->save(got);
    EXPECT_EQ(bytes, expected.str().size());
    EXPECT_EQ(got.str(), expected.str()) << spills << " spills";
    // The snapshot loads back to the same corpus.
    const Corpus loaded = load_corpus(got);
    EXPECT_EQ(loaded.size(), want.size());
    EXPECT_EQ(loaded.total_observations(), want.total_observations());
  }
}

TEST(TieredCorpus, CompactionPreservesEveryRead) {
  const auto sightings = random_sightings(4000, 17);
  const Corpus want = reference_corpus(sightings);
  auto runs = spilled(sightings, 7);
  ASSERT_EQ(runs->run_count(), 7u);
  std::stringstream before(std::ios::in | std::ios::out | std::ios::binary);
  runs->save(before);

  runs->compact();
  EXPECT_EQ(runs->run_count(), 1u);
  EXPECT_EQ(runs->stats().compactions, 1u);
  expect_stream_matches(*runs, want);
  std::stringstream after(std::ios::in | std::ios::out | std::ios::binary);
  runs->save(after);
  EXPECT_EQ(after.str(), before.str());
}

TEST(TieredCorpus, ScanSegmentsConcatenationReplaysMergedStream) {
  const auto sightings = random_sightings(6000, 19);
  const Corpus want = reference_corpus(sightings);
  const auto runs = spilled(sightings, 5, /*block_records=*/8);
  const auto& bounds = runs->segment_bounds();
  ASSERT_GT(bounds.size(), 4u);  // multi-segment domain

  for (const std::size_t pieces :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, bounds.size()}) {
    std::vector<AddressRecord> got;
    const std::size_t per = bounds.size() / pieces + 1;
    for (std::size_t begin = 0; begin < bounds.size(); begin += per) {
      runs->scan_segments(begin, std::min(begin + per, bounds.size()),
                         [&](const AddressRecord& rec) {
                           got.push_back(rec);
                         });
    }
    ASSERT_EQ(got.size(), want.size()) << pieces << " pieces";
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].address, want.records()[i].address);
      EXPECT_EQ(got[i].count, want.records()[i].count);
    }
  }
}

TEST(TieredCorpus, MergedSizeWithExtraCountsTheUnion) {
  const auto sightings = random_sightings(2000, 23);
  const auto runs = spilled(sightings, 3);
  Corpus extra(16);
  // Half duplicates of spilled addresses, half fresh.
  extra.add(sightings[0].address, 1, 0);
  extra.add(sightings[1].address, 2, 1);
  extra.add(addr(0x7777, 1), 3, 2);
  extra.add(addr(0x7777, 2), 4, 3);
  extra.canonicalize();

  Corpus combined = runs->collapse();
  combined.merge(extra);
  EXPECT_EQ(runs->merged_size_with(extra), combined.size());
  EXPECT_EQ(runs->merged_size_with(Corpus(1)), runs->merged_size());
}

TEST(TieredCorpus, ParallelScanIsBackendAndThreadCountInvariant) {
  const auto sightings = random_sightings(6000, 29);
  const Corpus corpus = reference_corpus(sightings);
  const auto runs = spilled(sightings, 5);

  // Concatenation-style kernel: the visited sequence itself is the
  // result, so any reordering or loss across backends/threads fails.
  const auto visit_sequence = [](const analysis::ScanSource& source,
                                 unsigned threads) {
    analysis::AnalysisConfig config;
    config.threads = util::Parallelism(threads);
    return analysis::scan_corpus<std::vector<std::uint64_t>>(
        source, config, "test/visit_sequence",
        [] { return std::vector<std::uint64_t>(); },
        [](std::vector<std::uint64_t>& v, const AddressRecord& rec) {
          v.push_back(rec.address.iid() ^ rec.count ^ rec.vantage_mask ^
                      rec.first_seen ^ rec.last_seen);
        },
        [](std::vector<std::uint64_t>& into,
           std::vector<std::uint64_t>&& from) {
          into.insert(into.end(), from.begin(), from.end());
        });
  };

  const auto want = visit_sequence(analysis::make_source(corpus), 1);
  ASSERT_EQ(want.size(), corpus.size());
  for (const unsigned threads : {1u, 2u, 4u}) {
    EXPECT_EQ(visit_sequence(analysis::make_source(corpus), threads), want);
    EXPECT_EQ(visit_sequence(analysis::make_source(*runs), threads), want)
        << threads << " threads";
  }
}

TEST(TieredCorpus, RemovesRunFilesAndOwnedDirectoryOnDestruction) {
  namespace fs = std::filesystem;
  fs::path dir;
  {
    const auto sightings = random_sightings(500, 31);
    const auto runs = spilled(sightings, 3);
    ASSERT_EQ(runs->run_count(), 3u);
    dir = fs::path(runs->config().directory.empty()
                       ? fs::temp_directory_path()
                       : fs::path(runs->config().directory));
    // The engine either names an explicit directory or created its own;
    // grab the actual run-file parent from the stats instead.
    EXPECT_GT(runs->stats().disk_bytes, 0u);
  }
  // An explicit directory is kept (only the files go); an owned temp
  // directory disappears entirely. Exercise the explicit-directory path.
  const fs::path mine =
      fs::temp_directory_path() / "v6pool-test-tiered-explicit";
  fs::create_directories(mine);
  {
    SpillConfig config;
    config.memory_budget_bytes = 1;
    config.directory = mine.string();
    TieredCorpus direct(config);
    Corpus shard(16);
    shard.add(addr(1, 1), 1, 0);
    direct.spill(std::move(shard));
    EXPECT_FALSE(fs::is_empty(mine));
  }
  EXPECT_TRUE(fs::exists(mine));
  EXPECT_TRUE(fs::is_empty(mine));
  fs::remove_all(mine);
}

// --- Study-level acceptance: out-of-core == in-memory, bit for bit ------

struct StudyFingerprint {
  std::string corpus_bytes;
  std::uint64_t ntp_size = 0;
  std::vector<double> entropy;
  std::vector<analysis::DatasetSummary> table1;
  analysis::AddressLifetimeReport address_lifetimes;
  analysis::IidLifetimeReport iid_lifetimes;
  std::vector<std::pair<sim::Asn, std::vector<double>>> top_ases;
  std::array<std::uint64_t, 7> category_counts{};
  std::vector<std::pair<geo::CountryCode, std::uint64_t>> countries;
  std::uint64_t spills = 0;
  std::size_t runs = 0;
};

core::StudyConfig spill_study_config(unsigned threads) {
  core::StudyConfig config;
  config.world.seed = 91;
  config.world.total_sites = 250;
  config.pool_capture_share = 1.0;
  config.world.study_duration = 10 * util::kDay;
  config.backscan_start = 12 * util::kDay;
  config.backscan_duration = util::kDay;
  config.hitlist_campaign.start = util::kDay;
  config.hitlist_campaign.duration = 6 * util::kDay;
  config.caida_campaign.start = util::kDay;
  config.caida_campaign.duration = 5 * util::kDay;
  config.caida_campaign.slash48_fraction = 0.005;
  config.collector.threads = util::Parallelism(threads);
  config.analysis.threads = util::Parallelism(threads);
  return config;
}

StudyFingerprint run_study(std::size_t memory_budget, unsigned threads) {
  auto config = spill_study_config(threads);
  config.spill.memory_budget_bytes = memory_budget;
  core::Study study(config);
  core::RunOptions options;
  options.backscan = false;  // no NTP-corpus dependence; keep the test fast
  const auto& r = study.run(std::move(options));

  StudyFingerprint fp;
  std::stringstream snapshot(std::ios::in | std::ios::out |
                             std::ios::binary);
  study.save_ntp(snapshot);
  fp.corpus_bytes = snapshot.str();
  fp.ntp_size = study.ntp_size();
  fp.entropy = r.analysis.entropy.sorted_samples();
  fp.table1 = r.analysis.table1;
  fp.address_lifetimes = r.analysis.address_lifetimes;
  fp.iid_lifetimes = r.analysis.iid_lifetimes;
  for (const auto& as : r.analysis.top_ases) {
    fp.top_ases.emplace_back(as.asn, as.entropy.sorted_samples());
  }
  fp.category_counts = r.analysis.categories.counts;
  fp.countries = study.country_mix();
  if (r.ntp_runs != nullptr) {
    fp.spills = r.ntp_runs->stats().spills;
    fp.runs = r.ntp_runs->run_count();
  }
  return fp;
}

void expect_same_fingerprint(const StudyFingerprint& got,
                             const StudyFingerprint& want,
                             const std::string& label) {
  EXPECT_EQ(got.corpus_bytes, want.corpus_bytes) << label;
  EXPECT_EQ(got.ntp_size, want.ntp_size) << label;
  EXPECT_EQ(got.entropy, want.entropy) << label;
  ASSERT_EQ(got.table1.size(), want.table1.size()) << label;
  for (std::size_t i = 0; i < want.table1.size(); ++i) {
    EXPECT_EQ(got.table1[i].addresses, want.table1[i].addresses) << label;
    EXPECT_EQ(got.table1[i].asns, want.table1[i].asns) << label;
    EXPECT_EQ(got.table1[i].slash48s, want.table1[i].slash48s) << label;
    EXPECT_EQ(got.table1[i].addrs_per_slash48,
              want.table1[i].addrs_per_slash48)
        << label;
    EXPECT_EQ(got.table1[i].common_addresses, want.table1[i].common_addresses)
        << label << " dataset " << want.table1[i].name;
    EXPECT_EQ(got.table1[i].common_asns, want.table1[i].common_asns) << label;
    EXPECT_EQ(got.table1[i].common_slash48s, want.table1[i].common_slash48s)
        << label;
  }
  EXPECT_EQ(got.address_lifetimes.total, want.address_lifetimes.total)
      << label;
  EXPECT_EQ(got.address_lifetimes.fraction_once,
            want.address_lifetimes.fraction_once)
      << label;
  EXPECT_EQ(got.address_lifetimes.ccdf, want.address_lifetimes.ccdf) << label;
  EXPECT_EQ(got.iid_lifetimes.unique_iids, want.iid_lifetimes.unique_iids)
      << label;
  for (std::size_t b = 0; b < want.iid_lifetimes.bands.size(); ++b) {
    EXPECT_EQ(got.iid_lifetimes.bands[b].total,
              want.iid_lifetimes.bands[b].total)
        << label;
    EXPECT_EQ(got.iid_lifetimes.bands[b].cdf, want.iid_lifetimes.bands[b].cdf)
        << label;
  }
  EXPECT_EQ(got.top_ases, want.top_ases) << label;
  EXPECT_EQ(got.category_counts, want.category_counts) << label;
  EXPECT_EQ(got.countries, want.countries) << label;
}

TEST(TieredCorpusStudy, OutOfCoreIsBitIdenticalAcrossBudgetsAndThreads) {
  // The engine's headline contract, end to end: a Study run with ANY
  // spill budget at ANY thread count produces byte-identical corpus
  // snapshots and bit-identical analysis floats. The tiny budget forces a
  // spill at every interior barrier (>= 4 runs); the medium budget spills
  // a few times; 0 is the in-memory path.
  const StudyFingerprint want = run_study(0, 1);
  EXPECT_EQ(want.runs, 0u);  // in-memory reference never spilled
  ASSERT_FALSE(want.corpus_bytes.empty());
  ASSERT_GT(want.ntp_size, 1000u);

  for (const unsigned threads : {1u, 2u, 4u}) {
    if (threads != 1) {
      expect_same_fingerprint(
          run_study(0, threads), want,
          "in-memory, " + std::to_string(threads) + " threads");
    }
    for (const std::size_t budget : {std::size_t{1}, std::size_t{1} << 22}) {
      const auto got = run_study(budget, threads);
      const std::string label = "budget " + std::to_string(budget) + ", " +
                                std::to_string(threads) + " threads";
      EXPECT_GE(got.spills, 1u) << label;
      if (budget == 1) EXPECT_GE(got.runs, 4u) << label;
      expect_same_fingerprint(got, want, label);
    }
  }
}

TEST(TieredCorpusStudy, CheckpointSinksSeeReconstructedSnapshots) {
  // Checkpoint snapshots taken mid-collection must describe the full
  // corpus so far even when most of it lives in run files.
  auto config = spill_study_config(1);
  config.spill.memory_budget_bytes = 1;
  config.collector.checkpoint_interval = 4 * util::kDay;
  core::Study study(config);
  std::vector<std::pair<util::SimTime, std::size_t>> checkpoints;
  core::RunOptions options;
  options.campaigns = false;
  options.backscan = false;
  options.analysis = false;
  options.checkpoint_sink = [&](const CheckpointState& state,
                                const Corpus& corpus) {
    checkpoints.emplace_back(state.resume_from, corpus.size());
  };
  const auto& r = study.run(std::move(options));
  ASSERT_FALSE(checkpoints.empty());
  ASSERT_NE(r.ntp_runs, nullptr);
  // Sizes are non-decreasing and the last checkpoint is a prefix of the
  // final corpus.
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    EXPECT_GE(checkpoints[i].second, checkpoints[i - 1].second);
  }
  EXPECT_LE(checkpoints.back().second, r.ntp_runs->merged_size());
  EXPECT_GT(checkpoints.back().second, 0u);
}

}  // namespace
}  // namespace v6::hitlist
