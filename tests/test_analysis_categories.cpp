#include "analysis/address_categories.h"

#include <gtest/gtest.h>

namespace v6::analysis {
namespace {

class CategoriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 27;
    config.total_sites = 300;
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }

  static std::uint64_t site_hi(std::uint32_t as_index, std::uint64_t n) {
    return world_->ases()[as_index].prefix_hi | (2ULL << 28) | (n << 8);
  }

  static sim::World* world_;
};

sim::World* CategoriesTest::world_ = nullptr;

TEST_F(CategoriesTest, StructuralCategoriesCounted) {
  hitlist::Corpus corpus;
  corpus.add(net::Ipv6Address::from_u64(site_hi(0, 1), 0), 10);       // zeroes
  corpus.add(net::Ipv6Address::from_u64(site_hi(0, 2), 0x1), 10);     // low byte
  corpus.add(net::Ipv6Address::from_u64(site_hi(0, 3), 0x1234), 10);  // low 2B
  corpus.add(net::Ipv6Address::from_u64(site_hi(0, 4),
                                        0x0123456789abcdefULL),
             10);                                                     // high
  const auto breakdown = categorize_corpus(corpus, *world_, 0, 100);
  EXPECT_EQ(breakdown.total, 4u);
  using C = net::AddressCategory;
  EXPECT_EQ(breakdown.counts[static_cast<std::size_t>(C::kZeroes)], 1u);
  EXPECT_EQ(breakdown.counts[static_cast<std::size_t>(C::kLowByte)], 1u);
  EXPECT_EQ(breakdown.counts[static_cast<std::size_t>(C::kLow2Bytes)], 1u);
  EXPECT_EQ(breakdown.counts[static_cast<std::size_t>(C::kHighEntropy)], 1u);
  EXPECT_DOUBLE_EQ(breakdown.fraction(C::kZeroes), 0.25);
}

TEST_F(CategoriesTest, WindowFilterExcludesOutsideRecords) {
  hitlist::Corpus corpus;
  corpus.add(net::Ipv6Address::from_u64(site_hi(0, 1), 0x1), 10);
  corpus.add(net::Ipv6Address::from_u64(site_hi(0, 2), 0x2), 500);
  const auto in_window = categorize_corpus(corpus, *world_, 0, 100);
  EXPECT_EQ(in_window.total, 1u);
  const auto whole = categorize_corpus(corpus, *world_, 0, 1000);
  EXPECT_EQ(whole.total, 2u);
}

TEST_F(CategoriesTest, SpanningRecordCountsInWindow) {
  hitlist::Corpus corpus;
  corpus.add(net::Ipv6Address::from_u64(site_hi(0, 1), 0x1), 10);
  corpus.add(net::Ipv6Address::from_u64(site_hi(0, 1), 0x1), 5000);
  // Observed before and after the window, so it was active during it.
  EXPECT_EQ(categorize_corpus(corpus, *world_, 100, 200).total, 1u);
}

TEST_F(CategoriesTest, Ipv4MappedRequiresAsGates) {
  using C = net::AddressCategory;
  const auto& as = world_->ases()[0];
  CategoryConfig config;
  config.min_instances_per_as = 10;
  config.min_fraction_of_as = 0.10;

  // 20 addresses embedding IPv4 addresses owned by the same AS: passes
  // both gates.
  hitlist::Corpus accepted;
  for (std::uint64_t i = 0; i < 20; ++i) {
    accepted.add(net::Ipv6Address::from_u64(site_hi(0, i),
                                            as.ipv4_base + 100 + i),
                 10);
  }
  const auto yes = categorize_corpus(accepted, *world_, 0, 100, config);
  EXPECT_EQ(yes.counts[static_cast<std::size_t>(C::kIpv4Mapped)], 20u);

  // Too few instances: gate fails, addresses fall into entropy bands.
  hitlist::Corpus sparse;
  for (std::uint64_t i = 0; i < 5; ++i) {
    sparse.add(net::Ipv6Address::from_u64(site_hi(0, i),
                                          as.ipv4_base + 100 + i),
               10);
  }
  const auto no = categorize_corpus(sparse, *world_, 0, 100, config);
  EXPECT_EQ(no.counts[static_cast<std::size_t>(C::kIpv4Mapped)], 0u);
}

TEST_F(CategoriesTest, Ipv4FromWrongAsRejected) {
  using C = net::AddressCategory;
  const auto& other = world_->ases()[5];
  CategoryConfig config;
  config.min_instances_per_as = 5;
  hitlist::Corpus corpus;
  // Embedded v4 belongs to a different AS than the v6 address.
  for (std::uint64_t i = 0; i < 20; ++i) {
    corpus.add(net::Ipv6Address::from_u64(site_hi(0, i),
                                          other.ipv4_base + 100 + i),
               10);
  }
  const auto breakdown = categorize_corpus(corpus, *world_, 0, 100, config);
  EXPECT_EQ(breakdown.counts[static_cast<std::size_t>(C::kIpv4Mapped)], 0u);
}

TEST_F(CategoriesTest, DilutionBelowTenPercentFailsGate) {
  using C = net::AddressCategory;
  const auto& as = world_->ases()[0];
  CategoryConfig config;
  config.min_instances_per_as = 10;
  hitlist::Corpus corpus;
  for (std::uint64_t i = 0; i < 20; ++i) {
    corpus.add(net::Ipv6Address::from_u64(site_hi(0, i),
                                          as.ipv4_base + 100 + i),
               10);
  }
  // Flood the AS with 300 random-IID addresses: v4 share drops to ~6%.
  for (std::uint64_t i = 0; i < 300; ++i) {
    corpus.add(net::Ipv6Address::from_u64(site_hi(0, 100 + i),
                                          0x8000000000000000ULL |
                                              (i * 0x123456789abULL)),
               10);
  }
  const auto breakdown = categorize_corpus(corpus, *world_, 0, 100, config);
  EXPECT_EQ(breakdown.counts[static_cast<std::size_t>(C::kIpv4Mapped)], 0u);
}

TEST_F(CategoriesTest, UnroutedAddressesAreSkipped) {
  hitlist::Corpus corpus;
  corpus.add(*net::Ipv6Address::parse("2001:db8::1"), 10);
  EXPECT_EQ(categorize_corpus(corpus, *world_, 0, 100).total, 0u);
}

}  // namespace
}  // namespace v6::analysis
