#include "netsim/data_plane.h"

#include "proto/tcp.h"
#include "proto/udp.h"

namespace v6::netsim {

DataPlane::DataPlane(const sim::World& world, const DataPlaneConfig& config)
    : world_(&world),
      config_(config),
      topology_(world),
      rng_(util::mix64(config.seed ^ 0xda7a)) {
  if (config_.metrics != nullptr) {
    metric_drops_ = config_.metrics->counter(
        "v6_plane_drops_total", "Datagrams lost in transit (both directions)");
    metric_rate_limited_ = config_.metrics->counter(
        "v6_plane_rate_limited_total",
        "Time Exceeded messages suppressed by router ICMP budgets");
    metric_fault_drops_ = config_.metrics->counter(
        "v6_plane_fault_drops_total",
        "Datagrams swallowed by injected vantage faults");
  }
}

bool DataPlane::lost() {
  if (config_.loss_rate > 0.0 && rng_.chance(config_.loss_rate)) {
    ++drops_;
    metric_drops_.inc();
    return true;
  }
  return false;
}

namespace {

// How far back per-second ICMP budgets are retained. Probe schedules that
// jump backwards (interleaved backscan intervals) still see exact budgets
// within the horizon; only seconds more than an hour older than the newest
// second ever observed are forgotten, keeping memory bounded.
constexpr util::SimDuration kIcmpBudgetHorizon = util::kHour;

}  // namespace

bool DataPlane::icmp_error_allowed(const net::Ipv6Address& router,
                                   util::SimTime t) {
  if (config_.router_icmp_rate_limit == 0) return true;
  if (t > budget_newest_) {
    budget_newest_ = t;
    // Prune only on forward progress: a backward-moving t must never wipe
    // budgets it already charged (the old clear-on-change reset let a
    // revisited second start from a fresh budget).
    icmp_budget_.erase(icmp_budget_.begin(),
                       icmp_budget_.lower_bound(t - kIcmpBudgetHorizon));
  }
  auto& used =
      icmp_budget_[t][router.hi64() ^ util::mix64(router.lo64())];
  if (used >= config_.router_icmp_rate_limit) {
    ++rate_limited_;
    metric_rate_limited_.inc();
    return false;
  }
  ++used;
  return true;
}

ProbeResult DataPlane::echo(const net::Ipv6Address& src,
                            const net::Ipv6Address& dst,
                            std::uint16_t identifier, std::uint16_t sequence,
                            util::SimTime t) {
  return hop_limited_echo(src, dst, 255, identifier, sequence, t);
}

ProbeResult DataPlane::hop_limited_echo(const net::Ipv6Address& src,
                                        const net::Ipv6Address& dst,
                                        std::uint8_t hop_limit,
                                        std::uint16_t identifier,
                                        std::uint16_t sequence,
                                        util::SimTime t) {
  ProbeResult result;
  // Serialize the request exactly as a scanner would put it on the wire.
  const proto::Icmpv6Message request =
      proto::make_echo_request(identifier, sequence);
  const std::vector<std::uint8_t> wire =
      proto::encode_icmpv6(request, src, dst);
  if (lost()) return result;

  // Walk the forwarding path; a hop-limit expiry elicits Time Exceeded.
  const std::vector<Hop> path = topology_.path(src, dst, t);
  if (hop_limit <= path.size()) {
    const Hop& hop = path[hop_limit - 1];
    if (!hop.responds || !icmp_error_allowed(hop.address, t) || lost()) {
      return result;
    }
    // The router quotes the invoking packet back; decode to stay honest.
    const proto::Icmpv6Message te = proto::make_time_exceeded(wire);
    const auto te_wire = proto::encode_icmpv6(te, hop.address, src);
    const auto decoded = proto::decode_icmpv6(te_wire, hop.address, src);
    if (!decoded) return result;
    result.kind = ProbeResult::Kind::kTimeExceeded;
    result.responder = hop.address;
    return result;
  }

  // Delivered: the destination stack validates the datagram.
  const auto delivered = proto::decode_icmpv6(wire, src, dst);
  if (!delivered) return result;
  const auto res = world_->resolve(dst, t);
  using Kind = sim::World::Resolution::Kind;
  const bool answers =
      (res.kind == Kind::kDevice && !res.firewalled && !res.icmp_silent) ||
      res.kind == Kind::kRouter || res.kind == Kind::kAlias;
  if (!answers || lost()) return result;

  const proto::Icmpv6Message reply = proto::make_echo_reply(*delivered);
  const auto reply_wire = proto::encode_icmpv6(reply, dst, src);
  const auto decoded_reply = proto::decode_icmpv6(reply_wire, dst, src);
  if (!decoded_reply ||
      decoded_reply->type != proto::Icmpv6Type::kEchoReply) {
    return result;
  }
  result.kind = ProbeResult::Kind::kEchoReply;
  result.responder = dst;
  result.sequence = decoded_reply->sequence();
  return result;
}

DataPlane::SynOutcome DataPlane::tcp_syn(const net::Ipv6Address& src,
                                         const net::Ipv6Address& dst,
                                         std::uint16_t dst_port,
                                         std::uint32_t sequence,
                                         util::SimTime t) {
  // The SYN travels as real bytes.
  const proto::TcpSegment syn = proto::make_syn(54321, dst_port, sequence);
  const auto wire = proto::encode_tcp(syn, src, dst);
  if (lost()) return SynOutcome::kTimeout;
  const auto delivered = proto::decode_tcp(wire, src, dst);
  if (!delivered || !delivered->is_syn()) return SynOutcome::kTimeout;

  const auto res = world_->resolve(dst, t);
  using Kind = sim::World::Resolution::Kind;
  bool listening = false, reachable = false;
  switch (res.kind) {
    case Kind::kDevice:
      reachable = !res.firewalled;
      listening = reachable && world_->serves_tcp(res.device, dst_port);
      break;
    case Kind::kRouter:
      // Routers drop unsolicited TCP to their interfaces (control-plane
      // protection), but the interface is alive: answer RST.
      reachable = true;
      break;
    case Kind::kAlias:
      reachable = listening = true;  // the alias box fronts everything
      break;
    case Kind::kNone:
      break;
  }
  if (!reachable || lost()) return SynOutcome::kTimeout;

  const proto::TcpSegment reply =
      listening
          ? proto::make_syn_ack(*delivered,
                                static_cast<std::uint32_t>(
                                    util::mix64(dst.lo64() ^ sequence)))
          : proto::make_rst(*delivered);
  const auto reply_wire = proto::encode_tcp(reply, dst, src);
  const auto decoded = proto::decode_tcp(reply_wire, dst, src);
  if (!decoded || decoded->ack_number != sequence + 1) {
    return SynOutcome::kTimeout;
  }
  return decoded->is_syn_ack() ? SynOutcome::kSynAck : SynOutcome::kRst;
}

void DataPlane::bind_udp(const net::Ipv6Address& address, std::uint16_t port,
                         UdpService service) {
  services_[{address, port}] = std::move(service);
}

std::optional<std::vector<std::uint8_t>> DataPlane::send_udp(
    const net::Ipv6Address& src, std::uint16_t src_port,
    const net::Ipv6Address& dst, std::uint16_t dst_port,
    const std::vector<std::uint8_t>& payload, util::SimTime t) {
  // Outbound: wire-encode, lose, deliver, decode (checksum verified).
  const proto::UdpDatagram datagram{src_port, dst_port, payload};
  const auto wire = proto::encode_udp(datagram, src, dst);
  if (lost()) return std::nullopt;
  const auto delivered = proto::decode_udp(wire, src, dst);
  if (!delivered) return std::nullopt;

  // Injected vantage faults swallow the datagram before the service sees
  // it. Checked after lost() so the loss RNG stream is untouched by the
  // (pure-function) fault plan.
  if (faults_ != nullptr && !faults_->delivers_to(dst, src, t)) {
    ++fault_drops_;
    metric_fault_drops_.inc();
    return std::nullopt;
  }

  const auto it = services_.find({dst, dst_port});
  if (it == services_.end()) return std::nullopt;
  auto response =
      it->second(src, delivered->src_port, delivered->payload, t);
  if (!response) return std::nullopt;

  // Return path.
  const proto::UdpDatagram back{dst_port, delivered->src_port, *response};
  const auto back_wire = proto::encode_udp(back, dst, src);
  if (lost()) return std::nullopt;
  const auto back_delivered = proto::decode_udp(back_wire, dst, src);
  if (!back_delivered) return std::nullopt;
  return back_delivered->payload;
}

}  // namespace v6::netsim
