// Keyed pseudo-random permutation over [0, n) via a Feistel network with
// cycle-walking.
//
// The world model needs *invertible* stateless mappings: customer sites are
// assigned prefix slots that rotate over time (slot = perm_g(site)), and the
// data plane must answer "which site owns this slot in generation g?"
// without materializing per-generation tables (slot -> perm_g^{-1}(slot)).
//
// The arithmetic lives in kernels/feistel_core.h as host/device-portable
// free functions of a POD spec; this class is a thin owner of that spec.
// Per-record apply/invert and the batch entry points therefore run the
// same integer math — apply_batch additionally dispatches to the AVX2
// kernel when the CPU has it (bit-identical either way; see
// kernels/dispatch.h).
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/feistel_core.h"

namespace v6::sim {

class FeistelPermutation {
 public:
  // Permutes [0, domain_size). domain_size must be >= 1. The permutation is
  // determined entirely by (domain_size, key).
  FeistelPermutation(std::uint64_t domain_size, std::uint64_t key) noexcept
      : spec_(kernels::make_feistel_spec(domain_size, key)) {}

  std::uint64_t domain_size() const noexcept { return spec_.domain_size; }

  // The POD arithmetic spec, for callers that feed the batch kernels
  // directly (device scheduling loops, bench_kernels).
  const kernels::FeistelSpec& spec() const noexcept { return spec_; }

  // x must be < domain_size.
  std::uint64_t apply(std::uint64_t x) const noexcept {
    return kernels::feistel_apply(spec_, x);
  }
  // Inverse: invert(apply(x)) == x.
  std::uint64_t invert(std::uint64_t y) const noexcept {
    return kernels::feistel_invert(spec_, y);
  }

  // Batch forms: out[i] = apply(in[i]) / invert(in[i]) for i in [0, n).
  // Backend-dispatched; bit-identical to the per-record loop.
  void apply_batch(const std::uint64_t* in, std::size_t n,
                   std::uint64_t* out) const;
  void invert_batch(const std::uint64_t* in, std::size_t n,
                    std::uint64_t* out) const;

 private:
  kernels::FeistelSpec spec_;
};

}  // namespace v6::sim
