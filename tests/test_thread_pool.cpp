#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace v6::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 50);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted; must not hang
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // join happens here
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(RunSharded, PartitionsRangeExactlyOnce) {
  for (const unsigned shards : {2u, 3u, 7u, 16u}) {
    const std::size_t items = 103;
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> ranges(shards);
    std::vector<int> hits(items, 0);
    run_sharded(items, shards,
                [&](unsigned s, std::size_t begin, std::size_t end) {
                  std::lock_guard<std::mutex> lock(mu);
                  ranges[s] = {begin, end};
                  for (std::size_t i = begin; i < end; ++i) ++hits[i];
                });
    // Every item covered exactly once...
    for (std::size_t i = 0; i < items; ++i) {
      EXPECT_EQ(hits[i], 1) << "item " << i << " with " << shards
                            << " shards";
    }
    // ...by contiguous ranges balanced to within one item.
    std::size_t expect_begin = 0;
    for (unsigned s = 0; s < shards; ++s) {
      EXPECT_EQ(ranges[s].first, expect_begin);
      const std::size_t width = ranges[s].second - ranges[s].first;
      EXPECT_GE(width, items / shards);
      EXPECT_LE(width, items / shards + 1);
      expect_begin = ranges[s].second;
    }
    EXPECT_EQ(expect_begin, items);
  }
}

TEST(RunSharded, SingleShardRunsInline) {
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  run_sharded(42, 1, [&](unsigned s, std::size_t begin, std::size_t end) {
    EXPECT_EQ(s, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 42u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(RunSharded, ZeroItemsStillInvokesEveryShard) {
  std::atomic<unsigned> calls{0};
  run_sharded(0, 4, [&](unsigned, std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, end);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 4u);
}

// The collector's reduce pattern in miniature: per-shard local
// accumulators merged after the join must equal the serial sum.
TEST(RunSharded, PerShardAccumulatorsSumLikeSerial) {
  const std::size_t items = 10000;
  const unsigned shards = 8;
  std::vector<std::uint64_t> partial(shards, 0);
  run_sharded(items, shards,
              [&](unsigned s, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) partial[s] += i;
              });
  const std::uint64_t total =
      std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
  EXPECT_EQ(total, items * (items - 1) / 2);
}

}  // namespace
}  // namespace v6::util
