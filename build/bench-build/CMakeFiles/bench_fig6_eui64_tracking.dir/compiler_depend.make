# Empty compiler generated dependencies file for bench_fig6_eui64_tracking.
# This may be replaced when dependencies are built.
