#include "net/classify.h"

#include <gtest/gtest.h>

namespace v6::net {
namespace {

TEST(Classify, Zeroes) {
  EXPECT_EQ(classify_iid(0, false), AddressCategory::kZeroes);
}

TEST(Classify, LowByte) {
  EXPECT_EQ(classify_iid(0x1, false), AddressCategory::kLowByte);
  EXPECT_EQ(classify_iid(0xff, false), AddressCategory::kLowByte);
}

TEST(Classify, LowTwoBytes) {
  EXPECT_EQ(classify_iid(0x100, false), AddressCategory::kLow2Bytes);
  EXPECT_EQ(classify_iid(0xffff, false), AddressCategory::kLow2Bytes);
}

TEST(Classify, StructuralBeatsIpv4Flag) {
  // ::1 stays Low Byte even if an AS-level IPv4 gate fired.
  EXPECT_EQ(classify_iid(0x1, true), AddressCategory::kLowByte);
}

TEST(Classify, Ipv4MappedWhenAccepted) {
  const std::uint64_t iid = 0xc0a80101ULL;  // 192.168.1.1 in low 32
  EXPECT_EQ(classify_iid(iid, true), AddressCategory::kIpv4Mapped);
  // Without AS acceptance it falls through to an entropy band.
  EXPECT_NE(classify_iid(iid, false), AddressCategory::kIpv4Mapped);
}

TEST(Classify, EntropyBands) {
  EXPECT_EQ(classify_iid(0x0123456789abcdefULL, false),
            AddressCategory::kHighEntropy);
  // 8 zeros + 8 ones -> 0.25 normalized -> medium.
  EXPECT_EQ(classify_iid(0x1111111100000000ULL, false),
            AddressCategory::kMediumEntropy);
  // Mostly one symbol -> low entropy (but not structurally low-byte).
  EXPECT_EQ(classify_iid(0x7770000000000000ULL, false),
            AddressCategory::kLowEntropy);
}

TEST(Classify, AddressOverload) {
  const auto a = Ipv6Address::from_u64(0x20010db800000000ULL, 0x1);
  EXPECT_EQ(classify_address(a, false), AddressCategory::kLowByte);
}

TEST(Classify, CategoryNames) {
  EXPECT_STREQ(to_string(AddressCategory::kZeroes), "Zeroes");
  EXPECT_STREQ(to_string(AddressCategory::kLowByte), "Low Byte");
  EXPECT_STREQ(to_string(AddressCategory::kIpv4Mapped), "IPv4");
}

TEST(Ipv4Candidates, Low32Encoding) {
  const auto candidates = ipv4_candidates(0x00000000c0a80101ULL);
  bool found = false;
  for (const auto& c : candidates) {
    if (c.encoding == Ipv4Embedding::kLow32) {
      EXPECT_EQ(c.address.to_string(), "192.168.1.1");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Ipv4Candidates, High32Encoding) {
  const auto candidates = ipv4_candidates(0x0a00000100000000ULL);
  bool found = false;
  for (const auto& c : candidates) {
    if (c.encoding == Ipv4Embedding::kHigh32) {
      EXPECT_EQ(c.address.to_string(), "10.0.0.1");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Ipv4Candidates, DecimalHextetsEncoding) {
  // IID 0192:0168:0001:0001 reads as 192.168.1.1 when each hextet's hex
  // digits are taken as decimals.
  const auto candidates = ipv4_candidates(0x0192016800010001ULL);
  bool found = false;
  for (const auto& c : candidates) {
    if (c.encoding == Ipv4Embedding::kDecimalHextets) {
      EXPECT_EQ(c.address.to_string(), "192.168.1.1");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Ipv4Candidates, RejectsHexDigitsInDecimalEncoding) {
  // 0x1ab is not a decimal reading.
  for (const auto& c : ipv4_candidates(0x01ab016800010001ULL)) {
    EXPECT_NE(c.encoding, Ipv4Embedding::kDecimalHextets);
  }
}

TEST(Ipv4Candidates, RejectsOver255InDecimalEncoding) {
  // 0x0999 reads as 999 > 255.
  for (const auto& c : ipv4_candidates(0x0999016800010001ULL)) {
    EXPECT_NE(c.encoding, Ipv4Embedding::kDecimalHextets);
  }
}

TEST(Ipv4Candidates, NoCandidatesForRandomHighEntropy) {
  EXPECT_TRUE(ipv4_candidates(0x9f3a7cd2e45b8a61ULL).empty());
}

TEST(Ipv4Candidates, ZeroIidHasNoCandidates) {
  EXPECT_TRUE(ipv4_candidates(0).empty());
}

}  // namespace
}  // namespace v6::net
