#include "util/stats.h"

#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace v6::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(EmpiricalDistribution, CdfBasics) {
  EmpiricalDistribution d({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.ccdf(2.5), 0.5);
}

TEST(EmpiricalDistribution, QuantileAndMedian) {
  EmpiricalDistribution d({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(d.median(), 30.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.21), 20.0);
}

TEST(EmpiricalDistribution, AddAfterQueryResorts) {
  EmpiricalDistribution d;
  d.add(5.0);
  EXPECT_DOUBLE_EQ(d.cdf(5.0), 1.0);
  d.add(1.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.5);
}

TEST(EmpiricalDistribution, AddNWeightsSamples) {
  EmpiricalDistribution d;
  d.add_n(1.0, 3);
  d.add(2.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.75);
}

TEST(EmpiricalDistribution, MeanMinMax) {
  EmpiricalDistribution d({1.0, 2.0, 6.0});
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 6.0);
}

TEST(EmpiricalDistribution, EmptyQuantileThrows) {
  EmpiricalDistribution d;
  EXPECT_THROW(d.quantile(0.5), std::out_of_range);
  EXPECT_THROW(d.min(), std::out_of_range);
}

TEST(EmpiricalDistribution, CdfCurveIsMonotone) {
  Rng rng(1);
  EmpiricalDistribution d;
  for (int i = 0; i < 1000; ++i) d.add(rng.uniform(0.0, 10.0));
  const auto curve = d.cdf_curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

// Regression: the old lazy ensure_sorted() mutated `mutable` members
// unguarded under const — a data race when two threads query one shared
// distribution. The full-suite TSan build (-DV6_SANITIZER=thread) and the
// always-on tsan_concurrency job exercise this with the race detector;
// here we at least hammer the same pattern and assert consistent answers.
TEST(EmpiricalDistribution, ConcurrentConstReadersAreSafe) {
  EmpiricalDistribution d;
  for (int i = 2000; i > 0; --i) d.add(static_cast<double>(i));

  constexpr int kReaders = 8;
  std::vector<std::thread> readers;
  std::array<double, kReaders> medians{};
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&d, &medians, r] { medians[static_cast<std::size_t>(
        r)] = d.median(); });
  }
  for (auto& t : readers) t.join();
  for (double m : medians) EXPECT_DOUBLE_EQ(m, 1000.0);
}

TEST(EmpiricalDistribution, CopyAndMovePreserveSamples) {
  EmpiricalDistribution d;
  d.add(3.0);
  d.add(1.0);
  d.add(2.0);

  const EmpiricalDistribution copy(d);
  EXPECT_EQ(copy.count(), 3u);
  EXPECT_DOUBLE_EQ(copy.median(), 2.0);

  EmpiricalDistribution assigned;
  assigned = d;
  EXPECT_DOUBLE_EQ(assigned.median(), 2.0);

  EmpiricalDistribution moved(std::move(d));
  EXPECT_DOUBLE_EQ(moved.median(), 2.0);
  EXPECT_EQ(d.count(), 0u);  // NOLINT(bugprone-use-after-move): reusable

  d.add(7.0);
  EXPECT_DOUBLE_EQ(d.median(), 7.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to first
  h.add(100.0);  // clamps to last
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(Histogram, CumulativeFraction) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5, 1);
  h.add(1.5, 3);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 1.0);
}

// Regression: add() used to cast (x - lo) / width straight to int64 — UB
// for NaN (and for huge finite values overflowing the cast). Non-finite
// samples are now dropped and tallied; UBSan builds
// (-DV6_SANITIZER=undefined) verify no invalid cast fires.
TEST(Histogram, NonFiniteSamplesAreDroppedAndCounted) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::signaling_NaN(), 2);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity(), 3);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.dropped(), 7u);
  for (std::size_t i = 0; i < h.buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0u);
  }

  h.add(5.0);  // finite samples still land normally alongside drops
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(9), 1.0);
}

TEST(Histogram, HugeFiniteValuesClampWithoutOverflow) {
  Histogram h(0.0, 1e-3, 4);  // tiny width: pos = x / 2.5e-4 overflows i64
  h.add(1e300);
  h.add(-1e300);
  h.add(std::numeric_limits<double>::max());
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.dropped(), 0u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Linspace, EndpointsExact) {
  const auto xs = linspace(0.0, 1.0, 11);
  ASSERT_EQ(xs.size(), 11u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_NEAR(xs[5], 0.5, 1e-12);
}

TEST(Linspace, DegenerateCount) {
  const auto xs = linspace(2.0, 5.0, 1);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_DOUBLE_EQ(xs[0], 2.0);
}

// Property: the empirical CDF of N uniform draws approaches x.
class CdfUniformProperty : public ::testing::TestWithParam<int> {};

TEST_P(CdfUniformProperty, TracksUniform) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  EmpiricalDistribution d;
  for (int i = 0; i < 20000; ++i) d.add(rng.uniform());
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(d.cdf(x), x, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfUniformProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace v6::util
