file(REMOVE_RECURSE
  "../bench/bench_table2_manufacturers"
  "../bench/bench_table2_manufacturers.pdb"
  "CMakeFiles/bench_table2_manufacturers.dir/bench_table2_manufacturers.cpp.o"
  "CMakeFiles/bench_table2_manufacturers.dir/bench_table2_manufacturers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_manufacturers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
