#include "analysis/lifetimes.h"

#include <algorithm>
#include <unordered_map>

#include "kernels/batch.h"
#include "util/thread_pool.h"

namespace v6::analysis {

namespace {

// Per-shard tallies for the Fig 2a scan: all integers, so the shard merge
// is an exact sum regardless of partitioning.
struct AddressTallies {
  std::uint64_t total = 0;
  std::uint64_t once = 0;
  std::uint64_t week = 0;
  std::uint64_t month = 0;
  std::uint64_t six = 0;
  std::vector<std::uint64_t> at_least;
};

// IID span collapse state (Fig 2b phase 1). Merging maps takes per-key
// min(first)/max(last) — commutative, so the merged map holds the same
// spans as a serial build no matter the shard layout.
struct Span {
  std::uint32_t first;
  std::uint32_t last;
};
using IidSpans = std::unordered_map<std::uint64_t, Span>;

struct BandTallies {
  std::array<std::uint64_t, 3> total{};
  std::array<std::uint64_t, 3> once{};
  std::array<std::uint64_t, 3> week{};
  std::array<std::vector<std::uint64_t>, 3> at_most;
};

}  // namespace

AddressLifetimeReport address_lifetimes(
    const ScanSource& source, std::span<const util::SimDuration> ccdf_points,
    const AnalysisConfig& config, std::vector<AnalysisStageStats>* stats) {
  const std::size_t n_points = ccdf_points.size();
  const auto tallies = scan_corpus_blocks<AddressTallies>(
      source, config, "address_lifetimes",
      [n_points] {
        AddressTallies t;
        t.at_least.assign(n_points, 0);
        return t;
      },
      // Pure integer tallies: the block form trades the per-record
      // type-erased callback for one plain loop per block.
      [&ccdf_points](AddressTallies& t,
                     std::span<const hitlist::AddressRecord> block) {
        t.total += block.size();
        for (const auto& rec : block) {
          const util::SimDuration life = rec.lifetime();
          if (life == 0) ++t.once;
          if (life >= util::kWeek) ++t.week;
          if (life >= util::kMonth) ++t.month;
          if (life >= 6 * util::kMonth) ++t.six;
          for (std::size_t i = 0; i < ccdf_points.size(); ++i) {
            if (life >= ccdf_points[i]) ++t.at_least[i];
          }
        }
      },
      [](AddressTallies& into, AddressTallies&& from) {
        into.total += from.total;
        into.once += from.once;
        into.week += from.week;
        into.month += from.month;
        into.six += from.six;
        for (std::size_t i = 0; i < into.at_least.size(); ++i) {
          into.at_least[i] += from.at_least[i];
        }
      },
      stats);

  AddressLifetimeReport report;
  report.total = tallies.total;
  if (report.total == 0) return report;
  const auto total = static_cast<double>(report.total);
  report.fraction_once = static_cast<double>(tallies.once) / total;
  report.fraction_week = static_cast<double>(tallies.week) / total;
  report.fraction_month = static_cast<double>(tallies.month) / total;
  report.fraction_six_months = static_cast<double>(tallies.six) / total;
  report.ccdf.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    report.ccdf.emplace_back(ccdf_points[i],
                             static_cast<double>(tallies.at_least[i]) / total);
  }
  return report;
}

AddressLifetimeReport address_lifetimes(
    const hitlist::Corpus& corpus,
    std::span<const util::SimDuration> ccdf_points,
    const AnalysisConfig& config, std::vector<AnalysisStageStats>* stats) {
  return address_lifetimes(make_source(corpus), ccdf_points, config, stats);
}

IidLifetimeReport iid_lifetimes(const ScanSource& source,
                                std::span<const util::SimDuration> cdf_points,
                                const AnalysisConfig& config,
                                std::vector<AnalysisStageStats>* stats) {
  // Phase 1: collapse addresses to IID spans (lifetime spans all
  // sightings of the IID across every prefix it appeared under).
  IidSpans iids = scan_corpus<IidSpans>(
      source, config, "iid_lifetimes/spans",
      [&source, &config] {
        IidSpans m;
        m.reserve(static_cast<std::size_t>(source.records) /
                      config.resolved_threads() +
                  1);
        return m;
      },
      [](IidSpans& m, const hitlist::AddressRecord& rec) {
        const auto [it, inserted] = m.try_emplace(
            rec.address.iid(), Span{rec.first_seen, rec.last_seen});
        if (!inserted) {
          it->second.first = std::min(it->second.first, rec.first_seen);
          it->second.last = std::max(it->second.last, rec.last_seen);
        }
      },
      [](IidSpans& into, IidSpans&& from) {
        for (const auto& [iid, span] : from) {
          const auto [it, inserted] = into.try_emplace(iid, span);
          if (!inserted) {
            it->second.first = std::min(it->second.first, span.first);
            it->second.last = std::max(it->second.last, span.last);
          }
        }
      },
      stats);

  // Phase 2: entropy-band the unique IIDs. The merged map's iteration
  // order varies with the shard layout, but every tally below is an
  // integer sum over per-IID pure functions, so the report does not.
  // Sharded as well — iid_entropy per unique IID is the expensive part.
  const std::uint64_t t_bands = monotonic_micros();
  std::vector<std::pair<std::uint64_t, Span>> entries(iids.begin(),
                                                      iids.end());
  const unsigned shards = config.resolved_threads();
  const std::size_t n_points = cdf_points.size();
  std::vector<BandTallies> shard_tallies(shards);
  for (auto& t : shard_tallies) {
    for (auto& v : t.at_most) v.assign(n_points, 0);
  }
  std::uint64_t merge_us = 0;
  util::run_sharded(
      entries.size(), shards,
      [&](unsigned s, std::size_t begin, std::size_t end) {
        // Entropy is the expensive part of this pass; band it through the
        // batch kernel a chunk at a time (bit-identical to per-IID
        // net::iid_entropy on either backend, so every band tally — and
        // the report floats derived from them — is dispatch-independent).
        constexpr std::size_t kChunk = 1024;
        std::uint64_t iids[kChunk];
        double entropies[kChunk];
        BandTallies& t = shard_tallies[s];
        for (std::size_t base = begin; base < end; base += kChunk) {
          const std::size_t n = std::min(kChunk, end - base);
          for (std::size_t i = 0; i < n; ++i) {
            iids[i] = entries[base + i].first;
          }
          kernels::iid_entropy_batch(iids, n, entropies);
          for (std::size_t i = 0; i < n; ++i) {
            const Span& span = entries[base + i].second;
            const auto band =
                static_cast<std::size_t>(net::entropy_band(entropies[i]));
            ++t.total[band];
            const auto life =
                static_cast<util::SimDuration>(span.last) - span.first;
            if (life == 0) ++t.once[band];
            if (life >= util::kWeek) ++t.week[band];
            for (std::size_t p = 0; p < n_points; ++p) {
              if (life <= cdf_points[p]) ++t.at_most[band][p];
            }
          }
        }
      });
  {
    const std::uint64_t t_merge = monotonic_micros();
    for (unsigned s = 1; s < shards; ++s) {
      BandTallies& from = shard_tallies[s];
      BandTallies& into = shard_tallies[0];
      for (std::size_t band = 0; band < 3; ++band) {
        into.total[band] += from.total[band];
        into.once[band] += from.once[band];
        into.week[band] += from.week[band];
        for (std::size_t p = 0; p < n_points; ++p) {
          into.at_most[band][p] += from.at_most[band][p];
        }
      }
    }
    merge_us = monotonic_micros() - t_merge;
  }

  IidLifetimeReport report;
  report.unique_iids = entries.size();
  const BandTallies& tallies = shard_tallies[0];
  for (std::size_t band = 0; band < 3; ++band) {
    auto& b = report.bands[band];
    b.total = tallies.total[band];
    if (b.total == 0) continue;
    const auto total = static_cast<double>(b.total);
    b.fraction_once = static_cast<double>(tallies.once[band]) / total;
    b.fraction_week = static_cast<double>(tallies.week[band]) / total;
    b.cdf.reserve(n_points);
    for (std::size_t p = 0; p < n_points; ++p) {
      b.cdf.emplace_back(cdf_points[p],
                         static_cast<double>(tallies.at_most[band][p]) /
                             total);
    }
  }
  const std::uint64_t wall_us = monotonic_micros() - t_bands;
  if (stats != nullptr) {
    AnalysisStageStats stat;
    stat.stage = "iid_lifetimes/bands";
    stat.threads = shards;
    stat.records = report.unique_iids;
    stat.merge_us = merge_us;
    stat.wall_us = wall_us;
    stats->push_back(std::move(stat));
  }
  // This pass shards by hand (run_sharded over the span map, not a corpus
  // scan), so it reports into the registry itself — same families as the
  // ParallelScan engine, keeping v6_analysis_records_total exhaustive.
  if (config.metrics != nullptr) {
    config.metrics
        ->counter("v6_analysis_records_total",
                  "Records scanned, per analysis kernel",
                  {{"stage", "iid_lifetimes/bands"}})
        .inc(report.unique_iids);
    config.metrics
        ->histogram("v6_analysis_wall_us",
                    "Whole-stage scan wall time (microseconds)")
        .observe(static_cast<double>(wall_us));
    config.metrics
        ->histogram("v6_analysis_merge_us",
                    "Shard-index-order merge time (microseconds)")
        .observe(static_cast<double>(merge_us));
  }
  return report;
}

IidLifetimeReport iid_lifetimes(const hitlist::Corpus& corpus,
                                std::span<const util::SimDuration> cdf_points,
                                const AnalysisConfig& config,
                                std::vector<AnalysisStageStats>* stats) {
  return iid_lifetimes(make_source(corpus), cdf_points, config, stats);
}

}  // namespace v6::analysis
