// The fixed 40-byte IPv6 header (RFC 8200 §3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "proto/buffer.h"

namespace v6::proto {

// IANA protocol numbers used by this library.
inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::uint8_t kProtoIcmpv6 = 58;

struct Ipv6Header {
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  net::Ipv6Address src;
  net::Ipv6Address dst;

  void encode(BufferWriter& out) const;
  // Returns nullopt when truncated or the version field is not 6.
  static std::optional<Ipv6Header> decode(BufferReader& in);

  friend bool operator==(const Ipv6Header&, const Ipv6Header&) = default;
};

// Serializes header + payload into one datagram, setting payload_length.
std::vector<std::uint8_t> build_datagram(Ipv6Header header,
                                         std::span<const std::uint8_t>
                                             payload);

}  // namespace v6::proto
