#include "dns/rdns.h"

#include <algorithm>

#include "util/rng.h"

namespace v6::dns {

namespace {

// Compares the first `nibble_depth` nibbles of two addresses.
// Returns <0, 0, >0 like memcmp.
int compare_prefix(const net::Ipv6Address& a, const net::Ipv6Address& b,
                   int nibble_depth) {
  const int bytes = nibble_depth / 2;
  for (int i = 0; i < bytes; ++i) {
    if (a.byte(static_cast<std::size_t>(i)) !=
        b.byte(static_cast<std::size_t>(i))) {
      return a.byte(static_cast<std::size_t>(i)) <
                     b.byte(static_cast<std::size_t>(i))
                 ? -1
                 : 1;
    }
  }
  if (nibble_depth % 2) {
    const auto an = a.byte(static_cast<std::size_t>(bytes)) >> 4;
    const auto bn = b.byte(static_cast<std::size_t>(bytes)) >> 4;
    if (an != bn) return an < bn ? -1 : 1;
  }
  return 0;
}

}  // namespace

void RdnsZone::add(const net::Ipv6Address& address, std::string hostname) {
  records_.emplace_back(address, std::move(hostname));
  sorted_ = false;
}

void RdnsZone::ensure_sorted() const {
  if (sorted_) return;
  std::sort(records_.begin(), records_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  records_.erase(std::unique(records_.begin(), records_.end(),
                             [](const auto& a, const auto& b) {
                               return a.first == b.first;
                             }),
                 records_.end());
  sorted_ = true;
}

RdnsZone::Answer RdnsZone::query(const net::Ipv6Address& prefix,
                                 int nibble_depth) const {
  ensure_sorted();
  // Binary search for any record sharing the queried prefix.
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), prefix,
      [nibble_depth](const auto& record, const net::Ipv6Address& key) {
        return compare_prefix(record.first, key, nibble_depth) < 0;
      });
  if (it == records_.end() ||
      compare_prefix(it->first, prefix, nibble_depth) != 0) {
    return Answer::kNxDomain;
  }
  if (nibble_depth >= 32) return Answer::kPtrRecord;
  return Answer::kEmptyNonTerminal;
}

std::optional<std::string> RdnsZone::ptr(
    const net::Ipv6Address& address) const {
  ensure_sorted();
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), address,
      [](const auto& record, const net::Ipv6Address& key) {
        return record.first < key;
      });
  if (it == records_.end() || it->first != address) return std::nullopt;
  return it->second;
}

namespace {

// Sets nibble `position` (0 = most significant) of the byte array.
net::Ipv6Address with_nibble(const net::Ipv6Address& base, int position,
                             int value) {
  auto bytes = base.bytes();
  const auto index = static_cast<std::size_t>(position / 2);
  if (position % 2 == 0) {
    bytes[index] = static_cast<std::uint8_t>((bytes[index] & 0x0f) |
                                             (value << 4));
  } else {
    bytes[index] =
        static_cast<std::uint8_t>((bytes[index] & 0xf0) | value);
  }
  return net::Ipv6Address(bytes);
}

void walk(const RdnsZone& zone, const net::Ipv6Address& prefix, int depth,
          ZoneWalkResult& result) {
  if (depth == 32) {
    result.discovered.push_back(prefix);
    return;
  }
  for (int nibble = 0; nibble < 16; ++nibble) {
    const auto child = with_nibble(prefix, depth, nibble);
    ++result.queries;
    switch (zone.query(child, depth + 1)) {
      case RdnsZone::Answer::kNxDomain:
        break;  // RFC 8020: nothing below — prune the whole subtree
      case RdnsZone::Answer::kEmptyNonTerminal:
      case RdnsZone::Answer::kPtrRecord:
        walk(zone, child, depth + 1, result);
        break;
    }
  }
}

}  // namespace

ZoneWalkResult walk_rdns(const RdnsZone& zone, const net::Ipv6Prefix& apex) {
  ZoneWalkResult result;
  if (apex.length() % 4 != 0) {
    // ip6.arpa delegates on nibble boundaries.
    return result;
  }
  const int start_depth = apex.length() / 4;
  ++result.queries;
  if (zone.query(apex.address(), start_depth) ==
      RdnsZone::Answer::kNxDomain) {
    return result;
  }
  walk(zone, apex.address(), start_depth, result);
  std::sort(result.discovered.begin(), result.discovered.end());
  return result;
}

RdnsZone build_world_zone(const sim::World& world, util::SimTime t,
                          double cpe_fraction) {
  RdnsZone zone;
  // Routers: operators name infrastructure interfaces.
  for (std::uint32_t ai = 0; ai < world.ases().size(); ++ai) {
    const sim::AsInfo& as = world.ases()[ai];
    for (std::uint32_t r = 0; r < as.router_count; ++r) {
      if (util::mix64(as.seed ^ 0x4d46 ^ r) % 16 == 0) {
        zone.add(world.router_address(ai, r, 1),
                 "core" + std::to_string(r) + ".as" + std::to_string(as.asn) +
                     ".example.net");
      }
    }
    // DNS-published servers have forward and reverse names.
    for (std::uint32_t s = 0; s < as.server_count; ++s) {
      const sim::DeviceId d = as.first_server + s;
      if (util::mix64(world.devices()[d].seed ^ 0xd25) % 5 < 2) {
        zone.add(world.server_address(d),
                 "host" + std::to_string(s) + ".as" + std::to_string(as.asn) +
                     ".example.com");
      }
    }
  }
  // The rDNS-exposed CPE slice (dynamic pool names).
  const auto threshold = static_cast<std::uint64_t>(
      cpe_fraction >= 1.0 ? ~std::uint64_t{0} : cpe_fraction * 0x1p64);
  for (const auto& site : world.sites()) {
    if (site.cpe == sim::kNoDevice) continue;
    const sim::Device& cpe = world.devices()[site.cpe];
    if (util::mix64(cpe.seed ^ 0x4d45) < threshold) {
      zone.add(world.device_address(site.cpe, t),
               "cpe-" + std::to_string(site.id) + ".pool.example.org");
    }
  }
  return zone;
}

}  // namespace v6::dns
