#include "net/ipv4.h"

#include <cstdio>

#include "util/strings.h"

namespace v6::net {

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    const auto octet = util::parse_dec_u64(part);
    if (!octet || *octet > 255) return std::nullopt;
    // Reject leading zeros ("01") which some parsers treat as octal.
    if (part.size() > 1 && part.front() == '0') return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(*octet);
  }
  return Ipv4Address(value);
}

}  // namespace v6::net
