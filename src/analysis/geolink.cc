#include "analysis/geolink.h"

#include <algorithm>
#include <map>

namespace v6::analysis {

GeoLinkResult link_eui64_to_bssids(std::span<const MacTrack> tracks,
                                   const geo::BssidLocationDb& wardriving,
                                   const GeoLinkConfig& config) {
  GeoLinkResult result;

  // Group wired MAC suffixes per OUI.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> wired_by_oui;
  for (const auto& track : tracks) {
    wired_by_oui[track.mac.oui().value()].push_back(track.mac.suffix());
  }

  for (auto& [oui_value, wired] : wired_by_oui) {
    const net::Oui oui(oui_value);
    const auto bssids = wardriving.bssids_in_oui(oui);
    if (bssids.empty()) continue;

    std::vector<std::uint32_t> bssid_suffixes;
    bssid_suffixes.reserve(bssids.size());
    for (const auto& b : bssids) bssid_suffixes.push_back(b.suffix());
    std::sort(bssid_suffixes.begin(), bssid_suffixes.end());

    // Tally deltas between each wired MAC and every BSSID within the
    // window; the modal delta is the candidate per-OUI offset.
    std::map<std::int32_t, std::uint32_t> delta_votes;
    for (const auto suffix : wired) {
      const auto lo = static_cast<std::int64_t>(suffix) - config.max_offset;
      const auto hi = static_cast<std::int64_t>(suffix) + config.max_offset;
      auto it = std::lower_bound(
          bssid_suffixes.begin(), bssid_suffixes.end(),
          static_cast<std::uint32_t>(std::max<std::int64_t>(lo, 0)));
      for (; it != bssid_suffixes.end() &&
             static_cast<std::int64_t>(*it) <= hi;
           ++it) {
        const auto delta = static_cast<std::int32_t>(
            static_cast<std::int64_t>(*it) - suffix);
        ++delta_votes[delta];
      }
    }
    std::int32_t best_delta = 0;
    std::uint32_t best_votes = 0;
    for (const auto& [delta, votes] : delta_votes) {
      if (votes > best_votes) {
        best_votes = votes;
        best_delta = delta;
      }
    }
    if (best_votes < config.min_pairs_per_oui) continue;
    result.oui_offsets[oui_value] = best_delta;

    // Apply the inferred offset: every wired MAC whose shifted sibling is
    // wardriven geolocates.
    for (const auto suffix : wired) {
      const std::int64_t shifted =
          static_cast<std::int64_t>(suffix) + best_delta;
      if (shifted < 0 || shifted > 0xffffff) continue;
      const net::MacAddress bssid = net::MacAddress::from_u64(
          (static_cast<std::uint64_t>(oui_value) << 24) |
          static_cast<std::uint64_t>(shifted));
      if (const auto location = wardriving.lookup(bssid)) {
        const net::MacAddress mac = net::MacAddress::from_u64(
            (static_cast<std::uint64_t>(oui_value) << 24) | suffix);
        result.linked.push_back({mac, bssid, *location});
      }
    }
  }

  // Country attribution of the geolocated devices.
  std::unordered_map<geo::CountryCode, std::uint64_t> by_country;
  for (const auto& link : result.linked) {
    ++by_country[geo::nearest_country(link.location.latitude,
                                      link.location.longitude)];
  }
  result.by_country.assign(by_country.begin(), by_country.end());
  std::sort(result.by_country.begin(), result.by_country.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return result;
}

}  // namespace v6::analysis
