#include "net/ipv6.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>

#include <cstring>
#include <unordered_set>

#include "util/rng.h"

namespace v6::net {
namespace {

TEST(Ipv6Address, DefaultIsUnspecified) {
  Ipv6Address a;
  EXPECT_TRUE(a.is_unspecified());
  EXPECT_EQ(a.to_string(), "::");
}

TEST(Ipv6Address, FromHextetsRoundTrip) {
  const auto a = Ipv6Address::from_hextets(
      {0x2001, 0xdb8, 0, 0, 0, 0, 0, 1});
  EXPECT_EQ(a.hextet(0), 0x2001);
  EXPECT_EQ(a.hextet(7), 1);
  EXPECT_EQ(a.to_string(), "2001:db8::1");
}

TEST(Ipv6Address, FromU64Halves) {
  const auto a = Ipv6Address::from_u64(0x20010db800000000ULL, 0x1ULL);
  EXPECT_EQ(a.hi64(), 0x20010db800000000ULL);
  EXPECT_EQ(a.lo64(), 1ULL);
  EXPECT_EQ(a.iid(), 1ULL);
  EXPECT_EQ(a.to_string(), "2001:db8::1");
}

// RFC 5952 canonical form cases.
struct FormatCase {
  const char* input;
  const char* canonical;
};

class Rfc5952Format : public ::testing::TestWithParam<FormatCase> {};

TEST_P(Rfc5952Format, Canonicalizes) {
  const auto& [input, canonical] = GetParam();
  const auto a = Ipv6Address::parse(input);
  ASSERT_TRUE(a.has_value()) << input;
  EXPECT_EQ(a->to_string(), canonical);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Rfc5952Format,
    ::testing::Values(
        FormatCase{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
        FormatCase{"2001:DB8::1", "2001:db8::1"},
        // Single zero group is NOT compressed (RFC 5952 4.2.2).
        FormatCase{"2001:db8:0:1:1:1:1:1", "2001:db8:0:1:1:1:1:1"},
        // Longest run wins; leftmost on tie (4.2.3).
        FormatCase{"2001:0:0:1:0:0:0:1", "2001:0:0:1::1"},
        FormatCase{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"},
        FormatCase{"::", "::"},
        FormatCase{"::1", "::1"},
        FormatCase{"1::", "1::"},
        FormatCase{"fe80:0:0:0:0:0:0:1", "fe80::1"}));

TEST(Ipv6Parse, RejectsZoneId) {
  // We do not support zone identifiers; ensure they're rejected rather
  // than silently accepted (the INSTANTIATE case above never parses one).
  EXPECT_FALSE(Ipv6Address::parse("fe80::1%eth0"));
}

TEST(Ipv6Parse, EmbeddedIpv4Tail) {
  const auto a = Ipv6Address::parse("::ffff:192.168.1.1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->hextet(5), 0xffff);
  EXPECT_EQ(a->hextet(6), 0xc0a8);
  EXPECT_EQ(a->hextet(7), 0x0101);
}

TEST(Ipv6Parse, FullFormWithIpv4Tail) {
  const auto a = Ipv6Address::parse("0:0:0:0:0:ffff:10.0.0.1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->hextet(6), 0x0a00);
}

TEST(Ipv6Parse, Invalid) {
  EXPECT_FALSE(Ipv6Address::parse(""));
  EXPECT_FALSE(Ipv6Address::parse(":"));
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7"));        // 7 groups
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9"));    // 9 groups
  EXPECT_FALSE(Ipv6Address::parse("1::2::3"));              // two ::
  EXPECT_FALSE(Ipv6Address::parse("12345::"));              // >4 digits
  EXPECT_FALSE(Ipv6Address::parse("g::1"));                 // bad digit
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8::"));    // :: of nothing
  EXPECT_FALSE(Ipv6Address::parse("::1.2.3.4.5"));          // bad v4
  EXPECT_FALSE(Ipv6Address::parse("::192.168.1.1:5"));      // v4 not last
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8 "));     // trailing junk
  EXPECT_FALSE(Ipv6Address::parse(":1:2:3:4:5:6:7:8"));     // leading colon
}

TEST(Ipv6Parse, MaxGroupsWithCompression) {
  // Like inet_pton, "::" standing for exactly one zero group is accepted.
  const auto a = Ipv6Address::parse("1:2:3:4:5:6:7::");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->hextet(7), 0);
  EXPECT_TRUE(Ipv6Address::parse("1:2:3:4:5:6::"));
  // Eight explicit groups plus "::" is one too many.
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8::"));
}

TEST(Ipv6Address, ComparisonIsLexicographic) {
  const auto a = Ipv6Address::from_u64(1, 0);
  const auto b = Ipv6Address::from_u64(1, 1);
  const auto c = Ipv6Address::from_u64(2, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, Ipv6Address::from_u64(1, 0));
}

TEST(Ipv6Hash, DistinctValuesMostlyDistinctHashes) {
  util::Rng rng(5);
  std::unordered_set<std::size_t> hashes;
  for (int i = 0; i < 10000; ++i) {
    hashes.insert(
        Ipv6AddressHash{}(Ipv6Address::from_u64(rng.next(), rng.next())));
  }
  EXPECT_GT(hashes.size(), 9990u);
}

// Property: parse(to_string(a)) == a over random addresses.
class Ipv6RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Ipv6RoundTrip, ParseFormatIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    // Mix fully random addresses with zero-heavy ones to exercise "::".
    std::uint64_t hi = rng.next(), lo = rng.next();
    if (rng.chance(0.5)) hi &= rng.next();
    if (rng.chance(0.5)) lo &= rng.next() & rng.next();
    if (rng.chance(0.3)) lo = 0;
    if (rng.chance(0.1)) hi = 0;
    const auto a = Ipv6Address::from_u64(hi, lo);
    const auto parsed = Ipv6Address::parse(a.to_string());
    ASSERT_TRUE(parsed) << a.to_string();
    EXPECT_EQ(*parsed, a) << a.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ipv6RoundTrip, ::testing::Values(1, 2, 3, 4, 5));

// Oracle test: our codec must agree byte-for-byte with the platform's
// inet_pton/inet_ntop (glibc implements RFC 5952 formatting).
class Ipv6LibcOracle : public ::testing::TestWithParam<int> {};

TEST_P(Ipv6LibcOracle, MatchesInetNtopAndPton) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t hi = rng.next(), lo = rng.next();
    if (rng.chance(0.4)) hi &= rng.next() & rng.next();
    if (rng.chance(0.4)) lo &= rng.next() & rng.next();
    const auto a = Ipv6Address::from_u64(hi, lo);

    char buffer[INET6_ADDRSTRLEN];
    ASSERT_NE(inet_ntop(AF_INET6, a.bytes().data(), buffer, sizeof buffer),
              nullptr);
    // glibc renders some addresses with an embedded dotted quad
    // (e.g. ::1.2.3.4); we render pure hex. Both are valid RFC 5952;
    // compare via pton instead of strings for those.
    if (std::string_view(buffer).find('.') == std::string_view::npos) {
      EXPECT_EQ(a.to_string(), buffer);
    }

    // Our formatter's output must parse back identically through libc.
    in6_addr reparsed{};
    ASSERT_EQ(inet_pton(AF_INET6, a.to_string().c_str(), &reparsed), 1);
    EXPECT_EQ(std::memcmp(&reparsed, a.bytes().data(), 16), 0);

    // And libc's output must parse identically through us.
    const auto ours = Ipv6Address::parse(buffer);
    ASSERT_TRUE(ours) << buffer;
    EXPECT_EQ(*ours, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ipv6LibcOracle, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace v6::net
