// Core identifier and enum types of the simulated world.
#pragma once

#include <cstdint>

namespace v6::sim {

// Autonomous system number.
using Asn = std::uint32_t;

// Index of a device in World::devices().
using DeviceId = std::uint32_t;
inline constexpr DeviceId kNoDevice = ~DeviceId{0};

// Index of a customer site in World::sites().
using SiteId = std::uint32_t;
inline constexpr SiteId kNoSite = ~SiteId{0};

// Coarse AS business classification, mirroring the ASdb categories the
// paper reports (phone providers vs. fixed-line ISPs vs. cloud etc.).
enum class AsType : std::uint8_t {
  kIspBroadband,   // residential fixed-line ISP
  kIspMobile,      // "Phone Provider" in ASdb terms
  kCloud,          // hosting / "Computer and Information Technology"
  kEducation,      // campus networks
  kTransit,        // backbone carriers; infrastructure only
};

const char* to_string(AsType t) noexcept;

// What a device is; drives its addressing, firewalling, NTP habits, and
// discoverability by active scans.
enum class DeviceKind : std::uint8_t {
  kRouter,     // core / AS infrastructure router interface
  kCpe,        // customer premises router (the site's gateway)
  kServer,     // datacenter server
  kDesktop,    // PC / laptop in a customer LAN
  kMobile,     // phone; moves between WiFi and cellular
  kIot,        // smart-home / IoT gadget
};

const char* to_string(DeviceKind k) noexcept;

// How a device forms the interface identifier of its IPv6 address.
enum class IidStrategy : std::uint8_t {
  kEui64,            // SLAAC with embedded MAC (the privacy leak)
  kRandomEphemeral,  // RFC 4941 privacy extensions; regenerates daily
  kRandomStable,     // RFC 7217 opaque per-prefix stable IID
  kLowByte,          // operator-assigned ::1, ::2, ...
  kLow2Bytes,        // operator-assigned ::xxxx
  kZero,             // all-zero IID (subnet-router style)
  kIpv4Embedded,     // interface's IPv4 address in the low 32 bits
  kStructuredLow,    // upper 4 IID bytes zero, lower 4 random (Jio pattern)
  kDhcpSequential,   // small sequential values from a DHCPv6 pool
  kSparseEphemeral,  // ephemeral but sparse: 3 random nibbles, rest zero
                     // (low-entropy yet unique — the Fig 2b "low" curve)
};

const char* to_string(IidStrategy s) noexcept;

}  // namespace v6::sim
