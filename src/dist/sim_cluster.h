// In-process, fully deterministic simulation of the coordinator/worker
// protocol: N simulated workers each collect a vantage subset under a
// seeded netsim::WorkerFaultSchedule, a simulated coordinator grants
// chunk leases, detects death/stalls by heartbeat silence, and reassigns
// with capped exponential backoff + seeded jitter. The merged corpus is
// bit-identical to the single-process run at ANY worker count and under
// ANY fault plan — the cluster only decides WHEN work happens and how
// often it is redone, never WHAT gets recorded:
//
//   * each worker runs the full device simulation (identical RNG draws,
//     DNS steering, fault verdicts) but records only its vantage subset
//     (CollectorConfig::vantage_filter), so disjoint subsets stay in
//     lockstep and their union equals the unfiltered run;
//   * a lease executes through the existing checkpoint machinery — every
//     chunk boundary uploads a durable (state, corpus) snapshot; a kill
//     or revocation loses at most the chunks since the last upload;
//   * recovery is PassiveCollector::resume() from that snapshot — PR 2's
//     invariant makes the resumed tail bit-identical to never crashing;
//   * epoch fencing rejects uploads from zombie (revoked-then-woken)
//     workers, so reassignment never double-counts.
//
// The cluster clock is sim seconds: a healthy chunk of S sim seconds
// costs S lane seconds (times the fault plan's slow factor); replaying an
// already-checkpointed prefix costs replay_cost per sim second. Kills and
// stalls are keyed on lane time. Everything runs on one thread in a
// deterministic event loop, so DistReport numbers are exact and
// reproducible — the recovery-latency figures in bench_dist_collection
// are pure functions of (config, seed).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dist/protocol.h"
#include "hitlist/corpus.h"
#include "obs/cluster.h"
#include "hitlist/passive_collector.h"
#include "netsim/fault_schedule.h"
#include "netsim/pool_dns.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::dist {

struct DistConfig {
  // Worker processes at cluster start (respawns may add more).
  std::uint32_t workers = 4;
  // Vantage subsets (vantage v belongs to subset v % subsets); 0 means
  // one subset per initial worker.
  std::uint32_t subsets = 0;
  // Sim-time spacing of chunk boundaries inside a lease: every boundary
  // uploads a durable checkpoint, so this is also the worst-case redo
  // after a death. Never changes the merged corpus.
  util::SimDuration chunk_interval = util::kWeek;
  // Heartbeat silence after which the coordinator declares a worker dead
  // or stalled-out and revokes its lease.
  util::SimDuration heartbeat_timeout = util::kDay;
  // Reassignment backoff: retry r of a subset waits
  // min(retry_cap, retry_backoff * 2^r), stretched by up to retry_jitter
  // of itself (seeded jitter — a pure hash of (seed, subset, r)).
  util::SimDuration retry_backoff = util::kHour;
  util::SimDuration retry_cap = 12 * util::kHour;
  double retry_jitter = 0.5;
  // Replacement workers: a detected death spawns a fresh worker
  // respawn_delay after detection (keeps workers=1 runs alive through a
  // kill). Replacements carry no planned faults.
  bool respawn = true;
  util::SimDuration respawn_delay = 2 * util::kHour;
  // Lane cost of replaying one already-checkpointed sim second (replay
  // skips recording and the corpus table work, so it is cheaper).
  double replay_cost = 0.125;
  // Seed for the reassignment jitter.
  std::uint64_t seed = 71;
  // Seeded worker fault plan; inactive means a healthy fleet. Forced
  // kills (below) compose with it.
  netsim::WorkerFaultPlanConfig worker_faults;
  // Deterministic forced kills: exactly min(forced_kills, workers) of the
  // initial workers are killed once each, at evenly staggered lane times
  // inside the window (worker w dies at start + (w+1)/(K+1) of the span).
  // This is the CLI's --dist-kills and the identity-matrix test's knob —
  // an exact kill count, unlike the probabilistic worker_faults plan.
  std::uint32_t forced_kills = 0;
};

// What the cluster did — the observability of the run, not its result
// (the corpus is the result, and it never varies with any of this).
struct DistReport {
  std::uint32_t workers = 0;         // including respawned replacements
  std::uint32_t subsets = 0;
  std::uint64_t leases_granted = 0;
  std::uint64_t checkpoints_uploaded = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t timeouts = 0;        // heartbeat timeouts fired
  std::uint64_t reassignments = 0;
  std::uint64_t stale_uploads_rejected = 0;
  std::uint64_t replayed_chunks = 0;
  // Cluster-clock sum over reassignments of (recovery grant - failure).
  std::uint64_t recovery_latency_total = 0;
  // Cluster-clock instant the last subset completed.
  util::SimTime finished_at = 0;
  // Summed collector counters (equal to the single-process values).
  std::uint64_t polls_attempted = 0;
  std::uint64_t polls_answered = 0;
  std::vector<hitlist::VantageHealthStats> vantage_health;
  // Concatenated V6DIST01 frames of everything said on the wire; passes
  // lint_dist_frames().
  std::vector<std::uint8_t> frame_log;
  // Per-subset worker observability reports, decoded from the kObsReport
  // frames each completing lease uploads. Counter families aggregate to
  // exactly the single-process values at any worker count and under any
  // fault plan (only the COMPLETING lease's cumulative totals count per
  // subset — aborted leases upload nothing).
  obs::ClusterAggregator cluster_obs;
};

class SimCluster {
 public:
  // `collector_cfg` is the single-process collector configuration the
  // cluster must reproduce; its metrics/sampler are replaced per lease
  // (each lease runs a private Registry + TimelineSampler whose grid
  // coincides with the checkpoint grid; the completing lease uploads the
  // pair as a kObsReport frame, aggregated into DistReport::cluster_obs).
  // The cluster still reports merged totals into the caller's `registry`
  // after the merge. `faults` (optional) lets the caller inject
  // forced kills on top of config.worker_faults; pass nullptr to let the
  // cluster build the plan from the config alone.
  SimCluster(const sim::World& world, netsim::DataPlane& plane,
             const netsim::PoolDns& dns,
             const hitlist::CollectorConfig& collector_cfg,
             const DistConfig& config,
             netsim::WorkerFaultSchedule* faults = nullptr,
             obs::Registry* registry = nullptr,
             obs::TimelineSampler* sampler = nullptr);

  // Runs distributed collection over [start, end) into `out` (merged and
  // canonicalized). Throws std::runtime_error if the fleet dies out with
  // respawn disabled — fail loudly rather than hang.
  DistReport run(hitlist::Corpus& out, util::SimTime start, util::SimTime end);

 private:
  const sim::World* world_;
  netsim::DataPlane* plane_;
  const netsim::PoolDns* dns_;
  hitlist::CollectorConfig collector_cfg_;
  DistConfig config_;
  netsim::WorkerFaultSchedule* faults_;
  obs::Registry* registry_;
  obs::TimelineSampler* sampler_;
};

}  // namespace v6::dist
