#include "hitlist/passive_collector.h"

#include <algorithm>

#include "ntp/client_schedule.h"
#include "proto/ntp_packet.h"
#include "proto/udp.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace v6::hitlist {

PassiveCollector::PassiveCollector(const sim::World& world,
                                   netsim::DataPlane& plane,
                                   const netsim::PoolDns& dns,
                                   const CollectorConfig& config)
    : world_(&world), plane_(&plane), dns_(&dns), config_(config) {}

void PassiveCollector::collect_shard(Corpus& corpus, std::size_t first,
                                     std::size_t last, util::SimTime start,
                                     util::SimTime end,
                                     const ObservationHook& hook,
                                     std::mutex* hook_mu,
                                     ShardTally& tally) const {
  // One server object per vantage, all sinking into this shard's corpus.
  std::vector<std::unique_ptr<ntp::NtpServer>> servers;
  servers.reserve(world_->vantages().size());
  for (const auto& vantage : world_->vantages()) {
    auto sink = [&corpus, &hook, hook_mu, address = vantage.address](
                    const ntp::Observation& obs) {
      corpus.add(obs.client, obs.time, obs.vantage);
      if (hook) {
        if (hook_mu == nullptr) {
          hook(obs, address);
        } else {
          std::lock_guard<std::mutex> lock(*hook_mu);
          hook(obs, address);
        }
      }
    };
    servers.push_back(std::make_unique<ntp::NtpServer>(vantage, sink));
    if (config_.wire_fidelity) servers.back()->bind(*plane_);
  }

  const bool outages_possible = world_->config().outage_count > 0;
  const auto devices = world_->devices();
  for (sim::DeviceId d = first; d < last; ++d) {
    const sim::Device& dev = devices[d];
    if (!dev.ntp.uses_pool) continue;
    // Order-independent per-device stream: the collection result does not
    // depend on enumeration order (the property that makes sharding
    // devices across threads or machines bit-exact).
    util::Rng dev_rng(
        util::mix64(config_.seed ^ 0xc0111ec7 ^ util::mix64(dev.seed)));
    ntp::ClientSchedule schedule(dev, start, end);
    schedule.for_each([&](util::SimTime t) {
      // An AS-wide outage silences every host in it (the intro's outage-
      // detection use case: the corpus time series shows the hole).
      if (outages_possible &&
          world_->in_outage(world_->attachment(d, t).as_index, t)) {
        return;
      }
      const net::Ipv6Address client = world_->device_address(d, t);
      // One DNS resolution per sync event; every packet of an iburst
      // rides it to the same server.
      const sim::VantagePoint* vantage = dns_->resolve(client, dev_rng);
      // A burst is one sync event: its packets go out ~2s apart.
      const std::uint8_t burst =
          config_.ignore_bursts ? 1 : std::max<std::uint8_t>(dev.ntp.burst, 1);
      for (std::uint8_t k = 0; k < burst; ++k) {
        const util::SimTime tk = t + 2 * k;
        if (tk >= end) break;  // the collection window closes mid-burst
        ++tally.polls;
        if (vantage == nullptr) continue;
        if (config_.wire_fidelity) {
          const auto nonce = static_cast<std::uint32_t>(dev_rng.next());
          const proto::NtpPacket request =
              proto::make_client_request(tk, nonce);
          const auto src_port =
              static_cast<std::uint16_t>(49152 + dev_rng.bounded(16384));
          const auto response_bytes =
              plane_->send_udp(client, src_port, vantage->address,
                               proto::kNtpPort, request.encode(), tk);
          if (!response_bytes) continue;
          // SNTP client-side validation: server mode, origin echoes our
          // transmit timestamp.
          const auto response = proto::NtpPacket::decode(*response_bytes);
          if (!response || response->mode != proto::NtpMode::kServer ||
              response->origin_time != request.transmit_time) {
            continue;
          }
          ++tally.answered;
        } else {
          // Fast path: identical steering and loss model, no
          // serialization. Request-direction loss suppresses the
          // observation entirely...
          if (dev_rng.chance(config_.loss_rate)) continue;
          servers[vantage->id]->record(client, tk);
          // ...response-direction loss costs only the client's answer.
          if (!dev_rng.chance(config_.loss_rate)) ++tally.answered;
        }
      }
    });
  }
}

void PassiveCollector::run(Corpus& corpus, util::SimTime start,
                           util::SimTime end, const ObservationHook& hook) {
  const auto devices = world_->devices();
  unsigned shards = config_.threads != 0 ? config_.threads
                                         : util::ThreadPool::hardware_threads();
  // The wire path serializes every poll through the shared DataPlane
  // (UDP delivery mutates its loss RNG and routing state), so it stays
  // single-threaded; the fast path is the one built for scale.
  if (config_.wire_fidelity) shards = 1;
  shards = static_cast<unsigned>(std::min<std::size_t>(
      shards, std::max<std::size_t>(devices.size(), 1)));

  if (shards <= 1) {
    ShardTally tally;
    collect_shard(corpus, 0, devices.size(), start, end, hook, nullptr,
                  tally);
    polls_ += tally.polls;
    answered_ += tally.answered;
    return;
  }

  std::mutex hook_mu;
  std::vector<Corpus> parts;
  parts.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) parts.emplace_back(1 << 12);
  std::vector<ShardTally> tallies(shards);
  util::run_sharded(
      devices.size(), shards,
      [&](unsigned s, std::size_t begin, std::size_t shard_end) {
        collect_shard(parts[s], begin, shard_end, start, end, hook,
                      hook ? &hook_mu : nullptr, tallies[s]);
      });
  // Deterministic reduce: Corpus aggregates are commutative (min/max/
  // sum/or), so the merged corpus matches the serial run field-for-field.
  for (unsigned s = 0; s < shards; ++s) {
    corpus.merge(parts[s]);
    polls_ += tallies[s].polls;
    answered_ += tallies[s].answered;
  }
}

}  // namespace v6::hitlist
