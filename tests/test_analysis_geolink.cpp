#include "analysis/geolink.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace v6::analysis {
namespace {

constexpr std::uint32_t kOui = 0x3ca62f;  // AVM-style

net::MacAddress mac_with(std::uint32_t oui, std::uint32_t suffix) {
  return net::MacAddress::from_u64(
      (static_cast<std::uint64_t>(oui) << 24) | suffix);
}

std::vector<MacTrack> tracks_for(std::uint32_t oui, std::uint32_t first,
                                 std::uint32_t count) {
  std::vector<MacTrack> tracks;
  for (std::uint32_t i = 0; i < count; ++i) {
    MacTrack t;
    t.mac = mac_with(oui, first + i * 3);  // non-contiguous suffixes
    tracks.push_back(t);
  }
  return tracks;
}

TEST(GeoLink, InfersOffsetAndLinks) {
  // Ground truth: BSSID = wired MAC + 0x40, wardriven at a known spot.
  const auto tracks = tracks_for(kOui, 1000, 200);
  geo::BssidLocationDb db;
  for (const auto& t : tracks) {
    // Near the German registry centroid so attribution is unambiguous.
    db.add(mac_with(kOui, t.mac.suffix() + 0x40), {51.0, 10.1});
  }
  GeoLinkConfig config;
  config.min_pairs_per_oui = 50;
  const auto result = link_eui64_to_bssids(tracks, db, config);

  ASSERT_TRUE(result.oui_offsets.contains(kOui));
  EXPECT_EQ(result.oui_offsets.at(kOui), 0x40);
  EXPECT_EQ(result.linked.size(), tracks.size());
  ASSERT_FALSE(result.by_country.empty());
  EXPECT_EQ(result.by_country.front().first.to_string(), "DE");
  EXPECT_EQ(result.by_country.front().second, tracks.size());
}

TEST(GeoLink, NegativeOffsetsWork) {
  const auto tracks = tracks_for(kOui, 5000, 150);
  geo::BssidLocationDb db;
  for (const auto& t : tracks) {
    db.add(mac_with(kOui, t.mac.suffix() - 0x10), {48.8, 2.3});
  }
  GeoLinkConfig config;
  config.min_pairs_per_oui = 50;
  const auto result = link_eui64_to_bssids(tracks, db, config);
  ASSERT_TRUE(result.oui_offsets.contains(kOui));
  EXPECT_EQ(result.oui_offsets.at(kOui), -0x10);
  EXPECT_EQ(result.linked.size(), tracks.size());
}

TEST(GeoLink, TooFewPairsNoInference) {
  const auto tracks = tracks_for(kOui, 1000, 10);
  geo::BssidLocationDb db;
  for (const auto& t : tracks) {
    db.add(mac_with(kOui, t.mac.suffix() + 0x40), {52.5, 13.4});
  }
  GeoLinkConfig config;
  config.min_pairs_per_oui = 50;
  const auto result = link_eui64_to_bssids(tracks, db, config);
  EXPECT_FALSE(result.oui_offsets.contains(kOui));
  EXPECT_TRUE(result.linked.empty());
}

TEST(GeoLink, PartialWardrivingCoverageLinksSubset) {
  const auto tracks = tracks_for(kOui, 1000, 200);
  geo::BssidLocationDb db;
  util::Rng rng(9);
  std::size_t covered = 0;
  for (const auto& t : tracks) {
    if (rng.chance(0.5)) {
      db.add(mac_with(kOui, t.mac.suffix() + 0x08), {50.1, 8.7});
      ++covered;
    }
  }
  GeoLinkConfig config;
  config.min_pairs_per_oui = 30;
  const auto result = link_eui64_to_bssids(tracks, db, config);
  ASSERT_TRUE(result.oui_offsets.contains(kOui));
  EXPECT_EQ(result.oui_offsets.at(kOui), 0x08);
  EXPECT_EQ(result.linked.size(), covered);
}

TEST(GeoLink, UnrelatedOuiBssidsDoNotConfuse) {
  const auto tracks = tracks_for(kOui, 1000, 100);
  geo::BssidLocationDb db;
  for (const auto& t : tracks) {
    db.add(mac_with(kOui, t.mac.suffix() + 0x20), {52.5, 13.4});
    // Same-suffix BSSIDs under a different OUI must be ignored entirely.
    db.add(mac_with(0x111111, t.mac.suffix() + 0x99), {0.0, 0.0});
  }
  GeoLinkConfig config;
  config.min_pairs_per_oui = 30;
  const auto result = link_eui64_to_bssids(tracks, db, config);
  EXPECT_EQ(result.oui_offsets.at(kOui), 0x20);
  EXPECT_FALSE(result.oui_offsets.contains(0x111111));
}

TEST(GeoLink, OffsetOutsideWindowNotFound) {
  const auto tracks = tracks_for(kOui, 100000, 100);
  geo::BssidLocationDb db;
  for (const auto& t : tracks) {
    db.add(mac_with(kOui, t.mac.suffix() + 5000), {1, 1});
  }
  GeoLinkConfig config;
  config.max_offset = 1024;
  config.min_pairs_per_oui = 30;
  const auto result = link_eui64_to_bssids(tracks, db, config);
  EXPECT_FALSE(result.oui_offsets.contains(kOui));
}

TEST(GeoLink, EmptyInputsAreFine) {
  geo::BssidLocationDb db;
  const auto result = link_eui64_to_bssids({}, db, {});
  EXPECT_TRUE(result.linked.empty());
  EXPECT_TRUE(result.by_country.empty());
}

}  // namespace
}  // namespace v6::analysis
