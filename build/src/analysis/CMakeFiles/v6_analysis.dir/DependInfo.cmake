
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/address_categories.cc" "src/analysis/CMakeFiles/v6_analysis.dir/address_categories.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/address_categories.cc.o.d"
  "/root/repo/src/analysis/as_entropy.cc" "src/analysis/CMakeFiles/v6_analysis.dir/as_entropy.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/as_entropy.cc.o.d"
  "/root/repo/src/analysis/bad_apple.cc" "src/analysis/CMakeFiles/v6_analysis.dir/bad_apple.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/bad_apple.cc.o.d"
  "/root/repo/src/analysis/dataset_compare.cc" "src/analysis/CMakeFiles/v6_analysis.dir/dataset_compare.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/dataset_compare.cc.o.d"
  "/root/repo/src/analysis/entropy_distribution.cc" "src/analysis/CMakeFiles/v6_analysis.dir/entropy_distribution.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/entropy_distribution.cc.o.d"
  "/root/repo/src/analysis/eui64_tracking.cc" "src/analysis/CMakeFiles/v6_analysis.dir/eui64_tracking.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/eui64_tracking.cc.o.d"
  "/root/repo/src/analysis/geolink.cc" "src/analysis/CMakeFiles/v6_analysis.dir/geolink.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/geolink.cc.o.d"
  "/root/repo/src/analysis/lifetimes.cc" "src/analysis/CMakeFiles/v6_analysis.dir/lifetimes.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/lifetimes.cc.o.d"
  "/root/repo/src/analysis/manufacturers.cc" "src/analysis/CMakeFiles/v6_analysis.dir/manufacturers.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/manufacturers.cc.o.d"
  "/root/repo/src/analysis/outage.cc" "src/analysis/CMakeFiles/v6_analysis.dir/outage.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/outage.cc.o.d"
  "/root/repo/src/analysis/rotation.cc" "src/analysis/CMakeFiles/v6_analysis.dir/rotation.cc.o" "gcc" "src/analysis/CMakeFiles/v6_analysis.dir/rotation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hitlist/CMakeFiles/v6_hitlist.dir/DependInfo.cmake"
  "/root/repo/build/src/ntp/CMakeFiles/v6_ntp.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/v6_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/v6_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/v6_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/v6_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/v6_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/v6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
