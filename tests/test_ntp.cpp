#include <gtest/gtest.h>

#include "ntp/client_schedule.h"
#include "ntp/server.h"
#include "proto/ntp_packet.h"
#include "proto/udp.h"

namespace v6::ntp {
namespace {

sim::VantagePoint test_vantage() {
  sim::VantagePoint v;
  v.id = 3;
  v.country = *geo::CountryCode::parse("DE");
  v.address = *net::Ipv6Address::parse("2a00:5::1");
  return v;
}

TEST(NtpServer, AnswersValidClientRequest) {
  const auto vantage = test_vantage();
  std::vector<Observation> observations;
  NtpServer server(vantage, [&](const Observation& o) {
    observations.push_back(o);
  });

  const auto client = *net::Ipv6Address::parse("2a00:1:2000::5");
  const auto request = proto::make_client_request(5000, 0xfeed);
  const auto response_bytes = server.handle(client, request.encode(), 5000);
  ASSERT_TRUE(response_bytes);

  const auto response = proto::NtpPacket::decode(*response_bytes);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->mode, proto::NtpMode::kServer);
  EXPECT_EQ(response->stratum, 2);  // stratum-2 vantage servers
  EXPECT_EQ(response->origin_time, request.transmit_time);

  ASSERT_EQ(observations.size(), 1u);
  EXPECT_EQ(observations[0].client, client);
  EXPECT_EQ(observations[0].time, 5000);
  EXPECT_EQ(observations[0].vantage, 3);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(NtpServer, IgnoresNonClientModes) {
  NtpServer server(test_vantage(), {});
  auto packet = proto::make_client_request(0, 0);
  packet.mode = proto::NtpMode::kServer;
  EXPECT_FALSE(server.handle(*net::Ipv6Address::parse("::5"),
                             packet.encode(), 0));
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(NtpServer, IgnoresGarbagePayload) {
  NtpServer server(test_vantage(), {});
  EXPECT_FALSE(
      server.handle(*net::Ipv6Address::parse("::5"), {1, 2, 3}, 0));
}

TEST(NtpServer, RecordFeedsSinkDirectly) {
  int count = 0;
  NtpServer server(test_vantage(),
                   [&](const Observation&) { ++count; });
  server.record(*net::Ipv6Address::parse("::6"), 100);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(server.requests_served(), 1u);
}

sim::Device pool_device(util::SimDuration interval, double online) {
  sim::Device dev;
  dev.seed = 4242;
  dev.ntp.uses_pool = true;
  dev.ntp.poll_interval = interval;
  dev.ntp.online_fraction = online;
  return dev;
}

TEST(ClientSchedule, RespectsWindow) {
  const auto dev = pool_device(util::kHour, 1.0);
  ClientSchedule schedule(dev, 1000, 1000 + util::kDay);
  schedule.for_each([&](util::SimTime t) {
    EXPECT_GE(t, 1000);
    EXPECT_LT(t, 1000 + util::kDay);
  });
}

TEST(ClientSchedule, CountMatchesEnumeration) {
  const auto dev = pool_device(util::kHour, 0.7);
  ClientSchedule schedule(dev, 0, util::kWeek);
  std::uint64_t n = 0;
  schedule.for_each([&](util::SimTime) { ++n; });
  EXPECT_EQ(n, schedule.count());
}

TEST(ClientSchedule, PollRateTracksInterval) {
  const auto dev = pool_device(6 * util::kHour, 1.0);
  ClientSchedule schedule(dev, 0, 30 * util::kDay);
  // ~4 polls/day with +-50% jitter around the interval.
  EXPECT_NEAR(static_cast<double>(schedule.count()), 120.0, 30.0);
}

TEST(ClientSchedule, OnlineFractionScalesPolls) {
  const auto full = pool_device(util::kHour, 1.0);
  const auto half = pool_device(util::kHour, 0.5);
  const auto n_full = ClientSchedule(full, 0, util::kWeek).count();
  const auto n_half = ClientSchedule(half, 0, util::kWeek).count();
  EXPECT_NEAR(static_cast<double>(n_half) / static_cast<double>(n_full), 0.5,
              0.1);
}

TEST(ClientSchedule, NonPoolDeviceNeverPolls) {
  auto dev = pool_device(util::kHour, 1.0);
  dev.ntp.uses_pool = false;
  EXPECT_EQ(ClientSchedule(dev, 0, util::kWeek).count(), 0u);
}

TEST(ClientSchedule, DeterministicPerDevice) {
  const auto dev = pool_device(3 * util::kHour, 0.8);
  std::vector<util::SimTime> a, b;
  ClientSchedule(dev, 0, util::kWeek).for_each([&](util::SimTime t) {
    a.push_back(t);
  });
  ClientSchedule(dev, 0, util::kWeek).for_each([&](util::SimTime t) {
    b.push_back(t);
  });
  EXPECT_EQ(a, b);
}

TEST(ClientSchedule, ClampsToDeviceActivityWindow) {
  auto dev = pool_device(util::kHour, 1.0);
  dev.active_start = 2 * util::kDay;
  dev.active_end = 3 * util::kDay;
  ClientSchedule schedule(dev, 0, util::kWeek);
  std::uint64_t n = 0;
  schedule.for_each([&](util::SimTime t) {
    EXPECT_GE(t, 2 * util::kDay);
    EXPECT_LT(t, 3 * util::kDay);
    ++n;
  });
  EXPECT_GT(n, 10u);   // roughly one poll per hour for a day
  EXPECT_LT(n, 40u);
}

TEST(ClientSchedule, DeadDeviceNeverPolls) {
  auto dev = pool_device(util::kHour, 1.0);
  dev.active_start = 0;
  dev.active_end = util::kDay;
  // Window entirely after the device retired.
  EXPECT_EQ(ClientSchedule(dev, 2 * util::kDay, util::kWeek).count(), 0u);
}

TEST(ClientSchedule, DifferentSeedsDifferentPhases) {
  auto a = pool_device(util::kHour, 1.0);
  auto b = pool_device(util::kHour, 1.0);
  b.seed = 4243;
  std::vector<util::SimTime> ta, tb;
  ClientSchedule(a, 0, util::kDay).for_each([&](util::SimTime t) {
    ta.push_back(t);
  });
  ClientSchedule(b, 0, util::kDay).for_each([&](util::SimTime t) {
    tb.push_back(t);
  });
  EXPECT_NE(ta, tb);
}

}  // namespace
}  // namespace v6::ntp
