// A small fixed-size worker pool for sharded batch work.
//
// Collection at paper scale (7.9B addresses) is embarrassingly parallel
// once the per-device observation streams are order-independent, so the
// pool stays deliberately minimal: submit tasks, wait until every one has
// drained. No futures, no work stealing — shards are coarse (one per
// hardware thread) and balanced by construction, so a queue plus a
// condition variable is the whole scheduler.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace v6::util {

class ThreadPool {
 public:
  // `threads == 0` sizes the pool to the hardware concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues one task. Tasks must not throw (the pool terminates on an
  // escaped exception, like std::thread).
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle. The pool is
  // reusable afterwards.
  void wait_idle();

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  // max(1, std::thread::hardware_concurrency()) — the default shard count.
  static unsigned hardware_threads() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;  // tasks currently executing
  bool stop_ = false;
};

// Partitions [0, items) into `shards` contiguous ranges and runs
// fn(shard_index, begin, end) for each — on the calling thread when
// `shards <= 1` (the exact serial path), otherwise on a transient
// ThreadPool of `shards` workers, returning once every shard finished.
// Ranges differ in size by at most one item.
void run_sharded(
    std::size_t items, unsigned shards,
    const std::function<void(unsigned, std::size_t, std::size_t)>& fn);

}  // namespace v6::util
