# Empty compiler generated dependencies file for bench_fig1_entropy_cdf.
# This may be replaced when dependencies are built.
