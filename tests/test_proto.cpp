#include <gtest/gtest.h>

#include "proto/buffer.h"
#include "proto/checksum.h"
#include "proto/icmpv6.h"
#include "proto/ipv6_header.h"
#include "proto/ntp_packet.h"
#include "proto/udp.h"
#include "util/rng.h"

namespace v6::proto {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

// ---------------------------------------------------------------- buffers

TEST(Buffer, WriteReadRoundTrip) {
  BufferWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  const std::uint8_t extra[] = {1, 2, 3};
  w.bytes(extra);
  EXPECT_EQ(w.size(), 1u + 2 + 4 + 8 + 3);

  BufferReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  std::uint8_t out[3];
  r.bytes(out);
  EXPECT_EQ(out[2], 3);
  EXPECT_FALSE(r.truncated());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Buffer, BigEndianOnTheWire) {
  BufferWriter w;
  w.u16(0x1234);
  EXPECT_EQ(w.data()[0], 0x12);
  EXPECT_EQ(w.data()[1], 0x34);
}

TEST(Buffer, TruncatedReadsFlagAndZeroFill) {
  const std::uint8_t two[] = {0xaa, 0xbb};
  BufferReader r(two);
  EXPECT_EQ(r.u32(), 0u);  // short read
  EXPECT_TRUE(r.truncated());
  std::uint8_t out[4] = {9, 9, 9, 9};
  r.bytes(out);
  EXPECT_EQ(out[0], 0);
}

TEST(Buffer, PatchU16) {
  BufferWriter w;
  w.u32(0);
  w.patch_u16(1, 0xbeef);
  EXPECT_EQ(w.data()[1], 0xbe);
  EXPECT_EQ(w.data()[2], 0xef);
  EXPECT_THROW(w.patch_u16(3, 1), std::out_of_range);
}

TEST(Buffer, SkipPastEndSetsTruncated) {
  const std::uint8_t one[] = {1};
  BufferReader r(one);
  r.skip(2);
  EXPECT_TRUE(r.truncated());
}

// --------------------------------------------------------------- checksum

TEST(Checksum, Rfc1071Example) {
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  // words: 0102, 0300 -> sum 0402 -> ~ = fbfd
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(Checksum, PseudoHeaderVerifiesToZero) {
  const auto src = addr(0x20010db800000001ULL, 1);
  const auto dst = addr(0x20010db800000002ULL, 2);
  const Icmpv6Message msg = make_echo_request(7, 9, {1, 2, 3, 4});
  const auto wire = encode_icmpv6(msg, src, dst);
  EXPECT_EQ(pseudo_header_checksum(src, dst, kProtoIcmpv6, wire), 0);
}

// ------------------------------------------------------------ IPv6 header

TEST(Ipv6Header, EncodeDecodeRoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0x42;
  h.flow_label = 0xabcde;
  h.next_header = kProtoUdp;
  h.hop_limit = 61;
  h.src = addr(1, 2);
  h.dst = addr(3, 4);
  const std::uint8_t payload[] = {0xaa, 0xbb};
  const auto wire = build_datagram(h, payload);
  EXPECT_EQ(wire.size(), 42u);
  EXPECT_EQ(wire[0] >> 4, 6);  // version

  BufferReader r(wire);
  const auto decoded = Ipv6Header::decode(r);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->traffic_class, 0x42);
  EXPECT_EQ(decoded->flow_label, 0xabcdeu);
  EXPECT_EQ(decoded->payload_length, 2);
  EXPECT_EQ(decoded->hop_limit, 61);
  EXPECT_EQ(decoded->src, addr(1, 2));
  EXPECT_EQ(decoded->dst, addr(3, 4));
}

TEST(Ipv6Header, RejectsWrongVersion) {
  Ipv6Header h;
  BufferWriter w;
  h.encode(w);
  auto bytes = std::move(w).take();
  bytes[0] = 0x45;  // IPv4 version nibble
  BufferReader r(bytes);
  EXPECT_FALSE(Ipv6Header::decode(r));
}

TEST(Ipv6Header, RejectsTruncated) {
  const std::uint8_t short_buf[10] = {0x60};
  BufferReader r(short_buf);
  EXPECT_FALSE(Ipv6Header::decode(r));
}

// ----------------------------------------------------------------- ICMPv6

TEST(Icmpv6, EchoRoundTrip) {
  const auto src = addr(10, 1), dst = addr(20, 2);
  const auto request = make_echo_request(0x1234, 0x5678, {9, 8, 7});
  const auto wire = encode_icmpv6(request, src, dst);
  const auto decoded = decode_icmpv6(wire, src, dst);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, request);
  EXPECT_EQ(decoded->identifier(), 0x1234);
  EXPECT_EQ(decoded->sequence(), 0x5678);
}

TEST(Icmpv6, ChecksumBindsToAddresses) {
  const auto src = addr(10, 1), dst = addr(20, 2);
  const auto wire = encode_icmpv6(make_echo_request(1, 2), src, dst);
  // Decoding with a different pseudo-header (spoofed peer) fails.
  EXPECT_FALSE(decode_icmpv6(wire, src, addr(20, 3)));
}

TEST(Icmpv6, CorruptionDetected) {
  const auto src = addr(10, 1), dst = addr(20, 2);
  auto wire = encode_icmpv6(make_echo_request(1, 2, {1, 2, 3, 4, 5}), src, dst);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto corrupted = wire;
    corrupted[i] ^= 0x40;
    EXPECT_FALSE(decode_icmpv6(corrupted, src, dst)) << "byte " << i;
  }
}

TEST(Icmpv6, TruncationDetected) {
  const auto src = addr(10, 1), dst = addr(20, 2);
  const auto wire = encode_icmpv6(make_echo_request(1, 2, {1, 2, 3}), src, dst);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(decode_icmpv6(std::span(wire.data(), n), src, dst));
  }
}

TEST(Icmpv6, EchoReplyMirrorsRequest) {
  const auto request = make_echo_request(3, 4, {42});
  const auto reply = make_echo_reply(request);
  EXPECT_EQ(reply.type, Icmpv6Type::kEchoReply);
  EXPECT_EQ(reply.body, request.body);
  EXPECT_EQ(reply.payload, request.payload);
}

TEST(Icmpv6, TimeExceededCarriesInvokingPacket) {
  const auto te = make_time_exceeded({0xde, 0xad});
  EXPECT_EQ(te.type, Icmpv6Type::kTimeExceeded);
  EXPECT_EQ(te.code, 0);
  EXPECT_EQ(te.payload.size(), 2u);
}

// -------------------------------------------------------------------- UDP

TEST(Udp, RoundTrip) {
  const auto src = addr(1, 1), dst = addr(2, 2);
  const UdpDatagram datagram{40000, kNtpPort, {1, 2, 3, 4, 5}};
  const auto wire = encode_udp(datagram, src, dst);
  EXPECT_EQ(wire.size(), 8u + 5);
  const auto decoded = decode_udp(wire, src, dst);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, datagram);
}

TEST(Udp, LengthMismatchRejected) {
  const auto src = addr(1, 1), dst = addr(2, 2);
  auto wire = encode_udp({1, 2, {9}}, src, dst);
  wire.push_back(0);  // trailing garbage changes the actual size
  EXPECT_FALSE(decode_udp(wire, src, dst));
}

TEST(Udp, CorruptionDetected) {
  const auto src = addr(1, 1), dst = addr(2, 2);
  auto wire = encode_udp({1000, 2000, {5, 6, 7, 8}}, src, dst);
  wire[9] ^= 0xff;  // payload byte
  EXPECT_FALSE(decode_udp(wire, src, dst));
}

TEST(Udp, ZeroChecksumRejectedOverIpv6) {
  const auto src = addr(1, 1), dst = addr(2, 2);
  auto wire = encode_udp({1, 2, {3}}, src, dst);
  wire[6] = wire[7] = 0;
  EXPECT_FALSE(decode_udp(wire, src, dst));
}

// -------------------------------------------------------------------- NTP

TEST(NtpPacket, WireFormatIs48Bytes) {
  const auto wire = make_client_request(1000, 0xdead).encode();
  EXPECT_EQ(wire.size(), 48u);
  // LI=0 VN=4 Mode=3 -> 0x23.
  EXPECT_EQ(wire[0], 0x23);
}

TEST(NtpPacket, EncodeDecodeRoundTrip) {
  NtpPacket p;
  p.leap_indicator = 1;
  p.version = 4;
  p.mode = NtpMode::kServer;
  p.stratum = 2;
  p.poll = 10;
  p.precision = -23;
  p.root_delay = 0x00010000;
  p.root_dispersion = 0x00000a00;
  p.reference_id = 0x47505300;  // "GPS"
  p.reference_time = NtpTimestamp::from_sim_time(100, 7);
  p.origin_time = NtpTimestamp::from_sim_time(101, 8);
  p.receive_time = NtpTimestamp::from_sim_time(102, 9);
  p.transmit_time = NtpTimestamp::from_sim_time(103, 10);
  const auto decoded = NtpPacket::decode(p.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, p);
}

TEST(NtpPacket, DecodeRejectsShortAndBadVersion) {
  const auto wire = make_client_request(0, 0).encode();
  EXPECT_FALSE(NtpPacket::decode(std::span(wire.data(), 47)));
  auto bad = wire;
  bad[0] = (bad[0] & ~0x38) | (1 << 3);  // version 1
  EXPECT_FALSE(NtpPacket::decode(bad));
}

TEST(NtpPacket, ServerResponseFollowsRfc5905) {
  const auto request = make_client_request(5000, 0xabcd1234);
  const auto response = make_server_response(request, 5001, 2, 0x56500001);
  EXPECT_EQ(response.mode, NtpMode::kServer);
  EXPECT_EQ(response.stratum, 2);
  // Origin must echo the client's transmit for client-side validation.
  EXPECT_EQ(response.origin_time, request.transmit_time);
  EXPECT_EQ(response.receive_time.to_sim_time(), 5001);
  EXPECT_EQ(response.transmit_time.to_sim_time(), 5001);
}

TEST(NtpTimestamp, SimTimeMapping) {
  const auto ts = NtpTimestamp::from_sim_time(12345, 99);
  EXPECT_EQ(ts.to_sim_time(), 12345);
  EXPECT_EQ(NtpTimestamp::from_u64(ts.to_u64()), ts);
}

TEST(NtpPacket, FuzzedDecodeNeverCrashes) {
  util::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.bounded(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    (void)NtpPacket::decode(junk);  // must not crash
  }
}

TEST(Icmpv6, FuzzedDecodeNeverCrashes) {
  util::Rng rng(78);
  const auto src = addr(1, 1), dst = addr(2, 2);
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.bounded(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    if (decode_icmpv6(junk, src, dst)) ++accepted;
  }
  // Random bytes essentially never satisfy the checksum.
  EXPECT_LE(accepted, 1);
}

}  // namespace
}  // namespace v6::proto
