// Address and IID lifetime analysis (Figure 2).
//
// "Lifetime" is last_seen - first_seen: 0 for addresses observed once. The
// paper's headline numbers: >60% of addresses observed once; 1.2% live a
// week or longer, 0.4% a month, 0.03% six months — and low-entropy IIDs
// persist far longer than high-entropy ones.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/parallel_scan.h"
#include "hitlist/corpus.h"
#include "net/entropy.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace v6::analysis {

struct AddressLifetimeReport {
  std::uint64_t total = 0;
  double fraction_once = 0.0;       // lifetime == 0
  double fraction_week = 0.0;       // >= 1 week
  double fraction_month = 0.0;      // >= 30 days
  double fraction_six_months = 0.0; // >= 180 days
  // CCDF samples: (duration, fraction of addresses with lifetime >= d).
  std::vector<std::pair<util::SimDuration, double>> ccdf;
};

AddressLifetimeReport address_lifetimes(
    const hitlist::Corpus& corpus,
    std::span<const util::SimDuration> ccdf_points,
    const AnalysisConfig& config = {},
    std::vector<AnalysisStageStats>* stats = nullptr);

AddressLifetimeReport address_lifetimes(
    const ScanSource& source, std::span<const util::SimDuration> ccdf_points,
    const AnalysisConfig& config = {},
    std::vector<AnalysisStageStats>* stats = nullptr);

// IID lifetimes bucketed by entropy band (Fig 2b): an IID's lifetime spans
// every address it appeared in.
struct IidLifetimeReport {
  struct Band {
    std::uint64_t total = 0;
    double fraction_once = 0.0;
    double fraction_week = 0.0;
    // CDF samples: (duration, fraction with lifetime <= d).
    std::vector<std::pair<util::SimDuration, double>> cdf;
  };
  std::array<Band, 3> bands;  // indexed by net::EntropyBand
  std::uint64_t unique_iids = 0;
};

IidLifetimeReport iid_lifetimes(const hitlist::Corpus& corpus,
                                std::span<const util::SimDuration> cdf_points,
                                const AnalysisConfig& config = {},
                                std::vector<AnalysisStageStats>* stats =
                                    nullptr);

IidLifetimeReport iid_lifetimes(const ScanSource& source,
                                std::span<const util::SimDuration> cdf_points,
                                const AnalysisConfig& config = {},
                                std::vector<AnalysisStageStats>* stats =
                                    nullptr);

}  // namespace v6::analysis
