// BSSID -> location wardriving database (our WiGLE / Apple / Google WiFi
// location API stand-in).
//
// §5.3 of the paper geolocates EUI-64 devices by linking the wired MAC
// embedded in the IID to the WiFi BSSID of the same device via a per-OUI
// constant offset, then looking the BSSID up in public wardriving data.
// The simulated world populates this database from devices whose access
// points were "observed" by wardrivers; GeoLinker then runs the paper's
// offset-inference algorithm against it with no access to ground truth.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "geo/location.h"
#include "net/mac.h"

namespace v6::geo {

class BssidLocationDb {
 public:
  void add(const net::MacAddress& bssid, const LatLon& location);

  std::optional<LatLon> lookup(const net::MacAddress& bssid) const;

  // All BSSIDs sharing the given OUI (used by offset inference).
  std::span<const net::MacAddress> bssids_in_oui(net::Oui oui) const;

  std::size_t size() const noexcept { return locations_.size(); }

 private:
  std::unordered_map<net::MacAddress, LatLon> locations_;
  std::unordered_map<net::Oui, std::vector<net::MacAddress>> by_oui_;
};

}  // namespace v6::geo
