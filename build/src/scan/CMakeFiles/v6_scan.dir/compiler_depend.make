# Empty compiler generated dependencies file for v6_scan.
# This may be replaced when dependencies are built.
