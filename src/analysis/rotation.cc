#include "analysis/rotation.h"

#include <algorithm>
#include <unordered_map>

namespace v6::analysis {

std::vector<RotationEstimate> infer_rotation_periods(
    const Eui64Tracker& tracker, const sim::World& world,
    const RotationConfig& config) {
  // Gather /64-transition gaps per AS from every trackable MAC's timeline.
  std::unordered_map<std::uint32_t, std::vector<util::SimDuration>> gaps;
  std::unordered_map<sim::Asn, std::uint32_t> as_by_asn;
  for (std::uint32_t ai = 0; ai < world.ases().size(); ++ai) {
    as_by_asn[world.ases()[ai].asn] = ai;
  }

  for (const auto& track : tracker.tracks()) {
    if (track.slash64s < 2) continue;
    const auto timeline = tracker.timeline(track.mac);
    for (std::size_t i = 1; i < timeline.size(); ++i) {
      const auto& prev = timeline[i - 1];
      const auto& curr = timeline[i];
      // Only renumbering *within* one AS estimates that AS's policy; a
      // device switching providers or roaming is a different phenomenon.
      if (curr.asn != prev.asn || curr.slash64_hi == prev.slash64_hi) {
        continue;
      }
      const auto gap = static_cast<util::SimDuration>(curr.first_seen) -
                       static_cast<util::SimDuration>(prev.first_seen);
      if (gap <= 0) continue;
      const auto it = as_by_asn.find(curr.asn);
      if (it == as_by_asn.end()) continue;
      gaps[it->second].push_back(gap);
    }
  }

  std::vector<RotationEstimate> estimates;
  for (auto& [as_index, samples] : gaps) {
    if (samples.size() < config.min_samples) continue;
    std::sort(samples.begin(), samples.end());
    RotationEstimate estimate;
    estimate.as_index = as_index;
    estimate.asn = world.ases()[as_index].asn;
    estimate.estimated_period = samples[samples.size() / 2];
    estimate.samples = samples.size();
    estimate.true_period = world.ases()[as_index].profile.rotation_period;
    estimates.push_back(estimate);
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const RotationEstimate& a, const RotationEstimate& b) {
              return a.samples > b.samples;
            });
  return estimates;
}

}  // namespace v6::analysis
