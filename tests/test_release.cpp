#include "hitlist/release.h"

#include <gtest/gtest.h>

#include <sstream>

namespace v6::hitlist {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

TEST(Release, AggregatesToSortedSlash48s) {
  Corpus corpus;
  corpus.add(addr(0x20010db800010000ULL, 1), 10);
  corpus.add(addr(0x20010db800010001ULL, 2), 11);  // same /48
  corpus.add(addr(0x20010db800020000ULL, 3), 12);  // different /48
  const auto rows = aggregate_to_slash48(corpus);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].prefix.to_string(), "2001:db8:1::/48");
  EXPECT_EQ(rows[0].address_count, 2u);
  EXPECT_EQ(rows[1].prefix.to_string(), "2001:db8:2::/48");
  EXPECT_EQ(rows[1].address_count, 1u);
}

TEST(Release, WriteReadRoundTrip) {
  Corpus corpus;
  for (std::uint64_t i = 0; i < 50; ++i) {
    corpus.add(addr(0x2a00000000000000ULL | (i << 16), i), 1);
  }
  const auto rows = aggregate_to_slash48(corpus);
  std::stringstream stream;
  write_release(stream, rows);
  const auto parsed = read_release(stream);
  EXPECT_EQ(parsed, rows);
}

TEST(Release, OutputNeverContainsFullAddresses) {
  // The ethics constraint: only /48s leave the building.
  Corpus corpus;
  corpus.add(addr(0x20010db800010203ULL, 0xdeadbeefcafef00dULL), 10);
  std::stringstream stream;
  write_release(stream, aggregate_to_slash48(corpus));
  const std::string text = stream.str();
  EXPECT_EQ(text.find("dead"), std::string::npos);
  EXPECT_EQ(text.find("203"), std::string::npos);  // low /56 bits gone too
  EXPECT_NE(text.find("2001:db8:1::/48"), std::string::npos);
}

TEST(Release, KAnonymityFloorSuppressesThinPrefixes) {
  Corpus corpus;
  // One /48 with 5 addresses, one with a single address.
  for (std::uint64_t i = 0; i < 5; ++i) {
    corpus.add(addr(0x20010db800010000ULL | i, i), 1);
  }
  corpus.add(addr(0x20010db800020000ULL, 7), 1);
  const auto rows = aggregate_to_slash48(corpus);

  std::stringstream stream;
  write_release(stream, rows, /*min_count=*/3);
  const std::string text = stream.str();
  EXPECT_NE(text.find("2001:db8:1::/48,5"), std::string::npos);
  EXPECT_EQ(text.find("2001:db8:2::/48"), std::string::npos);
  EXPECT_NE(text.find("1 rows suppressed"), std::string::npos);

  // Round-trips to only the surviving rows.
  std::stringstream reread(text);
  EXPECT_EQ(read_release(reread).size(), 1u);
}

TEST(Release, DefaultFloorKeepsEverything) {
  Corpus corpus;
  corpus.add(addr(0x20010db800020000ULL, 7), 1);
  std::stringstream stream;
  write_release(stream, aggregate_to_slash48(corpus));
  EXPECT_NE(stream.str().find("2001:db8:2::/48,1"), std::string::npos);
  EXPECT_EQ(stream.str().find("suppressed"), std::string::npos);
}

TEST(Release, ReadSkipsComments) {
  std::stringstream stream("# comment\n2001:db8::/48,5\n");
  const auto rows = read_release(stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].address_count, 5u);
}

TEST(Release, ReadRejectsMalformedRows) {
  {
    std::stringstream s("2001:db8::/48");
    EXPECT_THROW(read_release(s), std::runtime_error);
  }
  {
    std::stringstream s("2001:db8::/64,5\n");  // not a /48
    EXPECT_THROW(read_release(s), std::runtime_error);
  }
  {
    std::stringstream s("not-an-address/48,5\n");
    EXPECT_THROW(read_release(s), std::runtime_error);
  }
  {
    std::stringstream s("2001:db8::/48,many\n");
    EXPECT_THROW(read_release(s), std::runtime_error);
  }
}

}  // namespace
}  // namespace v6::hitlist
