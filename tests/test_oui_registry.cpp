#include "sim/oui_registry.h"

#include <gtest/gtest.h>

#include <set>

namespace v6::sim {
namespace {

TEST(OuiRegistry, ResolvesRegisteredManufacturers) {
  const auto reg = OuiRegistry::standard();
  const auto avm = net::MacAddress::parse("3c:a6:2f:12:34:56");
  ASSERT_TRUE(avm);
  const auto name = reg.resolve(avm->oui());
  ASSERT_TRUE(name);
  EXPECT_EQ(*name, "AVM GmbH");
}

TEST(OuiRegistry, UnregisteredOuisResolveToNothing) {
  const auto reg = OuiRegistry::standard();
  // F0:02:20 is the paper's most common unlisted OUI; it is assigned in
  // our world but deliberately absent from the IEEE view.
  EXPECT_FALSE(reg.resolve(net::Oui(0xf00220)));
  // A completely unknown OUI also resolves to nothing.
  EXPECT_FALSE(reg.resolve(net::Oui(0x123456)));
}

TEST(OuiRegistry, ManufacturerIndexCoversAssignedOuis) {
  const auto reg = OuiRegistry::standard();
  const auto idx = reg.manufacturer_index(net::Oui(0xf00220));
  ASSERT_TRUE(idx);
  EXPECT_EQ(reg.manufacturer(*idx).name, "Unlisted");
  EXPECT_FALSE(reg.manufacturer_index(net::Oui(0x000001)));
}

TEST(OuiRegistry, Table2ManufacturersPresent) {
  const auto reg = OuiRegistry::standard();
  const char* expected[] = {
      "Amazon Technologies Inc.",
      "Samsung Electronics Co.,Ltd",
      "Sonos, Inc.",
      "vivo Mobile Communication Co., Ltd.",
      "Sunnovo International Limited",
      "Hui Zhou Gaoshengda Technology Co.,LTD",
      "Huawei Technologies",
      "Shenzhen Chuangwei-RGB Electronics",
      "Skyworth Digital Technology (Shenzhen) Co.,Ltd",
  };
  for (const char* name : expected) {
    bool found = false;
    for (const auto& maker : reg.manufacturers()) {
      if (maker.name == name) found = true;
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(OuiRegistry, MakersForKindNonEmptyForEveryKind) {
  const auto reg = OuiRegistry::standard();
  for (const auto kind :
       {DeviceKind::kRouter, DeviceKind::kCpe, DeviceKind::kServer,
        DeviceKind::kDesktop, DeviceKind::kMobile, DeviceKind::kIot}) {
    EXPECT_FALSE(reg.makers_for_kind(kind).empty()) << to_string(kind);
  }
}

TEST(OuiRegistry, MakersForKindActuallyShipKind) {
  const auto reg = OuiRegistry::standard();
  for (const auto idx : reg.makers_for_kind(DeviceKind::kCpe)) {
    const auto& maker = reg.manufacturer(idx);
    bool ships = false;
    for (const auto k : maker.kinds) ships |= k == DeviceKind::kCpe;
    EXPECT_TRUE(ships) << maker.name;
  }
}

TEST(OuiRegistry, OuisAreUniqueAcrossManufacturers) {
  const auto reg = OuiRegistry::standard();
  std::set<std::uint32_t> seen;
  for (const auto& maker : reg.manufacturers()) {
    for (const auto oui : maker.ouis) {
      EXPECT_TRUE(seen.insert(oui.value()).second)
          << maker.name << " duplicates OUI " << oui.to_string();
    }
  }
}

TEST(OuiRegistry, EnumNamesRoundTrip) {
  EXPECT_STREQ(to_string(AsType::kIspMobile), "Phone Provider");
  EXPECT_STREQ(to_string(DeviceKind::kCpe), "cpe");
  EXPECT_STREQ(to_string(IidStrategy::kEui64), "eui64");
  EXPECT_STREQ(to_string(IidStrategy::kStructuredLow), "structured-low");
}

}  // namespace
}  // namespace v6::sim
