#include "dist/protocol.h"

#include <bit>
#include <map>
#include <span>
#include <stdexcept>

#include "proto/buffer.h"
#include "proto/checksum.h"

namespace v6::dist {

namespace {

constexpr char kMagic[8] = {'V', '6', 'D', 'I', 'S', 'T', '0', '1'};
constexpr std::size_t kMaxPath = 4096;

bool known_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kObsReport);
}

void put_string(proto::BufferWriter& writer, const std::string& s) {
  writer.u16(static_cast<std::uint16_t>(s.size()));
  writer.bytes(std::span(reinterpret_cast<const std::uint8_t*>(s.data()),
                         s.size()));
}

std::string get_string(proto::BufferReader& reader) {
  const std::uint16_t len = reader.u16();
  std::string out(len, '\0');
  reader.bytes(std::span(reinterpret_cast<std::uint8_t*>(out.data()), len));
  return out;
}

void put_labels(proto::BufferWriter& writer, const obs::Labels& labels) {
  writer.u16(static_cast<std::uint16_t>(labels.size()));
  for (const auto& [k, v] : labels) {
    put_string(writer, k);
    put_string(writer, v);
  }
}

obs::Labels get_labels(proto::BufferReader& reader) {
  const std::uint16_t n = reader.u16();
  // Each label pair costs >= 4 bytes on the wire; a count that couldn't
  // fit in the bytes left is garbage — reject before sizing anything.
  if (static_cast<std::size_t>(n) * 4 > reader.remaining()) {
    throw std::runtime_error("dist frame: malformed obs report payload");
  }
  obs::Labels labels;
  labels.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    std::string key = get_string(reader);
    std::string value = get_string(reader);
    labels.emplace_back(std::move(key), std::move(value));
  }
  return labels;
}

// Bounds-checks an untrusted element count against the bytes left, with
// `min_bytes` the smallest possible wire size of one element.
std::uint32_t get_count(proto::BufferReader& reader, std::size_t min_bytes) {
  const std::uint32_t n = reader.u32();
  if (static_cast<std::uint64_t>(n) * min_bytes > reader.remaining()) {
    throw std::runtime_error("dist frame: malformed obs report payload");
  }
  return n;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayload) {
    throw std::runtime_error("dist frame: payload too large");
  }
  proto::BufferWriter writer;
  writer.bytes(std::span(reinterpret_cast<const std::uint8_t*>(kMagic), 8));
  writer.u8(static_cast<std::uint8_t>(frame.type));
  writer.u32(frame.sender);
  writer.u32(frame.subset);
  writer.u32(frame.epoch);
  writer.u64(frame.seq);
  writer.u64(frame.sim_time);
  writer.u32(static_cast<std::uint32_t>(frame.payload.size()));
  writer.bytes(frame.payload);
  // CRC over type..payload (everything after the magic), mirroring the
  // checkpoint format's section-CRC convention.
  writer.u32(proto::crc32(std::span(writer.data()).subspan(8)));
  return std::move(writer).take();
}

Frame decode_frame(std::span<const std::uint8_t> data, std::size_t* consumed) {
  proto::BufferReader reader(data);
  std::uint8_t magic[8];
  reader.bytes(magic);
  if (reader.truncated() ||
      !std::equal(std::begin(magic), std::end(magic), kMagic)) {
    throw std::runtime_error("dist frame: bad magic");
  }
  Frame frame;
  const std::uint8_t type = reader.u8();
  frame.sender = reader.u32();
  frame.subset = reader.u32();
  frame.epoch = reader.u32();
  frame.seq = reader.u64();
  frame.sim_time = reader.u64();
  const std::uint32_t payload_len = reader.u32();
  if (reader.truncated()) {
    throw std::runtime_error("dist frame: truncated header");
  }
  if (!known_type(type)) {
    throw std::runtime_error("dist frame: unknown type");
  }
  frame.type = static_cast<FrameType>(type);
  // Untrusted length sizes the read below; cap it before trusting it.
  if (payload_len > kMaxPayload) {
    throw std::runtime_error("dist frame: payload too large");
  }
  if (reader.remaining() < static_cast<std::size_t>(payload_len) + 4) {
    throw std::runtime_error("dist frame: truncated payload");
  }
  frame.payload.resize(payload_len);
  reader.bytes(frame.payload);
  const std::size_t body_end = data.size() - reader.remaining();
  const std::uint32_t crc = reader.u32();
  if (reader.truncated()) {
    throw std::runtime_error("dist frame: truncated CRC");
  }
  if (crc != proto::crc32(data.subspan(8, body_end - 8))) {
    throw std::runtime_error("dist frame: CRC mismatch");
  }
  if (consumed != nullptr) *consumed = data.size() - reader.remaining();
  return frame;
}

std::vector<std::uint8_t> encode_lease_grant(const LeaseGrant& grant) {
  proto::BufferWriter writer;
  writer.u64(grant.window_start);
  writer.u64(grant.window_end);
  writer.u64(grant.chunk_interval);
  writer.u64(grant.resume_from);
  writer.u32(grant.subset_count);
  put_string(writer, grant.checkpoint_path);
  return std::move(writer).take();
}

LeaseGrant decode_lease_grant(std::span<const std::uint8_t> payload) {
  proto::BufferReader reader(payload);
  LeaseGrant grant;
  grant.window_start = reader.u64();
  grant.window_end = reader.u64();
  grant.chunk_interval = reader.u64();
  grant.resume_from = reader.u64();
  grant.subset_count = reader.u32();
  grant.checkpoint_path = get_string(reader);
  if (reader.truncated() || reader.remaining() != 0) {
    throw std::runtime_error("dist frame: malformed lease grant payload");
  }
  return grant;
}

std::vector<std::uint8_t> encode_artifact(const Artifact& artifact) {
  proto::BufferWriter writer;
  put_string(writer, artifact.path);
  writer.u64(artifact.bytes);
  writer.u32(artifact.crc);
  return std::move(writer).take();
}

Artifact decode_artifact(std::span<const std::uint8_t> payload) {
  proto::BufferReader reader(payload);
  Artifact artifact;
  artifact.path = get_string(reader);
  artifact.bytes = reader.u64();
  artifact.crc = reader.u32();
  if (reader.truncated() || reader.remaining() != 0) {
    throw std::runtime_error("dist frame: malformed artifact payload");
  }
  return artifact;
}

std::vector<std::uint8_t> encode_obs_report(const ObsReport& report) {
  proto::BufferWriter writer;
  writer.u32(static_cast<std::uint32_t>(report.snapshot.samples.size()));
  for (const obs::MetricSample& s : report.snapshot.samples) {
    put_string(writer, s.name);
    put_string(writer, s.help);
    writer.u8(static_cast<std::uint8_t>(s.type));
    put_labels(writer, s.labels);
    switch (s.type) {
      case obs::MetricType::kCounter:
        writer.u64(s.counter_value);
        break;
      case obs::MetricType::kGauge:
        writer.u64(std::bit_cast<std::uint64_t>(s.gauge_value));
        break;
      case obs::MetricType::kHistogram: {
        writer.u32(static_cast<std::uint32_t>(s.histogram.bounds.size()));
        for (const double b : s.histogram.bounds) {
          writer.u64(std::bit_cast<std::uint64_t>(b));
        }
        if (s.histogram.counts.size() != s.histogram.bounds.size() + 1) {
          throw std::runtime_error(
              "dist frame: obs report histogram bucket count mismatch");
        }
        for (const std::uint64_t c : s.histogram.counts) writer.u64(c);
        writer.u64(s.histogram.count);
        writer.u64(std::bit_cast<std::uint64_t>(s.histogram.sum));
        break;
      }
    }
  }
  writer.u32(static_cast<std::uint32_t>(report.windows.size()));
  for (const obs::WindowRecord& w : report.windows) {
    writer.u64(static_cast<std::uint64_t>(w.begin));
    writer.u64(static_cast<std::uint64_t>(w.end));
    put_string(writer, w.stage);
    writer.u32(static_cast<std::uint32_t>(w.counters.size()));
    for (const obs::WindowCounter& c : w.counters) {
      put_string(writer, c.name);
      put_labels(writer, c.labels);
      writer.u64(c.delta);
    }
    writer.u32(static_cast<std::uint32_t>(w.gauges.size()));
    for (const obs::WindowGauge& g : w.gauges) {
      put_string(writer, g.name);
      put_labels(writer, g.labels);
      writer.u64(std::bit_cast<std::uint64_t>(g.value));
    }
    writer.u32(static_cast<std::uint32_t>(w.vantages.size()));
    for (const obs::VantageWindow& v : w.vantages) {
      writer.u32(v.vantage);
      writer.u64(v.polls);
      writer.u64(v.answered);
      writer.u64(v.fault_lost);
      writer.u64(v.records);
    }
    writer.u32(static_cast<std::uint32_t>(w.histograms.size()));
    for (const obs::WindowHistogram& h : w.histograms) {
      put_string(writer, h.name);
      put_labels(writer, h.labels);
      writer.u64(h.count_delta);
      writer.u64(std::bit_cast<std::uint64_t>(h.sum_delta));
    }
  }
  return std::move(writer).take();
}

ObsReport decode_obs_report(std::span<const std::uint8_t> payload) {
  const auto malformed = [] {
    return std::runtime_error("dist frame: malformed obs report payload");
  };
  proto::BufferReader reader(payload);
  ObsReport report;
  // Minimum wire sizes per element (strings cost their 2-byte length
  // prefix even when empty) bound every allocation an attacker can ask
  // for to the payload bytes actually present.
  const std::uint32_t sample_count = get_count(reader, 7);
  report.snapshot.samples.reserve(sample_count);
  for (std::uint32_t i = 0; i < sample_count; ++i) {
    obs::MetricSample s;
    s.name = get_string(reader);
    s.help = get_string(reader);
    const std::uint8_t type = reader.u8();
    if (reader.truncated() ||
        type > static_cast<std::uint8_t>(obs::MetricType::kHistogram)) {
      throw malformed();
    }
    s.type = static_cast<obs::MetricType>(type);
    s.labels = get_labels(reader);
    switch (s.type) {
      case obs::MetricType::kCounter:
        s.counter_value = reader.u64();
        break;
      case obs::MetricType::kGauge:
        s.gauge_value = std::bit_cast<double>(reader.u64());
        break;
      case obs::MetricType::kHistogram: {
        const std::uint32_t bound_count = get_count(reader, 8);
        // bounds + per-bucket counts (bounds+1) + count + sum.
        if ((static_cast<std::uint64_t>(bound_count) * 2 + 3) * 8 >
            reader.remaining()) {
          throw malformed();
        }
        s.histogram.bounds.reserve(bound_count);
        for (std::uint32_t b = 0; b < bound_count; ++b) {
          s.histogram.bounds.push_back(std::bit_cast<double>(reader.u64()));
        }
        s.histogram.counts.reserve(bound_count + 1);
        for (std::uint32_t b = 0; b <= bound_count; ++b) {
          s.histogram.counts.push_back(reader.u64());
        }
        s.histogram.count = reader.u64();
        s.histogram.sum = std::bit_cast<double>(reader.u64());
        break;
      }
    }
    report.snapshot.samples.push_back(std::move(s));
  }
  const std::uint32_t window_count = get_count(reader, 34);
  report.windows.reserve(window_count);
  for (std::uint32_t i = 0; i < window_count; ++i) {
    obs::WindowRecord w;
    w.begin = static_cast<util::SimTime>(reader.u64());
    w.end = static_cast<util::SimTime>(reader.u64());
    w.stage = get_string(reader);
    const std::uint32_t counter_count = get_count(reader, 12);
    w.counters.reserve(counter_count);
    for (std::uint32_t c = 0; c < counter_count; ++c) {
      obs::WindowCounter wc;
      wc.name = get_string(reader);
      wc.labels = get_labels(reader);
      wc.delta = reader.u64();
      w.counters.push_back(std::move(wc));
    }
    const std::uint32_t gauge_count = get_count(reader, 12);
    w.gauges.reserve(gauge_count);
    for (std::uint32_t g = 0; g < gauge_count; ++g) {
      obs::WindowGauge wg;
      wg.name = get_string(reader);
      wg.labels = get_labels(reader);
      wg.value = std::bit_cast<double>(reader.u64());
      w.gauges.push_back(std::move(wg));
    }
    const std::uint32_t vantage_count = get_count(reader, 36);
    w.vantages.reserve(vantage_count);
    for (std::uint32_t v = 0; v < vantage_count; ++v) {
      obs::VantageWindow vw;
      vw.vantage = reader.u32();
      vw.polls = reader.u64();
      vw.answered = reader.u64();
      vw.fault_lost = reader.u64();
      vw.records = reader.u64();
      w.vantages.push_back(vw);
    }
    const std::uint32_t hist_count = get_count(reader, 20);
    w.histograms.reserve(hist_count);
    for (std::uint32_t h = 0; h < hist_count; ++h) {
      obs::WindowHistogram wh;
      wh.name = get_string(reader);
      wh.labels = get_labels(reader);
      wh.count_delta = reader.u64();
      wh.sum_delta = std::bit_cast<double>(reader.u64());
      w.histograms.push_back(std::move(wh));
    }
    report.windows.push_back(std::move(w));
  }
  if (reader.truncated() || reader.remaining() != 0) {
    throw malformed();
  }
  return report;
}

std::optional<std::string> validate_artifact_path(std::string_view path) {
  if (path.empty()) return "empty path";
  if (path.size() > kMaxPath) return "path too long";
  if (path.front() == '/') return "absolute path";
  for (const char c : path) {
    if (c == '\0') return "NUL in path";
    if (c == '\n' || c == '\r') return "newline in path";
    if (c == '\\') return "backslash in path";
  }
  // Reject any ".." segment (plain, leading, trailing, or interior).
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string_view segment =
        path.substr(pos, (slash == std::string_view::npos ? path.size()
                                                          : slash) -
                             pos);
    if (segment == "..") return "path escapes its directory";
    if (slash == std::string_view::npos) break;
    pos = slash + 1;
  }
  return std::nullopt;
}

std::optional<std::string> lint_dist_frames(std::string_view log) {
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(log.data()), log.size());
  std::map<std::uint32_t, std::uint64_t> next_seq;  // per sender
  std::size_t offset = 0;
  std::size_t index = 0;
  const auto fail = [&](const std::string& reason) {
    return "frame " + std::to_string(index) + ": " + reason;
  };
  while (offset < bytes.size()) {
    Frame frame;
    std::size_t consumed = 0;
    try {
      frame = decode_frame(bytes.subspan(offset), &consumed);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
    const auto [it, fresh] = next_seq.try_emplace(frame.sender, 0);
    if (frame.seq != it->second) {
      return fail("sender " + std::to_string(frame.sender) +
                  " seq " + std::to_string(frame.seq) + ", expected " +
                  std::to_string(it->second));
    }
    it->second = frame.seq + 1;
    switch (frame.type) {
      case FrameType::kHello:
      case FrameType::kHeartbeat:
      case FrameType::kShutdown:
      case FrameType::kRevoke:
        if (!frame.payload.empty()) return fail("unexpected payload");
        break;
      case FrameType::kLeaseGrant: {
        if (frame.sender != kCoordinatorId) {
          return fail("lease grant from non-coordinator");
        }
        LeaseGrant grant;
        try {
          grant = decode_lease_grant(frame.payload);
        } catch (const std::exception& e) {
          return fail(e.what());
        }
        if (grant.window_end <= grant.window_start) {
          return fail("lease window is empty or inverted");
        }
        if (grant.chunk_interval == 0) return fail("zero chunk interval");
        if (grant.resume_from < grant.window_start ||
            grant.resume_from >= grant.window_end) {
          return fail("resume point outside the lease window");
        }
        if (grant.subset_count == 0) return fail("zero subset count");
        if (frame.subset >= grant.subset_count) {
          return fail("subset id out of range");
        }
        if (!grant.checkpoint_path.empty()) {
          if (const auto why = validate_artifact_path(grant.checkpoint_path)) {
            return fail(*why);
          }
        } else if (grant.resume_from != grant.window_start) {
          return fail("recovery lease without a checkpoint path");
        }
        break;
      }
      case FrameType::kCheckpointUpload:
      case FrameType::kComplete: {
        if (frame.sender == kCoordinatorId) {
          return fail("upload from the coordinator");
        }
        Artifact artifact;
        try {
          artifact = decode_artifact(frame.payload);
        } catch (const std::exception& e) {
          return fail(e.what());
        }
        if (const auto why = validate_artifact_path(artifact.path)) {
          return fail(*why);
        }
        if (frame.subset == kNoSubset) return fail("upload without a subset");
        break;
      }
      case FrameType::kObsReport: {
        if (frame.sender == kCoordinatorId) {
          return fail("obs report from the coordinator");
        }
        if (frame.subset == kNoSubset) {
          return fail("obs report without a subset");
        }
        try {
          (void)decode_obs_report(frame.payload);
        } catch (const std::exception& e) {
          return fail(e.what());
        }
        break;
      }
    }
    offset += consumed;
    ++index;
  }
  return std::nullopt;
}

}  // namespace v6::dist
