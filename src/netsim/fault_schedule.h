// Deterministic vantage-server fault injection.
//
// The paper's 27 stratum-2 vantage servers sat in the NTP Pool for seven
// months — long enough for real machines to crash, flap, and get yanked
// from rotation by the pool's health monitoring. FaultSchedule models that
// churn the same way sim::World models eyeball-AS outages: a seeded,
// precomputed plan that is a *pure function of time*, so the fast
// collection path and the wire-fidelity path (and a crashed-and-resumed
// run) all see the exact same failures.
//
// Per vantage the plan holds sorted, disjoint outage windows [start, end).
// While inside a window the server is dark: packets to it vanish. After a
// window ends the server restarts into a slow-start ramp of length
// `slow_start`, during which it answers a linearly growing fraction of
// requests — the decision for a given (vantage, client, second) is a pure
// hash, not an Rng draw, so it never perturbs any caller's RNG stream.
//
// PoolDns consumes the same plan through marked_down(): the real pool's
// monitoring takes a while to notice a dead server, so a vantage only
// leaves steering `monitoring_delay` after the crash, and re-enters
// steering `monitoring_delay` after recovery.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv6.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::netsim {

struct FaultPlanConfig {
  std::uint64_t seed = 13;
  // Expected number of crash windows per vantage over the plan window.
  double outages_per_vantage = 0.0;
  util::SimDuration mean_outage = 6 * util::kHour;
  util::SimDuration min_outage = 10 * util::kMinute;
  // Short blips (seconds-to-minutes), on top of the crash windows.
  double flaps_per_vantage = 0.0;
  util::SimDuration mean_flap = 90;
  // Post-recovery ramp during which the server answers a linearly
  // growing fraction of requests. 0 disables slow start.
  util::SimDuration slow_start = 20 * util::kMinute;

  bool active() const noexcept {
    return outages_per_vantage > 0.0 || flaps_per_vantage > 0.0;
  }
};

struct OutageWindow {
  util::SimTime start = 0;
  util::SimTime end = 0;  // exclusive
};

class FaultSchedule {
 public:
  // Empty plan (no faults); useful for tests that inject windows by hand.
  explicit FaultSchedule(std::span<const sim::VantagePoint> vantages);

  // Generates the seeded plan over [plan_start, plan_end).
  FaultSchedule(std::span<const sim::VantagePoint> vantages,
                const FaultPlanConfig& config, util::SimTime plan_start,
                util::SimTime plan_end);

  // True while the vantage is inside a crash window (completely dark).
  bool in_outage(std::uint8_t vantage, util::SimTime t) const noexcept;

  // Whether a request from `src` arriving at the vantage at time t gets
  // served. False during outages; probabilistic (pure hash of
  // vantage/src/t) during the slow-start ramp; true otherwise.
  bool delivers(std::uint8_t vantage, const net::Ipv6Address& src,
                util::SimTime t) const noexcept;

  // Same, keyed by destination address. Addresses that are not vantage
  // servers always deliver — the schedule only faults vantages.
  bool delivers_to(const net::Ipv6Address& dst, const net::Ipv6Address& src,
                   util::SimTime t) const noexcept;

  // Pool-monitoring view: the vantage is out of steering once the monitor
  // has had `monitoring_delay` to notice the crash, and returns to
  // steering `monitoring_delay` after the crash window ends.
  bool marked_down(std::uint8_t vantage, util::SimTime t,
                   util::SimDuration monitoring_delay) const noexcept;

  // Test/bench hook: append a window by hand. Windows must be added in
  // chronological order per vantage and must not overlap.
  void add_window(std::uint8_t vantage, util::SimTime start,
                  util::SimTime end);

  std::span<const OutageWindow> windows(std::uint8_t vantage) const noexcept;
  std::size_t vantage_count() const noexcept { return windows_.size(); }
  util::SimDuration slow_start() const noexcept { return slow_start_; }

 protected:
  // Subclass hook (WorkerFaultSchedule): an empty plan with `lanes` fault
  // lanes and no vantage address table.
  explicit FaultSchedule(std::size_t lanes);

 private:
  std::vector<std::vector<OutageWindow>> windows_;  // indexed by vantage id
  std::unordered_map<net::Ipv6Address, std::uint8_t, net::Ipv6AddressHash>
      by_address_;
  util::SimDuration slow_start_ = 0;
  std::uint64_t seed_ = 0;
};

// --- Worker-level faults (distributed collection) --------------------------
//
// A worker process dying mid-chunk is just a bigger vantage fault: the same
// seeded, precomputed, pure-function-of-time plan, one lane per worker
// instead of per vantage. WorkerFaultSchedule extends FaultSchedule — the
// base class's sorted-window machinery holds the *stall* windows (a stalled
// worker is alive but silent: it misses heartbeats and its lease may be
// revoked under it) — and layers two worker-specific kinds on top:
//
//   * kills — permanent process death at a seeded (or forced) instant; a
//     killed worker never speaks again (the coordinator detects it by
//     heartbeat silence and reassigns its chunk lease);
//   * slows — windows during which the worker processes chunks at
//     cost_factor x the normal rate (heartbeats arrive late but in time).
//
// All times are on the cluster clock the dist layer runs on (sim seconds
// in the in-process simulation). Lanes are keyed by worker id and share
// the base class's uint8-sized key space: at most 255 workers, an order
// of magnitude past the paper's 27 VPSes.

struct WorkerFaultPlanConfig {
  std::uint64_t seed = 29;
  // Probability (clamped to [0, 1]) that a worker is killed somewhere in
  // the plan window; at most one kill per worker — death is permanent.
  double kills_per_worker = 0.0;
  // Expected stall windows per worker (heartbeat silence, then recovery).
  double stalls_per_worker = 0.0;
  util::SimDuration mean_stall = 30 * util::kMinute;
  // Expected slow windows per worker, and how much slower chunks get.
  double slows_per_worker = 0.0;
  util::SimDuration mean_slow = util::kHour;
  double slow_factor = 4.0;

  bool active() const noexcept {
    return kills_per_worker > 0.0 || stalls_per_worker > 0.0 ||
           slows_per_worker > 0.0;
  }
};

class WorkerFaultSchedule : public FaultSchedule {
 public:
  // Empty plan (healthy fleet); tests and the CLI inject faults by hand.
  explicit WorkerFaultSchedule(std::uint32_t workers);

  // Seeded plan over [plan_start, plan_end).
  WorkerFaultSchedule(std::uint32_t workers,
                      const WorkerFaultPlanConfig& config,
                      util::SimTime plan_start, util::SimTime plan_end);

  std::uint32_t worker_count() const noexcept {
    return static_cast<std::uint32_t>(kill_at_.size());
  }

  // The instant the worker's process dies, if the plan kills it. Workers
  // beyond the plan (respawned replacements) are never killed.
  std::optional<util::SimTime> kill_at(std::uint32_t worker) const noexcept;

  // True while the worker is inside a stall window (alive but silent).
  bool stalled(std::uint32_t worker, util::SimTime t) const noexcept;
  // End of the stall window containing t (t itself when not stalled).
  util::SimTime stall_end(std::uint32_t worker, util::SimTime t) const noexcept;

  // Chunk-processing cost multiplier at t: 1.0 when healthy,
  // config.slow_factor inside a slow window.
  double cost_factor(std::uint32_t worker, util::SimTime t) const noexcept;

  // Test/CLI hooks. set_kill overwrites any planned kill; add_stall and
  // add_slow windows must be appended in chronological order per worker.
  void set_kill(std::uint32_t worker, util::SimTime t);
  void add_stall(std::uint32_t worker, util::SimTime start, util::SimTime end);
  void add_slow(std::uint32_t worker, util::SimTime start, util::SimTime end,
                double factor);

 private:
  struct SlowWindow {
    util::SimTime start = 0;
    util::SimTime end = 0;
    double factor = 1.0;
  };

  std::vector<std::optional<util::SimTime>> kill_at_;  // indexed by worker id
  std::vector<std::vector<SlowWindow>> slows_;
};

}  // namespace v6::netsim
