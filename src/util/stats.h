// Small statistics toolkit used by the analysis layer: running moments,
// empirical CDF/CCDF construction, histograms, and quantiles.
//
// The paper's figures are all CDFs/CCDFs over large sample sets; the types
// here build those curves once and let benches print them as (x, F(x)) rows.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace v6::util {

// Welford-style online mean/variance with min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Empirical distribution over a sample set. Samples are accumulated with
// add() and the curve is finalized on first query (lazily sorts).
//
// Thread safety: concurrent const queries (cdf/quantile/min/max/
// sorted_samples/...) on a shared distribution are safe — the lazy sort
// is guarded by an internal mutex with double-checked locking, so exactly
// one reader performs it. Mutations (add/add_n, assignment, moves) still
// require external synchronization, like any standard container.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  // The guard members (atomic flag + mutex) are not copyable/movable, so
  // the value semantics every analysis relies on are spelled out here.
  EmpiricalDistribution(const EmpiricalDistribution& other);
  EmpiricalDistribution& operator=(const EmpiricalDistribution& other);
  EmpiricalDistribution(EmpiricalDistribution&& other) noexcept;
  EmpiricalDistribution& operator=(EmpiricalDistribution&& other) noexcept;

  void add(double x);
  void add_n(double x, std::size_t n);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  // Fraction of samples <= x.
  double cdf(double x) const;
  // Fraction of samples > x.
  double ccdf(double x) const { return 1.0 - cdf(x); }
  // Smallest sample s such that cdf(s) >= q, for q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double mean() const;
  double min() const;
  double max() const;

  // Evaluates the CDF at `points` evenly spaced x values across
  // [min, max]; returns (x, cdf(x)) pairs. Useful for printing figures.
  std::vector<std::pair<double, double>> cdf_curve(std::size_t points) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  // sorted_ is the double-checked fast path; sort_mu_ serializes the one
  // sort so concurrent const readers never race on samples_.
  mutable std::atomic<bool> sorted_{true};
  mutable std::mutex sort_mu_;
};

// Fixed-width histogram over [lo, hi); finite out-of-range samples clamp
// into the first/last bucket. Non-finite samples (NaN, ±inf) are dropped
// and tallied in dropped() — casting them to an integer bucket index is
// undefined behaviour, so they never reach the bucket math.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1) noexcept;

  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const noexcept { return total_; }
  // Weight of non-finite samples rejected by add(); not part of total().
  std::uint64_t dropped() const noexcept { return dropped_; }
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;
  // Fraction of all weight at or below the upper edge of bucket i.
  double cumulative_fraction(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

// Returns evenly spaced values [lo..hi] inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace v6::util
