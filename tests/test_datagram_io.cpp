#include <gtest/gtest.h>

#include <sstream>

#include "hitlist/corpus_io.h"
#include "proto/buffer.h"
#include "proto/datagram.h"
#include "util/rng.h"

namespace v6 {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

proto::Ipv6Header header_between(std::uint64_t a, std::uint64_t b) {
  proto::Ipv6Header header;
  header.src = addr(a, 1);
  header.dst = addr(b, 2);
  header.hop_limit = 61;
  return header;
}

TEST(Datagram, Icmpv6RoundTrip) {
  const auto wire = proto::build_icmpv6_datagram(
      header_between(10, 20), proto::make_echo_request(7, 9, {1, 2, 3}));
  const auto parsed = proto::parse_datagram(wire);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_icmpv6());
  const auto& message = std::get<proto::Icmpv6Message>(parsed->payload);
  EXPECT_EQ(message.identifier(), 7);
  EXPECT_EQ(message.sequence(), 9);
  EXPECT_EQ(parsed->header.hop_limit, 61);
}

TEST(Datagram, UdpRoundTrip) {
  const auto wire = proto::build_udp_datagram(
      header_between(1, 2), {4000, 123, {9, 8, 7, 6}});
  const auto parsed = proto::parse_datagram(wire);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_udp());
  EXPECT_EQ(std::get<proto::UdpDatagram>(parsed->payload).payload.size(), 4u);
}

TEST(Datagram, TcpRoundTrip) {
  const auto wire = proto::build_tcp_datagram(
      header_between(3, 4), proto::make_syn(4000, 443, 0xabc));
  const auto parsed = proto::parse_datagram(wire);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_tcp());
  EXPECT_TRUE(std::get<proto::TcpSegment>(parsed->payload).is_syn());
}

TEST(Datagram, RejectsLengthMismatch) {
  auto wire = proto::build_udp_datagram(header_between(1, 2), {1, 2, {3}});
  wire.push_back(0);  // trailing byte breaks payload_length consistency
  EXPECT_FALSE(proto::parse_datagram(wire));
}

TEST(Datagram, RejectsUnknownNextHeader) {
  auto wire = proto::build_udp_datagram(header_between(1, 2), {1, 2, {3}});
  wire[6] = 150;  // bogus next-header
  EXPECT_FALSE(proto::parse_datagram(wire));
}

TEST(Datagram, RejectsUpperLayerCorruption) {
  auto wire = proto::build_icmpv6_datagram(header_between(1, 2),
                                           proto::make_echo_request(1, 2));
  wire.back() ^= 0xff;
  EXPECT_FALSE(proto::parse_datagram(wire));
}

TEST(Datagram, FuzzedInputNeverCrashes) {
  util::Rng rng(5);
  int accepted = 0;
  for (int i = 0; i < 3000; ++i) {
    std::vector<std::uint8_t> junk(rng.bounded(128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    if (proto::parse_datagram(junk)) ++accepted;
  }
  EXPECT_EQ(accepted, 0);  // version+length+checksum gauntlet
}

TEST(CorpusIo, SaveLoadRoundTrip) {
  hitlist::Corpus corpus;
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    corpus.add(addr(rng.next(), rng.next()),
               static_cast<util::SimTime>(rng.bounded(1 << 24)),
               static_cast<std::uint8_t>(rng.bounded(27)));
  }
  // Re-observe some addresses so counts and masks exercise merging.
  corpus.add(addr(1, 1), 10, 1);
  corpus.add(addr(1, 1), 99999, 2);

  std::stringstream stream;
  const auto bytes = hitlist::save_corpus(stream, corpus);
  // v2 layout: magic + header + header CRC + records + records CRC.
  EXPECT_EQ(bytes, 8u + 16 + 4 + corpus.size() * 32 + 4);

  const auto loaded = hitlist::load_corpus(stream);
  EXPECT_EQ(loaded.size(), corpus.size());
  EXPECT_EQ(loaded.total_observations(), corpus.total_observations());
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    const auto* other = loaded.find(rec.address);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->first_seen, rec.first_seen);
    EXPECT_EQ(other->last_seen, rec.last_seen);
    EXPECT_EQ(other->count, rec.count);
    EXPECT_EQ(other->vantage_mask, rec.vantage_mask);
  });
}

TEST(CorpusIo, EmptyCorpusRoundTrips) {
  hitlist::Corpus corpus;
  std::stringstream stream;
  hitlist::save_corpus(stream, corpus);
  EXPECT_EQ(hitlist::load_corpus(stream).size(), 0u);
}

TEST(CorpusIo, RejectsBadMagic) {
  std::stringstream stream("NOTACORP........");
  EXPECT_THROW(hitlist::load_corpus(stream), std::runtime_error);
}

TEST(CorpusIo, RejectsTruncation) {
  hitlist::Corpus corpus;
  corpus.add(addr(1, 2), 5, 0);
  std::stringstream stream;
  hitlist::save_corpus(stream, corpus);
  const std::string full = stream.str();
  for (std::size_t cut : {9ul, 20ul, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(hitlist::load_corpus(truncated), std::runtime_error);
  }
}

TEST(CorpusIo, RejectsTrailingGarbage) {
  hitlist::Corpus corpus;
  corpus.add(addr(1, 2), 5, 0);
  std::stringstream stream;
  hitlist::save_corpus(stream, corpus);
  stream << "extra";
  EXPECT_THROW(hitlist::load_corpus(stream), std::runtime_error);
}

TEST(CorpusIo, RejectsTruncationAtEveryByteOffset) {
  // A crash mid-checkpoint can cut the snapshot anywhere: in the magic,
  // the header, the header CRC, mid-record, or inside the trailer CRC.
  // Every strict prefix must throw instead of loading a partial corpus.
  hitlist::Corpus corpus;
  corpus.add(addr(0xaaaa, 1), 5, 0);
  corpus.add(addr(0xbbbb, 2), 9, 1);
  corpus.add(addr(0xcccc, 3), 12, 2);
  std::stringstream stream;
  hitlist::save_corpus(stream, corpus);
  const std::string full = stream.str();
  ASSERT_EQ(full.size(), 8u + 16 + 4 + 3 * 32 + 4);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(hitlist::load_corpus(truncated), std::runtime_error)
        << "prefix of " << cut << " bytes loaded";
  }
  std::stringstream intact(full);
  EXPECT_EQ(hitlist::load_corpus(intact).size(), 3u);
}

TEST(CorpusIo, DetectsSingleByteCorruptionViaCrc) {
  hitlist::Corpus corpus;
  corpus.add(addr(0x1234, 1), 5, 0);
  corpus.add(addr(0x5678, 2), 9, 3);
  std::stringstream stream;
  hitlist::save_corpus(stream, corpus);
  const std::string full = stream.str();

  const auto corrupt_at = [&](std::size_t offset) {
    std::string bad = full;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x40);
    std::stringstream s(bad);
    EXPECT_THROW(hitlist::load_corpus(s), std::runtime_error)
        << "flip at byte " << offset << " loaded";
  };
  corrupt_at(9);                // record count (header CRC catches it)
  corrupt_at(17);               // observation count
  corrupt_at(25);               // the header CRC itself
  // A flipped vantage_mask byte would parse as a plausible corpus without
  // the records-section CRC; the trailer must catch it.
  corrupt_at(full.size() - 5);  // last record byte
  corrupt_at(full.size() - 1);  // the trailer CRC itself
  corrupt_at(8 + 16 + 4 + 16);  // first record's first_seen field
}

TEST(CorpusIo, LoadsVersion1SnapshotsWithoutCrcSections) {
  // Snapshots written before the CRC format bump: magic V6CORP01, header,
  // raw records, no checksums. They must keep loading.
  proto::BufferWriter writer;
  const char magic[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '1'};
  writer.bytes(std::span(reinterpret_cast<const std::uint8_t*>(magic), 8));
  writer.u64(1);  // one record
  writer.u64(4);  // four observations
  const auto address = addr(0xdead, 0xbeef);
  writer.bytes(address.bytes());
  writer.u32(100);  // first_seen
  writer.u32(900);  // last_seen
  writer.u32(4);    // count
  writer.u32(0b101);  // vantage_mask
  std::stringstream stream;
  stream.write(reinterpret_cast<const char*>(writer.data().data()),
               static_cast<std::streamsize>(writer.size()));

  const auto loaded = hitlist::load_corpus(stream);
  ASSERT_EQ(loaded.size(), 1u);
  const auto* rec = loaded.find(address);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->first_seen, 100u);
  EXPECT_EQ(rec->last_seen, 900u);
  EXPECT_EQ(rec->count, 4u);
  EXPECT_EQ(rec->vantage_mask, 0b101u);
  EXPECT_EQ(loaded.total_observations(), 4u);
}

TEST(CorpusIo, RejectsOversizedRecordCountBeforeAllocating) {
  // A hostile header can claim any record count; the loader must reject
  // it from the payload size alone instead of allocating a table for it.
  // These counts would demand hundreds of GiB (or overflow the byte-size
  // arithmetic entirely) if the check ran after the allocation.
  for (const std::uint64_t claimed :
       {std::uint64_t{1} << 40, std::uint64_t{1} << 61,
        std::uint64_t{0xffffffffffffffff}, std::uint64_t{2}}) {
    proto::BufferWriter writer;
    const char magic[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '1'};
    writer.bytes(
        std::span(reinterpret_cast<const std::uint8_t*>(magic), 8));
    writer.u64(claimed);  // record count
    writer.u64(1);        // observation count
    // Payload for exactly one record.
    for (int i = 0; i < 32; ++i) writer.u8(i == 15 ? 1 : 0);
    std::stringstream stream;
    stream.write(reinterpret_cast<const char*>(writer.data().data()),
                 static_cast<std::streamsize>(writer.size()));
    EXPECT_THROW(hitlist::load_corpus(stream), std::runtime_error)
        << "claimed record count " << claimed;
  }
}

TEST(CorpusIo, RejectsZeroCountRecord) {
  // count == 0 is unrepresentable by any add() sequence; a snapshot
  // carrying one is forged or corrupt.
  proto::BufferWriter writer;
  const char magic[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '1'};
  writer.bytes(std::span(reinterpret_cast<const std::uint8_t*>(magic), 8));
  writer.u64(1);  // one record
  writer.u64(0);  // zero observations (consistent with the forged count)
  writer.bytes(addr(1, 2).bytes());
  writer.u32(5);  // first_seen
  writer.u32(5);  // last_seen
  writer.u32(0);  // count: impossible
  writer.u32(1);  // vantage_mask
  std::stringstream stream;
  stream.write(reinterpret_cast<const char*>(writer.data().data()),
               static_cast<std::streamsize>(writer.size()));
  EXPECT_THROW(hitlist::load_corpus(stream), std::runtime_error);
}

TEST(CorpusIo, RejectsObservationTotalMismatch) {
  // The header's observation total must equal the sum of record counts —
  // the check a wrapping u64 accumulator used to make forgeable. (The sum
  // itself cannot overflow with any snapshot small enough to store, but
  // the guard plus this equality keeps the invariant airtight.)
  proto::BufferWriter writer;
  const char magic[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '1'};
  writer.bytes(std::span(reinterpret_cast<const std::uint8_t*>(magic), 8));
  writer.u64(1);   // one record
  writer.u64(99);  // header claims 99 observations
  writer.bytes(addr(1, 2).bytes());
  writer.u32(5);
  writer.u32(9);
  writer.u32(3);  // record carries 3
  writer.u32(1);
  std::stringstream stream;
  stream.write(reinterpret_cast<const char*>(writer.data().data()),
               static_cast<std::streamsize>(writer.size()));
  EXPECT_THROW(hitlist::load_corpus(stream), std::runtime_error);
}

TEST(CorpusIo, StreamLoaderAgreesWithSpanLoader) {
  // The chunked istream loader and the one-shot span loader are two
  // implementations of the same format: equal corpora from intact bytes,
  // and a throw from every truncation for both.
  hitlist::Corpus corpus;
  util::Rng rng(21);
  for (int i = 0; i < 300; ++i) {
    corpus.add(addr(rng.next(), rng.next()),
               static_cast<util::SimTime>(rng.bounded(1 << 20)),
               static_cast<std::uint8_t>(rng.bounded(27)));
  }
  proto::BufferWriter writer;
  hitlist::save_corpus(writer, corpus);
  const std::string bytes(reinterpret_cast<const char*>(
                              writer.data().data()),
                          writer.size());

  std::stringstream stream(bytes, std::ios::in | std::ios::binary);
  const auto from_stream = hitlist::load_corpus(stream);
  const auto from_span = hitlist::load_corpus(writer.data());
  ASSERT_EQ(from_stream.size(), from_span.size());
  EXPECT_EQ(from_stream.total_observations(),
            from_span.total_observations());
  from_span.for_each([&](const hitlist::AddressRecord& rec) {
    const auto* other = from_stream.find(rec.address);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->count, rec.count);
    EXPECT_EQ(other->first_seen, rec.first_seen);
  });

  for (const std::size_t len : {std::size_t{0}, std::size_t{5},
                                std::size_t{8}, std::size_t{27},
                                bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream cut(bytes.substr(0, len),
                          std::ios::in | std::ios::binary);
    EXPECT_THROW(hitlist::load_corpus(cut), std::runtime_error)
        << "stream length " << len;
    const auto span = std::span<const std::uint8_t>(writer.data()).subspan(0, len);
    EXPECT_THROW(hitlist::load_corpus(span), std::runtime_error)
        << "span length " << len;
  }
}

TEST(CorpusIo, StreamLoaderHandlesMultiChunkSnapshots) {
  // Past the 8192-record chunk boundary the loader reads several chunks
  // and chains the CRC across them.
  hitlist::Corpus corpus;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    corpus.add(addr(i / 7, i * 0x9e3779b97f4a7c15ull), 5, 0);
  }
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  hitlist::save_corpus(stream, corpus);
  const auto loaded = hitlist::load_corpus(stream);
  EXPECT_EQ(loaded.size(), corpus.size());
  EXPECT_EQ(loaded.total_observations(), corpus.total_observations());
}

TEST(CorpusIo, SnapshotWriterEnforcesDeclaredRecordCount) {
  hitlist::AddressRecord rec;
  rec.address = addr(1, 1);
  rec.first_seen = rec.last_seen = 1;
  rec.count = 1;
  {
    std::stringstream out(std::ios::out | std::ios::binary);
    hitlist::CorpusSnapshotWriter writer(out, /*records=*/2,
                                         /*observations=*/2);
    writer.append(rec);
    EXPECT_THROW(writer.finish(), std::logic_error);  // one short
  }
  {
    std::stringstream out(std::ios::out | std::ios::binary);
    hitlist::CorpusSnapshotWriter writer(out, 1, 1);
    writer.append(rec);
    writer.finish();
    EXPECT_THROW(writer.finish(), std::logic_error);  // double finish
  }
}

}  // namespace
}  // namespace v6
