# Empty compiler generated dependencies file for v6_dns.
# This may be replaced when dependencies are built.
