file(REMOVE_RECURSE
  "CMakeFiles/v6_scan.dir/backscanner.cc.o"
  "CMakeFiles/v6_scan.dir/backscanner.cc.o.d"
  "CMakeFiles/v6_scan.dir/target_gen.cc.o"
  "CMakeFiles/v6_scan.dir/target_gen.cc.o.d"
  "CMakeFiles/v6_scan.dir/tga.cc.o"
  "CMakeFiles/v6_scan.dir/tga.cc.o.d"
  "CMakeFiles/v6_scan.dir/yarrp.cc.o"
  "CMakeFiles/v6_scan.dir/yarrp.cc.o.d"
  "CMakeFiles/v6_scan.dir/zmap6.cc.o"
  "CMakeFiles/v6_scan.dir/zmap6.cc.o.d"
  "libv6_scan.a"
  "libv6_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
