// Per-AS behavioural profile: addressing conventions, prefix rotation,
// firewalling, NTP Pool usage, and aliasing.
//
// §4.3 of the paper shows addressing strategy is strongly AS-specific
// (Reliance Jio's two-mode IIDs, low-entropy Telkomsel, high-entropy
// T-Mobile). Profiles capture that: the world generator derives a profile
// from the AS type and then applies per-AS tweaks for the named exemplars.
#pragma once

#include <array>
#include <cstdint>

#include "sim/types.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace v6::sim {

inline constexpr std::size_t kIidStrategyCount = 10;

// Weights over IidStrategy values (indexed by static_cast<size_t>).
using StrategyWeights = std::array<double, kIidStrategyCount>;

constexpr double& weight(StrategyWeights& w, IidStrategy s) {
  return w[static_cast<std::size_t>(s)];
}

struct AsProfile {
  // Strategy mix for client devices (desktops, phones, IoT).
  StrategyWeights client_strategies{};
  // Strategy mix for CPE WAN interfaces.
  StrategyWeights cpe_strategies{};
  // Strategy mix for datacenter servers.
  StrategyWeights server_strategies{};
  // How often delegated customer prefixes are reassigned; 0 = static.
  util::SimDuration rotation_period = 0;
  // Fraction of customer sites whose CPE firewalls unsolicited inbound.
  double firewall_fraction = 0.3;
  // Fraction of client devices configured to use the NTP Pool.
  double pool_usage_fraction = 0.5;
  // Fraction of sites whose /64s are aliased (CPE answers any address).
  double aliased_site_fraction = 0.0;
  // Mobile carriers only: the entire cellular pool is aliased (a CGN-style
  // middlebox answers for every address). Such whole-region aliasing is
  // what BGP-driven alias detection — and hence the IPv6 Hitlist — can
  // find; partially aliased pools escape it.
  bool cellular_fully_aliased = false;
  // Standalone aliased /48s in the AS (CDN-style datacenter aliasing).
  std::uint32_t alias_slash48_count = 0;
  // Fraction of mobile subscribers relative to sites (mobile carriers).
  double mobile_subscriber_ratio = 0.0;
};

// Baseline profile for an AS of the given type; `rng` adds bounded per-AS
// variability so no two ASes behave identically.
AsProfile make_profile(AsType type, util::Rng& rng);

}  // namespace v6::sim
