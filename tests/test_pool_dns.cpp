#include "netsim/pool_dns.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.h"

namespace v6::netsim {
namespace {

class PoolDnsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 31;
    config.total_sites = 500;
    config.geodb_error_rate = 0.0;  // exact steering for these tests
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }
  static sim::World* world_;
};

sim::World* PoolDnsTest::world_ = nullptr;

// Address of some device in the given country, if any.
std::optional<net::Ipv6Address> address_in_country(const sim::World& w,
                                                   std::string_view code) {
  for (const auto& dev : w.devices()) {
    if (w.country_of_as(dev.as_index).to_string() == code) {
      return w.device_address(dev.id, 1000);
    }
  }
  return std::nullopt;
}

TEST_F(PoolDnsTest, InCountryClientsSteerToInCountryVantage) {
  const PoolDns dns(*world_, /*global_fraction=*/0.0);
  util::Rng rng(1);
  const auto client = address_in_country(*world_, "DE");
  ASSERT_TRUE(client);
  for (int i = 0; i < 50; ++i) {
    const auto* vantage = dns.resolve(*client, rng);
    ASSERT_NE(vantage, nullptr);
    EXPECT_EQ(vantage->country.to_string(), "DE");
  }
}

TEST_F(PoolDnsTest, RoundRobinRotatesAmongServers) {
  const PoolDns dns(*world_, 0.0);
  util::Rng rng(2);
  const auto client = address_in_country(*world_, "US");
  ASSERT_TRUE(client);
  std::unordered_set<std::uint8_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(dns.resolve(*client, rng)->id);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six US vantages get traffic
}

TEST_F(PoolDnsTest, NoVantageCountryFallsBackToNearest) {
  const PoolDns dns(*world_, 0.0);
  // France has no vantage; nearest vantage country should be European.
  const auto& candidates =
      dns.candidates(*geo::CountryCode::parse("FR"));
  ASSERT_FALSE(candidates.empty());
  const auto code = candidates.front()->country.to_string();
  EXPECT_TRUE(code == "DE" || code == "NL" || code == "GB" || code == "ES")
      << code;
}

TEST_F(PoolDnsTest, GlobalFractionHitsRemoteVantages) {
  const PoolDns dns(*world_, 0.5);
  util::Rng rng(3);
  const auto client = address_in_country(*world_, "DE");
  ASSERT_TRUE(client);
  std::unordered_set<std::string> countries;
  for (int i = 0; i < 300; ++i) {
    countries.insert(dns.resolve(*client, rng)->country.to_string());
  }
  EXPECT_GT(countries.size(), 5u);
}

TEST_F(PoolDnsTest, ZeroVantageShareSeesNothing) {
  const PoolDns dns(*world_, 0.0, /*vantage_share=*/0.0);
  util::Rng rng(5);
  const auto client = address_in_country(*world_, "US");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dns.resolve(*client, rng), nullptr);
  }
}

TEST_F(PoolDnsTest, PartialVantageShareSamples) {
  const PoolDns dns(*world_, 0.0, /*vantage_share=*/0.25);
  util::Rng rng(6);
  const auto client = address_in_country(*world_, "US");
  int captured = 0;
  constexpr int kQueries = 4000;
  for (int i = 0; i < kQueries; ++i) {
    if (dns.resolve(*client, rng) != nullptr) ++captured;
  }
  EXPECT_NEAR(static_cast<double>(captured) / kQueries, 0.25, 0.03);
}

TEST_F(PoolDnsTest, UnroutedClientStillGetsAServer) {
  const PoolDns dns(*world_, 0.0);
  util::Rng rng(4);
  const auto* vantage =
      dns.resolve(*net::Ipv6Address::parse("2001:db8::1"), rng);
  EXPECT_NE(vantage, nullptr);
}

}  // namespace
}  // namespace v6::netsim
