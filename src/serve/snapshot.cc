#include "serve/snapshot.h"

#include <algorithm>
#include <utility>

#include "analysis/scan_source.h"
#include "kernels/batch.h"
#include "net/eui64.h"

namespace v6::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

std::shared_ptr<const Snapshot> Snapshot::build(
    const analysis::ScanSource& src, std::uint64_t epoch,
    util::SimTime as_of) {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch_ = epoch;
  snap->as_of_ = as_of;
  snap->records_.reserve(static_cast<std::size_t>(src.records));

  // (MAC, /64) sightings collected during the pass; sorted and deduped
  // afterwards to derive per-OUI exposure.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> mac_slash64;

  // Block-driven pass: IID entropies come from the batch kernel a chunk
  // at a time (bit-identical to per-record net::iid_entropy on either
  // backend, so the snapshot digest is dispatch-independent).
  constexpr std::size_t kChunk = 1024;
  std::uint64_t iids[kChunk];
  double entropies[kChunk];
  src.visit_blocks(0, src.span, [&](std::span<const hitlist::AddressRecord>
                                        block) {
    for (std::size_t base = 0; base < block.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, block.size() - base);
      kernels::extract_iid_batch(
          reinterpret_cast<const std::uint8_t*>(block.data() + base),
          sizeof(hitlist::AddressRecord), n, iids);
      kernels::iid_entropy_batch(iids, n, entropies);
      for (std::size_t i = 0; i < n; ++i) {
        const hitlist::AddressRecord& rec = block[base + i];
        snap->records_.push_back(rec);
        snap->observations_ += rec.count;

        const std::uint64_t hi = rec.address.hi64();
        const std::uint64_t key48 = hi >> 16;
        if (snap->slash48_.empty() || snap->slash48_.back().key != key48) {
          snap->slash48_.push_back({key48, 0});
        }
        ++snap->slash48_.back().count;

        if (snap->slash64_.empty() || snap->slash64_.back().hi != hi) {
          snap->slash64_.push_back({hi, {}});
        }
        Slash64Summary& sum = snap->slash64_.back().summary;
        ++sum.addresses;
        switch (net::entropy_band(entropies[i])) {
          case net::EntropyBand::kLow: ++sum.low; break;
          case net::EntropyBand::kMedium: ++sum.medium; break;
          case net::EntropyBand::kHigh: ++sum.high; break;
        }
        if (const auto mac = net::mac_from_eui64(iids[i])) {
          ++sum.eui64;
          mac_slash64.emplace_back(mac->to_u64(), hi);
        }
      }
    }
  });

  // Per-OUI fold: dedup (MAC, /64) pairs, then walk MAC groups (pairs
  // sort MAC-major, so each MAC's /64s are contiguous).
  std::sort(mac_slash64.begin(), mac_slash64.end());
  mac_slash64.erase(std::unique(mac_slash64.begin(), mac_slash64.end()),
                    mac_slash64.end());
  // eui64_addresses counts *records*, not deduped pairs, so tally it from
  // the per-/64 summaries keyed by OUI in a second cheap pass below.
  std::vector<OuiRow>& ouis = snap->oui_;
  for (std::size_t i = 0; i < mac_slash64.size();) {
    const std::uint64_t mac = mac_slash64[i].first;
    std::size_t j = i;
    while (j < mac_slash64.size() && mac_slash64[j].first == mac) ++j;
    const auto oui = static_cast<std::uint32_t>(mac >> 24);
    if (ouis.empty() || ouis.back().oui != oui) ouis.push_back({oui, {}});
    OuiRisk& risk = ouis.back().risk;
    ++risk.unique_macs;
    if (j - i >= 2) ++risk.trackable_macs;
    risk.mac_slash64_pairs += j - i;
    i = j;
  }
  // MAC-major sort order is OUI-major too, so `ouis` is already ascending.
  // Count EUI-64 records per OUI (duplicates across /64s included).
  for (const hitlist::AddressRecord& rec : snap->records_) {
    const auto mac = net::mac_from_eui64(rec.address.iid());
    if (!mac) continue;
    const std::uint32_t oui = mac->oui().value();
    const auto it = std::lower_bound(
        ouis.begin(), ouis.end(), oui,
        [](const OuiRow& row, std::uint32_t v) { return row.oui < v; });
    if (it != ouis.end() && it->oui == oui) ++it->risk.eui64_addresses;
  }

  // Answer-table digest: any two snapshots with equal digests answer every
  // query identically (the tables below are the complete answer surface).
  std::uint64_t h = kFnvOffset;
  fnv(h, snap->records_.size());
  for (const hitlist::AddressRecord& rec : snap->records_) {
    fnv(h, rec.address.hi64());
    fnv(h, rec.address.lo64());
    fnv(h, (static_cast<std::uint64_t>(rec.first_seen) << 32) | rec.last_seen);
    fnv(h, (static_cast<std::uint64_t>(rec.count) << 32) | rec.vantage_mask);
  }
  for (const Slash48Row& row : snap->slash48_) {
    fnv(h, row.key);
    fnv(h, row.count);
  }
  for (const Slash64Row& row : snap->slash64_) {
    fnv(h, row.hi);
    fnv(h, row.summary.low);
    fnv(h, row.summary.medium);
    fnv(h, row.summary.high);
    fnv(h, row.summary.eui64);
  }
  for (const OuiRow& row : snap->oui_) {
    fnv(h, row.oui);
    fnv(h, row.risk.unique_macs);
    fnv(h, row.risk.trackable_macs);
    fnv(h, row.risk.mac_slash64_pairs);
    fnv(h, row.risk.eui64_addresses);
  }
  snap->digest_ = h;
  return snap;
}

std::optional<hitlist::AddressRecord> Snapshot::find(
    const net::Ipv6Address& address) const noexcept {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), address,
      [](const hitlist::AddressRecord& rec, const net::Ipv6Address& a) {
        return rec.address < a;
      });
  if (it == records_.end() || it->address != address) return std::nullopt;
  return *it;
}

std::uint64_t Snapshot::slash48_density(
    const net::Ipv6Address& address) const noexcept {
  const std::uint64_t key = address.hi64() >> 16;
  const auto it = std::lower_bound(
      slash48_.begin(), slash48_.end(), key,
      [](const Slash48Row& row, std::uint64_t k) { return row.key < k; });
  if (it == slash48_.end() || it->key != key) return 0;
  return it->count;
}

const Slash64Summary* Snapshot::slash64(
    const net::Ipv6Address& address) const noexcept {
  const std::uint64_t hi = address.hi64();
  const auto it = std::lower_bound(
      slash64_.begin(), slash64_.end(), hi,
      [](const Slash64Row& row, std::uint64_t k) { return row.hi < k; });
  if (it == slash64_.end() || it->hi != hi) return nullptr;
  return &it->summary;
}

const OuiRisk* Snapshot::oui_risk(net::Oui oui) const noexcept {
  const auto it = std::lower_bound(
      oui_.begin(), oui_.end(), oui.value(),
      [](const OuiRow& row, std::uint32_t v) { return row.oui < v; });
  if (it == oui_.end() || it->oui != oui.value()) return nullptr;
  return &it->risk;
}

std::size_t Snapshot::memory_bytes() const noexcept {
  return records_.capacity() * sizeof(hitlist::AddressRecord) +
         slash48_.capacity() * sizeof(Slash48Row) +
         slash64_.capacity() * sizeof(Slash64Row) +
         oui_.capacity() * sizeof(OuiRow);
}

}  // namespace v6::serve
