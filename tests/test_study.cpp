#include "core/study.h"

#include <gtest/gtest.h>

#include "analysis/entropy_distribution.h"

namespace v6::core {
namespace {

StudyConfig small_study(std::uint64_t seed = 7) {
  StudyConfig config;
  config.world.seed = seed;
  config.world.total_sites = 400;
  // Full pool capture keeps the tiny test corpus statistically meaningful;
  // the benches exercise the realistic sampled share.
  config.pool_capture_share = 1.0;
  config.world.study_duration = 30 * util::kDay;
  config.backscan_start = 35 * util::kDay;
  config.backscan_duration = 2 * util::kDay;
  config.hitlist_campaign.start = 2 * util::kDay;
  config.hitlist_campaign.duration = 4 * util::kWeek;
  config.caida_campaign.start = 2 * util::kDay;
  config.caida_campaign.duration = 10 * util::kDay;
  config.caida_campaign.slash48_fraction = 0.005;
  return config;
}

class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    study_ = new Study(Study::run(small_study()));
  }
  static void TearDownTestSuite() { delete study_; }
  static Study* study_;
};

Study* StudyTest::study_ = nullptr;

TEST_F(StudyTest, AllStagesProduceData) {
  const auto& r = study_->results();
  EXPECT_GT(r.ntp.size(), 10000u);
  EXPECT_GT(r.hitlist.corpus.size(), 300u);
  EXPECT_GT(r.caida.corpus.size(), 100u);
  EXPECT_GT(r.backscan.clients_probed, 100u);
  EXPECT_GT(r.backscan_week.size(), 100u);
  EXPECT_GT(r.polls_attempted, r.ntp.total_observations());
}

TEST_F(StudyTest, NtpCorpusDwarfsActiveDatasets) {
  // At test scale (400 sites, 30 days) active discovery saturates the
  // tiny world while passive volume is duration-limited, so the margin is
  // modest; the gap widens by orders of magnitude with scale and duration
  // (see the Table 1 bench).
  const auto& r = study_->results();
  EXPECT_GT(r.ntp.size(), static_cast<std::size_t>(
                              1.5 * static_cast<double>(
                                        r.hitlist.corpus.size())));
  EXPECT_GT(r.ntp.size(), 3 * r.caida.corpus.size());
}

TEST_F(StudyTest, DatasetsAreNearlyDisjoint) {
  const auto& r = study_->results();
  const auto common =
      analysis::intersection_size(r.ntp, r.hitlist.corpus);
  EXPECT_LT(static_cast<double>(common),
            0.15 * static_cast<double>(r.hitlist.corpus.size()));
}

TEST_F(StudyTest, NtpEntropyExceedsActiveDatasets) {
  const auto& r = study_->results();
  const auto ntp = analysis::entropy_distribution(r.ntp);
  const auto caida = analysis::entropy_distribution(r.caida.corpus);
  EXPECT_GT(ntp.median(), 0.7);
  EXPECT_LT(caida.median(), 0.3);
}

TEST_F(StudyTest, BackscanResponseRateNearTwoThirds) {
  const auto& r = study_->results();
  const double rate = static_cast<double>(r.backscan.clients_responded) /
                      static_cast<double>(r.backscan.clients_probed);
  EXPECT_GT(rate, 0.45);
  EXPECT_LT(rate, 0.85);
}

TEST_F(StudyTest, RandomTargetsRespondRarely) {
  const auto& r = study_->results();
  const double rate =
      static_cast<double>(r.backscan.responsive_random_addresses) /
      static_cast<double>(r.backscan.random_probed);
  EXPECT_LT(rate, 0.25);
}

TEST_F(StudyTest, MostBackscanAliasesKnownToHitlist) {
  const auto& check = study_->results().alias_check;
  const auto total = check.aliased_known_to_hitlist + check.aliased_new;
  if (total == 0) GTEST_SKIP() << "no aliases found at this scale";
  EXPECT_GT(check.aliased_known_to_hitlist, check.aliased_new);
}

TEST_F(StudyTest, NtpSeesAliasedClientsHitlistCannot) {
  const auto& check = study_->results().alias_check;
  if (check.ntp_clients_in_aliased == 0) {
    GTEST_SKIP() << "no aliased clients at this scale";
  }
  EXPECT_GT(check.ntp_clients_in_aliased,
            check.hitlist_addresses_in_aliased);
}

TEST_F(StudyTest, CountryMixMatchesPaperShape) {
  const auto mix = study_->country_mix();
  ASSERT_GE(mix.size(), 5u);
  std::uint64_t total = 0, top5 = 0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    total += mix[i].second;
    if (i < 5) top5 += mix[i].second;
  }
  // §3: the top five countries contribute ~76% of addresses.
  EXPECT_GT(static_cast<double>(top5) / static_cast<double>(total), 0.55);
  // India and China lead.
  EXPECT_TRUE(mix[0].first.to_string() == "IN" ||
              mix[0].first.to_string() == "CN");
}

TEST_F(StudyTest, StagesAreIdempotent) {
  // Rerunning a stage must not change results.
  auto& study = *study_;
  const auto before = study.results().ntp.size();
  study.collect();
  EXPECT_EQ(study.results().ntp.size(), before);
}

// Property sweep: the study's headline invariants are not artifacts of one
// lucky seed.
class StudySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StudySeedSweep, InvariantsHoldAcrossSeeds) {
  auto config = small_study(GetParam());
  config.world.total_sites = 350;
  Study study(config);
  study.collect();
  study.run_campaigns();
  const auto& r = study.results();

  // Passive beats active in volume; corpora are mostly disjoint.
  EXPECT_GT(r.ntp.size(), r.hitlist.corpus.size());
  EXPECT_GT(r.ntp.size(), r.caida.corpus.size());
  const auto common = analysis::intersection_size(r.ntp, r.hitlist.corpus);
  EXPECT_LT(common, r.hitlist.corpus.size() / 4);

  // Entropy ordering: clients > infrastructure.
  const auto ntp_entropy = analysis::entropy_distribution(r.ntp);
  const auto caida_entropy =
      analysis::entropy_distribution(r.caida.corpus);
  EXPECT_GT(ntp_entropy.median(), 0.6);
  EXPECT_LT(caida_entropy.median(), 0.4);

  // The Hitlist never publishes addresses inside its own aliased list.
  std::uint64_t inside = 0;
  r.hitlist.corpus.for_each([&](const hitlist::AddressRecord& rec) {
    for (const auto& p : r.hitlist.aliased_prefixes) {
      if (p.contains(rec.address)) ++inside;
    }
  });
  EXPECT_EQ(inside, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StudySeedSweep,
                         ::testing::Values(101, 202, 303));

TEST(StudyDeterminism, SameConfigSameCorpus) {
  auto a = Study(small_study(11));
  auto b = Study(small_study(11));
  a.collect();
  b.collect();
  EXPECT_EQ(a.results().ntp.size(), b.results().ntp.size());
  EXPECT_EQ(a.results().ntp.total_observations(),
            b.results().ntp.total_observations());
}

TEST(StudyDeterminism, DifferentSeedsDiffer) {
  auto a = Study(small_study(11));
  auto b = Study(small_study(12));
  a.collect();
  b.collect();
  EXPECT_NE(a.results().ntp.size(), b.results().ntp.size());
}

}  // namespace
}  // namespace v6::core
