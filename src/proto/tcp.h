// Minimal TCP segment codec (RFC 9293) — enough for SYN scanning.
//
// The IPv6 Hitlist probes TCP 80/443 besides ICMPv6; a scanner only ever
// needs three segment shapes: the SYN it sends, and the SYN-ACK or RST it
// gets back. Checksums use the IPv6 pseudo-header like UDP/ICMPv6.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "proto/buffer.h"

namespace v6::proto {

inline constexpr std::uint8_t kProtoTcp = 6;

// Flag bits in the TCP header (subset).
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t sequence = 0;
  std::uint32_t ack_number = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;

  bool is_syn() const noexcept { return (flags & (kTcpSyn | kTcpAck)) == kTcpSyn; }
  bool is_syn_ack() const noexcept {
    return (flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck);
  }
  bool is_rst() const noexcept { return flags & kTcpRst; }

  friend bool operator==(const TcpSegment&, const TcpSegment&) = default;
};

// Serializes a bare 20-byte header with a valid checksum.
std::vector<std::uint8_t> encode_tcp(const TcpSegment& segment,
                                     const net::Ipv6Address& src,
                                     const net::Ipv6Address& dst);

// Parses and verifies length/checksum; rejects segments with a data offset
// other than 5 (we never emit options).
std::optional<TcpSegment> decode_tcp(std::span<const std::uint8_t> data,
                                     const net::Ipv6Address& src,
                                     const net::Ipv6Address& dst);

// Scanner-side constructors.
TcpSegment make_syn(std::uint16_t src_port, std::uint16_t dst_port,
                    std::uint32_t sequence);
// Listener answers: SYN-ACK acknowledging the SYN's sequence.
TcpSegment make_syn_ack(const TcpSegment& syn, std::uint32_t server_sequence);
// Closed port answers: RST with the proper acknowledgement.
TcpSegment make_rst(const TcpSegment& syn);

}  // namespace v6::proto
