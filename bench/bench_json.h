// Machine-readable bench output, shared by every bench binary.
//
// BenchJson accumulates flat key/value metrics and writes them as one
// JSON object (a `BENCH_*.json` file in the working directory) so CI can
// archive the perf trajectory run over run instead of scraping stdout
// tables. tools/bench_diff.sh gates committed figures on these files:
// keys matching its volatile pattern (rates, seconds, speedups, byte
// footprints) may drift run to run, everything else must reproduce
// exactly.
//
// Key naming conventions (keep them consistent across BENCH files — the
// drift gate and trajectory charts key on them):
//   *_per_sec        — throughput rates (volatile)
//   *_seconds        — wall-clock timings (volatile)
//   *_speedup        — ratios between two timed variants (volatile)
//   *_bit_identical  — determinism/identity verdicts (stable; a flip is
//                      a regression, never noise)
//
// Header-only and dependency-free so microbenches that never build a
// simulated world (e.g. bench_kernels) can emit trajectories without
// linking the study stack; world-scaled benches stamp their scale via
// bench_common's scaled_bench_json().
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace v6::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) { text("bench", bench_name); }

  void number(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    entries_.emplace_back(key, buf);
  }

  void integer(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }

  void boolean(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }

  void text(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + escape(value) + "\"");
  }

  // Writes the object to `path` and prints the path; returns false (and
  // reports on stderr) if the file cannot be written.
  bool write(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("{\n", out);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(out, "  \"%s\": %s%s\n", escape(entries_[i].first).c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fputs("}\n", out);
    std::fclose(out);
    std::printf("[wrote %s]\n", path.c_str());
    return true;
  }

 private:
  static std::string escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size() + 2);
    for (const char c : raw) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace v6::bench
