// Backscanning (§3, §4.2): actively probing the NTP clients that just
// visited our vantage servers.
//
// The paper records clients over ten-minute intervals and probes each
// interval's clients when it closes: the client address itself (ICMPv6
// echo, plus a Yarrp trace for a sample) and one *random* address inside
// the client's /64. A random-IID hit almost certainly indicates an aliased
// /64 — the paper's alias-discovery trick.
//
// Observations may arrive in any order (the collector enumerates
// device-major): each sighting is independently assigned to its wall-clock
// interval, deduplicated within it ("no IP probed more than once during a
// 10 minute interval"), and probed at that interval's end.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/ipv6.h"
#include "net/prefix.h"
#include "netsim/data_plane.h"
#include "ntp/server.h"
#include "scan/yarrp.h"
#include "scan/zmap6.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace v6::scan {

struct BackscanConfig {
  // Interval granularity (the paper's ten minutes); clients observed in an
  // interval are probed at its end.
  util::SimDuration interval = 10 * util::kMinute;
  // Fraction of clients additionally traced with Yarrp.
  double trace_fraction = 0.05;
  std::uint8_t yarrp_max_hops = 12;
  std::uint64_t seed = 11;
  // Re-probe unanswered targets this many extra times (fed straight into
  // Zmap6Config::retries), so backscan results tolerate transit loss the
  // way the real tooling does.
  std::uint32_t retries = 2;
  // Optional metrics sink (not owned). Propagated into the per-interval
  // Zmap6/Yarrp scanners, so their probe counters aggregate across the
  // whole backscan. Appended last so positional initializers stay valid.
  obs::Registry* metrics = nullptr;
};

struct BackscanOutcome {
  net::Ipv6Address client;
  std::uint8_t vantage = 0;
  bool client_responded = false;
  net::Ipv6Address random_target;
  bool random_responded = false;
};

struct BackscanReport {
  std::vector<BackscanOutcome> outcomes;
  // Distinct /64s in which a random-IID probe answered (inferred aliased).
  std::vector<net::Ipv6Prefix> aliased_slash64s;
  // Distinct responsive random addresses (the paper's 4.5M).
  std::uint64_t responsive_random_addresses = 0;
  // Router/CPE interfaces discovered by the Yarrp sample.
  std::vector<net::Ipv6Address> trace_discovered;
  std::uint64_t clients_probed = 0;
  std::uint64_t clients_responded = 0;
  std::uint64_t random_probed = 0;
};

class Backscanner {
 public:
  Backscanner(netsim::DataPlane& plane, const BackscanConfig& config);

  // Feed one client sighting; probes fire logically at the end of the
  // sighting's ten-minute interval. `vantage_source` is the address the
  // probes originate from (the NTP server the client contacted).
  void observe(const ntp::Observation& obs,
               const net::Ipv6Address& vantage_source);

  // Finalizes and returns the accumulated report; the scanner is reusable
  // afterwards.
  BackscanReport finish();

 private:
  netsim::DataPlane* plane_;
  BackscanConfig config_;
  util::Rng rng_;

  // Dedup of (interval, client): mixed to a 64-bit key; at study scale a
  // collision loses one probe in ~2^64, which is noise.
  std::unordered_set<std::uint64_t> probed_keys_;

  BackscanReport report_;
  std::unordered_set<net::Ipv6Prefix> aliased_;
  std::unordered_set<net::Ipv6Address> responsive_random_;
  std::unordered_set<net::Ipv6Address> trace_found_;
  obs::Counter metric_clients_probed_;
  obs::Counter metric_clients_responded_;
  obs::Counter metric_random_probed_;
  obs::Counter metric_alias_verdicts_;
  obs::Counter metric_traces_;
};

}  // namespace v6::scan
