file(REMOVE_RECURSE
  "libv6_proto.a"
)
