// Keyed pseudo-random permutation over [0, n) via a Feistel network with
// cycle-walking.
//
// The world model needs *invertible* stateless mappings: customer sites are
// assigned prefix slots that rotate over time (slot = perm_g(site)), and the
// data plane must answer "which site owns this slot in generation g?"
// without materializing per-generation tables (slot -> perm_g^{-1}(slot)).
#pragma once

#include <cstdint>

namespace v6::sim {

class FeistelPermutation {
 public:
  // Permutes [0, domain_size). domain_size must be >= 1. The permutation is
  // determined entirely by (domain_size, key).
  FeistelPermutation(std::uint64_t domain_size, std::uint64_t key) noexcept;

  std::uint64_t domain_size() const noexcept { return domain_size_; }

  // x must be < domain_size.
  std::uint64_t apply(std::uint64_t x) const noexcept;
  // Inverse: invert(apply(x)) == x.
  std::uint64_t invert(std::uint64_t y) const noexcept;

 private:
  std::uint64_t round_function(std::uint64_t half, int round) const noexcept;
  std::uint64_t encrypt_once(std::uint64_t x) const noexcept;
  std::uint64_t decrypt_once(std::uint64_t y) const noexcept;

  std::uint64_t domain_size_;
  std::uint64_t key_;
  int half_bits_;          // each Feistel half is this wide
  std::uint64_t half_mask_;
};

}  // namespace v6::sim
