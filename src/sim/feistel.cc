#include "sim/feistel.h"

#include "kernels/batch.h"

namespace v6::sim {

void FeistelPermutation::apply_batch(const std::uint64_t* in, std::size_t n,
                                     std::uint64_t* out) const {
  kernels::feistel_apply_batch(spec_, in, n, out);
}

void FeistelPermutation::invert_batch(const std::uint64_t* in, std::size_t n,
                                      std::uint64_t* out) const {
  kernels::feistel_invert_batch(spec_, in, n, out);
}

}  // namespace v6::sim
