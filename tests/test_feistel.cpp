#include "sim/feistel.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace v6::sim {
namespace {

TEST(Feistel, IsBijectiveOnSmallDomain) {
  const FeistelPermutation perm(100, 42);
  std::vector<bool> hit(100, false);
  for (std::uint64_t x = 0; x < 100; ++x) {
    const auto y = perm.apply(x);
    ASSERT_LT(y, 100u);
    ASSERT_FALSE(hit[y]) << "collision at " << x;
    hit[y] = true;
  }
}

TEST(Feistel, InvertUndoesApply) {
  const FeistelPermutation perm(1 << 20, 0xabcdef);
  for (std::uint64_t x = 0; x < 5000; ++x) {
    EXPECT_EQ(perm.invert(perm.apply(x)), x);
  }
}

TEST(Feistel, ApplyUndoesInvert) {
  const FeistelPermutation perm(777, 3);
  for (std::uint64_t y = 0; y < 777; ++y) {
    EXPECT_EQ(perm.apply(perm.invert(y)), y);
  }
}

TEST(Feistel, DifferentKeysDifferentPermutations) {
  const FeistelPermutation a(1000, 1), b(1000, 2);
  int same = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    if (a.apply(x) == b.apply(x)) ++same;
  }
  EXPECT_LT(same, 20);
}

TEST(Feistel, DomainOfOne) {
  const FeistelPermutation perm(1, 9);
  EXPECT_EQ(perm.apply(0), 0u);
  EXPECT_EQ(perm.invert(0), 0u);
}

TEST(Feistel, ZeroDomainTreatedAsOne) {
  const FeistelPermutation perm(0, 9);
  EXPECT_EQ(perm.domain_size(), 1u);
  EXPECT_EQ(perm.apply(0), 0u);
}

TEST(Feistel, ScattersConsecutiveInputs) {
  const FeistelPermutation perm(1 << 16, 0x5eed);
  // Consecutive site indices must not map to consecutive slots.
  int adjacent = 0;
  std::uint64_t prev = perm.apply(0);
  for (std::uint64_t x = 1; x < 1000; ++x) {
    const auto y = perm.apply(x);
    if (y == prev + 1 || prev == y + 1) ++adjacent;
    prev = y;
  }
  EXPECT_LT(adjacent, 10);
}

class FeistelBijection
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(FeistelBijection, FullDomainRoundTrip) {
  const auto [domain, key] = GetParam();
  const FeistelPermutation perm(domain, key);
  std::vector<bool> hit(domain, false);
  for (std::uint64_t x = 0; x < domain; ++x) {
    const auto y = perm.apply(x);
    ASSERT_LT(y, domain);
    ASSERT_FALSE(hit[y]);
    hit[y] = true;
    ASSERT_EQ(perm.invert(y), x);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndKeys, FeistelBijection,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 3, 7, 16, 255, 256,
                                                        257, 1000, 4096),
                       ::testing::Values<std::uint64_t>(0, 1, 0xdeadbeef)));

}  // namespace
}  // namespace v6::sim
