// TieredCorpus: the out-of-core corpus engine.
//
// The paper's corpus is 7.9B unique addresses — far past what one
// in-memory table holds. This engine keeps collection's shard tables
// in memory but, at the deterministic merge barriers the chunk loop
// already runs, flushes their union as a sorted, delta-encoded run file
// (run_io.h) and resets the tables. Analysis, snapshot export, and
// compaction then see one ascending record stream via a k-way merge over
// the runs that aggregates duplicates exactly like Corpus::add_record
// (min first_seen, max last_seen, sum count, OR vantage_mask).
//
// Determinism contract (the headline invariant, asserted by tests): for a
// fixed spill budget and thread count the run files are bit-identical
// across repeats, and for ANY budget and ANY thread count the merged
// stream — hence save() bytes and every analysis float — is bit-identical
// to the unlimited-memory run. The pieces: spills happen only at merge
// barriers on the sim-time grid, each run is the canonicalized union of
// ALL shards (thread-count-independent content), and the merge's
// aggregation is field-for-field the in-memory fold.
//
// Concurrency: the read path (scan_segments, for_each_merged, contains)
// is const and opens its own file streams, so ParallelScan workers may
// call it concurrently — PROVIDED the lazy caches were warmed first:
// call segment_bounds() and merged_size() once from one thread (which is
// what analysis::make_source does). Mutations (spill, compact) must be
// externally serialized against everything else.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hitlist/corpus.h"
#include "hitlist/run_io.h"
#include "obs/metrics.h"
#include "util/sim_time.h"

namespace v6::hitlist {

struct SpillConfig {
  // Combined heap budget for the collector's shard tables; crossing it at
  // a merge barrier triggers a spill. 0 disables out-of-core collection
  // entirely (the knob Study/RunOptions expose).
  std::size_t memory_budget_bytes = 0;
  // Where run files live. Empty: a fresh directory under the system temp
  // root, removed with the TieredCorpus.
  std::string directory;
  // Sim-time spacing of spill-check barriers the collector adds when no
  // other grid (checkpointing, sampling) provides interior barriers.
  util::SimDuration barrier_interval = util::kDay;
  // Records per run-file block (delta-chain reset + seek granularity).
  // Tests shrink it to force multi-block runs on tiny corpora.
  std::uint32_t block_records = 4096;
  // Leave the run files on disk at destruction (debugging/bench probing).
  bool keep_files = false;

  bool active() const noexcept { return memory_budget_bytes > 0; }
};

// Lifetime totals; `disk_bytes` and the runs gauge describe the present.
struct TieredCorpusStats {
  std::uint64_t spills = 0;
  std::uint64_t spilled_records = 0;  // records written across all spills
  std::uint64_t compactions = 0;
  std::uint64_t disk_bytes = 0;  // current total size of live run files
};

class TieredCorpus {
 public:
  explicit TieredCorpus(SpillConfig config, obs::Registry* metrics = nullptr);
  ~TieredCorpus();

  TieredCorpus(const TieredCorpus&) = delete;
  TieredCorpus& operator=(const TieredCorpus&) = delete;

  const SpillConfig& config() const noexcept { return config_; }
  const TieredCorpusStats& stats() const noexcept { return stats_; }
  std::size_t run_count() const noexcept { return runs_.size(); }

  // Canonicalizes `shard` and writes it as one run (consuming it). Empty
  // shards are ignored. The written file is re-opened and validated
  // immediately, so a spill that would not round-trip throws here, not at
  // analysis time.
  void spill(Corpus&& shard);

  // Merges every live run into a single new run and deletes the old
  // files; the merged stream (and all reads) are unchanged.
  void compact();

  // Unique addresses across all runs (one counting merge; cached until
  // the next spill/compact).
  std::uint64_t merged_size() const;
  // As if `extra` (canonicalized, e.g. the live shard union) were a run.
  std::uint64_t merged_size_with(const Corpus& extra) const;
  // Total raw observations (each lands in exactly one run, so this is a
  // plain sum over run headers).
  std::uint64_t total_observations() const noexcept;

  // Streams the aggregated union of all runs in ascending address order.
  void for_each_merged(
      const std::function<void(const AddressRecord&)>& fn) const;

  // The contiguous scan domain handed to analysis::ParallelScan: sorted
  // unique block-start addresses across all runs. Segment i covers
  // addresses [bounds[i], bounds[i+1]) (the last one unbounded above);
  // bounds[0] is the global minimum record address, so concatenating
  // scan_segments over [0, size) in order replays for_each_merged
  // exactly.
  const std::vector<net::Ipv6Address>& segment_bounds() const;

  // Streams the merged records of segments [begin, end), in ascending
  // address order. Thread-safe against concurrent scan_segments calls
  // (each opens its own streams); see the caching caveat above.
  void scan_segments(std::size_t begin, std::size_t end,
                     const std::function<void(const AddressRecord&)>& fn)
      const;

  // Block form of scan_segments: the merged stream of segments
  // [begin, end) arrives as contiguous spans of up to kScanBlockRecords
  // records (the k-way merge emits one record at a time, so records are
  // staged in a scan-local buffer — the span is only valid inside the
  // callback). Concatenating the blocks replays scan_segments exactly;
  // block boundaries carry no meaning.
  static constexpr std::size_t kScanBlockRecords = 4096;
  void scan_segment_blocks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::span<const AddressRecord>)>& fn) const;

  // Point lookup across all runs (aggregating duplicates). Decodes one
  // block per run — meant for tests and spot checks, not hot loops.
  std::optional<AddressRecord> find(const net::Ipv6Address& address) const;
  bool contains(const net::Ipv6Address& address) const {
    return find(address).has_value();
  }

  // Materializes the merged stream as an in-memory Corpus (ascending
  // insertion order — already canonical).
  Corpus collapse() const;

  // Writes the merged stream as a corpus snapshot (corpus_io v2),
  // byte-identical to save_corpus() of the equivalent canonicalized
  // in-memory corpus. Returns bytes written.
  std::size_t save(std::ostream& out) const;

 private:
  struct Run {
    std::string path;
    std::uint64_t records = 0;
    std::uint64_t observations = 0;
    std::uint64_t bytes = 0;
    std::vector<RunBlockInfo> blocks;
  };

  // Ascending streams over every run, each starting at the first record
  // >= lo (or the run's start). The ifstreams land in `files` so they
  // outlive the returned cursors.
  std::vector<RecordStream> open_streams(
      const net::Ipv6Address* lo,
      std::vector<std::unique_ptr<std::ifstream>>& files,
      std::vector<std::unique_ptr<RunReader>>& readers) const;
  void invalidate_caches();
  void remove_run_files();

  SpillConfig config_;
  bool owns_directory_ = false;
  std::vector<Run> runs_;
  TieredCorpusStats stats_;
  mutable std::optional<std::uint64_t> merged_size_cache_;
  mutable std::optional<std::vector<net::Ipv6Address>> bounds_cache_;
  obs::Counter metric_spills_;
  obs::Counter metric_spilled_records_;
  obs::Counter metric_spill_bytes_;
  obs::Counter metric_compactions_;
  obs::Gauge metric_runs_;
};

}  // namespace v6::hitlist
