
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/backscanner.cc" "src/scan/CMakeFiles/v6_scan.dir/backscanner.cc.o" "gcc" "src/scan/CMakeFiles/v6_scan.dir/backscanner.cc.o.d"
  "/root/repo/src/scan/target_gen.cc" "src/scan/CMakeFiles/v6_scan.dir/target_gen.cc.o" "gcc" "src/scan/CMakeFiles/v6_scan.dir/target_gen.cc.o.d"
  "/root/repo/src/scan/tga.cc" "src/scan/CMakeFiles/v6_scan.dir/tga.cc.o" "gcc" "src/scan/CMakeFiles/v6_scan.dir/tga.cc.o.d"
  "/root/repo/src/scan/yarrp.cc" "src/scan/CMakeFiles/v6_scan.dir/yarrp.cc.o" "gcc" "src/scan/CMakeFiles/v6_scan.dir/yarrp.cc.o.d"
  "/root/repo/src/scan/zmap6.cc" "src/scan/CMakeFiles/v6_scan.dir/zmap6.cc.o" "gcc" "src/scan/CMakeFiles/v6_scan.dir/zmap6.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/v6_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/v6_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/v6_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/v6_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/v6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
