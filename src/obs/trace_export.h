// Chrome trace-event export: Tracer spans + timeline windows rendered in
// the Trace Event Format that chrome://tracing and Perfetto load.
//
// Mapping:
//   * every SpanRecord becomes a B/E duration pair on tid 1, emitted via a
//     parent-stack walk over the spans in recorded order so the pairs nest
//     exactly as the tracer recorded them;
//   * every timeline WindowRecord becomes an X complete event on tid 2
//     (name = stage, dur = window length) plus one C counter event at the
//     window's close carrying the window's record/answer/fault-loss
//     throughput (summed over vantages);
//   * ts carries *simulated seconds* in the format's microsecond field —
//     the study clock is virtual, so the displayed unit is cosmetic and
//     small integers beat 10^6 scaling.
//
// Within each tid the emitted ts sequence is monotone non-decreasing
// (clamped where sim windows touch), which is what the format requires
// and what lint_trace_events() re-checks.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "obs/snapshot.h"
#include "obs/timeline.h"

namespace v6::obs {

// Byte-deterministic render of `snapshot.spans` + `timeline` as a JSON
// object {"displayTimeUnit", "traceEvents": [...]}. Either input may be
// empty. One event per line, so linters and diffs stay line-oriented.
std::string render_trace_events(const Snapshot& snapshot,
                                const Timeline& timeline);

// One process lane of a multi-worker trace: the lane's spans/windows get
// their own Perfetto pid (plus a process_name metadata event), so a
// cluster run loads as one lane per worker side by side.
struct TraceLane {
  std::uint32_t pid = 1;
  std::string name;    // process_name shown by the viewer
  Snapshot snapshot;   // spans -> tid 1 (samples ignored here)
  Timeline timeline;   // windows -> tid 2
};

// Byte-deterministic multi-lane render; lanes are emitted in the order
// given (callers sort by worker id for determinism).
std::string render_cluster_trace(const std::vector<TraceLane>& lanes);

// Validates a trace-event export: the whole text is valid JSON
// (lint_json), every event's ph/ts/tid parse, ts is monotone
// non-decreasing per (pid, tid) lane, and B/E events pair up (never
// unbalanced, all closed at the end). Events without an explicit pid
// count as pid 1. Returns nullopt on success, else a description.
std::optional<std::string> lint_trace_events(std::string_view text);

}  // namespace v6::obs
