#include "analysis/entropy_distribution.h"

#include "net/entropy.h"

namespace v6::analysis {

util::EmpiricalDistribution entropy_distribution(const hitlist::Corpus& c) {
  std::vector<double> samples;
  samples.reserve(c.size());
  c.for_each([&samples](const hitlist::AddressRecord& rec) {
    samples.push_back(net::iid_entropy(rec.address));
  });
  return util::EmpiricalDistribution(std::move(samples));
}

util::EmpiricalDistribution entropy_distribution(
    std::span<const net::Ipv6Address> addresses) {
  std::vector<double> samples;
  samples.reserve(addresses.size());
  for (const auto& a : addresses) samples.push_back(net::iid_entropy(a));
  return util::EmpiricalDistribution(std::move(samples));
}

util::EmpiricalDistribution intersection_entropy_distribution(
    const hitlist::Corpus& a, const hitlist::Corpus& b) {
  const hitlist::Corpus& small = a.size() <= b.size() ? a : b;
  const hitlist::Corpus& large = a.size() <= b.size() ? b : a;
  std::vector<double> samples;
  small.for_each([&](const hitlist::AddressRecord& rec) {
    if (large.find(rec.address) != nullptr) {
      samples.push_back(net::iid_entropy(rec.address));
    }
  });
  return util::EmpiricalDistribution(std::move(samples));
}

std::uint64_t intersection_size(const hitlist::Corpus& a,
                                const hitlist::Corpus& b) {
  const hitlist::Corpus& small = a.size() <= b.size() ? a : b;
  const hitlist::Corpus& large = a.size() <= b.size() ? b : a;
  std::uint64_t n = 0;
  small.for_each([&](const hitlist::AddressRecord& rec) {
    if (large.find(rec.address) != nullptr) ++n;
  });
  return n;
}

}  // namespace v6::analysis
