#include "analysis/scan_source.h"

#include "hitlist/tiered_corpus.h"

namespace v6::analysis {

ScanSource make_source(const hitlist::TieredCorpus& runs) {
  ScanSource src;
  // Both calls populate lazy caches inside `runs`; doing it here keeps
  // the concurrent visit() path read-only.
  src.span = runs.segment_bounds().size();
  src.records = runs.merged_size();
  src.visit = [&runs](std::size_t begin, std::size_t end,
                      const ScanSource::RecordFn& fn) {
    runs.scan_segments(begin, end, fn);
  };
  // No `contains`: a point probe costs a block decode per run. Callers
  // invert the membership scan instead (see summarize_dataset).
  return src;
}

}  // namespace v6::analysis
