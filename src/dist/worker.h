// The real-process worker: polls its mailbox for chunk leases, runs the
// vantage-subset collection through PassiveCollector's checkpoint
// machinery, uploads a durable V6CKPT01 artifact at every chunk
// boundary, and reports completion. A `kill -9` at any instant loses at
// most the chunks since the last upload — the coordinator's replacement
// lease replays from that artifact and the merged corpus stays
// bit-identical (the invariant PR 2 established per-process and the CI
// smoke job asserts across processes).
#pragma once

#include <cstdint>
#include <string>

#include "hitlist/passive_collector.h"
#include "netsim/data_plane.h"
#include "netsim/pool_dns.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::dist {

// Everything a node needs to run collection: the deterministic simulation
// inputs every process rebuilds identically from the shared study flags.
// Pointers are borrowed; the owner (the CLI's Study) must outlive the
// worker.
struct NodeEnv {
  const sim::World* world = nullptr;
  netsim::DataPlane* plane = nullptr;
  const netsim::PoolDns* dns = nullptr;
  // Base collector configuration (metrics/sampler are replaced by a
  // per-lease registry + sampler whose report is uploaded as a
  // kObsReport frame; the vantage filter and checkpoint interval come
  // from each lease).
  hitlist::CollectorConfig collector;
  util::SimTime start = 0;
  util::SimTime end = 0;
};

struct WorkerConfig {
  std::string dir;  // shared run directory
  std::uint32_t id = 0;
  // Artificial per-chunk delay: widens the window in which the CI smoke
  // job can land its `kill -9` mid-run. 0 in production.
  std::uint32_t chunk_delay_ms = 0;
  std::uint32_t poll_interval_ms = 25;
  // Give up when no shutdown arrives for this long (orphan protection).
  std::uint32_t max_idle_ms = 600000;
};

class Worker {
 public:
  Worker(const NodeEnv& env, const WorkerConfig& config);

  // Blocks: serves leases until a shutdown frame (normal exit) or the
  // idle deadline passes (throws std::runtime_error).
  void run();

 private:
  NodeEnv env_;
  WorkerConfig config_;
};

}  // namespace v6::dist
