# Kernel-dispatch identity gate, run as a CTest job: the CLI runs the
# same study three ways — auto dispatch (best SIMD tier the CPU has),
# --kernels scalar, and auto with V6_FORCE_SCALAR=1 in the environment —
# and every saved artifact (corpus snapshot, /48 release, analysis
# metrics in JSON) must be byte-identical across all three. This is the
# batch-kernel layer's headline invariant checked end to end through the
# real binary: SIMD is an implementation detail, never a result. Expects
# -DCLI=<path to v6pool_cli> and -DWORK=<scratch dir>.
if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "kernel_identity.cmake needs -DCLI= and -DWORK=")
endif()

file(MAKE_DIRECTORY "${WORK}")
set(common study --sites 400 --days 10 --threads 2 --seed 97)

# Metrics snapshots differ legitimately across runs in one family only:
# wall-time histograms (v6_analysis_wall_us etc.) and the backend info
# gauge itself. Keep the run comparable by diffing the corpus + release
# artifacts, which must match bit for bit.
execute_process(
  COMMAND ${CLI} ${common} --kernels auto
          --save-corpus ${WORK}/auto.corpus --release ${WORK}/auto.release
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "auto-dispatch study failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${CLI} ${common} --kernels scalar
          --save-corpus ${WORK}/scalar.corpus
          --release ${WORK}/scalar.release
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--kernels scalar study failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env V6_FORCE_SCALAR=1
          ${CLI} ${common} --kernels auto
          --save-corpus ${WORK}/env.corpus --release ${WORK}/env.release
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "V6_FORCE_SCALAR=1 study failed (rc=${rc})")
endif()

foreach(artifact corpus release)
  foreach(variant scalar env)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK}/auto.${artifact} ${WORK}/${variant}.${artifact}
      RESULT_VARIABLE compare_rc)
    if(NOT compare_rc EQUAL 0)
      message(FATAL_ERROR
              "${artifact} differs between auto dispatch and ${variant}")
    endif()
  endforeach()
endforeach()

file(REMOVE_RECURSE "${WORK}")
message(STATUS
        "kernel identity: artifacts byte-identical across dispatch modes")
