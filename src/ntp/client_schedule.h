// Deterministic NTP client poll schedules.
//
// Every pool-using device polls on an irregular cadence around its
// configured interval, gated by how often it is online. The schedule is a
// pure function of the device seed, so collection passes can re-enumerate
// it identically — the reproducibility backbone of the whole study.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/device.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace v6::ntp {

class ClientSchedule {
 public:
  ClientSchedule(const sim::Device& device, util::SimTime window_start,
                 util::SimTime window_end) noexcept;

  // Resumable position inside the enumeration. A value-type cursor makes
  // the schedule checkpointable: collection keeps one per device across
  // checkpoint epochs, so chunked enumeration yields the exact same poll
  // sequence as one uninterrupted sweep.
  struct Cursor {
    util::SimTime t = 0;
    std::uint64_t k = 0;
    bool initialized = false;
  };

  // Advances the cursor to the next poll that actually fires and returns
  // its instant, or nullopt once the window is exhausted. Polls while the
  // device is offline are skipped (the device simply doesn't ask for
  // time).
  std::optional<util::SimTime> next(Cursor& cursor) const noexcept;

  // Enumerates poll instants in [window_start, window_end); calls
  // `fn(SimTime)` for each.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    Cursor cursor;
    while (const auto t = next(cursor)) fn(*t);
  }

  // Number of polls that will fire (same enumeration, counted).
  std::uint64_t count() const noexcept;

 private:
  static double unit(std::uint64_t h) noexcept {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  const sim::Device* device_;
  util::SimTime start_;
  util::SimTime end_;
};

}  // namespace v6::ntp
