#include "util/sim_time.h"

namespace v6::util {

std::string format_duration(SimDuration d) {
  if (d < 0) return "-" + format_duration(-d);
  if (d < 2 * kMinute) return std::to_string(d) + "s";
  if (d < 2 * kHour) return std::to_string(d / kMinute) + "m";
  if (d < 2 * kDay) return std::to_string(d / kHour) + "h";
  if (d < 2 * kWeek) return std::to_string(d / kDay) + "d";
  return std::to_string(d / kWeek) + "w";
}

}  // namespace v6::util
