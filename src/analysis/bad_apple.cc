#include "analysis/bad_apple.h"

#include <unordered_map>
#include <unordered_set>

#include "net/entropy.h"
#include "net/eui64.h"

namespace v6::analysis {

BadAppleReport bad_apple_linkage(const hitlist::Corpus& corpus,
                                 const Eui64Tracker& tracker) {
  BadAppleReport report;

  // Index: /64 network half -> indices of the apples seen there.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_slash64;
  const auto tracks = tracker.tracks();
  for (std::uint32_t i = 0; i < tracks.size(); ++i) {
    for (const auto& point : tracker.timeline(tracks[i].mac)) {
      auto& apples = by_slash64[point.slash64_hi];
      if (apples.empty() || apples.back() != i) apples.push_back(i);
    }
  }

  // Join every corpus address against the tag index.
  std::vector<std::uint64_t> cotenant_addrs(tracks.size(), 0);
  std::vector<std::unordered_set<std::uint64_t>> cotenant_prefixes(
      tracks.size());
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    const auto it = by_slash64.find(rec.address.hi64());
    if (it == by_slash64.end()) return;
    if (net::looks_like_eui64(rec.address)) return;  // the apple itself
    ++report.linked_addresses;
    if (net::entropy_band(net::iid_entropy(rec.address)) ==
        net::EntropyBand::kHigh) {
      ++report.linked_privacy_addresses;
    }
    for (const auto apple : it->second) {
      ++cotenant_addrs[apple];
      cotenant_prefixes[apple].insert(rec.address.hi64());
    }
  });

  for (std::uint32_t i = 0; i < tracks.size(); ++i) {
    if (cotenant_addrs[i] > 0) ++report.apples_with_cotenants;
    if (cotenant_prefixes[i].size() >= 2) {
      ++report.households_stitched_across_prefixes;
    }
  }
  return report;
}

}  // namespace v6::analysis
