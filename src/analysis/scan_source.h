// ScanSource: the record stream abstraction that lets every analysis run
// unchanged over an in-memory Corpus or the out-of-core TieredCorpus.
//
// ParallelScan needs exactly three things from a corpus: a contiguous
// sharding domain [0, span), a way to visit the records of a sub-range in
// order, and (for Table 1's dataset comparison) an optional membership
// test. ScanSource type-erases those three.
//
// Visitation is block-oriented: visit_blocks() streams a sub-range as
// contiguous std::span<const AddressRecord> slices whose concatenation is
// the ascending record stream, so analyses hand whole blocks to the batch
// kernels (kernels/batch.h) instead of paying a type-erased callback per
// record. The per-record visit() remains as a thin adapter over it for
// out-of-tree callers.
//
// The bit-identity contract carries over: concatenating visit_blocks()
// over an ascending partition of [0, span) yields the records in
// ascending address order for both backends — a canonicalized Corpus
// because its record array is sorted, a TieredCorpus because the k-way
// merge emits sorted output — so a kernel that is merge-exact under
// ParallelScan cannot tell the backends apart. Block *boundaries* carry
// no meaning: only the concatenated stream is contractual, and kernels
// must be boundary-oblivious (asserted by tests over ragged block sizes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "hitlist/corpus.h"
#include "net/ipv6.h"

namespace v6::hitlist {
class TieredCorpus;
}  // namespace v6::hitlist

namespace v6::analysis {

struct ScanSource {
  using RecordFn = std::function<void(const hitlist::AddressRecord&)>;
  using BlockFn = std::function<void(std::span<const hitlist::AddressRecord>)>;

  // Sharding domain: ParallelScan partitions [0, span) into contiguous
  // ranges. Record positions for a Corpus, segment indices for runs.
  std::size_t span = 0;
  // Unique records a full visit sees (metrics / sizing, not control flow).
  std::uint64_t records = 0;
  // PRIMARY contract: streams the records of domain sub-range [begin, end)
  // as contiguous blocks, in order. Must be safe to call concurrently on
  // disjoint ranges. Spans are only valid for the duration of the
  // callback.
  std::function<void(std::size_t, std::size_t, const BlockFn&)> visit_blocks;
  // deprecated: block API — per-record adapter kept so existing callers
  // compile; new code consumes visit_blocks. Populated by finalize().
  std::function<void(std::size_t, std::size_t, const RecordFn&)> visit;
  // Optional membership probe. Null when point lookups are prohibitive
  // (the tiered engine pays a block decode per probe) — callers needing
  // membership against such a source invert the scan instead (see
  // summarize_dataset).
  std::function<bool(const net::Ipv6Address&)> contains;

  // Derives the per-record adapter from visit_blocks. Factories call this
  // once visit_blocks is set; hand-rolled sources that only define
  // visit_blocks can too.
  void finalize() {
    visit = [vb = visit_blocks](std::size_t begin, std::size_t end,
                                const RecordFn& fn) {
      vb(begin, end, [&fn](std::span<const hitlist::AddressRecord> block) {
        for (const auto& rec : block) fn(rec);
      });
    };
  }
};

// In-memory source. The corpus must outlive the source and stay
// unmutated while scans run. The whole record array is contiguous, so a
// sub-range arrives as exactly one block.
inline ScanSource make_source(const hitlist::Corpus& corpus) {
  ScanSource src;
  src.span = corpus.slot_span();
  src.records = corpus.size();
  src.visit_blocks = [&corpus](std::size_t begin, std::size_t end,
                               const ScanSource::BlockFn& fn) {
    corpus.for_each_block_in_slot_range(begin, end, fn);
  };
  src.contains = [&corpus](const net::Ipv6Address& address) {
    return corpus.find(address) != nullptr;
  };
  src.finalize();
  return src;
}

// Out-of-core source over the merged run stream. Warms the tiered
// corpus's lazy segment/size caches here, on the calling thread, so the
// returned visit_blocks() is safe for concurrent shard workers.
ScanSource make_source(const hitlist::TieredCorpus& runs);

}  // namespace v6::analysis
