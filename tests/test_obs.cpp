// The observability subsystem: the striped metrics registry, sim-time
// trace spans, the two exposition formats, the Prometheus linter — and the
// contract that wiring metrics through the whole study changes no result
// bit.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/study.h"
#include "hitlist/checkpoint_io.h"
#include "obs/exposition.h"

namespace v6::obs {
namespace {

// --- Registry --------------------------------------------------------------

TEST(MetricsRegistry, CountersFoldAcrossHandlesAndStripes) {
  Registry registry;
  auto a = registry.counter("demo_total", "A counter.");
  auto b = registry.counter("demo_total");  // same identity, same cells
  a.inc();
  a.inc(41);
  b.inc(8);
  EXPECT_TRUE(a.wired());
  EXPECT_EQ(registry.instrument_count(), 1u);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].name, "demo_total");
  EXPECT_EQ(snap.samples[0].help, "A counter.");
  EXPECT_EQ(snap.samples[0].type, MetricType::kCounter);
  EXPECT_EQ(snap.samples[0].counter_value, 50u);
  EXPECT_EQ(snap.counter_sum("demo_total"), 50u);
  EXPECT_EQ(snap.counter_sum("missing_total"), 0u);
}

TEST(MetricsRegistry, LabelsAreDistinctInstrumentsAndSumAsAFamily) {
  Registry registry;
  registry.counter("polls_total", "", {{"vantage", "0"}}).inc(3);
  registry.counter("polls_total", "", {{"vantage", "1"}}).inc(4);
  EXPECT_EQ(registry.instrument_count(), 2u);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 2u);
  EXPECT_EQ(snap.counter_sum("polls_total"), 7u);
  // find() only matches the unlabeled instance.
  EXPECT_EQ(snap.find("polls_total"), nullptr);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  EXPECT_FALSE(counter.wired());
  counter.inc();        // must not crash
  gauge.set(1.0);
  gauge.add(2.0);
  histogram.observe(3.0);
}

TEST(MetricsRegistry, TypeMismatchYieldsNoOpHandleNotACrash) {
  Registry registry;
  auto counter = registry.counter("clash");
  counter.inc(5);
  auto gauge = registry.gauge("clash");  // same name, wrong type
  EXPECT_FALSE(gauge.wired());
  gauge.set(99.0);  // swallowed

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].type, MetricType::kCounter);
  EXPECT_EQ(snap.samples[0].counter_value, 5u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  Registry registry;
  auto gauge = registry.gauge("ratio", "Answered share.");
  gauge.set(0.25);
  gauge.add(0.5);
  const auto snap = registry.snapshot();
  const auto* sample = snap.find("ratio");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->type, MetricType::kGauge);
  EXPECT_DOUBLE_EQ(sample->gauge_value, 0.75);
}

TEST(MetricsRegistry, HistogramBucketsAreInclusiveUpperEdges) {
  Registry registry;
  auto histogram =
      registry.histogram("latency_us", "", {100.0, 1000.0});
  histogram.observe(50.0);
  histogram.observe(100.0);   // le="100" is inclusive
  histogram.observe(500.0);
  histogram.observe(5000.0);  // past every edge: +Inf bucket

  const auto snap = registry.snapshot();
  const auto* sample = snap.find("latency_us");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->type, MetricType::kHistogram);
  const auto& h = sample->histogram;
  ASSERT_EQ(h.bounds, (std::vector<double>{100.0, 1000.0}));
  ASSERT_EQ(h.counts, (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 5650.0);
}

TEST(MetricsRegistry, HistogramBoundsMismatchYieldsNoOpHandle) {
  Registry registry;
  auto original = registry.histogram("latency_us", "", {100.0, 1000.0});
  original.observe(50.0);

  // Same identity, different bucket layout: the second registration gets
  // a no-op handle (same contract as a type clash) instead of silently
  // folding observations into the wrong buckets.
  auto clash = registry.histogram("latency_us", "", {5.0, 10.0});
  EXPECT_FALSE(clash.wired());
  clash.observe(7.0);  // swallowed

  // Bounds are compared after normalization: order and duplicates do not
  // constitute a mismatch.
  auto same = registry.histogram("latency_us", "", {1000.0, 100.0, 100.0});
  EXPECT_TRUE(same.wired());
  same.observe(500.0);

  const auto snap = registry.snapshot();
  const auto* sample = snap.find("latency_us");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->histogram.bounds, (std::vector<double>{100.0, 1000.0}));
  EXPECT_EQ(sample->histogram.count, 2u);
  EXPECT_DOUBLE_EQ(sample->histogram.sum, 550.0);
}

TEST(MetricsRegistry, SnapshotIsSortedByNameThenLabels) {
  Registry registry;
  // Register in anti-sorted order; the snapshot must not care.
  registry.counter("zz_total").inc();
  registry.counter("aa_total", "", {{"k", "b"}}).inc();
  registry.counter("aa_total", "", {{"k", "a"}}).inc();
  registry.gauge("mm").set(1);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  EXPECT_EQ(snap.samples[0].name, "aa_total");
  EXPECT_EQ(snap.samples[0].labels[0].second, "a");
  EXPECT_EQ(snap.samples[1].name, "aa_total");
  EXPECT_EQ(snap.samples[1].labels[0].second, "b");
  EXPECT_EQ(snap.samples[2].name, "mm");
  EXPECT_EQ(snap.samples[3].name, "zz_total");
}

// The TSan tier (ctest regex in CI) pins the registry's central claim:
// increments from many threads, racing registrations, and concurrent
// snapshots are all safe, and a post-join snapshot is exact.
TEST(MetricsRegistry, ConcurrentIncrementsWithLiveSnapshots) {
  Registry registry;
  constexpr unsigned kWriters = 8;
  constexpr std::uint64_t kIters = 40000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry] {
      // Registration itself races (same identity from every thread).
      auto counter = registry.counter("hammer_total");
      auto histogram = registry.histogram("hammer_us", "", {100.0});
      for (std::uint64_t i = 0; i < kIters; ++i) {
        counter.inc();
        if ((i & 1023u) == 0) histogram.observe(static_cast<double>(i));
      }
    });
  }
  // Torn-free live snapshots: totals only ever grow.
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const auto now = registry.snapshot().counter_sum("hammer_total");
    EXPECT_GE(now, last);
    last = now;
  }
  for (auto& t : writers) t.join();

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_sum("hammer_total"), kWriters * kIters);
  const auto* histogram = snap.find("hammer_us");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->histogram.count, kWriters * ((kIters + 1023) / 1024));
}

// --- Tracer ----------------------------------------------------------------

TEST(TraceSpans, NestUnderTheInnermostOpenSpan) {
  Tracer tracer;
  const auto outer = tracer.begin_span("outer", 10);
  const auto inner = tracer.begin_span("inner", 20);
  tracer.end_span(inner, 30);
  const auto sibling = tracer.begin_span("sibling", 40);
  tracer.end_span(sibling, 50);
  tracer.end_span(outer, 60);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].begin, 10);
  EXPECT_EQ(spans[0].end, 60);
  EXPECT_TRUE(spans[0].closed);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent, 0);
  EXPECT_EQ(spans[2].depth, 1u);
}

TEST(TraceSpans, EndingAnOuterSpanClosesDeeperOpenSpans) {
  Tracer tracer;
  const auto outer = tracer.begin_span("outer", 0);
  tracer.begin_span("leaked", 5);  // never explicitly ended
  tracer.end_span(outer, 100);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[1].closed);
  EXPECT_EQ(spans[1].end, 100);
  // The stack unwound: the next span is a fresh root.
  const auto next = tracer.begin_span("root2", 200);
  EXPECT_EQ(tracer.spans()[next].parent, -1);
}

TEST(TraceSpans, DeepNestingAutoClosesInOneSweep) {
  Tracer tracer;
  constexpr int kDepth = 200;
  std::vector<Tracer::SpanId> ids;
  for (int i = 0; i < kDepth; ++i) {
    ids.push_back(tracer.begin_span("level", i));
  }
  tracer.end_span(ids.front(), 1000);  // closes all 200 at once

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kDepth));
  for (int i = 0; i < kDepth; ++i) {
    EXPECT_TRUE(spans[i].closed);
    EXPECT_EQ(spans[i].end, 1000);
    EXPECT_EQ(spans[i].depth, static_cast<std::size_t>(i));
    EXPECT_EQ(spans[i].parent, i - 1);
  }
  const auto fresh = tracer.begin_span("fresh", 2000);
  EXPECT_EQ(tracer.spans()[fresh].parent, -1);
}

TEST(TraceSpans, ConcurrentBeginEndKeepsEverySpanWellFormed) {
  // Spans mark stage boundaries, but nothing stops two stages ending on
  // different threads; the Tracer's mutex must keep the records
  // structurally sound (no lost spans, every one closed, parents valid).
  // The TSan tier re-runs this shape under -fsanitize=thread.
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const auto id =
            tracer.begin_span("worker", t * kSpansPerThread + i);
        tracer.end_span(id, t * kSpansPerThread + i + 1);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  for (const auto& span : spans) {
    EXPECT_TRUE(span.closed);
    // (begin <= end is NOT asserted: a cross-thread auto-close can stamp
    // an earlier sim time; the trace exporter clamps for that reason.)
    EXPECT_GE(span.parent, -1);
    EXPECT_LT(span.parent, static_cast<std::int32_t>(spans.size()));
  }
}

// --- Exposition ------------------------------------------------------------

Snapshot demo_snapshot() {
  Registry registry;
  auto polls = registry.counter("demo_polls_total", "Polls issued.");
  polls.inc(41);
  polls.inc();
  registry.gauge("demo_answer_ratio", "Answered share.").set(0.5);
  auto latency =
      registry.histogram("demo_latency_us", "Stage latency.", {100.0, 1000.0});
  latency.observe(50.0);
  latency.observe(500.0);
  latency.observe(5000.0);
  registry.counter("demo_vantage_polls_total", "Per-vantage polls.",
                   {{"vantage", "0"}})
      .inc(7);
  const auto span = registry.tracer().begin_span("study.run", 0);
  registry.tracer().end_span(span, 100);
  return registry.snapshot();
}

TEST(Exposition, PrometheusGolden) {
  const std::string text =
      render(demo_snapshot(), ExpositionFormat::kPrometheus);
  EXPECT_EQ(text,
            "# HELP demo_answer_ratio Answered share.\n"
            "# TYPE demo_answer_ratio gauge\n"
            "demo_answer_ratio 0.5\n"
            "# HELP demo_latency_us Stage latency.\n"
            "# TYPE demo_latency_us histogram\n"
            "demo_latency_us_bucket{le=\"100\"} 1\n"
            "demo_latency_us_bucket{le=\"1000\"} 2\n"
            "demo_latency_us_bucket{le=\"+Inf\"} 3\n"
            "demo_latency_us_sum 5550\n"
            "demo_latency_us_count 3\n"
            "# HELP demo_polls_total Polls issued.\n"
            "# TYPE demo_polls_total counter\n"
            "demo_polls_total 42\n"
            "# HELP demo_vantage_polls_total Per-vantage polls.\n"
            "# TYPE demo_vantage_polls_total counter\n"
            "demo_vantage_polls_total{vantage=\"0\"} 7\n");
  EXPECT_EQ(lint_prometheus(text), std::nullopt);
}

TEST(Exposition, JsonGolden) {
  Registry registry;
  registry.counter("demo_polls_total", "", {{"vantage", "0"}}).inc(7);
  const auto span = registry.tracer().begin_span("study.run", 0);
  registry.tracer().end_span(span, 100);

  const std::string text =
      render(registry.snapshot(), ExpositionFormat::kJson);
  EXPECT_EQ(text,
            "{\n"
            "  \"metrics\": [\n"
            "    {\"name\": \"demo_polls_total\", \"type\": \"counter\", "
            "\"labels\": {\"vantage\":\"0\"}, \"value\": 7}\n"
            "  ],\n"
            "  \"spans\": [\n"
            "    {\"name\": \"study.run\", \"begin\": 0, \"end\": 100, "
            "\"parent\": -1, \"depth\": 0, \"closed\": true}\n"
            "  ]\n"
            "}\n");
}

TEST(Exposition, RegistrationOrderDoesNotChangeTheBytes) {
  Registry forward;
  forward.counter("a_total").inc(1);
  forward.gauge("b").set(2);
  Registry reverse;
  reverse.gauge("b").set(2);
  reverse.counter("a_total").inc(1);
  EXPECT_EQ(render(forward.snapshot(), ExpositionFormat::kPrometheus),
            render(reverse.snapshot(), ExpositionFormat::kPrometheus));
  EXPECT_EQ(render(forward.snapshot(), ExpositionFormat::kJson),
            render(reverse.snapshot(), ExpositionFormat::kJson));
}

TEST(Exposition, ParseFormatAndSuffix) {
  EXPECT_EQ(parse_format("prom"), ExpositionFormat::kPrometheus);
  EXPECT_EQ(parse_format("prometheus"), ExpositionFormat::kPrometheus);
  EXPECT_EQ(parse_format("text"), ExpositionFormat::kPrometheus);
  EXPECT_EQ(parse_format("json"), ExpositionFormat::kJson);
  EXPECT_EQ(parse_format("yaml"), std::nullopt);
  EXPECT_EQ(format_suffix(ExpositionFormat::kPrometheus), "prom");
  EXPECT_EQ(format_suffix(ExpositionFormat::kJson), "json");
}

TEST(ExpositionLint, AcceptsWellFormedText) {
  EXPECT_EQ(lint_prometheus(""), std::nullopt);
  EXPECT_EQ(lint_prometheus("# a free-form comment\nup 1\n"), std::nullopt);
  EXPECT_EQ(lint_prometheus("metric{a=\"x\",b=\"y\"} 2.5 1690000000\n"),
            std::nullopt);
  EXPECT_EQ(lint_prometheus("weird NaN\nmore +Inf\n"), std::nullopt);
}

TEST(ExpositionLint, RejectsMalformedLinesWithLineNumbers) {
  EXPECT_EQ(lint_prometheus("1bad 3\n"),
            std::optional<std::string>("line 1: invalid metric name"));
  EXPECT_EQ(lint_prometheus("ok 1\nnovalue\n"),
            std::optional<std::string>("line 2: missing value"));
  EXPECT_EQ(lint_prometheus("a abc\n"),
            std::optional<std::string>("line 1: invalid sample value"));
  EXPECT_EQ(lint_prometheus("a 1 12x\n"),
            std::optional<std::string>("line 1: invalid timestamp"));
  EXPECT_EQ(lint_prometheus("a{x=\"1 2\n"),
            std::optional<std::string>("line 1: unterminated label value"));
  EXPECT_EQ(lint_prometheus("a{1x=\"v\"} 2\n"),
            std::optional<std::string>("line 1: invalid label name"));
  EXPECT_EQ(
      lint_prometheus("# TYPE a counter\n# TYPE a counter\n"),
      std::optional<std::string>("line 2: duplicate TYPE for family"));
  EXPECT_EQ(
      lint_prometheus("a 1\n# TYPE a counter\n"),
      std::optional<std::string>("line 2: TYPE after samples of its family"));
  EXPECT_EQ(lint_prometheus("# TYPE h histogram\nh_bucket 3\n"),
            std::optional<std::string>(
                "line 2: histogram _bucket sample without le label"));
  EXPECT_EQ(lint_prometheus("# TYPE a flavor\n"),
            std::optional<std::string>("line 1: unknown TYPE kind"));
}

TEST(ExpositionLint, LabelValueEscapesAreValidated) {
  // The three legal escapes pass...
  EXPECT_EQ(lint_prometheus("a{x=\"q\\\\b\\\"c\\nd\"} 1\n"), std::nullopt);
  // ...anything else after a backslash is rejected...
  EXPECT_EQ(lint_prometheus("a{x=\"bad\\tescape\"} 1\n"),
            std::optional<std::string>(
                "line 1: invalid escape in label value"));
  // ...as is a backslash with nothing after it...
  EXPECT_EQ(lint_prometheus("a{x=\"dangling\\\n"),
            std::optional<std::string>(
                "line 1: dangling escape in label value"));
  // ...and a backslash that swallows the closing quote reads as an
  // escaped quote, leaving the value unterminated.
  EXPECT_EQ(lint_prometheus("a{x=\"dangling\\\"} 1\n"),
            std::optional<std::string>(
                "line 1: unterminated label value"));
}

TEST(ExpositionLint, DuplicateSeriesAreRejected) {
  EXPECT_EQ(lint_prometheus("a{x=\"1\"} 1\na{x=\"1\"} 2\n"),
            std::optional<std::string>(
                "line 2: duplicate series (same name and labels)"));
  // Label order does not disguise a duplicate.
  EXPECT_EQ(lint_prometheus("a{x=\"1\",y=\"2\"} 1\na{y=\"2\",x=\"1\"} 2\n"),
            std::optional<std::string>(
                "line 2: duplicate series (same name and labels)"));
  // Different label values are distinct series.
  EXPECT_EQ(lint_prometheus("a{x=\"1\"} 1\na{x=\"2\"} 2\n"), std::nullopt);
}

TEST(ExpositionLint, HistogramConsistencyAccepted) {
  // A well-formed histogram group: cumulative buckets, +Inf present and
  // equal to _count; per-kind groups are independent.
  EXPECT_EQ(lint_prometheus("# TYPE h histogram\n"
                            "h_bucket{le=\"1\"} 2\n"
                            "h_bucket{le=\"+Inf\"} 5\n"
                            "h_sum 9.5\n"
                            "h_count 5\n"),
            std::nullopt);
  EXPECT_EQ(lint_prometheus("# TYPE h histogram\n"
                            "h_bucket{kind=\"a\",le=\"1\"} 2\n"
                            "h_bucket{kind=\"a\",le=\"+Inf\"} 2\n"
                            "h_count{kind=\"a\"} 2\n"
                            "h_bucket{kind=\"b\",le=\"1\"} 0\n"
                            "h_bucket{kind=\"b\",le=\"+Inf\"} 1\n"
                            "h_count{kind=\"b\"} 1\n"),
            std::nullopt);
}

TEST(ExpositionLint, HistogramConsistencyViolationsRejected) {
  // Cumulative bucket counts must never decrease in le order.
  EXPECT_EQ(lint_prometheus("# TYPE h histogram\n"
                            "h_bucket{le=\"1\"} 5\n"
                            "h_bucket{le=\"+Inf\"} 3\n"
                            "h_count 3\n"),
            std::optional<std::string>(
                "line 3: histogram _bucket counts decrease in le order"));
  // A bucketed group must close with +Inf...
  EXPECT_EQ(lint_prometheus("# TYPE h histogram\n"
                            "h_bucket{le=\"1\"} 2\n"
                            "h_count 2\n"),
            std::optional<std::string>("histogram h{}: missing +Inf bucket"));
  // ...must expose _count...
  EXPECT_EQ(lint_prometheus("# TYPE h histogram\n"
                            "h_bucket{le=\"+Inf\"} 2\n"),
            std::optional<std::string>("histogram h{}: missing _count sample"));
  // ...and the +Inf bucket must equal _count (every observation lands in
  // some bucket).
  EXPECT_EQ(lint_prometheus("# TYPE h histogram\n"
                            "h_bucket{le=\"+Inf\"} 2\n"
                            "h_count 3\n"),
            std::optional<std::string>(
                "histogram h{}: +Inf bucket does not equal _count"));
}

TEST(Exposition, LabelValuesAreEscapedAndRoundTripTheLinter) {
  Registry registry;
  registry.counter("esc_total", "", {{"path", "a\\b\"c\nd"}}).inc(1);
  const std::string text =
      render(registry.snapshot(), ExpositionFormat::kPrometheus);
  EXPECT_NE(text.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
  EXPECT_EQ(lint_prometheus(text), std::nullopt);
}

// --- Study integration -----------------------------------------------------

core::StudyConfig tiny_study(std::uint64_t seed) {
  core::StudyConfig config;
  config.world.seed = seed;
  config.world.total_sites = 260;
  config.world.study_duration = 12 * util::kDay;
  config.pool_capture_share = 1.0;
  config.backscan_start = 14 * util::kDay;
  config.backscan_duration = 2 * util::kDay;
  config.hitlist_campaign.start = util::kDay;
  config.hitlist_campaign.duration = 8 * util::kDay;
  config.caida_campaign.start = util::kDay;
  config.caida_campaign.duration = 6 * util::kDay;
  config.caida_campaign.slash48_fraction = 0.005;
  return config;
}

void expect_identical_corpora(const hitlist::Corpus& a,
                              const hitlist::Corpus& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.total_observations(), b.total_observations());
  a.for_each([&](const hitlist::AddressRecord& rec) {
    const auto* other = b.find(rec.address);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->first_seen, rec.first_seen);
    EXPECT_EQ(other->last_seen, rec.last_seen);
    EXPECT_EQ(other->count, rec.count);
    EXPECT_EQ(other->vantage_mask, rec.vantage_mask);
  });
}

// One full instrumented study shared by the read-only assertions below.
class StudyMetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    study_ = new core::Study(tiny_study(5));
    study_->run();
  }
  static void TearDownTestSuite() { delete study_; }
  static core::Study* study_;
};

core::Study* StudyMetricsTest::study_ = nullptr;

TEST_F(StudyMetricsTest, SnapshotCoversEveryInstrumentedLayer) {
  const auto& r = study_->results();
  const auto& m = r.metrics;
  ASSERT_FALSE(m.samples.empty());

  // Collector counters: the backscan week runs its own collector into the
  // same registry, so the family totals are at least the main window's.
  EXPECT_GE(m.counter_sum("v6_collector_polls_total"), r.polls_attempted);
  EXPECT_GE(m.counter_sum("v6_collector_answered_total"), r.polls_answered);
  EXPECT_GE(m.counter_sum("v6_collector_records_total"), r.ntp.size());
  EXPECT_EQ(m.counter_sum("v6_collector_vantage_polls_total"),
            m.counter_sum("v6_collector_polls_total"));

  // Backscanner counters mirror its report exactly.
  EXPECT_EQ(m.counter_sum("v6_backscan_clients_probed_total"),
            r.backscan.clients_probed);
  EXPECT_EQ(m.counter_sum("v6_backscan_clients_responded_total"),
            r.backscan.clients_responded);
  EXPECT_EQ(m.counter_sum("v6_backscan_random_probed_total"),
            r.backscan.random_probed);

  // Active scanners and the analysis engine reported in.
  EXPECT_GT(m.counter_sum("v6_scan_probes_total"), 0u);
  std::uint64_t stage_records = 0;
  for (const auto& stage : r.analysis.stage_stats) stage_records += stage.records;
  EXPECT_EQ(m.counter_sum("v6_analysis_records_total"), stage_records);

  // Per-vantage health gauges, one per vantage.
  std::size_t ratio_gauges = 0;
  for (const auto& sample : m.samples) {
    if (sample.name == "v6_vantage_answer_ratio") ++ratio_gauges;
  }
  EXPECT_EQ(ratio_gauges, r.vantage_health.size());
}

TEST_F(StudyMetricsTest, SpansCoverTheFourStagesUnderOneRoot) {
  const auto& spans = study_->results().metrics.spans;
  ASSERT_GE(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "study.run");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_TRUE(spans[0].closed);
  for (const char* name : {"study.collect", "study.campaigns",
                           "study.backscan", "study.analysis"}) {
    bool found = false;
    for (const auto& span : spans) {
      if (span.name != name) continue;
      found = true;
      EXPECT_EQ(span.parent, 0) << name;
      EXPECT_EQ(span.depth, 1u) << name;
      EXPECT_TRUE(span.closed) << name;
      EXPECT_LE(span.begin, span.end) << name;
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST_F(StudyMetricsTest, RenderedSnapshotPassesTheLinterInBothFormats) {
  const auto& m = study_->results().metrics;
  const auto prom = render(m, ExpositionFormat::kPrometheus);
  EXPECT_EQ(lint_prometheus(prom), std::nullopt)
      << prom.substr(0, 400);
  const auto json = render(m, ExpositionFormat::kJson);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

TEST_F(StudyMetricsTest, MetricsOffIsBitIdenticalAndUnsampled) {
  auto config = tiny_study(5);
  config.metrics = false;
  core::Study off(config);
  const auto& ro = off.run();
  const auto& r = study_->results();

  expect_identical_corpora(r.ntp, ro.ntp);
  expect_identical_corpora(r.backscan_week, ro.backscan_week);
  EXPECT_EQ(r.polls_attempted, ro.polls_attempted);
  EXPECT_EQ(r.polls_answered, ro.polls_answered);
  EXPECT_EQ(r.hitlist.corpus.size(), ro.hitlist.corpus.size());
  EXPECT_EQ(r.caida.corpus.size(), ro.caida.corpus.size());
  EXPECT_EQ(r.backscan.clients_probed, ro.backscan.clients_probed);
  EXPECT_EQ(r.backscan.clients_responded, ro.backscan.clients_responded);
  EXPECT_EQ(r.backscan.random_probed, ro.backscan.random_probed);
  EXPECT_EQ(r.alias_check.aliased_known_to_hitlist,
            ro.alias_check.aliased_known_to_hitlist);
  EXPECT_EQ(r.alias_check.aliased_new, ro.alias_check.aliased_new);
  ASSERT_EQ(r.analysis.table1.size(), ro.analysis.table1.size());
  for (std::size_t i = 0; i < r.analysis.table1.size(); ++i) {
    EXPECT_EQ(r.analysis.table1[i].addresses, ro.analysis.table1[i].addresses);
    EXPECT_EQ(r.analysis.table1[i].asns, ro.analysis.table1[i].asns);
    EXPECT_EQ(r.analysis.table1[i].slash48s, ro.analysis.table1[i].slash48s);
  }
  EXPECT_DOUBLE_EQ(r.analysis.address_lifetimes.fraction_once,
                   ro.analysis.address_lifetimes.fraction_once);

  // With metrics off nothing registers, but spans still mark the stages.
  EXPECT_TRUE(ro.metrics.samples.empty());
  EXPECT_FALSE(ro.metrics.spans.empty());
}

TEST(StudyRunApi, RunMatchesTheLegacyPerStageShims) {
  const auto config = tiny_study(9);
  core::Study via_run(config);
  const auto& ra = via_run.run();

  core::Study via_shims(config);
  via_shims.collect();
  via_shims.run_campaigns();
  via_shims.run_backscan();
  via_shims.run_analysis();
  // The shims never snapshot; a final run() re-runs nothing and fills it.
  EXPECT_TRUE(via_shims.results().metrics.samples.empty());
  const auto before = via_shims.results().ntp.size();
  const auto& rb = via_shims.run();
  EXPECT_EQ(rb.ntp.size(), before);
  EXPECT_FALSE(rb.metrics.samples.empty());

  expect_identical_corpora(ra.ntp, rb.ntp);
  EXPECT_EQ(ra.hitlist.corpus.size(), rb.hitlist.corpus.size());
  EXPECT_EQ(ra.caida.corpus.size(), rb.caida.corpus.size());
  EXPECT_EQ(ra.backscan.clients_probed, rb.backscan.clients_probed);
  EXPECT_EQ(ra.backscan.clients_responded, rb.backscan.clients_responded);
  ASSERT_EQ(ra.analysis.stage_stats.size(), rb.analysis.stage_stats.size());
  for (std::size_t i = 0; i < ra.analysis.stage_stats.size(); ++i) {
    EXPECT_EQ(ra.analysis.stage_stats[i].records,
              rb.analysis.stage_stats[i].records);
  }
  EXPECT_EQ(ra.metrics.counter_sum("v6_collector_polls_total"),
            rb.metrics.counter_sum("v6_collector_polls_total"));
  EXPECT_EQ(ra.metrics.counter_sum("v6_scan_probes_total"),
            rb.metrics.counter_sum("v6_scan_probes_total"));
}

TEST(StudyRunApi, StageTogglesRunOnlyTheSelectedStages) {
  core::Study study(tiny_study(13));
  core::RunOptions options;
  options.campaigns = options.backscan = options.analysis = false;
  const auto& r = study.run(std::move(options));
  EXPECT_GT(r.ntp.size(), 0u);
  EXPECT_EQ(r.hitlist.corpus.size(), 0u);
  EXPECT_EQ(r.backscan.clients_probed, 0u);
  EXPECT_TRUE(r.analysis.table1.empty());
  // Collect-only: the collector counters equal the study's own tallies.
  EXPECT_EQ(r.metrics.counter_sum("v6_collector_polls_total"),
            r.polls_attempted);
  EXPECT_EQ(r.metrics.counter_sum("v6_collector_answered_total"),
            r.polls_answered);
  EXPECT_EQ(r.metrics.counter_sum("v6_collector_records_total"),
            r.ntp.size());
  // Skipped stages record no span.
  ASSERT_EQ(r.metrics.spans.size(), 2u);
  EXPECT_EQ(r.metrics.spans[0].name, "study.run");
  EXPECT_EQ(r.metrics.spans[1].name, "study.collect");
}

TEST(StudyRunApi, ResumeViaRunOptionsIsBitIdentical) {
  auto config = tiny_study(21);
  config.collector.threads = 2;
  config.collector.checkpoint_interval = 5 * util::kDay;

  std::vector<std::string> snapshots;
  core::Study reference(config);
  core::RunOptions ref_options;
  ref_options.campaigns = ref_options.backscan = ref_options.analysis = false;
  ref_options.checkpoint_sink = [&](const hitlist::CheckpointState& state,
                                    const hitlist::Corpus& corpus) {
    std::stringstream out;
    hitlist::save_checkpoint(out, state, corpus);
    snapshots.push_back(out.str());
  };
  const auto& ref = reference.run(std::move(ref_options));
  ASSERT_EQ(snapshots.size(), 2u);  // boundaries at day 5 and 10
  EXPECT_EQ(ref.metrics.counter_sum("v6_collector_checkpoints_total"), 2u);

  for (auto& snapshot : snapshots) {
    std::stringstream in(snapshot);
    core::Study resumed(config);
    core::RunOptions options;
    options.campaigns = options.backscan = options.analysis = false;
    options.resume_from = hitlist::load_checkpoint(in);
    const auto& r = resumed.run(std::move(options));
    expect_identical_corpora(ref.ntp, r.ntp);
    EXPECT_EQ(r.polls_attempted, ref.polls_attempted);
    EXPECT_EQ(r.polls_answered, ref.polls_answered);
  }
}

}  // namespace
}  // namespace v6::obs
