file(REMOVE_RECURSE
  "../bench/bench_geo_linkage"
  "../bench/bench_geo_linkage.pdb"
  "CMakeFiles/bench_geo_linkage.dir/bench_geo_linkage.cpp.o"
  "CMakeFiles/bench_geo_linkage.dir/bench_geo_linkage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
