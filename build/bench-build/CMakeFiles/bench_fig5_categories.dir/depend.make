# Empty dependencies file for bench_fig5_categories.
# This may be replaced when dependencies are built.
