// String helpers shared across modules: splitting, joining, hex codecs,
// and human-readable number formatting for bench output.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace v6::util {

// Splits on a single character; keeps empty fields ("a::b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view s, char sep);

std::string join(std::span<const std::string> parts, std::string_view sep);

std::string to_lower(std::string_view s);

// Parses a hexadecimal string (no 0x prefix, 1..16 digits) to a u64.
std::optional<std::uint64_t> parse_hex_u64(std::string_view s);

// Parses a decimal string to a u64; rejects empty/overflow/non-digits.
std::optional<std::uint64_t> parse_dec_u64(std::string_view s);

// Lower-case hex encoding of a byte span ("deadbeef").
std::string hex_encode(std::span<const std::uint8_t> bytes);

// Formats with thousands separators: 7914066999 -> "7,914,066,999".
std::string with_commas(std::uint64_t value);

// Compact human form: 7914066999 -> "7.91B", 21409629 -> "21.4M".
std::string human_count(std::uint64_t value);

// Fixed-precision percentage: (1,3) -> "33.33%".
std::string percent(double fraction, int decimals = 2);

}  // namespace v6::util
