
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/buffer.cc" "src/proto/CMakeFiles/v6_proto.dir/buffer.cc.o" "gcc" "src/proto/CMakeFiles/v6_proto.dir/buffer.cc.o.d"
  "/root/repo/src/proto/checksum.cc" "src/proto/CMakeFiles/v6_proto.dir/checksum.cc.o" "gcc" "src/proto/CMakeFiles/v6_proto.dir/checksum.cc.o.d"
  "/root/repo/src/proto/datagram.cc" "src/proto/CMakeFiles/v6_proto.dir/datagram.cc.o" "gcc" "src/proto/CMakeFiles/v6_proto.dir/datagram.cc.o.d"
  "/root/repo/src/proto/icmpv6.cc" "src/proto/CMakeFiles/v6_proto.dir/icmpv6.cc.o" "gcc" "src/proto/CMakeFiles/v6_proto.dir/icmpv6.cc.o.d"
  "/root/repo/src/proto/ipv6_header.cc" "src/proto/CMakeFiles/v6_proto.dir/ipv6_header.cc.o" "gcc" "src/proto/CMakeFiles/v6_proto.dir/ipv6_header.cc.o.d"
  "/root/repo/src/proto/ntp_packet.cc" "src/proto/CMakeFiles/v6_proto.dir/ntp_packet.cc.o" "gcc" "src/proto/CMakeFiles/v6_proto.dir/ntp_packet.cc.o.d"
  "/root/repo/src/proto/tcp.cc" "src/proto/CMakeFiles/v6_proto.dir/tcp.cc.o" "gcc" "src/proto/CMakeFiles/v6_proto.dir/tcp.cc.o.d"
  "/root/repo/src/proto/udp.cc" "src/proto/CMakeFiles/v6_proto.dir/udp.cc.o" "gcc" "src/proto/CMakeFiles/v6_proto.dir/udp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/v6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
