# Empty compiler generated dependencies file for v6_geo.
# This may be replaced when dependencies are built.
