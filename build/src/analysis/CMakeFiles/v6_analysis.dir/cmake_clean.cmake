file(REMOVE_RECURSE
  "CMakeFiles/v6_analysis.dir/address_categories.cc.o"
  "CMakeFiles/v6_analysis.dir/address_categories.cc.o.d"
  "CMakeFiles/v6_analysis.dir/as_entropy.cc.o"
  "CMakeFiles/v6_analysis.dir/as_entropy.cc.o.d"
  "CMakeFiles/v6_analysis.dir/bad_apple.cc.o"
  "CMakeFiles/v6_analysis.dir/bad_apple.cc.o.d"
  "CMakeFiles/v6_analysis.dir/dataset_compare.cc.o"
  "CMakeFiles/v6_analysis.dir/dataset_compare.cc.o.d"
  "CMakeFiles/v6_analysis.dir/entropy_distribution.cc.o"
  "CMakeFiles/v6_analysis.dir/entropy_distribution.cc.o.d"
  "CMakeFiles/v6_analysis.dir/eui64_tracking.cc.o"
  "CMakeFiles/v6_analysis.dir/eui64_tracking.cc.o.d"
  "CMakeFiles/v6_analysis.dir/geolink.cc.o"
  "CMakeFiles/v6_analysis.dir/geolink.cc.o.d"
  "CMakeFiles/v6_analysis.dir/lifetimes.cc.o"
  "CMakeFiles/v6_analysis.dir/lifetimes.cc.o.d"
  "CMakeFiles/v6_analysis.dir/manufacturers.cc.o"
  "CMakeFiles/v6_analysis.dir/manufacturers.cc.o.d"
  "CMakeFiles/v6_analysis.dir/outage.cc.o"
  "CMakeFiles/v6_analysis.dir/outage.cc.o.d"
  "CMakeFiles/v6_analysis.dir/rotation.cc.o"
  "CMakeFiles/v6_analysis.dir/rotation.cc.o.d"
  "libv6_analysis.a"
  "libv6_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
