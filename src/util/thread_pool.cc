#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace v6::util {

unsigned ThreadPool::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to run
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

void run_sharded(
    std::size_t items, unsigned shards,
    const std::function<void(unsigned, std::size_t, std::size_t)>& fn) {
  if (shards <= 1) {
    fn(0, 0, items);
    return;
  }
  ThreadPool pool(shards);
  for (unsigned s = 0; s < shards; ++s) {
    const std::size_t begin = items * s / shards;
    const std::size_t end = items * (s + 1) / shards;
    pool.submit([&fn, s, begin, end] { fn(s, begin, end); });
  }
  pool.wait_idle();
}

}  // namespace v6::util
