// Crash/resume robustness: a collection run killed at any checkpoint
// boundary — under an active vantage fault schedule, with client retries
// and health-aware pool steering — must resume into a corpus bit-identical
// to the uninterrupted run.
#include "hitlist/checkpoint_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/study.h"
#include "hitlist/corpus_io.h"
#include "hitlist/passive_collector.h"
#include "hitlist/tiered_corpus.h"
#include "netsim/fault_schedule.h"
#include "ntp/client_schedule.h"
#include "sim/world.h"

namespace v6::hitlist {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 77;
    config.total_sites = 300;
    config.study_duration = 14 * util::kDay;
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }
  static sim::World* world_;
};

sim::World* CheckpointTest::world_ = nullptr;

void expect_identical_corpora(const Corpus& a, const Corpus& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.total_observations(), b.total_observations());
  a.for_each([&](const AddressRecord& rec) {
    const auto* other = b.find(rec.address);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->first_seen, rec.first_seen);
    EXPECT_EQ(other->last_seen, rec.last_seen);
    EXPECT_EQ(other->count, rec.count);
    EXPECT_EQ(other->vantage_mask, rec.vantage_mask);
  });
}

void expect_identical_health(const std::vector<VantageHealthStats>& a,
                             const std::vector<VantageHealthStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].polls, b[i].polls) << "vantage " << i;
    EXPECT_EQ(a[i].answered, b[i].answered) << "vantage " << i;
    EXPECT_EQ(a[i].lost_to_fault, b[i].lost_to_fault) << "vantage " << i;
    EXPECT_EQ(a[i].retries, b[i].retries) << "vantage " << i;
    EXPECT_EQ(a[i].steered_polls, b[i].steered_polls) << "vantage " << i;
  }
}

// A fault plan busy enough that several vantages crash inside the
// collection window used by these tests.
netsim::FaultPlanConfig busy_plan() {
  netsim::FaultPlanConfig plan;
  plan.seed = 5;
  plan.outages_per_vantage = 1.5;
  plan.mean_outage = 8 * util::kHour;
  plan.min_outage = util::kHour;
  plan.flaps_per_vantage = 2.0;
  plan.slow_start = 20 * util::kMinute;
  return plan;
}

CollectorConfig checkpointing_config() {
  CollectorConfig config{false, 0.01, 3};
  config.threads = 3;
  config.retry_limit = 2;
  config.retry_backoff = 8;
  config.checkpoint_interval = util::kDay;
  return config;
}

// The acceptance scenario: kill collection at an arbitrary checkpoint
// boundary while vantages are crashing and flapping, resume from the
// serialized snapshot, and demand the final corpus match the uninterrupted
// run field for field.
TEST_F(CheckpointTest, ResumeFromAnyCheckpointIsBitIdentical) {
  const util::SimTime start = 0;
  const util::SimTime end = 6 * util::kDay;
  const auto config = checkpointing_config();
  const netsim::FaultSchedule faults(world_->vantages(), busy_plan(), start,
                                     end);

  // Uninterrupted reference run, capturing every checkpoint through the
  // full serialize/deserialize path (what a crashed run would read back).
  std::vector<std::string> snapshots;
  Corpus reference(1 << 12);
  std::uint64_t reference_polls = 0;
  std::uint64_t reference_answered = 0;
  std::vector<VantageHealthStats> reference_health;
  {
    netsim::DataPlane plane(*world_, {config.loss_rate, 1});
    plane.set_faults(&faults);
    netsim::PoolDns dns(*world_);
    dns.set_health_monitor(&faults, 15 * util::kMinute);
    PassiveCollector collector(*world_, plane, dns, config);
    collector.run(reference, start, end, {},
                  [&](const CheckpointState& state, const Corpus& corpus) {
                    std::stringstream out;
                    save_checkpoint(out, state, corpus);
                    snapshots.push_back(out.str());
                  });
    reference_polls = collector.polls_attempted();
    reference_answered = collector.polls_answered();
    reference_health = collector.vantage_health();
  }
  ASSERT_EQ(snapshots.size(), 5u);  // boundaries at day 1..5
  ASSERT_GT(reference.size(), 500u);

  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "crash at checkpoint " << i);
    std::stringstream in(snapshots[i]);
    auto checkpoint = load_checkpoint(in);
    EXPECT_EQ(checkpoint.state.window_start, start);
    EXPECT_EQ(checkpoint.state.window_end, end);
    EXPECT_EQ(checkpoint.state.resume_from,
              start + static_cast<util::SimTime>(i + 1) * util::kDay);

    // A "rebooted" process: fresh plane, DNS, collector — only the world,
    // the config, and the checkpoint file survive the crash.
    netsim::DataPlane plane(*world_, {config.loss_rate, 1});
    plane.set_faults(&faults);
    netsim::PoolDns dns(*world_);
    dns.set_health_monitor(&faults, 15 * util::kMinute);
    PassiveCollector collector(*world_, plane, dns, config);
    collector.resume(checkpoint.corpus, checkpoint.state);

    expect_identical_corpora(reference, checkpoint.corpus);
    EXPECT_EQ(collector.polls_attempted(), reference_polls);
    EXPECT_EQ(collector.polls_answered(), reference_answered);
    expect_identical_health(collector.vantage_health(), reference_health);
  }
}

TEST_F(CheckpointTest, ThrowingSinkSimulatesCrashMidRun) {
  const util::SimTime end = 4 * util::kDay;
  const auto config = checkpointing_config();
  const netsim::FaultSchedule faults(world_->vantages(), busy_plan(), 0, end);

  const auto make_plane = [&] {
    netsim::DataPlane plane(*world_, {config.loss_rate, 1});
    plane.set_faults(&faults);
    return plane;
  };

  Corpus reference(1 << 12);
  {
    auto plane = make_plane();
    netsim::PoolDns dns(*world_);
    PassiveCollector collector(*world_, plane, dns, config);
    collector.run(reference, 0, end);
  }

  // The process "dies" while handling the second checkpoint: the write
  // completed but nothing after it ran.
  std::string survived;
  struct Crash {};
  {
    auto plane = make_plane();
    netsim::PoolDns dns(*world_);
    PassiveCollector collector(*world_, plane, dns, config);
    Corpus partial(1 << 12);
    int seen = 0;
    EXPECT_THROW(
        collector.run(partial, 0, end, {},
                      [&](const CheckpointState& state, const Corpus& corpus) {
                        std::stringstream out;
                        save_checkpoint(out, state, corpus);
                        survived = out.str();
                        if (++seen == 2) throw Crash{};
                      }),
        Crash);
  }

  std::stringstream in(survived);
  auto checkpoint = load_checkpoint(in);
  auto plane = make_plane();
  netsim::PoolDns dns(*world_);
  PassiveCollector collector(*world_, plane, dns, config);
  collector.resume(checkpoint.corpus, checkpoint.state);
  expect_identical_corpora(reference, checkpoint.corpus);
}

TEST_F(CheckpointTest, CheckpointIntervalDoesNotChangeTheCorpus) {
  // The interval only decides where a crash can resume; the collected
  // corpus must be untouched by it (and by having a sink at all).
  const util::SimTime end = 3 * util::kDay;
  auto config = checkpointing_config();

  const auto run_with_interval = [&](util::SimDuration interval) {
    config.checkpoint_interval = interval;
    netsim::DataPlane plane(*world_, {config.loss_rate, 1});
    netsim::PoolDns dns(*world_);
    PassiveCollector collector(*world_, plane, dns, config);
    Corpus corpus(1 << 12);
    collector.run(corpus, 0, end, {},
                  [](const CheckpointState&, const Corpus&) {});
    return corpus;
  };

  const auto none = run_with_interval(0);
  const auto hourly = run_with_interval(util::kHour);
  const auto odd = run_with_interval(7777);
  expect_identical_corpora(none, hourly);
  expect_identical_corpora(none, odd);
}

TEST_F(CheckpointTest, FastAndWirePathsAgreeUnderFaultPlan) {
  // Fault decisions are pure hashes, never RNG draws, so at zero loss the
  // wire-fidelity path stays in lockstep with the fast path even while
  // vantages crash and recover around the polls.
  const util::SimTime end = 2 * util::kDay;
  const netsim::FaultSchedule faults(world_->vantages(), busy_plan(), 0, end);

  const auto collect_path = [&](bool wire) {
    CollectorConfig config{wire, 0.0, 3};
    config.retry_limit = 2;
    netsim::DataPlane plane(*world_, {0.0, 1});
    plane.set_faults(&faults);
    netsim::PoolDns dns(*world_);
    dns.set_health_monitor(&faults, 15 * util::kMinute);
    PassiveCollector collector(*world_, plane, dns, config);
    Corpus corpus(1 << 12);
    collector.run(corpus, 0, end);
    return corpus;
  };

  expect_identical_corpora(collect_path(false), collect_path(true));
}

TEST_F(CheckpointTest, FaultPlanDegradesVantagesAndRetriesRecover) {
  const util::SimTime end = 4 * util::kDay;
  const netsim::FaultSchedule faults(world_->vantages(), busy_plan(), 0, end);

  CollectorConfig config{false, 0.0, 3};
  config.retry_limit = 2;
  netsim::DataPlane plane(*world_, {0.0, 1});
  plane.set_faults(&faults);
  netsim::PoolDns dns(*world_);
  PassiveCollector collector(*world_, plane, dns, config);
  Corpus corpus(1 << 12);
  collector.run(corpus, 0, end);

  const auto& health = collector.vantage_health();
  ASSERT_EQ(health.size(), world_->vantages().size());
  std::uint64_t total_polls = 0;
  std::uint64_t total_faulted = 0;
  std::uint64_t total_retries = 0;
  bool some_vantage_degraded = false;
  for (const auto& h : health) {
    total_polls += h.polls;
    total_faulted += h.lost_to_fault;
    total_retries += h.retries;
    EXPECT_LE(h.answered, h.polls);
    if (h.lost_to_fault > 0 && h.answered < h.polls) {
      some_vantage_degraded = true;
    }
  }
  EXPECT_EQ(total_polls, collector.polls_attempted());
  EXPECT_GT(total_faulted, 0u);
  EXPECT_GT(total_retries, 0u);
  EXPECT_TRUE(some_vantage_degraded);
  // At zero transit loss only the fault plan withholds answers, and
  // retries claw back a chunk of them: the corpus still lands close to a
  // fault-free run.
  EXPECT_LT(collector.polls_answered(), collector.polls_attempted());
}

TEST_F(CheckpointTest, StudyResumeMatchesUninterruptedCollect) {
  core::StudyConfig config;
  config.world.seed = 9;
  config.world.total_sites = 250;
  config.world.study_duration = 6 * util::kDay;
  config.collector.loss_rate = 0.0;
  config.collector.threads = 2;
  config.collector.retry_limit = 1;
  config.collector.checkpoint_interval = 2 * util::kDay;
  config.pool_capture_share = 1.0;
  config.faults = busy_plan();

  std::vector<std::string> snapshots;
  core::Study reference(config);
  reference.collect([&](const CheckpointState& state, const Corpus& corpus) {
    std::stringstream out;
    save_checkpoint(out, state, corpus);
    snapshots.push_back(out.str());
  });
  ASSERT_EQ(snapshots.size(), 2u);  // boundaries at day 2 and 4
  ASSERT_NE(reference.faults(), nullptr);

  for (auto& snapshot : snapshots) {
    std::stringstream in(snapshot);
    // A fresh Study reconstructs the identical world, plane, pool and
    // fault plan from config alone, then resumes from the checkpoint.
    core::Study resumed(config);
    resumed.resume_collect(load_checkpoint(in));
    expect_identical_corpora(reference.results().ntp, resumed.results().ntp);
    EXPECT_EQ(resumed.results().polls_attempted,
              reference.results().polls_attempted);
    EXPECT_EQ(resumed.results().polls_answered,
              reference.results().polls_answered);
    expect_identical_health(resumed.results().vantage_health,
                            reference.results().vantage_health);
  }
}

TEST_F(CheckpointTest, SpilledResumeHonorsBudgetAndStaysBitIdentical) {
  // RunOptions::resume_from composed with an active spill budget: the
  // checkpointed snapshot seeds the TieredCorpus as its first run, the
  // tail spills through the same machinery as a budgeted run(), and the
  // saved bytes match both the in-memory resume and the uninterrupted
  // run — the StudyConfig::spill contract, end to end.
  core::StudyConfig config;
  config.world.seed = 9;
  config.world.total_sites = 250;
  config.world.study_duration = 6 * util::kDay;
  config.collector.loss_rate = 0.0;
  config.collector.threads = 2;
  config.collector.retry_limit = 1;
  config.collector.checkpoint_interval = 2 * util::kDay;
  config.pool_capture_share = 1.0;
  config.faults = busy_plan();

  std::vector<std::string> snapshots;
  std::string reference_bytes;
  {
    core::Study reference(config);
    core::RunOptions options;
    options.campaigns = options.backscan = options.analysis = false;
    options.checkpoint_sink = [&](const CheckpointState& state,
                                  const Corpus& corpus) {
      std::stringstream out;
      save_checkpoint(out, state, corpus);
      snapshots.push_back(out.str());
    };
    reference.run(std::move(options));
    std::stringstream out(std::ios::in | std::ios::out | std::ios::binary);
    reference.save_ntp(out);
    reference_bytes = out.str();
  }
  ASSERT_EQ(snapshots.size(), 2u);  // boundaries at day 2 and 4
  ASSERT_FALSE(reference_bytes.empty());

  auto spilled_config = config;
  spilled_config.spill.memory_budget_bytes = 1;  // spill at every barrier

  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "resume from checkpoint " << i);

    const auto resume_bytes = [&](const core::StudyConfig& with) {
      core::Study resumed(with);
      core::RunOptions options;
      options.campaigns = options.backscan = options.analysis = false;
      std::stringstream in(snapshots[i]);
      options.resume_from = load_checkpoint(in);
      const auto& r = resumed.run(std::move(options));
      if (with.spill.active()) {
        // The budget was honored: the resume ran out of core, seeding
        // the snapshot as the first run and spilling the tail.
        EXPECT_NE(r.ntp_runs, nullptr);
        if (r.ntp_runs != nullptr) {
          EXPECT_GE(r.ntp_runs->stats().spills, 1u);
          EXPECT_GE(r.ntp_runs->run_count(), 2u);
        }
      } else {
        EXPECT_EQ(r.ntp_runs, nullptr);
      }
      std::stringstream out(std::ios::in | std::ios::out | std::ios::binary);
      resumed.save_ntp(out);
      return out.str();
    };

    EXPECT_EQ(resume_bytes(config), reference_bytes) << "in-memory resume";
    EXPECT_EQ(resume_bytes(spilled_config), reference_bytes)
        << "spilled resume";
  }
}

TEST_F(CheckpointTest, ThrowingSinkMidResumeHonorsTheContract) {
  // The sink-failure contract resume() documents (worker-upload sinks
  // throw on coordinator disconnect): after a mid-resume sink throw the
  // caller's corpus is EXACTLY as passed in, and both recovery paths —
  // retry the same resume verbatim, or reload the last checkpoint the
  // sink durably accepted — reproduce the uninterrupted run bit-exactly.
  const util::SimTime end = 6 * util::kDay;
  const auto config = checkpointing_config();
  const netsim::FaultSchedule faults(world_->vantages(), busy_plan(), 0, end);

  const auto with_collector = [&](auto fn) {
    netsim::DataPlane plane(*world_, {config.loss_rate, 1});
    plane.set_faults(&faults);
    netsim::PoolDns dns(*world_);
    dns.set_health_monitor(&faults, 15 * util::kMinute);
    PassiveCollector collector(*world_, plane, dns, config);
    fn(collector);
  };

  std::vector<std::string> snapshots;
  Corpus reference(1 << 12);
  with_collector([&](PassiveCollector& collector) {
    collector.run(reference, 0, end, {},
                  [&](const CheckpointState& state, const Corpus& corpus) {
                    std::stringstream out;
                    save_checkpoint(out, state, corpus);
                    snapshots.push_back(out.str());
                  });
  });
  ASSERT_EQ(snapshots.size(), 5u);  // boundaries at day 1..5

  // "Crash" at the day-2 checkpoint, resume — and have the resumed run's
  // sink die mid-upload at its second checkpoint (day 4). The first
  // upload (day 3) completed, so it is the last durable checkpoint.
  struct Crash {};
  std::string last_durable;
  std::stringstream in0(snapshots[1]);
  auto resumed = load_checkpoint(in0);
  with_collector([&](PassiveCollector& collector) {
    int uploads = 0;
    EXPECT_THROW(
        collector.resume(resumed.corpus, resumed.state, {},
                         [&](const CheckpointState& state,
                             const Corpus& corpus) {
                           if (++uploads == 2) throw Crash{};  // died mid-post
                           std::stringstream out;
                           save_checkpoint(out, state, corpus);
                           last_durable = out.str();
                         }),
        Crash);
    EXPECT_EQ(uploads, 2);
  });
  ASSERT_FALSE(last_durable.empty());

  // (1) The corpus is exactly what the caller passed in: the tail lived
  // in shard-private tables that were never merged.
  {
    std::stringstream in(snapshots[1]);
    const auto pristine = load_checkpoint(in);
    expect_identical_corpora(resumed.corpus, pristine.corpus);
  }

  // (2) Retrying the same resume verbatim completes the run bit-exactly.
  with_collector([&](PassiveCollector& collector) {
    collector.resume(resumed.corpus, resumed.state);
  });
  expect_identical_corpora(reference, resumed.corpus);

  // (3) So does reloading the last durable checkpoint instead.
  {
    std::stringstream in(last_durable);
    auto durable = load_checkpoint(in);
    EXPECT_EQ(durable.state.resume_from, 3 * util::kDay);
    with_collector([&](PassiveCollector& collector) {
      collector.resume(durable.corpus, durable.state);
    });
    expect_identical_corpora(reference, durable.corpus);
  }

  // Tiered variant: on a sink throw `runs` keeps whatever spilled, so
  // recovery is a fresh TieredCorpus resumed from the last durable
  // checkpoint — which must reproduce the reference merged stream.
  SpillConfig spill;
  spill.memory_budget_bytes = 1;
  {
    TieredCorpus runs(spill);
    std::stringstream in(snapshots[1]);
    auto ck = load_checkpoint(in);
    with_collector([&](PassiveCollector& collector) {
      int uploads = 0;
      EXPECT_THROW(
          collector.resume(runs, std::move(ck.corpus), ck.state, {},
                           [&](const CheckpointState&, const Corpus&) {
                             if (++uploads == 2) throw Crash{};
                           }),
          Crash);
    });
    EXPECT_GE(runs.run_count(), 1u);  // at least the seeded snapshot
  }
  {
    TieredCorpus runs(spill);
    std::stringstream in(last_durable);
    auto ck = load_checkpoint(in);
    with_collector([&](PassiveCollector& collector) {
      collector.resume(runs, std::move(ck.corpus), ck.state);
    });
    EXPECT_GE(runs.stats().spills, 1u);
    std::stringstream got(std::ios::in | std::ios::out | std::ios::binary);
    std::stringstream want(std::ios::in | std::ios::out | std::ios::binary);
    runs.save(got);
    save_corpus(want, reference);
    EXPECT_EQ(got.str(), want.str());
  }
}

TEST_F(CheckpointTest, ClientScheduleCursorMatchesForEach) {
  // The cursor is the checkpointing primitive: enumerating a schedule in
  // arbitrary chunks must visit the exact poll instants of one sweep.
  int tested = 0;
  for (const auto& dev : world_->devices()) {
    if (!dev.ntp.uses_pool) continue;
    const ntp::ClientSchedule schedule(dev, 0, 10 * util::kDay);
    std::vector<util::SimTime> swept;
    schedule.for_each([&](util::SimTime t) { swept.push_back(t); });

    std::vector<util::SimTime> chunked;
    ntp::ClientSchedule::Cursor cursor;
    std::optional<util::SimTime> pending;
    for (util::SimTime boundary = 977; boundary < 11 * util::kDay;
         boundary += 977 + boundary % 3517) {
      while (true) {
        auto t = pending ? pending : schedule.next(cursor);
        pending.reset();
        if (!t) break;
        if (*t >= boundary) {
          pending = t;  // belongs to a later chunk
          break;
        }
        chunked.push_back(*t);
      }
    }
    while (auto t = pending ? pending : schedule.next(cursor)) {
      pending.reset();
      chunked.push_back(*t);
    }
    EXPECT_EQ(chunked, swept) << "device " << dev.id;
    if (++tested == 25) break;
  }
  ASSERT_EQ(tested, 25);
}

TEST(CheckpointIo, RoundTripsStateAndCorpus) {
  CheckpointState state;
  state.window_start = 100;
  state.window_end = 7'000'000;
  state.resume_from = 86'500;
  state.polls_attempted = 123'456;
  state.polls_answered = 120'000;
  state.vantage_health.resize(3);
  state.vantage_health[0] = {50, 40, 5, 3, 2};
  state.vantage_health[2] = {7, 7, 0, 0, 1};

  Corpus corpus;
  corpus.add(net::Ipv6Address::from_u64(0xfeed, 0xface), 5000, 4);
  corpus.add(net::Ipv6Address::from_u64(0xfeed, 0xface), 6000, 9);
  corpus.add(net::Ipv6Address::from_u64(0xdead, 0xbeef), 5500, 1);

  std::stringstream stream;
  const auto bytes = save_checkpoint(stream, state, corpus);
  EXPECT_EQ(bytes, stream.str().size());

  const auto loaded = load_checkpoint(stream);
  EXPECT_EQ(loaded.state.window_start, state.window_start);
  EXPECT_EQ(loaded.state.window_end, state.window_end);
  EXPECT_EQ(loaded.state.resume_from, state.resume_from);
  EXPECT_EQ(loaded.state.polls_attempted, state.polls_attempted);
  EXPECT_EQ(loaded.state.polls_answered, state.polls_answered);
  expect_identical_health(loaded.state.vantage_health, state.vantage_health);
  expect_identical_corpora(loaded.corpus, corpus);
}

TEST(CheckpointIo, RejectsTruncationAtEveryByteOffset) {
  CheckpointState state;
  state.window_end = 1000;
  state.resume_from = 500;
  state.vantage_health.resize(2);
  state.vantage_health[1] = {10, 9, 1, 1, 0};
  Corpus corpus;
  corpus.add(net::Ipv6Address::from_u64(1, 2), 50, 0);

  std::stringstream stream;
  save_checkpoint(stream, state, corpus);
  const std::string full = stream.str();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(load_checkpoint(truncated), std::runtime_error)
        << "prefix of " << cut << " bytes loaded";
  }
  std::stringstream intact(full);
  EXPECT_NO_THROW(load_checkpoint(intact));
}

TEST(CheckpointIo, RejectsCorruptionInEitherSection) {
  CheckpointState state;
  state.window_end = 1000;
  state.polls_attempted = 42;
  state.vantage_health.resize(1);
  Corpus corpus;
  corpus.add(net::Ipv6Address::from_u64(3, 4), 60, 2);

  std::stringstream stream;
  save_checkpoint(stream, state, corpus);
  const std::string full = stream.str();
  for (std::size_t offset = 0; offset < full.size(); ++offset) {
    std::string bad = full;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x10);
    std::stringstream in(bad);
    EXPECT_THROW(load_checkpoint(in), std::runtime_error)
        << "flip at byte " << offset << " loaded";
  }
}

TEST(CheckpointIo, RejectsHostileVantageCountBeforeAllocating) {
  // Mirror of the corpus loader's guarantee: a hostile vantage count must
  // fail against the actual payload size, not size an allocation.
  CheckpointState state;
  state.vantage_health.resize(1);
  Corpus corpus;
  corpus.add(net::Ipv6Address::from_u64(3, 4), 60, 2);
  std::stringstream stream;
  save_checkpoint(stream, state, corpus);
  std::string bytes = stream.str();
  // The vantage count is the u32 at offset 8 + 5*8 = 48.
  bytes[48] = '\xff';
  bytes[49] = '\xff';
  bytes[50] = '\xff';
  bytes[51] = '\xff';
  std::stringstream in(bytes);
  EXPECT_THROW(load_checkpoint(in), std::runtime_error);
}

}  // namespace
}  // namespace v6::hitlist
