#include "net/eui64.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace v6::net {
namespace {

TEST(Eui64, KnownVector) {
  // RFC 4291 Appendix A example: MAC 34-56-78-9A-BC-DE ->
  // IID 3656:78ff:fe9a:bcde (U/L bit of 0x34 flips to 0x36).
  const auto mac = *MacAddress::parse("34:56:78:9a:bc:de");
  EXPECT_EQ(eui64_iid_from_mac(mac), 0x365678fffe9abcdeULL);
}

TEST(Eui64, LooksLikeDetectsMarker) {
  EXPECT_TRUE(looks_like_eui64(0x365678fffe9abcdeULL));
  EXPECT_FALSE(looks_like_eui64(0x365678fffd9abcdeULL));
  EXPECT_FALSE(looks_like_eui64(0ULL));
  // The marker must be at bytes 3-4 of the IID, nowhere else.
  EXPECT_FALSE(looks_like_eui64(0xfffe000000000000ULL));
}

TEST(Eui64, DecodeRecoversOriginalMac) {
  const auto mac = *MacAddress::parse("34:56:78:9a:bc:de");
  const auto decoded = mac_from_eui64(eui64_iid_from_mac(mac));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, mac);
}

TEST(Eui64, DecodeRejectsNonEui64) {
  EXPECT_FALSE(mac_from_eui64(0x1234567890abcdefULL));
}

TEST(Eui64, AddressLevelHelpers) {
  const auto mac = *MacAddress::parse("00:11:22:33:44:55");
  const auto address = eui64_address(0x20010db8aaaa0001ULL, mac);
  EXPECT_EQ(address.hi64(), 0x20010db8aaaa0001ULL);
  EXPECT_TRUE(looks_like_eui64(address));
  const auto decoded = mac_from_eui64(address);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, mac);
}

TEST(Eui64, LocalBitMacsRoundTripToo) {
  // A locally-administered MAC flips to universal inside the IID and back.
  const auto mac = *MacAddress::parse("02:00:00:00:00:01");
  const auto iid = eui64_iid_from_mac(mac);
  EXPECT_EQ((iid >> 56) & 0x02, 0u);  // U/L cleared in IID
  EXPECT_EQ(*mac_from_eui64(iid), mac);
}

class Eui64RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Eui64RoundTrip, EncodeDecodeIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    const auto mac = MacAddress::from_u64(rng.next() & 0xffffffffffffULL);
    const auto iid = eui64_iid_from_mac(mac);
    EXPECT_TRUE(looks_like_eui64(iid));
    const auto decoded = mac_from_eui64(iid);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(*decoded, mac);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Eui64RoundTrip, ::testing::Values(1, 2, 3));

TEST(Eui64, RandomIidsMatchMarkerAtExpectedRate) {
  // The paper's false-positive argument: a random IID looks like EUI-64
  // with probability 2^-16.
  util::Rng rng(99);
  int matches = 0;
  constexpr int kDraws = 1 << 22;  // 4M draws -> expect ~64
  for (int i = 0; i < kDraws; ++i) {
    if (looks_like_eui64(rng.next())) ++matches;
  }
  EXPECT_GT(matches, 20);
  EXPECT_LT(matches, 160);
}

}  // namespace
}  // namespace v6::net
