#include "obs/cluster.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/exposition.h"
#include "obs/trace_export.h"

namespace v6::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

// Smallest bucket whose cumulative count reaches rank q*count, linearly
// interpolated inside that bucket. The first bucket interpolates from 0
// (Prometheus convention) unless its edge is non-positive.
std::optional<double> bucket_quantile(const HistogramData& h, double q) {
  if (h.count == 0 || h.counts.empty() ||
      h.counts.size() != h.bounds.size() + 1) {
    return std::nullopt;
  }
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += h.counts[i];
    if (static_cast<double>(cum) < rank) continue;
    if (i == h.bounds.size()) break;  // +Inf bucket: clamp below
    const double hi = h.bounds[i];
    const double lo = i == 0 ? std::min(0.0, hi) : h.bounds[i - 1];
    // First index with cum >= rank implies prev < rank, so the bucket is
    // non-empty and the division is safe.
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(h.counts[i]);
    return lo + (hi - lo) * frac;
  }
  // Rank lands past every finite edge: the largest finite bound is the
  // tightest claim the bucket layout supports.
  if (h.bounds.empty()) return std::nullopt;
  return h.bounds.back();
}

Labels with_worker(Labels labels, std::uint32_t worker) {
  labels.emplace_back("worker", std::to_string(worker));
  return labels;
}

void sort_samples(std::vector<MetricSample>& samples) {
  // Same (name, labels) order Registry::snapshot() emits, so cluster
  // exposition text is deterministic and diffable against it.
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
}

}  // namespace

HistogramSummary summarize_histogram(const HistogramData& histogram) {
  HistogramSummary summary;
  summary.count = histogram.count;
  summary.sum = histogram.sum;
  summary.p50 = bucket_quantile(histogram, 0.50);
  summary.p90 = bucket_quantile(histogram, 0.90);
  summary.p99 = bucket_quantile(histogram, 0.99);
  return summary;
}

void ClusterAggregator::add_worker(std::uint32_t worker, std::uint32_t subset,
                                   Snapshot snapshot, Timeline timeline) {
  std::erase_if(reports_, [subset](const WorkerReport& r) {
    return r.subset == subset;
  });
  WorkerReport report;
  report.worker = worker;
  report.subset = subset;
  report.snapshot = std::move(snapshot);
  report.timeline = std::move(timeline);
  const auto at = std::upper_bound(
      reports_.begin(), reports_.end(), report,
      [](const WorkerReport& a, const WorkerReport& b) {
        if (a.worker != b.worker) return a.worker < b.worker;
        return a.subset < b.subset;
      });
  reports_.insert(at, std::move(report));
}

Snapshot ClusterAggregator::cluster_snapshot() const {
  using Key = std::pair<std::string, Labels>;
  std::map<Key, MetricSample> counters;
  // Gauges and bound-mismatched histograms keyed with the worker label
  // already appended; a same-identity re-report (one worker completing
  // two subsets) overwrites — last value wins, it is a point-in-time
  // fact, not an increment.
  std::map<Key, MetricSample> per_worker;
  // Histogram groups under original identity; folded after the scan so a
  // bound mismatch anywhere in the group demotes the whole family to
  // per-worker samples.
  std::map<Key, std::vector<std::pair<std::uint32_t, const MetricSample*>>>
      histograms;

  for (const WorkerReport& report : reports_) {
    for (const MetricSample& s : report.snapshot.samples) {
      switch (s.type) {
        case MetricType::kCounter: {
          auto [it, fresh] = counters.try_emplace(Key{s.name, s.labels}, s);
          if (!fresh) it->second.counter_value += s.counter_value;
          break;
        }
        case MetricType::kGauge: {
          MetricSample tagged = s;
          tagged.labels = with_worker(tagged.labels, report.worker);
          per_worker.insert_or_assign(Key{tagged.name, tagged.labels},
                                      std::move(tagged));
          break;
        }
        case MetricType::kHistogram:
          histograms[Key{s.name, s.labels}].emplace_back(report.worker, &s);
          break;
      }
    }
  }

  for (const auto& [key, group] : histograms) {
    const std::vector<double>& bounds = group.front().second->histogram.bounds;
    const bool mergeable = std::all_of(
        group.begin(), group.end(), [&bounds](const auto& entry) {
          const HistogramData& h = entry.second->histogram;
          return h.bounds == bounds && h.counts.size() == bounds.size() + 1;
        });
    if (mergeable) {
      MetricSample merged = *group.front().second;
      for (std::size_t i = 1; i < group.size(); ++i) {
        const HistogramData& h = group[i].second->histogram;
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
          merged.histogram.counts[b] += h.counts[b];
        }
        merged.histogram.count += h.count;
        merged.histogram.sum += h.sum;
      }
      per_worker.insert_or_assign(Key{merged.name, merged.labels},
                                  std::move(merged));
    } else {
      for (const auto& [worker, sample] : group) {
        MetricSample tagged = *sample;
        tagged.labels = with_worker(tagged.labels, worker);
        per_worker.insert_or_assign(Key{tagged.name, tagged.labels},
                                    std::move(tagged));
      }
    }
  }

  Snapshot out;
  out.samples.reserve(counters.size() + per_worker.size());
  for (auto& [key, sample] : counters) out.samples.push_back(std::move(sample));
  for (auto& [key, sample] : per_worker) {
    out.samples.push_back(std::move(sample));
  }
  sort_samples(out.samples);
  return out;
}

std::vector<ClusterWindow> ClusterAggregator::cluster_timeline() const {
  std::vector<ClusterWindow> merged;
  for (const WorkerReport& report : reports_) {
    for (const WindowRecord& rec : report.timeline) {
      merged.push_back(ClusterWindow{report.worker, rec});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ClusterWindow& a, const ClusterWindow& b) {
                     if (a.window.begin != b.window.begin) {
                       return a.window.begin < b.window.begin;
                     }
                     if (a.window.end != b.window.end) {
                       return a.window.end < b.window.end;
                     }
                     return a.worker < b.worker;
                   });
  return merged;
}

std::string ClusterAggregator::render_cluster_timeline() const {
  std::string out;
  for (const ClusterWindow& cw : cluster_timeline()) {
    out += "{\"worker\":";
    append_u64(out, cw.worker);
    out.push_back(',');
    // render_window_json emits "{...}"; splice past its opening brace so
    // the line stays one object with the worker field in front.
    const std::string window = render_window_json(cw.window);
    out.append(window, 1, window.size() - 1);
    out.push_back('\n');
  }
  return out;
}

std::string ClusterAggregator::render_trace() const {
  std::vector<TraceLane> lanes;
  lanes.reserve(reports_.size());
  for (const WorkerReport& report : reports_) {
    TraceLane lane;
    // pids are 1-based lane indices (reports_ is sorted, so this is
    // deterministic); the metadata name carries the real ids.
    lane.pid = static_cast<std::uint32_t>(lanes.size() + 1);
    lane.name = "worker " + std::to_string(report.worker) + " subset " +
                std::to_string(report.subset);
    lane.snapshot = report.snapshot;
    lane.timeline = report.timeline;
    lanes.push_back(std::move(lane));
  }
  return render_cluster_trace(lanes);
}

std::optional<std::string> lint_report(std::string_view text) {
  if (text.empty()) return "empty report";
  if (const auto err = lint_json(text)) return *err;
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos || text[first] != '{') {
    return "report is not a JSON object";
  }
  if (text.find("\"report\":\"v6pool_run_report\"") == std::string_view::npos) {
    return "missing \"report\":\"v6pool_run_report\" identity";
  }
  for (const std::string_view key :
       {"version", "config", "digest", "kernel_backend", "metrics",
        "serve_latency", "epochs", "timeline"}) {
    std::string pattern = "\"";
    pattern += key;
    pattern += "\":";
    if (text.find(pattern) == std::string_view::npos) {
      return "missing required key \"" + std::string(key) + "\"";
    }
  }
  // Percentile fields must be a JSON number or null — a renderer that
  // leaks "inf"/"nan" (not JSON) or a string would slip past lint_json
  // consumers expecting numbers.
  for (const std::string_view key : {"p50_us", "p90_us", "p99_us"}) {
    std::string pattern = "\"";
    pattern += key;
    pattern += "\":";
    std::size_t at = 0;
    while ((at = text.find(pattern, at)) != std::string_view::npos) {
      std::size_t v = at + pattern.size();
      while (v < text.size() && text[v] == ' ') ++v;
      const char c = v < text.size() ? text[v] : '\0';
      if (!(std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' ||
            c == 'n')) {
        return std::string(key) + " value is not a number or null";
      }
      at = v;
    }
  }
  return std::nullopt;
}

}  // namespace v6::obs
