// Reverse DNS (ip6.arpa) simulation and NXDOMAIN tree walking.
//
// The related work the paper builds on (Fiebig et al., Borgolte et al.,
// Strowes) enumerates active IPv6 addresses by *walking* the ip6.arpa
// tree: under RFC 8020 an authoritative server answers NXDOMAIN for a
// label with no descendants, and NOERROR (an "empty non-terminal") for an
// interior node that has some. That semantic difference lets a walker
// prune the 2^128 space down to O(populated-branches) queries.
//
// RdnsZone is the authoritative side (populated from the world's
// rDNS-published devices); walk_rdns is the enumerator. A test shows the
// walk recovers exactly the published set with query counts linear in it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv6.h"
#include "net/prefix.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::dns {

// Authoritative ip6.arpa view over a set of PTR records.
class RdnsZone {
 public:
  enum class Answer : std::uint8_t {
    kNxDomain,          // no names below this label (RFC 8020)
    kEmptyNonTerminal,  // interior node: descendants exist
    kPtrRecord,         // full 32-nibble name with a PTR record
  };

  void add(const net::Ipv6Address& address, std::string hostname);

  // Queries the name formed by the first `nibble_depth` nibbles of
  // `prefix` (most-significant first; the ip6.arpa label reversal is an
  // encoding detail the logical API hides).
  Answer query(const net::Ipv6Address& prefix, int nibble_depth) const;

  std::optional<std::string> ptr(const net::Ipv6Address& address) const;

  std::size_t size() const noexcept { return records_.size(); }

 private:
  void ensure_sorted() const;

  mutable std::vector<std::pair<net::Ipv6Address, std::string>> records_;
  mutable bool sorted_ = false;
};

struct ZoneWalkResult {
  std::vector<net::Ipv6Address> discovered;
  std::uint64_t queries = 0;
};

// Enumerates every PTR record under `apex` by NXDOMAIN tree walking.
ZoneWalkResult walk_rdns(const RdnsZone& zone, const net::Ipv6Prefix& apex);

// Builds the world's rDNS zone as of time `t`: routers, DNS-published
// servers, and the rDNS-exposed slice of CPE (the same population the
// Hitlist campaign's "public sources" model).
RdnsZone build_world_zone(const sim::World& world, util::SimTime t,
                          double cpe_fraction);

}  // namespace v6::dns
