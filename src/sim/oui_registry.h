// Synthetic manufacturer / OUI registry (the IEEE OUI database stand-in).
//
// Two consumers:
//   * the world generator draws device MAC addresses from a manufacturer
//     appropriate for the device kind (phones from phone makers, smart
//     speakers from Sonos, ...), including *unregistered* OUIs — the paper
//     found 73.9% of EUI-64-embedded MACs resolve to no IEEE entry;
//   * the analysis layer resolves embedded MACs back to manufacturer names
//     to regenerate Table 2.
// Manufacturer names follow the paper's Table 2 so the reproduced table
// reads like the original.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/mac.h"
#include "sim/types.h"

namespace v6::sim {

struct Manufacturer {
  std::string_view name;
  // Whether the OUIs are present in the (synthetic) IEEE registry; MACs
  // from unregistered OUIs resolve to "Unlisted" in Table 2.
  bool registered = true;
  // OUIs owned by this manufacturer.
  std::vector<net::Oui> ouis;
  // Device kinds this manufacturer ships.
  std::vector<DeviceKind> kinds;
  // Probability that a device from this maker uses EUI-64 SLAAC.
  double eui64_propensity = 0.0;
  // Constant offset from a device's wired MAC to its WiFi BSSID within the
  // same OUI (the IPvSeeYou linkage); 0 means no WiFi interface.
  std::int32_t bssid_offset = 0;
  // If true, the manufacturer recycles MAC addresses across devices
  // (observed in the paper as one EUI-64 IID appearing in many countries).
  bool reuses_macs = false;
  // Relative popularity among devices of a matching kind.
  double weight = 1.0;
};

class OuiRegistry {
 public:
  // Builds the default registry used by every study; deterministic.
  static OuiRegistry standard();

  std::span<const Manufacturer> manufacturers() const { return makers_; }

  // IEEE-style lookup: name for registered OUIs, nullopt for unknown /
  // unregistered ones (callers render those as "Unlisted").
  std::optional<std::string_view> resolve(net::Oui oui) const;

  // Index into manufacturers() for a given OUI (registered or not);
  // nullopt for OUIs the simulation never assigned.
  std::optional<std::size_t> manufacturer_index(net::Oui oui) const;

  const Manufacturer& manufacturer(std::size_t index) const {
    return makers_.at(index);
  }

  // Manufacturer indices shipping the given device kind.
  std::vector<std::size_t> makers_for_kind(DeviceKind kind) const;

 private:
  std::vector<Manufacturer> makers_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
};

}  // namespace v6::sim
