// Aliased-prefix detection (Gasser et al.'s method, used by the IPv6
// Hitlist): probe a handful of pseudo-random addresses inside a prefix; if
// *all* of them answer, a single box is answering for the whole prefix and
// every "responsive address" inside it is an artifact, not a host.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "net/prefix.h"
#include "netsim/data_plane.h"
#include "scan/zmap6.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace v6::hitlist {

struct AliasDetectorConfig {
  net::Ipv6Address source;
  // Random addresses probed per prefix.
  std::uint32_t probes_per_prefix = 8;
  // Prefix is declared aliased when at least this many answer (the
  // canonical detector requires all of them).
  std::uint32_t response_threshold = 8;
  std::uint64_t seed = 5;
};

class AliasDetector {
 public:
  AliasDetector(netsim::DataPlane& plane, const AliasDetectorConfig& config);

  bool is_aliased(const net::Ipv6Prefix& prefix, util::SimTime t);

  // The subset of `prefixes` detected as aliased.
  std::vector<net::Ipv6Prefix> filter_aliased(
      std::span<const net::Ipv6Prefix> prefixes, util::SimTime t);

 private:
  netsim::DataPlane* plane_;
  AliasDetectorConfig config_;
  scan::Zmap6Scanner scanner_;
  util::Rng rng_;
};

}  // namespace v6::hitlist
