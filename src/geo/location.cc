#include "geo/location.h"

#include <cmath>
#include <numbers>

namespace v6::geo {

double distance_km(const LatLon& a, const LatLon& b) noexcept {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = std::numbers::pi / 180.0;
  const double lat1 = a.latitude * kDegToRad;
  const double lat2 = b.latitude * kDegToRad;
  const double dlat = (b.latitude - a.latitude) * kDegToRad;
  const double dlon = (b.longitude - a.longitude) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

}  // namespace v6::geo
