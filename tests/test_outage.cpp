#include "analysis/outage.h"

#include <gtest/gtest.h>

#include "hitlist/passive_collector.h"
#include "netsim/pool_dns.h"

namespace v6::analysis {
namespace {

sim::WorldConfig outage_config(std::uint32_t outages) {
  sim::WorldConfig config;
  config.seed = 71;
  config.total_sites = 600;
  config.study_duration = 40 * util::kDay;
  config.outage_count = outages;
  config.outage_duration = 4 * util::kDay;
  return config;
}

TEST(Outage, DefaultWorldsHaveNone) {
  sim::WorldConfig config = outage_config(0);
  const auto world = sim::World::generate(config);
  for (std::uint32_t ai = 0; ai < world.ases().size(); ++ai) {
    EXPECT_FALSE(world.in_outage(ai, 25 * util::kDay));
  }
}

TEST(Outage, InjectedAsGoesDarkForItsWindow) {
  const auto world = sim::World::generate(outage_config(2));
  int found = 0;
  for (std::uint32_t ai = 0; ai < world.ases().size(); ++ai) {
    const auto& as = world.ases()[ai];
    if (as.outage_duration == 0) continue;
    ++found;
    EXPECT_FALSE(world.in_outage(ai, as.outage_start - 1));
    EXPECT_TRUE(world.in_outage(ai, as.outage_start));
    EXPECT_TRUE(world.in_outage(ai, as.outage_start + as.outage_duration - 1));
    EXPECT_FALSE(world.in_outage(ai, as.outage_start + as.outage_duration));
  }
  EXPECT_EQ(found, 2);
}

TEST(Outage, DarkAsAnswersNoProbes) {
  const auto world = sim::World::generate(outage_config(1));
  for (std::uint32_t ai = 0; ai < world.ases().size(); ++ai) {
    const auto& as = world.ases()[ai];
    if (as.outage_duration == 0 || as.site_count == 0) continue;
    const auto& site = world.sites()[as.first_site];
    const util::SimTime dark = as.outage_start + util::kDay;
    const auto address = world.device_address(site.cpe, dark);
    EXPECT_EQ(world.resolve(address, dark).kind,
              sim::World::Resolution::Kind::kNone);
    // And alive again afterwards.
    const util::SimTime after = as.outage_start + as.outage_duration + 1;
    EXPECT_NE(world
                  .resolve(world.device_address(site.cpe, after), after)
                  .kind,
              sim::World::Resolution::Kind::kNone);
    return;
  }
  GTEST_SKIP() << "outage landed on a site-less AS";
}

TEST(Outage, MonitorDetectsInjectedOutage) {
  const auto world = sim::World::generate(outage_config(1));
  netsim::DataPlane plane(world, {0.0, 1});
  netsim::PoolDns dns(world);  // full capture for a dense series
  hitlist::PassiveCollector collector(world, plane, dns, {false, 0.0, 3});

  OutageMonitor monitor(world);
  hitlist::Corpus corpus(1 << 14);
  collector.run(corpus, 0, 40 * util::kDay,
                [&monitor](const ntp::Observation& obs,
                           const net::Ipv6Address&) {
                  monitor.record(obs.client, obs.time);
                });

  // Ground truth.
  std::uint32_t dark_as = ~0u;
  for (std::uint32_t ai = 0; ai < world.ases().size(); ++ai) {
    if (world.ases()[ai].outage_duration > 0) dark_as = ai;
  }
  ASSERT_NE(dark_as, ~0u);
  const auto& as = world.ases()[dark_as];
  const std::int64_t truth_start = as.outage_start / util::kDay;

  const auto detected = monitor.detect(40);
  bool matched = false;
  for (const auto& outage : detected) {
    if (outage.as_index != dark_as) continue;
    // Allow one-day slack at the partial-day edges.
    if (std::llabs(outage.first_day - truth_start) <= 1 &&
        outage.last_day >= outage.first_day + 1) {
      matched = true;
    }
  }
  EXPECT_TRUE(matched) << "injected outage at day " << truth_start
                       << " not detected";

  // The series itself shows the hole.
  const auto series = monitor.daily_series(dark_as, 40);
  const auto dark_day = static_cast<std::size_t>(truth_start + 1);
  ASSERT_LT(dark_day, series.size());
  EXPECT_LT(series[dark_day] * 5, series[dark_day >= 5 ? dark_day - 5 : 0] +
                                      1);
}

TEST(Outage, QuietWorldYieldsNoFalsePositives) {
  const auto world = sim::World::generate(outage_config(0));
  netsim::DataPlane plane(world, {0.0, 1});
  netsim::PoolDns dns(world);
  hitlist::PassiveCollector collector(world, plane, dns, {false, 0.0, 3});

  OutageMonitor monitor(world);
  hitlist::Corpus corpus(1 << 14);
  collector.run(corpus, 0, 40 * util::kDay,
                [&monitor](const ntp::Observation& obs,
                           const net::Ipv6Address&) {
                  monitor.record(obs.client, obs.time);
                });
  EXPECT_TRUE(monitor.detect(40).empty());
}

}  // namespace
}  // namespace v6::analysis
