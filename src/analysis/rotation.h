// Prefix-rotation inference (the "Follow the Scent" analysis the paper
// builds on, §2.1/§5.2): how often does each provider renumber its
// customers?
//
// A stable EUI-64 IID acts as a tracer through prefix changes: the gaps
// between consecutive first-sightings of the same MAC in *different* /64s
// of the same AS estimate that AS's delegation lifetime. The estimator
// takes the median gap across all trackable MACs in the AS — robust to
// devices that merely moved house.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/eui64_tracking.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::analysis {

struct RotationEstimate {
  std::uint32_t as_index = 0;
  sim::Asn asn = 0;
  // Median observed dwell time between /64 changes.
  util::SimDuration estimated_period = 0;
  // Number of (MAC, transition) samples behind the estimate.
  std::uint64_t samples = 0;
  // Ground truth from the world's profile (0 = static) — for validation
  // only; the estimator never reads it.
  util::SimDuration true_period = 0;
};

struct RotationConfig {
  // ASes with fewer transition samples than this are not estimated.
  std::uint64_t min_samples = 8;
};

// Estimates per-AS rotation periods from the tracker's EUI-64 timelines.
std::vector<RotationEstimate> infer_rotation_periods(
    const Eui64Tracker& tracker, const sim::World& world,
    const RotationConfig& config = RotationConfig());

}  // namespace v6::analysis
