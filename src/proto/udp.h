// UDP header (RFC 768) over IPv6, with the mandatory checksum (RFC 8200).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "proto/buffer.h"

namespace v6::proto {

inline constexpr std::uint16_t kNtpPort = 123;

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const UdpDatagram&, const UdpDatagram&) = default;
};

// Serializes with a valid (non-zero) checksum for the src/dst pair.
std::vector<std::uint8_t> encode_udp(const UdpDatagram& datagram,
                                     const net::Ipv6Address& src,
                                     const net::Ipv6Address& dst);

// Parses and verifies length + checksum.
std::optional<UdpDatagram> decode_udp(std::span<const std::uint8_t> data,
                                      const net::Ipv6Address& src,
                                      const net::Ipv6Address& dst);

}  // namespace v6::proto
