// Sorted on-disk runs: the storage layer of the out-of-core corpus engine
// (see tiered_corpus.h).
//
// A run file holds a strictly-ascending sequence of pre-aggregated
// AddressRecords, delta-encoded in blocks so paper-scale spills compress
// far below the 32 bytes/record of the in-memory layout. Format V6RUN001:
//
//   magic "V6RUN001"           8 bytes
//   record count               u64   (big-endian, like every repo format)
//   total observations         u64
//   index offset               u64   byte offset of the block index
//   header CRC32               u32   over the three u64 fields
//   blocks                     delta-coded record groups (below)
//   index: block count         u32
//          per block: first address (16), byte offset (u64),
//                     byte length (u32), record count (u32), CRC32 (u32)
//   index CRC32                u32   over the count + entries
//
// Each block encodes up to `block_records` records. The first record of a
// block is absolute (the decoder resets its delta chain there), making
// every block independently decodable — the unit ParallelScan's segment
// domains and the point-lookup path both seek to. Within a block a record
// is a tag byte plus varints (LEB128):
//
//   bit 0  same /64 prefix as the previous record -> only the IID delta
//   bit 1  count == 1                             -> count elided
//   bit 2  last_seen == first_seen                -> last_seen elided
//   bit 3  vantage_mask is a single bit b < 16    -> mask packed in bits 4-7
//
// The split of the 128-bit address into /64 prefix + IID is what makes the
// deltas small: consecutive addresses usually share the prefix (one varint
// for the IID gap) and structured IIDs (low-byte, EUI-64, DHCP-sequential)
// delta to a byte or two. Full-entropy privacy IIDs stay ~9 bytes — that
// is information-theoretic, not a format defect.
//
// Every byte of the file is covered by a CRC32 (header, per block, index),
// mirroring the corpus snapshot v2 contract: the hostile-input tests flip
// and truncate every offset and expect a throw, never a wrong record.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "hitlist/corpus.h"
#include "net/ipv6.h"

namespace v6::hitlist {

struct RunWriterOptions {
  // Records per block: the delta-chain reset interval and the granularity
  // of point lookups / segment scans. Small values are used by the
  // corruption tests to exercise many blocks on tiny inputs.
  std::uint32_t block_records = 4096;
};

// What RunWriter::finish() reports about the finished file.
struct RunFileStats {
  std::uint64_t records = 0;
  std::uint64_t observations = 0;
  std::uint64_t bytes = 0;  // total file size
  std::uint32_t blocks = 0;
};

// One entry of a run's block index, in file order (ascending addresses).
struct RunBlockInfo {
  net::Ipv6Address first_address;
  std::uint64_t offset = 0;       // absolute byte offset of the block
  std::uint32_t byte_length = 0;  // encoded block size
  std::uint32_t record_count = 0;
  std::uint32_t crc = 0;
};

// Streams strictly-ascending records into `out` (which must be seekable:
// the header's counts and index offset are patched at finish()). Typical
// use: canonicalize a shard corpus, append records(), finish().
class RunWriter {
 public:
  explicit RunWriter(std::ostream& out, RunWriterOptions options = {});
  ~RunWriter();

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  // Appends one record. Throws std::invalid_argument when `rec.address`
  // is not strictly greater than the previous record's, or rec.count is 0
  // (count == 0 cannot round-trip: the tag packing has no encoding for it
  // and the corpus treats such records as impossible).
  void append(const AddressRecord& rec);

  // Flushes the tail block, writes the index, patches the header. Must be
  // called exactly once; append() is invalid afterwards.
  RunFileStats finish();

 private:
  void flush_block();

  std::ostream* out_;
  RunWriterOptions options_;
  std::vector<std::uint8_t> block_;
  std::vector<RunBlockInfo> index_;
  net::Ipv6Address prev_address_;
  net::Ipv6Address block_first_;
  std::uint32_t block_count_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t observations_ = 0;
  std::uint64_t write_offset_ = 0;
  bool finished_ = false;
};

// Validated view of one run file. Construction reads and CRC-checks the
// header and the block index; record data is checked block-by-block as it
// is streamed. The stream must be seekable and outlive the reader and any
// Cursor obtained from it. Throws std::runtime_error on any malformed
// input (bad magic, truncation, CRC mismatch, non-ascending records,
// trailing bytes).
class RunReader {
 public:
  explicit RunReader(std::istream& in);

  std::uint64_t records() const noexcept { return records_; }
  std::uint64_t observations() const noexcept { return observations_; }
  const std::vector<RunBlockInfo>& blocks() const noexcept { return index_; }

  // Pull-style record stream. next() returns false at end of run.
  class Cursor {
   public:
    bool next(AddressRecord& out);

   private:
    friend class RunReader;
    Cursor(const RunReader* reader, std::size_t block, std::size_t skip);
    void load_block();

    const RunReader* reader_ = nullptr;
    std::size_t block_ = 0;          // next block to load
    std::size_t skip_ = 0;           // records to discard from that block
    std::vector<AddressRecord> decoded_;
    std::size_t pos_ = 0;
  };

  // Cursor over the whole run, in ascending address order.
  Cursor cursor() const { return Cursor(this, 0, 0); }

  // Cursor positioned at the first record with address >= lo.
  Cursor cursor_at(const net::Ipv6Address& lo) const;

 private:
  friend class Cursor;
  // Reads, CRC-checks, and delta-decodes block `b` (validating strict
  // ascent, including against the previous block's bound).
  std::vector<AddressRecord> read_block(std::size_t b) const;

  std::istream* in_;
  std::uint64_t records_ = 0;
  std::uint64_t observations_ = 0;
  std::vector<RunBlockInfo> index_;
};

// A pull stream of ascending, pre-aggregated records; returns false when
// exhausted. The k-way merge consumes any mix of these (run cursors,
// in-memory sorted spans), which is what the run-count-invariance
// property tests exercise directly.
using RecordStream = std::function<bool(AddressRecord&)>;

// K-way merge: emits the union of `streams` in ascending address order,
// aggregating duplicates across streams (min first_seen, max last_seen,
// sum count, OR vantage_mask — identical to Corpus::add_record, including
// u32 wrap-on-sum for count). Each input stream must itself be strictly
// ascending. Emission stops early when `emit` returns false.
void merge_record_streams(
    std::vector<RecordStream> streams,
    const std::function<bool(const AddressRecord&)>& emit);

}  // namespace v6::hitlist
