// The privacy audit of §5, as a program: what a passive adversary holding
// a large hitlist learns about individual devices.
//
// From nothing but (address, timestamp) pairs, the audit extracts embedded
// MAC addresses from EUI-64 IIDs, resolves manufacturers, classifies each
// device's movement history, prints an exemplar tracking timeline, and
// geolocates devices by linking their wired MACs to wardriven WiFi BSSIDs.
#include <cstdio>
#include <utility>

#include "analysis/bad_apple.h"
#include "analysis/eui64_tracking.h"
#include "analysis/geolink.h"
#include "analysis/manufacturers.h"
#include "core/study.h"
#include "util/strings.h"

int main() {
  using namespace v6;

  core::StudyConfig config;
  config.world.seed = 5;
  config.world.total_sites = 4000;
  config.world.study_duration = 120 * util::kDay;

  core::Study study(config);
  core::RunOptions options;
  options.campaigns = options.backscan = options.analysis = false;
  const auto& corpus = study.run(std::move(options)).ntp;
  std::printf("corpus: %s unique addresses\n\n",
              util::with_commas(corpus.size()).c_str());

  // --- §5.1: prevalence ---
  analysis::Eui64Tracker tracker(corpus, study.world());
  std::printf("EUI-64 addresses : %s (%.2f%% of corpus; random-match floor "
              "would be %s)\n",
              util::with_commas(tracker.eui64_addresses()).c_str(),
              100.0 * static_cast<double>(tracker.eui64_addresses()) /
                  static_cast<double>(tracker.corpus_addresses()),
              util::with_commas(tracker.expected_random_matches()).c_str());
  std::printf("embedded MACs    : %s\n\n",
              util::with_commas(tracker.unique_macs()).c_str());

  std::printf("manufacturers (Table 2 style):\n");
  for (const auto& row : analysis::manufacturer_table(
           tracker.tracks(), study.world().ouis(), 6)) {
    std::printf("  %-48s %8s\n", row.name.c_str(),
                util::with_commas(row.mac_count).c_str());
  }

  // --- §5.2: trackability ---
  std::printf("\ntrackable MACs (seen in >= 2 /64s): %s of %s\n",
              util::with_commas(tracker.trackable_macs()).c_str(),
              util::with_commas(tracker.unique_macs()).c_str());
  for (const auto& [cls, count] : tracker.class_counts()) {
    std::printf("  %-20s %8s\n", to_string(cls),
                util::with_commas(count).c_str());
  }

  // An exemplar journey (Fig 7 style).
  const auto exemplars = tracker.exemplars();
  for (const auto& [cls, mac] : exemplars) {
    if (cls == analysis::TrackingClass::kMostlyStatic) continue;
    std::printf("\nexemplar \"%s\": MAC %s\n", to_string(cls),
                mac.to_string().c_str());
    const auto timeline = tracker.timeline(mac);
    const std::size_t step = std::max<std::size_t>(1, timeline.size() / 8);
    for (std::size_t i = 0; i < timeline.size(); i += step) {
      std::printf("  day %3u  AS%-6u %s  /64 %s\n",
                  timeline[i].first_seen /
                      static_cast<std::uint32_t>(util::kDay),
                  timeline[i].asn, timeline[i].country.to_string().c_str(),
                  net::Ipv6Address::from_u64(timeline[i].slash64_hi, 0)
                      .to_string()
                      .c_str());
    }
    break;  // one exemplar is enough for the demo
  }

  // --- the "one bad apple" joint attack (paper ref [66]) ---
  const auto apples = analysis::bad_apple_linkage(corpus, tracker);
  std::printf("\none bad apple: %s EUI-64 gadgets expose co-tenants; %s "
              "other addresses\n  linked to a household (%s of them privacy "
              "addresses); %s households\n  stitched across prefix "
              "rotations.\n",
              util::with_commas(apples.apples_with_cotenants).c_str(),
              util::with_commas(apples.linked_addresses).c_str(),
              util::with_commas(apples.linked_privacy_addresses).c_str(),
              util::with_commas(
                  apples.households_stitched_across_prefixes)
                  .c_str());

  // --- §5.3: geolocation ---
  analysis::GeoLinkConfig link_config;
  link_config.min_pairs_per_oui = 10;  // scaled-down world
  const auto geo = analysis::link_eui64_to_bssids(
      tracker.tracks(), study.world().wardriving(), link_config);
  std::printf("\ngeolocation: %zu OUI offsets inferred, %zu devices pinned "
              "to coordinates\n",
              geo.oui_offsets.size(), geo.linked.size());
  for (std::size_t i = 0; i < geo.by_country.size() && i < 3; ++i) {
    std::printf("  %s %s devices\n",
                geo.by_country[i].first.to_string().c_str(),
                util::with_commas(geo.by_country[i].second).c_str());
  }
  if (!geo.linked.empty()) {
    const auto& sample = geo.linked.front();
    std::printf("  e.g. wired %s -> BSSID %s at (%.3f, %.3f)\n",
                sample.mac.to_string().c_str(),
                sample.bssid.to_string().c_str(), sample.location.latitude,
                sample.location.longitude);
  }
  std::printf("\nthe defense (paper §6): stop using EUI-64 — random IIDs "
              "sever every linkage shown above.\n");
  return 0;
}
