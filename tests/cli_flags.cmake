# CLI misconfiguration gate, run as a CTest job: malformed or overflowing
# numeric flags must make v6pool_cli exit nonzero with a diagnostic that
# names the flag — never silently fall back to the default or truncate
# (the exact "quietly run the wrong study" failure mode the serving issue
# bundled). Valid invocations must keep exiting 0. Expects
# -DCLI=<path to v6pool_cli> and -DWORK=<scratch dir>.
if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "cli_flags.cmake needs -DCLI= and -DWORK=")
endif()

file(MAKE_DIRECTORY "${WORK}")

# Each entry: "<expected flag in stderr>|<comma-separated argv>".
set(bad_cases
  "--sites|world,--sites,abc"
  "--sites|world,--sites,5000000000"
  "--seed|world,--seed,12x"
  "--days|study,--days,99999999999999"
  "--sample-days|study,--sites,200,--days,5,--sample-days,banana"
  "--threads|study,--sites,200,--days,5,--threads,-3"
  "--workers|coordinator,--dir,${WORK},--workers,many"
  "--id|worker,--dir,${WORK},--sites,200,--id,0x2"
  "--retain-epochs|serve,--sites,200,--days,5,--retain-epochs,1e9"
  "--kernels|world,--sites,200,--kernels,avx512"
  "--kernels|study,--sites,200,--days,5,--kernels,Scalar"
)

foreach(case IN LISTS bad_cases)
  string(REPLACE "|" ";" parts "${case}")
  list(GET parts 0 flag)
  list(GET parts 1 argv)
  string(REPLACE "," ";" argv "${argv}")
  execute_process(
    COMMAND ${CLI} ${argv}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "expected failure, got rc=0: ${CLI} ${argv}")
  endif()
  if(NOT err MATCHES "${flag}")
    message(FATAL_ERROR
            "diagnostic for '${argv}' does not name ${flag}: ${err}")
  endif()
endforeach()

# Build a tiny corpus once for the query-side negative and positive paths.
execute_process(
  COMMAND ${CLI} study --sites 200 --days 5 --collect-only
          --save-corpus ${WORK}/flags.corpus
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference study failed (rc=${rc})")
endif()

# A malformed --oui must name the flag; a malformed --queries line must
# name the file and line.
execute_process(
  COMMAND ${CLI} query --corpus ${WORK}/flags.corpus --oui zz
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "--oui")
  message(FATAL_ERROR "bad --oui not rejected (rc=${rc}): ${err}")
endif()
file(WRITE "${WORK}/bad_queries.txt" "point not-an-address\n")
execute_process(
  COMMAND ${CLI} query --corpus ${WORK}/flags.corpus
          --queries ${WORK}/bad_queries.txt
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "bad_queries.txt:1")
  message(FATAL_ERROR "bad query line not rejected (rc=${rc}): ${err}")
endif()

# Valid flags keep working: world prints its inventory, query answers a
# point lookup against the saved corpus.
execute_process(
  COMMAND ${CLI} world --sites 200 --seed 7
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "valid world invocation failed (rc=${rc})")
endif()
foreach(backend scalar auto)
  execute_process(
    COMMAND ${CLI} world --sites 200 --seed 7 --kernels ${backend}
    RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--kernels ${backend} rejected (rc=${rc})")
  endif()
endforeach()
execute_process(
  COMMAND ${CLI} query --corpus ${WORK}/flags.corpus --addr ::1
          --p48 2001:db8::1 --oui f0:02:20
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "point ::1")
  message(FATAL_ERROR "valid query invocation failed (rc=${rc}): ${out}")
endif()

file(REMOVE_RECURSE "${WORK}")
message(STATUS "cli flags: malformed inputs rejected loudly, valid ones ok")
