#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace v6::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(samples_.size() <= 1) {}

EmpiricalDistribution::EmpiricalDistribution(
    const EmpiricalDistribution& other)
    // Sorting the source first makes copying safe even while other
    // threads are concurrently querying `other` (after ensure_sorted()
    // returns, const queries never touch samples_ again).
    : samples_(other.sorted_samples()), sorted_(true) {}

EmpiricalDistribution& EmpiricalDistribution::operator=(
    const EmpiricalDistribution& other) {
  if (this != &other) {
    samples_ = other.sorted_samples();
    sorted_.store(true, std::memory_order_relaxed);
  }
  return *this;
}

EmpiricalDistribution::EmpiricalDistribution(
    EmpiricalDistribution&& other) noexcept
    : samples_(std::move(other.samples_)),
      sorted_(other.sorted_.load(std::memory_order_relaxed)) {
  other.samples_.clear();
  other.sorted_.store(true, std::memory_order_relaxed);
}

EmpiricalDistribution& EmpiricalDistribution::operator=(
    EmpiricalDistribution&& other) noexcept {
  if (this != &other) {
    samples_ = std::move(other.samples_);
    sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    other.samples_.clear();
    other.sorted_.store(true, std::memory_order_relaxed);
  }
  return *this;
}

void EmpiricalDistribution::add(double x) {
  samples_.push_back(x);
  sorted_.store(samples_.size() <= 1, std::memory_order_relaxed);
}

void EmpiricalDistribution::add_n(double x, std::size_t n) {
  if (n == 0) return;
  samples_.insert(samples_.end(), n, x);
  sorted_.store(samples_.size() <= n, std::memory_order_relaxed);
}

void EmpiricalDistribution::ensure_sorted() const {
  // Double-checked locking: the common case (already sorted) is one
  // acquire load; the first reader after a mutation takes the mutex and
  // sorts while latecomers block, so concurrent cdf()/quantile() calls on
  // a shared distribution are race-free (the old unguarded lazy sort was
  // a data race under `const`).
  if (sorted_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(sort_mu_);
  if (!sorted_.load(std::memory_order_relaxed)) {
    std::sort(samples_.begin(), samples_.end());
    sorted_.store(true, std::memory_order_release);
  }
}

double EmpiricalDistribution::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalDistribution::quantile(double q) const {
  if (samples_.empty()) throw std::out_of_range("quantile of empty sample");
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto n = samples_.size();
  // Rank statistic: smallest sample s with cdf(s) >= q; rank is clamped to
  // [1, n] so q == 0 returns the minimum.
  const double raw_rank = std::ceil(q * static_cast<double>(n));
  const auto rank = static_cast<std::size_t>(
      std::clamp(raw_rank, 1.0, static_cast<double>(n)));
  return samples_[rank - 1];
}

double EmpiricalDistribution::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double EmpiricalDistribution::min() const {
  if (samples_.empty()) throw std::out_of_range("min of empty sample");
  ensure_sorted();
  return samples_.front();
}

double EmpiricalDistribution::max() const {
  if (samples_.empty()) throw std::out_of_range("max of empty sample");
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> EmpiricalDistribution::cdf_curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (samples_.empty() || points < 2) return curve;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  curve.reserve(points);
  for (double x : linspace(lo, hi, points)) curve.emplace_back(x, cdf(x));
  return curve;
}

const std::vector<double>& EmpiricalDistribution::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires hi > lo and buckets > 0");
  }
  counts_.assign(buckets, 0);
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  // Reject non-finite samples before any bucket math: casting NaN (or a
  // value outside int64's range, e.g. inf scaled by 1/width_) to an
  // integer is undefined behaviour. Dropped weight is tallied so callers
  // can see data quality instead of silently losing mass.
  if (!std::isfinite(x)) {
    dropped_ += weight;
    return;
  }
  // Clamp in double space; only an in-range position is ever cast.
  const double pos = (x - lo_) / width_;
  std::size_t idx = 0;
  if (pos >= static_cast<double>(counts_.size())) {
    idx = counts_.size() - 1;
  } else if (pos > 0.0) {
    idx = static_cast<std::size_t>(pos);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::cumulative_fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b <= i && b < counts_.size(); ++b) sum += counts_[b];
  return static_cast<double>(sum) / static_cast<double>(total_);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  std::vector<double> xs;
  if (n < 2) {
    xs.push_back(lo);
    return xs;
  }
  xs.reserve(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back(lo + step * static_cast<double>(i));
  xs.back() = hi;
  return xs;
}

}  // namespace v6::util
