#include "net/ipv6.h"

#include <cstdio>

#include "util/rng.h"
#include "util/strings.h"

namespace v6::net {

std::string Ipv6Address::to_string() const {
  // Find the longest run of >= 2 consecutive zero hextets (leftmost wins).
  int best_start = -1, best_len = 0;
  int run_start = -1, run_len = 0;
  for (int i = 0; i < 8; ++i) {
    if (hextet(static_cast<std::size_t>(i)) == 0) {
      if (run_start < 0) run_start = i;
      ++run_len;
      if (run_len > best_len) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_start = -1;
      run_len = 0;
    }
  }
  if (best_len < 2) best_start = -1;  // RFC 5952 §4.2.2

  std::string out;
  out.reserve(40);
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // The group before the run already emitted its ':' — one more makes
      // the "::"; at the very start both colons are ours to write.
      out += i == 0 ? "::" : ":";
      i += best_len;
      continue;
    }
    std::snprintf(buf, sizeof buf, "%x", hextet(static_cast<std::size_t>(i)));
    out += buf;
    if (i + 1 < 8) out += ':';
    ++i;
  }
  // A trailing single colon only arises for a non-compressed final group,
  // which the loop above never produces; but a run ending exactly at 8
  // already wrote its second colon.
  return out;
}

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  if (text.size() < 2 || text.size() > 45) return std::nullopt;

  // Split once on "::" (at most one allowed).
  std::string_view head = text, tail;
  bool compressed = false;
  if (const auto pos = text.find("::"); pos != std::string_view::npos) {
    if (text.find("::", pos + 1) != std::string_view::npos) {
      return std::nullopt;
    }
    compressed = true;
    head = text.substr(0, pos);
    tail = text.substr(pos + 2);
  }

  auto parse_groups =
      [](std::string_view part,
         std::array<std::uint16_t, 8>& groups, std::size_t& count,
         std::optional<Ipv4Address>& v4_tail) -> bool {
    if (part.empty()) return true;
    for (const auto token : util::split(part, ':')) {
      if (count >= 8) return false;
      if (token.find('.') != std::string_view::npos) {
        // IPv4 dotted-quad: only legal as the final token.
        const auto v4 = Ipv4Address::parse(token);
        if (!v4) return false;
        v4_tail = v4;
        if (count + 2 > 8) return false;
        groups[count++] = static_cast<std::uint16_t>(v4->value() >> 16);
        groups[count++] = static_cast<std::uint16_t>(v4->value() & 0xffff);
        return true;  // caller verifies it was the last token
      }
      if (token.empty() || token.size() > 4) return false;
      const auto value = util::parse_hex_u64(token);
      if (!value) return false;
      groups[count++] = static_cast<std::uint16_t>(*value);
    }
    return true;
  };

  std::array<std::uint16_t, 8> head_groups{}, tail_groups{};
  std::size_t head_count = 0, tail_count = 0;
  std::optional<Ipv4Address> v4_head, v4_tail;
  if (!parse_groups(head, head_groups, head_count, v4_head)) {
    return std::nullopt;
  }
  if (!parse_groups(tail, tail_groups, tail_count, v4_tail)) {
    return std::nullopt;
  }
  // A dotted-quad must be the final token of the whole address.
  auto quad_is_last = [](std::string_view part) {
    const auto dot = part.find('.');
    const auto last_colon = part.rfind(':');
    return last_colon == std::string_view::npos || dot > last_colon;
  };
  if (v4_head && (compressed || !quad_is_last(head))) return std::nullopt;
  if (v4_tail && !quad_is_last(tail)) return std::nullopt;

  std::array<std::uint16_t, 8> groups{};
  if (compressed) {
    // "::" stands for at least one zero group.
    if (head_count + tail_count > 7) return std::nullopt;
    for (std::size_t i = 0; i < head_count; ++i) groups[i] = head_groups[i];
    for (std::size_t i = 0; i < tail_count; ++i) {
      groups[8 - tail_count + i] = tail_groups[i];
    }
  } else {
    if (head_count != 8 || tail_count != 0) return std::nullopt;
    groups = head_groups;
  }
  return from_hextets(groups);
}

std::size_t Ipv6AddressHash::operator()(const Ipv6Address& a) const noexcept {
  const std::uint64_t h =
      util::mix64(a.hi64() ^ 0x9e3779b97f4a7c15ULL) ^ util::mix64(a.lo64());
  return static_cast<std::size_t>(h);
}

}  // namespace v6::net
