#include "dist/obs_report.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace v6::dist {

obs::Snapshot completion_snapshot(const hitlist::PassiveCollector& collector) {
  obs::Snapshot snap;
  const auto counter = [&snap](std::string_view name, std::string_view help,
                               obs::Labels labels, std::uint64_t value) {
    obs::MetricSample s;
    s.name = std::string(name);
    s.help = std::string(help);
    s.type = obs::MetricType::kCounter;
    s.labels = std::move(labels);
    s.counter_value = value;
    snap.samples.push_back(std::move(s));
  };
  counter("v6_collector_polls_total",
          "NTP poll packets attempted by pool clients", {},
          collector.polls_attempted());
  counter("v6_collector_answered_total",
          "Poll attempts whose response passed client-side validation", {},
          collector.polls_answered());
  const std::vector<hitlist::VantageHealthStats>& health =
      collector.vantage_health();
  for (std::size_t v = 0; v < health.size(); ++v) {
    const obs::Labels labels{{"vantage", std::to_string(v)}};
    counter(obs::kVantagePollsFamily,
            "Recorded poll packets steered to this vantage", labels,
            health[v].polls);
    counter(obs::kVantageAnsweredFamily,
            "Poll attempts this vantage answered past client validation",
            labels, health[v].answered);
    counter(obs::kVantageFaultLostFamily,
            "Poll attempts the fault plan swallowed at this vantage", labels,
            health[v].lost_to_fault);
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

ObsReport build_obs_report(const hitlist::PassiveCollector& collector,
                           obs::Timeline windows) {
  ObsReport report;
  report.snapshot = completion_snapshot(collector);
  report.windows = std::move(windows);
  return report;
}

}  // namespace v6::dist
