// The cluster observability plane: ClusterAggregator merge semantics
// (counters sum under original labels, gauges get per-worker tags,
// histograms merge bucket-wise when bounds agree), the merged cluster
// timeline and multi-lane trace, the histogram percentile estimator, and
// the run-report linter.
#include "obs/cluster.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/exposition.h"
#include "obs/snapshot.h"
#include "obs/timeline.h"
#include "obs/trace_export.h"

namespace v6::obs {
namespace {

MetricSample counter(std::string name, Labels labels, std::uint64_t value) {
  MetricSample s;
  s.name = std::move(name);
  s.type = MetricType::kCounter;
  s.labels = std::move(labels);
  s.counter_value = value;
  return s;
}

MetricSample gauge(std::string name, double value) {
  MetricSample s;
  s.name = std::move(name);
  s.type = MetricType::kGauge;
  s.gauge_value = value;
  return s;
}

MetricSample hist(std::string name, std::vector<double> bounds,
                  std::vector<std::uint64_t> counts, double sum) {
  MetricSample s;
  s.name = std::move(name);
  s.type = MetricType::kHistogram;
  s.histogram.bounds = std::move(bounds);
  s.histogram.counts = std::move(counts);
  for (const std::uint64_t c : s.histogram.counts) s.histogram.count += c;
  s.histogram.sum = sum;
  return s;
}

Snapshot snapshot_of(std::vector<MetricSample> samples) {
  Snapshot snap;
  snap.samples = std::move(samples);
  return snap;
}

WindowRecord window(util::SimTime begin, util::SimTime end,
                    std::string stage) {
  WindowRecord w;
  w.begin = begin;
  w.end = end;
  w.stage = std::move(stage);
  return w;
}

// --- percentile estimator --------------------------------------------------

TEST(HistogramSummaryEstimator, EmptyHistogramHasNoPercentiles) {
  const HistogramSummary s = summarize_histogram(HistogramData{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_FALSE(s.p50.has_value());
  EXPECT_FALSE(s.p90.has_value());
  EXPECT_FALSE(s.p99.has_value());
}

TEST(HistogramSummaryEstimator, InterpolatesLinearlyInsideTheBucket) {
  HistogramData h;
  h.bounds = {10.0, 20.0};
  h.counts = {10, 10, 0};
  h.count = 20;
  h.sum = 250.0;
  const HistogramSummary s = summarize_histogram(h);
  EXPECT_EQ(s.count, 20u);
  EXPECT_EQ(s.sum, 250.0);
  // rank(p50) = 10 lands exactly on the first bucket's full width.
  ASSERT_TRUE(s.p50.has_value());
  EXPECT_DOUBLE_EQ(*s.p50, 10.0);
  // rank(p90) = 18: 8/10 into the (10, 20] bucket.
  ASSERT_TRUE(s.p90.has_value());
  EXPECT_DOUBLE_EQ(*s.p90, 18.0);
}

TEST(HistogramSummaryEstimator, InfBucketRankClampsToLastFiniteBound) {
  HistogramData h;
  h.bounds = {10.0};
  h.counts = {0, 5};  // everything in +Inf
  h.count = 5;
  const HistogramSummary s = summarize_histogram(h);
  ASSERT_TRUE(s.p50.has_value());
  EXPECT_DOUBLE_EQ(*s.p50, 10.0);
  ASSERT_TRUE(s.p99.has_value());
  EXPECT_DOUBLE_EQ(*s.p99, 10.0);
}

TEST(HistogramSummaryEstimator, MalformedBucketShapeYieldsNoPercentiles) {
  HistogramData h;
  h.bounds = {10.0};
  h.counts = {1};  // must be bounds + 1
  h.count = 1;
  const HistogramSummary s = summarize_histogram(h);
  EXPECT_FALSE(s.p50.has_value());
}

// --- merge semantics -------------------------------------------------------

TEST(ClusterAggregator, CountersSumUnderOriginalLabels) {
  ClusterAggregator agg;
  agg.add_worker(1, 0,
                 snapshot_of({counter("v6_collector_polls_total", {}, 100),
                              counter("v6_collector_vantage_polls_total",
                                      {{"vantage", "0"}}, 7)}),
                 {});
  agg.add_worker(2, 1,
                 snapshot_of({counter("v6_collector_polls_total", {}, 50),
                              counter("v6_collector_vantage_polls_total",
                                      {{"vantage", "1"}}, 3)}),
                 {});
  const Snapshot merged = agg.cluster_snapshot();
  EXPECT_EQ(merged.counter_sum("v6_collector_polls_total"), 150u);
  // Label sets stay the ORIGINAL identity — no worker tag on counters.
  ASSERT_EQ(merged.samples.size(), 3u);
  EXPECT_EQ(merged.samples[0].name, "v6_collector_polls_total");
  EXPECT_TRUE(merged.samples[0].labels.empty());
  EXPECT_EQ(merged.samples[1].labels,
            Labels({{"vantage", "0"}}));
  EXPECT_EQ(merged.samples[2].labels,
            Labels({{"vantage", "1"}}));
}

TEST(ClusterAggregator, GaugesAreTaggedPerWorkerNeverSummed) {
  ClusterAggregator agg;
  agg.add_worker(1, 0, snapshot_of({gauge("v6_backlog", 3.0)}), {});
  agg.add_worker(2, 1, snapshot_of({gauge("v6_backlog", 5.0)}), {});
  const Snapshot merged = agg.cluster_snapshot();
  ASSERT_EQ(merged.samples.size(), 2u);
  EXPECT_EQ(merged.samples[0].labels, Labels({{"worker", "1"}}));
  EXPECT_EQ(merged.samples[0].gauge_value, 3.0);
  EXPECT_EQ(merged.samples[1].labels, Labels({{"worker", "2"}}));
  EXPECT_EQ(merged.samples[1].gauge_value, 5.0);
}

TEST(ClusterAggregator, MatchingHistogramsMergeBucketWise) {
  ClusterAggregator agg;
  agg.add_worker(1, 0,
                 snapshot_of({hist("lat_us", {1.0, 4.0}, {1, 2, 0}, 5.0)}),
                 {});
  agg.add_worker(2, 1,
                 snapshot_of({hist("lat_us", {1.0, 4.0}, {0, 1, 3}, 40.0)}),
                 {});
  const Snapshot merged = agg.cluster_snapshot();
  ASSERT_EQ(merged.samples.size(), 1u);
  const HistogramData& h = merged.samples[0].histogram;
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{1, 3, 3}));
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.sum, 45.0);
  EXPECT_TRUE(merged.samples[0].labels.empty());
}

TEST(ClusterAggregator, MismatchedHistogramBoundsFallBackToPerWorker) {
  ClusterAggregator agg;
  agg.add_worker(1, 0,
                 snapshot_of({hist("lat_us", {1.0, 4.0}, {1, 2, 0}, 5.0)}),
                 {});
  agg.add_worker(2, 1, snapshot_of({hist("lat_us", {2.0}, {1, 1}, 6.0)}), {});
  const Snapshot merged = agg.cluster_snapshot();
  ASSERT_EQ(merged.samples.size(), 2u);
  EXPECT_EQ(merged.samples[0].labels, Labels({{"worker", "1"}}));
  EXPECT_EQ(merged.samples[1].labels, Labels({{"worker", "2"}}));
  EXPECT_EQ(merged.samples[0].histogram.count, 3u);
  EXPECT_EQ(merged.samples[1].histogram.count, 2u);
}

TEST(ClusterAggregator, SubsetReplacementKeepsOnlyTheCompletingLease) {
  // Lease reassignment: worker 1's aborted lease on subset 0 reported,
  // then worker 3 completed the same subset. Keeping both would
  // double-count the subset's deterministic counters.
  ClusterAggregator agg;
  agg.add_worker(1, 0, snapshot_of({counter("polls_total", {}, 40)}), {});
  agg.add_worker(3, 0, snapshot_of({counter("polls_total", {}, 100)}), {});
  EXPECT_EQ(agg.report_count(), 1u);
  EXPECT_EQ(agg.reports()[0].worker, 3u);
  EXPECT_EQ(agg.cluster_snapshot().counter_sum("polls_total"), 100u);
}

TEST(ClusterAggregator, ClusterSnapshotRendersCleanPrometheus) {
  ClusterAggregator agg;
  agg.add_worker(
      1, 0,
      snapshot_of({counter("v6_collector_polls_total", {}, 10),
                   gauge("v6_backlog", 2.0),
                   hist("lat_us", {1.0}, {1, 1}, 3.0)}),
      {});
  agg.add_worker(
      2, 1,
      snapshot_of({counter("v6_collector_polls_total", {}, 20),
                   gauge("v6_backlog", 4.0),
                   hist("lat_us", {1.0}, {2, 0}, 1.0)}),
      {});
  const std::string text =
      render(agg.cluster_snapshot(), ExpositionFormat::kPrometheus);
  EXPECT_EQ(lint_prometheus(text), std::nullopt) << text;
  EXPECT_NE(text.find("v6_collector_polls_total 30\n"), std::string::npos);
  EXPECT_NE(text.find("v6_backlog{worker=\"1\"} 2\n"), std::string::npos);
}

// --- cluster timeline and trace --------------------------------------------

TEST(ClusterAggregator, ClusterTimelineInterleavesSortedByWindowThenWorker) {
  ClusterAggregator agg;
  agg.add_worker(2, 1,
                 snapshot_of({}),
                 {window(0, 10, "collect"), window(10, 15, "collect")});
  agg.add_worker(1, 0,
                 snapshot_of({}),
                 {window(0, 10, "collect"), window(10, 20, "collect")});
  const std::vector<ClusterWindow> merged = agg.cluster_timeline();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].worker, 1u);  // (0, 10, worker 1)
  EXPECT_EQ(merged[1].worker, 2u);  // (0, 10, worker 2)
  EXPECT_EQ(merged[2].worker, 2u);  // (10, 15)
  EXPECT_EQ(merged[3].worker, 1u);  // (10, 20)
}

TEST(ClusterAggregator, RenderedClusterTimelineLinesAreValidJson) {
  ClusterAggregator agg;
  WindowRecord w = window(0, 10, "collect");
  w.counters.push_back({"polls_total", {}, 7});
  w.histograms.push_back({"wall_us", {}, 2, 5.5});
  agg.add_worker(1, 0, snapshot_of({}), {std::move(w)});
  agg.add_worker(2, 1, snapshot_of({}), {window(0, 10, "collect")});
  const std::string text = agg.render_cluster_timeline();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    const std::string line = text.substr(start, nl - start);
    EXPECT_EQ(lint_json(line), std::nullopt) << line;
    EXPECT_EQ(line.find("{\"worker\":"), 0u) << line;
    start = nl + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(ClusterAggregator, TraceHasOneLanePerReportAndLintsClean) {
  ClusterAggregator agg;
  agg.add_worker(1, 0, snapshot_of({}), {window(0, 10, "collect")});
  agg.add_worker(4, 1, snapshot_of({}), {window(0, 12, "collect")});
  agg.add_worker(4, 2, snapshot_of({}), {window(0, 9, "collect")});
  const std::string text = agg.render_trace();
  EXPECT_EQ(lint_trace_events(text), std::nullopt) << text;
  EXPECT_EQ(lint_json(text), std::nullopt);
  // One pid lane per report, labeled with the real (worker, subset) ids.
  EXPECT_NE(text.find("\"name\":\"worker 1 subset 0\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"worker 4 subset 1\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"worker 4 subset 2\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\":3"), std::string::npos);
}

// --- run-report linter -----------------------------------------------------

std::string minimal_report() {
  return "{\"report\":\"v6pool_run_report\",\"version\":1,"
         "\"config\":{\"digest\":\"abc\"},"
         "\"kernel_backend\":\"scalar\","
         "\"metrics\":{\"v6_collector_polls_total\":1},"
         "\"serve_latency\":{\"point\":{\"count\":2,\"p50_us\":1.5,"
         "\"p90_us\":null,\"p99_us\":null}},"
         "\"epochs\":[],\"timeline\":null}";
}

TEST(RunReportLint, AcceptsAWellFormedReport) {
  EXPECT_EQ(lint_report(minimal_report()), std::nullopt);
}

TEST(RunReportLint, RejectsEmptyAndNonObjectText) {
  EXPECT_TRUE(lint_report("").has_value());
  EXPECT_TRUE(lint_report("[1,2]").has_value());
  EXPECT_TRUE(lint_report("{\"a\":1,}").has_value());  // invalid JSON
}

TEST(RunReportLint, RejectsMissingIdentityAndRequiredKeys) {
  std::string no_identity = minimal_report();
  const std::size_t at = no_identity.find("v6pool_run_report");
  no_identity.replace(at, 17, "something_else_xx");
  EXPECT_TRUE(lint_report(no_identity).has_value());

  for (const char* key :
       {"version", "config", "digest", "kernel_backend", "metrics",
        "serve_latency", "epochs", "timeline"}) {
    std::string broken = minimal_report();
    const std::string pattern = "\"" + std::string(key) + "\":";
    const std::size_t pos = broken.find(pattern);
    ASSERT_NE(pos, std::string::npos) << key;
    // Rename the key in place; the text stays valid JSON but loses the
    // required section.
    broken[pos + 1] = 'x';
    EXPECT_TRUE(lint_report(broken).has_value()) << key;
  }
}

TEST(RunReportLint, RejectsNonNumericPercentiles) {
  std::string broken = minimal_report();
  const std::size_t at = broken.find("\"p50_us\":1.5");
  ASSERT_NE(at, std::string::npos);
  broken.replace(at, 12, "\"p50_us\":\"x\"");
  const auto problem = lint_report(broken);
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("p50_us"), std::string::npos) << *problem;
}

}  // namespace
}  // namespace v6::obs
