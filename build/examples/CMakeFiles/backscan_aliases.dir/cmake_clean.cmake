file(REMOVE_RECURSE
  "CMakeFiles/backscan_aliases.dir/backscan_aliases.cpp.o"
  "CMakeFiles/backscan_aliases.dir/backscan_aliases.cpp.o.d"
  "backscan_aliases"
  "backscan_aliases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backscan_aliases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
