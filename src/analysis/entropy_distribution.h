// IID-entropy distributions over corpora (Figures 1, 3, 4).
//
// Corpus-wide variants run on analysis::ParallelScan: pass an
// AnalysisConfig with threads > 1 to shard the scan; results are
// bit-identical to the serial (threads == 1) path at any thread count.
#pragma once

#include <span>
#include <vector>

#include "analysis/parallel_scan.h"
#include "hitlist/corpus.h"
#include "net/ipv6.h"
#include "util/stats.h"

namespace v6::analysis {

// Entropy of every unique address's IID in the corpus.
util::EmpiricalDistribution entropy_distribution(
    const hitlist::Corpus& c, const AnalysisConfig& config = {},
    std::vector<AnalysisStageStats>* stats = nullptr);

// Same, over any record source (in-memory or out-of-core); results are
// bit-identical across backends for the same record set.
util::EmpiricalDistribution entropy_distribution(
    const ScanSource& source, const AnalysisConfig& config = {},
    std::vector<AnalysisStageStats>* stats = nullptr);

// Same, over an explicit address set.
util::EmpiricalDistribution entropy_distribution(
    std::span<const net::Ipv6Address> addresses);

// Entropy of addresses present in BOTH corpora (Fig 1's intersection
// curves). Iterates the smaller corpus.
util::EmpiricalDistribution intersection_entropy_distribution(
    const hitlist::Corpus& a, const hitlist::Corpus& b,
    const AnalysisConfig& config = {},
    std::vector<AnalysisStageStats>* stats = nullptr);

// Number of addresses present in both corpora.
std::uint64_t intersection_size(const hitlist::Corpus& a,
                                const hitlist::Corpus& b,
                                const AnalysisConfig& config = {},
                                std::vector<AnalysisStageStats>* stats =
                                    nullptr);

}  // namespace v6::analysis
