#include <gtest/gtest.h>

#include <sstream>

#include "hitlist/corpus_io.h"
#include "proto/buffer.h"
#include "proto/datagram.h"
#include "util/rng.h"

namespace v6 {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

proto::Ipv6Header header_between(std::uint64_t a, std::uint64_t b) {
  proto::Ipv6Header header;
  header.src = addr(a, 1);
  header.dst = addr(b, 2);
  header.hop_limit = 61;
  return header;
}

TEST(Datagram, Icmpv6RoundTrip) {
  const auto wire = proto::build_icmpv6_datagram(
      header_between(10, 20), proto::make_echo_request(7, 9, {1, 2, 3}));
  const auto parsed = proto::parse_datagram(wire);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_icmpv6());
  const auto& message = std::get<proto::Icmpv6Message>(parsed->payload);
  EXPECT_EQ(message.identifier(), 7);
  EXPECT_EQ(message.sequence(), 9);
  EXPECT_EQ(parsed->header.hop_limit, 61);
}

TEST(Datagram, UdpRoundTrip) {
  const auto wire = proto::build_udp_datagram(
      header_between(1, 2), {4000, 123, {9, 8, 7, 6}});
  const auto parsed = proto::parse_datagram(wire);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_udp());
  EXPECT_EQ(std::get<proto::UdpDatagram>(parsed->payload).payload.size(), 4u);
}

TEST(Datagram, TcpRoundTrip) {
  const auto wire = proto::build_tcp_datagram(
      header_between(3, 4), proto::make_syn(4000, 443, 0xabc));
  const auto parsed = proto::parse_datagram(wire);
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->is_tcp());
  EXPECT_TRUE(std::get<proto::TcpSegment>(parsed->payload).is_syn());
}

TEST(Datagram, RejectsLengthMismatch) {
  auto wire = proto::build_udp_datagram(header_between(1, 2), {1, 2, {3}});
  wire.push_back(0);  // trailing byte breaks payload_length consistency
  EXPECT_FALSE(proto::parse_datagram(wire));
}

TEST(Datagram, RejectsUnknownNextHeader) {
  auto wire = proto::build_udp_datagram(header_between(1, 2), {1, 2, {3}});
  wire[6] = 150;  // bogus next-header
  EXPECT_FALSE(proto::parse_datagram(wire));
}

TEST(Datagram, RejectsUpperLayerCorruption) {
  auto wire = proto::build_icmpv6_datagram(header_between(1, 2),
                                           proto::make_echo_request(1, 2));
  wire.back() ^= 0xff;
  EXPECT_FALSE(proto::parse_datagram(wire));
}

TEST(Datagram, FuzzedInputNeverCrashes) {
  util::Rng rng(5);
  int accepted = 0;
  for (int i = 0; i < 3000; ++i) {
    std::vector<std::uint8_t> junk(rng.bounded(128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    if (proto::parse_datagram(junk)) ++accepted;
  }
  EXPECT_EQ(accepted, 0);  // version+length+checksum gauntlet
}

TEST(CorpusIo, SaveLoadRoundTrip) {
  hitlist::Corpus corpus;
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    corpus.add(addr(rng.next(), rng.next()),
               static_cast<util::SimTime>(rng.bounded(1 << 24)),
               static_cast<std::uint8_t>(rng.bounded(27)));
  }
  // Re-observe some addresses so counts and masks exercise merging.
  corpus.add(addr(1, 1), 10, 1);
  corpus.add(addr(1, 1), 99999, 2);

  std::stringstream stream;
  const auto bytes = hitlist::save_corpus(stream, corpus);
  EXPECT_EQ(bytes, 8u + 16 + corpus.size() * 32);

  const auto loaded = hitlist::load_corpus(stream);
  EXPECT_EQ(loaded.size(), corpus.size());
  EXPECT_EQ(loaded.total_observations(), corpus.total_observations());
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    const auto* other = loaded.find(rec.address);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->first_seen, rec.first_seen);
    EXPECT_EQ(other->last_seen, rec.last_seen);
    EXPECT_EQ(other->count, rec.count);
    EXPECT_EQ(other->vantage_mask, rec.vantage_mask);
  });
}

TEST(CorpusIo, EmptyCorpusRoundTrips) {
  hitlist::Corpus corpus;
  std::stringstream stream;
  hitlist::save_corpus(stream, corpus);
  EXPECT_EQ(hitlist::load_corpus(stream).size(), 0u);
}

TEST(CorpusIo, RejectsBadMagic) {
  std::stringstream stream("NOTACORP........");
  EXPECT_THROW(hitlist::load_corpus(stream), std::runtime_error);
}

TEST(CorpusIo, RejectsTruncation) {
  hitlist::Corpus corpus;
  corpus.add(addr(1, 2), 5, 0);
  std::stringstream stream;
  hitlist::save_corpus(stream, corpus);
  const std::string full = stream.str();
  for (std::size_t cut : {9ul, 20ul, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(hitlist::load_corpus(truncated), std::runtime_error);
  }
}

TEST(CorpusIo, RejectsTrailingGarbage) {
  hitlist::Corpus corpus;
  corpus.add(addr(1, 2), 5, 0);
  std::stringstream stream;
  hitlist::save_corpus(stream, corpus);
  stream << "extra";
  EXPECT_THROW(hitlist::load_corpus(stream), std::runtime_error);
}

TEST(CorpusIo, RejectsOversizedRecordCountBeforeAllocating) {
  // A hostile header can claim any record count; the loader must reject
  // it from the payload size alone instead of allocating a table for it.
  // These counts would demand hundreds of GiB (or overflow the byte-size
  // arithmetic entirely) if the check ran after the allocation.
  for (const std::uint64_t claimed :
       {std::uint64_t{1} << 40, std::uint64_t{1} << 61,
        std::uint64_t{0xffffffffffffffff}, std::uint64_t{2}}) {
    proto::BufferWriter writer;
    const char magic[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '1'};
    writer.bytes(
        std::span(reinterpret_cast<const std::uint8_t*>(magic), 8));
    writer.u64(claimed);  // record count
    writer.u64(1);        // observation count
    // Payload for exactly one record.
    for (int i = 0; i < 32; ++i) writer.u8(i == 15 ? 1 : 0);
    std::stringstream stream;
    stream.write(reinterpret_cast<const char*>(writer.data().data()),
                 static_cast<std::streamsize>(writer.size()));
    EXPECT_THROW(hitlist::load_corpus(stream), std::runtime_error)
        << "claimed record count " << claimed;
  }
}

}  // namespace
}  // namespace v6
