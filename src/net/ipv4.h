// Minimal IPv4 address value type.
//
// IPv4 appears in this codebase only as a payload: operators sometimes embed
// a host's IPv4 address inside the IID of its IPv6 address, and the Fig 5
// classifier must recognize those embeddings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace v6::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (24 - 8 * i));
  }

  // Dotted-quad "a.b.c.d".
  std::string to_string() const;
  static std::optional<Ipv4Address> parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace v6::net
