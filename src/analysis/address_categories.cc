#include "analysis/address_categories.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "kernels/batch.h"

namespace v6::analysis {

namespace {

bool in_window(const hitlist::AddressRecord& rec, util::SimTime start,
               util::SimTime end) {
  return static_cast<util::SimTime>(rec.first_seen) < end &&
         static_cast<util::SimTime>(rec.last_seen) >= start;
}

// Records classified per batch-kernel call.
constexpr std::size_t kChunk = 1024;

}  // namespace

CategoryBreakdown categorize_corpus(const ScanSource& source,
                                    const sim::World& world,
                                    util::SimTime window_start,
                                    util::SimTime window_end,
                                    const CategoryConfig& config,
                                    const AnalysisConfig& analysis,
                                    std::vector<AnalysisStageStats>* stats) {
  // Pass 1: per-AS totals and same-AS IPv4-embedding candidates. The map
  // merges by summing per-AS counters — commutative, shard-independent.
  struct AsStats {
    std::uint64_t addresses = 0;
    std::uint64_t ipv4_candidates = 0;
  };
  using PerAs = std::unordered_map<std::uint32_t, AsStats>;
  const PerAs per_as = scan_corpus<PerAs>(
      source, analysis, "categorize_corpus/per_as", [] { return PerAs(); },
      [&](PerAs& m, const hitlist::AddressRecord& rec) {
        if (!in_window(rec, window_start, window_end)) return;
        const auto as_index = world.as_index_of(rec.address);
        if (!as_index) return;
        AsStats& as_stats = m[*as_index];
        ++as_stats.addresses;
        for (const auto& cand : net::ipv4_candidates(rec.address.iid())) {
          const auto v4_as = world.as_index_of_ipv4(cand.address);
          if (v4_as && *v4_as == *as_index) {
            ++as_stats.ipv4_candidates;
            break;  // one acceptance per address
          }
        }
      },
      [](PerAs& into, PerAs&& from) {
        for (const auto& [as_index, as_stats] : from) {
          AsStats& dst = into[as_index];
          dst.addresses += as_stats.addresses;
          dst.ipv4_candidates += as_stats.ipv4_candidates;
        }
      },
      stats);

  // Which ASes pass the acceptance gates (per-key decision; the map's
  // iteration order is irrelevant).
  std::unordered_map<std::uint32_t, bool> as_accepts;
  as_accepts.reserve(per_as.size());
  for (const auto& [as_index, as_stats] : per_as) {
    as_accepts[as_index] =
        as_stats.ipv4_candidates >= config.min_instances_per_as &&
        static_cast<double>(as_stats.ipv4_candidates) >
            config.min_fraction_of_as *
                static_cast<double>(as_stats.addresses);
  }

  // Pass 2: final classification (reads as_accepts concurrently, but
  // read-only). Addresses outside the (simulated) BGP table are skipped,
  // as in pass 1 — AS attribution is part of the methodology. The
  // structural classification itself runs through the batch kernel a
  // chunk at a time: the AS/window gates are resolved per record first,
  // then classify_iid_batch categorizes the chunk, and only gated-in
  // records are tallied (classification is pure, so categorizing a
  // skipped record computes an unused value, never a different tally).
  return scan_corpus_blocks<CategoryBreakdown>(
      source, analysis, "categorize_corpus/classify",
      [] { return CategoryBreakdown(); },
      [&](CategoryBreakdown& b, std::span<const hitlist::AddressRecord>
                                    block) {
        std::uint64_t iids[kChunk];
        std::uint8_t accepted[kChunk];
        bool eligible[kChunk];
        net::AddressCategory categories[kChunk];
        for (std::size_t base = 0; base < block.size(); base += kChunk) {
          const std::size_t n = std::min(kChunk, block.size() - base);
          kernels::extract_iid_batch(
              reinterpret_cast<const std::uint8_t*>(block.data() + base),
              sizeof(hitlist::AddressRecord), n, iids);
          for (std::size_t i = 0; i < n; ++i) {
            const hitlist::AddressRecord& rec = block[base + i];
            accepted[i] = 0;
            eligible[i] = false;
            if (!in_window(rec, window_start, window_end)) continue;
            const auto as_index = world.as_index_of(rec.address);
            if (!as_index) continue;
            eligible[i] = true;
            if (const auto it = as_accepts.find(*as_index);
                it != as_accepts.end() && it->second) {
              for (const auto& cand : net::ipv4_candidates(iids[i])) {
                const auto v4_as = world.as_index_of_ipv4(cand.address);
                if (v4_as && *v4_as == *as_index) {
                  accepted[i] = 1;
                  break;
                }
              }
            }
          }
          kernels::classify_iid_batch(iids, accepted, n, categories);
          for (std::size_t i = 0; i < n; ++i) {
            if (!eligible[i]) continue;
            ++b.counts[static_cast<std::size_t>(categories[i])];
            ++b.total;
          }
        }
      },
      [](CategoryBreakdown& into, CategoryBreakdown&& from) {
        for (std::size_t i = 0; i < into.counts.size(); ++i) {
          into.counts[i] += from.counts[i];
        }
        into.total += from.total;
      },
      stats);
}

CategoryBreakdown categorize_corpus(const hitlist::Corpus& corpus,
                                    const sim::World& world,
                                    util::SimTime window_start,
                                    util::SimTime window_end,
                                    const CategoryConfig& config,
                                    const AnalysisConfig& analysis,
                                    std::vector<AnalysisStageStats>* stats) {
  return categorize_corpus(make_source(corpus), world, window_start,
                           window_end, config, analysis, stats);
}

}  // namespace v6::analysis
