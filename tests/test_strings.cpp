#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/sim_time.h"

namespace v6::util {
namespace {

TEST(FormatDuration, PicksCoarsestSensibleUnit) {
  EXPECT_EQ(format_duration(0), "0s");
  EXPECT_EQ(format_duration(45), "45s");
  EXPECT_EQ(format_duration(119), "119s");
  EXPECT_EQ(format_duration(2 * kMinute), "2m");
  EXPECT_EQ(format_duration(90 * kMinute), "90m");
  EXPECT_EQ(format_duration(3 * kHour), "3h");
  EXPECT_EQ(format_duration(2 * kDay), "2d");
  EXPECT_EQ(format_duration(3 * kWeek), "3w");
  EXPECT_EQ(format_duration(-kHour), "-60m");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a::b", ':');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleToken) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparator) {
  const auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(Join, Basic) {
  const std::string parts[] = {"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
}

TEST(Join, Empty) { EXPECT_EQ(join({}, ","), ""); }

TEST(ToLower, MixedCase) { EXPECT_EQ(to_lower("AbC1:"), "abc1:"); }

TEST(ParseHexU64, Valid) {
  EXPECT_EQ(parse_hex_u64("ff"), 0xffu);
  EXPECT_EQ(parse_hex_u64("0"), 0u);
  EXPECT_EQ(parse_hex_u64("DeadBeef"), 0xdeadbeefu);
  EXPECT_EQ(parse_hex_u64("ffffffffffffffff"), ~std::uint64_t{0});
}

TEST(ParseHexU64, Invalid) {
  EXPECT_FALSE(parse_hex_u64(""));
  EXPECT_FALSE(parse_hex_u64("xyz"));
  EXPECT_FALSE(parse_hex_u64("12 "));
  EXPECT_FALSE(parse_hex_u64("11111111111111111"));  // 17 digits
}

TEST(ParseDecU64, Valid) {
  EXPECT_EQ(parse_dec_u64("0"), 0u);
  EXPECT_EQ(parse_dec_u64("18446744073709551615"), ~std::uint64_t{0});
}

TEST(ParseDecU64, Invalid) {
  EXPECT_FALSE(parse_dec_u64(""));
  EXPECT_FALSE(parse_dec_u64("-1"));
  EXPECT_FALSE(parse_dec_u64("1a"));
  EXPECT_FALSE(parse_dec_u64("18446744073709551616"));  // overflow
}

TEST(HexEncode, Bytes) {
  const std::uint8_t bytes[] = {0xde, 0xad, 0x00, 0x0f};
  EXPECT_EQ(hex_encode(bytes), "dead000f");
}

TEST(WithCommas, Grouping) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(7914066999ULL), "7,914,066,999");
}

TEST(HumanCount, Scales) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(21409629), "21.41M");
  EXPECT_EQ(human_count(7914066999ULL), "7.91B");
}

TEST(Percent, Formatting) {
  EXPECT_EQ(percent(1.0 / 3.0), "33.33%");
  EXPECT_EQ(percent(0.5, 0), "50%");
}

}  // namespace
}  // namespace v6::util
