#include "scan/backscanner.h"

#include <algorithm>

namespace v6::scan {

Backscanner::Backscanner(netsim::DataPlane& plane,
                         const BackscanConfig& config)
    : plane_(&plane), config_(config), rng_(util::mix64(config.seed ^ 0xbac)) {}

void Backscanner::observe(const ntp::Observation& obs,
                          const net::Ipv6Address& vantage_source) {
  const auto interval = static_cast<std::uint64_t>(
      obs.time / std::max<util::SimDuration>(config_.interval, 1));
  // "No IP probed more than once during a 10 minute interval."
  const std::uint64_t key =
      util::mix64(interval ^ util::mix64(obs.client.hi64()) ^
                  util::mix64(obs.client.lo64() + 0x9e37));
  if (!probed_keys_.insert(key).second) return;

  const util::SimTime probe_time = static_cast<util::SimTime>(interval + 1) *
                                   config_.interval;
  // A per-client deterministic RNG keeps the probe sequence independent of
  // observation arrival order.
  util::Rng probe_rng(key);

  // Loss-tolerant probing: scan() re-probes silent targets
  // config_.retries extra times, exactly as the real ZMap6 invocation
  // would.
  Zmap6Scanner zmap(
      *plane_, {vantage_source, 100000, config_.retries, probe_rng.next()});

  BackscanOutcome outcome;
  outcome.client = obs.client;
  outcome.vantage = obs.vantage;
  outcome.client_responded =
      zmap.scan(std::span(&obs.client, 1), probe_time)[0].responded;
  ++report_.clients_probed;
  if (outcome.client_responded) ++report_.clients_responded;

  // One random address in the client's /64.
  std::uint64_t iid = probe_rng.next();
  if (iid == obs.client.lo64()) iid ^= 1;
  outcome.random_target = net::Ipv6Address::from_u64(obs.client.hi64(), iid);
  outcome.random_responded =
      zmap.scan(std::span(&outcome.random_target, 1), probe_time)[0]
          .responded;
  ++report_.random_probed;
  if (outcome.random_responded) {
    responsive_random_.insert(outcome.random_target);
    aliased_.insert(net::slash64_of(outcome.random_target));
  }

  // A sampled Yarrp trace back to the client.
  if (probe_rng.chance(config_.trace_fraction)) {
    YarrpTracer yarrp(*plane_, {vantage_source, config_.yarrp_max_hops, 50000,
                                probe_rng.next()});
    const net::Ipv6Address targets[] = {obs.client};
    const auto traces = yarrp.trace(targets, probe_time);
    for (const auto& addr : YarrpTracer::discovered(traces)) {
      trace_found_.insert(addr);
    }
    if (!outcome.client_responded && traces[0].destination_reached) {
      outcome.client_responded = true;
      ++report_.clients_responded;
    }
  }
  report_.outcomes.push_back(outcome);
}

BackscanReport Backscanner::finish() {
  report_.aliased_slash64s.assign(aliased_.begin(), aliased_.end());
  std::sort(report_.aliased_slash64s.begin(), report_.aliased_slash64s.end());
  report_.responsive_random_addresses = responsive_random_.size();
  report_.trace_discovered.assign(trace_found_.begin(), trace_found_.end());
  std::sort(report_.trace_discovered.begin(), report_.trace_discovered.end());

  BackscanReport out = std::move(report_);
  report_ = {};
  probed_keys_.clear();
  aliased_.clear();
  responsive_random_.clear();
  trace_found_.clear();
  return out;
}

}  // namespace v6::scan
