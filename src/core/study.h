// The end-to-end study: the paper's whole pipeline behind one API.
//
//   StudyConfig cfg;                 // scale knobs, seeds, stage toggles
//   Study study(cfg);
//   const StudyResults& r = study.run();   // all four stages
//
// run() takes a RunOptions to toggle stages, resume stage 1 from a
// checkpoint, or receive checkpoint snapshots — one entry point, one
// result. Stages are idempotent: a second run() re-runs nothing. The
// legacy per-stage methods (collect / resume_collect / run_campaigns /
// run_backscan / run_analysis) survive as thin shims.
//
// Observability: every Study owns an obs::Registry. All layers (data
// plane, pool DNS, collector, scanners, analysis engine) report into it,
// and run() closes by snapshotting the registry into
// StudyResults::metrics — sim-time-stamped stage spans included. Metrics
// never perturb results: the bit-identity tests pass with metrics on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/address_categories.h"
#include "analysis/as_entropy.h"
#include "analysis/dataset_compare.h"
#include "analysis/lifetimes.h"
#include "analysis/parallel_scan.h"
#include "dist/sim_cluster.h"
#include "hitlist/campaigns.h"
#include "hitlist/checkpoint_io.h"
#include "hitlist/corpus.h"
#include "hitlist/passive_collector.h"
#include "hitlist/tiered_corpus.h"
#include "netsim/data_plane.h"
#include "netsim/fault_schedule.h"
#include "netsim/pool_dns.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/timeline.h"
#include "scan/backscanner.h"
#include "serve/query_service.h"
#include "sim/world.h"

namespace v6::core {

struct StudyConfig {
  sim::WorldConfig world;
  netsim::DataPlaneConfig plane;
  hitlist::CollectorConfig collector;
  // Share of pool queries that land on our 27 servers (the pool has
  // thousands; the study sees a sample of every client's polls).
  double pool_capture_share = 0.03;

  // Vantage fault injection over the study window. Inactive by default;
  // when active the same seeded plan drives the data plane (dropped
  // datagrams), the pool's health monitoring (steering), and the
  // per-vantage degradation stats in StudyResults.
  netsim::FaultPlanConfig faults;
  // How long the pool monitor takes to notice a crash (and, later, the
  // recovery) before adjusting steering.
  util::SimDuration pool_monitor_delay = 15 * util::kMinute;

  // Backscanning (§3): one week, from a handful of the vantage servers,
  // months after the main window (the paper ran it in January 2023).
  std::uint8_t backscan_vantages = 5;
  util::SimTime backscan_start = 345 * util::kDay;
  util::SimDuration backscan_duration = util::kWeek;
  scan::BackscanConfig backscan;

  hitlist::HitlistCampaignConfig hitlist_campaign;
  hitlist::CaidaCampaignConfig caida_campaign;

  // Out-of-core collection (stage 1): when spill.memory_budget_bytes > 0
  // the NTP corpus is kept in a TieredCorpus — collector shards flush to
  // sorted on-disk runs at deterministic merge barriers whenever their
  // combined heap crosses the budget, and every analysis streams the
  // k-way-merged runs instead of an in-memory table. Saved corpus bytes
  // and analysis floats are bit-identical to the in-memory path at any
  // thread count and any budget. Resuming from a checkpoint
  // (RunOptions::resume_from) honors the budget too: the checkpointed
  // snapshot seeds the TieredCorpus as its first spilled run and the
  // resumed tail flushes through the same deterministic barriers, so the
  // merged output is bit-identical to both the in-memory resume and the
  // uninterrupted run.
  hitlist::SpillConfig spill;

  // Analysis parallelism (stage 4): every analysis scan shards across
  // config.analysis.threads (see util::Parallelism). Results are
  // bit-identical at any thread count; only wall time moves.
  analysis::AnalysisConfig analysis;
  // Top-N cutoff for the Fig 4 AS entropy profiles.
  std::size_t analysis_top_ases = 10;

  // Wire every layer into the study's metrics registry. Increments are
  // relaxed atomics on thread-local stripes (obs/metrics.h) or bulk adds
  // at merge points, so leaving this on costs nothing measurable and
  // changes no result bit — it exists for A/B regression tests.
  bool metrics = true;
};

// §4.2's alias cross-checks between backscanning and the Hitlist.
struct AliasCrossCheck {
  // Backscan-inferred aliased /64s also known to the Hitlist campaign.
  std::uint64_t aliased_known_to_hitlist = 0;
  // ...and those the Hitlist does not know (the paper's 46.5K discovery).
  std::uint64_t aliased_new = 0;
  // NTP clients (backscan week) living inside backscan-aliased /64s...
  std::uint64_t ntp_clients_in_aliased = 0;
  // ...versus Hitlist addresses inside those same /64s (the "only 23").
  std::uint64_t hitlist_addresses_in_aliased = 0;
};

// Stage 4 output: the paper's core corpus analyses (Figs 1, 2, 4, 5 and
// Table 1) plus per-stage scan instrumentation.
struct AnalysisReport {
  util::EmpiricalDistribution entropy;                // Fig 1 (NTP corpus)
  std::vector<analysis::DatasetSummary> table1;       // NTP, Hitlist, CAIDA
  analysis::AddressLifetimeReport address_lifetimes;  // Fig 2a
  analysis::IidLifetimeReport iid_lifetimes;          // Fig 2b
  std::vector<analysis::AsEntropyProfile> top_ases;   // Fig 4
  analysis::CategoryBreakdown categories;             // Fig 5
  // One entry per scan stage: records scanned, wall µs, merge µs —
  // the observability hook for analysis throughput regressions.
  std::vector<analysis::AnalysisStageStats> stage_stats;
};

struct StudyResults {
  hitlist::Corpus ntp{1 << 16};
  // Out-of-core NTP corpus, set instead of `ntp` when
  // StudyConfig::spill is active (then `ntp` stays empty). Analyses,
  // country_mix(), and Study::save_ntp() all consult it transparently;
  // iterate it directly with for_each_merged() when needed.
  std::unique_ptr<hitlist::TieredCorpus> ntp_runs;
  // Clients observed during the backscan week (a separate, later window).
  hitlist::Corpus backscan_week{1 << 12};
  hitlist::HitlistResult hitlist;
  hitlist::CaidaResult caida;
  scan::BackscanReport backscan;
  AliasCrossCheck alias_check;
  std::uint64_t polls_attempted = 0;
  std::uint64_t polls_answered = 0;
  // Per-vantage degradation under the fault plan (indexed by vantage id;
  // empty until collect()). The study reports how much each vantage lost
  // instead of aborting on churn.
  std::vector<hitlist::VantageHealthStats> vantage_health;
  // Stage 4 (empty until run_analysis()).
  AnalysisReport analysis;
  // Distributed-collection report (set only when RunOptions::distributed
  // drove stage 1): lease/recovery counters and the V6DIST01 frame log.
  std::optional<dist::DistReport> dist;
  // Folded view of the study's metrics registry plus its trace spans,
  // captured when run() finishes (empty when driven via the legacy
  // per-stage shims without a final run()).
  obs::Snapshot metrics;
  // Sim-time series of WindowRecords (empty unless RunOptions::
  // sample_interval > 0): one window per sampling boundary inside the
  // collection window plus one per stage transition / campaign snapshot /
  // analysis pass. Bit-identical at any thread count; per-window counter
  // deltas telescope to the end-of-run totals in `metrics`.
  obs::Timeline timeline;
};

// Stage selection and stage-1 plumbing for Study::run(). The defaults run
// the whole pipeline.
struct RunOptions {
  bool collect = true;
  bool campaigns = true;
  bool backscan = true;
  bool analysis = true;
  // Stage-1 checkpointing: combined with collector.checkpoint_interval,
  // receives periodic crash-recovery snapshots.
  hitlist::CheckpointSink checkpoint_sink;
  // Resume stage 1 from a checkpoint written by a previous (crashed) run
  // with the same configuration; bit-identical to an uninterrupted run.
  std::optional<hitlist::CollectionCheckpoint> resume_from;
  // Sim-time spacing of timeline sampling windows; 0 disables sampling.
  // Samples are taken only at deterministic merge barriers (collector
  // grid boundaries, stage transitions, campaign snapshots, analysis
  // passes) — never wall-clock timers — so StudyResults::timeline is
  // bit-identical at any thread count and sampling changes no result.
  util::SimDuration sample_interval = 0;
  // Distributed stage 1: when set, collection runs through a simulated
  // dist::SimCluster — N workers each collecting a vantage subset under
  // chunk leases, with the coordinator's deterministic merge feeding the
  // rest of the pipeline. The merged corpus, saved bytes, and every
  // analysis float are bit-identical to the single-process run at any
  // worker count, including under injected worker kills/stalls.
  // Incompatible with spill, resume_from, checkpoint_sink, and
  // plane.wire_fidelity (run() throws std::invalid_argument).
  std::optional<dist::DistConfig> distributed;
  // Hitlist-as-a-service: with serve.enabled, stage 1 publishes epoch
  // snapshots into Study::query_service() — interior epochs every
  // serve.epoch_interval sim-seconds at collection merge barriers
  // (in-memory and tiered single-process paths), plus one final epoch
  // covering the full corpus at window end (all paths, including
  // distributed and resumed runs). Readers on other threads may query
  // the service throughout; per-epoch answers are bit-identical at any
  // reader/ingest thread count. Call query_service() once before
  // spawning run() on a background thread (lazy construction is not
  // thread-safe).
  serve::ServeConfig serve;
};

class Study {
 public:
  explicit Study(const StudyConfig& config);

  const sim::World& world() const noexcept { return *world_; }
  const StudyConfig& config() const noexcept { return config_; }
  netsim::DataPlane& plane() noexcept { return *plane_; }
  // The pool DNS steering layer — exposed so out-of-process dist workers
  // can wire a NodeEnv against this study's simulation stack.
  netsim::PoolDns& pool_dns() noexcept { return *dns_; }

  // The study's fault plan, or nullptr when fault injection is off.
  const netsim::FaultSchedule* faults() const noexcept {
    return faults_.get();
  }

  // Runs the selected stages in pipeline order (collect -> campaigns ->
  // backscan -> analysis), wraps each in a sim-time trace span, and
  // snapshots the metrics registry into the returned results. Stages
  // already run (by a previous run() or a legacy shim) are skipped, so
  // repeated calls are cheap and safe.
  const StudyResults& run(RunOptions options = {});

  // The study's metrics registry. Always present; layers report into it
  // only while config().metrics is true.
  obs::Registry& metrics_registry() noexcept { return *metrics_; }
  const obs::Registry& metrics_registry() const noexcept { return *metrics_; }

  // The serving layer (lazily constructed, metrics-wired per
  // config().metrics). Construct it on this thread before handing the
  // study to a background ingest thread; after that, the service itself
  // is safe to query from any number of reader threads.
  serve::QueryService& query_service();

  // --- Legacy per-stage API (thin shims over run()) ---------------------
  // Deprecated: prefer run(RunOptions). Kept so existing callers compile.

  // Stage 1: passive NTP collection over the study window.
  void collect(const hitlist::CheckpointSink& sink = {});
  // Stage 1, resumed from a checkpoint of a previous (crashed) run.
  void resume_collect(hitlist::CollectionCheckpoint&& checkpoint,
                      const hitlist::CheckpointSink& sink = {});
  // Stage 2: the two active comparison campaigns.
  void run_campaigns();
  // Stage 3: backscan week (collects clients in its own window, probes
  // them back, cross-checks aliases against the Hitlist campaign).
  void run_backscan();
  // Stage 4: the corpus analyses behind Table 1 and Figs 1, 2, 4, 5,
  // sharded per config.analysis.threads. Requires collect(); the Table 1
  // campaign columns are filled only if run_campaigns() ran first.
  void run_analysis();

  const StudyResults& results() const noexcept { return results_; }
  StudyResults& mutable_results() noexcept { return results_; }

  // Unique-address count per (true) country of the NTP corpus, descending
  // (§3's country mix).
  std::vector<std::pair<geo::CountryCode, std::uint64_t>> country_mix() const;

  // Writes the NTP corpus as a V6CORP snapshot (hitlist/corpus_io.h) and
  // returns the bytes written. Streams the merged runs when the study ran
  // out-of-core — the bytes are identical to saving the equivalent
  // in-memory corpus.
  std::size_t save_ntp(std::ostream& out) const;

  // Unique NTP addresses collected, whichever backend holds them.
  std::uint64_t ntp_size() const noexcept {
    return results_.ntp_runs != nullptr ? results_.ntp_runs->merged_size()
                                        : results_.ntp.size();
  }

  // Convenience: construct and run all stages.
  static Study run(const StudyConfig& config);

 private:
  void do_collect(const hitlist::CheckpointSink& sink);
  void do_collect_distributed(const dist::DistConfig& dist_config);
  void do_resume_collect(hitlist::CollectionCheckpoint&& checkpoint,
                         const hitlist::CheckpointSink& sink);
  void do_campaigns();
  void do_backscan();
  void do_analysis();
  // Effective per-stage configs: copies of the user's with the metrics
  // registry (and, during a sampled run(), the timeline sampler and the
  // serving layer's epoch sink) wired in (when config_.metrics is on;
  // epoch publication is independent of the metrics toggle).
  hitlist::CollectorConfig collector_config();

  StudyConfig config_;
  std::unique_ptr<sim::World> world_;
  std::unique_ptr<netsim::DataPlane> plane_;
  std::unique_ptr<netsim::PoolDns> dns_;
  std::unique_ptr<netsim::FaultSchedule> faults_;
  // unique_ptr: the registry is pinned (handles and components point at
  // it) while Study itself stays movable.
  std::unique_ptr<obs::Registry> metrics_;
  // Non-null only while a run() with sample_interval > 0 is in flight
  // (the sampler itself lives on that run()'s stack).
  obs::TimelineSampler* sampler_ = nullptr;
  // The serving layer; null until query_service() (or a serving run())
  // first touches it. unique_ptr for the same pinning reason as metrics_.
  std::unique_ptr<serve::QueryService> serve_;
  // Non-zero only while a run() with serve.enabled and a positive
  // epoch_interval is in flight (mirrors sampler_).
  util::SimDuration serve_epoch_interval_ = 0;
  StudyResults results_;
  bool collected_ = false;
  bool campaigned_ = false;
  bool backscanned_ = false;
  bool analyzed_ = false;
};

}  // namespace v6::core
