// IID construction: how each addressing strategy turns (device, prefix,
// time) into the low 64 bits of an address.
//
// Everything here is a pure function of its arguments, which is what makes
// the world reversible: the data plane can recompute any device's address
// at any instant and compare it against a probed target.
#pragma once

#include <cstdint>

#include "net/ipv6.h"
#include "sim/device.h"
#include "util/sim_time.h"

namespace v6::sim {

// Day number since the simulation epoch; privacy-extension IIDs regenerate
// at day boundaries.
constexpr std::int64_t day_index(util::SimTime t) noexcept {
  return t / util::kDay;
}

// The IID the device uses at time `t` inside the /64 whose network half is
// `prefix_hi`. Strategies that are prefix-dependent (RFC 7217) or
// time-dependent (RFC 4941) take both into account.
std::uint64_t iid_for(const Device& device, std::uint64_t prefix_hi,
                      util::SimTime t) noexcept;

// Full address given the /64's network half.
inline net::Ipv6Address address_for(const Device& device,
                                    std::uint64_t prefix_hi,
                                    util::SimTime t) noexcept {
  return net::Ipv6Address::from_u64(prefix_hi, iid_for(device, prefix_hi, t));
}

}  // namespace v6::sim
