file(REMOVE_RECURSE
  "CMakeFiles/v6_geo.dir/bssid_db.cc.o"
  "CMakeFiles/v6_geo.dir/bssid_db.cc.o.d"
  "CMakeFiles/v6_geo.dir/country.cc.o"
  "CMakeFiles/v6_geo.dir/country.cc.o.d"
  "CMakeFiles/v6_geo.dir/geodb.cc.o"
  "CMakeFiles/v6_geo.dir/geodb.cc.o.d"
  "CMakeFiles/v6_geo.dir/location.cc.o"
  "CMakeFiles/v6_geo.dir/location.cc.o.d"
  "libv6_geo.a"
  "libv6_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
