// Console table and CSV emission for benches and examples.
//
// Every bench prints two artifacts: a human-readable table (paper value vs.
// measured value) and optionally machine-readable CSV series for the figure
// curves. TablePrinter right-aligns numeric-looking cells automatically.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace v6::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Renders the table with a header rule to `out`.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

class CsvWriter {
 public:
  // Writes the header row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> headers);

  void row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& out_;
  std::size_t columns_;
};

// Prints a "figure" as CSV-ish aligned series rows, prefixed with a caption
// line. Used by benches to dump CDF curves.
void print_series(std::ostream& out, const std::string& caption,
                  const std::vector<std::string>& column_names,
                  const std::vector<std::vector<double>>& columns);

}  // namespace v6::util
