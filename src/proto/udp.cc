#include "proto/udp.h"

#include "proto/checksum.h"
#include "proto/ipv6_header.h"

namespace v6::proto {

std::vector<std::uint8_t> encode_udp(const UdpDatagram& datagram,
                                     const net::Ipv6Address& src,
                                     const net::Ipv6Address& dst) {
  BufferWriter out;
  out.u16(datagram.src_port);
  out.u16(datagram.dst_port);
  out.u16(static_cast<std::uint16_t>(8 + datagram.payload.size()));
  out.u16(0);  // checksum placeholder
  out.bytes(datagram.payload);
  std::uint16_t sum = pseudo_header_checksum(src, dst, kProtoUdp, out.data());
  // RFC 8200: a computed checksum of zero is transmitted as 0xffff (zero
  // means "no checksum", which is forbidden over IPv6).
  if (sum == 0) sum = 0xffff;
  out.patch_u16(6, sum);
  return std::move(out).take();
}

std::optional<UdpDatagram> decode_udp(std::span<const std::uint8_t> data,
                                      const net::Ipv6Address& src,
                                      const net::Ipv6Address& dst) {
  if (data.size() < 8) return std::nullopt;
  BufferReader in(data);
  UdpDatagram datagram;
  datagram.src_port = in.u16();
  datagram.dst_port = in.u16();
  const std::uint16_t length = in.u16();
  const std::uint16_t sum = in.u16();
  if (length != data.size() || length < 8) return std::nullopt;
  if (sum == 0) return std::nullopt;  // forbidden over IPv6
  if (pseudo_header_checksum(src, dst, kProtoUdp, data) != 0) {
    return std::nullopt;
  }
  datagram.payload.resize(in.remaining());
  in.bytes(datagram.payload);
  return datagram;
}

}  // namespace v6::proto
