#include "proto/checksum.h"

namespace v6::proto {

namespace {

std::uint32_t sum_words(std::span<const std::uint8_t> data,
                        std::uint32_t acc) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i] << 8);
  return acc;
}

std::uint16_t fold(std::uint32_t acc) noexcept {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  return fold(sum_words(data, 0));
}

std::uint16_t pseudo_header_checksum(
    const net::Ipv6Address& src, const net::Ipv6Address& dst,
    std::uint8_t next_header, std::span<const std::uint8_t> payload) noexcept {
  std::uint32_t acc = 0;
  acc = sum_words(src.bytes(), acc);
  acc = sum_words(dst.bytes(), acc);
  const auto length = static_cast<std::uint32_t>(payload.size());
  acc += length >> 16;
  acc += length & 0xffff;
  acc += next_header;  // 3 zero bytes then next header
  acc = sum_words(payload, acc);
  return fold(acc);
}

}  // namespace v6::proto
