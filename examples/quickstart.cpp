// Quickstart: the whole study on a small world, in ~30 lines of API.
//
// Generates a miniature IPv6 Internet, runs the passive NTP collection, the
// two active comparison campaigns, and the backscan, then prints the
// headline numbers the paper's abstract leads with.
#include <cstdio>

#include "analysis/dataset_compare.h"
#include "analysis/entropy_distribution.h"
#include "analysis/eui64_tracking.h"
#include "core/study.h"
#include "util/strings.h"

int main() {
  using namespace v6;

  core::StudyConfig config;
  config.world.seed = 2022;
  config.world.total_sites = 2000;          // small; benches use 10-20k
  config.world.study_duration = 120 * util::kDay;
  config.backscan_start = 130 * util::kDay;

  std::printf("generating world + running all stages...\n");
  core::Study study = core::Study::run(config);
  const auto& r = study.results();

  std::printf("\n== corpus sizes ==\n");
  std::printf("NTP corpus     : %s unique addresses (%s observations)\n",
              util::with_commas(r.ntp.size()).c_str(),
              util::with_commas(r.ntp.total_observations()).c_str());
  std::printf("IPv6 Hitlist   : %s addresses\n",
              util::with_commas(r.hitlist.corpus.size()).c_str());
  std::printf("CAIDA /48 scan : %s addresses\n",
              util::with_commas(r.caida.corpus.size()).c_str());

  const auto ntp_entropy = analysis::entropy_distribution(r.ntp);
  std::printf("\nNTP median IID entropy: %.2f (paper: ~0.8)\n",
              ntp_entropy.median());

  analysis::Eui64Tracker tracker(r.ntp, study.world());
  std::printf("EUI-64 prevalence: %s of %s (%.1f%%), %s unique MACs\n",
              util::with_commas(tracker.eui64_addresses()).c_str(),
              util::with_commas(tracker.corpus_addresses()).c_str(),
              100.0 * static_cast<double>(tracker.eui64_addresses()) /
                  static_cast<double>(tracker.corpus_addresses()),
              util::with_commas(tracker.unique_macs()).c_str());

  std::printf("\n== backscan ==\n");
  std::printf("clients probed %s, responded %s (%.1f%%)\n",
              util::with_commas(r.backscan.clients_probed).c_str(),
              util::with_commas(r.backscan.clients_responded).c_str(),
              100.0 * static_cast<double>(r.backscan.clients_responded) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, r.backscan.clients_probed)));
  std::printf("aliased /64s discovered: %zu (new vs Hitlist: %s)\n",
              r.backscan.aliased_slash64s.size(),
              util::with_commas(r.alias_check.aliased_new).c_str());

  std::printf("\ntop countries by unique addresses:\n");
  auto mix = study.country_mix();
  for (std::size_t i = 0; i < mix.size() && i < 5; ++i) {
    std::printf("  %s  %s\n", mix[i].first.to_string().c_str(),
                util::with_commas(mix[i].second).c_str());
  }
  return 0;
}
