// The NTP Pool's DNS round-robin with coarse geo-steering.
//
// pool.ntp.org resolves differently per client: the pool geolocates the
// resolver/client IP and returns servers near it, rotating among candidates
// (DNS round robin). This stand-in steers by the *IP-geolocation database's*
// country verdict — not ground truth — so MaxMind errors propagate into
// vantage assignment exactly as they would in production, then falls back
// to great-circle-nearest vantage countries.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "geo/country.h"
#include "net/ipv6.h"
#include "sim/world.h"
#include "util/rng.h"

namespace v6::netsim {

class PoolDns {
 public:
  // `global_fraction` models the pool's global-zone fallback: that share
  // of queries is answered with a random worldwide server regardless of
  // client location (under-served regions lean on it heavily).
  // `vantage_share` is the probability a pool query lands on one of *our*
  // vantage servers at all: the pool has thousands of servers and ours
  // are a sliver of the rotation, so most polls are simply invisible to
  // the study. resolve() returns nullptr for those.
  explicit PoolDns(const sim::World& world, double global_fraction = 0.10,
                   double vantage_share = 1.0);

  // Resolves pool.ntp.org for this client: picks one of the vantage
  // servers appropriate for the client's (IP-geolocated) country, with
  // round-robin rotation driven by `rng`. Returns nullptr when the pool
  // has no vantage at all (empty world). Thread-safe: the steering table
  // is materialized at construction and read-only afterwards (collection
  // shards resolve concurrently), and all randomness comes from the
  // caller's `rng`.
  const sim::VantagePoint* resolve(const net::Ipv6Address& client,
                                   util::Rng& rng) const;

  // The steering candidates for a country (exposed for tests): vantages in
  // the country itself if any, else those of the nearest vantage country.
  const std::vector<const sim::VantagePoint*>& candidates(
      geo::CountryCode country) const;

 private:
  const sim::World* world_;
  double global_fraction_;
  double vantage_share_;
  std::unordered_map<geo::CountryCode, std::vector<const sim::VantagePoint*>>
      by_country_;
  // Country (any known to the registry) -> steering candidates. Filled
  // for every registry country in the constructor so lookups never write
  // (concurrent resolve() calls would otherwise race on a lazy cache).
  std::unordered_map<geo::CountryCode,
                     std::vector<const sim::VantagePoint*>>
      steer_cache_;
  std::vector<const sim::VantagePoint*> all_;
};

}  // namespace v6::netsim
