#include "analysis/address_categories.h"

#include <unordered_map>
#include <vector>

namespace v6::analysis {

namespace {

bool in_window(const hitlist::AddressRecord& rec, util::SimTime start,
               util::SimTime end) {
  return static_cast<util::SimTime>(rec.first_seen) < end &&
         static_cast<util::SimTime>(rec.last_seen) >= start;
}

}  // namespace

CategoryBreakdown categorize_corpus(const hitlist::Corpus& corpus,
                                    const sim::World& world,
                                    util::SimTime window_start,
                                    util::SimTime window_end,
                                    const CategoryConfig& config) {
  // Pass 1: per-AS totals and same-AS IPv4-embedding candidates.
  struct AsStats {
    std::uint64_t addresses = 0;
    std::uint64_t ipv4_candidates = 0;
  };
  std::unordered_map<std::uint32_t, AsStats> per_as;
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    if (!in_window(rec, window_start, window_end)) return;
    const auto as_index = world.as_index_of(rec.address);
    if (!as_index) return;
    AsStats& stats = per_as[*as_index];
    ++stats.addresses;
    for (const auto& cand : net::ipv4_candidates(rec.address.iid())) {
      const auto v4_as = world.as_index_of_ipv4(cand.address);
      if (v4_as && *v4_as == *as_index) {
        ++stats.ipv4_candidates;
        break;  // one acceptance per address
      }
    }
  });

  // Which ASes pass the acceptance gates.
  std::unordered_map<std::uint32_t, bool> as_accepts;
  for (const auto& [as_index, stats] : per_as) {
    as_accepts[as_index] =
        stats.ipv4_candidates >= config.min_instances_per_as &&
        static_cast<double>(stats.ipv4_candidates) >
            config.min_fraction_of_as * static_cast<double>(stats.addresses);
  }

  // Pass 2: final classification. Addresses outside the (simulated) BGP
  // table are skipped, as in pass 1 — AS attribution is part of the
  // methodology.
  CategoryBreakdown breakdown;
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    if (!in_window(rec, window_start, window_end)) return;
    const auto as_index = world.as_index_of(rec.address);
    if (!as_index) return;
    bool ipv4_accepted = false;
    if (const auto it = as_accepts.find(*as_index);
        it != as_accepts.end() && it->second) {
      for (const auto& cand : net::ipv4_candidates(rec.address.iid())) {
        const auto v4_as = world.as_index_of_ipv4(cand.address);
        if (v4_as && *v4_as == *as_index) {
          ipv4_accepted = true;
          break;
        }
      }
    }
    const net::AddressCategory category =
        net::classify_address(rec.address, ipv4_accepted);
    ++breakdown.counts[static_cast<std::size_t>(category)];
    ++breakdown.total;
  });
  return breakdown;
}

}  // namespace v6::analysis
