file(REMOVE_RECURSE
  "CMakeFiles/v6_dns.dir/rdns.cc.o"
  "CMakeFiles/v6_dns.dir/rdns.cc.o.d"
  "libv6_dns.a"
  "libv6_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
