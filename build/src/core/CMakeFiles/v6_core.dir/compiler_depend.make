# Empty compiler generated dependencies file for v6_core.
# This may be replaced when dependencies are built.
