#include "analysis/as_entropy.h"

#include <algorithm>
#include <unordered_map>

#include "net/entropy.h"

namespace v6::analysis {

std::vector<AsEntropyProfile> top_as_entropy_profiles(
    const hitlist::Corpus& corpus, const sim::World& world, std::size_t n,
    util::SimTime window_start, util::SimTime window_end) {
  std::unordered_map<std::uint32_t, std::vector<double>> samples;
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    if (static_cast<util::SimTime>(rec.first_seen) >= window_end ||
        static_cast<util::SimTime>(rec.last_seen) < window_start) {
      return;
    }
    const auto as_index = world.as_index_of(rec.address);
    if (!as_index) return;
    samples[*as_index].push_back(net::iid_entropy(rec.address));
  });

  std::vector<AsEntropyProfile> profiles;
  profiles.reserve(samples.size());
  for (auto& [as_index, entropies] : samples) {
    AsEntropyProfile p;
    p.as_index = as_index;
    p.asn = world.ases()[as_index].asn;
    p.name = world.ases()[as_index].name;
    p.addresses = entropies.size();
    p.entropy = util::EmpiricalDistribution(std::move(entropies));
    profiles.push_back(std::move(p));
  }
  std::sort(profiles.begin(), profiles.end(),
            [](const AsEntropyProfile& a, const AsEntropyProfile& b) {
              return a.addresses > b.addresses;
            });
  if (profiles.size() > n) profiles.resize(n);
  return profiles;
}

}  // namespace v6::analysis
