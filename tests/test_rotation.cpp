#include "analysis/rotation.h"

#include <gtest/gtest.h>

#include "hitlist/passive_collector.h"
#include "net/eui64.h"
#include "netsim/pool_dns.h"

namespace v6::analysis {
namespace {

class RotationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 83;
    config.total_sites = 300;
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }

  static std::uint64_t slash64(std::uint32_t as_index, std::uint64_t n) {
    return world_->ases()[as_index].prefix_hi | (2ULL << 28) | (n << 8) | 1;
  }

  static sim::World* world_;
};

sim::World* RotationTest::world_ = nullptr;

TEST_F(RotationTest, RecoversDailyRenumberingFromTracers) {
  hitlist::Corpus corpus;
  // 12 EUI-64 devices in AS 0, each renumbered daily for 20 days.
  for (std::uint32_t device = 0; device < 12; ++device) {
    const auto mac = net::MacAddress::from_u64(0x0c47c9100000ULL + device);
    for (std::uint64_t day = 0; day < 20; ++day) {
      corpus.add(net::eui64_address(slash64(0, device * 100 + day), mac),
                 static_cast<util::SimTime>(day) * util::kDay + 500);
    }
  }
  const Eui64Tracker tracker(corpus, *world_);
  const auto estimates = infer_rotation_periods(tracker, *world_);
  ASSERT_FALSE(estimates.empty());
  const auto& top = estimates.front();
  EXPECT_EQ(top.as_index, 0u);
  EXPECT_NEAR(static_cast<double>(top.estimated_period),
              static_cast<double>(util::kDay), 0.05 * util::kDay);
  EXPECT_GE(top.samples, 200u);
}

TEST_F(RotationTest, WeeklyAndDailyProvidersSeparate) {
  hitlist::Corpus corpus;
  for (std::uint32_t device = 0; device < 10; ++device) {
    const auto daily = net::MacAddress::from_u64(0x0c47c9200000ULL + device);
    const auto weekly = net::MacAddress::from_u64(0x0c47c9300000ULL + device);
    for (std::uint64_t k = 0; k < 10; ++k) {
      corpus.add(net::eui64_address(slash64(0, device * 50 + k), daily),
                 static_cast<util::SimTime>(k) * util::kDay);
      corpus.add(net::eui64_address(slash64(1, device * 50 + k), weekly),
                 static_cast<util::SimTime>(k) * util::kWeek);
    }
  }
  const Eui64Tracker tracker(corpus, *world_);
  const auto estimates = infer_rotation_periods(tracker, *world_);
  util::SimDuration as0 = 0, as1 = 0;
  for (const auto& estimate : estimates) {
    if (estimate.as_index == 0) as0 = estimate.estimated_period;
    if (estimate.as_index == 1) as1 = estimate.estimated_period;
  }
  EXPECT_NEAR(static_cast<double>(as0), static_cast<double>(util::kDay),
              0.05 * util::kDay);
  EXPECT_NEAR(static_cast<double>(as1), static_cast<double>(util::kWeek),
              0.05 * util::kWeek);
}

TEST_F(RotationTest, CrossAsMovesDoNotPollute) {
  hitlist::Corpus corpus;
  // One device bouncing between two ASes hourly: no same-AS transition.
  const auto mac = net::MacAddress::from_u64(0x0c47c9400000ULL);
  for (std::uint64_t k = 0; k < 40; ++k) {
    corpus.add(net::eui64_address(slash64(k % 2, k), mac),
               static_cast<util::SimTime>(k) * util::kHour);
  }
  const Eui64Tracker tracker(corpus, *world_);
  EXPECT_TRUE(infer_rotation_periods(tracker, *world_).empty());
}

TEST_F(RotationTest, TooFewSamplesNotEstimated) {
  hitlist::Corpus corpus;
  const auto mac = net::MacAddress::from_u64(0x0c47c9500000ULL);
  corpus.add(net::eui64_address(slash64(0, 1), mac), 0);
  corpus.add(net::eui64_address(slash64(0, 2), mac), util::kDay);
  const Eui64Tracker tracker(corpus, *world_);
  EXPECT_TRUE(infer_rotation_periods(tracker, *world_).empty());
}

TEST_F(RotationTest, EndToEndAgainstWorldGroundTruth) {
  // Full-pipeline sanity: collect a corpus from a rotating world and check
  // that every confident estimate for a daily-rotation AS lands near one
  // day. (Uses a private world so the suite's static one stays pristine.)
  sim::WorldConfig config;
  config.seed = 84;
  config.total_sites = 900;
  config.study_duration = 30 * util::kDay;
  const auto world = sim::World::generate(config);
  netsim::DataPlane plane(world, {0.0, 1});
  netsim::PoolDns dns(world);
  hitlist::PassiveCollector collector(world, plane, dns, {false, 0.0, 3});
  hitlist::Corpus corpus(1 << 14);
  collector.run(corpus, 0, 30 * util::kDay);

  const Eui64Tracker tracker(corpus, world);
  int daily_checked = 0;
  for (const auto& estimate : infer_rotation_periods(tracker, world)) {
    if (estimate.true_period != util::kDay || estimate.samples < 30) continue;
    // Mobile carriers renumber on attachment churn (hours), which is what
    // the tracer honestly measures there; delegation-policy inference is a
    // fixed-line concept.
    if (world.ases()[estimate.as_index].type != sim::AsType::kIspBroadband) {
      continue;
    }
    ++daily_checked;
    EXPECT_NEAR(static_cast<double>(estimate.estimated_period),
                static_cast<double>(util::kDay), 0.5 * util::kDay)
        << "AS" << estimate.asn;
  }
  if (daily_checked == 0) {
    GTEST_SKIP() << "no confidently-sampled daily-rotation AS in this seed";
  }
}

}  // namespace
}  // namespace v6::analysis
