// The distributed-collection invariant, exercised through the in-process
// SimCluster: at ANY worker count, under ANY injected kill/stall plan,
// the merged corpus is byte-identical to the single-process run and no
// observation is lost or double-counted. Plus the Study-level plumbing:
// full-pipeline equality (analysis floats compared bit-for-bit), export
// lints, and the fail-loudly configuration guards.
#include "dist/sim_cluster.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "core/study.h"
#include "hitlist/corpus_io.h"
#include "obs/exposition.h"
#include "obs/timeline.h"
#include "obs/trace_export.h"

namespace v6::dist {
namespace {

core::StudyConfig small_config(std::uint64_t seed = 19) {
  core::StudyConfig config;
  config.world.seed = seed;
  config.world.total_sites = 150;
  config.pool_capture_share = 1.0;
  config.world.study_duration = 14 * util::kDay;
  config.backscan_start = 16 * util::kDay;
  config.backscan_duration = util::kDay;
  config.hitlist_campaign.start = util::kDay;
  config.hitlist_campaign.duration = util::kWeek;
  config.caida_campaign.start = util::kDay;
  config.caida_campaign.duration = 5 * util::kDay;
  config.caida_campaign.slash48_fraction = 0.005;
  return config;
}

std::string corpus_bytes(const hitlist::Corpus& corpus) {
  std::ostringstream out(std::ios::binary);
  hitlist::save_corpus(out, corpus);
  return std::move(out).str();
}

// One Study owns the simulation stack; the reference corpus comes from
// its (sharded, single-process) collect; every cluster variant runs over
// the same world/plane/dns.
class DistIdentityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    study_ = new core::Study(small_config());
    study_->collect();
    reference_ = new std::string(corpus_bytes(study_->results().ntp));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete reference_;
  }

  static DistReport run_cluster(const DistConfig& config,
                                hitlist::Corpus& out,
                                netsim::WorkerFaultSchedule* plan = nullptr) {
    SimCluster cluster(study_->world(), study_->plane(), study_->pool_dns(),
                       study_->config().collector, config, plan);
    const util::SimTime start = study_->config().world.study_start;
    return cluster.run(out, start,
                       start + study_->config().world.study_duration);
  }

  static core::Study* study_;
  static std::string* reference_;
};

core::Study* DistIdentityTest::study_ = nullptr;
std::string* DistIdentityTest::reference_ = nullptr;

// The acceptance matrix: workers {1, 2, 4} x forced kills {0, 1, 2}.
TEST_F(DistIdentityTest, WorkerAndKillMatrixIsByteIdentical) {
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    for (const std::uint32_t kills : {0u, 1u, 2u}) {
      DistConfig config;
      config.workers = workers;
      config.forced_kills = kills;
      config.chunk_interval = 3 * util::kDay;
      hitlist::Corpus merged(1);
      const DistReport report = run_cluster(config, merged);
      EXPECT_EQ(corpus_bytes(merged), *reference_)
          << workers << " workers, " << kills << " kills";
      EXPECT_EQ(report.worker_deaths, std::min(kills, workers))
          << workers << " workers, " << kills << " kills";
      EXPECT_EQ(report.polls_attempted, study_->results().polls_attempted);
      EXPECT_EQ(report.polls_answered, study_->results().polls_answered);
      // Everything said on the wire passes the dependency-free linter.
      EXPECT_FALSE(lint_dist_frames(std::string_view(
                       reinterpret_cast<const char*>(report.frame_log.data()),
                       report.frame_log.size()))
                       .has_value())
          << workers << " workers, " << kills << " kills";
    }
  }
}

// Kill-at-every-chunk-boundary matrix: a worker dying exactly at (and
// just after) each chunk boundary must never lose or double-count — the
// recovery lease replays from the last durable upload.
TEST_F(DistIdentityTest, KillAtEveryChunkBoundaryIsByteIdentical) {
  const util::SimDuration chunk = 3 * util::kDay;
  const util::SimTime start = study_->config().world.study_start;
  const util::SimTime end =
      start + study_->config().world.study_duration;
  for (util::SimTime boundary = start + chunk; boundary < end;
       boundary += chunk) {
    for (const util::SimDuration offset : {0, 3600}) {
      DistConfig config;
      config.workers = 2;
      config.chunk_interval = chunk;
      netsim::WorkerFaultSchedule plan(config.workers);
      plan.set_kill(0, boundary + offset);
      hitlist::Corpus merged(1);
      const DistReport report = run_cluster(config, merged, &plan);
      EXPECT_EQ(corpus_bytes(merged), *reference_)
          << "kill at " << boundary << "+" << offset;
      EXPECT_EQ(report.worker_deaths, 1u);
      EXPECT_GE(report.reassignments, 1u);
    }
  }
}

// Vantage-subset partition sanity: per-vantage health splits across
// subsets and reassembles to the single-process totals exactly.
TEST_F(DistIdentityTest, VantageHealthReassembles) {
  DistConfig config;
  config.workers = 4;
  hitlist::Corpus merged(1);
  const DistReport report = run_cluster(config, merged);
  const auto& reference = study_->results().vantage_health;
  ASSERT_EQ(report.vantage_health.size(), reference.size());
  for (std::size_t v = 0; v < reference.size(); ++v) {
    EXPECT_EQ(report.vantage_health[v].polls, reference[v].polls) << v;
    EXPECT_EQ(report.vantage_health[v].answered, reference[v].answered) << v;
    EXPECT_EQ(report.vantage_health[v].lost_to_fault,
              reference[v].lost_to_fault)
        << v;
  }
}

// A stall longer than the heartbeat timeout gets its lease revoked; when
// the zombie wakes, its stale-epoch upload must bounce (no double count).
TEST_F(DistIdentityTest, StalledZombieUploadsAreFencedOff) {
  DistConfig config;
  config.workers = 2;
  config.chunk_interval = 2 * util::kDay;
  config.heartbeat_timeout = util::kDay;
  netsim::WorkerFaultSchedule plan(config.workers);
  plan.add_stall(0, 3 * util::kDay, 6 * util::kDay);  // 3d >> 1d timeout
  hitlist::Corpus merged(1);
  const DistReport report = run_cluster(config, merged, &plan);
  EXPECT_EQ(corpus_bytes(merged), *reference_);
  EXPECT_GE(report.timeouts, 1u);
  EXPECT_GE(report.stale_uploads_rejected, 1u);
  EXPECT_GE(report.reassignments, 1u);
}

// A seeded stochastic fault plan (kills + stalls + slowdowns) still
// converges to the identical corpus; determinism means the report is a
// pure function of the config.
TEST_F(DistIdentityTest, SeededFaultPlanIsDeterministicAndIdentical) {
  DistConfig config;
  config.workers = 3;
  config.chunk_interval = 2 * util::kDay;
  config.worker_faults.seed = 5;
  config.worker_faults.kills_per_worker = 0.7;
  config.worker_faults.stalls_per_worker = 1.5;
  config.worker_faults.mean_stall = 8 * util::kHour;
  config.worker_faults.slows_per_worker = 1.0;

  hitlist::Corpus first(1);
  const DistReport a = run_cluster(config, first);
  EXPECT_EQ(corpus_bytes(first), *reference_);

  hitlist::Corpus second(1);
  const DistReport b = run_cluster(config, second);
  EXPECT_EQ(a.worker_deaths, b.worker_deaths);
  EXPECT_EQ(a.reassignments, b.reassignments);
  EXPECT_EQ(a.leases_granted, b.leases_granted);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.frame_log, b.frame_log);
}

std::uint64_t vantage_counter(const obs::Snapshot& snapshot,
                              std::string_view family,
                              std::uint32_t vantage) {
  const obs::Labels labels = {{"vantage", std::to_string(vantage)}};
  for (const auto& s : snapshot.samples) {
    if (s.name == family && s.labels == labels) return s.counter_value;
  }
  return 0;
}

// The cluster observability identity: the deterministic counter families
// aggregated from the per-lease kObsReport uploads equal the
// single-process collector totals bit-for-bit at any worker count under
// faults — only the completing lease per subset reports, so reassignment
// never double-counts.
TEST_F(DistIdentityTest, ClusterObsCountersMatchSingleProcessBitForBit) {
  const auto& reference = study_->results();
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    DistConfig config;
    config.workers = workers;
    config.forced_kills = workers / 2;
    config.chunk_interval = 3 * util::kDay;
    hitlist::Corpus merged(1);
    const DistReport report = run_cluster(config, merged);

    // One report per subset (subsets default to the worker count), and
    // the merged counter families reassemble the single-process totals.
    EXPECT_EQ(report.cluster_obs.report_count(), workers);
    const obs::Snapshot snap = report.cluster_obs.cluster_snapshot();
    EXPECT_EQ(snap.counter_sum("v6_collector_polls_total"),
              reference.polls_attempted)
        << workers << " workers";
    EXPECT_EQ(snap.counter_sum("v6_collector_answered_total"),
              reference.polls_answered)
        << workers << " workers";
    for (std::size_t v = 0; v < reference.vantage_health.size(); ++v) {
      const auto id = static_cast<std::uint32_t>(v);
      EXPECT_EQ(vantage_counter(snap, "v6_collector_vantage_polls_total", id),
                reference.vantage_health[v].polls)
          << workers << " workers, vantage " << v;
      EXPECT_EQ(
          vantage_counter(snap, "v6_collector_vantage_answered_total", id),
          reference.vantage_health[v].answered)
          << workers << " workers, vantage " << v;
      EXPECT_EQ(
          vantage_counter(snap, "v6_collector_vantage_fault_lost_total", id),
          reference.vantage_health[v].lost_to_fault)
          << workers << " workers, vantage " << v;
    }

    // The cluster exposition renders deterministically and lints clean.
    const std::string prom =
        obs::render(snap, obs::ExpositionFormat::kPrometheus);
    EXPECT_FALSE(obs::lint_prometheus(prom).has_value());

    // The merged trace carries one pid lane per worker report and passes
    // the trace linter.
    const std::string trace = report.cluster_obs.render_trace();
    EXPECT_FALSE(obs::lint_trace_events(trace).has_value());
    std::size_t lanes = 0;
    for (std::size_t at = trace.find("\"process_name\"");
         at != std::string::npos;
         at = trace.find("\"process_name\"", at + 1)) {
      ++lanes;
    }
    EXPECT_EQ(lanes, workers) << workers << " workers";

    // Every line of the merged cluster timeline is valid JSON.
    const std::string cluster_tl = report.cluster_obs.render_cluster_timeline();
    EXPECT_FALSE(cluster_tl.empty());
    std::size_t start = 0;
    while (start < cluster_tl.size()) {
      std::size_t nl = cluster_tl.find('\n', start);
      if (nl == std::string::npos) nl = cluster_tl.size();
      EXPECT_FALSE(
          obs::lint_json(cluster_tl.substr(start, nl - start)).has_value());
      start = nl + 1;
    }
  }
}

// Under a seeded stochastic fault plan the aggregated cluster counters
// still reassemble the single-process totals: aborted leases discard
// their partial registries, the completing lease's report carries the
// checkpoint-restored cumulative state.
TEST_F(DistIdentityTest, ClusterObsSurvivesSeededFaultPlan) {
  DistConfig config;
  config.workers = 3;
  config.chunk_interval = 2 * util::kDay;
  config.worker_faults.seed = 5;
  config.worker_faults.kills_per_worker = 0.7;
  config.worker_faults.stalls_per_worker = 1.5;
  config.worker_faults.mean_stall = 8 * util::kHour;
  hitlist::Corpus merged(1);
  const DistReport report = run_cluster(config, merged);
  const obs::Snapshot snap = report.cluster_obs.cluster_snapshot();
  EXPECT_EQ(snap.counter_sum("v6_collector_polls_total"),
            study_->results().polls_attempted);
  EXPECT_EQ(snap.counter_sum("v6_collector_answered_total"),
            study_->results().polls_answered);
}

TEST_F(DistIdentityTest, RespawnDisabledFailsLoudlyWhenFleetDies) {
  DistConfig config;
  config.workers = 1;
  config.forced_kills = 1;
  config.respawn = false;
  hitlist::Corpus merged(1);
  EXPECT_THROW(run_cluster(config, merged), std::runtime_error);
}

TEST(DistCluster, WireFidelityIsRejected) {
  core::StudyConfig config = small_config();
  core::Study study(config);
  hitlist::CollectorConfig collector = config.collector;
  collector.wire_fidelity = true;
  EXPECT_THROW(SimCluster(study.world(), study.plane(), study.pool_dns(),
                          collector, DistConfig{}),
               std::invalid_argument);
}

// --- Study-level plumbing --------------------------------------------------

TEST(DistStudy, FullPipelineMatchesSingleProcessBitForBit) {
  const core::StudyConfig config = small_config(23);

  core::Study single(config);
  core::RunOptions base;
  base.sample_interval = 2 * util::kDay;
  const core::StudyResults& rs = single.run(std::move(base));

  core::Study distributed(config);
  core::RunOptions options;
  options.sample_interval = 2 * util::kDay;
  options.distributed = DistConfig{};
  options.distributed->workers = 3;
  options.distributed->forced_kills = 1;
  options.distributed->chunk_interval = 4 * util::kDay;
  const core::StudyResults& rd = distributed.run(std::move(options));

  // Saved corpus snapshots byte-identical through Study::save_ntp.
  std::ostringstream a(std::ios::binary), b(std::ios::binary);
  single.save_ntp(a);
  distributed.save_ntp(b);
  EXPECT_EQ(a.str(), b.str());

  // Analysis floats bit-identical (NaN-proof comparison via bit_cast).
  EXPECT_EQ(std::bit_cast<std::uint64_t>(
                rs.analysis.address_lifetimes.fraction_once),
            std::bit_cast<std::uint64_t>(
                rd.analysis.address_lifetimes.fraction_once));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(
                rs.analysis.address_lifetimes.fraction_month),
            std::bit_cast<std::uint64_t>(
                rd.analysis.address_lifetimes.fraction_month));
  ASSERT_EQ(rs.analysis.table1.size(), rd.analysis.table1.size());
  EXPECT_EQ(rs.analysis.table1.front().addresses,
            rd.analysis.table1.front().addresses);
  EXPECT_EQ(rs.analysis.table1.front().slash48s,
            rd.analysis.table1.front().slash48s);
  EXPECT_EQ(rs.polls_attempted, rd.polls_attempted);
  EXPECT_EQ(rs.polls_answered, rd.polls_answered);

  // The recovery is observable: dist counters present, and both the
  // Prometheus and timeline exports pass their linters.
  ASSERT_TRUE(rd.dist.has_value());
  EXPECT_EQ(rd.dist->worker_deaths, 1u);
  const std::string prom =
      obs::render(rd.metrics, obs::ExpositionFormat::kPrometheus);
  EXPECT_FALSE(obs::lint_prometheus(prom).has_value());
  EXPECT_NE(prom.find("v6_dist_worker_deaths_total"), std::string::npos);
  EXPECT_NE(prom.find("v6_dist_leases_total"), std::string::npos);
  EXPECT_NE(prom.find("v6_dist_reassignments_total"), std::string::npos);
  const std::string timeline =
      obs::render_timeline(rd.timeline, obs::TimelineFormat::kJsonl);
  EXPECT_FALSE(obs::lint_timeline_jsonl(timeline).has_value());
}

TEST(DistStudy, IncompatibleKnobsFailLoudly) {
  core::StudyConfig config = small_config();

  {
    core::StudyConfig spilled = config;
    spilled.spill.memory_budget_bytes = 1 << 20;
    core::Study study(spilled);
    core::RunOptions options;
    options.distributed = DistConfig{};
    EXPECT_THROW(study.run(std::move(options)), std::invalid_argument);
  }
  {
    core::Study study(config);
    core::RunOptions options;
    options.distributed = DistConfig{};
    options.resume_from = hitlist::CollectionCheckpoint{};
    EXPECT_THROW(study.run(std::move(options)), std::invalid_argument);
  }
  {
    core::Study study(config);
    core::RunOptions options;
    options.distributed = DistConfig{};
    options.checkpoint_sink = [](const hitlist::CheckpointState&,
                                 const hitlist::Corpus&) {};
    EXPECT_THROW(study.run(std::move(options)), std::invalid_argument);
  }
}

}  // namespace
}  // namespace v6::dist
