// Deterministic vantage-server fault injection.
//
// The paper's 27 stratum-2 vantage servers sat in the NTP Pool for seven
// months — long enough for real machines to crash, flap, and get yanked
// from rotation by the pool's health monitoring. FaultSchedule models that
// churn the same way sim::World models eyeball-AS outages: a seeded,
// precomputed plan that is a *pure function of time*, so the fast
// collection path and the wire-fidelity path (and a crashed-and-resumed
// run) all see the exact same failures.
//
// Per vantage the plan holds sorted, disjoint outage windows [start, end).
// While inside a window the server is dark: packets to it vanish. After a
// window ends the server restarts into a slow-start ramp of length
// `slow_start`, during which it answers a linearly growing fraction of
// requests — the decision for a given (vantage, client, second) is a pure
// hash, not an Rng draw, so it never perturbs any caller's RNG stream.
//
// PoolDns consumes the same plan through marked_down(): the real pool's
// monitoring takes a while to notice a dead server, so a vantage only
// leaves steering `monitoring_delay` after the crash, and re-enters
// steering `monitoring_delay` after recovery.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv6.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::netsim {

struct FaultPlanConfig {
  std::uint64_t seed = 13;
  // Expected number of crash windows per vantage over the plan window.
  double outages_per_vantage = 0.0;
  util::SimDuration mean_outage = 6 * util::kHour;
  util::SimDuration min_outage = 10 * util::kMinute;
  // Short blips (seconds-to-minutes), on top of the crash windows.
  double flaps_per_vantage = 0.0;
  util::SimDuration mean_flap = 90;
  // Post-recovery ramp during which the server answers a linearly
  // growing fraction of requests. 0 disables slow start.
  util::SimDuration slow_start = 20 * util::kMinute;

  bool active() const noexcept {
    return outages_per_vantage > 0.0 || flaps_per_vantage > 0.0;
  }
};

struct OutageWindow {
  util::SimTime start = 0;
  util::SimTime end = 0;  // exclusive
};

class FaultSchedule {
 public:
  // Empty plan (no faults); useful for tests that inject windows by hand.
  explicit FaultSchedule(std::span<const sim::VantagePoint> vantages);

  // Generates the seeded plan over [plan_start, plan_end).
  FaultSchedule(std::span<const sim::VantagePoint> vantages,
                const FaultPlanConfig& config, util::SimTime plan_start,
                util::SimTime plan_end);

  // True while the vantage is inside a crash window (completely dark).
  bool in_outage(std::uint8_t vantage, util::SimTime t) const noexcept;

  // Whether a request from `src` arriving at the vantage at time t gets
  // served. False during outages; probabilistic (pure hash of
  // vantage/src/t) during the slow-start ramp; true otherwise.
  bool delivers(std::uint8_t vantage, const net::Ipv6Address& src,
                util::SimTime t) const noexcept;

  // Same, keyed by destination address. Addresses that are not vantage
  // servers always deliver — the schedule only faults vantages.
  bool delivers_to(const net::Ipv6Address& dst, const net::Ipv6Address& src,
                   util::SimTime t) const noexcept;

  // Pool-monitoring view: the vantage is out of steering once the monitor
  // has had `monitoring_delay` to notice the crash, and returns to
  // steering `monitoring_delay` after the crash window ends.
  bool marked_down(std::uint8_t vantage, util::SimTime t,
                   util::SimDuration monitoring_delay) const noexcept;

  // Test/bench hook: append a window by hand. Windows must be added in
  // chronological order per vantage and must not overlap.
  void add_window(std::uint8_t vantage, util::SimTime start,
                  util::SimTime end);

  std::span<const OutageWindow> windows(std::uint8_t vantage) const noexcept;
  std::size_t vantage_count() const noexcept { return windows_.size(); }
  util::SimDuration slow_start() const noexcept { return slow_start_; }

 private:
  std::vector<std::vector<OutageWindow>> windows_;  // indexed by vantage id
  std::unordered_map<net::Ipv6Address, std::uint8_t, net::Ipv6AddressHash>
      by_address_;
  util::SimDuration slow_start_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace v6::netsim
