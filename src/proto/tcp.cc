#include "proto/tcp.h"

#include "proto/checksum.h"

namespace v6::proto {

std::vector<std::uint8_t> encode_tcp(const TcpSegment& segment,
                                     const net::Ipv6Address& src,
                                     const net::Ipv6Address& dst) {
  BufferWriter out;
  out.u16(segment.src_port);
  out.u16(segment.dst_port);
  out.u32(segment.sequence);
  out.u32(segment.ack_number);
  out.u8(5 << 4);  // data offset 5 words, no options
  out.u8(segment.flags);
  out.u16(segment.window);
  out.u16(0);  // checksum placeholder
  out.u16(0);  // urgent pointer
  const std::uint16_t sum =
      pseudo_header_checksum(src, dst, kProtoTcp, out.data());
  out.patch_u16(16, sum);
  return std::move(out).take();
}

std::optional<TcpSegment> decode_tcp(std::span<const std::uint8_t> data,
                                     const net::Ipv6Address& src,
                                     const net::Ipv6Address& dst) {
  if (data.size() < 20) return std::nullopt;
  if (pseudo_header_checksum(src, dst, kProtoTcp, data) != 0) {
    return std::nullopt;
  }
  BufferReader in(data);
  TcpSegment segment;
  segment.src_port = in.u16();
  segment.dst_port = in.u16();
  segment.sequence = in.u32();
  segment.ack_number = in.u32();
  const std::uint8_t offset = in.u8();
  segment.flags = in.u8();
  segment.window = in.u16();
  if ((offset >> 4) != 5) return std::nullopt;
  return segment;
}

TcpSegment make_syn(std::uint16_t src_port, std::uint16_t dst_port,
                    std::uint32_t sequence) {
  TcpSegment segment;
  segment.src_port = src_port;
  segment.dst_port = dst_port;
  segment.sequence = sequence;
  segment.flags = kTcpSyn;
  return segment;
}

TcpSegment make_syn_ack(const TcpSegment& syn, std::uint32_t server_sequence) {
  TcpSegment segment;
  segment.src_port = syn.dst_port;
  segment.dst_port = syn.src_port;
  segment.sequence = server_sequence;
  segment.ack_number = syn.sequence + 1;
  segment.flags = kTcpSyn | kTcpAck;
  return segment;
}

TcpSegment make_rst(const TcpSegment& syn) {
  TcpSegment segment;
  segment.src_port = syn.dst_port;
  segment.dst_port = syn.src_port;
  segment.sequence = 0;
  segment.ack_number = syn.sequence + 1;
  segment.flags = kTcpRst | kTcpAck;
  return segment;
}

}  // namespace v6::proto
