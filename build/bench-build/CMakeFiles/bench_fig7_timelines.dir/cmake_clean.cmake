file(REMOVE_RECURSE
  "../bench/bench_fig7_timelines"
  "../bench/bench_fig7_timelines.pdb"
  "CMakeFiles/bench_fig7_timelines.dir/bench_fig7_timelines.cpp.o"
  "CMakeFiles/bench_fig7_timelines.dir/bench_fig7_timelines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
