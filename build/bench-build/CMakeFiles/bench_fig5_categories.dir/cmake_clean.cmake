file(REMOVE_RECURSE
  "../bench/bench_fig5_categories"
  "../bench/bench_fig5_categories.pdb"
  "CMakeFiles/bench_fig5_categories.dir/bench_fig5_categories.cpp.o"
  "CMakeFiles/bench_fig5_categories.dir/bench_fig5_categories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
