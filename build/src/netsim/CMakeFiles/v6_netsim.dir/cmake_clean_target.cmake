file(REMOVE_RECURSE
  "libv6_netsim.a"
)
