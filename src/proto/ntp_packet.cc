#include "proto/ntp_packet.h"

#include "proto/buffer.h"

namespace v6::proto {

std::vector<std::uint8_t> NtpPacket::encode() const {
  BufferWriter out;
  const auto li_vn_mode = static_cast<std::uint8_t>(
      ((leap_indicator & 0x3) << 6) | ((version & 0x7) << 3) |
      (static_cast<std::uint8_t>(mode) & 0x7));
  out.u8(li_vn_mode);
  out.u8(stratum);
  out.u8(static_cast<std::uint8_t>(poll));
  out.u8(static_cast<std::uint8_t>(precision));
  out.u32(root_delay);
  out.u32(root_dispersion);
  out.u32(reference_id);
  out.u64(reference_time.to_u64());
  out.u64(origin_time.to_u64());
  out.u64(receive_time.to_u64());
  out.u64(transmit_time.to_u64());
  return std::move(out).take();
}

std::optional<NtpPacket> NtpPacket::decode(
    std::span<const std::uint8_t> data) {
  if (data.size() < 48) return std::nullopt;
  BufferReader in(data);
  NtpPacket p;
  const std::uint8_t li_vn_mode = in.u8();
  p.leap_indicator = li_vn_mode >> 6;
  p.version = (li_vn_mode >> 3) & 0x7;
  p.mode = static_cast<NtpMode>(li_vn_mode & 0x7);
  p.stratum = in.u8();
  p.poll = static_cast<std::int8_t>(in.u8());
  p.precision = static_cast<std::int8_t>(in.u8());
  p.root_delay = in.u32();
  p.root_dispersion = in.u32();
  p.reference_id = in.u32();
  p.reference_time = NtpTimestamp::from_u64(in.u64());
  p.origin_time = NtpTimestamp::from_u64(in.u64());
  p.receive_time = NtpTimestamp::from_u64(in.u64());
  p.transmit_time = NtpTimestamp::from_u64(in.u64());
  if (in.truncated()) return std::nullopt;
  if (p.version < 3 || p.version > 4) return std::nullopt;
  return p;
}

NtpPacket make_client_request(util::SimTime now,
                              std::uint32_t nonce_fraction) {
  NtpPacket p;
  p.mode = NtpMode::kClient;
  p.stratum = 0;
  // Clients randomize the transmit fraction as an anti-spoofing nonce.
  p.transmit_time = NtpTimestamp::from_sim_time(now, nonce_fraction);
  return p;
}

NtpPacket make_server_response(const NtpPacket& request, util::SimTime now,
                               std::uint8_t stratum,
                               std::uint32_t reference_id) {
  NtpPacket p;
  p.mode = NtpMode::kServer;
  p.stratum = stratum;
  p.poll = request.poll;
  p.reference_id = reference_id;
  p.reference_time = NtpTimestamp::from_sim_time(now - 64);
  p.origin_time = request.transmit_time;
  p.receive_time = NtpTimestamp::from_sim_time(now);
  p.transmit_time = NtpTimestamp::from_sim_time(now, 1);
  return p;
}

}  // namespace v6::proto
