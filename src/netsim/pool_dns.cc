#include "netsim/pool_dns.h"

#include <limits>

#include "geo/location.h"

namespace v6::netsim {

PoolDns::PoolDns(const sim::World& world, double global_fraction,
                 double vantage_share)
    : world_(&world),
      global_fraction_(global_fraction),
      vantage_share_(vantage_share) {
  for (const auto& v : world.vantages()) {
    by_country_[v.country].push_back(&v);
    all_.push_back(&v);
  }
  // Materialize the steering table for every country the registry knows:
  // resolve() runs concurrently from collection shards, so lookups after
  // construction must never write.
  for (const auto& [code, list] : by_country_) steer_cache_[code] = list;
  for (const auto& info : geo::all_countries()) {
    auto& entry = steer_cache_[info.code];
    if (const auto it = by_country_.find(info.code);
        it != by_country_.end()) {
      entry = it->second;
      continue;
    }
    // No vantage in-country: steer to the geographically nearest vantage
    // country (what the pool's coarse geolocation effectively does).
    double best = std::numeric_limits<double>::max();
    const std::vector<const sim::VantagePoint*>* best_list = &all_;
    for (const auto& [code, list] : by_country_) {
      const geo::CountryInfo* vantage_info = geo::find_country(code);
      if (vantage_info == nullptr) continue;
      const double d = geo::distance_km(
          {info.latitude, info.longitude},
          {vantage_info->latitude, vantage_info->longitude});
      if (d < best) {
        best = d;
        best_list = &list;
      }
    }
    entry = *best_list;
  }
}

void PoolDns::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    metric_resolutions_ = obs::Counter();
    metric_steer_flips_ = obs::Counter();
    return;
  }
  metric_resolutions_ = registry->counter(
      "v6_pool_resolutions_total",
      "Pool DNS queries answered with one of the study's vantages");
  metric_steer_flips_ = registry->counter(
      "v6_pool_steer_flips_total",
      "Resolutions where health monitoring removed a steering candidate");
}

const std::vector<const sim::VantagePoint*>& PoolDns::candidates(
    geo::CountryCode country) const {
  if (const auto it = steer_cache_.find(country); it != steer_cache_.end()) {
    return it->second;
  }
  // Country unknown to the registry (the cache holds every registered
  // one): fall back to the whole pool.
  return all_;
}

const sim::VantagePoint* PoolDns::resolve(const net::Ipv6Address& client,
                                          util::Rng& rng) const {
  if (all_.empty()) return nullptr;
  // Most queries go to pool servers that are not ours.
  if (vantage_share_ < 1.0 && !rng.chance(vantage_share_)) return nullptr;
  if (global_fraction_ > 0.0 && rng.chance(global_fraction_)) {
    return all_[rng.bounded(all_.size())];
  }
  const auto country = world_->geodb().lookup(client);
  const auto& list = country ? candidates(*country) : all_;
  if (list.empty()) return all_[rng.bounded(all_.size())];
  return list[rng.bounded(list.size())];
}

const sim::VantagePoint* PoolDns::resolve(const net::Ipv6Address& client,
                                          util::Rng& rng, util::SimTime t,
                                          bool* steered_away) const {
  if (steered_away != nullptr) *steered_away = false;
  if (all_.empty()) return nullptr;
  if (vantage_share_ < 1.0 && !rng.chance(vantage_share_)) return nullptr;
  if (global_fraction_ > 0.0 && rng.chance(global_fraction_)) {
    return pick(all_, rng, t, steered_away);
  }
  const auto country = world_->geodb().lookup(client);
  const auto& list = country ? candidates(*country) : all_;
  if (list.empty()) return pick(all_, rng, t, steered_away);
  return pick(list, rng, t, steered_away);
}

const sim::VantagePoint* PoolDns::pick(
    const std::vector<const sim::VantagePoint*>& list, util::Rng& rng,
    util::SimTime t, bool* steered_away) const {
  metric_resolutions_.inc();
  if (health_ != nullptr) {
    // Common case first: nothing in this list is down, so no filtering
    // (and no allocation) — the pick is bit-identical to the health-free
    // path, which keeps zero-fault plans indistinguishable from no plan.
    bool any_down = false;
    for (const auto* v : list) {
      if (health_->marked_down(v->id, t, monitoring_delay_)) {
        any_down = true;
        break;
      }
    }
    if (any_down) {
      if (steered_away != nullptr) *steered_away = true;
      metric_steer_flips_.inc();
      std::vector<const sim::VantagePoint*> healthy;
      healthy.reserve(list.size());
      for (const auto* v : list) {
        if (!health_->marked_down(v->id, t, monitoring_delay_)) {
          healthy.push_back(v);
        }
      }
      if (!healthy.empty()) return healthy[rng.bounded(healthy.size())];
      // Whole candidate list is down: the pool widens the answer to any
      // healthy server worldwide.
      for (const auto* v : all_) {
        if (!health_->marked_down(v->id, t, monitoring_delay_)) {
          healthy.push_back(v);
        }
      }
      if (!healthy.empty()) return healthy[rng.bounded(healthy.size())];
      // Every vantage is marked down; answer from the unfiltered list
      // rather than returning nothing.
    }
  }
  return list[rng.bounded(list.size())];
}

}  // namespace v6::netsim
