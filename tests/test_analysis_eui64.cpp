#include "analysis/eui64_tracking.h"

#include <gtest/gtest.h>

#include "net/eui64.h"

namespace v6::analysis {
namespace {

// Builds a tiny world and hand-crafts EUI-64 journeys inside its address
// space so AS/country attribution works, then checks the §5.2 classifier.
class Eui64TrackingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 64;
    config.total_sites = 300;
    world_ = new sim::World(sim::World::generate(config));

    // Two ASes in one country, one in another.
    as_a_ = as_b_ = as_c_ = ~0u;
    for (std::uint32_t i = 0; i < world_->ases().size(); ++i) {
      const auto& as = world_->ases()[i];
      if (as_a_ == ~0u) {
        as_a_ = i;
        continue;
      }
      if (as_b_ == ~0u &&
          as.country_index == world_->ases()[as_a_].country_index) {
        as_b_ = i;
        continue;
      }
      if (as_c_ == ~0u &&
          as.country_index != world_->ases()[as_a_].country_index) {
        as_c_ = i;
      }
    }
    ASSERT_NE(as_b_, ~0u);
    ASSERT_NE(as_c_, ~0u);
  }
  static void TearDownTestSuite() { delete world_; }

  // /64 network half number `n` inside the given AS.
  static std::uint64_t prefix(std::uint32_t as_index, std::uint64_t n) {
    return world_->ases()[as_index].prefix_hi | (2ULL << 28) | (n << 8) | 1;
  }

  static net::MacAddress mac(std::uint32_t suffix) {
    return net::MacAddress::from_u64(0x0c47c9000000ULL | suffix);
  }

  static sim::World* world_;
  static std::uint32_t as_a_, as_b_, as_c_;
};

sim::World* Eui64TrackingTest::world_ = nullptr;
std::uint32_t Eui64TrackingTest::as_a_ = 0;
std::uint32_t Eui64TrackingTest::as_b_ = 0;
std::uint32_t Eui64TrackingTest::as_c_ = 0;

TEST_F(Eui64TrackingTest, FullJourneyTaxonomy) {
  hitlist::Corpus corpus;
  const auto day = util::kDay;

  // MAC 1: never leaves its /64 -> not trackable.
  corpus.add(net::eui64_address(prefix(as_a_, 1), mac(1)), 0);
  corpus.add(net::eui64_address(prefix(as_a_, 1), mac(1)), 30 * day);

  // MAC 2: three /64s, one AS, 2 transitions -> mostly static.
  for (std::uint64_t p = 0; p < 3; ++p) {
    corpus.add(net::eui64_address(prefix(as_a_, 10 + p), mac(2)),
               static_cast<util::SimTime>(p) * day);
  }

  // MAC 3: fifteen /64s in one AS -> prefix reassignment.
  for (std::uint64_t p = 0; p < 15; ++p) {
    corpus.add(net::eui64_address(prefix(as_a_, 100 + p), mac(3)),
               static_cast<util::SimTime>(p) * day);
  }

  // MAC 4: two ASes, same country, 2 transitions -> changing providers.
  corpus.add(net::eui64_address(prefix(as_a_, 200), mac(4)), 0);
  corpus.add(net::eui64_address(prefix(as_a_, 201), mac(4)), day);
  corpus.add(net::eui64_address(prefix(as_b_, 202), mac(4)), 40 * day);

  // MAC 5: two ASes, same country, many transitions -> user movement.
  for (std::uint64_t p = 0; p < 14; ++p) {
    const auto as = p % 2 ? as_a_ : as_b_;
    corpus.add(net::eui64_address(prefix(as, 300 + p), mac(5)),
               static_cast<util::SimTime>(p) * day);
  }

  // MAC 6: two countries -> MAC reuse.
  corpus.add(net::eui64_address(prefix(as_a_, 400), mac(6)), 0);
  corpus.add(net::eui64_address(prefix(as_c_, 401), mac(6)), day);

  // Plus a non-EUI-64 address that must be ignored.
  corpus.add(net::Ipv6Address::from_u64(prefix(as_a_, 500), 0xdeadbeef), 0);

  const Eui64Tracker tracker(corpus, *world_);
  EXPECT_EQ(tracker.unique_macs(), 6u);
  EXPECT_EQ(tracker.corpus_addresses(), corpus.size());
  EXPECT_EQ(tracker.eui64_addresses(), corpus.size() - 1);
  EXPECT_EQ(tracker.trackable_macs(), 5u);

  std::array<TrackingClass, 7> by_mac{};
  for (const auto& track : tracker.tracks()) {
    const auto suffix = track.mac.suffix();
    ASSERT_GE(suffix, 1u);
    ASSERT_LE(suffix, 6u);
    by_mac[suffix] = Eui64Tracker::classify(track);
  }
  EXPECT_EQ(by_mac[1], TrackingClass::kNotTrackable);
  EXPECT_EQ(by_mac[2], TrackingClass::kMostlyStatic);
  EXPECT_EQ(by_mac[3], TrackingClass::kPrefixReassignment);
  EXPECT_EQ(by_mac[4], TrackingClass::kChangingProviders);
  EXPECT_EQ(by_mac[5], TrackingClass::kUserMovement);
  EXPECT_EQ(by_mac[6], TrackingClass::kMacReuse);
}

TEST_F(Eui64TrackingTest, TrackAggregatesAreExact) {
  hitlist::Corpus corpus;
  corpus.add(net::eui64_address(prefix(as_a_, 1), mac(9)), 100);
  corpus.add(net::eui64_address(prefix(as_a_, 2), mac(9)), 200);
  corpus.add(net::eui64_address(prefix(as_b_, 3), mac(9)), 300);
  const Eui64Tracker tracker(corpus, *world_);
  ASSERT_EQ(tracker.tracks().size(), 1u);
  const auto& track = tracker.tracks()[0];
  EXPECT_EQ(track.slash64s, 3u);
  EXPECT_EQ(track.ases, 2u);
  EXPECT_EQ(track.countries, 1u);
  EXPECT_EQ(track.transitions, 2u);
  EXPECT_EQ(track.first_seen, 100u);
  EXPECT_EQ(track.last_seen, 300u);
  EXPECT_EQ(track.lifetime(), 200);
}

TEST_F(Eui64TrackingTest, TimelineIsFirstSeenOrdered) {
  hitlist::Corpus corpus;
  corpus.add(net::eui64_address(prefix(as_a_, 5), mac(7)), 500);
  corpus.add(net::eui64_address(prefix(as_a_, 4), mac(7)), 100);
  corpus.add(net::eui64_address(prefix(as_a_, 6), mac(7)), 900);
  const Eui64Tracker tracker(corpus, *world_);
  const auto timeline = tracker.timeline(mac(7));
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline[0].first_seen, 100u);
  EXPECT_EQ(timeline[2].first_seen, 900u);
  EXPECT_TRUE(tracker.timeline(mac(0xdead)).empty());
}

TEST_F(Eui64TrackingTest, ExpectedRandomMatchesScalesWithCorpus) {
  hitlist::Corpus corpus;
  for (std::uint64_t i = 0; i < (1 << 17); ++i) {
    corpus.add(net::Ipv6Address::from_u64(prefix(as_a_, 1), 0x100000 + i), 0);
  }
  const Eui64Tracker tracker(corpus, *world_);
  EXPECT_EQ(tracker.expected_random_matches(), corpus.size() >> 16);
}

TEST_F(Eui64TrackingTest, ExemplarsCoverPresentClasses) {
  hitlist::Corpus corpus;
  for (std::uint64_t p = 0; p < 15; ++p) {
    corpus.add(net::eui64_address(prefix(as_a_, 600 + p), mac(8)),
               static_cast<util::SimTime>(p) * util::kDay);
  }
  const Eui64Tracker tracker(corpus, *world_);
  const auto exemplars = tracker.exemplars();
  ASSERT_EQ(exemplars.size(), 1u);
  EXPECT_EQ(exemplars[0].first, TrackingClass::kPrefixReassignment);
  EXPECT_EQ(exemplars[0].second, mac(8));
}

TEST_F(Eui64TrackingTest, ClassCountsSumToMacs) {
  hitlist::Corpus corpus;
  corpus.add(net::eui64_address(prefix(as_a_, 1), mac(1)), 0);
  corpus.add(net::eui64_address(prefix(as_a_, 2), mac(2)), 0);
  corpus.add(net::eui64_address(prefix(as_a_, 3), mac(2)), 1);
  const Eui64Tracker tracker(corpus, *world_);
  std::uint64_t classified = 0;
  for (const auto& [cls, count] : tracker.class_counts()) {
    EXPECT_NE(cls, TrackingClass::kNotTrackable);
    classified += count;
  }
  EXPECT_EQ(classified, tracker.trackable_macs());
}

}  // namespace
}  // namespace v6::analysis
