// Builds the kObsReport payload a completing lease uploads: the
// collector's cumulative, checkpoint-restored counter totals plus the
// lease's timeline windows. Shared by the in-process SimCluster and the
// real-process Worker so both paths put bit-identical deterministic
// families on the wire.
#pragma once

#include "dist/protocol.h"
#include "hitlist/passive_collector.h"

namespace v6::dist {

// The deterministic counter families a completing lease reports, built
// from the collector's getters (polls_attempted / polls_answered /
// vantage_health) — cumulative values the checkpoint machinery restores
// across reassignments. The per-lease registry flushes are deliberately
// NOT used: they only cover work since the last resume, so a reassigned
// subset would undercount. Names and help strings mirror the collector's
// own registrations; samples are sorted by (name, labels) exactly like
// Registry::snapshot(), so the aggregated cluster exposition is diffable
// against the single-process run.
obs::Snapshot completion_snapshot(const hitlist::PassiveCollector& collector);

// completion_snapshot() plus the lease sampler's windows, ready for
// encode_obs_report().
ObsReport build_obs_report(const hitlist::PassiveCollector& collector,
                           obs::Timeline windows);

}  // namespace v6::dist
