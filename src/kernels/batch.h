// Batched kernels for the per-record hot paths.
//
// Each kernel takes a contiguous (or strided) input array and fills an
// output array, so callers hand whole blocks from the block-oriented scan
// API (analysis::ScanSource::visit_blocks) instead of invoking a
// per-record function through a callback. Every kernel has two
// implementations:
//
//   * a scalar reference (batch_scalar.cc) that calls the exact same
//     per-record routine the pre-batch code paths used — bit-identical to
//     the legacy path by construction;
//   * an AVX2 implementation (batch_avx2.cc, compiled with a per-source
//     -mavx2 flag so no other object contains AVX2 codegen) asserted
//     bit-identical to the scalar reference by tests/test_kernels.cpp and
//     per row in bench_kernels.
//
// The public entry points dispatch through dispatch.h (env pin >
// force_backend() > CPUID). The per-backend entry points are exposed so
// tests and the bench can compare backends inside one process; calling an
// *_avx2 function is only valid when detected_backend() == kAvx2.
//
// Layering: kernels depends on net/ and util/ only. The corpus hash takes
// a strided byte pointer instead of an AddressRecord so hitlist/ can
// depend on kernels without a cycle.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/feistel_core.h"
#include "net/classify.h"

namespace v6::kernels {

// ---------------------------------------------------------------------------
// IID nibble entropy: out[i] = net::iid_entropy(iids[i]).
// ---------------------------------------------------------------------------
void iid_entropy_batch(const std::uint64_t* iids, std::size_t n, double* out);

// ---------------------------------------------------------------------------
// Structural classification: out[i] = net::classify_iid(iids[i],
// ipv4_accepted ? ipv4_accepted[i] != 0 : false).
// ---------------------------------------------------------------------------
void classify_iid_batch(const std::uint64_t* iids,
                        const std::uint8_t* ipv4_accepted, std::size_t n,
                        net::AddressCategory* out);

// ---------------------------------------------------------------------------
// Corpus hash: out[i] = net::Ipv6AddressHash{}(address at
// `bytes + i * stride_bytes`), where each address is the usual 16-byte
// big-endian blob. stride_bytes = 16 walks a packed Ipv6Address array;
// stride_bytes = sizeof(AddressRecord) walks the address field of a record
// array.
// ---------------------------------------------------------------------------
void ipv6_hash_batch(const std::uint8_t* bytes, std::size_t stride_bytes,
                     std::size_t n, std::uint64_t* out);

// ---------------------------------------------------------------------------
// Feistel permutation over [0, spec.domain_size):
//   out[i] = feistel_apply(spec, in[i])   (resp. feistel_invert).
// Inputs must already lie inside the domain, as with the per-record API.
// ---------------------------------------------------------------------------
void feistel_apply_batch(const FeistelSpec& spec, const std::uint64_t* in,
                         std::size_t n, std::uint64_t* out);
void feistel_invert_batch(const FeistelSpec& spec, const std::uint64_t* in,
                          std::size_t n, std::uint64_t* out);

// Per-backend entry points (see header comment for the calling contract).
namespace detail {

void iid_entropy_batch_scalar(const std::uint64_t* iids, std::size_t n,
                              double* out);
void classify_iid_batch_scalar(const std::uint64_t* iids,
                               const std::uint8_t* ipv4_accepted,
                               std::size_t n, net::AddressCategory* out);
void ipv6_hash_batch_scalar(const std::uint8_t* bytes,
                            std::size_t stride_bytes, std::size_t n,
                            std::uint64_t* out);
void feistel_apply_batch_scalar(const FeistelSpec& spec,
                                const std::uint64_t* in, std::size_t n,
                                std::uint64_t* out);
void feistel_invert_batch_scalar(const FeistelSpec& spec,
                                 const std::uint64_t* in, std::size_t n,
                                 std::uint64_t* out);

void iid_entropy_batch_avx2(const std::uint64_t* iids, std::size_t n,
                            double* out);
void classify_iid_batch_avx2(const std::uint64_t* iids,
                             const std::uint8_t* ipv4_accepted, std::size_t n,
                             net::AddressCategory* out);
void ipv6_hash_batch_avx2(const std::uint8_t* bytes, std::size_t stride_bytes,
                          std::size_t n, std::uint64_t* out);
void feistel_apply_batch_avx2(const FeistelSpec& spec, const std::uint64_t* in,
                              std::size_t n, std::uint64_t* out);
void feistel_invert_batch_avx2(const FeistelSpec& spec,
                               const std::uint64_t* in, std::size_t n,
                               std::uint64_t* out);

}  // namespace detail

// Convenience for block callers: pulls the big-endian IID (address bytes
// 8..15) out of a strided record/address array so the u64 kernels above
// can run on it. Plain inline helper, not dispatched — it is a bswap load
// per record either way.
inline void extract_iid_batch(const std::uint8_t* bytes,
                              std::size_t stride_bytes, std::size_t n,
                              std::uint64_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* p = bytes + i * stride_bytes + 8;
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | p[b];
    out[i] = v;
  }
}

}  // namespace v6::kernels
