// Per-AS entropy profiles (Figure 4): the top-N ASes by observed address
// volume and the entropy distribution of their addresses, over an arbitrary
// observation window (whole study for Fig 4a, one day for Fig 4b).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/parallel_scan.h"
#include "hitlist/corpus.h"
#include "sim/world.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace v6::analysis {

struct AsEntropyProfile {
  std::uint32_t as_index = 0;
  sim::Asn asn = 0;
  std::string name;
  std::uint64_t addresses = 0;
  util::EmpiricalDistribution entropy;
};

// Top `n` ASes by address count within [window_start, window_end).
// Ordered by descending address count, ties broken by ascending ASN, so
// the ranking (Fig 4's legend order) is stable across runs and platforms.
std::vector<AsEntropyProfile> top_as_entropy_profiles(
    const hitlist::Corpus& corpus, const sim::World& world, std::size_t n,
    util::SimTime window_start, util::SimTime window_end,
    const AnalysisConfig& config = {},
    std::vector<AnalysisStageStats>* stats = nullptr);

std::vector<AsEntropyProfile> top_as_entropy_profiles(
    const ScanSource& source, const sim::World& world, std::size_t n,
    util::SimTime window_start, util::SimTime window_end,
    const AnalysisConfig& config = {},
    std::vector<AnalysisStageStats>* stats = nullptr);

}  // namespace v6::analysis
