// Microbenchmarks (google-benchmark) for the pipeline's hot kernels:
// address parsing/formatting, IID entropy, EUI-64 codec, checksums, ICMPv6
// encode/decode, Feistel permutation, corpus insert/lookup, resolver, and
// the two collection paths (wire-fidelity vs fast) — the ablation behind
// the CollectorConfig::wire_fidelity design choice in DESIGN.md.
#include <benchmark/benchmark.h>

#include "hitlist/corpus.h"
#include "hitlist/passive_collector.h"
#include "net/classify.h"
#include "net/entropy.h"
#include "net/eui64.h"
#include "netsim/pool_dns.h"
#include "proto/checksum.h"
#include "proto/icmpv6.h"
#include "proto/ntp_packet.h"
#include "sim/feistel.h"
#include "sim/world.h"
#include "util/rng.h"

namespace {

using namespace v6;

std::vector<net::Ipv6Address> random_addresses(std::size_t n) {
  util::Rng rng(42);
  std::vector<net::Ipv6Address> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(net::Ipv6Address::from_u64(rng.next(), rng.next()));
  }
  return out;
}

void BM_Ipv6Format(benchmark::State& state) {
  const auto addresses = random_addresses(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(addresses[i++ & 1023].to_string());
  }
}
BENCHMARK(BM_Ipv6Format);

void BM_Ipv6Parse(benchmark::State& state) {
  const auto addresses = random_addresses(1024);
  std::vector<std::string> strings;
  for (const auto& a : addresses) strings.push_back(a.to_string());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Ipv6Address::parse(strings[i++ & 1023]));
  }
}
BENCHMARK(BM_Ipv6Parse);

void BM_IidEntropy(benchmark::State& state) {
  util::Rng rng(7);
  std::uint64_t iid = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::iid_entropy(iid));
    iid = util::mix64(iid);
  }
}
BENCHMARK(BM_IidEntropy);

void BM_ClassifyIid(benchmark::State& state) {
  util::Rng rng(8);
  std::uint64_t iid = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::classify_iid(iid, false));
    iid = util::mix64(iid);
  }
}
BENCHMARK(BM_ClassifyIid);

void BM_Eui64RoundTrip(benchmark::State& state) {
  std::uint64_t raw = 0x0c47c9123456ULL;
  for (auto _ : state) {
    const auto mac = net::MacAddress::from_u64(raw & 0xffffffffffffULL);
    const auto iid = net::eui64_iid_from_mac(mac);
    benchmark::DoNotOptimize(net::mac_from_eui64(iid));
    raw = util::mix64(raw);
  }
}
BENCHMARK(BM_Eui64RoundTrip);

void BM_InternetChecksum1k(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024);
  util::Rng rng(9);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::internet_checksum(data));
  }
}
BENCHMARK(BM_InternetChecksum1k);

void BM_Icmpv6EncodeDecode(benchmark::State& state) {
  const auto src = net::Ipv6Address::from_u64(1, 2);
  const auto dst = net::Ipv6Address::from_u64(3, 4);
  const auto msg = proto::make_echo_request(7, 9);
  for (auto _ : state) {
    const auto wire = proto::encode_icmpv6(msg, src, dst);
    benchmark::DoNotOptimize(proto::decode_icmpv6(wire, src, dst));
  }
}
BENCHMARK(BM_Icmpv6EncodeDecode);

void BM_NtpPacketEncodeDecode(benchmark::State& state) {
  const auto packet = proto::make_client_request(1000, 0xfeed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::NtpPacket::decode(packet.encode()));
  }
}
BENCHMARK(BM_NtpPacketEncodeDecode);

void BM_FeistelApplyInvert(benchmark::State& state) {
  const sim::FeistelPermutation perm(1 << 20, 0x5eed);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.invert(perm.apply(x)));
    x = (x + 1) & ((1 << 20) - 1);
  }
}
BENCHMARK(BM_FeistelApplyInvert);

void BM_CorpusInsert(benchmark::State& state) {
  hitlist::Corpus corpus(1 << 20);
  util::Rng rng(11);
  for (auto _ : state) {
    corpus.add(net::Ipv6Address::from_u64(rng.next(), rng.next()),
               static_cast<util::SimTime>(rng.bounded(1 << 24)),
               static_cast<std::uint8_t>(rng.bounded(27)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CorpusInsert);

void BM_CorpusLookupHit(benchmark::State& state) {
  hitlist::Corpus corpus(1 << 16);
  const auto addresses = random_addresses(1 << 14);
  for (const auto& a : addresses) corpus.add(a, 1, 0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus.find(addresses[i++ & ((1 << 14) - 1)]));
  }
}
BENCHMARK(BM_CorpusLookupHit);

struct WorldFixture {
  WorldFixture() {
    sim::WorldConfig config;
    config.seed = 3;
    config.total_sites = 1000;
    world = std::make_unique<sim::World>(sim::World::generate(config));
  }
  std::unique_ptr<sim::World> world;
};

WorldFixture& world_fixture() {
  static WorldFixture fixture;
  return fixture;
}

void BM_WorldDeviceAddress(benchmark::State& state) {
  const auto& world = *world_fixture().world;
  util::Rng rng(12);
  for (auto _ : state) {
    const auto d =
        static_cast<sim::DeviceId>(rng.bounded(world.devices().size()));
    benchmark::DoNotOptimize(
        world.device_address(d, static_cast<util::SimTime>(
                                    rng.bounded(200 * util::kDay))));
  }
}
BENCHMARK(BM_WorldDeviceAddress);

void BM_WorldResolve(benchmark::State& state) {
  const auto& world = *world_fixture().world;
  util::Rng rng(13);
  std::vector<net::Ipv6Address> targets;
  for (int i = 0; i < 1024; ++i) {
    const auto d =
        static_cast<sim::DeviceId>(rng.bounded(world.devices().size()));
    targets.push_back(world.device_address(d, 1000));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.resolve(targets[i++ & 1023], 1000));
  }
}
BENCHMARK(BM_WorldResolve);

// Ablation: fast vs wire-fidelity collection throughput (polls/second).
void collection_path(benchmark::State& state, bool wire) {
  const auto& world = *world_fixture().world;
  for (auto _ : state) {
    netsim::DataPlane plane(world, {0.01, 1});
    netsim::PoolDns dns(world);
    hitlist::PassiveCollector collector(world, plane, dns,
                                        {wire, 0.01, 3});
    hitlist::Corpus corpus(1 << 14);
    collector.run(corpus, 0, 2 * util::kDay);
    state.SetItemsProcessed(
        state.items_processed() +
        static_cast<std::int64_t>(collector.polls_attempted()));
  }
}

void BM_CollectFastPath(benchmark::State& state) {
  collection_path(state, false);
}
BENCHMARK(BM_CollectFastPath)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CollectWireFidelity(benchmark::State& state) {
  collection_path(state, true);
}
BENCHMARK(BM_CollectWireFidelity)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
