file(REMOVE_RECURSE
  "libv6_ntp.a"
)
