// Corpus: the aggregated observation store behind every dataset in the
// study (the NTP corpus, the simulated IPv6 Hitlist, the CAIDA campaign).
//
// Billions-of-addresses scale (paper) maps to millions here, so the store
// is a cache-friendly open-addressing hash table rather than node-based
// std::unordered_map: 16-byte key + 16-byte aggregate per slot, linear
// probing, power-of-two capacity. Per address it keeps exactly what the
// analyses need — first/last sighting, observation count, vantage bitmask —
// so collection is O(1) memory per *unique address*, not per observation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/ipv6.h"
#include "util/sim_time.h"

namespace v6::hitlist {

struct AddressRecord {
  net::Ipv6Address address;
  std::uint32_t first_seen = 0;  // seconds since study epoch
  std::uint32_t last_seen = 0;
  std::uint32_t count = 0;
  // Bit v set: seen at vantage v, for v < 31. Bit 31 is the overflow
  // bucket: a sighting from any vantage >= 31 sets it, so no observation
  // is ever silently dropped from the mask (the study runs 27 vantages;
  // the bucket only matters for configs beyond the mask's width).
  std::uint32_t vantage_mask = 0;

  util::SimDuration lifetime() const noexcept {
    return static_cast<util::SimDuration>(last_seen) - first_seen;
  }
};

class Corpus {
 public:
  explicit Corpus(std::size_t expected_addresses = 1 << 16);

  // A moved-from Corpus is empty but fully usable: find() answers
  // nullptr and the next add() lazily re-creates a minimal table (the
  // default-move alternative left an empty slot vector that find()/add()
  // would index into — UB).
  Corpus(Corpus&& other) noexcept;
  Corpus& operator=(Corpus&& other) noexcept;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  // Records one sighting. `t` must be >= 0 (clamped into u32 seconds).
  // `vantage` sets bit min(vantage, 31) of the record's vantage_mask —
  // out-of-range vantages land in the bit-31 overflow bucket rather than
  // being dropped.
  void add(const net::Ipv6Address& address, util::SimTime t,
           std::uint8_t vantage = 0);

  // Merges every record of `other` into *this.
  void merge(const Corpus& other);

  // Merges one pre-aggregated record (same semantics as merge()).
  void add_record(const AddressRecord& record);

  const AddressRecord* find(const net::Ipv6Address& address) const noexcept;

  // Rebuilds the table with records inserted in ascending address order.
  // Linear probing places colliding keys by insertion order, so the raw
  // slot layout — and with it for_each() order and save_corpus() bytes —
  // depends on the order sightings arrived. Canonicalizing makes the
  // layout a pure function of the stored content; collection calls this
  // at its final merge barrier so chunk grids (checkpoints, timeline
  // sampling) and shard counts change no output byte.
  void canonicalize();

  std::size_t size() const noexcept { return size_; }
  std::uint64_t total_observations() const noexcept { return observations_; }

  // Iterates all records (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.count != 0) fn(slot);
    }
  }

  // Sharded iteration domain for analysis::ParallelScan: the number of
  // backing slots. Partitioning [0, slot_span()) into contiguous ranges
  // and concatenating for_each_in_slot_range() over them in ascending
  // order visits records in exactly for_each() order — the invariant the
  // parallel analyses' determinism rests on.
  std::size_t slot_span() const noexcept { return slots_.size(); }

  // Iterates the records stored in slots [begin, end), in slot order.
  // `end` is clamped to slot_span().
  template <typename Fn>
  void for_each_in_slot_range(std::size_t begin, std::size_t end,
                              Fn&& fn) const {
    end = std::min(end, slots_.size());
    for (std::size_t i = begin; i < end; ++i) {
      if (slots_[i].count != 0) fn(slots_[i]);
    }
  }

 private:
  AddressRecord* lookup_slot(const net::Ipv6Address& address) noexcept;
  void grow();
  // Re-creates a minimal table after a move emptied this corpus.
  void revive_if_moved_from();

  std::vector<AddressRecord> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::uint64_t observations_ = 0;
};

}  // namespace v6::hitlist
