// Prefix -> country IP geolocation database (our MaxMind GeoLite2 stand-in).
//
// The real study used MaxMind only for country-level aggregation, so the
// database maps IPv6 prefixes to country codes with longest-prefix-match
// lookup. A configurable error rate lets experiments model MaxMind's
// imperfect accuracy: a "wrong" entry resolves to a different country than
// the ground truth it was built from.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "geo/country.h"
#include "net/prefix.h"

namespace v6::geo {

class GeoDatabase {
 public:
  // Registers a prefix->country mapping; later insertions overwrite.
  void add(const net::Ipv6Prefix& prefix, CountryCode country);

  // Longest-prefix match on the registered entries.
  std::optional<CountryCode> lookup(const net::Ipv6Address& address) const;

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  // Keyed by (hi64 of prefix address, prefix length); we only ever register
  // prefixes of length <= 64, which the add() precondition enforces.
  std::map<std::pair<std::uint64_t, int>, CountryCode> entries_;
};

}  // namespace v6::geo
