#include "scan/yarrp.h"

#include <algorithm>
#include <unordered_set>

#include "sim/feistel.h"
#include "util/rng.h"

namespace v6::scan {

YarrpTracer::YarrpTracer(netsim::DataPlane& plane, const YarrpConfig& config)
    : plane_(&plane), config_(config) {
  if (config_.metrics != nullptr) {
    metric_probes_ =
        config_.metrics->counter("v6_scan_probes_total", "Probes emitted",
                                 {{"scanner", "yarrp"}});
    metric_responses_ = config_.metrics->counter(
        "v6_scan_responsive_total", "Probes a live target answered",
        {{"scanner", "yarrp"}});
  }
}

std::vector<TraceResult> YarrpTracer::trace(
    std::span<const net::Ipv6Address> targets, util::SimTime t0) {
  std::vector<TraceResult> results(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    results[i].target = targets[i];
    results[i].hops.assign(config_.max_hops, net::Ipv6Address{});
    results[i].hop_responded.assign(config_.max_hops, false);
  }

  const std::uint64_t space =
      targets.size() * static_cast<std::uint64_t>(config_.max_hops);
  // Probe the (target, ttl) space in a keyed pseudo-random permutation —
  // Yarrp's signature randomization, which spreads load across paths.
  const sim::FeistelPermutation order(space ? space : 1,
                                      config_.seed ^ 0x9a44b);
  const std::uint64_t rate = config_.probe_rate ? config_.probe_rate : 1;
  // Probe indices come from the permutation a chunk at a time
  // (apply_batch is bit-identical to per-index apply, so the probe
  // schedule — and every trace — is unchanged).
  constexpr std::uint64_t kChunk = 1024;
  std::uint64_t ks[kChunk];
  std::uint64_t probe_indices[kChunk];
  for (std::uint64_t base = 0; base < space; base += kChunk) {
    const std::uint64_t n = std::min(kChunk, space - base);
    for (std::uint64_t i = 0; i < n; ++i) ks[i] = base + i;
    order.apply_batch(ks, n, probe_indices);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t k = base + i;
      const std::uint64_t probe_index = probe_indices[i];
      const std::size_t ti = probe_index / config_.max_hops;
      const auto ttl = static_cast<std::uint8_t>(
          1 + probe_index % config_.max_hops);
      const util::SimTime t = t0 + static_cast<util::SimTime>(k / rate);
      // State rides in ident/seq so responses need no lookup table.
      const auto ident = static_cast<std::uint16_t>(
          util::mix64(targets[ti].lo64() ^ config_.seed));
      ++sent_;
      metric_probes_.inc();
      const auto result = plane_->hop_limited_echo(
          config_.source, targets[ti], ttl, ident, ttl, t);
      switch (result.kind) {
        case netsim::ProbeResult::Kind::kTimeExceeded:
          results[ti].hops[ttl - 1] = result.responder;
          results[ti].hop_responded[ttl - 1] = true;
          metric_responses_.inc();
          break;
        case netsim::ProbeResult::Kind::kEchoReply:
          results[ti].destination_reached = true;
          metric_responses_.inc();
          break;
        case netsim::ProbeResult::Kind::kTimeout:
          break;
      }
    }
  }
  return results;
}

std::vector<net::Ipv6Address> YarrpTracer::discovered(
    std::span<const TraceResult> results) {
  std::unordered_set<net::Ipv6Address> seen;
  for (const auto& r : results) {
    for (std::size_t h = 0; h < r.hops.size(); ++h) {
      if (r.hop_responded[h]) seen.insert(r.hops[h]);
    }
    if (r.destination_reached) seen.insert(r.target);
  }
  std::vector<net::Ipv6Address> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace v6::scan
