// The passive collection pipeline: every pool-using device's NTP polls,
// steered to vantage servers by the pool DNS, logged into a Corpus.
//
// Two execution paths produce identical corpora (a test asserts it):
//   * wire-fidelity — each poll runs the full stack: RFC 5905 client
//     request -> UDP with pseudo-header checksum -> data-plane delivery
//     (loss applies) -> server decode/validate/respond -> client validates
//     the response (mode, origin echo). This is the honest path.
//   * fast — skips serialization but keeps the identical control flow
//     (same DNS steering, same loss decisions, same server-side record
//     call), which makes the 10M+-poll benches tractable.
// Both paths consume exactly two RNG draws per poll attempt from the
// device's stream (the wire path spends them on nonce + source port, the
// fast path on the two loss decisions), so the streams stay in lockstep
// and — at zero loss — the corpora are bit-identical even under an
// injected fault plan.
//
// Clients retry unanswered polls RFC 5905-style: up to `retry_limit`
// re-sends with exponential backoff, which is what lets the corpus survive
// vantage crash windows (see netsim::FaultSchedule) with bounded loss.
//
// Collection shards across threads: devices are partitioned into
// contiguous ranges, each shard runs the per-device loop into its own
// Corpus, and the shards reduce through Corpus::merge(). Because every
// device's observation stream derives only from its own seeded RNG, the
// merged corpus is bit-identical (size, total_observations, every record
// field) to the threads=1 run — a property the tests assert.
//
// Checkpoint/resume: with `checkpoint_interval > 0` and a CheckpointSink,
// collection pauses at every sim-time boundary window_start + k*interval,
// snapshots the corpus-so-far plus a CheckpointState cursor, and hands
// both to the sink. A crashed run restarts via resume(): the enumeration
// [window_start, resume_from) is replayed with recording suppressed —
// consuming RNG, DNS, and data-plane state exactly as the original run
// did — then recording switches on at resume_from. The chunk boundaries
// never alter any per-device stream, so an interrupted-and-resumed run is
// bit-identical to an uninterrupted one (a test asserts this at every
// checkpoint under an active fault schedule).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hitlist/corpus.h"
#include "netsim/data_plane.h"
#include "netsim/pool_dns.h"
#include "ntp/client_schedule.h"
#include "ntp/server.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/world.h"
#include "util/parallelism.h"

namespace v6::hitlist {

class TieredCorpus;

struct CollectorConfig {
  bool wire_fidelity = false;
  // Loss applied on the fast path (the wire path inherits the data
  // plane's own loss); keep the two equal so the paths agree.
  double loss_rate = 0.01;
  std::uint64_t seed = 3;
  // Ablation switch: treat every client as a single-packet (non-iburst)
  // poller.
  bool ignore_bursts = false;
  // Collection shards (see util::Parallelism for the 0/1/N contract). The
  // wire_fidelity path always runs serially regardless of this knob:
  // every poll mutates the shared DataPlane.
  util::Parallelism threads = util::Parallelism::hardware();
  // RFC 5905-style client persistence: an unanswered poll packet is
  // re-sent up to `retry_limit` times, the i-th retry delayed by
  // retry_backoff * (2^i - 1) seconds after the original send. 0 keeps
  // the legacy fire-once client.
  std::uint32_t retry_limit = 0;
  util::SimDuration retry_backoff = 4;
  // Sim-time spacing of checkpoint boundaries; 0 disables checkpointing.
  // The interval never changes the collected corpus — it only decides
  // where a crashed run can resume from.
  util::SimDuration checkpoint_interval = 0;
  // Optional metrics sink (not owned; must outlive the collector). All
  // collector counters are bulk-incremented from the per-shard tallies at
  // merge time — the per-poll hot loop never touches the registry — so
  // wiring metrics cannot perturb throughput or determinism.
  obs::Registry* metrics = nullptr;
  // Optional timeline sampler (not owned), invoked at interior sim-time
  // grid boundaries (sampler->next_boundary) inside the collection
  // window. Each boundary is a merge barrier: the chunk loop joins all
  // shards there, flushes the cumulative tallies into the registry, and
  // only then samples — so every WindowRecord is exact and independent of
  // the shard count. The window-end sample is the *caller's* job (Study
  // samples at each stage transition), keeping stage windows out of the
  // collector. Requires `metrics` to point at the sampler's registry.
  obs::TimelineSampler* sampler = nullptr;
  // Stage tag the sampler stamps on windows closed inside this collector
  // (the backscan pass runs a second collector with its own tag).
  std::string sampler_stage = "collect";
  // Distributed-collection vantage subset: when non-empty, only polls to
  // vantage ids v with vantage_filter[v] == true are *recorded* (corpus
  // observations, tallies, per-vantage health). Every device still runs
  // its full simulation — identical RNG draws, DNS steering, fault
  // verdicts, and retry control flow — so N workers with disjoint filters
  // merge bit-identically to one unfiltered run (Corpus aggregation is
  // commutative and each poll is recorded by exactly one worker). Empty
  // means record everything.
  std::vector<bool> vantage_filter;
  // Polls steered to pool servers that are not our vantages (the
  // "invisible" tally) must be counted by exactly one worker for the
  // summed polls_attempted to match the single-process value; the dist
  // layer sets this true only on the subset-0 worker. Irrelevant (and
  // left true) when vantage_filter is empty.
  bool count_unassigned = true;
  // Serving-layer epoch publication (see serve::QueryService). With a
  // sink and a positive interval, the chunk loop pauses at every sim-time
  // boundary window_start + k * epoch_interval, joins all shards, and
  // hands the sink the *canonicalized* union corpus as of that boundary.
  // Because the union is built at a merge barrier from commutative
  // aggregates and canonicalize() sorts it, the handed corpus is
  // bit-identical at any shard count — which is what lets the serving
  // layer promise per-epoch determinism. Ignored on hooked passes (the
  // grid must not reshape a hooked run's chunking; see `sampler`). The
  // window-end epoch is the caller's job, mirroring the sampler contract.
  std::function<void(util::SimTime, const Corpus&)> epoch_sink = {};
  util::SimDuration epoch_interval = 0;
};

// Per-vantage degradation accounting, reported instead of aborting when a
// fault plan is active. All counters cover recorded (non-replayed) polls
// addressed to that vantage. Naming follows the repo-wide stats
// convention (see AnalysisStageStats): counts are plain nouns, durations
// would carry a `_us` suffix.
struct VantageHealthStats {
  std::uint64_t polls = 0;          // packet attempts steered here
  std::uint64_t answered = 0;       // attempts the client heard back from
  std::uint64_t lost_to_fault = 0;  // attempts the fault plan swallowed
  std::uint64_t retries = 0;        // re-sends triggered by silence
  std::uint64_t steered_polls = 0;  // sync events won via health steering
};

// The resumable cursor written alongside every corpus snapshot: where the
// window was, how far collection got (`resume_from` — every sync event
// with base time < resume_from is in the snapshot), and the counters
// accumulated so far.
struct CheckpointState {
  util::SimTime window_start = 0;
  util::SimTime window_end = 0;
  util::SimTime resume_from = 0;
  std::uint64_t polls_attempted = 0;
  std::uint64_t polls_answered = 0;
  std::vector<VantageHealthStats> vantage_health;
};

// Receives each checkpoint: the cursor plus the full corpus as of
// `state.resume_from`. The corpus reference is only valid for the call.
using CheckpointSink =
    std::function<void(const CheckpointState&, const Corpus&)>;

// Called for every accepted observation, after it is added to the corpus.
// `vantage_address` is the server the client spoke to (backscanning probes
// from there).
//
// Concurrency contract: with more than one collection shard, hook
// invocations are serialized (a shard-global mutex), so the hook body
// needs no locking of its own — but the *order* in which observations
// from different shards arrive is unspecified. Hooks whose results depend
// on arrival order (e.g. one feeding a stateful scanner) must run with
// `threads = 1`; order-independent aggregation (corpora, per-day
// counters) is safe at any shard count.
using ObservationHook = std::function<void(
    const ntp::Observation&, const net::Ipv6Address& vantage_address)>;

class PassiveCollector {
 public:
  PassiveCollector(const sim::World& world, netsim::DataPlane& plane,
                   const netsim::PoolDns& dns, const CollectorConfig& config);

  // Runs collection over [start, end); fills `corpus`. `sink`, combined
  // with CollectorConfig::checkpoint_interval, receives periodic
  // snapshots.
  void run(Corpus& corpus, util::SimTime start, util::SimTime end,
           const ObservationHook& hook = {}, const CheckpointSink& sink = {});

  // Out-of-core collection: identical window semantics and observation
  // streams, but whenever the shard tables' combined heap footprint
  // crosses runs.config().memory_budget_bytes at a merge barrier, their
  // union is flushed into `runs` as one on-disk run and the tables reset
  // (the tail is flushed at window end regardless). Barriers come from
  // the checkpoint/sampling grids plus runs.config().barrier_interval,
  // so a run without either still spills on a sim-time grid. The spilled
  // union always covers ALL shards, which keeps each run's *content* a
  // pure function of the boundary time — the merged stream (and thus
  // every analysis and save() byte) is identical to the in-memory run at
  // any thread count and any budget; a test asserts exactly that.
  // Checkpoint sinks see the same corpus-so-far snapshots as the
  // in-memory path (reconstructed from the runs); the tiered resume()
  // overload below resumes a crashed out-of-core run.
  void run(TieredCorpus& runs, util::SimTime start, util::SimTime end,
           const ObservationHook& hook = {}, const CheckpointSink& sink = {});

  // Resumes a crashed run from a checkpoint. `corpus` must hold the
  // snapshot that was written with `from` (e.g. via checkpoint_io);
  // collection replays silently up to from.resume_from, then records the
  // remainder of the window into `corpus`. Counters continue from the
  // checkpointed values.
  //
  // Sink-failure contract (worker-upload sinks throw on coordinator
  // disconnect): if `sink` throws, the exception propagates and `corpus`
  // is left EXACTLY as the caller passed it in — the tail recorded since
  // resume_from lives in shard-private tables that are only merged into
  // `corpus` after the chunk loop finishes cleanly. The caller may
  // therefore either retry this resume() verbatim (same corpus, same
  // `from`) or reload the last checkpoint the sink durably accepted and
  // resume from that; both reproduce the uninterrupted run bit-exactly.
  // The same guarantee holds when run()'s sink throws mid-collection.
  void resume(Corpus& corpus, const CheckpointState& from,
              const ObservationHook& hook = {},
              const CheckpointSink& sink = {});

  // Out-of-core resume: honors a spill budget while resuming. `snapshot`
  // (the checkpointed corpus for `from`) is seeded into `runs` as its
  // first on-disk run, then the tail collects through the same spill
  // machinery as run(TieredCorpus&). The merged stream — and every
  // analysis float and save() byte derived from it — is identical to the
  // in-memory resume at any thread count and budget. On a sink throw,
  // `runs` keeps every run spilled so far (including the seeded
  // snapshot); recovery is a fresh TieredCorpus resumed from the last
  // checkpoint the sink durably accepted, not a retry on the same `runs`.
  void resume(TieredCorpus& runs, Corpus&& snapshot,
              const CheckpointState& from, const ObservationHook& hook = {},
              const CheckpointSink& sink = {});

  std::uint64_t polls_attempted() const noexcept { return polls_; }
  std::uint64_t polls_answered() const noexcept { return answered_; }
  // Indexed by vantage id; empty before the first run()/resume().
  const std::vector<VantageHealthStats>& vantage_health() const noexcept {
    return vantage_health_;
  }

 private:
  // Per-shard poll counters, kept thread-local during collection and
  // summed into the collector's totals once the shards join.
  struct ShardTally {
    std::uint64_t polls = 0;
    std::uint64_t answered = 0;
  };

  // A pool-using device mid-enumeration: its seeded RNG, its schedule,
  // and the poll popped from the schedule but not yet processed (because
  // it belongs to a later chunk).
  struct DeviceState {
    sim::DeviceId id;
    util::Rng rng;
    ntp::ClientSchedule schedule;
    ntp::ClientSchedule::Cursor cursor;
    std::optional<util::SimTime> pending;
  };

  // Everything one shard carries across chunk boundaries.
  struct ShardState {
    Corpus corpus{1 << 12};
    std::vector<std::unique_ptr<ntp::NtpServer>> servers;
    std::vector<DeviceState> devices;
    ShardTally tally;
    std::vector<VantageHealthStats> vantage;
    // Observations recorded into this shard's corpus per vantage id
    // (pre-dedup). Lives outside VantageHealthStats because that struct
    // is serialized in the V6CKPT01 checkpoint format.
    std::vector<std::uint64_t> vantage_obs;
    // Consulted by the observation sink: false while replaying the
    // already-checkpointed prefix of a resumed run.
    bool recording = true;
  };

  void collect(Corpus& corpus, const CheckpointState& from,
               const ObservationHook& hook, const CheckpointSink& sink);

  // Processes every sync event of this shard with base time < chunk_end.
  void process_chunk(ShardState& shard, util::SimTime window_end,
                     util::SimTime chunk_end) const;

  // One sync event (burst + per-packet retries) for one device.
  void process_event(ShardState& shard, DeviceState& ds, util::SimTime t,
                     util::SimTime window_end) const;

  // Whether this collector records traffic at the vantage (true for all
  // vantages when CollectorConfig::vantage_filter is empty).
  bool vantage_enabled(std::uint8_t vantage) const noexcept {
    return config_.vantage_filter.empty() ||
           (vantage < config_.vantage_filter.size() &&
            config_.vantage_filter[vantage]);
  }

  const sim::World* world_;
  netsim::DataPlane* plane_;
  const netsim::PoolDns* dns_;
  CollectorConfig config_;
  // Non-null only inside the TieredCorpus run() overload: collect()
  // spills into it instead of merging into the caller's corpus.
  TieredCorpus* tiered_ = nullptr;
  std::uint64_t polls_ = 0;
  std::uint64_t answered_ = 0;
  std::vector<VantageHealthStats> vantage_health_;
  // No-op handles unless CollectorConfig::metrics was wired.
  obs::Counter metric_polls_;
  obs::Counter metric_answered_;
  obs::Counter metric_records_;
  obs::Counter metric_dedup_hits_;
  obs::Counter metric_checkpoints_;
  // Labeled per vantage; the four families the TimelineSampler folds into
  // per-vantage series (see obs/timeline.h).
  std::vector<obs::Counter> metric_vantage_polls_;
  std::vector<obs::Counter> metric_vantage_answered_;
  std::vector<obs::Counter> metric_vantage_fault_lost_;
  std::vector<obs::Counter> metric_vantage_records_;
};

}  // namespace v6::hitlist
