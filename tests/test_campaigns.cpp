#include "hitlist/campaigns.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace v6::hitlist {
namespace {

class CampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 101;
    config.total_sites = 500;
    world_ = new sim::World(sim::World::generate(config));
    plane_ = new netsim::DataPlane(*world_, {0.005, 5});

    HitlistCampaignConfig hl;
    hl.start = 5 * util::kDay;
    hl.duration = 6 * util::kWeek;
    hitlist_ = new HitlistResult(run_hitlist_campaign(*world_, *plane_, hl));

    // A fresh plane so the CAIDA run (and its determinism test below) does
    // not depend on how much loss-RNG the Hitlist campaign consumed.
    netsim::DataPlane caida_plane(*world_, {0.005, 5});
    CaidaCampaignConfig ca;
    ca.start = 5 * util::kDay;
    ca.duration = 14 * util::kDay;
    ca.slash48_fraction = 0.01;
    caida_ = new CaidaResult(run_caida_campaign(*world_, caida_plane, ca));
  }
  static void TearDownTestSuite() {
    delete caida_;
    delete hitlist_;
    delete plane_;
    delete world_;
  }
  static sim::World* world_;
  static netsim::DataPlane* plane_;
  static HitlistResult* hitlist_;
  static CaidaResult* caida_;
};

sim::World* CampaignTest::world_ = nullptr;
netsim::DataPlane* CampaignTest::plane_ = nullptr;
HitlistResult* CampaignTest::hitlist_ = nullptr;
CaidaResult* CampaignTest::caida_ = nullptr;

TEST_F(CampaignTest, HitlistDiscoversAddresses) {
  EXPECT_GT(hitlist_->corpus.size(), 500u);
  EXPECT_GT(hitlist_->probes_sent, hitlist_->corpus.size());
  EXPECT_EQ(hitlist_->snapshots, 6u);
}

TEST_F(CampaignTest, HitlistPublishesNoAliasedAddresses) {
  std::uint64_t inside_aliased = 0;
  hitlist_->corpus.for_each([&](const AddressRecord& rec) {
    for (const auto& p : hitlist_->aliased_prefixes) {
      if (p.contains(rec.address)) ++inside_aliased;
    }
  });
  EXPECT_EQ(inside_aliased, 0u);
}

TEST_F(CampaignTest, HitlistDetectsDatacenterAliases) {
  // Every ground-truth fully-aliased datacenter /48 should be covered by
  // some published aliased prefix.
  std::uint64_t covered = 0, total = 0;
  for (const auto& truth : world_->aliased_datacenter_prefixes()) {
    ++total;
    for (const auto& p : hitlist_->aliased_prefixes) {
      if (p.contains(truth) || truth.contains(p)) {
        ++covered;
        break;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GE(covered, total * 8 / 10);
}

TEST_F(CampaignTest, HitlistSkewsTowardInfrastructure) {
  // The Hitlist should be much heavier in low-IID structure than a client
  // corpus: most addresses are routers/servers/CPE.
  std::uint64_t low_iid = 0;
  hitlist_->corpus.for_each([&](const AddressRecord& rec) {
    if (rec.address.iid() <= 0xffff) ++low_iid;
  });
  EXPECT_GT(low_iid, hitlist_->corpus.size() / 4);
}

TEST_F(CampaignTest, CaidaDiscoversRouters) {
  EXPECT_GT(caida_->corpus.size(), 200u);
  EXPECT_GT(caida_->traces, 10000u);
  EXPECT_GT(caida_->probes_sent, caida_->traces);
}

TEST_F(CampaignTest, CaidaDensityIsOnePerSlash48) {
  // Table 1: the routed-/48 campaign averages ~1 address per /48.
  std::unordered_set<std::uint64_t> s48s;
  caida_->corpus.for_each([&](const AddressRecord& rec) {
    s48s.insert(rec.address.hi64() >> 16);
  });
  const double density = static_cast<double>(caida_->corpus.size()) /
                         static_cast<double>(s48s.size());
  EXPECT_LT(density, 3.0);
}

TEST_F(CampaignTest, CaidaIsMostlyLowEntropyInfrastructure) {
  std::uint64_t low_iid = 0;
  caida_->corpus.for_each([&](const AddressRecord& rec) {
    if (rec.address.iid() <= 0xffff) ++low_iid;
  });
  EXPECT_GT(low_iid, caida_->corpus.size() * 7 / 10);
}

TEST_F(CampaignTest, CampaignsAreDeterministicGivenSeeds) {
  netsim::DataPlane plane(*world_, {0.005, 5});
  CaidaCampaignConfig ca;
  ca.start = 5 * util::kDay;
  ca.duration = 14 * util::kDay;
  ca.slash48_fraction = 0.01;
  const auto again = run_caida_campaign(*world_, plane, ca);
  EXPECT_EQ(again.corpus.size(), caida_->corpus.size());
  EXPECT_EQ(again.probes_sent, caida_->probes_sent);
}

}  // namespace
}  // namespace v6::hitlist
