#include "netsim/fault_schedule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace v6::netsim {

namespace {

// Locates the window active at t, or the most recent one that ended at or
// before t, via binary search on the sorted starts. Returns nullptr when t
// precedes every window.
const OutageWindow* latest_window(std::span<const OutageWindow> windows,
                                  util::SimTime t) noexcept {
  auto it = std::upper_bound(
      windows.begin(), windows.end(), t,
      [](util::SimTime v, const OutageWindow& w) { return v < w.start; });
  if (it == windows.begin()) return nullptr;
  return &*(it - 1);
}

}  // namespace

FaultSchedule::FaultSchedule(std::span<const sim::VantagePoint> vantages) {
  windows_.resize(vantages.size());
  for (const auto& v : vantages) by_address_[v.address] = v.id;
}

FaultSchedule::FaultSchedule(std::size_t lanes) { windows_.resize(lanes); }

FaultSchedule::FaultSchedule(std::span<const sim::VantagePoint> vantages,
                             const FaultPlanConfig& config,
                             util::SimTime plan_start, util::SimTime plan_end)
    : FaultSchedule(vantages) {
  slow_start_ = config.slow_start;
  seed_ = config.seed;
  if (plan_end <= plan_start) return;
  const auto span = static_cast<double>(plan_end - plan_start);

  for (const auto& v : vantages) {
    util::Rng rng(util::mix64(config.seed ^ 0xfa017a11u ^
                              util::mix64(static_cast<std::uint64_t>(v.id))));
    std::vector<OutageWindow>& out = windows_[v.id];

    // count = floor(mean) + Bernoulli(frac) keeps the per-vantage expected
    // number of windows exactly at the configured mean while staying
    // deterministic per seed.
    const auto draw_count = [&rng](double mean) -> std::uint32_t {
      if (mean <= 0.0) return 0;
      const double floor_part = std::floor(mean);
      auto n = static_cast<std::uint32_t>(floor_part);
      if (rng.chance(mean - floor_part)) ++n;
      return n;
    };

    const auto add = [&](util::SimDuration mean_len,
                         util::SimDuration min_len) {
      const auto start =
          plan_start + static_cast<util::SimDuration>(rng.uniform() * span);
      const double extra_mean =
          std::max(0.0, static_cast<double>(mean_len - min_len));
      auto len = min_len;
      if (extra_mean > 0.0) {
        len += static_cast<util::SimDuration>(rng.exponential(extra_mean));
      }
      out.push_back({start, std::min(plan_end, start + std::max<util::SimDuration>(1, len))});
    };

    const std::uint32_t outages = draw_count(config.outages_per_vantage);
    for (std::uint32_t i = 0; i < outages; ++i) {
      add(config.mean_outage, config.min_outage);
    }
    const std::uint32_t flaps = draw_count(config.flaps_per_vantage);
    for (std::uint32_t i = 0; i < flaps; ++i) {
      add(config.mean_flap, 1);
    }

    std::sort(out.begin(), out.end(),
              [](const OutageWindow& a, const OutageWindow& b) {
                return a.start < b.start;
              });
    // Merge overlapping / touching windows so the per-vantage list is
    // sorted and disjoint (the lookup helpers rely on this).
    std::vector<OutageWindow> merged;
    for (const auto& w : out) {
      if (!merged.empty() && w.start <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, w.end);
      } else {
        merged.push_back(w);
      }
    }
    out = std::move(merged);
  }
}

bool FaultSchedule::in_outage(std::uint8_t vantage,
                              util::SimTime t) const noexcept {
  if (vantage >= windows_.size()) return false;
  const OutageWindow* w = latest_window(windows_[vantage], t);
  return w != nullptr && t < w->end;
}

bool FaultSchedule::delivers(std::uint8_t vantage, const net::Ipv6Address& src,
                             util::SimTime t) const noexcept {
  if (vantage >= windows_.size()) return true;
  const OutageWindow* w = latest_window(windows_[vantage], t);
  if (w == nullptr) return true;
  if (t < w->end) return false;  // dark
  if (slow_start_ <= 0 || t >= w->end + slow_start_) return true;
  // Slow-start ramp: serve a linearly growing fraction. The decision is a
  // pure hash of (plan seed, vantage, client, second) so every caller —
  // fast path, wire path, resumed run — agrees without touching any Rng.
  const double ramp = static_cast<double>(t - w->end) /
                      static_cast<double>(slow_start_);
  const std::uint64_t h = util::mix64(
      seed_ ^ 0x510057a7u ^ util::mix64(static_cast<std::uint64_t>(vantage)) ^
      util::mix64(src.hi64()) ^ util::mix64(src.lo64() ^
                                            static_cast<std::uint64_t>(t)));
  const double roll =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  return roll < ramp;
}

bool FaultSchedule::delivers_to(const net::Ipv6Address& dst,
                                const net::Ipv6Address& src,
                                util::SimTime t) const noexcept {
  const auto it = by_address_.find(dst);
  if (it == by_address_.end()) return true;
  return delivers(it->second, src, t);
}

bool FaultSchedule::marked_down(std::uint8_t vantage, util::SimTime t,
                                util::SimDuration monitoring_delay)
    const noexcept {
  if (vantage >= windows_.size()) return false;
  // Marked down during [start + delay, end + delay): the monitor lags both
  // the crash and the recovery by the same detection delay.
  const OutageWindow* w =
      latest_window(windows_[vantage], t - monitoring_delay);
  return w != nullptr && t - monitoring_delay < w->end;
}

void FaultSchedule::add_window(std::uint8_t vantage, util::SimTime start,
                               util::SimTime end) {
  if (vantage >= windows_.size()) windows_.resize(vantage + 1u);
  windows_[vantage].push_back({start, end});
}

std::span<const OutageWindow> FaultSchedule::windows(
    std::uint8_t vantage) const noexcept {
  if (vantage >= windows_.size()) return {};
  return windows_[vantage];
}

// --- WorkerFaultSchedule ---------------------------------------------------

namespace {

// The dist layer keys lanes by uint32 worker ids; the base class's window
// store is uint8-keyed. Constructors reject wider fleets up front.
std::uint8_t lane(std::uint32_t worker) {
  return static_cast<std::uint8_t>(worker);
}

}  // namespace

WorkerFaultSchedule::WorkerFaultSchedule(std::uint32_t workers)
    : FaultSchedule(static_cast<std::size_t>(workers)),
      kill_at_(workers),
      slows_(workers) {
  if (workers > 255) {
    throw std::invalid_argument("WorkerFaultSchedule: at most 255 workers");
  }
}

WorkerFaultSchedule::WorkerFaultSchedule(std::uint32_t workers,
                                         const WorkerFaultPlanConfig& config,
                                         util::SimTime plan_start,
                                         util::SimTime plan_end)
    : WorkerFaultSchedule(workers) {
  if (plan_end <= plan_start) return;
  const auto span = static_cast<double>(plan_end - plan_start);
  for (std::uint32_t w = 0; w < workers; ++w) {
    util::Rng rng(util::mix64(config.seed ^ 0xd15fa017u ^
                              util::mix64(static_cast<std::uint64_t>(w))));
    // Same count scheme as the vantage plan: floor(mean) + Bernoulli(frac)
    // keeps the per-worker expectation exactly at the configured mean.
    const auto draw_count = [&rng](double mean) -> std::uint32_t {
      if (mean <= 0.0) return 0;
      const double floor_part = std::floor(mean);
      auto n = static_cast<std::uint32_t>(floor_part);
      if (rng.chance(mean - floor_part)) ++n;
      return n;
    };
    if (rng.chance(std::min(1.0, config.kills_per_worker))) {
      kill_at_[w] =
          plan_start + static_cast<util::SimDuration>(rng.uniform() * span);
    }
    const std::uint32_t stalls = draw_count(config.stalls_per_worker);
    std::vector<OutageWindow> stall_windows;
    for (std::uint32_t i = 0; i < stalls; ++i) {
      const auto start =
          plan_start + static_cast<util::SimDuration>(rng.uniform() * span);
      const auto len = std::max<util::SimDuration>(
          1, static_cast<util::SimDuration>(
                 rng.exponential(static_cast<double>(config.mean_stall))));
      stall_windows.push_back({start, std::min(plan_end, start + len)});
    }
    std::sort(stall_windows.begin(), stall_windows.end(),
              [](const OutageWindow& a, const OutageWindow& b) {
                return a.start < b.start;
              });
    util::SimTime last_end = plan_start;
    for (const auto& sw : stall_windows) {
      if (sw.start < last_end) continue;  // drop overlaps, keep order
      add_window(lane(w), sw.start, sw.end);
      last_end = sw.end;
    }
    const std::uint32_t slows = draw_count(config.slows_per_worker);
    std::vector<SlowWindow> slow_windows;
    for (std::uint32_t i = 0; i < slows; ++i) {
      const auto start =
          plan_start + static_cast<util::SimDuration>(rng.uniform() * span);
      const auto len = std::max<util::SimDuration>(
          1, static_cast<util::SimDuration>(
                 rng.exponential(static_cast<double>(config.mean_slow))));
      slow_windows.push_back(
          {start, std::min(plan_end, start + len), config.slow_factor});
    }
    std::sort(slow_windows.begin(), slow_windows.end(),
              [](const SlowWindow& a, const SlowWindow& b) {
                return a.start < b.start;
              });
    last_end = plan_start;
    for (const auto& sw : slow_windows) {
      if (sw.start < last_end) continue;
      slows_[w].push_back(sw);
      last_end = sw.end;
    }
  }
}

std::optional<util::SimTime> WorkerFaultSchedule::kill_at(
    std::uint32_t worker) const noexcept {
  if (worker >= kill_at_.size()) return std::nullopt;
  return kill_at_[worker];
}

bool WorkerFaultSchedule::stalled(std::uint32_t worker,
                                  util::SimTime t) const noexcept {
  return worker <= 255 && in_outage(lane(worker), t);
}

util::SimTime WorkerFaultSchedule::stall_end(std::uint32_t worker,
                                             util::SimTime t) const noexcept {
  if (worker > 255) return t;
  for (const OutageWindow& w : windows(lane(worker))) {
    if (t >= w.start && t < w.end) return w.end;
  }
  return t;
}

double WorkerFaultSchedule::cost_factor(std::uint32_t worker,
                                        util::SimTime t) const noexcept {
  if (worker >= slows_.size()) return 1.0;
  for (const SlowWindow& w : slows_[worker]) {
    if (t >= w.start && t < w.end) return std::max(1.0, w.factor);
  }
  return 1.0;
}

void WorkerFaultSchedule::set_kill(std::uint32_t worker, util::SimTime t) {
  if (worker >= kill_at_.size()) {
    kill_at_.resize(worker + 1u);
    slows_.resize(worker + 1u);
  }
  kill_at_[worker] = t;
}

void WorkerFaultSchedule::add_stall(std::uint32_t worker, util::SimTime start,
                                    util::SimTime end) {
  if (worker > 255) {
    throw std::invalid_argument("WorkerFaultSchedule: at most 255 workers");
  }
  if (worker >= kill_at_.size()) {
    kill_at_.resize(worker + 1u);
    slows_.resize(worker + 1u);
  }
  add_window(lane(worker), start, end);
}

void WorkerFaultSchedule::add_slow(std::uint32_t worker, util::SimTime start,
                                   util::SimTime end, double factor) {
  if (worker >= slows_.size()) {
    kill_at_.resize(worker + 1u);
    slows_.resize(worker + 1u);
  }
  slows_[worker].push_back({start, end, factor});
}

}  // namespace v6::netsim
