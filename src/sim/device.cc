#include "sim/device.h"

#include "sim/types.h"

namespace v6::sim {

const char* to_string(AsType t) noexcept {
  switch (t) {
    case AsType::kIspBroadband:
      return "ISP (broadband)";
    case AsType::kIspMobile:
      return "Phone Provider";
    case AsType::kCloud:
      return "Computer and IT";
    case AsType::kEducation:
      return "Education";
    case AsType::kTransit:
      return "Transit";
  }
  return "?";
}

const char* to_string(DeviceKind k) noexcept {
  switch (k) {
    case DeviceKind::kRouter:
      return "router";
    case DeviceKind::kCpe:
      return "cpe";
    case DeviceKind::kServer:
      return "server";
    case DeviceKind::kDesktop:
      return "desktop";
    case DeviceKind::kMobile:
      return "mobile";
    case DeviceKind::kIot:
      return "iot";
  }
  return "?";
}

const char* to_string(IidStrategy s) noexcept {
  switch (s) {
    case IidStrategy::kEui64:
      return "eui64";
    case IidStrategy::kRandomEphemeral:
      return "random-ephemeral";
    case IidStrategy::kRandomStable:
      return "random-stable";
    case IidStrategy::kLowByte:
      return "low-byte";
    case IidStrategy::kLow2Bytes:
      return "low-2-bytes";
    case IidStrategy::kZero:
      return "zero";
    case IidStrategy::kIpv4Embedded:
      return "ipv4-embedded";
    case IidStrategy::kStructuredLow:
      return "structured-low";
    case IidStrategy::kDhcpSequential:
      return "dhcp-sequential";
    case IidStrategy::kSparseEphemeral:
      return "sparse-ephemeral";
  }
  return "?";
}

}  // namespace v6::sim
