#include "analysis/entropy_distribution.h"

#include <gtest/gtest.h>

#include "net/entropy.h"

namespace v6::analysis {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

TEST(EntropyDistribution, OneSamplePerUniqueAddress) {
  hitlist::Corpus corpus;
  corpus.add(addr(1, 0x0123456789abcdefULL), 0);
  corpus.add(addr(1, 0x0123456789abcdefULL), 5);  // duplicate sighting
  corpus.add(addr(2, 0x1ULL), 0);
  const auto dist = entropy_distribution(corpus);
  EXPECT_EQ(dist.count(), 2u);
  EXPECT_DOUBLE_EQ(dist.max(), 1.0);
  EXPECT_LT(dist.min(), 0.25);
}

TEST(EntropyDistribution, AddressSpanOverload) {
  const net::Ipv6Address addresses[] = {addr(1, 0), addr(2, 0xffULL)};
  const auto dist = entropy_distribution(addresses);
  EXPECT_EQ(dist.count(), 2u);
}

TEST(EntropyDistribution, IntersectionFindsCommonOnly) {
  hitlist::Corpus a, b;
  a.add(addr(1, 0x0123456789abcdefULL), 0);
  a.add(addr(2, 0x2ULL), 0);
  b.add(addr(1, 0x0123456789abcdefULL), 9);
  b.add(addr(3, 0x3ULL), 9);
  EXPECT_EQ(intersection_size(a, b), 1u);
  const auto dist = intersection_entropy_distribution(a, b);
  ASSERT_EQ(dist.count(), 1u);
  EXPECT_DOUBLE_EQ(dist.median(), 1.0);
}

TEST(EntropyDistribution, IntersectionIsSymmetric) {
  hitlist::Corpus a, b;
  for (std::uint64_t i = 0; i < 100; ++i) a.add(addr(i, i), 0);
  for (std::uint64_t i = 50; i < 200; ++i) b.add(addr(i, i), 0);
  EXPECT_EQ(intersection_size(a, b), intersection_size(b, a));
  EXPECT_EQ(intersection_size(a, b), 50u);
}

TEST(EntropyDistribution, EmptyCorpus) {
  hitlist::Corpus corpus;
  EXPECT_TRUE(entropy_distribution(corpus).empty());
  hitlist::Corpus other;
  EXPECT_EQ(intersection_size(corpus, other), 0u);
}

}  // namespace
}  // namespace v6::analysis
