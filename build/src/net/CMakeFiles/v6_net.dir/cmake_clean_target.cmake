file(REMOVE_RECURSE
  "libv6_net.a"
)
