# Empty dependencies file for bench_geo_linkage.
# This may be replaced when dependencies are built.
