#include "hitlist/corpus.h"

#include <algorithm>

namespace v6::hitlist {

namespace {

std::size_t capacity_for(std::size_t expected) {
  std::size_t cap = 64;
  // Keep the load factor at or below ~0.66.
  while (cap * 2 < expected * 3) cap <<= 1;
  return cap;
}

}  // namespace

Corpus::Corpus(std::size_t expected_addresses) {
  const std::size_t cap = capacity_for(expected_addresses);
  slots_.assign(cap, AddressRecord{});
  mask_ = cap - 1;
}

Corpus::Corpus(Corpus&& other) noexcept
    : slots_(std::move(other.slots_)),
      size_(other.size_),
      mask_(other.mask_),
      observations_(other.observations_) {
  other.slots_.clear();
  other.size_ = 0;
  other.mask_ = 0;
  other.observations_ = 0;
}

Corpus& Corpus::operator=(Corpus&& other) noexcept {
  if (this != &other) {
    slots_ = std::move(other.slots_);
    size_ = other.size_;
    mask_ = other.mask_;
    observations_ = other.observations_;
    other.slots_.clear();
    other.size_ = 0;
    other.mask_ = 0;
    other.observations_ = 0;
  }
  return *this;
}

AddressRecord* Corpus::lookup_slot(const net::Ipv6Address& address) noexcept {
  std::size_t i = net::Ipv6AddressHash{}(address) & mask_;
  while (true) {
    AddressRecord& slot = slots_[i];
    // count == 0 marks an empty slot (every stored record has count >= 1).
    if (slot.count == 0 || slot.address == address) return &slot;
    i = (i + 1) & mask_;
  }
}

void Corpus::revive_if_moved_from() {
  if (slots_.empty()) {
    slots_.assign(64, AddressRecord{});
    mask_ = 63;
  }
}

void Corpus::add(const net::Ipv6Address& address, util::SimTime t,
                 std::uint8_t vantage) {
  const auto ts = static_cast<std::uint32_t>(std::max<util::SimTime>(t, 0));
  // Clamp into the mask: vantages past the width share bit 31 (see the
  // vantage_mask contract in the header).
  const std::uint32_t vantage_bit =
      1u << std::min<std::uint8_t>(vantage, 31);
  revive_if_moved_from();
  ++observations_;
  AddressRecord* slot = lookup_slot(address);
  if (slot->count == 0) {
    if ((size_ + 1) * 3 > slots_.size() * 2) {
      grow();
      slot = lookup_slot(address);
    }
    slot->address = address;
    slot->first_seen = ts;
    slot->last_seen = ts;
    slot->count = 1;
    slot->vantage_mask = vantage_bit;
    ++size_;
    return;
  }
  slot->first_seen = std::min(slot->first_seen, ts);
  slot->last_seen = std::max(slot->last_seen, ts);
  ++slot->count;
  slot->vantage_mask |= vantage_bit;
}

void Corpus::add_record(const AddressRecord& rec) {
  revive_if_moved_from();
  AddressRecord* slot = lookup_slot(rec.address);
  if (slot->count == 0) {
    if ((size_ + 1) * 3 > slots_.size() * 2) {
      grow();
      slot = lookup_slot(rec.address);
    }
    *slot = rec;
    ++size_;
  } else {
    slot->first_seen = std::min(slot->first_seen, rec.first_seen);
    slot->last_seen = std::max(slot->last_seen, rec.last_seen);
    slot->count += rec.count;
    slot->vantage_mask |= rec.vantage_mask;
  }
  observations_ += rec.count;
}

void Corpus::merge(const Corpus& other) {
  other.for_each([this](const AddressRecord& rec) { add_record(rec); });
}

const AddressRecord* Corpus::find(
    const net::Ipv6Address& address) const noexcept {
  if (slots_.empty()) return nullptr;  // moved-from
  std::size_t i = net::Ipv6AddressHash{}(address) & mask_;
  while (true) {
    const AddressRecord& slot = slots_[i];
    if (slot.count == 0) return nullptr;
    if (slot.address == address) return &slot;
    i = (i + 1) & mask_;
  }
}

void Corpus::canonicalize() {
  if (size_ == 0) return;
  std::vector<AddressRecord> records;
  records.reserve(size_);
  for (const auto& slot : slots_) {
    if (slot.count != 0) records.push_back(slot);
  }
  std::sort(records.begin(), records.end(),
            [](const AddressRecord& a, const AddressRecord& b) {
              return a.address < b.address;
            });
  Corpus rebuilt(size_);
  for (const AddressRecord& rec : records) rebuilt.add_record(rec);
  *this = std::move(rebuilt);
}

void Corpus::grow() {
  std::vector<AddressRecord> old = std::move(slots_);
  slots_.assign(old.size() * 2, AddressRecord{});
  mask_ = slots_.size() - 1;
  for (const auto& rec : old) {
    if (rec.count == 0) continue;
    std::size_t i = net::Ipv6AddressHash{}(rec.address) & mask_;
    while (slots_[i].count != 0) i = (i + 1) & mask_;
    slots_[i] = rec;
  }
}

}  // namespace v6::hitlist
