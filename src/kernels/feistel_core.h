// The Feistel permutation's arithmetic core, host/device-portable.
//
// Restructured the way the pos2 FeistelCipher is written: a POD spec plus
// free inline functions of that spec — no virtuals, no exceptions, no
// library calls — so the identical round math compiles into the scalar
// reference loop, the AVX2 batch kernel (batch.h), and, later, a GPU
// translation unit, without any of them linking the host-only sim
// library. sim::FeistelPermutation (sim/feistel.h) is now a thin owner of
// a FeistelSpec that forwards to these functions, so per-record callers
// and batch callers run literally the same integer arithmetic.
//
// Every function here is exact integer math: backends cannot diverge on
// it by construction (no floating point, no library calls).
#pragma once

#include <cstdint>

// Expands to __host__ __device__ under CUDA so this header can be
// included from a device TU unchanged (the shape the SNIPPETS
// FeistelCipher uses); a no-op everywhere else.
#if defined(__CUDACC__)
#define V6_HOST_DEVICE __host__ __device__
#else
#define V6_HOST_DEVICE
#endif

namespace v6::kernels {

// Everything a Feistel evaluation needs, as plain data. Derived from
// (domain_size, key) by make_feistel_spec below.
struct FeistelSpec {
  std::uint64_t domain_size = 1;
  std::uint64_t key = 0;
  std::uint64_t half_mask = 1;
  int half_bits = 1;
  int rounds = 4;
};

// splitmix64's mixing step, inlined (bit-identical to util::mix64: same
// constants, same operations — integer arithmetic has one answer).
V6_HOST_DEVICE inline std::uint64_t feistel_mix64(std::uint64_t x) noexcept {
  std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Balanced network over the smallest even bit width covering the domain
// (mirrors the historical sim::FeistelPermutation constructor exactly).
V6_HOST_DEVICE inline FeistelSpec make_feistel_spec(
    std::uint64_t domain_size, std::uint64_t key) noexcept {
  FeistelSpec spec;
  spec.domain_size = domain_size ? domain_size : 1;
  spec.key = key;
  int bits = 1;
  while ((std::uint64_t{1} << bits) < spec.domain_size && bits < 62) ++bits;
  if (bits % 2) ++bits;
  spec.half_bits = bits / 2;
  spec.half_mask = (std::uint64_t{1} << spec.half_bits) - 1;
  return spec;
}

V6_HOST_DEVICE inline std::uint64_t feistel_round(
    const FeistelSpec& spec, std::uint64_t half, int round) noexcept {
  return feistel_mix64(half ^ spec.key ^
                       (static_cast<std::uint64_t>(round) << 56)) &
         spec.half_mask;
}

V6_HOST_DEVICE inline std::uint64_t feistel_encrypt_once(
    const FeistelSpec& spec, std::uint64_t x) noexcept {
  std::uint64_t left = (x >> spec.half_bits) & spec.half_mask;
  std::uint64_t right = x & spec.half_mask;
  for (int r = 0; r < spec.rounds; ++r) {
    const std::uint64_t next = left ^ feistel_round(spec, right, r);
    left = right;
    right = next;
  }
  return (left << spec.half_bits) | right;
}

V6_HOST_DEVICE inline std::uint64_t feistel_decrypt_once(
    const FeistelSpec& spec, std::uint64_t y) noexcept {
  std::uint64_t left = (y >> spec.half_bits) & spec.half_mask;
  std::uint64_t right = y & spec.half_mask;
  for (int r = spec.rounds - 1; r >= 0; --r) {
    const std::uint64_t prev = right ^ feistel_round(spec, left, r);
    right = left;
    left = prev;
  }
  return (left << spec.half_bits) | right;
}

// Cycle-walking apply/invert: re-encrypt until the value falls back into
// the domain (expected < 4 iterations; the cover set is < 4x the domain).
V6_HOST_DEVICE inline std::uint64_t feistel_apply(const FeistelSpec& spec,
                                                  std::uint64_t x) noexcept {
  std::uint64_t y = feistel_encrypt_once(spec, x);
  while (y >= spec.domain_size) y = feistel_encrypt_once(spec, y);
  return y;
}

V6_HOST_DEVICE inline std::uint64_t feistel_invert(const FeistelSpec& spec,
                                                   std::uint64_t y) noexcept {
  std::uint64_t x = feistel_decrypt_once(spec, y);
  while (x >= spec.domain_size) x = feistel_decrypt_once(spec, x);
  return x;
}

}  // namespace v6::kernels
