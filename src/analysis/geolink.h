// Wired-MAC -> WiFi-BSSID geolocation linkage (§5.3, the IPvSeeYou
// technique of Rye & Beverly applied to the passive corpus).
//
// Device makers allocate the wired (EUI-64-leaked) MAC and the WiFi BSSID
// of one box at a small constant offset within the same OUI. The linker
// never sees that ground truth: per OUI it tallies suffix deltas between
// every (wired MAC, wardriven BSSID) pair within a bounded window, takes
// the modal delta as the OUI's offset when enough pairs support it, and
// then geolocates each wired MAC whose shifted BSSID exists in the
// wardriving database.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "analysis/eui64_tracking.h"
#include "geo/bssid_db.h"
#include "geo/country.h"
#include "net/mac.h"

namespace v6::analysis {

struct GeoLinkConfig {
  // Only offsets within +/- this window are tallied (keeps inference
  // O(n log n) and rejects cross-batch noise).
  std::int32_t max_offset = 1024;
  // Minimum supporting pairs before an OUI's modal offset is trusted
  // (the paper required 500 at Internet scale).
  std::uint32_t min_pairs_per_oui = 50;
};

struct GeoLinked {
  net::MacAddress mac;
  net::MacAddress bssid;
  geo::LatLon location;
};

struct GeoLinkResult {
  // OUIs for which a modal offset was inferred, with the offset.
  std::unordered_map<std::uint32_t, std::int32_t> oui_offsets;
  std::vector<GeoLinked> linked;
  // linked.size() grouped by nearest-country of the location, descending.
  std::vector<std::pair<geo::CountryCode, std::uint64_t>> by_country;
};

GeoLinkResult link_eui64_to_bssids(std::span<const MacTrack> tracks,
                                   const geo::BssidLocationDb& wardriving,
                                   const GeoLinkConfig& config = {});

}  // namespace v6::analysis
