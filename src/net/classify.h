// Structural classification of IPv6 addresses (Fig 5 of the paper).
//
// Addresses fall into seven mutually exclusive categories, checked in this
// order:
//   1. Zeroes       — IID is all zero (subnet-router anycast style, `::`)
//   2. Low Byte     — only the least-significant byte set (e.g. ::1)
//   3. Low 2 Bytes  — only the two least-significant bytes set (e.g. ::1:0)
//   4. IPv4 mapped  — IID embeds the interface's IPv4 address (one of three
//                     encodings); acceptance is *contextual* (the paper
//                     requires >= 100 instances per AS, > 10% of the AS's
//                     addresses, and the v4 address mapping to the same AS),
//                     so this module only extracts candidate embeddings and
//                     the analysis layer applies the AS-level gates.
//   5-7. High / Medium / Low entropy bands of the remaining IIDs.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/entropy.h"
#include "net/ipv4.h"
#include "net/ipv6.h"

namespace v6::net {

enum class AddressCategory : std::uint8_t {
  kZeroes,
  kLowByte,
  kLow2Bytes,
  kIpv4Mapped,
  kHighEntropy,
  kMediumEntropy,
  kLowEntropy,
};

inline constexpr std::array<AddressCategory, 7> kAllAddressCategories = {
    AddressCategory::kZeroes,       AddressCategory::kLowByte,
    AddressCategory::kLow2Bytes,    AddressCategory::kIpv4Mapped,
    AddressCategory::kHighEntropy,  AddressCategory::kMediumEntropy,
    AddressCategory::kLowEntropy,
};

const char* to_string(AddressCategory c) noexcept;

// The three IPv4-in-IID encodings the classifier recognizes.
enum class Ipv4Embedding : std::uint8_t {
  kLow32,           // v4 in IID bits 31..0:        ::c0a8:0101
  kHigh32,          // v4 in IID bits 63..32:       ::c0a8:0101:0:0
  kDecimalHextets,  // hextets read as decimals:    ::192:168:1:1
};

struct Ipv4Candidate {
  Ipv4Embedding encoding;
  Ipv4Address address;
};

// Extracts every plausible embedded IPv4 address from the IID. Purely
// syntactic; the caller applies per-AS acceptance gates.
std::vector<Ipv4Candidate> ipv4_candidates(std::uint64_t iid);

// Structural classification. `ipv4_accepted` is the verdict of the
// AS-contextual gate for this address (false when unknown).
AddressCategory classify_address(const Ipv6Address& a, bool ipv4_accepted);

// Same, for a bare IID.
AddressCategory classify_iid(std::uint64_t iid, bool ipv4_accepted);

}  // namespace v6::net
