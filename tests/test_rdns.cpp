#include "dns/rdns.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace v6::dns {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_u64(hi, lo);
}

TEST(RdnsZone, AnswersReflectTreeStructure) {
  RdnsZone zone;
  zone.add(addr(0x20010db800010000ULL, 1), "a.example");

  // The full name is a PTR record.
  EXPECT_EQ(zone.query(addr(0x20010db800010000ULL, 1), 32),
            RdnsZone::Answer::kPtrRecord);
  // Every ancestor is an empty non-terminal.
  EXPECT_EQ(zone.query(addr(0x20010db800010000ULL, 0), 16),
            RdnsZone::Answer::kEmptyNonTerminal);
  EXPECT_EQ(zone.query(addr(0x2001000000000000ULL, 0), 4),
            RdnsZone::Answer::kEmptyNonTerminal);
  // Off-path labels are NXDOMAIN.
  EXPECT_EQ(zone.query(addr(0x20020db800010000ULL, 0), 4),
            RdnsZone::Answer::kNxDomain);
  EXPECT_EQ(zone.query(addr(0x20010db800020000ULL, 0), 16),
            RdnsZone::Answer::kNxDomain);
}

TEST(RdnsZone, OddNibbleDepths) {
  RdnsZone zone;
  zone.add(addr(0xabcd000000000000ULL, 0), "x");
  EXPECT_EQ(zone.query(addr(0xa000000000000000ULL, 0), 1),
            RdnsZone::Answer::kEmptyNonTerminal);
  EXPECT_EQ(zone.query(addr(0xabc0000000000000ULL, 0), 3),
            RdnsZone::Answer::kEmptyNonTerminal);
  EXPECT_EQ(zone.query(addr(0xab00000000000000ULL, 0), 3),
            RdnsZone::Answer::kNxDomain);
  EXPECT_EQ(zone.query(addr(0xb000000000000000ULL, 0), 1),
            RdnsZone::Answer::kNxDomain);
}

TEST(RdnsZone, PtrLookup) {
  RdnsZone zone;
  zone.add(addr(1, 2), "host.example");
  EXPECT_EQ(zone.ptr(addr(1, 2)), "host.example");
  EXPECT_FALSE(zone.ptr(addr(1, 3)));
}

TEST(RdnsZone, DuplicateAddressesCollapse) {
  RdnsZone zone;
  zone.add(addr(1, 2), "first");
  zone.add(addr(1, 2), "second");
  EXPECT_EQ(zone.size(), 2u);  // before sorting
  EXPECT_TRUE(zone.ptr(addr(1, 2)).has_value());
  EXPECT_EQ(zone.size(), 1u);  // deduplicated lazily
}

TEST(ZoneWalk, RecoversExactlyThePublishedSet) {
  RdnsZone zone;
  util::Rng rng(3);
  std::vector<net::Ipv6Address> published;
  for (int i = 0; i < 300; ++i) {
    // All inside 2001:db8::/32, otherwise random.
    const auto a = addr(0x20010db800000000ULL | (rng.next() & 0xffffffff),
                        rng.next());
    published.push_back(a);
    zone.add(a, "h" + std::to_string(i));
  }
  std::sort(published.begin(), published.end());
  published.erase(std::unique(published.begin(), published.end()),
                  published.end());

  const auto result =
      walk_rdns(zone, *net::Ipv6Prefix::parse("2001:db8::/32"));
  EXPECT_EQ(result.discovered, published);
}

TEST(ZoneWalk, QueryCountIsLinearNotExponential) {
  RdnsZone zone;
  util::Rng rng(5);
  constexpr int kRecords = 500;
  for (int i = 0; i < kRecords; ++i) {
    zone.add(addr(0x20010db800000000ULL | (rng.next() & 0xffffffff),
                  rng.next()),
             "h");
  }
  const auto result =
      walk_rdns(zone, *net::Ipv6Prefix::parse("2001:db8::/32"));
  // Worst case per record: 16 probes at each of 24 remaining nibble
  // levels; shared prefixes amortize well below that.
  EXPECT_LT(result.queries, static_cast<std::uint64_t>(kRecords) * 16 * 24);
  EXPECT_GT(result.queries, static_cast<std::uint64_t>(kRecords));
}

TEST(ZoneWalk, EmptyApexIsOneQuery) {
  RdnsZone zone;
  zone.add(addr(0x2a00000000000000ULL, 1), "x");
  const auto result =
      walk_rdns(zone, *net::Ipv6Prefix::parse("2001:db8::/32"));
  EXPECT_TRUE(result.discovered.empty());
  EXPECT_EQ(result.queries, 1u);
}

TEST(ZoneWalk, NonNibbleApexRejected) {
  RdnsZone zone;
  zone.add(addr(1, 1), "x");
  const auto result =
      walk_rdns(zone, net::Ipv6Prefix(addr(0, 0), 33));
  EXPECT_TRUE(result.discovered.empty());
  EXPECT_EQ(result.queries, 0u);
}

TEST(ZoneWalk, WorldZoneEnumeratesAnAsSlash32) {
  sim::WorldConfig config;
  config.seed = 19;
  config.total_sites = 400;
  const auto world = sim::World::generate(config);
  const auto zone = build_world_zone(world, 1000, 0.08);
  ASSERT_GT(zone.size(), 50u);

  // Walk one AS's /32 and cross-check against direct zone membership.
  const auto& as = world.ases()[0];
  const net::Ipv6Prefix apex(net::Ipv6Address::from_u64(as.prefix_hi, 0), 32);
  const auto result = walk_rdns(zone, apex);
  for (const auto& found : result.discovered) {
    EXPECT_TRUE(zone.ptr(found).has_value());
    EXPECT_TRUE(apex.contains(found));
  }
  // Every router we know is named in AS 0 must be rediscovered.
  for (std::uint32_t r = 0; r < as.router_count; ++r) {
    const auto address = world.router_address(0, r, 1);
    if (zone.ptr(address)) {
      EXPECT_TRUE(std::binary_search(result.discovered.begin(),
                                     result.discovered.end(), address));
    }
  }
}

}  // namespace
}  // namespace v6::dns
