// Sim-time time-series observability: the TimelineSampler.
//
// The end-of-run metrics snapshot (obs/metrics.h) can say how many records
// a 219-day study produced, but not *when*, from which vantage, or how a
// fault window bent the curve. The sampler closes that gap: registered
// with a Registry, it is invoked at deterministic pipeline boundaries —
// collector shard-merge/checkpoint points and stage transitions, never
// wall-clock timers — folds a snapshot, diffs it against the previous
// sample, and appends one WindowRecord per window.
//
// Determinism contract: every sample() call happens at a merge barrier
// (all collection shards joined, or between sequential stages), where each
// striped counter's fold is an exact integer sum of the increments issued
// so far — a pure function of the simulated workload, independent of
// thread count. Histogram count/sum movement IS folded into each window
// (WindowRecord::histograms) so latency histograms show up on the
// timeline, but those fields stay OUTSIDE the bit-identity guarantee the
// timeline tests pin down (identical counter/gauge/vantage sequences at
// threads {1, 2, 4}): the analysis and serve layers observe wall-clock
// timings into them.
//
// Windows are contiguous and gapless: window k covers
// (timeline[k-1].end, timeline[k].end]. Stages whose *simulated* window
// lies before the pipeline's current position (the campaigns re-cover the
// collection window after collect finished) are clamped to zero-width
// windows at the current position, keeping the timeline — and the Chrome
// trace export built from it — monotone in sim time.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "util/sim_time.h"

namespace v6::obs {

// Counter families the sampler folds into per-vantage series instead of
// the generic counter list (label "vantage" holds the decimal vantage id).
// The passive collector registers and bulk-feeds these at its merge
// barriers.
inline constexpr std::string_view kVantagePollsFamily =
    "v6_collector_vantage_polls_total";
inline constexpr std::string_view kVantageAnsweredFamily =
    "v6_collector_vantage_answered_total";
inline constexpr std::string_view kVantageFaultLostFamily =
    "v6_collector_vantage_fault_lost_total";
inline constexpr std::string_view kVantageRecordsFamily =
    "v6_collector_vantage_records_total";

// One vantage's activity inside one window. `records` counts observations
// recorded into the shard corpora via this vantage, pre-dedup (the global
// v6_collector_records_total dedups across vantages, so it has no exact
// per-vantage split).
struct VantageWindow {
  std::uint32_t vantage = 0;
  std::uint64_t polls = 0;
  std::uint64_t answered = 0;
  std::uint64_t fault_lost = 0;
  std::uint64_t records = 0;
};

// A counter family instance's increase over one window. Zero deltas are
// omitted from the record.
struct WindowCounter {
  std::string name;
  Labels labels;
  std::uint64_t delta = 0;
};

// A gauge's value at the window's close. Only gauges whose bit pattern
// changed since the previous window (or that are new) are recorded.
struct WindowGauge {
  std::string name;
  Labels labels;
  double value = 0.0;
};

// A histogram family instance's movement over one window: how many
// observations landed and how much they summed to. Bucket-level deltas are
// deliberately not carried — the end-of-run snapshot has the full bucket
// shape; the timeline only needs to show *when* observations happened.
// Histograms record wall-clock timings (stage durations, serve latency),
// so these fields are real but NOT covered by the bit-identity contract
// the counter/gauge/vantage fields obey.
struct WindowHistogram {
  std::string name;
  Labels labels;
  std::uint64_t count_delta = 0;
  double sum_delta = 0.0;
};

// One sampling window: (begin, end] in sim time, the pipeline stage that
// closed it, and everything that moved inside it. Counters and gauges
// inherit Registry::snapshot()'s (name, labels) sort order; vantages are
// sorted by id — the record is fully deterministic.
struct WindowRecord {
  util::SimTime begin = 0;
  util::SimTime end = 0;
  std::string stage;
  std::vector<WindowCounter> counters;
  std::vector<WindowGauge> gauges;
  std::vector<VantageWindow> vantages;
  // Wall-clock histogram movement; excluded from bit-identity assertions.
  std::vector<WindowHistogram> histograms;
};

using Timeline = std::vector<WindowRecord>;

// The sampler. Not thread-safe: sample() is only ever called from the
// coordinating thread at merge barriers (the points where it is exact).
class TimelineSampler {
 public:
  // `interval` is the sim-time grid spacing inside long stages (the
  // collector samples at origin + k * interval boundaries); stage
  // transitions sample regardless of the grid. `origin` anchors the grid
  // and opens the first window.
  TimelineSampler(const Registry& registry, util::SimDuration interval,
                  util::SimTime origin);

  util::SimDuration interval() const noexcept { return interval_; }

  // First grid boundary strictly after `t` (origin + k * interval).
  util::SimTime next_boundary(util::SimTime t) const noexcept;
  // True when `t` lies exactly on the grid.
  bool on_boundary(util::SimTime t) const noexcept;

  // Closes the window (previous end, max(at, previous end)] tagged with
  // `stage`: folds a registry snapshot, diffs counters against the last
  // sample, captures changed gauges, and splits the per-vantage families
  // out into VantageWindow series.
  void sample(util::SimTime at, std::string_view stage);

  const Timeline& timeline() const noexcept { return timeline_; }
  Timeline take() { return std::move(timeline_); }

 private:
  const Registry* registry_;
  util::SimDuration interval_;
  util::SimTime origin_;
  util::SimTime last_;
  // Previous folded values, keyed by name + serialized labels.
  std::map<std::string, std::uint64_t> prev_counters_;
  std::map<std::string, std::uint64_t> prev_gauge_bits_;
  std::map<std::string, std::uint64_t> prev_hist_counts_;
  std::map<std::string, double> prev_hist_sums_;
  Timeline timeline_;
};

// --- Exposition ------------------------------------------------------------

enum class TimelineFormat : std::uint8_t { kJsonl, kCsv };

// "jsonl"/"json" or "csv" (case-sensitive); nullopt otherwise.
std::optional<TimelineFormat> parse_timeline_format(std::string_view name);

// File suffix convention for a format ("jsonl" / "csv").
std::string_view timeline_format_suffix(TimelineFormat format);

// Byte-deterministic rendering: one JSON object per line (kJsonl) or a
// long-form CSV (begin,end,stage,kind,series,value) with RFC 4180
// quoting (kCsv).
std::string render_timeline(const Timeline& timeline, TimelineFormat format);

// One window as a JSON object (no trailing newline) — exactly one JSONL
// line of render_timeline(kJsonl). The cluster-timeline renderer reuses
// it to keep the two window shapes byte-compatible.
std::string render_window_json(const WindowRecord& rec);

// Dependency-free JSON syntax validator (objects, arrays, strings with
// escapes, numbers, literals). Returns nullopt on success, else
// "offset N: <problem>". Used by the JSONL/trace linters and CI.
std::optional<std::string> lint_json(std::string_view text);

// Validates a JSONL timeline export: every line parses as a JSON object
// carrying begin/end/stage, windows are well-formed (begin <= end) and
// gapless (each begin equals the previous end). Returns nullopt on
// success, else "line N: <problem>".
std::optional<std::string> lint_timeline_jsonl(std::string_view text);

}  // namespace v6::obs
