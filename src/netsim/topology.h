// Deterministic router-level paths through the simulated Internet.
//
// Yarrp-style traceroute needs per-hop responders. Paths are synthesized on
// demand from the world's structure: source-AS edge, source-country
// backbone, destination-country backbone, destination-AS core and edge
// routers, then (for customer-site targets) the site CPE, then the
// destination itself. Router choices hash on the destination /48 so that
// traces to the same region reuse hops, as real topology does.
#pragma once

#include <optional>
#include <vector>

#include "net/ipv6.h"
#include "sim/world.h"

namespace v6::netsim {

// One forwarding hop on a path.
struct Hop {
  net::Ipv6Address address;
  // True when this hop answers TTL-exceeded (routers nearly always do;
  // CPE hops answer unless the site declines).
  bool responds = true;
};

class Topology {
 public:
  explicit Topology(const sim::World& world) : world_(&world) {}

  // The router hops a packet from `src` to `dst` traverses at time `t`,
  // excluding the destination itself. Empty when src and dst are the same
  // /64. The destination's reachability is the data plane's concern.
  std::vector<Hop> path(const net::Ipv6Address& src,
                        const net::Ipv6Address& dst, util::SimTime t) const;

 private:
  // The backbone (transit) AS of a country, if any.
  std::optional<std::uint32_t> backbone_of(std::uint16_t country_index) const;

  const sim::World* world_;
};

}  // namespace v6::netsim
