// IPv6 address value type.
//
// A 128-bit address stored big-endian (network order). Provides:
//   * construction from bytes, hextets, or (hi, lo) 64-bit halves;
//   * RFC 4291 text parsing (including "::" compression and an embedded
//     IPv4 dotted-quad tail) and RFC 5952 canonical formatting;
//   * the (network-prefix, interface-identifier) split at /64 that the
//     whole measurement pipeline revolves around.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "net/ipv4.h"

namespace v6::net {

class Ipv6Address {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr Ipv6Address() = default;
  constexpr explicit Ipv6Address(const Bytes& bytes) : bytes_(bytes) {}

  // From eight 16-bit hextets, as written in text form.
  static constexpr Ipv6Address from_hextets(
      const std::array<std::uint16_t, 8>& h) {
    Bytes b{};
    for (std::size_t i = 0; i < 8; ++i) {
      b[2 * i] = static_cast<std::uint8_t>(h[i] >> 8);
      b[2 * i + 1] = static_cast<std::uint8_t>(h[i] & 0xff);
    }
    return Ipv6Address(b);
  }

  // From the two 64-bit halves: `hi` is the network half (bits 127..64),
  // `lo` the interface identifier (bits 63..0).
  static constexpr Ipv6Address from_u64(std::uint64_t hi, std::uint64_t lo) {
    Bytes b{};
    for (int i = 0; i < 8; ++i) {
      b[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(hi >> (56 - 8 * i));
      b[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    }
    return Ipv6Address(b);
  }

  constexpr const Bytes& bytes() const noexcept { return bytes_; }
  constexpr std::uint8_t byte(std::size_t i) const noexcept {
    return bytes_[i];
  }

  constexpr std::uint16_t hextet(std::size_t i) const noexcept {
    return static_cast<std::uint16_t>((bytes_[2 * i] << 8) | bytes_[2 * i + 1]);
  }

  constexpr std::uint64_t hi64() const noexcept { return read_u64(0); }
  constexpr std::uint64_t lo64() const noexcept { return read_u64(8); }

  // The Interface Identifier: low 64 bits (assumes the ubiquitous /64
  // subnetting the paper also assumes).
  constexpr std::uint64_t iid() const noexcept { return lo64(); }

  constexpr bool is_unspecified() const noexcept {
    return hi64() == 0 && lo64() == 0;
  }

  // RFC 5952 canonical text: lowercase, longest zero run compressed,
  // leftmost run on ties, single zero group never compressed.
  std::string to_string() const;

  // Accepts full, compressed ("::"), and IPv4-tail ("::ffff:1.2.3.4")
  // forms, case-insensitive. Returns nullopt on any syntax error.
  static std::optional<Ipv6Address> parse(std::string_view text);

  friend constexpr auto operator<=>(const Ipv6Address&,
                                    const Ipv6Address&) = default;

 private:
  constexpr std::uint64_t read_u64(std::size_t offset) const noexcept {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | bytes_[offset + i];
    return v;
  }

  Bytes bytes_{};
};

// Strong hash usable in unordered containers (not cryptographic).
struct Ipv6AddressHash {
  std::size_t operator()(const Ipv6Address& a) const noexcept;
};

}  // namespace v6::net

template <>
struct std::hash<v6::net::Ipv6Address> {
  std::size_t operator()(const v6::net::Ipv6Address& a) const noexcept {
    return v6::net::Ipv6AddressHash{}(a);
  }
};
