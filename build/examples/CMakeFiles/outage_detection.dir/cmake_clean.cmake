file(REMOVE_RECURSE
  "CMakeFiles/outage_detection.dir/outage_detection.cpp.o"
  "CMakeFiles/outage_detection.dir/outage_detection.cpp.o.d"
  "outage_detection"
  "outage_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
