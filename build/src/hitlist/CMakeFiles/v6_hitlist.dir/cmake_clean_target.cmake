file(REMOVE_RECURSE
  "libv6_hitlist.a"
)
