#include "analysis/entropy_distribution.h"

#include "net/entropy.h"

namespace v6::analysis {

namespace {

using Samples = std::vector<double>;

// Shard concatenation in ascending shard order reproduces the serial
// visit sequence, so the sample vector — and the distribution built from
// it — is bit-identical at any thread count.
void append_samples(Samples& into, Samples&& from) {
  into.insert(into.end(), from.begin(), from.end());
}

}  // namespace

util::EmpiricalDistribution entropy_distribution(
    const ScanSource& source, const AnalysisConfig& config,
    std::vector<AnalysisStageStats>* stats) {
  auto samples = scan_corpus<Samples>(
      source, config, "entropy_distribution", [] { return Samples(); },
      [](Samples& s, const hitlist::AddressRecord& rec) {
        s.push_back(net::iid_entropy(rec.address));
      },
      append_samples, stats);
  return util::EmpiricalDistribution(std::move(samples));
}

util::EmpiricalDistribution entropy_distribution(
    const hitlist::Corpus& c, const AnalysisConfig& config,
    std::vector<AnalysisStageStats>* stats) {
  return entropy_distribution(make_source(c), config, stats);
}

util::EmpiricalDistribution entropy_distribution(
    std::span<const net::Ipv6Address> addresses) {
  std::vector<double> samples;
  samples.reserve(addresses.size());
  for (const auto& a : addresses) samples.push_back(net::iid_entropy(a));
  return util::EmpiricalDistribution(std::move(samples));
}

util::EmpiricalDistribution intersection_entropy_distribution(
    const hitlist::Corpus& a, const hitlist::Corpus& b,
    const AnalysisConfig& config, std::vector<AnalysisStageStats>* stats) {
  const hitlist::Corpus& small = a.size() <= b.size() ? a : b;
  const hitlist::Corpus& large = a.size() <= b.size() ? b : a;
  auto samples = scan_corpus<Samples>(
      small, config, "intersection_entropy_distribution",
      [] { return Samples(); },
      [&large](Samples& s, const hitlist::AddressRecord& rec) {
        if (large.find(rec.address) != nullptr) {
          s.push_back(net::iid_entropy(rec.address));
        }
      },
      append_samples, stats);
  return util::EmpiricalDistribution(std::move(samples));
}

std::uint64_t intersection_size(const hitlist::Corpus& a,
                                const hitlist::Corpus& b,
                                const AnalysisConfig& config,
                                std::vector<AnalysisStageStats>* stats) {
  const hitlist::Corpus& small = a.size() <= b.size() ? a : b;
  const hitlist::Corpus& large = a.size() <= b.size() ? b : a;
  return scan_corpus<std::uint64_t>(
      small, config, "intersection_size", [] { return std::uint64_t{0}; },
      [&large](std::uint64_t& n, const hitlist::AddressRecord& rec) {
        if (large.find(rec.address) != nullptr) ++n;
      },
      [](std::uint64_t& into, std::uint64_t&& from) { into += from; }, stats);
}

}  // namespace v6::analysis
