#!/usr/bin/env bash
# Compare two BENCH_*.json files on their deterministic keys only.
#
#   bench_diff.sh <committed.json> <regenerated.json>
#
# The bench JSON is flat (one "key": value pair per line, see
# bench::BenchJson), so this stays a line filter: timing- and
# rate-dependent keys (seconds, qps, speedups, byte footprints) are
# dropped, everything else — record counts, epoch counts, digests,
# identity verdicts, scale parameters — must match exactly. Exit 1 with
# a unified diff when the committed figure has drifted from what the
# code now produces.
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <committed.json> <regenerated.json>" >&2
  exit 2
fi

committed="$1"
regenerated="$2"

for f in "$committed" "$regenerated"; do
  if [[ ! -s "$f" ]]; then
    echo "bench_diff: missing or empty input: $f" >&2
    exit 2
  fi
done

# Keys whose values legitimately vary run to run.
volatile='_qps|_seconds|_per_sec|_speedup|_bytes|_mib|_rate|wall|elapsed'

stable_keys() {
  grep -E '^[[:space:]]*"' "$1" | grep -Ev "\"[a-z0-9_]*(${volatile})[a-z0-9_]*\"[[:space:]]*:" \
    | sed -e 's/,[[:space:]]*$//'
}

if ! diff -u \
    <(stable_keys "$committed") \
    <(stable_keys "$regenerated") \
    --label "committed:$committed" --label "regenerated:$regenerated"; then
  echo "bench_diff: deterministic keys drifted between $committed and $regenerated" >&2
  exit 1
fi

echo "bench_diff: $regenerated matches committed figures on deterministic keys"
