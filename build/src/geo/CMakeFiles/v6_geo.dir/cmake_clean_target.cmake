file(REMOVE_RECURSE
  "libv6_geo.a"
)
