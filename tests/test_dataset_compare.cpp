#include "analysis/dataset_compare.h"

#include <gtest/gtest.h>

namespace v6::analysis {
namespace {

class DatasetCompareTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 33;
    config.total_sites = 300;
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }

  static net::Ipv6Address in_as(std::uint32_t as_index, std::uint64_t n,
                                std::uint64_t iid) {
    return net::Ipv6Address::from_u64(
        world_->ases()[as_index].prefix_hi | (2ULL << 28) | (n << 8), iid);
  }

  static sim::World* world_;
};

sim::World* DatasetCompareTest::world_ = nullptr;

TEST_F(DatasetCompareTest, CountsAddressesAsnsAndSlash48s) {
  hitlist::Corpus corpus;
  corpus.add(in_as(0, 0x100, 1), 0);   // /48 A
  corpus.add(in_as(0, 0x101, 2), 0);   // same /48 A (slots 0x100,0x101
                                       // share /48 when >> 8 bits equal)
  corpus.add(in_as(1, 0x100, 3), 0);   // other AS
  const auto summary = summarize_dataset("test", corpus, *world_);
  EXPECT_EQ(summary.addresses, 3u);
  EXPECT_EQ(summary.asns, 2u);
  // slots 0x100 and 0x101 differ in the low 8 bits of the slot, which sit
  // below the /48 boundary -> same /48.
  EXPECT_EQ(summary.slash48s, 2u);
  EXPECT_DOUBLE_EQ(summary.addrs_per_slash48, 1.5);
  EXPECT_EQ(summary.common_addresses, 0u);
}

TEST_F(DatasetCompareTest, IntersectionColumns) {
  hitlist::Corpus base, other;
  base.add(in_as(0, 1, 1), 0);
  base.add(in_as(0, 2, 2), 0);
  base.add(in_as(1, 1, 3), 0);
  other.add(in_as(0, 1, 1), 5);    // shared address
  other.add(in_as(0, 0x900, 9), 5);  // same AS, new /48
  other.add(in_as(2, 1, 9), 5);    // AS not in base
  const auto summary = summarize_dataset("other", other, *world_, &base);
  EXPECT_EQ(summary.common_addresses, 1u);
  EXPECT_EQ(summary.common_asns, 1u);
  EXPECT_GE(summary.common_slash48s, 1u);
}

TEST_F(DatasetCompareTest, AsTypeFractionsSumToOne) {
  hitlist::Corpus corpus;
  for (std::uint32_t ai = 0; ai < world_->ases().size(); ai += 3) {
    corpus.add(in_as(ai, 1, 0xabc), 0);
  }
  const auto fractions = as_type_fractions(corpus, *world_);
  double sum = 0;
  for (const auto& [type, fraction] : fractions) sum += fraction;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(DatasetCompareTest, PhoneProviderFractionReflectsMix) {
  hitlist::Corpus corpus;
  std::uint32_t mobile_as = 0, fixed_as = 0;
  for (std::uint32_t ai = 0; ai < world_->ases().size(); ++ai) {
    if (world_->ases()[ai].type == sim::AsType::kIspMobile) mobile_as = ai;
    if (world_->ases()[ai].type == sim::AsType::kIspBroadband) fixed_as = ai;
  }
  for (std::uint64_t i = 0; i < 30; ++i) corpus.add(in_as(mobile_as, i, 1), 0);
  for (std::uint64_t i = 0; i < 70; ++i) corpus.add(in_as(fixed_as, i, 1), 0);
  for (const auto& [type, fraction] : as_type_fractions(corpus, *world_)) {
    if (type == sim::AsType::kIspMobile) {
      EXPECT_NEAR(fraction, 0.3, 1e-9);
    }
    if (type == sim::AsType::kIspBroadband) {
      EXPECT_NEAR(fraction, 0.7, 1e-9);
    }
  }
}

TEST_F(DatasetCompareTest, EmptyCorpusSummary) {
  hitlist::Corpus corpus;
  const auto summary = summarize_dataset("empty", corpus, *world_);
  EXPECT_EQ(summary.addresses, 0u);
  EXPECT_DOUBLE_EQ(summary.addrs_per_slash48, 0.0);
}

}  // namespace
}  // namespace v6::analysis
