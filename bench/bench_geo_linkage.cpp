// §5.3 — geolocating EUI-64 devices by linking embedded wired MACs to
// wardriven WiFi BSSIDs via per-OUI offset inference (IPvSeeYou applied
// passively). Headlines: offsets inferred for 117 OUIs, 225,354 MACs
// geolocated, 75% of them in Germany (AVM Fritz!Box).
#include "analysis/eui64_tracking.h"
#include "analysis/geolink.h"
#include "bench_common.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("§5.3: EUI-64 -> BSSID geolocation", config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  const auto& r = study.results();

  analysis::Eui64Tracker tracker(r.ntp, study.world());
  analysis::GeoLinkConfig link_config;
  link_config.min_pairs_per_oui = 20;  // paper used 500 at Internet scale
  analysis::GeoLinkResult result;
  bench::timed("offset inference + linkage", [&] {
    result = analysis::link_eui64_to_bssids(
        tracker.tracks(), study.world().wardriving(), link_config);
  });

  std::printf("\nInferred per-OUI wired->wireless offsets:\n");
  util::TablePrinter offsets({"OUI", "offset", "ground truth"});
  for (const auto& [oui_value, offset] : result.oui_offsets) {
    // Ground truth from the registry (the linker never saw it).
    std::string truth = "?";
    if (const auto idx =
            study.world().ouis().manufacturer_index(net::Oui(oui_value))) {
      truth = std::to_string(
          study.world().ouis().manufacturer(*idx).bssid_offset);
    }
    offsets.add_row({net::Oui(oui_value).to_string(),
                     std::to_string(offset), truth});
  }
  offsets.print(std::cout);

  std::printf("\nGeolocated devices by country:\n");
  for (std::size_t i = 0; i < result.by_country.size() && i < 6; ++i) {
    std::printf("  %s  %8s  (%s)\n",
                result.by_country[i].first.to_string().c_str(),
                util::with_commas(result.by_country[i].second).c_str(),
                util::percent(static_cast<double>(
                                  result.by_country[i].second) /
                              static_cast<double>(std::max<std::size_t>(
                                  1, result.linked.size())))
                    .c_str());
  }

  // How many inferred offsets match ground truth?
  std::uint64_t correct = 0;
  for (const auto& [oui_value, offset] : result.oui_offsets) {
    if (const auto idx =
            study.world().ouis().manufacturer_index(net::Oui(oui_value))) {
      if (study.world().ouis().manufacturer(*idx).bssid_offset == offset) {
        ++correct;
      }
    }
  }

  std::printf("\n");
  bench::Comparison comparison;
  comparison.row("OUIs with inferred offset", "117 (unscaled)",
                 util::with_commas(result.oui_offsets.size()));
  comparison.row("offsets matching ground truth", "(validated vs one ISP)",
                 util::with_commas(correct) + " of " +
                     util::with_commas(result.oui_offsets.size()));
  comparison.row("MACs geolocated", "225,354 (unscaled)",
                 util::with_commas(result.linked.size()));
  comparison.row(
      "top country share", "Germany 75% (AVM)",
      result.by_country.empty()
          ? "-"
          : result.by_country.front().first.to_string() + " " +
                util::percent(
                    static_cast<double>(result.by_country.front().second) /
                    static_cast<double>(
                        std::max<std::size_t>(1, result.linked.size()))));
  comparison.print();
  return 0;
}
