// Batch-kernel contract tests: every batched kernel must be bit-identical
// to its per-record reference at any block size and under either dispatch
// backend, and the dispatch resolution itself must honor the
// env > forced > CPUID precedence. Float outputs are compared through
// std::bit_cast — "close enough" would hide exactly the drift these
// kernels promise not to have.
#include "kernels/batch.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <optional>
#include <vector>

#include "analysis/address_categories.h"
#include "analysis/as_entropy.h"
#include "analysis/dataset_compare.h"
#include "analysis/entropy_distribution.h"
#include "analysis/lifetimes.h"
#include "kernels/dispatch.h"
#include "net/classify.h"
#include "net/entropy.h"
#include "sim/feistel.h"
#include "util/rng.h"

namespace v6::kernels {
namespace {

// Deterministic pseudo-random 64-bit stream for property inputs.
std::uint64_t rng64(std::uint64_t i) {
  return util::mix64(i * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
}

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// Pins the backend for a scope and always restores auto on exit, so a
// failing test cannot leak a forced backend into its neighbors.
class BackendGuard {
 public:
  explicit BackendGuard(std::optional<Backend> backend) {
    force_backend(backend);
  }
  ~BackendGuard() { force_backend(std::nullopt); }
};

// Block sizes every kernel must survive: empty, sub-vector ragged tails
// (the AVX2 lanes process 4 at a time), one full vector, vector+1, and a
// size big enough to cross the internal chunk boundaries.
constexpr std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 31, 257, 1500};

TEST(KernelDispatch, ResolveBackendPrecedence) {
  // Env pin beats everything, including a forced AVX2 override.
  EXPECT_EQ(resolve_backend("1", std::nullopt, true), Backend::kScalar);
  EXPECT_EQ(resolve_backend("1", Backend::kAvx2, true), Backend::kScalar);
  EXPECT_EQ(resolve_backend("yes", std::nullopt, true), Backend::kScalar);
  // Unset, empty, or "0" env falls through to the override, then CPUID.
  EXPECT_EQ(resolve_backend(nullptr, std::nullopt, true), Backend::kAvx2);
  EXPECT_EQ(resolve_backend("", std::nullopt, true), Backend::kAvx2);
  EXPECT_EQ(resolve_backend("0", std::nullopt, true), Backend::kAvx2);
  EXPECT_EQ(resolve_backend(nullptr, std::nullopt, false), Backend::kScalar);
  EXPECT_EQ(resolve_backend(nullptr, Backend::kScalar, true),
            Backend::kScalar);
}

TEST(KernelDispatch, ForceBackendPinsActive) {
  {
    BackendGuard guard(Backend::kScalar);
    EXPECT_EQ(active_backend(), Backend::kScalar);
  }
  // Restored to auto: active equals whatever CPUID detects (unless the
  // suite itself runs under V6_FORCE_SCALAR, where both are pinned).
  const char* env = std::getenv("V6_FORCE_SCALAR");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0) {
    EXPECT_EQ(active_backend(), detected_backend());
  } else {
    EXPECT_EQ(active_backend(), Backend::kScalar);
  }
}

TEST(KernelBatch, EntropyMatchesPerRecordReference) {
  for (const std::size_t n : kSizes) {
    std::vector<std::uint64_t> iids(n);
    for (std::size_t i = 0; i < n; ++i) iids[i] = rng64(i);
    if (n > 2) iids[1] = 0;              // degenerate IIDs hit the
    if (n > 3) iids[2] = 0x00ff00ff;     // low-entropy branches
    std::vector<double> out(n, -1.0);
    iid_entropy_batch(iids.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bits(out[i]), bits(net::iid_entropy(iids[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelBatch, ClassifyMatchesPerRecordReference) {
  for (const std::size_t n : kSizes) {
    std::vector<std::uint64_t> iids(n);
    std::vector<std::uint8_t> accepted(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix structural shapes: zeroes, low-byte, low-2-byte, and random.
      switch (i % 5) {
        case 0: iids[i] = 0; break;
        case 1: iids[i] = rng64(i) & 0xff; break;
        case 2: iids[i] = rng64(i) & 0xffff; break;
        default: iids[i] = rng64(i); break;
      }
      accepted[i] = static_cast<std::uint8_t>(rng64(i + 999) & 1);
    }
    std::vector<net::AddressCategory> out(n);
    classify_iid_batch(iids.data(), accepted.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], net::classify_iid(iids[i], accepted[i] != 0))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelBatch, HashMatchesPerRecordReference) {
  // Both strides the corpus uses: packed addresses and AddressRecords.
  for (const std::size_t stride : {std::size_t{16}, std::size_t{32}}) {
    for (const std::size_t n : kSizes) {
      std::vector<std::uint8_t> bytes(n * stride);
      for (std::size_t i = 0; i < bytes.size(); ++i) {
        bytes[i] = static_cast<std::uint8_t>(rng64(i));
      }
      std::vector<std::uint64_t> out(n);
      ipv6_hash_batch(bytes.data(), stride, n, out.data());
      for (std::size_t i = 0; i < n; ++i) {
        net::Ipv6Address::Bytes raw;
        std::memcpy(raw.data(), bytes.data() + i * stride, 16);
        EXPECT_EQ(out[i], net::Ipv6AddressHash{}(net::Ipv6Address(raw)))
            << "stride=" << stride << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelBatch, FeistelMatchesPerRecordReference) {
  // Domains spanning tiny (cycle-walk heavy), odd, and > 2^32.
  const std::uint64_t domains[] = {1, 2, 5, 17, 1000, 1000003,
                                   1ULL << 32, (1ULL << 40) + 7};
  for (const std::uint64_t domain : domains) {
    const sim::FeistelPermutation perm(domain, 0xfeedULL ^ domain);
    for (const std::size_t n : kSizes) {
      std::vector<std::uint64_t> in(n), out(n), back(n);
      for (std::size_t i = 0; i < n; ++i) in[i] = rng64(i) % domain;
      perm.apply_batch(in.data(), n, out.data());
      perm.invert_batch(out.data(), n, back.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], perm.apply(in[i]))
            << "domain=" << domain << " n=" << n << " i=" << i;
        EXPECT_EQ(back[i], in[i])
            << "domain=" << domain << " n=" << n << " i=" << i;
      }
    }
  }
}

// Same-process scalar-vs-AVX2 comparison through the detail entry points
// (skipped on machines without AVX2 — CI's identity matrix covers those
// via the V6_FORCE_SCALAR leg instead).
TEST(KernelBatch, Avx2BitIdenticalToScalar) {
  if (detected_backend() != Backend::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  constexpr std::size_t kN = 1027;  // deliberately ragged
  std::vector<std::uint64_t> iids(kN);
  std::vector<std::uint8_t> accepted(kN);
  std::vector<std::uint8_t> bytes(kN * 16);
  for (std::size_t i = 0; i < kN; ++i) {
    iids[i] = (i % 7 == 0) ? (rng64(i) & 0xffff) : rng64(i);
    accepted[i] = static_cast<std::uint8_t>(rng64(i + 1) & 1);
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(rng64(i + 2));
  }

  std::vector<double> entropy_s(kN), entropy_v(kN);
  detail::iid_entropy_batch_scalar(iids.data(), kN, entropy_s.data());
  detail::iid_entropy_batch_avx2(iids.data(), kN, entropy_v.data());
  std::vector<net::AddressCategory> cat_s(kN), cat_v(kN);
  detail::classify_iid_batch_scalar(iids.data(), accepted.data(), kN,
                                    cat_s.data());
  detail::classify_iid_batch_avx2(iids.data(), accepted.data(), kN,
                                  cat_v.data());
  std::vector<std::uint64_t> hash_s(kN), hash_v(kN);
  detail::ipv6_hash_batch_scalar(bytes.data(), 16, kN, hash_s.data());
  detail::ipv6_hash_batch_avx2(bytes.data(), 16, kN, hash_v.data());
  const FeistelSpec spec = make_feistel_spec(1000003, 0xabcdULL);
  std::vector<std::uint64_t> perm_in(kN), perm_s(kN), perm_v(kN);
  for (std::size_t i = 0; i < kN; ++i) perm_in[i] = rng64(i) % 1000003;
  detail::feistel_apply_batch_scalar(spec, perm_in.data(), kN, perm_s.data());
  detail::feistel_apply_batch_avx2(spec, perm_in.data(), kN, perm_v.data());

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(bits(entropy_s[i]), bits(entropy_v[i])) << "entropy i=" << i;
    ASSERT_EQ(cat_s[i], cat_v[i]) << "classify i=" << i;
    ASSERT_EQ(hash_s[i], hash_v[i]) << "hash i=" << i;
    ASSERT_EQ(perm_s[i], perm_v[i]) << "feistel i=" << i;
  }
}

// ---------------------------------------------------------------------
// End-to-end: the five core analyses must produce bit-identical reports
// with the backend pinned to scalar and left on auto. On an AVX2 host
// this exercises the full vector path against the scalar reference; on
// anything else both runs take the scalar path and the comparison is a
// (still valid) no-op.

class KernelAnalysisIdentity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 31;
    config.total_sites = 300;
    world_ = new sim::World(sim::World::generate(config));
    corpus_ = new hitlist::Corpus();
    // Addresses inside simulated AS prefixes (so AS attribution works),
    // with a mix of random, structured, and duplicate-sighting IIDs and
    // staggered lifetimes.
    const std::size_t n_ases = world_->ases().size();
    for (std::uint64_t i = 0; i < 6000; ++i) {
      const auto as_index = static_cast<std::uint32_t>(i % n_ases);
      const std::uint64_t hi = world_->ases()[as_index].prefix_hi |
                               (2ULL << 28) | ((i / n_ases) << 8);
      std::uint64_t lo = rng64(i);
      if (i % 11 == 0) lo &= 0xff;
      if (i % 13 == 0) lo &= 0xffff;
      const auto addr = net::Ipv6Address::from_u64(hi, lo);
      corpus_->add(addr, static_cast<util::SimTime>(i % 90) * util::kDay);
      if (i % 3 == 0) {
        corpus_->add(addr,
                     static_cast<util::SimTime>(i % 90 + 40) * util::kDay);
      }
    }
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete world_;
  }

  static sim::World* world_;
  static hitlist::Corpus* corpus_;
};

sim::World* KernelAnalysisIdentity::world_ = nullptr;
hitlist::Corpus* KernelAnalysisIdentity::corpus_ = nullptr;

template <typename Report, typename Fn>
std::pair<Report, Report> run_both(Fn&& fn) {
  BackendGuard scalar(Backend::kScalar);
  Report a = fn();
  force_backend(std::nullopt);
  Report b = fn();
  return {std::move(a), std::move(b)};
}

TEST_F(KernelAnalysisIdentity, EntropyDistribution) {
  const auto [a, b] = run_both<util::EmpiricalDistribution>(
      [&] { return analysis::entropy_distribution(*corpus_); });
  ASSERT_EQ(a.count(), b.count());
  const auto& sa = a.sorted_samples();
  const auto& sb = b.sorted_samples();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(bits(sa[i]), bits(sb[i])) << "sample " << i;
  }
}

TEST_F(KernelAnalysisIdentity, AddressCategories) {
  const auto [a, b] = run_both<analysis::CategoryBreakdown>([&] {
    return analysis::categorize_corpus(*corpus_, *world_, 0,
                                       200 * util::kDay);
  });
  EXPECT_EQ(a.total, b.total);
  EXPECT_GT(a.total, 0u);
  for (std::size_t i = 0; i < a.counts.size(); ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << "category " << i;
  }
}

TEST_F(KernelAnalysisIdentity, AsEntropyProfiles) {
  using Profiles = std::vector<analysis::AsEntropyProfile>;
  const auto [a, b] = run_both<Profiles>([&] {
    return analysis::top_as_entropy_profiles(*corpus_, *world_, 10, 0,
                                             200 * util::kDay);
  });
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].asn, b[i].asn);
    EXPECT_EQ(a[i].addresses, b[i].addresses);
    const auto& sa = a[i].entropy.sorted_samples();
    const auto& sb = b[i].entropy.sorted_samples();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t s = 0; s < sa.size(); ++s) {
      ASSERT_EQ(bits(sa[s]), bits(sb[s])) << "as " << i << " sample " << s;
    }
  }
}

TEST_F(KernelAnalysisIdentity, Lifetimes) {
  const util::SimDuration points[] = {util::kWeek, util::kMonth,
                                      3 * util::kMonth};
  const auto [a, b] = run_both<analysis::IidLifetimeReport>(
      [&] { return analysis::iid_lifetimes(*corpus_, points); });
  EXPECT_EQ(a.unique_iids, b.unique_iids);
  EXPECT_GT(a.unique_iids, 0u);
  for (std::size_t band = 0; band < a.bands.size(); ++band) {
    EXPECT_EQ(a.bands[band].total, b.bands[band].total);
    EXPECT_EQ(bits(a.bands[band].fraction_once),
              bits(b.bands[band].fraction_once));
    EXPECT_EQ(bits(a.bands[band].fraction_week),
              bits(b.bands[band].fraction_week));
    ASSERT_EQ(a.bands[band].cdf.size(), b.bands[band].cdf.size());
    for (std::size_t p = 0; p < a.bands[band].cdf.size(); ++p) {
      EXPECT_EQ(bits(a.bands[band].cdf[p].second),
                bits(b.bands[band].cdf[p].second));
    }
  }
  const auto [c, d] = run_both<analysis::AddressLifetimeReport>(
      [&] { return analysis::address_lifetimes(*corpus_, points); });
  EXPECT_EQ(c.total, d.total);
  EXPECT_EQ(bits(c.fraction_once), bits(d.fraction_once));
  EXPECT_EQ(bits(c.fraction_month), bits(d.fraction_month));
}

TEST_F(KernelAnalysisIdentity, DatasetCompare) {
  const auto [a, b] = run_both<analysis::DatasetSummary>([&] {
    return analysis::summarize_dataset("corpus", *corpus_, *world_,
                                       corpus_);
  });
  EXPECT_EQ(a.addresses, b.addresses);
  EXPECT_EQ(a.asns, b.asns);
  EXPECT_EQ(a.slash48s, b.slash48s);
  EXPECT_EQ(a.common_addresses, b.common_addresses);
  EXPECT_EQ(a.common_asns, b.common_asns);
  EXPECT_EQ(a.common_slash48s, b.common_slash48s);
  EXPECT_EQ(bits(a.addrs_per_slash48), bits(b.addrs_per_slash48));
  EXPECT_GT(a.addresses, 0u);
}

TEST_F(KernelAnalysisIdentity, CorpusBlockInsertMatchesPerRecord) {
  // add_block (batch hash) must build the same corpus as per-record add:
  // same size, same slot layout, same serialized bytes after canonicalize.
  hitlist::Corpus by_block;
  corpus_->for_each_block([&by_block](
                              std::span<const hitlist::AddressRecord> block) {
    by_block.add_block(block);
  });
  hitlist::Corpus by_record;
  corpus_->for_each(  // deprecated: block API (kept as the reference here)
      [&by_record](const hitlist::AddressRecord& rec) {
        by_record.add_record(rec);
      });
  ASSERT_EQ(by_block.size(), corpus_->size());
  ASSERT_EQ(by_block.size(), by_record.size());
  by_block.for_each([&](const hitlist::AddressRecord& rec) {
    const auto* other = by_record.find(rec.address);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(rec.count, other->count);
    EXPECT_EQ(rec.first_seen, other->first_seen);
    EXPECT_EQ(rec.last_seen, other->last_seen);
    EXPECT_EQ(rec.vantage_mask, other->vantage_mask);
  });
}

}  // namespace
}  // namespace v6::kernels
