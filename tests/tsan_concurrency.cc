// ThreadSanitizer job for the concurrency primitives behind sharded
// collection. Built with -fsanitize=thread regardless of the main build's
// flags (see tests/CMakeLists.txt) and registered as an ordinary CTest
// test, so every `ctest` run races-checks the ThreadPool and the
// collector's shard/merge/serialized-hook pattern. Any data race makes
// TSan abort the process with a non-zero exit.
//
// The full library suite can additionally be built instrumented with
// `cmake -DV6_SANITIZER=thread` (see the top-level CMakeLists.txt); this
// binary is the fast always-on subset.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

// Stress submit/wait_idle reuse from many producers' worth of tasks.
void pool_stress() {
  v6::util::ThreadPool pool(8);
  std::mutex mu;
  std::uint64_t total = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 500; ++i) {
      pool.submit([&mu, &total] {
        std::lock_guard<std::mutex> lock(mu);
        ++total;
      });
    }
    pool.wait_idle();
  }
  check(total == 20 * 500, "pool_stress total");
}

// The collector's sharding shape: per-shard local state, a
// mutex-serialized hook into shared state, and a post-join reduce.
void sharded_collect_pattern() {
  constexpr std::size_t kItems = 200000;
  constexpr unsigned kShards = 8;
  std::vector<std::uint64_t> shard_sums(kShards, 0);
  std::vector<std::uint64_t> shard_counts(kShards, 0);
  std::mutex hook_mu;
  std::uint64_t hooked = 0;
  v6::util::run_sharded(
      kItems, kShards, [&](unsigned s, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          shard_sums[s] += i;       // thread-local tally, summed after join
          ++shard_counts[s];
          if (i % 1024 == 0) {      // sparse serialized hook delivery
            std::lock_guard<std::mutex> lock(hook_mu);
            ++hooked;
          }
        }
      });
  const auto total_sum = std::accumulate(
      shard_sums.begin(), shard_sums.end(), std::uint64_t{0});
  const auto total_count = std::accumulate(
      shard_counts.begin(), shard_counts.end(), std::uint64_t{0});
  check(total_sum == std::uint64_t{kItems} * (kItems - 1) / 2,
        "sharded sum");
  check(total_count == kItems, "sharded count");
  check(hooked == (kItems + 1023) / 1024, "hook deliveries");
}

}  // namespace

int main() {
  pool_stress();
  sharded_collect_pattern();
  std::printf("tsan concurrency checks passed\n");
  return 0;
}
