# Empty compiler generated dependencies file for v6_bench_common.
# This may be replaced when dependencies are built.
