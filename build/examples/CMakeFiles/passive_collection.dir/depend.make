# Empty dependencies file for passive_collection.
# This may be replaced when dependencies are built.
