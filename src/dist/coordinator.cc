#include "dist/coordinator.h"

#include <chrono>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "dist/transport.h"

namespace v6::dist {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ms_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0)
          .count());
}

struct WorkerPeer {
  std::uint32_t id = 0;
  bool alive = true;
  // kNoSubset while idle; the subset it holds a lease on otherwise.
  std::uint32_t lease = kNoSubset;
  std::uint64_t last_seen_ms = 0;
};

struct SubsetSlot {
  std::uint32_t id = 0;
  bool done = false;
  bool running = false;
  std::uint32_t epoch = 0;
  std::uint64_t available_at_ms = 0;
  // Last durable checkpoint: relative artifact path + its resume point
  // (carried in the upload frame's sim_time).
  std::string ckpt_path;
  std::uint64_t resume_from = 0;
  std::string final_path;
};

}  // namespace

Coordinator::Coordinator(const CoordinatorConfig& config) : config_(config) {
  if (config_.dir.empty()) {
    throw std::invalid_argument("Coordinator: run directory required");
  }
  if (config_.workers == 0) {
    throw std::invalid_argument("Coordinator: at least one worker");
  }
  if (config_.chunk_interval <= 0) {
    throw std::invalid_argument("Coordinator: chunk_interval must be > 0");
  }
}

CoordinatorResult Coordinator::run(util::SimTime start, util::SimTime end) {
  const std::uint32_t subset_count =
      config_.subsets != 0 ? config_.subsets : config_.workers;
  Mailbox inbox(config_.dir + "/to-coordinator");
  std::ofstream frame_log(config_.dir + "/frames.log",
                          std::ios::binary | std::ios::app);
  if (!frame_log) {
    throw std::runtime_error("coordinator: cannot open frames.log");
  }
  // The coordinator is the single frames.log writer: it appends frames it
  // sends at send time and frames it receives at drain time, so the log
  // needs no cross-process locking.
  const auto log_frame = [&](const Frame& frame) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    frame_log.write(reinterpret_cast<const char*>(bytes.data()),
                    static_cast<std::streamsize>(bytes.size()));
    frame_log.flush();
  };

  std::map<std::uint32_t, WorkerPeer> peers;
  std::map<std::uint32_t, Mailbox> outboxes;
  std::map<std::uint32_t, std::uint64_t> next_rx_seq;
  std::uint64_t tx_seq = 0;
  const auto outbox_for = [&](std::uint32_t worker) -> Mailbox& {
    auto it = outboxes.find(worker);
    if (it == outboxes.end()) {
      it = outboxes
               .emplace(worker, Mailbox(config_.dir + "/to-worker-" +
                                        std::to_string(worker)))
               .first;
    }
    return it->second;
  };
  const auto send = [&](std::uint32_t worker, FrameType type,
                        std::uint32_t subset, std::uint32_t epoch,
                        std::uint64_t sim_time,
                        std::vector<std::uint8_t> payload = {}) {
    Frame frame;
    frame.type = type;
    frame.sender = kCoordinatorId;
    frame.subset = subset;
    frame.epoch = epoch;
    frame.seq = tx_seq++;
    frame.sim_time = sim_time;
    frame.payload = std::move(payload);
    outbox_for(worker).post(frame);
    log_frame(frame);
  };

  std::vector<SubsetSlot> subsets(subset_count);
  for (std::uint32_t s = 0; s < subset_count; ++s) {
    subsets[s].id = s;
    subsets[s].resume_from = static_cast<std::uint64_t>(start);
  }

  CoordinatorResult result;
  const Clock::time_point t0 = Clock::now();

  const auto artifact_ok = [&](const Artifact& artifact) {
    return !validate_artifact_path(artifact.path).has_value();
  };

  while (true) {
    const std::uint64_t now = ms_since(t0);
    if (now > config_.max_wall_ms) {
      throw std::runtime_error(
          "coordinator: deadline exceeded before every subset completed");
    }

    for (const Frame& frame : inbox.drain()) {
      // Per-sender FIFO dedup: drain() may redeliver a frame whose file
      // could not be removed; old seqs are already-processed duplicates.
      auto [it, fresh] = next_rx_seq.try_emplace(frame.sender, 0);
      if (!fresh && frame.seq < it->second) continue;
      it->second = frame.seq + 1;
      log_frame(frame);
      WorkerPeer& peer =
          peers.try_emplace(frame.sender, WorkerPeer{frame.sender})
              .first->second;
      peer.last_seen_ms = now;
      switch (frame.type) {
        case FrameType::kHello:
        case FrameType::kHeartbeat:
          break;
        case FrameType::kCheckpointUpload: {
          if (frame.subset >= subset_count) break;
          SubsetSlot& slot = subsets[frame.subset];
          const Artifact artifact = decode_artifact(frame.payload);
          // Epoch fencing: a revoked-then-woken zombie reports with the
          // old epoch and must not overwrite the live lease's progress.
          if (frame.epoch != slot.epoch || slot.done ||
              !artifact_ok(artifact)) {
            ++result.stale_uploads_rejected;
            break;
          }
          slot.ckpt_path = artifact.path;
          slot.resume_from = frame.sim_time;
          ++result.checkpoints_uploaded;
          break;
        }
        case FrameType::kComplete: {
          if (frame.subset >= subset_count) break;
          SubsetSlot& slot = subsets[frame.subset];
          const Artifact artifact = decode_artifact(frame.payload);
          if (frame.epoch != slot.epoch || slot.done ||
              !artifact_ok(artifact)) {
            ++result.stale_uploads_rejected;
            break;
          }
          slot.done = true;
          slot.running = false;
          slot.final_path = artifact.path;
          if (peer.lease == frame.subset) peer.lease = kNoSubset;
          break;
        }
        case FrameType::kObsReport: {
          // Same epoch fence as uploads: a zombie's report must not
          // replace the live lease's, and a malformed payload is treated
          // exactly like a hostile artifact path.
          if (frame.subset >= subset_count) break;
          SubsetSlot& slot = subsets[frame.subset];
          if (frame.epoch != slot.epoch || slot.done) {
            ++result.stale_uploads_rejected;
            break;
          }
          try {
            ObsReport report = decode_obs_report(frame.payload);
            result.cluster_obs.add_worker(frame.sender, frame.subset,
                                          std::move(report.snapshot),
                                          std::move(report.windows));
          } catch (const std::exception&) {
            ++result.stale_uploads_rejected;
          }
          break;
        }
        case FrameType::kLeaseGrant:
        case FrameType::kShutdown:
        case FrameType::kRevoke:
          break;  // coordinator-only frame types; ignore echoes
      }
    }

    // Liveness: a leased worker silent past the timeout is dead; fence
    // its lease off and put the subset back in the pending pool.
    for (auto& [id, peer] : peers) {
      if (!peer.alive || peer.lease == kNoSubset) continue;
      if (now - peer.last_seen_ms <= config_.heartbeat_timeout_ms) continue;
      SubsetSlot& slot = subsets[peer.lease];
      peer.alive = false;
      peer.lease = kNoSubset;
      ++result.worker_deaths;
      ++result.reassignments;
      ++slot.epoch;  // stale uploads from the zombie now bounce
      slot.running = false;
      slot.available_at_ms = now + config_.retry_backoff_ms;
      send(id, FrameType::kRevoke, slot.id, slot.epoch,
           static_cast<std::uint64_t>(slot.resume_from));
    }

    // Assignment: pending subsets to idle live workers, in id order.
    for (SubsetSlot& slot : subsets) {
      if (slot.done || slot.running || now < slot.available_at_ms) continue;
      WorkerPeer* idle = nullptr;
      for (auto& [id, peer] : peers) {
        if (peer.alive && peer.lease == kNoSubset) {
          idle = &peer;
          break;
        }
      }
      if (idle == nullptr) break;
      LeaseGrant grant;
      grant.window_start = static_cast<std::uint64_t>(start);
      grant.window_end = static_cast<std::uint64_t>(end);
      grant.chunk_interval = static_cast<std::uint64_t>(config_.chunk_interval);
      grant.resume_from = slot.resume_from;
      grant.subset_count = subset_count;
      grant.checkpoint_path = slot.ckpt_path;
      idle->lease = slot.id;
      idle->last_seen_ms = now;
      slot.running = true;
      ++result.leases_granted;
      send(idle->id, FrameType::kLeaseGrant, slot.id, slot.epoch,
           slot.resume_from, encode_lease_grant(grant));
    }

    bool all_done = true;
    for (const SubsetSlot& slot : subsets) {
      if (!slot.done) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.poll_interval_ms));
  }

  // Shutdown everyone we know about plus the configured initial fleet
  // (a worker that never managed to say hello still deserves the memo).
  for (std::uint32_t w = 0; w < config_.workers; ++w) {
    peers.try_emplace(w, WorkerPeer{w});
  }
  for (auto& [id, peer] : peers) {
    send(id, FrameType::kShutdown, kNoSubset, 0,
         static_cast<std::uint64_t>(end));
  }

  // Deterministic merge over the final artifacts — byte-identical to the
  // single-process run because each subset's checkpoint already is.
  for (const SubsetSlot& slot : subsets) {
    hitlist::CollectionCheckpoint final_ckpt =
        hitlist::load_checkpoint_file(config_.dir + "/" + slot.final_path);
    result.corpus.merge(final_ckpt.corpus);
    result.polls_attempted += final_ckpt.state.polls_attempted;
    result.polls_answered += final_ckpt.state.polls_answered;
    if (result.vantage_health.size() < final_ckpt.state.vantage_health.size()) {
      result.vantage_health.resize(final_ckpt.state.vantage_health.size());
    }
    for (std::size_t v = 0; v < final_ckpt.state.vantage_health.size(); ++v) {
      const hitlist::VantageHealthStats& vh = final_ckpt.state.vantage_health[v];
      result.vantage_health[v].polls += vh.polls;
      result.vantage_health[v].answered += vh.answered;
      result.vantage_health[v].lost_to_fault += vh.lost_to_fault;
      result.vantage_health[v].retries += vh.retries;
      result.vantage_health[v].steered_polls += vh.steered_polls;
    }
  }
  result.corpus.canonicalize();
  return result;
}

}  // namespace v6::dist
