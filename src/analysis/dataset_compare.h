// Dataset comparison (Table 1): size, overlap, AS and /48 coverage, and
// address density of a corpus, plus the AS-type mix (§4.1's "Phone
// Provider" observation).
//
// Both entry points scan on analysis::ParallelScan; every aggregate is a
// set size or integer count, so results are identical at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/parallel_scan.h"
#include "hitlist/corpus.h"
#include "sim/world.h"

namespace v6::analysis {

struct DatasetSummary {
  std::string name;
  std::uint64_t addresses = 0;
  std::uint64_t asns = 0;
  std::uint64_t slash48s = 0;
  double addrs_per_slash48 = 0.0;
  // Intersections with the base (NTP) corpus; zero for the base itself.
  std::uint64_t common_addresses = 0;
  std::uint64_t common_asns = 0;
  std::uint64_t common_slash48s = 0;
};

// Summarizes `corpus`; when `base` is non-null, fills the intersection
// columns against it.
DatasetSummary summarize_dataset(const std::string& name,
                                 const hitlist::Corpus& corpus,
                                 const sim::World& world,
                                 const hitlist::Corpus* base = nullptr,
                                 const AnalysisConfig& config = {},
                                 std::vector<AnalysisStageStats>* stats =
                                     nullptr);

// Source-based variant, the one the out-of-core pipeline uses. The
// common_addresses column needs a membership test between the two
// datasets; when `base` has no contains() (a tiered base) but `corpus`
// does, the test is inverted — one extra scan over the base counts its
// records present in `corpus`, which is the same intersection size. If
// neither side supports contains(), throws std::invalid_argument.
DatasetSummary summarize_dataset(const std::string& name,
                                 const ScanSource& corpus,
                                 const sim::World& world,
                                 const ScanSource* base = nullptr,
                                 const AnalysisConfig& config = {},
                                 std::vector<AnalysisStageStats>* stats =
                                     nullptr);

// Fraction of corpus addresses originating in ASes of each type (the ASdb
// classification proxy). Indexed by sim::AsType.
std::vector<std::pair<sim::AsType, double>> as_type_fractions(
    const hitlist::Corpus& corpus, const sim::World& world,
    const AnalysisConfig& config = {},
    std::vector<AnalysisStageStats>* stats = nullptr);

}  // namespace v6::analysis
