#include "sim/oui_registry.h"

#include <unordered_map>

namespace v6::sim {

namespace {

net::Oui oui(std::uint8_t a, std::uint8_t b, std::uint8_t c) {
  return net::Oui((std::uint32_t{a} << 16) | (std::uint32_t{b} << 8) | c);
}

}  // namespace

OuiRegistry OuiRegistry::standard() {
  OuiRegistry reg;
  auto& m = reg.makers_;
  using K = DeviceKind;

  // The Table 2 manufacturers. EUI-64 propensities are tuned so the
  // reproduced Table 2 ordering matches the paper: a large "Unlisted"
  // bucket, then Amazon, Samsung, Sonos, vivo, Sunnovo, Gaoshengda,
  // Huawei, Chuangwei-RGB, Skyworth.
  // White-label IoT silicon with OUIs that never made it into the IEEE
  // registry. These gadgets have no WiFi AP interface of their own
  // (bssid_offset 0), so they leak trackable MACs but are not directly
  // geolocatable — exactly the split the paper observed.
  m.push_back({"Unlisted", false,
               {oui(0xf0, 0x02, 0x20), oui(0xa8, 0xaa, 0x20),
                oui(0xf2, 0x10, 0x30), oui(0xee, 0x43, 0x87),
                oui(0xd6, 0x21, 0x09), oui(0xc2, 0x5a, 0x11)},
               {K::kIot},
               0.55,
               0,
               true,
               4.0});
  m.push_back({"Amazon Technologies Inc.", true,
               {oui(0x0c, 0x47, 0xc9), oui(0x74, 0xc2, 0x46),
                oui(0xf0, 0x27, 0x2d)},
               {K::kIot},
               0.40,
               0x10,
               false,
               2.6});
  m.push_back({"Samsung Electronics Co.,Ltd", true,
               {oui(0x8c, 0x71, 0xf8), oui(0x5c, 0x49, 0x7d)},
               {K::kMobile, K::kIot},
               0.06,
               0x08,
               false,
               2.2});
  m.push_back({"Sonos, Inc.", true,
               {oui(0x94, 0x9f, 0x3e)},
               {K::kIot},
               0.60,
               0x04,
               false,
               0.9});
  m.push_back({"vivo Mobile Communication Co., Ltd.", true,
               {oui(0xa8, 0x9c, 0xed)},
               {K::kMobile},
               0.08,
               0x02,
               false,
               0.8});
  m.push_back({"Sunnovo International Limited", true,
               {oui(0x64, 0x51, 0x7e)},
               {K::kCpe, K::kIot},
               0.50,
               0x20,
               false,
               0.7});
  m.push_back({"Hui Zhou Gaoshengda Technology Co.,LTD", true,
               {oui(0x18, 0x28, 0x61)},
               {K::kCpe},
               0.45,
               0x12,
               false,
               0.65});
  m.push_back({"Huawei Technologies", true,
               {oui(0x00, 0x9a, 0xcd), oui(0x48, 0x46, 0xfb)},
               {K::kMobile, K::kCpe, K::kRouter},
               0.15,
               0x06,
               true,
               0.6});
  m.push_back({"Shenzhen Chuangwei-RGB Electronics", true,
               {oui(0x14, 0x6b, 0x9c)},
               {K::kIot},
               0.45,
               0x30,
               false,
               0.55});
  m.push_back({"Skyworth Digital Technology (Shenzhen) Co.,Ltd", true,
               {oui(0xcc, 0x05, 0x77)},
               {K::kIot, K::kCpe},
               0.40,
               0x14,
               false,
               0.5});
  // AVM's Fritz!Box dominates the §5.3 geolocation result: EUI-64 on the
  // WAN interface, WiFi BSSID at a small fixed offset, heavily wardriven
  // in Germany.
  // Sold almost exclusively in the DACH market (the world generator
  // additionally forces AVM for most German sites).
  m.push_back({"AVM GmbH", true,
               {oui(0x3c, 0xa6, 0x2f), oui(0xe0, 0x28, 0x6d)},
               {K::kCpe},
               0.92,
               0x03,
               false,
               0.12});
  // Mostly-random manufacturers: big client vendors whose devices use
  // privacy addresses (almost never EUI-64).
  m.push_back({"Apple, Inc.", true,
               {oui(0xf0, 0x18, 0x98), oui(0xa4, 0x83, 0xe7)},
               {K::kMobile, K::kDesktop},
               0.0,
               0x01,
               false,
               2.4});
  m.push_back({"Intel Corporate", true,
               {oui(0x3c, 0x6a, 0xa7), oui(0x94, 0xe6, 0xf7)},
               {K::kDesktop, K::kServer},
               0.01,
               0,
               false,
               2.0});
  m.push_back({"Xiaomi Communications Co Ltd", true,
               {oui(0x50, 0xec, 0x50)},
               {K::kMobile, K::kIot},
               0.05,
               0x05,
               false,
               1.4});
  m.push_back({"TP-Link Systems Inc.", true,
               {oui(0x5c, 0xa6, 0xe6)},
               {K::kCpe, K::kIot},
               0.30,
               0x09,
               false,
               0.9});
  m.push_back({"Cisco Systems, Inc", true,
               {oui(0x00, 0x27, 0x90), oui(0x70, 0x6d, 0x15)},
               {K::kRouter, K::kServer},
               0.02,
               0,
               false,
               1.5});
  m.push_back({"Juniper Networks", true,
               {oui(0x28, 0x8a, 0x1c)},
               {K::kRouter},
               0.02,
               0,
               false,
               0.8});
  m.push_back({"Dell Inc.", true,
               {oui(0x8c, 0x47, 0xbe)},
               {K::kServer, K::kDesktop},
               0.02,
               0,
               false,
               1.0});
  m.push_back({"zte corporation", true,
               {oui(0x68, 0x02, 0xb8)},
               {K::kCpe, K::kMobile},
               0.25,
               0x07,
               false,
               0.8});
  m.push_back({"Nokia", true,
               {oui(0x10, 0xf9, 0xee)},
               {K::kRouter, K::kCpe},
               0.20,
               0x0b,
               false,
               0.6});

  for (std::size_t i = 0; i < m.size(); ++i) {
    for (const auto o : m[i].ouis) reg.index_[o.value()] = i;
  }
  return reg;
}

std::optional<std::string_view> OuiRegistry::resolve(net::Oui oui) const {
  const auto idx = manufacturer_index(oui);
  if (!idx || !makers_[*idx].registered) return std::nullopt;
  return makers_[*idx].name;
}

std::optional<std::size_t> OuiRegistry::manufacturer_index(
    net::Oui oui) const {
  const auto it = index_.find(oui.value());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::size_t> OuiRegistry::makers_for_kind(DeviceKind kind) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < makers_.size(); ++i) {
    for (const auto k : makers_[i].kinds) {
      if (k == kind) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

}  // namespace v6::sim
