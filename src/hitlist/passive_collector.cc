#include "hitlist/passive_collector.h"

#include <algorithm>

#include "hitlist/tiered_corpus.h"
#include "proto/ntp_packet.h"
#include "proto/udp.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace v6::hitlist {

namespace {

// Mirrors Rng::uniform()'s mapping of a raw draw to [0, 1): both collection
// paths burn the same two raw draws per attempt, and the fast path turns
// them into loss decisions with exactly the distribution chance() uses.
double unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// The i-th re-send goes out backoff * (2^i - 1) seconds after the original
// packet (RFC 5905-flavoured exponential backoff).
util::SimDuration backoff_offset(std::uint32_t attempt,
                                 util::SimDuration backoff) noexcept {
  if (attempt == 0) return 0;
  return backoff * ((util::SimDuration{1} << attempt) - 1);
}

}  // namespace

PassiveCollector::PassiveCollector(const sim::World& world,
                                   netsim::DataPlane& plane,
                                   const netsim::PoolDns& dns,
                                   const CollectorConfig& config)
    : world_(&world), plane_(&plane), dns_(&dns), config_(config) {
  if (config_.metrics != nullptr) {
    obs::Registry& reg = *config_.metrics;
    metric_polls_ = reg.counter("v6_collector_polls_total",
                                "NTP poll packets attempted by pool clients");
    metric_answered_ = reg.counter(
        "v6_collector_answered_total",
        "Poll attempts whose response passed client-side validation");
    metric_records_ = reg.counter(
        "v6_collector_records_total",
        "Unique client addresses admitted to the corpus");
    metric_dedup_hits_ = reg.counter(
        "v6_collector_dedup_hits_total",
        "Observations folded into an existing corpus record");
    metric_checkpoints_ = reg.counter(
        "v6_collector_checkpoints_total",
        "Checkpoint snapshots handed to the sink");
    const std::size_t vantage_count = world.vantages().size();
    metric_vantage_polls_.reserve(vantage_count);
    metric_vantage_answered_.reserve(vantage_count);
    metric_vantage_fault_lost_.reserve(vantage_count);
    metric_vantage_records_.reserve(vantage_count);
    for (std::size_t v = 0; v < vantage_count; ++v) {
      const obs::Labels labels{{"vantage", std::to_string(v)}};
      metric_vantage_polls_.push_back(
          reg.counter(obs::kVantagePollsFamily,
                      "Recorded poll packets steered to this vantage",
                      labels));
      metric_vantage_answered_.push_back(reg.counter(
          obs::kVantageAnsweredFamily,
          "Poll attempts this vantage answered past client validation",
          labels));
      metric_vantage_fault_lost_.push_back(reg.counter(
          obs::kVantageFaultLostFamily,
          "Poll attempts the fault plan swallowed at this vantage", labels));
      metric_vantage_records_.push_back(reg.counter(
          obs::kVantageRecordsFamily,
          "Observations recorded into the corpus via this vantage", labels));
    }
  }
}

void PassiveCollector::process_event(ShardState& shard, DeviceState& ds,
                                     util::SimTime t,
                                     util::SimTime window_end) const {
  // An AS-wide outage silences every host in it (the intro's outage-
  // detection use case: the corpus time series shows the hole).
  if (world_->config().outage_count > 0 &&
      world_->in_outage(world_->attachment(ds.id, t).as_index, t)) {
    return;
  }
  const sim::Device& dev = world_->devices()[ds.id];
  const net::Ipv6Address client = world_->device_address(ds.id, t);
  // One DNS resolution per sync event; every packet of an iburst (and
  // every retry) rides it to the same server. Health-aware steering may
  // redirect the pick away from a monitored-down vantage.
  bool steered = false;
  const sim::VantagePoint* vantage = dns_->resolve(client, ds.rng, t, &steered);
  const netsim::FaultSchedule* faults = plane_->faults();
  // Vantage-subset filtering: `record` decides whether this worker OWNS
  // the poll's vantage and therefore counts/records it. The simulation
  // below runs identically either way — same draws, same fault verdicts,
  // same retry control flow — so disjoint subsets stay in RNG lockstep.
  const bool record =
      shard.recording && vantage != nullptr && vantage_enabled(vantage->id);
  if (record && steered) {
    ++shard.vantage[vantage->id].steered_polls;
  }
  // A burst is one sync event: its packets go out ~2s apart.
  const std::uint8_t burst =
      config_.ignore_bursts ? 1 : std::max<std::uint8_t>(dev.ntp.burst, 1);
  for (std::uint8_t k = 0; k < burst; ++k) {
    const util::SimTime tk = t + 2 * k;
    if (tk >= window_end) break;  // the collection window closes mid-burst
    if (vantage == nullptr) {
      // The poll went to one of the thousands of pool servers that are
      // not ours — invisible to the study, and not retried here. Exactly
      // one worker of a distributed fleet owns this tally.
      if (shard.recording && config_.count_unassigned) ++shard.tally.polls;
      continue;
    }
    VantageHealthStats& vh = shard.vantage[vantage->id];
    for (std::uint32_t attempt = 0; attempt <= config_.retry_limit;
         ++attempt) {
      const util::SimTime tj =
          tk + backoff_offset(attempt, config_.retry_backoff);
      if (tj >= window_end) break;
      if (record) {
        ++shard.tally.polls;
        ++vh.polls;
        if (attempt > 0) ++vh.retries;
      }
      // Exactly two draws per attempt on both paths keeps the device
      // streams in lockstep (see the header comment).
      const std::uint64_t r1 = ds.rng.next();
      const std::uint64_t r2 = ds.rng.next();
      // Pure-function fault verdict: both paths (and a resumed run)
      // agree without consulting any RNG.
      const bool faulted =
          faults != nullptr && !faults->delivers(vantage->id, client, tj);
      if (record && faulted) ++vh.lost_to_fault;
      bool answered = false;
      if (config_.wire_fidelity) {
        const auto nonce = static_cast<std::uint32_t>(r1);
        const proto::NtpPacket request = proto::make_client_request(tj, nonce);
        // r2 >> 50 == Rng::bounded(16384) on the same draw (power-of-two
        // Lemire reduction never rejects).
        const auto src_port = static_cast<std::uint16_t>(49152 + (r2 >> 50));
        const auto response_bytes =
            plane_->send_udp(client, src_port, vantage->address,
                             proto::kNtpPort, request.encode(), tj);
        if (response_bytes) {
          // SNTP client-side validation: server mode, origin echoes our
          // transmit timestamp.
          const auto response = proto::NtpPacket::decode(*response_bytes);
          answered = response && response->mode == proto::NtpMode::kServer &&
                     response->origin_time == request.transmit_time;
        }
      } else {
        // Fast path: identical steering, loss, and fault model, no
        // serialization. Request-direction loss suppresses the
        // observation entirely...
        const bool request_lost = unit(r1) < config_.loss_rate;
        bool served = false;
        if (!request_lost && !faulted) {
          shard.servers[vantage->id]->record(client, tj);
          served = true;
        }
        // ...response-direction loss costs only the client's answer.
        answered = served && !(unit(r2) < config_.loss_rate);
      }
      if (answered) {
        if (record) {
          ++shard.tally.answered;
          ++vh.answered;
        }
        break;  // the client heard back; no more re-sends of this packet
      }
    }
  }
}

void PassiveCollector::process_chunk(ShardState& shard,
                                     util::SimTime window_end,
                                     util::SimTime chunk_end) const {
  for (DeviceState& ds : shard.devices) {
    for (;;) {
      if (!ds.pending) {
        ds.pending = ds.schedule.next(ds.cursor);
        if (!ds.pending) break;  // schedule exhausted
      }
      if (*ds.pending >= chunk_end) break;  // belongs to a later chunk
      const util::SimTime t = *ds.pending;
      ds.pending.reset();
      process_event(shard, ds, t, window_end);
    }
  }
}

void PassiveCollector::collect(Corpus& corpus, const CheckpointState& from,
                               const ObservationHook& hook,
                               const CheckpointSink& sink) {
  const auto devices = world_->devices();
  const auto vantages = world_->vantages();
  unsigned shards = config_.threads.resolved();
  // The wire path serializes every poll through the shared DataPlane
  // (UDP delivery mutates its loss RNG and routing state), so it stays
  // single-threaded; the fast path is the one built for scale.
  if (config_.wire_fidelity) shards = 1;
  shards = static_cast<unsigned>(std::min<std::size_t>(
      shards, std::max<std::size_t>(devices.size(), 1)));

  // Counters carried in from the checkpoint (all zero on a fresh run).
  std::vector<VantageHealthStats> base_vh = from.vantage_health;
  if (base_vh.size() < vantages.size()) base_vh.resize(vantages.size());

  std::mutex hook_mu;
  std::mutex* mu = (hook && shards > 1) ? &hook_mu : nullptr;

  std::vector<ShardState> states(shards);
  for (unsigned s = 0; s < shards; ++s) {
    ShardState& shard = states[s];
    shard.vantage.resize(vantages.size());
    shard.vantage_obs.resize(vantages.size());
    // One server object per vantage, all sinking into this shard's
    // corpus. The sink consults the shard's recording flag so replayed
    // (pre-checkpoint) traffic leaves no trace.
    shard.servers.reserve(vantages.size());
    for (const auto& vantage : vantages) {
      auto observation_sink = [this, shardp = &shard, &hook, mu,
                               address = vantage.address](
                                  const ntp::Observation& obs) {
        // The server still serves filtered-out vantages (keeping both
        // execution paths' state identical across workers); only the
        // recording of the observation is subset-local.
        if (!shardp->recording || !vantage_enabled(obs.vantage)) return;
        shardp->corpus.add(obs.client, obs.time, obs.vantage);
        if (obs.vantage < shardp->vantage_obs.size()) {
          ++shardp->vantage_obs[obs.vantage];
        }
        if (hook) {
          if (mu == nullptr) {
            hook(obs, address);
          } else {
            std::lock_guard<std::mutex> lock(*mu);
            hook(obs, address);
          }
        }
      };
      shard.servers.push_back(
          std::make_unique<ntp::NtpServer>(vantage, observation_sink));
      if (config_.wire_fidelity) shard.servers.back()->bind(*plane_);
    }
    // Contiguous device range (the same partition run_sharded uses), so
    // the shard layout is a pure function of (device count, shard count).
    const std::size_t range_begin = devices.size() * s / shards;
    const std::size_t range_end = devices.size() * (s + 1) / shards;
    for (std::size_t d = range_begin; d < range_end; ++d) {
      const sim::Device& dev = devices[d];
      if (!dev.ntp.uses_pool) continue;
      // Order-independent per-device stream: the collection result does
      // not depend on enumeration order (the property that makes sharding
      // devices across threads or machines — and across checkpoint
      // epochs — bit-exact).
      shard.devices.push_back(DeviceState{
          static_cast<sim::DeviceId>(d),
          util::Rng(
              util::mix64(config_.seed ^ 0xc0111ec7 ^ util::mix64(dev.seed))),
          ntp::ClientSchedule(dev, from.window_start, from.window_end),
          {},
          std::nullopt});
    }
  }

  const auto run_chunk = [&](util::SimTime chunk_end) {
    util::run_sharded(states.size(), shards,
                      [&](unsigned, std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i) {
                          process_chunk(states[i], from.window_end, chunk_end);
                        }
                      });
  };

  // Resume: silently replay the already-checkpointed prefix, consuming
  // RNG / DNS / data-plane state exactly as the original run did.
  if (from.resume_from > from.window_start) {
    for (ShardState& shard : states) shard.recording = false;
    run_chunk(from.resume_from);
    for (ShardState& shard : states) shard.recording = true;
  }

  // Incremental metric flushing: with a sampler attached, the cumulative
  // shard tallies are folded into the registry at every sample boundary
  // (so each WindowRecord's deltas are exact); the `flushed_*` baselines
  // make each flush increment-only. Without a sampler there is exactly
  // one flush, after the final merge — byte-identical to the pre-sampler
  // behavior.
  const std::size_t records_before =
      tiered_ != nullptr ? static_cast<std::size_t>(tiered_->merged_size())
                         : corpus.size();
  const std::uint64_t observations_before =
      tiered_ != nullptr ? tiered_->total_observations() : 0;
  std::uint64_t flushed_polls = 0;
  std::uint64_t flushed_answered = 0;
  std::uint64_t flushed_records = 0;
  std::uint64_t flushed_dedup = 0;
  std::vector<std::uint64_t> flushed_v_polls(vantages.size(), 0);
  std::vector<std::uint64_t> flushed_v_answered(vantages.size(), 0);
  std::vector<std::uint64_t> flushed_v_fault(vantages.size(), 0);
  std::vector<std::uint64_t> flushed_v_obs(vantages.size(), 0);
  const auto bump = [](obs::Counter& counter, std::uint64_t cumulative,
                       std::uint64_t& flushed) {
    counter.inc(cumulative - flushed);
    flushed = cumulative;
  };
  // `admitted` is the dedup-aware record count recorded so far (union
  // size minus the caller's baseline), exact at any merge barrier.
  const auto flush_metrics = [&](std::uint64_t admitted) {
    std::uint64_t polls = 0;
    std::uint64_t answered = 0;
    // Spilled observations live in the run headers, not the shard tables.
    std::uint64_t observations =
        tiered_ != nullptr
            ? tiered_->total_observations() - observations_before
            : 0;
    std::vector<std::uint64_t> v_polls(vantages.size(), 0);
    std::vector<std::uint64_t> v_answered(vantages.size(), 0);
    std::vector<std::uint64_t> v_fault(vantages.size(), 0);
    std::vector<std::uint64_t> v_obs(vantages.size(), 0);
    for (const ShardState& shard : states) {
      polls += shard.tally.polls;
      answered += shard.tally.answered;
      observations += shard.corpus.total_observations();
      for (std::size_t v = 0; v < shard.vantage.size(); ++v) {
        v_polls[v] += shard.vantage[v].polls;
        v_answered[v] += shard.vantage[v].answered;
        v_fault[v] += shard.vantage[v].lost_to_fault;
        v_obs[v] += shard.vantage_obs[v];
      }
    }
    bump(metric_polls_, polls, flushed_polls);
    bump(metric_answered_, answered, flushed_answered);
    bump(metric_records_, admitted, flushed_records);
    // Every observation either admits a record or folds into one, so the
    // cumulative dedup count is monotone too.
    bump(metric_dedup_hits_, observations - std::min(observations, admitted),
         flushed_dedup);
    for (std::size_t v = 0;
         v < std::min(vantages.size(), metric_vantage_polls_.size()); ++v) {
      bump(metric_vantage_polls_[v], v_polls[v], flushed_v_polls[v]);
      bump(metric_vantage_answered_[v], v_answered[v], flushed_v_answered[v]);
      bump(metric_vantage_fault_lost_[v], v_fault[v], flushed_v_fault[v]);
      bump(metric_vantage_records_[v], v_obs[v], flushed_v_obs[v]);
    }
  };
  // The union of the caller's corpus and every shard corpus — the same
  // construction the checkpoint path snapshots — sized mid-run so the
  // records counter stays exact (insertion counting would double-count
  // addresses seen by two shards).
  const auto union_size = [&]() -> std::size_t {
    std::size_t upper = corpus.size();
    for (const ShardState& shard : states) upper += shard.corpus.size();
    Corpus scratch(std::max<std::size_t>(upper, 1));
    corpus.for_each(
        [&scratch](const AddressRecord& r) { scratch.add_record(r); });
    for (const ShardState& shard : states) scratch.merge(shard.corpus);
    if (tiered_ != nullptr) {
      // Already-spilled records count too; merged_size_with needs the
      // not-yet-spilled union in ascending order.
      scratch.canonicalize();
      return static_cast<std::size_t>(tiered_->merged_size_with(scratch));
    }
    return scratch.size();
  };

  // Merges every shard table into one union corpus and flushes it to disk
  // as a single run. Spilling the union of ALL shards (not one run per
  // shard) is what makes each run's content — and with it the merged
  // stream — independent of the shard count.
  const auto spill_shards = [&] {
    std::size_t upper = 0;
    for (const ShardState& shard : states) upper += shard.corpus.size();
    if (upper == 0) return;
    Corpus combined(upper);
    for (ShardState& shard : states) {
      combined.merge(shard.corpus);
      shard.corpus = Corpus(1 << 12);
    }
    tiered_->spill(std::move(combined));
  };

  // The corpus-so-far at a merge barrier: whatever the caller's corpus
  // already held (a resumed-from snapshot) plus every shard's recordings —
  // in tiered mode, the spilled runs collapsed back into memory plus
  // whatever the shards still hold. Union at a barrier, so the result is
  // a pure function of the boundary time, not the shard count.
  const auto union_snapshot = [&]() -> Corpus {
    std::size_t records = corpus.size();
    for (const ShardState& shard : states) records += shard.corpus.size();
    Corpus snapshot = tiered_ != nullptr
                          ? tiered_->collapse()
                          : Corpus(std::max<std::size_t>(records, 1));
    corpus.for_each(
        [&snapshot](const AddressRecord& r) { snapshot.add_record(r); });
    for (const ShardState& shard : states) snapshot.merge(shard.corpus);
    return snapshot;
  };

  const bool checkpointing = sink && config_.checkpoint_interval > 0;
  // A hook observes sightings in chunk-iteration order (and may feed
  // order-sensitive consumers like the backscanner's shared RNG), so the
  // sampler's grid must not reshape the chunking there: a hooked pass
  // runs whole-window and leaves sampling to the caller's stage sample.
  const bool sampling =
      config_.sampler != nullptr && config_.metrics != nullptr && !hook;
  // Epoch publication obeys the same hooked-pass exemption as sampling.
  const bool epoching =
      config_.epoch_sink && config_.epoch_interval > 0 && !hook;
  util::SimTime lo = std::max(from.window_start, from.resume_from);
  while (lo < from.window_end) {
    util::SimTime hi = from.window_end;
    if (checkpointing) {
      // Next boundary strictly after `lo` on the grid
      // window_start + k * interval.
      const std::int64_t k =
          (lo - from.window_start) / config_.checkpoint_interval + 1;
      hi = std::min<util::SimTime>(
          from.window_end,
          from.window_start + k * config_.checkpoint_interval);
    }
    if (sampling) {
      hi = std::min(hi, config_.sampler->next_boundary(lo));
    }
    if (epoching) {
      const std::int64_t k =
          (lo - from.window_start) / config_.epoch_interval + 1;
      hi = std::min<util::SimTime>(
          hi, from.window_start + k * config_.epoch_interval);
    }
    if (tiered_ != nullptr && tiered_->config().barrier_interval > 0) {
      // The spill grid guarantees interior merge barriers even when
      // neither checkpointing nor sampling provides them.
      const util::SimDuration interval = tiered_->config().barrier_interval;
      const std::int64_t k = (lo - from.window_start) / interval + 1;
      hi = std::min<util::SimTime>(hi, from.window_start + k * interval);
    }
    run_chunk(hi);
    if (tiered_ != nullptr) {
      // Spill before checkpoint emission and sampling so the checkpoint
      // snapshot can be rebuilt from the runs and the spill counters fold
      // into this boundary's timeline window. The window-end tail always
      // spills: after the loop the shard tables must be empty.
      std::size_t heap = 0;
      for (const ShardState& shard : states) {
        heap += shard.corpus.memory_bytes();
      }
      if (hi >= from.window_end ||
          heap > tiered_->config().memory_budget_bytes) {
        spill_shards();
      }
    }
    // With both grids active `hi` may be a sample-only boundary, so gate
    // checkpoint emission on actually being on the checkpoint grid.
    if (checkpointing && hi < from.window_end &&
        (hi - from.window_start) % config_.checkpoint_interval == 0) {
      CheckpointState snap;
      snap.window_start = from.window_start;
      snap.window_end = from.window_end;
      snap.resume_from = hi;
      snap.polls_attempted = from.polls_attempted;
      snap.polls_answered = from.polls_answered;
      snap.vantage_health = base_vh;
      for (const ShardState& shard : states) {
        snap.polls_attempted += shard.tally.polls;
        snap.polls_answered += shard.tally.answered;
        for (std::size_t v = 0; v < shard.vantage.size(); ++v) {
          snap.vantage_health[v].polls += shard.vantage[v].polls;
          snap.vantage_health[v].answered += shard.vantage[v].answered;
          snap.vantage_health[v].lost_to_fault +=
              shard.vantage[v].lost_to_fault;
          snap.vantage_health[v].retries += shard.vantage[v].retries;
          snap.vantage_health[v].steered_polls +=
              shard.vantage[v].steered_polls;
        }
      }
      Corpus snapshot = union_snapshot();
      metric_checkpoints_.inc();
      sink(snap, snapshot);
    }
    // Epoch publication rides the same merge barrier. Canonicalized so
    // the handed corpus's layout — and every serve::Snapshot table built
    // from it — is a pure function of its content.
    if (epoching && hi < from.window_end &&
        (hi - from.window_start) % config_.epoch_interval == 0) {
      Corpus snapshot = union_snapshot();
      snapshot.canonicalize();
      config_.epoch_sink(hi, snapshot);
    }
    // All shards joined at `hi` — a merge barrier, so the flushed counter
    // state is exact and thread-count-independent when the sampler reads
    // it. The window-end boundary is left to the caller's stage sample.
    if (sampling && hi < from.window_end && config_.sampler->on_boundary(hi)) {
      flush_metrics(union_size() - records_before);
      config_.sampler->sample(hi, config_.sampler_stage);
    }
    lo = hi;
  }

  // Deterministic reduce: Corpus aggregates are commutative (min/max/
  // sum/or), so the merged corpus matches the serial run field-for-field —
  // and, for a resumed run, the union of the snapshot and the tail
  // matches the uninterrupted run.
  polls_ += from.polls_attempted;
  answered_ += from.polls_answered;
  vantage_health_ = std::move(base_vh);
  for (ShardState& shard : states) {
    // Tiered mode flushed every shard at the final barrier already.
    if (tiered_ == nullptr) corpus.merge(shard.corpus);
    polls_ += shard.tally.polls;
    answered_ += shard.tally.answered;
    for (std::size_t v = 0; v < shard.vantage.size(); ++v) {
      vantage_health_[v].polls += shard.vantage[v].polls;
      vantage_health_[v].answered += shard.vantage[v].answered;
      vantage_health_[v].lost_to_fault += shard.vantage[v].lost_to_fault;
      vantage_health_[v].retries += shard.vantage[v].retries;
      vantage_health_[v].steered_polls += shard.vantage[v].steered_polls;
    }
  }
  // Metrics cover what this run itself recorded (the checkpointed `from`
  // baseline was already counted when the original run emitted it). With
  // a sampler this flush covers only the tail since the last boundary —
  // the shard corpora are all merged now, so the union is `corpus`.
  flush_metrics(
      (tiered_ != nullptr ? static_cast<std::size_t>(tiered_->merged_size())
                          : corpus.size()) -
      records_before);
  // Chunk grids (checkpoints, sampling boundaries) change the order merged
  // sightings reach the corpus, which would leak into save_corpus() bytes
  // through linear-probe slot placement. Canonicalize so the layout is a
  // pure function of the content: outputs stay byte-identical across
  // shard counts and with sampling on or off. (Tiered mode needs no
  // equivalent: run files are written canonicalized and the k-way merge
  // emits ascending order by construction.)
  if (tiered_ == nullptr) corpus.canonicalize();
}

void PassiveCollector::run(Corpus& corpus, util::SimTime start,
                           util::SimTime end, const ObservationHook& hook,
                           const CheckpointSink& sink) {
  CheckpointState fresh;
  fresh.window_start = start;
  fresh.window_end = end;
  fresh.resume_from = start;
  collect(corpus, fresh, hook, sink);
}

void PassiveCollector::run(TieredCorpus& runs, util::SimTime start,
                           util::SimTime end, const ObservationHook& hook,
                           const CheckpointSink& sink) {
  tiered_ = &runs;
  // Scratch stand-in for the caller corpus: collect() keeps it empty in
  // tiered mode (shards spill instead of merging into it).
  Corpus scratch(1);
  CheckpointState fresh;
  fresh.window_start = start;
  fresh.window_end = end;
  fresh.resume_from = start;
  try {
    collect(scratch, fresh, hook, sink);
  } catch (...) {
    tiered_ = nullptr;
    throw;
  }
  tiered_ = nullptr;
}

void PassiveCollector::resume(Corpus& corpus, const CheckpointState& from,
                              const ObservationHook& hook,
                              const CheckpointSink& sink) {
  collect(corpus, from, hook, sink);
}

void PassiveCollector::resume(TieredCorpus& runs, Corpus&& snapshot,
                              const CheckpointState& from,
                              const ObservationHook& hook,
                              const CheckpointSink& sink) {
  tiered_ = &runs;
  // The checkpointed prefix becomes the first on-disk run; the tail then
  // spills through the normal barrier machinery. Run *boundaries* differ
  // from an uninterrupted spilled run, but the k-way merge erases
  // boundaries — the merged stream is a pure function of content.
  if (snapshot.size() > 0) runs.spill(std::move(snapshot));
  Corpus scratch(1);
  try {
    collect(scratch, from, hook, sink);
  } catch (...) {
    tiered_ = nullptr;
    throw;
  }
  tiered_ = nullptr;
}

}  // namespace v6::hitlist
