// Sim-time-stamped trace spans for the coarse pipeline stages.
//
// The study runs on a virtual clock, so spans are stamped with SimTime —
// a span is "collect covered [day 0, day 219]", not a wall-clock latency.
// Nesting is explicit: begin_span() parents the new span under the
// innermost still-open one, which is how `study.run` encloses the four
// stage spans in the snapshot.
//
// Thread safety: a mutex per operation. Spans mark stage boundaries
// (dozens per study), never per-packet events, so contention is nil.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "obs/snapshot.h"
#include "util/sim_time.h"

namespace v6::obs {

class Tracer {
 public:
  using SpanId = std::size_t;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Opens a span starting at sim time `at`, nested under the innermost
  // open span (if any). Returns its id.
  SpanId begin_span(std::string name, util::SimTime at);

  // Closes `id` at sim time `at`. Also closes (at the same stamp) any
  // still-open spans nested more deeply, so a missed end_span() cannot
  // corrupt the nesting of later spans. Unknown/already-closed ids are
  // ignored.
  void end_span(SpanId id, util::SimTime at);

  // Copy of every recorded span, in begin order.
  std::vector<SpanRecord> spans() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<SpanId> open_;  // stack of open span ids
};

}  // namespace v6::obs
