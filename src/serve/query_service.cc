#include "serve/query_service.h"

#include <algorithm>
#include <chrono>

#include "analysis/scan_source.h"

namespace v6::serve {

namespace {

// RAII latency probe: observes the enclosing scope's wall-clock duration
// (µs) into the query kind's histogram on destruction. A no-op handle
// (metrics unwired) costs one branch.
class LatencyProbe {
 public:
  explicit LatencyProbe(const obs::Histogram& histogram) noexcept
      : histogram_(histogram),
        begin_(std::chrono::steady_clock::now()) {}
  ~LatencyProbe() {
    const auto elapsed = std::chrono::steady_clock::now() - begin_;
    histogram_.observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  const obs::Histogram& histogram_;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace

std::vector<double> serve_latency_buckets_us() {
  return {0.25, 1.0, 4.0, 16.0, 64.0, 256.0, 1000.0, 4000.0, 16000.0,
          100000.0};
}

const char* to_string(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::kPoint: return "point";
    case QueryKind::kDensity48: return "density48";
    case QueryKind::kEntropy64: return "entropy64";
    case QueryKind::kOuiRisk: return "oui";
  }
  return "unknown";
}

QueryService::QueryService(std::size_t retain_epochs)
    : retain_epochs_(std::max<std::size_t>(retain_epochs, 1)) {}

void QueryService::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) return;
  for (std::size_t i = 0; i < kQueryKinds; ++i) {
    const obs::Labels labels{{"kind", to_string(static_cast<QueryKind>(i))}};
    metric_queries_[i] = registry->counter(
        "v6_serve_queries_total", "Queries answered by the serving layer",
        labels);
    metric_latency_[i] = registry->histogram(
        "v6_serve_latency_us",
        "Wall-clock latency of counted convenience queries (microseconds; "
        "not covered by the determinism gates)",
        serve_latency_buckets_us(), labels);
  }
  metric_epochs_ = registry->counter("v6_serve_epochs_published_total",
                                     "Snapshot epochs published");
  metric_epoch_ = registry->gauge("v6_serve_epoch",
                                  "Epoch of the currently served snapshot");
  metric_records_ = registry->gauge(
      "v6_serve_snapshot_records",
      "Addresses in the currently served snapshot");
}

void QueryService::set_retain_epochs(std::size_t retain_epochs) {
  std::lock_guard<std::mutex> lock(mu_);
  retain_epochs_ = std::max<std::size_t>(retain_epochs, 1);
  if (retained_.size() > retain_epochs_) {
    retained_.erase(retained_.begin(),
                    retained_.end() - static_cast<std::ptrdiff_t>(retain_epochs_));
  }
}

std::shared_ptr<const Snapshot> QueryService::publish(
    const analysis::ScanSource& src, util::SimTime as_of) {
  const std::uint64_t epoch =
      epoch_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto snap = Snapshot::build(src, epoch, as_of);
  {
    std::lock_guard<std::mutex> lock(mu_);
    retained_.push_back(snap);
    if (retained_.size() > retain_epochs_) {
      retained_.erase(
          retained_.begin(),
          retained_.end() - static_cast<std::ptrdiff_t>(retain_epochs_));
    }
    // The swap: readers pinning current() from here on see the new epoch;
    // readers still holding the old pointer keep that epoch alive.
    current_ = snap;
  }
  metric_epochs_.inc();
  metric_epoch_.set(static_cast<double>(epoch));
  metric_records_.set(static_cast<double>(snap->records()));
  return snap;
}

std::vector<std::shared_ptr<const Snapshot>> QueryService::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_;
}

std::optional<hitlist::AddressRecord> QueryService::point(
    const net::Ipv6Address& address) const {
  const LatencyProbe probe(
      metric_latency_[static_cast<std::size_t>(QueryKind::kPoint)]);
  count_queries(QueryKind::kPoint);
  const auto snap = current();
  if (!snap) return std::nullopt;
  return snap->find(address);
}

std::uint64_t QueryService::slash48_density(
    const net::Ipv6Address& address) const {
  const LatencyProbe probe(
      metric_latency_[static_cast<std::size_t>(QueryKind::kDensity48)]);
  count_queries(QueryKind::kDensity48);
  const auto snap = current();
  if (!snap) return 0;
  return snap->slash48_density(address);
}

Slash64Summary QueryService::slash64_entropy(
    const net::Ipv6Address& address) const {
  const LatencyProbe probe(
      metric_latency_[static_cast<std::size_t>(QueryKind::kEntropy64)]);
  count_queries(QueryKind::kEntropy64);
  const auto snap = current();
  if (!snap) return {};
  if (const Slash64Summary* sum = snap->slash64(address)) return *sum;
  return {};
}

OuiRisk QueryService::oui_risk(net::Oui oui) const {
  const LatencyProbe probe(
      metric_latency_[static_cast<std::size_t>(QueryKind::kOuiRisk)]);
  count_queries(QueryKind::kOuiRisk);
  const auto snap = current();
  if (!snap) return {};
  if (const OuiRisk* risk = snap->oui_risk(oui)) return *risk;
  return {};
}

}  // namespace v6::serve
