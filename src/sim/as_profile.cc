#include "sim/as_profile.h"

namespace v6::sim {

AsProfile make_profile(AsType type, util::Rng& rng) {
  AsProfile p;
  using S = IidStrategy;

  // Client devices lean heavily on privacy extensions everywhere; the
  // EUI-64 share matches the paper's 3% corpus-wide prevalence once mixed
  // across device kinds (IoT pushes it up, phones pull it down).
  weight(p.client_strategies, S::kRandomEphemeral) = 0.65;
  weight(p.client_strategies, S::kRandomStable) = 0.12;
  weight(p.client_strategies, S::kEui64) = 0.02;
  weight(p.client_strategies, S::kDhcpSequential) = 0.02;
  weight(p.client_strategies, S::kStructuredLow) = 0.04;
  weight(p.client_strategies, S::kLow2Bytes) = 0.01;
  weight(p.client_strategies, S::kSparseEphemeral) = 0.14;

  weight(p.cpe_strategies, S::kLowByte) = 0.45;
  weight(p.cpe_strategies, S::kEui64) = 0.12;
  weight(p.cpe_strategies, S::kRandomStable) = 0.28;
  weight(p.cpe_strategies, S::kIpv4Embedded) = 0.15;

  // Cloud platforms hand VMs pseudo-random stable addresses; manually
  // numbered low-IID servers are the minority (the Hitlist's biggest AS
  // category is "Computer and Information Technology", not routers).
  weight(p.server_strategies, S::kLowByte) = 0.25;
  weight(p.server_strategies, S::kLow2Bytes) = 0.10;
  weight(p.server_strategies, S::kIpv4Embedded) = 0.12;
  weight(p.server_strategies, S::kRandomStable) = 0.50;
  weight(p.server_strategies, S::kZero) = 0.03;

  switch (type) {
    case AsType::kIspBroadband:
      // Some broadband providers rotate customer prefixes daily (§2.1),
      // some on lease-renewal timescales; most delegations are effectively
      // static (the paper's "mostly static hosts" dominate trackable
      // EUI-64 devices).
      if (rng.chance(0.06)) {
        p.rotation_period = util::kDay;
      } else if (rng.chance(0.08)) {
        p.rotation_period = util::kWeek;
      } else if (rng.chance(0.22)) {
        p.rotation_period = 60 * util::kDay;
      } else {
        p.rotation_period = 0;
      }
      p.firewall_fraction = rng.uniform(0.20, 0.45);
      p.pool_usage_fraction = rng.uniform(0.45, 0.70);
      p.aliased_site_fraction =
          rng.chance(0.04) ? rng.uniform(0.1, 0.4) : 0.0;
      break;
    case AsType::kIspMobile:
      // Cellular pools rotate fast, clients are overwhelmingly
      // privacy-addressed phones, and carriers filter inbound ICMP to
      // handsets far more often than broadband ISPs do — one driver of
      // Fig 3's "unresponsive clients skew high-entropy".
      p.rotation_period = util::kDay;
      p.firewall_fraction = rng.uniform(0.30, 0.55);
      p.pool_usage_fraction = rng.uniform(0.50, 0.75);
      p.mobile_subscriber_ratio = rng.uniform(2.0, 5.0);
      weight(p.client_strategies, S::kRandomEphemeral) = 0.82;
      weight(p.client_strategies, S::kDhcpSequential) = 0.02;
      if (rng.chance(0.25)) {
        if (rng.chance(0.75)) {
          p.cellular_fully_aliased = true;
          p.aliased_site_fraction = 1.0;
        } else {
          p.aliased_site_fraction = rng.uniform(0.1, 0.4);
        }
      }
      break;
    case AsType::kCloud:
      p.rotation_period = 0;
      p.firewall_fraction = rng.uniform(0.4, 0.7);
      p.pool_usage_fraction = rng.uniform(0.15, 0.35);
      p.alias_slash48_count = rng.chance(0.5)
                                  ? static_cast<std::uint32_t>(rng.range(1, 6))
                                  : 0;
      break;
    case AsType::kEducation:
      p.rotation_period = 0;
      p.firewall_fraction = rng.uniform(0.5, 0.8);
      p.pool_usage_fraction = rng.uniform(0.2, 0.5);
      weight(p.client_strategies, S::kDhcpSequential) = 0.25;
      weight(p.client_strategies, S::kRandomEphemeral) = 0.55;
      break;
    case AsType::kTransit:
      // Backbone: no customers, no clients; exists so active topology
      // campaigns discover ASes the passive corpus never sees.
      p.pool_usage_fraction = 0.0;
      p.firewall_fraction = 0.0;
      break;
  }
  return p;
}

}  // namespace v6::sim
