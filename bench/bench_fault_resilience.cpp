// Corpus completeness under vantage churn: how much of the seven-month
// corpus survives as vantage servers crash, flap, and slow-start, and how
// much of the damage RFC 5905 client retries plus the pool's health-aware
// steering claw back.
//
// Each row re-collects the same world under an increasingly hostile fault
// plan and reports corpus size / observations relative to the fault-free
// baseline, plus the degradation the per-vantage health stats attribute
// to the plan. A final pair of rows isolates the recovery mechanisms by
// switching retries off at the heaviest intensity.
#include <cstdio>

#include "bench_common.h"
#include "hitlist/passive_collector.h"
#include "netsim/fault_schedule.h"
#include "netsim/pool_dns.h"

namespace {

using namespace v6;

struct RowResult {
  std::uint64_t corpus = 0;
  std::uint64_t observations = 0;
  std::uint64_t polls_answered = 0;
  std::uint64_t lost_to_fault = 0;
  std::uint64_t retries = 0;
  std::uint64_t steered = 0;
};

RowResult run_once(const sim::World& world, double outages_per_vantage,
                   std::uint32_t retry_limit) {
  netsim::DataPlane plane(world, {0.01, 1});
  netsim::PoolDns dns(world, 0.25, 0.03);

  netsim::FaultPlanConfig plan;
  plan.seed = 17;
  plan.outages_per_vantage = outages_per_vantage;
  plan.flaps_per_vantage = 2 * outages_per_vantage;
  netsim::FaultSchedule faults(world.vantages(), plan, 0,
                               world.config().study_duration);
  if (plan.active()) {
    plane.set_faults(&faults);
    dns.set_health_monitor(&faults, 15 * util::kMinute);
  }

  hitlist::CollectorConfig config;
  config.loss_rate = 0.01;
  config.retry_limit = retry_limit;
  hitlist::PassiveCollector collector(world, plane, dns, config);
  hitlist::Corpus corpus(1 << 16);
  collector.run(corpus, 0, world.config().study_duration);

  RowResult row;
  row.corpus = corpus.size();
  row.observations = corpus.total_observations();
  row.polls_answered = collector.polls_answered();
  for (const auto& vh : collector.vantage_health()) {
    row.lost_to_fault += vh.lost_to_fault;
    row.retries += vh.retries;
    row.steered += vh.steered_polls;
  }
  return row;
}

std::string one_decimal(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string relative(std::uint64_t value, std::uint64_t baseline) {
  if (baseline == 0) return "n/a";
  return util::percent(static_cast<double>(value) /
                       static_cast<double>(baseline));
}

}  // namespace

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  // The intensity grid re-collects several times; use a smaller world.
  config.world.total_sites =
      std::min<std::uint32_t>(config.world.total_sites, 6000);
  config.world.study_duration = std::min<util::SimDuration>(
      config.world.study_duration, 120 * util::kDay);
  bench::print_banner("Fault resilience: corpus completeness vs vantage churn",
                      config);

  const auto world = sim::World::generate(config.world);

  util::TablePrinter table({"fault plan", "unique addresses", "observations",
                            "vs fault-free", "lost to faults", "retries",
                            "steered polls"});
  RowResult baseline;
  bench::timed("fault-free baseline (retries=2)", [&] {
    baseline = run_once(world, 0.0, 2);
  });
  table.add_row({"none", util::with_commas(baseline.corpus),
                 util::with_commas(baseline.observations), "100.0%", "0", "0",
                 "0"});

  for (const double intensity : {0.5, 2.0, 6.0}) {
    RowResult row;
    bench::timed("outages/vantage = " + one_decimal(intensity),
                 [&] { row = run_once(world, intensity, 2); });
    table.add_row({"outages/vantage = " + one_decimal(intensity),
                   util::with_commas(row.corpus),
                   util::with_commas(row.observations),
                   relative(row.observations, baseline.observations),
                   util::with_commas(row.lost_to_fault),
                   util::with_commas(row.retries),
                   util::with_commas(row.steered)});
  }

  RowResult no_retry;
  bench::timed("heaviest plan, retries disabled", [&] {
    no_retry = run_once(world, 6.0, 0);
  });
  table.add_row({"outages/vantage = 6.0, no retries",
                 util::with_commas(no_retry.corpus),
                 util::with_commas(no_retry.observations),
                 relative(no_retry.observations, baseline.observations),
                 util::with_commas(no_retry.lost_to_fault), "0",
                 util::with_commas(no_retry.steered)});
  table.print(std::cout);

  std::printf(
      "\nreading guide: even at several multi-hour outages per vantage the\n"
      "corpus keeps most of its observations — client retries re-ask through\n"
      "the crash tail and health-aware steering moves polls to surviving\n"
      "servers once the pool monitor notices. Dropping retries at the same\n"
      "intensity shows the recovery they were responsible for.\n");
  return 0;
}
