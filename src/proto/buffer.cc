#include "proto/buffer.h"

#include <algorithm>
#include <stdexcept>

namespace v6::proto {

void BufferWriter::u8(std::uint8_t v) { data_.push_back(v); }

void BufferWriter::u16(std::uint16_t v) {
  data_.push_back(static_cast<std::uint8_t>(v >> 8));
  data_.push_back(static_cast<std::uint8_t>(v));
}

void BufferWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void BufferWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void BufferWriter::bytes(std::span<const std::uint8_t> data) {
  data_.insert(data_.end(), data.begin(), data.end());
}

void BufferWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > data_.size()) {
    throw std::out_of_range("patch_u16 outside buffer");
  }
  data_[offset] = static_cast<std::uint8_t>(v >> 8);
  data_[offset + 1] = static_cast<std::uint8_t>(v);
}

bool BufferReader::ensure(std::size_t n) noexcept {
  if (data_.size() - pos_ < n) {
    truncated_ = true;
    pos_ = data_.size();
    return false;
  }
  return true;
}

std::uint8_t BufferReader::u8() noexcept {
  if (!ensure(1)) return 0;
  return data_[pos_++];
}

std::uint16_t BufferReader::u16() noexcept {
  if (!ensure(2)) return 0;
  const auto hi = data_[pos_], lo = data_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

std::uint32_t BufferReader::u32() noexcept {
  // Whole-value semantics: a short buffer yields 0, never a partial read.
  if (!ensure(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

std::uint64_t BufferReader::u64() noexcept {
  if (!ensure(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

void BufferReader::bytes(std::span<std::uint8_t> out) noexcept {
  if (!ensure(out.size())) {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    return;
  }
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), out.size(),
              out.begin());
  pos_ += out.size();
}

void BufferReader::skip(std::size_t n) noexcept {
  if (ensure(n)) pos_ += n;
}

}  // namespace v6::proto
