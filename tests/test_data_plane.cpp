#include "netsim/data_plane.h"

#include <gtest/gtest.h>

#include "proto/udp.h"
#include "util/rng.h"

namespace v6::netsim {
namespace {

class DataPlaneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 21;
    config.total_sites = 500;
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }

  static DataPlane lossless() { return DataPlane(*world_, {0.0, 1}); }

  static sim::World* world_;
};

sim::World* DataPlaneTest::world_ = nullptr;

// A reachable (non-firewalled, echo-answering) device, or kNoDevice.
sim::DeviceId find_reachable(const sim::World& w, util::SimTime t) {
  for (const auto& dev : w.devices()) {
    if (dev.kind != sim::DeviceKind::kCpe || !dev.responds_icmp) continue;
    const auto res = w.resolve(w.device_address(dev.id, t), t);
    if (res.kind == sim::World::Resolution::Kind::kDevice &&
        !res.firewalled) {
      return dev.id;
    }
  }
  return sim::kNoDevice;
}

sim::DeviceId find_firewalled(const sim::World& w, util::SimTime /*t*/) {
  for (const auto& dev : w.devices()) {
    if (dev.site == sim::kNoSite || dev.kind == sim::DeviceKind::kCpe) {
      continue;
    }
    if (!w.sites()[dev.site].firewalled || w.sites()[dev.site].aliased) {
      continue;
    }
    return dev.id;
  }
  return sim::kNoDevice;
}

TEST_F(DataPlaneTest, EchoToLiveDeviceGetsReply) {
  auto plane = lossless();
  const util::SimTime t = 1000;
  const auto d = find_reachable(*world_, t);
  ASSERT_NE(d, sim::kNoDevice);
  const auto target = world_->device_address(d, t);
  const auto result =
      plane.echo(world_->vantages().front().address, target, 7, 9, t);
  EXPECT_EQ(result.kind, ProbeResult::Kind::kEchoReply);
  EXPECT_EQ(result.responder, target);
  EXPECT_EQ(result.sequence, 9);
}

TEST_F(DataPlaneTest, EchoToFirewalledDeviceTimesOut) {
  auto plane = lossless();
  const util::SimTime t = 1000;
  const auto d = find_firewalled(*world_, t);
  ASSERT_NE(d, sim::kNoDevice);
  const auto target = world_->device_address(d, t);
  const auto result =
      plane.echo(world_->vantages().front().address, target, 7, 9, t);
  EXPECT_EQ(result.kind, ProbeResult::Kind::kTimeout);
}

TEST_F(DataPlaneTest, EchoToNowhereTimesOut) {
  auto plane = lossless();
  const auto result =
      plane.echo(world_->vantages().front().address,
                 *net::Ipv6Address::parse("2001:db8::dead"), 1, 1, 50);
  EXPECT_EQ(result.kind, ProbeResult::Kind::kTimeout);
}

TEST_F(DataPlaneTest, HopLimitedProbeElicitsTimeExceeded) {
  auto plane = lossless();
  const util::SimTime t = 1000;
  const auto d = find_reachable(*world_, t);
  ASSERT_NE(d, sim::kNoDevice);
  const auto src = world_->vantages().front().address;
  const auto dst = world_->device_address(d, t);
  const auto path = plane.topology().path(src, dst, t);
  ASSERT_FALSE(path.empty());
  const auto result = plane.hop_limited_echo(src, dst, 1, 3, 1, t);
  ASSERT_EQ(result.kind, ProbeResult::Kind::kTimeExceeded);
  EXPECT_EQ(result.responder, path.front().address);
}

TEST_F(DataPlaneTest, HopLimitBeyondPathReachesDestination) {
  auto plane = lossless();
  const util::SimTime t = 1000;
  const auto d = find_reachable(*world_, t);
  const auto src = world_->vantages().front().address;
  const auto dst = world_->device_address(d, t);
  const auto path = plane.topology().path(src, dst, t);
  const auto result = plane.hop_limited_echo(
      src, dst, static_cast<std::uint8_t>(path.size() + 1), 3, 1, t);
  EXPECT_EQ(result.kind, ProbeResult::Kind::kEchoReply);
}

TEST_F(DataPlaneTest, FullLossDropsEverything) {
  DataPlane plane(*world_, {1.0, 1});
  const util::SimTime t = 1000;
  const auto d = find_reachable(*world_, t);
  const auto result = plane.echo(world_->vantages().front().address,
                                 world_->device_address(d, t), 1, 1, t);
  EXPECT_EQ(result.kind, ProbeResult::Kind::kTimeout);
  EXPECT_GT(plane.drops(), 0u);
}

TEST_F(DataPlaneTest, LossRateIsRoughlyHonored) {
  DataPlane plane(*world_, {0.2, 2});
  const util::SimTime t = 1000;
  const auto d = find_reachable(*world_, t);
  const auto target = world_->device_address(d, t);
  const auto src = world_->vantages().front().address;
  int replies = 0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    if (plane.echo(src, target, 1, static_cast<std::uint16_t>(i), t).kind ==
        ProbeResult::Kind::kEchoReply) {
      ++replies;
    }
  }
  // Two loss opportunities per exchange: P(reply) = 0.8^2 = 0.64.
  EXPECT_NEAR(static_cast<double>(replies) / kProbes, 0.64, 0.05);
}

TEST_F(DataPlaneTest, UdpServiceRoundTrip) {
  auto plane = lossless();
  const auto server = world_->vantages().front().address;
  plane.bind_udp(server, proto::kNtpPort,
                 [](const net::Ipv6Address&, std::uint16_t,
                    const std::vector<std::uint8_t>& payload, util::SimTime)
                     -> std::optional<std::vector<std::uint8_t>> {
                   auto echo = payload;
                   echo.push_back(0x99);
                   return echo;
                 });
  const auto client = world_->device_address(0, 0);
  const auto response = plane.send_udp(client, 40000, server,
                                       proto::kNtpPort, {1, 2, 3}, 0);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->size(), 4u);
  EXPECT_EQ(response->back(), 0x99);
}

TEST_F(DataPlaneTest, UdpToUnboundPortIsSilent) {
  auto plane = lossless();
  const auto client = world_->device_address(0, 0);
  EXPECT_FALSE(plane.send_udp(client, 40000,
                              world_->vantages().front().address, 9999,
                              {1}, 0));
}

TEST_F(DataPlaneTest, UdpServiceMayDecline) {
  auto plane = lossless();
  const auto server = world_->vantages().front().address;
  plane.bind_udp(server, proto::kNtpPort,
                 [](const net::Ipv6Address&, std::uint16_t,
                    const std::vector<std::uint8_t>&, util::SimTime)
                     -> std::optional<std::vector<std::uint8_t>> {
                   return std::nullopt;
                 });
  EXPECT_FALSE(plane.send_udp(world_->device_address(0, 0), 40000, server,
                              proto::kNtpPort, {1}, 0));
}

TEST_F(DataPlaneTest, RouterIcmpRateLimiting) {
  const util::SimTime t = 1000;
  const auto d = find_reachable(*world_, t);
  const auto src = world_->vantages().front().address;
  const auto dst = world_->device_address(d, t);

  netsim::DataPlaneConfig limited{0.0, 1, 5};  // 5 errors/router/second
  DataPlane plane(*world_, limited);
  int exceeded = 0;
  for (int i = 0; i < 40; ++i) {
    if (plane.hop_limited_echo(src, dst, 1, 1,
                               static_cast<std::uint16_t>(i), t)
            .kind == ProbeResult::Kind::kTimeExceeded) {
      ++exceeded;
    }
  }
  EXPECT_EQ(exceeded, 5);
  EXPECT_EQ(plane.rate_limited(), 35u);

  // The budget resets the next second...
  EXPECT_EQ(plane.hop_limited_echo(src, dst, 1, 1, 99, t + 1).kind,
            ProbeResult::Kind::kTimeExceeded);
  // ...and destination replies are never policed.
  EXPECT_EQ(plane.echo(src, dst, 1, 7, t + 1).kind,
            ProbeResult::Kind::kEchoReply);
}

TEST_F(DataPlaneTest, RateLimitDisabledByDefault) {
  auto plane = lossless();
  const util::SimTime t = 2000;
  const auto d = find_reachable(*world_, t);
  const auto src = world_->vantages().front().address;
  const auto dst = world_->device_address(d, t);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(plane
                  .hop_limited_echo(src, dst, 1, 1,
                                    static_cast<std::uint16_t>(i), t)
                  .kind,
              ProbeResult::Kind::kTimeExceeded);
  }
  EXPECT_EQ(plane.rate_limited(), 0u);
}

TEST_F(DataPlaneTest, IcmpBudgetSurvivesBackwardProbeTimes) {
  // Interleaved backscan intervals revisit earlier seconds: a probe at
  // t+1 followed by more probes at t must still honor the budget already
  // charged at t. The old clear-on-any-time-change reset wiped it.
  const util::SimTime t = 1000;
  const auto d = find_reachable(*world_, t);
  const auto src = world_->vantages().front().address;
  const auto dst = world_->device_address(d, t);

  netsim::DataPlaneConfig limited{0.0, 1, 5};  // 5 errors/router/second
  DataPlane plane(*world_, limited);
  // Exhaust second t...
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(plane.hop_limited_echo(src, dst, 1, 1,
                                     static_cast<std::uint16_t>(i), t)
                  .kind,
              ProbeResult::Kind::kTimeExceeded);
  }
  // ...advance the clock...
  EXPECT_EQ(plane.hop_limited_echo(src, dst, 1, 1, 50, t + 1).kind,
            ProbeResult::Kind::kTimeExceeded);
  // ...then revisit second t: its budget is spent, every probe is policed.
  const auto limited_before = plane.rate_limited();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(plane.hop_limited_echo(src, dst, 1, 1,
                                     static_cast<std::uint16_t>(60 + i), t)
                  .kind,
              ProbeResult::Kind::kTimeout);
  }
  EXPECT_EQ(plane.rate_limited(), limited_before + 10);
  // Second t+1 still has 4 of its 5 left.
  int exceeded = 0;
  for (int i = 0; i < 10; ++i) {
    if (plane.hop_limited_echo(src, dst, 1, 1,
                               static_cast<std::uint16_t>(80 + i), t + 1)
            .kind == ProbeResult::Kind::kTimeExceeded) {
      ++exceeded;
    }
  }
  EXPECT_EQ(exceeded, 4);
}

TEST_F(DataPlaneTest, FaultScheduleSwallowsUdpToCrashedVantage) {
  auto plane = lossless();
  const auto& vantage = world_->vantages().front();
  plane.bind_udp(vantage.address, proto::kNtpPort,
                 [](const net::Ipv6Address&, std::uint16_t,
                    const std::vector<std::uint8_t>&, util::SimTime)
                     -> std::optional<std::vector<std::uint8_t>> {
                   return std::vector<std::uint8_t>{42};
                 });
  FaultSchedule faults(world_->vantages());
  faults.add_window(vantage.id, 1000, 2000);
  plane.set_faults(&faults);

  const auto client = world_->device_address(0, 0);
  EXPECT_TRUE(plane.send_udp(client, 40000, vantage.address, proto::kNtpPort,
                             {1}, 500));
  EXPECT_FALSE(plane.send_udp(client, 40000, vantage.address, proto::kNtpPort,
                              {1}, 1500));
  EXPECT_EQ(plane.fault_drops(), 1u);
  EXPECT_TRUE(plane.send_udp(client, 40000, vantage.address, proto::kNtpPort,
                             {1}, 3000));
  // Other destinations are never faulted.
  plane.set_faults(nullptr);
  EXPECT_TRUE(plane.send_udp(client, 40000, vantage.address, proto::kNtpPort,
                             {1}, 1500));
}

TEST_F(DataPlaneTest, AliasRegionsAnswerEcho) {
  auto plane = lossless();
  const auto prefixes = world_->aliased_datacenter_prefixes();
  ASSERT_FALSE(prefixes.empty());
  util::Rng rng(3);
  const auto target = net::Ipv6Address::from_u64(
      prefixes[0].address().hi64() | 7, rng.next());
  const auto result =
      plane.echo(world_->vantages().front().address, target, 1, 1, 1000);
  EXPECT_EQ(result.kind, ProbeResult::Kind::kEchoReply);
}

}  // namespace
}  // namespace v6::netsim
