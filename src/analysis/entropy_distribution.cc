#include "analysis/entropy_distribution.h"

#include <algorithm>

#include "kernels/batch.h"
#include "net/entropy.h"

namespace v6::analysis {

namespace {

using Samples = std::vector<double>;

// Shard concatenation in ascending shard order reproduces the serial
// visit sequence, so the sample vector — and the distribution built from
// it — is bit-identical at any thread count.
void append_samples(Samples& into, Samples&& from) {
  into.insert(into.end(), from.begin(), from.end());
}

// Records hashed per batch-kernel call (bounds the IID staging buffer).
constexpr std::size_t kChunk = 1024;

// Appends one entropy sample per record of `block`, via the batch kernel
// writing straight into the sample vector (bit-identical to per-record
// net::iid_entropy under either kernel backend).
void append_block_entropies(Samples& s,
                            std::span<const hitlist::AddressRecord> block) {
  const std::size_t old = s.size();
  s.resize(old + block.size());
  std::uint64_t iids[kChunk];
  for (std::size_t base = 0; base < block.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, block.size() - base);
    kernels::extract_iid_batch(
        reinterpret_cast<const std::uint8_t*>(block.data() + base),
        sizeof(hitlist::AddressRecord), n, iids);
    kernels::iid_entropy_batch(iids, n, s.data() + old + base);
  }
}

}  // namespace

util::EmpiricalDistribution entropy_distribution(
    const ScanSource& source, const AnalysisConfig& config,
    std::vector<AnalysisStageStats>* stats) {
  auto samples = scan_corpus_blocks<Samples>(
      source, config, "entropy_distribution", [] { return Samples(); },
      append_block_entropies, append_samples, stats);
  return util::EmpiricalDistribution(std::move(samples));
}

util::EmpiricalDistribution entropy_distribution(
    const hitlist::Corpus& c, const AnalysisConfig& config,
    std::vector<AnalysisStageStats>* stats) {
  return entropy_distribution(make_source(c), config, stats);
}

util::EmpiricalDistribution entropy_distribution(
    std::span<const net::Ipv6Address> addresses) {
  static_assert(sizeof(net::Ipv6Address) == 16);
  std::vector<double> samples(addresses.size());
  std::uint64_t iids[kChunk];
  for (std::size_t base = 0; base < addresses.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, addresses.size() - base);
    kernels::extract_iid_batch(
        reinterpret_cast<const std::uint8_t*>(addresses.data() + base),
        sizeof(net::Ipv6Address), n, iids);
    kernels::iid_entropy_batch(iids, n, samples.data() + base);
  }
  return util::EmpiricalDistribution(std::move(samples));
}

util::EmpiricalDistribution intersection_entropy_distribution(
    const hitlist::Corpus& a, const hitlist::Corpus& b,
    const AnalysisConfig& config, std::vector<AnalysisStageStats>* stats) {
  const hitlist::Corpus& small = a.size() <= b.size() ? a : b;
  const hitlist::Corpus& large = a.size() <= b.size() ? b : a;
  auto samples = scan_corpus<Samples>(
      small, config, "intersection_entropy_distribution",
      [] { return Samples(); },
      [&large](Samples& s, const hitlist::AddressRecord& rec) {
        if (large.find(rec.address) != nullptr) {
          s.push_back(net::iid_entropy(rec.address));
        }
      },
      append_samples, stats);
  return util::EmpiricalDistribution(std::move(samples));
}

std::uint64_t intersection_size(const hitlist::Corpus& a,
                                const hitlist::Corpus& b,
                                const AnalysisConfig& config,
                                std::vector<AnalysisStageStats>* stats) {
  const hitlist::Corpus& small = a.size() <= b.size() ? a : b;
  const hitlist::Corpus& large = a.size() <= b.size() ? b : a;
  return scan_corpus<std::uint64_t>(
      small, config, "intersection_size", [] { return std::uint64_t{0}; },
      [&large](std::uint64_t& n, const hitlist::AddressRecord& rec) {
        if (large.find(rec.address) != nullptr) ++n;
      },
      [](std::uint64_t& into, std::uint64_t&& from) { into += from; }, stats);
}

}  // namespace v6::analysis
