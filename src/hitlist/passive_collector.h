// The passive collection pipeline: every pool-using device's NTP polls,
// steered to vantage servers by the pool DNS, logged into a Corpus.
//
// Two execution paths produce identical corpora (a test asserts it):
//   * wire-fidelity — each poll runs the full stack: RFC 5905 client
//     request -> UDP with pseudo-header checksum -> data-plane delivery
//     (loss applies) -> server decode/validate/respond -> client validates
//     the response (mode, origin echo). This is the honest path.
//   * fast — skips serialization but keeps the identical control flow
//     (same DNS steering, same loss decisions, same server-side record
//     call), which makes the 10M+-poll benches tractable.
//
// Collection shards across threads: devices are partitioned into
// contiguous ranges, each shard runs the per-device loop into its own
// Corpus, and the shards reduce through Corpus::merge(). Because every
// device's observation stream derives only from its own seeded RNG, the
// merged corpus is bit-identical (size, total_observations, every record
// field) to the threads=1 run — a property the tests assert.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "hitlist/corpus.h"
#include "netsim/data_plane.h"
#include "netsim/pool_dns.h"
#include "ntp/server.h"
#include "sim/world.h"

namespace v6::hitlist {

struct CollectorConfig {
  bool wire_fidelity = false;
  // Loss applied on the fast path (the wire path inherits the data
  // plane's own loss); keep the two equal so the paths agree.
  double loss_rate = 0.01;
  std::uint64_t seed = 3;
  // Ablation switch: treat every client as a single-packet (non-iburst)
  // poller.
  bool ignore_bursts = false;
  // Collection shards. 0 = one per hardware thread; 1 = the exact legacy
  // single-threaded path. The wire_fidelity path always runs serially
  // regardless of this knob: every poll mutates the shared DataPlane.
  unsigned threads = 0;
};

// Called for every accepted observation, after it is added to the corpus.
// `vantage_address` is the server the client spoke to (backscanning probes
// from there).
//
// Concurrency contract: with more than one collection shard, hook
// invocations are serialized (a shard-global mutex), so the hook body
// needs no locking of its own — but the *order* in which observations
// from different shards arrive is unspecified. Hooks whose results depend
// on arrival order (e.g. one feeding a stateful scanner) must run with
// `threads = 1`; order-independent aggregation (corpora, per-day
// counters) is safe at any shard count.
using ObservationHook = std::function<void(
    const ntp::Observation&, const net::Ipv6Address& vantage_address)>;

class PassiveCollector {
 public:
  PassiveCollector(const sim::World& world, netsim::DataPlane& plane,
                   const netsim::PoolDns& dns, const CollectorConfig& config);

  // Runs collection over [start, end); fills `corpus`.
  void run(Corpus& corpus, util::SimTime start, util::SimTime end,
           const ObservationHook& hook = {});

  std::uint64_t polls_attempted() const noexcept { return polls_; }
  std::uint64_t polls_answered() const noexcept { return answered_; }

 private:
  // Per-shard poll counters, kept thread-local during collection and
  // summed into the collector's totals once the shards join.
  struct ShardTally {
    std::uint64_t polls = 0;
    std::uint64_t answered = 0;
  };

  // The per-device collection loop over devices [first, last), sinking
  // into `corpus`. `hook_mu`, when non-null, serializes hook delivery
  // across shards.
  void collect_shard(Corpus& corpus, std::size_t first, std::size_t last,
                     util::SimTime start, util::SimTime end,
                     const ObservationHook& hook, std::mutex* hook_mu,
                     ShardTally& tally) const;

  const sim::World* world_;
  netsim::DataPlane* plane_;
  const netsim::PoolDns* dns_;
  CollectorConfig config_;
  std::uint64_t polls_ = 0;
  std::uint64_t answered_ = 0;
};

}  // namespace v6::hitlist
