// ThreadSanitizer job for the concurrency primitives behind sharded
// collection and parallel analysis. Built with -fsanitize=thread
// regardless of the main build's flags (see tests/CMakeLists.txt) and
// registered as an ordinary CTest test, so every `ctest` run races-checks
// the ThreadPool, the collector's shard/merge/serialized-hook pattern,
// EmpiricalDistribution's guarded lazy sort under concurrent const
// readers, the ParallelScan shard/deterministic-merge engine, the
// striped obs::Registry under racing writers and live snapshots, and the
// batch-kernel dispatch cache's cold-start stampede. Any data race makes
// TSan abort the process with a non-zero exit.
//
// The full library suite can additionally be built instrumented with
// `cmake -DV6_SANITIZER=thread` (see the top-level CMakeLists.txt); this
// binary is the fast always-on subset.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <atomic>

#include "analysis/parallel_scan.h"
#include "hitlist/corpus.h"
#include "kernels/batch.h"
#include "kernels/dispatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

// Stress submit/wait_idle reuse from many producers' worth of tasks.
void pool_stress() {
  v6::util::ThreadPool pool(8);
  std::mutex mu;
  std::uint64_t total = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 500; ++i) {
      pool.submit([&mu, &total] {
        std::lock_guard<std::mutex> lock(mu);
        ++total;
      });
    }
    pool.wait_idle();
  }
  check(total == 20 * 500, "pool_stress total");
}

// The collector's sharding shape: per-shard local state, a
// mutex-serialized hook into shared state, and a post-join reduce.
void sharded_collect_pattern() {
  constexpr std::size_t kItems = 200000;
  constexpr unsigned kShards = 8;
  std::vector<std::uint64_t> shard_sums(kShards, 0);
  std::vector<std::uint64_t> shard_counts(kShards, 0);
  std::mutex hook_mu;
  std::uint64_t hooked = 0;
  v6::util::run_sharded(
      kItems, kShards, [&](unsigned s, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          shard_sums[s] += i;       // thread-local tally, summed after join
          ++shard_counts[s];
          if (i % 1024 == 0) {      // sparse serialized hook delivery
            std::lock_guard<std::mutex> lock(hook_mu);
            ++hooked;
          }
        }
      });
  const auto total_sum = std::accumulate(
      shard_sums.begin(), shard_sums.end(), std::uint64_t{0});
  const auto total_count = std::accumulate(
      shard_counts.begin(), shard_counts.end(), std::uint64_t{0});
  check(total_sum == std::uint64_t{kItems} * (kItems - 1) / 2,
        "sharded sum");
  check(total_count == kItems, "sharded count");
  check(hooked == (kItems + 1023) / 1024, "hook deliveries");
}

// Regression for the EmpiricalDistribution lazy-sort data race: the old
// ensure_sorted() mutated `mutable` members unguarded under const, so two
// threads calling cdf() on one shared distribution raced on samples_.
// The guarded sort must let concurrent const readers run clean.
void concurrent_distribution_readers() {
  v6::util::EmpiricalDistribution dist;
  for (int i = 5000; i > 0; --i) dist.add(static_cast<double>(i));

  constexpr unsigned kReaders = 8;
  std::vector<std::thread> readers;
  std::vector<double> medians(kReaders, 0.0);
  std::vector<double> cdfs(kReaders, 0.0);
  readers.reserve(kReaders);
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&dist, &medians, &cdfs, r] {
      cdfs[r] = dist.cdf(2500.0);     // both paths trigger the lazy sort
      medians[r] = dist.median();
    });
  }
  for (auto& t : readers) t.join();
  for (unsigned r = 0; r < kReaders; ++r) {
    check(cdfs[r] == 0.5, "concurrent cdf value");
    check(medians[r] == 2500.0, "concurrent median value");
  }
}

// The parallel analysis engine's shard/merge shape: shard-local kernel
// states over corpus slot ranges, folded in shard-index order, with a
// shared read-only distribution queried from every shard (the pattern
// intersection scans and category pass 2 use).
void parallel_scan_analysis() {
  v6::hitlist::Corpus corpus(1 << 12);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    corpus.add(v6::net::Ipv6Address::from_u64(0x2001'0db8'0000'0000ULL | i,
                                              i * 0x9e3779b97f4a7c15ULL),
               static_cast<v6::util::SimTime>(i % 1000));
  }
  v6::util::EmpiricalDistribution shared;
  for (int i = 0; i < 1000; ++i) shared.add(static_cast<double>(999 - i));

  v6::analysis::AnalysisConfig config;
  config.threads = 8;
  v6::analysis::ParallelScan scan(config);
  std::uint64_t counted = 0;
  std::uint64_t above_median = 0;
  scan.add_kernel<std::uint64_t>(
      "count", [] { return std::uint64_t{0}; },
      [](std::uint64_t& n, const v6::hitlist::AddressRecord&) { ++n; },
      [](std::uint64_t& into, std::uint64_t&& from) { into += from; },
      [&counted](std::uint64_t&& n) { counted = n; });
  scan.add_kernel<std::uint64_t>(
      "shared-reader", [] { return std::uint64_t{0}; },
      [&shared](std::uint64_t& n, const v6::hitlist::AddressRecord& rec) {
        // Concurrent const queries against one shared distribution.
        if (shared.cdf(static_cast<double>(rec.last_seen)) > 0.5) ++n;
      },
      [](std::uint64_t& into, std::uint64_t&& from) { into += from; },
      [&above_median](std::uint64_t&& n) { above_median = n; });
  scan.run(corpus);

  check(counted == corpus.size(), "parallel scan record count");
  check(above_median > 0 && above_median < corpus.size(),
        "parallel scan shared-reader tally");
  check(scan.stats().size() == 2, "parallel scan stats entries");
  check(scan.stats()[0].records == corpus.size(),
        "parallel scan stats records");
}

// The metrics registry's claim (obs/metrics.h): striped relaxed increments
// from every worker, racing registrations of the same identity, and
// snapshot() folding the stripes while writers are still running must all
// be clean under TSan — and the post-join fold must be exact.
void metrics_registry_race() {
  v6::obs::Registry registry;
  constexpr unsigned kWriters = 8;
  constexpr std::uint64_t kIters = 30000;

  std::atomic<bool> stop{false};
  std::thread reader([&registry, &stop] {
    std::uint64_t folds = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = registry.snapshot();
      check(snap.counter_sum("race_total") <= kWriters * kIters,
            "live snapshot overshoot");
      ++folds;
    }
    check(folds > 0, "reader folded at least once");
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry] {
      // Registration under race: every writer opens the same instruments.
      auto counter = registry.counter("race_total");
      auto gauge = registry.gauge("race_gauge");
      auto histogram = registry.histogram("race_us", "", {10.0, 1000.0});
      for (std::uint64_t i = 0; i < kIters; ++i) {
        counter.inc();
        if ((i & 255u) == 0) {
          gauge.set(static_cast<double>(i));
          histogram.observe(static_cast<double>(i & 2047u));
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const auto snap = registry.snapshot();
  check(snap.counter_sum("race_total") == kWriters * kIters,
        "registry post-join fold");
  const auto* histogram = snap.find("race_us");
  check(histogram != nullptr &&
            histogram->histogram.count ==
                kWriters * ((kIters + 255) / 256),
        "registry histogram count");
}

// The tracer's claim (obs/trace.h): begin/end from racing threads — with
// spans() snapshots taken while writers are live — must be clean under
// TSan, and the auto-close sweep has to leave every span closed with a
// parent that points at an earlier begin.
void tracer_race() {
  v6::obs::Tracer tracer;
  constexpr unsigned kThreads = 8;
  constexpr int kSpansPerThread = 500;

  std::atomic<bool> stop{false};
  std::thread reader([&tracer, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)tracer.spans();  // live snapshot racing begin/end
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned w = 0; w < kThreads; ++w) {
    workers.emplace_back([&tracer, w] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const auto t = static_cast<v6::util::SimTime>(w * kSpansPerThread + i);
        const auto id = tracer.begin_span("race", t);
        if ((i & 7) != 0) tracer.end_span(id, t + 1);
        // Every 8th span is left open: a racing end_span() on an outer
        // span auto-closes it, exercising the sweep under contention.
      }
    });
  }
  for (auto& t : workers) t.join();
  // Close everything still open via the earliest recorded span.
  tracer.end_span(0, kThreads * kSpansPerThread + 1);
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const auto spans = tracer.spans();
  check(spans.size() == std::size_t{kThreads} * kSpansPerThread,
        "tracer span count");
  for (std::size_t i = 0; i < spans.size(); ++i) {
    check(spans[i].closed, "tracer span closed");
    check(spans[i].parent < static_cast<std::int32_t>(i),
          "tracer parent precedes child");
  }
}

// The kernel dispatch cache's claim (kernels/dispatch.h): first-touch
// resolution from many threads at once is a benign same-value race on an
// atomic — every thread must land on the same backend, and batch kernels
// called during the stampede must produce the per-record reference
// values. force_backend() clears the cache, so each round re-runs the
// cold-start path under contention.
void kernel_dispatch_race() {
  constexpr unsigned kThreads = 8;
  constexpr std::size_t kIids = 256;
  std::uint64_t iids[kIids];
  for (std::size_t i = 0; i < kIids; ++i) {
    iids[i] = 0x9e3779b97f4a7c15ULL * (i + 1);
  }
  for (int round = 0; round < 8; ++round) {
    // Alternate between a pinned-scalar round and an auto round; both
    // start with a cold cache.
    v6::kernels::force_backend(
        (round & 1) ? std::optional<v6::kernels::Backend>(
                          v6::kernels::Backend::kScalar)
                    : std::nullopt);
    std::vector<v6::kernels::Backend> seen(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned w = 0; w < kThreads; ++w) {
      threads.emplace_back([&seen, &iids, w] {
        seen[w] = v6::kernels::active_backend();
        double entropies[kIids];
        v6::kernels::iid_entropy_batch(iids, kIids, entropies);
        for (std::size_t i = 0; i < kIids; ++i) {
          check(entropies[i] >= 0.0 && entropies[i] <= 1.0,
                "dispatch-race entropy range");
        }
      });
    }
    for (auto& t : threads) t.join();
    for (unsigned w = 1; w < kThreads; ++w) {
      check(seen[w] == seen[0], "dispatch-race backend agreement");
    }
    if (round & 1) {
      check(seen[0] == v6::kernels::Backend::kScalar,
            "dispatch-race forced scalar honored");
    }
  }
  v6::kernels::force_backend(std::nullopt);
}

}  // namespace

int main() {
  pool_stress();
  sharded_collect_pattern();
  concurrent_distribution_readers();
  parallel_scan_analysis();
  metrics_registry_race();
  tracer_race();
  kernel_dispatch_race();
  std::printf("tsan concurrency checks passed\n");
  return 0;
}
