// Backscanning and aliased-network discovery (§4.2 as a program).
//
// Runs the passive study plus the active Hitlist campaign, then probes NTP
// clients back the way the paper did: the client address and one random
// address in the same /64, batched per ten-minute interval. Random-target
// hits expose aliased /64s — including client networks active measurement
// could never tell apart from aliases.
#include <cstdio>
#include <utility>

#include "core/study.h"
#include "net/entropy.h"
#include "util/stats.h"
#include "util/strings.h"

int main() {
  using namespace v6;

  core::StudyConfig config;
  config.world.seed = 11;
  config.world.total_sites = 3000;
  config.world.study_duration = 60 * util::kDay;
  config.backscan_start = 70 * util::kDay;
  config.hitlist_campaign.duration = 5 * util::kWeek;
  config.caida_campaign.duration = 20 * util::kDay;

  core::Study study(config);
  core::RunOptions options;
  options.analysis = false;  // this demo needs stages 1-3 only
  const auto& r = study.run(std::move(options));
  const auto& scan = r.backscan;

  std::printf("== backscan week ==\n");
  std::printf("clients probed     : %s\n",
              util::with_commas(scan.clients_probed).c_str());
  std::printf("clients responded  : %s (%.1f%%)\n",
              util::with_commas(scan.clients_responded).c_str(),
              100.0 * static_cast<double>(scan.clients_responded) /
                  static_cast<double>(
                      std::max<std::uint64_t>(1, scan.clients_probed)));
  std::printf("random targets hit : %s of %s\n",
              util::with_commas(scan.responsive_random_addresses).c_str(),
              util::with_commas(scan.random_probed).c_str());
  std::printf("aliased /64s found : %zu\n", scan.aliased_slash64s.size());
  std::printf("trace-discovered infrastructure: %zu interfaces\n",
              scan.trace_discovered.size());

  std::printf("\n== cross-check vs the IPv6 Hitlist's aliased list ==\n");
  const auto& check = r.alias_check;
  std::printf("known to the Hitlist : %s\n",
              util::with_commas(check.aliased_known_to_hitlist).c_str());
  std::printf("new discoveries      : %s\n",
              util::with_commas(check.aliased_new).c_str());
  std::printf("NTP clients inside aliased /64s   : %s\n",
              util::with_commas(check.ntp_clients_in_aliased).c_str());
  std::printf("Hitlist addresses in those /64s   : %s\n",
              util::with_commas(check.hitlist_addresses_in_aliased).c_str());
  std::printf("(the paper: 3.8M clients vs only 23 Hitlist entries — "
              "aliased client networks are invisible to active scans)\n");

  // Entropy split of hit vs miss, Fig 3's story in two numbers.
  util::EmpiricalDistribution hit, miss;
  for (const auto& outcome : scan.outcomes) {
    (outcome.client_responded ? hit : miss)
        .add(net::iid_entropy(outcome.client));
  }
  if (!hit.empty() && !miss.empty()) {
    std::printf("\nhigh-entropy (>0.75) share: responsive %.0f%%, "
                "unresponsive %.0f%% (paper: ~50%% vs ~70%%)\n",
                100.0 * (1.0 - hit.cdf(0.75)),
                100.0 * (1.0 - miss.cdf(0.75)));
  }
  return 0;
}
