// The simulated IPv6 Internet: countries -> ASes -> customer sites ->
// devices, plus datacenter servers, core routers, cellular pools, aliased
// networks, and the measurement vantage points.
//
// Design invariant: *addresses are pure functions of time*. A device's
// address at instant t is computed from (device, AS rotation state at t,
// mobility attachment at t) with invertible building blocks (Feistel
// permutations), so the world supports both directions:
//   forward  — device_address(d, t)  (collection, event generation)
//   reverse  — resolve(addr, t)      (the data plane answering probes)
// with no mutable per-tick state. The same World object therefore serves
// the passive NTP collection, the active ZMap6/Yarrp campaigns, and the
// ground-truth checks in tests.
//
// Prefix layout inside an AS's /32 (the 32 bits between /32 and /64):
//   bits 31..28  region nibble: 0=infra 1=servers 2=customer sites
//                3=cellular pool 4=aliased datacenter /48s
//   infra   : router r, interface i  ->  | 0 | r:12 | i:16 |   (IID ::1)
//   servers : server s               ->  | 1 | s:28 |
//   sites   : slot:20, subnet:8      ->  | 2 | slot | subnet |  (/56 per site)
//   cellular: slot:28                ->  | 3 | slot |          (/64 per phone)
//   alias   : a48:12, any:16         ->  | 4 | a48 | any |     (fully aliased)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/bssid_db.h"
#include "geo/country.h"
#include "geo/geodb.h"
#include "geo/location.h"
#include "net/ipv4.h"
#include "net/ipv6.h"
#include "net/prefix.h"
#include "sim/as_profile.h"
#include "sim/device.h"
#include "sim/oui_registry.h"
#include "sim/types.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace v6::sim {

struct WorldConfig {
  std::uint64_t seed = 42;
  // How many of geo::all_countries() participate (most populous first).
  std::size_t country_count = 40;
  // Total broadband customer sites worldwide; the main scale knob.
  // The paper's world is ~3 orders of magnitude larger; all reported
  // quantities are shape-preserving ratios.
  std::uint32_t total_sites = 20000;
  // Mean client devices per site (besides the CPE).
  double devices_per_site_mean = 3.0;
  // Cellular-only subscribers as a multiple of total_sites.
  double cellular_only_ratio = 1.2;
  // Study window.
  util::SimTime study_start = 0;
  util::SimDuration study_duration = 219 * util::kDay;  // Jan 25 - Aug 31
  // Probability a given CPE access point appears in the wardriving DB,
  // scaled per-country (Germany is heavily wardriven).
  double wardriving_coverage = 0.6;
  // Probability the IP-geolocation DB entry for an AS is wrong (MaxMind
  // error model).
  double geodb_error_rate = 0.02;
  // Ablation switch: when false, every client device is present for the
  // whole study (no churn). The ablation bench shows how much of the
  // paper's observed-once statistic this mechanism carries.
  bool client_churn = true;
  // Injected outages: this many eyeball ASes go completely dark for
  // `outage_duration` at a deterministic mid-study instant. Off by
  // default; the outage-detection example turns it on.
  std::uint32_t outage_count = 0;
  util::SimDuration outage_duration = 3 * util::kDay;
};

struct Site {
  SiteId id = kNoSite;
  std::uint32_t as_index = 0;
  std::uint32_t local_index = 0;  // dense index within the AS
  bool aliased = false;           // CPE answers every address in its /64s
  bool firewalled = false;        // CPE drops unsolicited inbound to LAN
  geo::LatLon location;
  DeviceId cpe = kNoDevice;
  DeviceId first_device = 0;  // clients: [first_device, first_device+count)
  std::uint16_t device_count = 0;
  // Devices relocated into this site mid-study (see
  // MobilityProfile::relocation_site); checked by the resolver alongside
  // the contiguous device range.
  std::vector<DeviceId> adopted;
};

struct AsInfo {
  Asn asn = 0;
  std::string name;
  std::uint16_t country_index = 0;  // into World::countries()
  AsType type = AsType::kIspBroadband;
  std::uint64_t prefix_hi = 0;  // /32 network half; low 32 bits zero
  AsProfile profile;
  std::uint64_t seed = 0;
  std::uint32_t first_site = 0;
  std::uint32_t site_count = 0;
  std::uint32_t router_count = 0;
  DeviceId first_server = 0;
  std::uint32_t server_count = 0;
  // Phones that can attach to this carrier (device ids); their
  // Device::mobile_index is the position in this vector.
  std::vector<DeviceId> subscribers;
  // Power-of-two Feistel domain covering the subscriber list.
  std::uint64_t cell_domain = 1;
  // IPv4 /16 owned by the AS (for embedded-IPv4 ground truth).
  std::uint32_t ipv4_base = 0;
  // Injected outage window (start == 0 means none).
  util::SimTime outage_start = 0;
  util::SimDuration outage_duration = 0;
  // Preferred CPE manufacturer (index into the OUI registry), if any —
  // e.g. German ISPs shipping AVM Fritz!Box.
  std::optional<std::uint32_t> cpe_maker;
};

// One of the 27 NTP Pool vantage servers.
struct VantagePoint {
  std::uint8_t id = 0;
  geo::CountryCode country;
  net::Ipv6Address address;
};

class World {
 public:
  static World generate(const WorldConfig& config);

  const WorldConfig& config() const noexcept { return config_; }
  std::span<const geo::CountryInfo> countries() const noexcept {
    return countries_;
  }
  std::span<const AsInfo> ases() const noexcept { return ases_; }
  std::span<const Site> sites() const noexcept { return sites_; }
  std::span<const Device> devices() const noexcept { return devices_; }
  std::span<const VantagePoint> vantages() const noexcept {
    return vantages_;
  }
  const OuiRegistry& ouis() const noexcept { return ouis_; }
  const geo::GeoDatabase& geodb() const noexcept { return geodb_; }
  const geo::BssidLocationDb& wardriving() const noexcept {
    return wardriving_;
  }

  // ---- forward (time-dependent ground truth) ----

  // Rotation generation of an AS at time t (0 for static ASes).
  std::uint64_t rotation_generation(const AsInfo& as, util::SimTime t) const;

  // The /56 network half of a site at time t (subnet bits zero).
  std::uint64_t site_prefix_hi(SiteId site, util::SimTime t) const;

  // Where a device is attached at time t and the /64 it sits in.
  struct Attachment {
    bool online = true;
    bool cellular = false;
    std::uint32_t as_index = 0;
    std::uint64_t prefix_hi = 0;  // /64 network half
  };
  Attachment attachment(DeviceId device, util::SimTime t) const;

  // The device's full address at time t.
  net::Ipv6Address device_address(DeviceId device, util::SimTime t) const;

  // Interface address of an infrastructure router (IID ::1).
  net::Ipv6Address router_address(std::uint32_t as_index, std::uint32_t router,
                                  std::uint32_t interface) const;

  // Datacenter server addresses are time-invariant.
  net::Ipv6Address server_address(DeviceId device) const;

  // Addresses of servers published in (synthetic) DNS — the public seeds
  // an IPv6-Hitlist-style campaign starts from.
  std::vector<net::Ipv6Address> dns_seed_addresses() const;

  // ---- reverse (the resolver behind the data plane) ----

  struct Resolution {
    enum class Kind : std::uint8_t {
      kNone,    // unrouted / no such host
      kDevice,  // exact address of a live device at this time
      kRouter,  // infrastructure router interface
      kAlias,   // inside an aliased prefix: something answers regardless
    };
    Kind kind = Kind::kNone;
    DeviceId device = kNoDevice;     // kDevice (and kAlias inside a site
                                     // when the probe exactly hits a device)
    std::uint32_t as_index = 0;      // valid unless kNone
    std::uint32_t router = 0;        // kRouter
    bool firewalled = false;         // inbound filtered at the CPE/carrier
    bool icmp_silent = false;        // host reachable but ignores echo
  };
  Resolution resolve(const net::Ipv6Address& address, util::SimTime t) const;

  // The customer site holding the given address's /56 at time t, if the
  // address lies in a site region and the slot is assigned.
  std::optional<SiteId> site_at(const net::Ipv6Address& address,
                                util::SimTime t) const;

  // AS containing the address (by /32 match), if any.
  std::optional<std::uint32_t> as_index_of(const net::Ipv6Address& a) const;
  // AS owning an IPv4 address (by /16 match), if any.
  std::optional<std::uint32_t> as_index_of_ipv4(net::Ipv4Address v4) const;

  geo::CountryCode country_of_as(std::uint32_t as_index) const {
    return countries_[ases_[as_index].country_index].code;
  }

  // Every fully-aliased /48 (region 4) in the world — ground truth for
  // alias-detection tests.
  std::vector<net::Ipv6Prefix> aliased_datacenter_prefixes() const;

  // Whether a device has a listener on the given TCP port (web servers on
  // 80/443, some CPE management UIs on 443; clients none). Deterministic
  // per (device, port).
  bool serves_tcp(DeviceId device, std::uint16_t port) const;

  // True while the AS is inside an injected outage window: none of its
  // hosts emit NTP traffic or answer probes.
  bool in_outage(std::uint32_t as_index, util::SimTime t) const;

 private:
  World() = default;

  WorldConfig config_;
  std::vector<geo::CountryInfo> countries_;
  std::vector<AsInfo> ases_;
  std::vector<Site> sites_;
  std::vector<Device> devices_;
  std::vector<VantagePoint> vantages_;
  OuiRegistry ouis_;
  geo::GeoDatabase geodb_;
  geo::BssidLocationDb wardriving_;
  // /32 network half (hi64 with low 32 bits zero) -> AS index.
  std::unordered_map<std::uint64_t, std::uint32_t> as_by_prefix_;
  // IPv4 /16 base -> AS index.
  std::unordered_map<std::uint32_t, std::uint32_t> as_by_ipv4_;
};

// Region nibble values of the intra-AS layout (exposed for tests).
inline constexpr std::uint64_t kRegionInfra = 0;
inline constexpr std::uint64_t kRegionServer = 1;
inline constexpr std::uint64_t kRegionSite = 2;
inline constexpr std::uint64_t kRegionCell = 3;
inline constexpr std::uint64_t kRegionAlias = 4;

}  // namespace v6::sim
