// Timeline sampler overhead: the cost of folding a WindowRecord at every
// deterministic grid boundary during stage-1 collection.
//
// Runs the same collect-only study twice — sampling off, then sampling at
// a one-day grid — and reports wall time for each, the sampler's relative
// overhead, and the emitted timeline's shape. The run also re-checks the
// contract the tests pin down: sampling must change no result, so the
// end-of-run counter totals (and the per-window deltas telescoped back
// together) have to match the unsampled run exactly.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "obs/timeline.h"

namespace {

using namespace v6;

struct RunResult {
  std::uint64_t records = 0;
  std::uint64_t answered = 0;
  obs::Timeline timeline;
};

RunResult run_once(const core::StudyConfig& config,
                   util::SimDuration sample_interval) {
  core::Study study(config);
  core::RunOptions options;
  options.campaigns = false;
  options.backscan = false;
  options.analysis = false;
  options.sample_interval = sample_interval;
  study.run(std::move(options));
  RunResult r;
  r.records = study.results().metrics.counter_sum("v6_collector_records_total");
  r.answered =
      study.results().metrics.counter_sum("v6_collector_polls_answered_total");
  r.timeline = std::move(study.mutable_results().timeline);
  return r;
}

}  // namespace

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Timeline sampler overhead (stage-1 collection)",
                      config);

  RunResult off;
  RunResult on;
  const double t_off = bench::timed_seconds(
      "sampling off", [&] { off = run_once(config, 0); });
  const double t_on = bench::timed_seconds(
      "sampling on (1-day grid)", [&] { on = run_once(config, util::kDay); });

  // The determinism contract, re-checked at bench scale: identical totals,
  // and window deltas that telescope back to them.
  if (off.records != on.records || off.answered != on.answered) {
    std::fprintf(stderr,
                 "FAIL: sampling changed the results (records %llu vs %llu, "
                 "answered %llu vs %llu)\n",
                 static_cast<unsigned long long>(off.records),
                 static_cast<unsigned long long>(on.records),
                 static_cast<unsigned long long>(off.answered),
                 static_cast<unsigned long long>(on.answered));
    return 1;
  }
  std::uint64_t window_records = 0;
  std::uint64_t window_answered = 0;
  std::size_t counter_series = 0;
  std::size_t vantage_series = 0;
  for (const auto& w : on.timeline) {
    counter_series += w.counters.size();
    vantage_series += w.vantages.size();
    for (const auto& c : w.counters) {
      if (c.name == "v6_collector_records_total") window_records += c.delta;
      if (c.name == "v6_collector_polls_answered_total") {
        window_answered += c.delta;
      }
    }
  }
  if (window_records != on.records || window_answered != on.answered) {
    std::fprintf(stderr,
                 "FAIL: window deltas do not telescope to the totals\n");
    return 1;
  }

  util::TablePrinter table({"run", "wall s", "windows", "counter series",
                            "vantage series"});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", t_off);
  table.add_row({"sampling off", buf, "0", "-", "-"});
  std::snprintf(buf, sizeof(buf), "%.2f", t_on);
  table.add_row({"sampling on", buf, std::to_string(on.timeline.size()),
                 std::to_string(counter_series),
                 std::to_string(vantage_series)});
  table.print(std::cout);

  const double overhead =
      t_off > 0 ? (t_on - t_off) / t_off * 100.0 : 0.0;
  std::printf(
      "\nsampler overhead: %+.1f%% wall time for %zu windows "
      "(deltas telescope exactly; results byte-identical per the tests)\n",
      overhead, on.timeline.size());
  return 0;
}
