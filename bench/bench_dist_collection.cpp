// Distributed collection: throughput of the simulated coordinator/worker
// cluster vs worker count, and the cost of fault recovery vs kill
// intensity — with the bit-identity gate (merged corpus bytes equal to
// the single-process run) checked on every row.
//
// Two grids:
//   * workers {1, 2, 4, 8}, no faults — wall-clock records/sec of the
//     full lease/upload/merge cycle against the single-process baseline;
//   * 4 workers, forced kills {0, 1, 2, 4} — worker deaths observed,
//     chunks replayed, cluster-clock recovery latency, and the identity
//     verdict while the fleet is being murdered.
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "dist/sim_cluster.h"
#include "hitlist/corpus_io.h"
#include "hitlist/passive_collector.h"
#include "netsim/pool_dns.h"

namespace {

using namespace v6;

std::string corpus_bytes(const hitlist::Corpus& corpus) {
  std::stringstream out(std::ios::in | std::ios::out | std::ios::binary);
  hitlist::save_corpus(out, corpus);
  return out.str();
}

std::string seconds_str(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  return buf;
}

}  // namespace

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  // Every row re-runs the whole collection window; use a smaller world.
  config.world.total_sites =
      std::min<std::uint32_t>(config.world.total_sites, 6000);
  config.world.study_duration = std::min<util::SimDuration>(
      config.world.study_duration, 120 * util::kDay);
  bench::print_banner(
      "Distributed collection: scaling and fault recovery", config);

  const auto world = sim::World::generate(config.world);
  const util::SimTime start = 0;
  const util::SimTime end = config.world.study_duration;

  hitlist::CollectorConfig collector_cfg;
  collector_cfg.loss_rate = 0.01;
  collector_cfg.retry_limit = 2;

  // Single-process baseline the cluster must reproduce byte for byte.
  hitlist::Corpus reference(1 << 16);
  std::uint64_t reference_polls = 0;
  const double single_s = bench::timed_seconds("single-process", [&] {
    netsim::DataPlane plane(world, {collector_cfg.loss_rate, 1});
    netsim::PoolDns dns(world, 0.25, 0.03);
    hitlist::PassiveCollector collector(world, plane, dns, collector_cfg);
    collector.run(reference, start, end);
    reference_polls = collector.polls_attempted();
  });
  const std::string reference_bytes = corpus_bytes(reference);

  const auto run_cluster = [&](std::uint32_t workers, std::uint32_t kills,
                               hitlist::Corpus& out) {
    netsim::DataPlane plane(world, {collector_cfg.loss_rate, 1});
    netsim::PoolDns dns(world, 0.25, 0.03);
    dist::DistConfig dist_config;
    dist_config.workers = workers;
    dist_config.forced_kills = kills;
    dist_config.chunk_interval = 14 * util::kDay;
    dist::SimCluster cluster(world, plane, dns, collector_cfg, dist_config);
    return cluster.run(out, start, end);
  };

  bench::BenchJson json = bench::scaled_bench_json("bench_dist_collection");
  json.integer("polls_attempted", reference_polls);
  json.number("single_process_seconds", single_s);
  json.number("single_process_polls_per_sec",
              single_s > 0 ? static_cast<double>(reference_polls) / single_s
                           : 0.0);

  bool all_identical = true;

  util::TablePrinter scaling({"workers", "seconds", "polls/sec", "leases",
                              "uploads", "vs 1 worker", "bit-identical"});
  double one_worker_s = 0.0;
  for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
    hitlist::Corpus merged(1 << 16);
    dist::DistReport report;
    const double seconds = bench::timed_seconds(
        "cluster, " + std::to_string(workers) + " workers",
        [&] { report = run_cluster(workers, 0, merged); });
    if (workers == 1) one_worker_s = seconds;
    const bool identical = corpus_bytes(merged) == reference_bytes;
    all_identical = all_identical && identical;
    const double rate =
        seconds > 0 ? static_cast<double>(report.polls_attempted) / seconds
                    : 0.0;
    scaling.add_row(
        {std::to_string(workers), seconds_str(seconds),
         util::with_commas(static_cast<std::uint64_t>(rate)),
         util::with_commas(report.leases_granted),
         util::with_commas(report.checkpoints_uploaded),
         one_worker_s > 0 ? util::percent(seconds / one_worker_s) : "n/a",
         identical ? "yes" : "NO — DETERMINISM BUG"});
    const std::string prefix = "workers_" + std::to_string(workers) + "_";
    json.number(prefix + "seconds", seconds);
    json.number(prefix + "polls_per_sec", rate);
    json.integer(prefix + "leases", report.leases_granted);
    json.integer(prefix + "uploads", report.checkpoints_uploaded);
    json.boolean(prefix + "bit_identical", identical);
  }
  scaling.print(std::cout);

  // Note: every simulated worker replays the full device stream and
  // records its vantage subset, so wall-clock does not drop with worker
  // count in-process — the grid measures coordination overhead, not
  // speedup. The win is per-node memory and the fault tolerance below.
  util::TablePrinter recovery({"forced kills", "deaths", "reassignments",
                               "replayed chunks", "recovery latency",
                               "bit-identical"});
  for (const std::uint32_t kills : {0u, 1u, 2u, 4u}) {
    hitlist::Corpus merged(1 << 16);
    dist::DistReport report;
    bench::timed("4 workers, " + std::to_string(kills) + " forced kills",
                 [&] { report = run_cluster(4, kills, merged); });
    const bool identical = corpus_bytes(merged) == reference_bytes;
    all_identical = all_identical && identical;
    recovery.add_row(
        {std::to_string(kills), util::with_commas(report.worker_deaths),
         util::with_commas(report.reassignments),
         util::with_commas(report.replayed_chunks),
         util::with_commas(report.recovery_latency_total) + " sim-s",
         identical ? "yes" : "NO — DETERMINISM BUG"});
    const std::string prefix = "kills_" + std::to_string(kills) + "_";
    json.integer(prefix + "deaths", report.worker_deaths);
    json.integer(prefix + "reassignments", report.reassignments);
    json.integer(prefix + "replayed_chunks", report.replayed_chunks);
    json.integer(prefix + "recovery_latency_sim_s",
                 report.recovery_latency_total);
    json.boolean(prefix + "bit_identical", identical);
  }
  recovery.print(std::cout);

  std::printf(
      "\nreading guide: the merged corpus is byte-identical to the\n"
      "single-process run on every row — worker count and worker murder\n"
      "change wall-clock and recovery counters, never the data. Recovery\n"
      "latency is cluster-clock time from each detected death to the\n"
      "lease landing on a survivor.\n");

  json.boolean("all_rows_bit_identical", all_identical);
  json.write("BENCH_dist_collection.json");
  return all_identical ? 0 : 1;
}
