// MAC (EUI-48) address value type and the OUI (Organizationally Unique
// Identifier) prefix used to resolve manufacturers.
//
// MAC addresses enter the pipeline in two ways: embedded in EUI-64 IPv6
// interface identifiers (the privacy leak the paper studies) and as WiFi
// BSSIDs in the synthetic wardriving database used for geolocation.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace v6::net {

// Three-byte vendor prefix of a MAC address.
class Oui {
 public:
  constexpr Oui() = default;
  // Value in the low 24 bits.
  constexpr explicit Oui(std::uint32_t value) : value_(value & 0xffffff) {}

  constexpr std::uint32_t value() const noexcept { return value_; }

  // "f0:02:20" form.
  std::string to_string() const;

  friend constexpr auto operator<=>(Oui, Oui) = default;

 private:
  std::uint32_t value_ = 0;
};

class MacAddress {
 public:
  using Bytes = std::array<std::uint8_t, 6>;

  constexpr MacAddress() = default;
  constexpr explicit MacAddress(const Bytes& bytes) : bytes_(bytes) {}

  // Value in the low 48 bits of a u64.
  static constexpr MacAddress from_u64(std::uint64_t v) {
    Bytes b{};
    for (int i = 0; i < 6; ++i) {
      b[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (40 - 8 * i));
    }
    return MacAddress(b);
  }

  constexpr const Bytes& bytes() const noexcept { return bytes_; }
  constexpr std::uint8_t byte(std::size_t i) const noexcept {
    return bytes_[i];
  }

  constexpr std::uint64_t to_u64() const noexcept {
    std::uint64_t v = 0;
    for (const auto b : bytes_) v = (v << 8) | b;
    return v;
  }

  constexpr Oui oui() const noexcept {
    return Oui(static_cast<std::uint32_t>(to_u64() >> 24));
  }

  // Low 24 bits: the device-specific suffix within the OUI.
  constexpr std::uint32_t suffix() const noexcept {
    return static_cast<std::uint32_t>(to_u64() & 0xffffff);
  }

  // The Universal/Local bit (bit 1 of the first byte); 0 = globally unique.
  constexpr bool is_local() const noexcept { return bytes_[0] & 0x02; }
  constexpr bool is_multicast() const noexcept { return bytes_[0] & 0x01; }

  // Returns a copy with the U/L bit flipped (the EUI-64 transform).
  constexpr MacAddress with_ul_flipped() const noexcept {
    Bytes b = bytes_;
    b[0] ^= 0x02;
    return MacAddress(b);
  }

  // "aa:bb:cc:dd:ee:ff" (lowercase).
  std::string to_string() const;
  // Accepts ':' or '-' separators, case-insensitive.
  static std::optional<MacAddress> parse(std::string_view text);

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  Bytes bytes_{};
};

}  // namespace v6::net

template <>
struct std::hash<v6::net::MacAddress> {
  std::size_t operator()(const v6::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64() * 0x9e3779b97f4a7c15ULL);
  }
};

template <>
struct std::hash<v6::net::Oui> {
  std::size_t operator()(v6::net::Oui o) const noexcept {
    return std::hash<std::uint32_t>{}(o.value() * 0x9e3779b9U);
  }
};
