#include "analysis/lifetimes.h"

#include <algorithm>
#include <unordered_map>

namespace v6::analysis {

AddressLifetimeReport address_lifetimes(
    const hitlist::Corpus& corpus,
    std::span<const util::SimDuration> ccdf_points) {
  AddressLifetimeReport report;
  std::vector<std::uint64_t> at_least(ccdf_points.size(), 0);
  std::uint64_t once = 0, week = 0, month = 0, six = 0;
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    ++report.total;
    const util::SimDuration life = rec.lifetime();
    if (life == 0) ++once;
    if (life >= util::kWeek) ++week;
    if (life >= util::kMonth) ++month;
    if (life >= 6 * util::kMonth) ++six;
    for (std::size_t i = 0; i < ccdf_points.size(); ++i) {
      if (life >= ccdf_points[i]) ++at_least[i];
    }
  });
  if (report.total == 0) return report;
  const auto total = static_cast<double>(report.total);
  report.fraction_once = static_cast<double>(once) / total;
  report.fraction_week = static_cast<double>(week) / total;
  report.fraction_month = static_cast<double>(month) / total;
  report.fraction_six_months = static_cast<double>(six) / total;
  report.ccdf.reserve(ccdf_points.size());
  for (std::size_t i = 0; i < ccdf_points.size(); ++i) {
    report.ccdf.emplace_back(ccdf_points[i],
                             static_cast<double>(at_least[i]) / total);
  }
  return report;
}

IidLifetimeReport iid_lifetimes(
    const hitlist::Corpus& corpus,
    std::span<const util::SimDuration> cdf_points) {
  // Collapse addresses to IIDs: lifetime spans all sightings of the IID
  // across every prefix it appeared under.
  struct Span {
    std::uint32_t first;
    std::uint32_t last;
  };
  std::unordered_map<std::uint64_t, Span> iids;
  iids.reserve(corpus.size());
  corpus.for_each([&](const hitlist::AddressRecord& rec) {
    const auto [it, inserted] =
        iids.try_emplace(rec.address.iid(), Span{rec.first_seen, rec.last_seen});
    if (!inserted) {
      it->second.first = std::min(it->second.first, rec.first_seen);
      it->second.last = std::max(it->second.last, rec.last_seen);
    }
  });

  IidLifetimeReport report;
  report.unique_iids = iids.size();
  std::array<std::vector<std::uint64_t>, 3> at_most;
  for (auto& v : at_most) v.assign(cdf_points.size(), 0);
  std::array<std::uint64_t, 3> once{}, week{};

  for (const auto& [iid, span] : iids) {
    const auto band = static_cast<std::size_t>(
        net::entropy_band(net::iid_entropy(iid)));
    auto& b = report.bands[band];
    ++b.total;
    const auto life =
        static_cast<util::SimDuration>(span.last) - span.first;
    if (life == 0) ++once[band];
    if (life >= util::kWeek) ++week[band];
    for (std::size_t i = 0; i < cdf_points.size(); ++i) {
      if (life <= cdf_points[i]) ++at_most[band][i];
    }
  }
  for (std::size_t band = 0; band < 3; ++band) {
    auto& b = report.bands[band];
    if (b.total == 0) continue;
    const auto total = static_cast<double>(b.total);
    b.fraction_once = static_cast<double>(once[band]) / total;
    b.fraction_week = static_cast<double>(week[band]) / total;
    b.cdf.reserve(cdf_points.size());
    for (std::size_t i = 0; i < cdf_points.size(); ++i) {
      b.cdf.emplace_back(cdf_points[i],
                         static_cast<double>(at_most[band][i]) / total);
    }
  }
  return report;
}

}  // namespace v6::analysis
