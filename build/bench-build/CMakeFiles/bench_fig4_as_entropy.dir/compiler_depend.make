# Empty compiler generated dependencies file for bench_fig4_as_entropy.
# This may be replaced when dependencies are built.
