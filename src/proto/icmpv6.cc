#include "proto/icmpv6.h"

#include "proto/checksum.h"
#include "proto/ipv6_header.h"

namespace v6::proto {

std::vector<std::uint8_t> encode_icmpv6(const Icmpv6Message& msg,
                                        const net::Ipv6Address& src,
                                        const net::Ipv6Address& dst) {
  BufferWriter out;
  out.u8(static_cast<std::uint8_t>(msg.type));
  out.u8(msg.code);
  out.u16(0);  // checksum placeholder
  out.u32(msg.body);
  out.bytes(msg.payload);
  const std::uint16_t sum =
      pseudo_header_checksum(src, dst, kProtoIcmpv6, out.data());
  out.patch_u16(2, sum);
  return std::move(out).take();
}

std::optional<Icmpv6Message> decode_icmpv6(std::span<const std::uint8_t> data,
                                           const net::Ipv6Address& src,
                                           const net::Ipv6Address& dst) {
  if (data.size() < 8) return std::nullopt;
  // A datagram with a correct checksum sums (with the pseudo-header) to 0.
  if (pseudo_header_checksum(src, dst, kProtoIcmpv6, data) != 0) {
    return std::nullopt;
  }
  BufferReader in(data);
  Icmpv6Message msg;
  msg.type = static_cast<Icmpv6Type>(in.u8());
  msg.code = in.u8();
  in.u16();  // checksum, already verified
  msg.body = in.u32();
  msg.payload.resize(in.remaining());
  in.bytes(msg.payload);
  switch (msg.type) {
    case Icmpv6Type::kDestinationUnreachable:
    case Icmpv6Type::kTimeExceeded:
    case Icmpv6Type::kEchoRequest:
    case Icmpv6Type::kEchoReply:
      break;
    default:
      return std::nullopt;
  }
  return msg;
}

Icmpv6Message make_echo_request(std::uint16_t identifier,
                                std::uint16_t sequence,
                                std::vector<std::uint8_t> payload) {
  Icmpv6Message msg;
  msg.type = Icmpv6Type::kEchoRequest;
  msg.body = (static_cast<std::uint32_t>(identifier) << 16) | sequence;
  msg.payload = std::move(payload);
  return msg;
}

Icmpv6Message make_echo_reply(const Icmpv6Message& request) {
  Icmpv6Message msg = request;
  msg.type = Icmpv6Type::kEchoReply;
  return msg;
}

Icmpv6Message make_time_exceeded(std::vector<std::uint8_t> invoking_excerpt) {
  Icmpv6Message msg;
  msg.type = Icmpv6Type::kTimeExceeded;
  msg.code = 0;  // hop limit exceeded in transit
  msg.payload = std::move(invoking_excerpt);
  return msg;
}

}  // namespace v6::proto
