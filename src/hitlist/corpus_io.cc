#include "hitlist/corpus_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "proto/buffer.h"
#include "proto/checksum.h"

namespace v6::hitlist {

namespace {

constexpr char kMagicV1[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '1'};
constexpr char kMagicV2[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '2'};
constexpr std::uint64_t kRecordBytes = 32;

std::span<const std::uint8_t> magic_span(const char (&magic)[8]) {
  return {reinterpret_cast<const std::uint8_t*>(magic), 8};
}

// Shared record-section parser for both format versions. `reader` must be
// positioned at the first record; exactly `records * 32` bytes are
// consumed.
Corpus read_records(proto::BufferReader& reader, std::uint64_t records,
                    std::uint64_t observations) {
  Corpus corpus(records);
  std::uint64_t observations_seen = 0;
  for (std::uint64_t i = 0; i < records; ++i) {
    net::Ipv6Address::Bytes address{};
    reader.bytes(address);
    AddressRecord rec;
    rec.address = net::Ipv6Address(address);
    rec.first_seen = reader.u32();
    rec.last_seen = reader.u32();
    rec.count = reader.u32();
    rec.vantage_mask = reader.u32();
    if (reader.truncated()) {
      throw std::runtime_error("corpus snapshot: truncated");
    }
    if (rec.count == 0) {
      throw std::runtime_error("corpus snapshot: empty record");
    }
    corpus.add_record(rec);
    observations_seen += rec.count;
  }
  if (observations_seen != observations) {
    throw std::runtime_error("corpus snapshot: observation count mismatch");
  }
  return corpus;
}

}  // namespace

void save_corpus(proto::BufferWriter& out, const Corpus& corpus) {
  out.bytes(magic_span(kMagicV2));
  const std::size_t header_begin = out.size();
  out.u64(corpus.size());
  out.u64(corpus.total_observations());
  out.u32(proto::crc32(std::span(out.data()).subspan(header_begin, 16)));
  const std::size_t records_begin = out.size();
  corpus.for_each([&out](const AddressRecord& rec) {
    out.bytes(rec.address.bytes());
    out.u32(rec.first_seen);
    out.u32(rec.last_seen);
    out.u32(rec.count);
    out.u32(rec.vantage_mask);
  });
  out.u32(proto::crc32(std::span(out.data()).subspan(records_begin)));
}

std::size_t save_corpus(std::ostream& out, const Corpus& corpus) {
  proto::BufferWriter writer;
  save_corpus(writer, corpus);
  out.write(reinterpret_cast<const char*>(writer.data().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) throw std::runtime_error("corpus write failed");
  return writer.size();
}

Corpus load_corpus(std::span<const std::uint8_t> bytes) {
  proto::BufferReader reader(bytes);

  std::uint8_t magic[8];
  reader.bytes(magic);
  const bool v2 = !reader.truncated() &&
                  std::equal(std::begin(magic), std::end(magic), kMagicV2);
  const bool v1 = !reader.truncated() && !v2 &&
                  std::equal(std::begin(magic), std::end(magic), kMagicV1);
  if (!v1 && !v2) {
    throw std::runtime_error("corpus snapshot: bad magic");
  }
  const std::uint64_t records = reader.u64();
  const std::uint64_t observations = reader.u64();
  if (reader.truncated()) {
    throw std::runtime_error("corpus snapshot: truncated header");
  }
  if (v2) {
    const std::uint32_t header_crc = reader.u32();
    if (reader.truncated()) {
      throw std::runtime_error("corpus snapshot: truncated header");
    }
    if (header_crc != proto::crc32(bytes.subspan(8, 16))) {
      throw std::runtime_error("corpus snapshot: header CRC mismatch");
    }
  }
  // The record count is untrusted input and sizes the table allocation
  // below: insist it agrees exactly with the payload that is actually
  // present (32 bytes per record, plus the v2 trailer CRC) before
  // allocating anything. The division-form check also rejects counts
  // whose byte size would overflow 64 bits.
  const std::uint64_t trailer = v2 ? 4 : 0;
  if (reader.remaining() < trailer ||
      records > (reader.remaining() - trailer) / kRecordBytes ||
      records * kRecordBytes != reader.remaining() - trailer) {
    throw std::runtime_error(
        "corpus snapshot: record count disagrees with payload size");
  }
  if (v2) {
    // Whole-section CRC before parsing: a flipped bit inside any record
    // fails here rather than loading as a plausible-but-wrong corpus.
    const std::size_t records_begin = bytes.size() - reader.remaining();
    const auto section =
        bytes.subspan(records_begin, records * kRecordBytes);
    proto::BufferReader trailer_reader(bytes.subspan(bytes.size() - 4));
    if (trailer_reader.u32() != proto::crc32(section)) {
      throw std::runtime_error("corpus snapshot: records CRC mismatch");
    }
  }

  Corpus corpus = read_records(reader, records, observations);
  if (v2) reader.skip(4);  // the already-verified records CRC
  if (reader.remaining() != 0) {
    throw std::runtime_error("corpus snapshot: trailing bytes");
  }
  return corpus;
}

Corpus load_corpus(std::istream& in) {
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return load_corpus(std::span(bytes));
}

}  // namespace v6::hitlist
