# Empty dependencies file for bench_table2_manufacturers.
# This may be replaced when dependencies are built.
