// Shared scaffolding for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper against
// a freshly simulated study. Scale is controlled by environment variables
// so the default `for b in build/bench/*; do $b; done` run finishes in
// minutes while still reproducing the paper's *shape*:
//   V6_BENCH_SITES  — customer sites in the world   (default 20000)
//   V6_BENCH_DAYS   — study duration in days        (default 219)
//   V6_BENCH_SEED   — world seed                    (default 2022)
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/study.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace v6::bench {

// The scaled-down study configuration shared by all benches.
core::StudyConfig bench_config();

// Prints the standard bench banner (scale, seed, stage timings).
void print_banner(const std::string& bench_name, const core::StudyConfig&
                      config);

// "paper vs measured" comparison table helper.
class Comparison {
 public:
  Comparison() : table_({"metric", "paper", "measured (scaled world)"}) {}

  void row(const std::string& metric, const std::string& paper,
           const std::string& measured) {
    table_.add_row({metric, paper, measured});
  }
  void print() { table_.print(std::cout); }

 private:
  util::TablePrinter table_;
};

// Machine-readable bench output. Accumulates flat key/value metrics and
// writes them as one JSON object (a `BENCH_*.json` file in the working
// directory) so CI can archive the perf trajectory run over run instead
// of scraping stdout tables.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name);

  void number(const std::string& key, double value);
  void integer(const std::string& key, std::uint64_t value);
  void boolean(const std::string& key, bool value);
  void text(const std::string& key, const std::string& value);

  // Writes the object to `path` and prints the path; returns false (and
  // reports on stderr) if the file cannot be written.
  bool write(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Runs fn() and prints its wall-clock seconds.
void timed(const std::string& label, const std::function<void()>& fn);

// Like timed(), and also returns the wall-clock seconds (for speedup
// ratios between two timed stages).
double timed_seconds(const std::string& label,
                     const std::function<void()>& fn);

// Renders a CDF as (x, F(x)) rows at `points` evenly spaced x values.
void print_cdf(const std::string& caption,
               const util::EmpiricalDistribution& distribution,
               std::size_t points = 21);

}  // namespace v6::bench
