#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

namespace v6::bench {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const auto parsed = util::parse_dec_u64(value);
  return parsed.value_or(fallback);
}

}  // namespace

core::StudyConfig bench_config() {
  core::StudyConfig config;
  config.world.seed = env_u64("V6_BENCH_SEED", 2022);
  config.world.total_sites =
      static_cast<std::uint32_t>(env_u64("V6_BENCH_SITES", 20000));
  config.world.study_duration =
      static_cast<util::SimDuration>(env_u64("V6_BENCH_DAYS", 219)) *
      util::kDay;
  // The backscan week runs after the study window (January 2023 in the
  // paper's calendar).
  config.backscan_start = config.world.study_duration + 26 * util::kDay;
  // Campaign windows scale with the study window.
  config.hitlist_campaign.start = 22 * util::kDay;
  config.hitlist_campaign.duration =
      std::max<util::SimDuration>(config.world.study_duration -
                                      25 * util::kDay,
                                  4 * util::kWeek);
  config.caida_campaign.start = 9 * util::kDay;
  config.caida_campaign.duration = std::min<util::SimDuration>(
      62 * util::kDay, config.world.study_duration);
  return config;
}

void print_banner(const std::string& bench_name,
                  const core::StudyConfig& config) {
  std::printf(
      "================================================================\n"
      "%s\n"
      "world: %u sites, %ld-day study, seed %llu  "
      "(V6_BENCH_SITES / V6_BENCH_DAYS / V6_BENCH_SEED to rescale)\n"
      "================================================================\n",
      bench_name.c_str(), config.world.total_sites,
      static_cast<long>(config.world.study_duration / util::kDay),
      static_cast<unsigned long long>(config.world.seed));
}

void timed(const std::string& label, const std::function<void()>& fn) {
  timed_seconds(label, fn);
}

double timed_seconds(const std::string& label,
                     const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
  const double seconds = static_cast<double>(elapsed.count()) / 1000.0;
  std::printf("[%s: %.1fs]\n", label.c_str(), seconds);
  return seconds;
}

void print_cdf(const std::string& caption,
               const util::EmpiricalDistribution& distribution,
               std::size_t points) {
  if (distribution.empty()) {
    std::printf("# %s: (empty)\n", caption.c_str());
    return;
  }
  std::vector<double> xs, ys;
  for (const auto& [x, y] : distribution.cdf_curve(points)) {
    xs.push_back(x);
    ys.push_back(y);
  }
  util::print_series(std::cout, caption, {"x", "cdf"}, {xs, ys});
}

namespace {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

BenchJson::BenchJson(std::string bench_name) {
  text("bench", bench_name);
  // World scale travels with every metric so a trajectory chart can
  // discard runs measured at a different scale.
  const auto config = bench_config();
  integer("sites", config.world.total_sites);
  integer("days", static_cast<std::uint64_t>(config.world.study_duration /
                                             util::kDay));
  integer("seed", config.world.seed);
}

void BenchJson::number(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  entries_.emplace_back(key, buf);
}

void BenchJson::integer(const std::string& key, std::uint64_t value) {
  entries_.emplace_back(key, std::to_string(value));
}

void BenchJson::boolean(const std::string& key, bool value) {
  entries_.emplace_back(key, value ? "true" : "false");
}

void BenchJson::text(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

bool BenchJson::write(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs("{\n", out);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    std::fprintf(out, "  \"%s\": %s%s\n",
                 json_escape(entries_[i].first).c_str(),
                 entries_[i].second.c_str(),
                 i + 1 < entries_.size() ? "," : "");
  }
  std::fputs("}\n", out);
  std::fclose(out);
  std::printf("[wrote %s]\n", path.c_str());
  return true;
}

}  // namespace v6::bench
