// Passive collection, end to end, at full wire fidelity.
//
// Builds a small world, joins its 27 vantage servers to the simulated NTP
// Pool, and runs a month of collection with every poll exchanged as real
// RFC 5905 packets over UDP (checksummed, validated, lossy). Prints the
// per-vantage request load and finishes by emitting the ethically shareable
// artifact: the corpus aggregated to /48s.
#include <cstdio>
#include <sstream>

#include "hitlist/passive_collector.h"
#include "hitlist/release.h"
#include "netsim/pool_dns.h"
#include "util/strings.h"

int main() {
  using namespace v6;

  sim::WorldConfig world_config;
  world_config.seed = 7;
  world_config.total_sites = 1200;
  world_config.study_duration = 30 * util::kDay;
  const auto world = sim::World::generate(world_config);
  std::printf("world: %zu sites, %zu devices, %zu ASes, %zu vantages\n",
              world.sites().size(), world.devices().size(),
              world.ases().size(), world.vantages().size());

  netsim::DataPlane plane(world, {0.01, 1});
  // Every vantage captures everything here (vantage_share 1.0) so the
  // wire path gets a thorough workout; the Study pipeline uses the
  // realistic sampled share instead.
  netsim::PoolDns dns(world, 0.10, 1.0);

  hitlist::CollectorConfig collector_config;
  collector_config.wire_fidelity = true;  // full packet path per poll
  collector_config.loss_rate = 0.01;

  hitlist::PassiveCollector collector(world, plane, dns, collector_config);
  hitlist::Corpus corpus(1 << 16);

  std::uint64_t per_vantage[32] = {};
  collector.run(corpus, 0, 30 * util::kDay,
                [&per_vantage](const ntp::Observation& obs,
                               const net::Ipv6Address&) {
                  if (obs.vantage < 32) ++per_vantage[obs.vantage];
                });

  std::printf(
      "collected %s unique addresses from %s observations "
      "(%s polls sent, %s answered)\n",
      util::with_commas(corpus.size()).c_str(),
      util::with_commas(corpus.total_observations()).c_str(),
      util::with_commas(collector.polls_attempted()).c_str(),
      util::with_commas(collector.polls_answered()).c_str());

  std::printf("\nper-vantage request load (geo steering at work):\n");
  for (const auto& vantage : world.vantages()) {
    std::printf("  #%02u %s  %10s\n", vantage.id,
                vantage.country.to_string().c_str(),
                util::with_commas(per_vantage[vantage.id]).c_str());
  }

  // The paper's data release policy: /48s only.
  const auto rows = hitlist::aggregate_to_slash48(corpus);
  std::ostringstream release;
  hitlist::write_release(release, rows);
  std::printf("\n/48-aggregated release: %zu prefixes (first lines below)\n",
              rows.size());
  std::istringstream lines(release.str());
  std::string line;
  for (int i = 0; i < 8 && std::getline(lines, line); ++i) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
