#include "obs/exposition.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace v6::obs {

namespace detail {

// Deterministic number text: integral doubles print as integers (the
// overwhelmingly common case for counts), everything else as shortest-ish
// %.10g. Both are locale-independent.
std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

void append_escaped_label_value(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
}

// `{a="x",b="y"}` (empty string when no labels). `extra` appends one more
// pair (the histogram `le` label) without copying the label set.
std::string label_block(const Labels& labels, std::string_view extra_key,
                        std::string_view extra_value) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    append_escaped_label_value(out, v);
    out.push_back('"');
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    append_escaped_label_value(out, extra_value);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace detail

namespace {

using detail::append_escaped_label_value;
using detail::append_json_string;
using detail::format_double;
using detail::label_block;

std::string_view type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string render_prometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.samples.size() * 64);
  std::string_view current_family;
  for (const auto& sample : snapshot.samples) {
    // Samples are sorted by name, so each family's header is emitted
    // exactly once, before its first sample.
    if (sample.name != current_family) {
      current_family = sample.name;
      if (!sample.help.empty()) {
        out += "# HELP ";
        out += sample.name;
        out.push_back(' ');
        for (const char c : sample.help) {
          if (c == '\\') out += "\\\\";
          else if (c == '\n') out += "\\n";
          else out.push_back(c);
        }
        out.push_back('\n');
      }
      out += "# TYPE ";
      out += sample.name;
      out.push_back(' ');
      out += type_name(sample.type);
      out.push_back('\n');
    }
    switch (sample.type) {
      case MetricType::kCounter:
        out += sample.name;
        out += label_block(sample.labels);
        out.push_back(' ');
        out += format_double(static_cast<double>(sample.counter_value));
        out.push_back('\n');
        break;
      case MetricType::kGauge:
        out += sample.name;
        out += label_block(sample.labels);
        out.push_back(' ');
        out += format_double(sample.gauge_value);
        out.push_back('\n');
        break;
      case MetricType::kHistogram: {
        const auto& h = sample.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          cumulative += h.counts[i];
          const std::string le = i < h.bounds.size()
                                     ? format_double(h.bounds[i])
                                     : std::string("+Inf");
          out += sample.name;
          out += "_bucket";
          out += label_block(sample.labels, "le", le);
          out.push_back(' ');
          out += format_double(static_cast<double>(cumulative));
          out.push_back('\n');
        }
        out += sample.name;
        out += "_sum";
        out += label_block(sample.labels);
        out.push_back(' ');
        out += format_double(h.sum);
        out.push_back('\n');
        out += sample.name;
        out += "_count";
        out += label_block(sample.labels);
        out.push_back(' ');
        out += format_double(static_cast<double>(h.count));
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

// JSON has no Inf/NaN literals; non-finite values become null.
void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  out += format_double(v);
}

void append_json_labels(std::string& out, const Labels& labels) {
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, k);
    out.push_back(':');
    append_json_string(out, v);
  }
  out.push_back('}');
}

std::string render_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const auto& sample : snapshot.samples) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_string(out, sample.name);
    out += ", \"type\": ";
    append_json_string(out, type_name(sample.type));
    out += ", \"labels\": ";
    append_json_labels(out, sample.labels);
    switch (sample.type) {
      case MetricType::kCounter: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, sample.counter_value);
        out += ", \"value\": ";
        out += buf;
        break;
      }
      case MetricType::kGauge:
        out += ", \"value\": ";
        append_json_number(out, sample.gauge_value);
        break;
      case MetricType::kHistogram: {
        const auto& h = sample.histogram;
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRIu64, h.count);
        out += ", \"count\": ";
        out += buf;
        out += ", \"sum\": ";
        append_json_number(out, h.sum);
        out += ", \"buckets\": [";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          cumulative += h.counts[i];
          if (i != 0) out += ", ";
          out += "{\"le\": ";
          if (i < h.bounds.size()) {
            append_json_number(out, h.bounds[i]);
          } else {
            append_json_string(out, "+Inf");
          }
          std::snprintf(buf, sizeof buf, "%" PRIu64, cumulative);
          out += ", \"count\": ";
          out += buf;
          out += "}";
        }
        out += "]";
        break;
      }
    }
    out.push_back('}');
  }
  out += "\n  ],\n  \"spans\": [";
  first = true;
  for (const auto& span : snapshot.spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_string(out, span.name);
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  ", \"begin\": %lld, \"end\": %lld, \"parent\": %d, "
                  "\"depth\": %u, \"closed\": %s}",
                  static_cast<long long>(span.begin),
                  static_cast<long long>(span.end), span.parent, span.depth,
                  span.closed ? "true" : "false");
    out += buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

// --- Prometheus lint -------------------------------------------------------

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!tail(c)) return false;
  }
  return true;
}

bool valid_label_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

bool valid_value(std::string_view text) {
  if (text == "+Inf" || text == "-Inf" || text == "Inf" || text == "NaN") {
    return true;
  }
  if (text.empty()) return false;
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

// Parses `{k="v",...}`; advances `pos` past the closing brace and appends
// the parsed (name, raw value) pairs to `pairs` for series-identity checks.
// Label values must use the exposition escapes exactly: `\\`, `\"`, `\n` —
// a bare backslash before anything else, an unescaped quote mid-value
// (which ends the value early and is caught as a syntax error downstream),
// or a raw newline can't occur in a well-formed line.
std::optional<std::string> lint_labels(
    std::string_view line, std::size_t& pos,
    std::vector<std::pair<std::string, std::string>>& pairs) {
  ++pos;  // consume '{'
  bool first = true;
  while (pos < line.size() && line[pos] != '}') {
    if (!first) {
      if (line[pos] != ',') return "expected ',' between labels";
      ++pos;
    }
    first = false;
    const std::size_t name_start = pos;
    while (pos < line.size() && line[pos] != '=') ++pos;
    if (pos >= line.size()) return "label missing '='";
    const std::string_view label_name =
        line.substr(name_start, pos - name_start);
    if (!valid_label_name(label_name)) {
      return "invalid label name";
    }
    ++pos;  // '='
    if (pos >= line.size() || line[pos] != '"') {
      return "label value must be quoted";
    }
    ++pos;  // opening quote
    const std::size_t value_start = pos;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\') {
        if (pos + 1 >= line.size()) return "dangling escape in label value";
        const char escaped = line[pos + 1];
        if (escaped != '\\' && escaped != '"' && escaped != 'n') {
          return "invalid escape in label value";
        }
        ++pos;  // escaped char
      }
      ++pos;
    }
    if (pos >= line.size()) return "unterminated label value";
    pairs.emplace_back(std::string(label_name),
                       std::string(line.substr(value_start,
                                               pos - value_start)));
    ++pos;  // closing quote
  }
  if (pos >= line.size()) return "unterminated label block";
  ++pos;  // '}'
  return std::nullopt;
}

// The family a sample name belongs to: histogram/summary series drop
// their _bucket/_sum/_count suffix.
std::string family_of(std::string_view name) {
  for (const std::string_view suffix :
       {"_bucket", "_sum", "_count"}) {
    if (name.size() > suffix.size() && name.ends_with(suffix)) {
      return std::string(name.substr(0, name.size() - suffix.size()));
    }
  }
  return std::string(name);
}

}  // namespace

std::optional<ExpositionFormat> parse_format(std::string_view name) {
  if (name == "prom" || name == "prometheus" || name == "text") {
    return ExpositionFormat::kPrometheus;
  }
  if (name == "json") return ExpositionFormat::kJson;
  return std::nullopt;
}

std::string_view format_suffix(ExpositionFormat format) {
  return format == ExpositionFormat::kJson ? "json" : "prom";
}

std::string render(const Snapshot& snapshot, ExpositionFormat format) {
  return format == ExpositionFormat::kJson ? render_json(snapshot)
                                           : render_prometheus(snapshot);
}

std::optional<std::string> lint_prometheus(std::string_view text) {
  std::unordered_map<std::string, std::string> declared_type;
  std::unordered_set<std::string> family_sampled;
  std::unordered_set<std::string> helped;
  std::unordered_set<std::string> series_seen;
  // Histogram internal-consistency state, keyed by family + the sorted
  // non-le labels (one entry per histogram series group). std::map so the
  // end-of-scan checks report in a deterministic order.
  struct HistogramState {
    std::string display;  // "family{labels}" for end-of-scan messages
    bool has_bucket = false;
    double last_cumulative = 0.0;
    bool has_inf = false;
    double inf_value = 0.0;
    bool has_count = false;
    double count_value = 0.0;
  };
  std::map<std::string, HistogramState> hist_state;
  std::size_t line_no = 0;
  std::size_t start = 0;
  const auto fail = [&](std::string_view what) {
    return "line " + std::to_string(line_no) + ": " + std::string(what);
  };

  while (start <= text.size()) {
    if (start == text.size()) break;
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // `# HELP name text` or `# TYPE name kind`; any other comment is
      // legal and ignored.
      if (line.starts_with("# HELP ") || line.starts_with("# TYPE ")) {
        const bool is_type = line[2] == 'T';
        std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        const std::string_view name =
            space == std::string_view::npos ? rest : rest.substr(0, space);
        if (!valid_metric_name(name)) {
          return fail("invalid metric name in comment");
        }
        if (is_type) {
          if (space == std::string_view::npos) {
            return fail("TYPE missing kind");
          }
          const std::string_view kind = rest.substr(space + 1);
          if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
              kind != "summary" && kind != "untyped") {
            return fail("unknown TYPE kind");
          }
          if (!declared_type.emplace(std::string(name), std::string(kind))
                   .second) {
            return fail("duplicate TYPE for family");
          }
          if (family_sampled.contains(std::string(name))) {
            return fail("TYPE after samples of its family");
          }
        } else {
          if (!helped.insert(std::string(name)).second) {
            return fail("duplicate HELP for family");
          }
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') {
      ++pos;
    }
    const std::string_view name = line.substr(0, pos);
    if (!valid_metric_name(name)) return fail("invalid metric name");
    std::vector<std::pair<std::string, std::string>> label_pairs;
    if (pos < line.size() && line[pos] == '{') {
      if (auto err = lint_labels(line, pos, label_pairs)) return fail(*err);
    }
    // Two samples of the same (name, label set) are a scrape-breaking
    // duplicate. Labels are a set, so sort before keying — `{a="x",b="y"}`
    // and `{b="y",a="x"}` are the same series.
    std::sort(label_pairs.begin(), label_pairs.end());
    std::string series_key(name);
    for (const auto& [k, v] : label_pairs) {
      series_key.push_back('\x1f');
      series_key += k;
      series_key.push_back('\x1f');
      series_key += v;
    }
    if (!series_seen.insert(std::move(series_key)).second) {
      return fail("duplicate series (same name and labels)");
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail("missing value");
    }
    ++pos;
    std::string_view value = line.substr(pos);
    // Optional timestamp after the value.
    if (const std::size_t space = value.find(' ');
        space != std::string_view::npos) {
      const std::string_view ts = value.substr(space + 1);
      value = value.substr(0, space);
      std::int64_t parsed = 0;
      const auto [ptr, ec] =
          std::from_chars(ts.data(), ts.data() + ts.size(), parsed);
      if (ec != std::errc{} || ptr != ts.data() + ts.size()) {
        return fail("invalid timestamp");
      }
    }
    if (!valid_value(value)) return fail("invalid sample value");
    const std::string family = family_of(name);
    family_sampled.insert(family);
    family_sampled.insert(std::string(name));
    if (declared_type.contains(family) &&
        declared_type[family] == "histogram") {
      // A histogram family's _bucket series must carry an `le` label.
      std::string le;
      bool has_le = false;
      for (const auto& [k, v] : label_pairs) {
        if (k == "le") {
          le = v;
          has_le = true;
        }
      }
      if (name.ends_with("_bucket") && !has_le) {
        return fail("histogram _bucket sample without le label");
      }
      if (name.ends_with("_bucket") || name.ends_with("_count")) {
        // `value` is already validated; strtod covers the +Inf/NaN forms
        // from_chars rejects.
        const double parsed = std::strtod(std::string(value).c_str(), nullptr);
        std::string key = family;
        std::string display = family + "{";
        for (const auto& [k, v] : label_pairs) {  // sorted above
          if (k == "le") continue;
          key.push_back('\x1f');
          key += k;
          key.push_back('\x1f');
          key += v;
          if (display.back() != '{') display.push_back(',');
          display += k + "=\"" + v + "\"";
        }
        display.push_back('}');
        auto& st = hist_state[key];
        if (st.display.empty()) st.display = std::move(display);
        if (name.ends_with("_bucket")) {
          // Buckets are cumulative; our renderer emits them in ascending
          // le order, so a drop between consecutive lines means a
          // negative bucket count somewhere.
          if (st.has_bucket && parsed < st.last_cumulative) {
            return fail("histogram _bucket counts decrease in le order");
          }
          st.has_bucket = true;
          st.last_cumulative = parsed;
          if (le == "+Inf") {
            st.has_inf = true;
            st.inf_value = parsed;
          }
        } else {
          st.has_count = true;
          st.count_value = parsed;
        }
      }
    }
  }
  // End-of-scan histogram invariants: a series group with buckets must
  // close with the +Inf bucket, must expose _count, and the two must
  // agree — every observation lands in some bucket.
  for (const auto& [key, st] : hist_state) {
    if (st.has_bucket && !st.has_inf) {
      return "histogram " + st.display + ": missing +Inf bucket";
    }
    if (st.has_bucket && !st.has_count) {
      return "histogram " + st.display + ": missing _count sample";
    }
    if (st.has_inf && st.has_count && st.inf_value != st.count_value) {
      return "histogram " + st.display +
             ": +Inf bucket does not equal _count";
    }
  }
  return std::nullopt;
}

}  // namespace v6::obs
