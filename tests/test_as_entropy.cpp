#include "analysis/as_entropy.h"

#include <gtest/gtest.h>

namespace v6::analysis {
namespace {

class AsEntropyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 41;
    config.total_sites = 300;
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }

  static net::Ipv6Address in_as(std::uint32_t as_index, std::uint64_t n,
                                std::uint64_t iid) {
    return net::Ipv6Address::from_u64(
        world_->ases()[as_index].prefix_hi | (2ULL << 28) | (n << 8), iid);
  }

  static sim::World* world_;
};

sim::World* AsEntropyTest::world_ = nullptr;

TEST_F(AsEntropyTest, RanksByAddressCount) {
  hitlist::Corpus corpus;
  for (std::uint64_t i = 0; i < 30; ++i) corpus.add(in_as(0, i, 0xabc + i), 5);
  for (std::uint64_t i = 0; i < 10; ++i) corpus.add(in_as(1, i, 0xdef + i), 5);
  for (std::uint64_t i = 0; i < 20; ++i) corpus.add(in_as(2, i, 0x123 + i), 5);

  const auto top = top_as_entropy_profiles(corpus, *world_, 2, 0, 100);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].as_index, 0u);
  EXPECT_EQ(top[0].addresses, 30u);
  EXPECT_EQ(top[1].as_index, 2u);
  EXPECT_EQ(top[1].name, world_->ases()[2].name);
  EXPECT_EQ(top[0].asn, world_->ases()[0].asn);
}

TEST_F(AsEntropyTest, EntropySamplesMatchAddresses) {
  hitlist::Corpus corpus;
  corpus.add(in_as(0, 1, 0x0123456789abcdefULL), 5);  // entropy 1.0
  corpus.add(in_as(0, 2, 0), 5);                      // entropy 0.0
  const auto top = top_as_entropy_profiles(corpus, *world_, 1, 0, 100);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].entropy.count(), 2u);
  EXPECT_DOUBLE_EQ(top[0].entropy.min(), 0.0);
  EXPECT_DOUBLE_EQ(top[0].entropy.max(), 1.0);
}

TEST_F(AsEntropyTest, WindowFilters) {
  hitlist::Corpus corpus;
  corpus.add(in_as(0, 1, 0x111), 5);
  corpus.add(in_as(0, 2, 0x222), 500);
  const auto early = top_as_entropy_profiles(corpus, *world_, 5, 0, 100);
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].addresses, 1u);
  const auto all = top_as_entropy_profiles(corpus, *world_, 5, 0, 1000);
  EXPECT_EQ(all[0].addresses, 2u);
}

TEST_F(AsEntropyTest, UnroutedAddressesIgnored) {
  hitlist::Corpus corpus;
  corpus.add(*net::Ipv6Address::parse("2001:db8::1"), 5);
  EXPECT_TRUE(top_as_entropy_profiles(corpus, *world_, 5, 0, 100).empty());
}

// Regression: equal-sized ASes used to come out in unordered_map
// iteration order (nondeterministic across runs/platforms, so Fig 4's
// legend order was unstable). Ties now break by ascending ASN.
TEST_F(AsEntropyTest, EqualAddressCountsTieBreakByAsn) {
  hitlist::Corpus corpus;
  // Five ASes with deliberately identical address counts.
  const std::vector<std::uint32_t> as_indices = {4, 1, 3, 0, 2};
  for (std::uint32_t as_index : as_indices) {
    for (std::uint64_t i = 0; i < 7; ++i) {
      corpus.add(in_as(as_index, i, 0x5000 + 64 * as_index + i), 5);
    }
  }

  const auto top = top_as_entropy_profiles(corpus, *world_, 5, 0, 100);
  ASSERT_EQ(top.size(), 5u);
  for (const auto& profile : top) EXPECT_EQ(profile.addresses, 7u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LT(top[i - 1].asn, top[i].asn)
        << "tied ASes must be ordered by ascending ASN";
  }
  // The ordering is a pure function of the corpus — identical on every
  // run and at any analysis thread count.
  AnalysisConfig threaded;
  threaded.threads = 4;
  const auto again =
      top_as_entropy_profiles(corpus, *world_, 5, 0, 100, threaded);
  ASSERT_EQ(again.size(), top.size());
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(again[i].as_index, top[i].as_index);
  }
}

TEST_F(AsEntropyTest, FewerAsesThanRequested) {
  hitlist::Corpus corpus;
  corpus.add(in_as(3, 1, 0x9), 5);
  const auto top = top_as_entropy_profiles(corpus, *world_, 10, 0, 100);
  EXPECT_EQ(top.size(), 1u);
}

}  // namespace
}  // namespace v6::analysis
