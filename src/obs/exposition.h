// Snapshot exposition: Prometheus text format and JSON.
//
// render() turns one Snapshot into a byte-deterministic string (samples
// arrive pre-sorted from Registry::snapshot()):
//   * kPrometheus — the text exposition format scrapers ingest: # HELP /
//     # TYPE headers, `name{label="v"} value` samples, histograms as
//     cumulative `_bucket{le=...}` + `_sum` + `_count`. Spans have no
//     Prometheus representation and are omitted.
//   * kJson — the full snapshot including spans, for dashboards and jq.
//
// lint_prometheus() is the promtool-style validator: a hand-rolled,
// dependency-free line checker used by tests and the CLI's lint-metrics
// subcommand so CI can assert that what we emit actually parses.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "obs/snapshot.h"

namespace v6::obs {

enum class ExpositionFormat : std::uint8_t { kPrometheus, kJson };

// "prom"/"prometheus"/"text" or "json" (case-sensitive); nullopt otherwise.
std::optional<ExpositionFormat> parse_format(std::string_view name);

// File suffix convention for a format ("prom" / "json").
std::string_view format_suffix(ExpositionFormat format);

std::string render(const Snapshot& snapshot, ExpositionFormat format);

// Receives rendered snapshots (e.g. writes them to a file, a socket, a
// test vector). Study's --metrics-out plumbing is one of these.
using SnapshotSink =
    std::function<void(const Snapshot& snapshot, std::string_view rendered)>;

// Validates Prometheus text exposition: every line must be a well-formed
// comment (# HELP name text / # TYPE name {counter,gauge,histogram,
// summary,untyped}), a sample (name[{labels}] value [timestamp]) with a
// legal metric name, label syntax, and numeric value, and TYPE lines must
// precede their family's samples and appear at most once. Returns nullopt
// on success, else "line N: <problem>".
std::optional<std::string> lint_prometheus(std::string_view text);

}  // namespace v6::obs
