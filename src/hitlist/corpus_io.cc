#include "hitlist/corpus_io.h"

#include <algorithm>
#include <array>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "proto/buffer.h"
#include "proto/checksum.h"

namespace v6::hitlist {

namespace {

constexpr char kMagicV1[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '1'};
constexpr char kMagicV2[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '2'};
constexpr std::uint64_t kRecordBytes = 32;
// Streaming chunk size, in records (256 KiB of payload): the bound on
// extra memory for chunked save/load, and the CRC chaining granularity.
constexpr std::uint64_t kChunkRecords = 8192;

std::span<const std::uint8_t> magic_span(const char (&magic)[8]) {
  return {reinterpret_cast<const std::uint8_t*>(magic), 8};
}

// Shared record-section parser for both format versions. `reader` must be
// positioned at the first record; exactly `records * 32` bytes are
// consumed.
Corpus read_records(proto::BufferReader& reader, std::uint64_t records,
                    std::uint64_t observations) {
  Corpus corpus(records);
  std::uint64_t observations_seen = 0;
  for (std::uint64_t i = 0; i < records; ++i) {
    net::Ipv6Address::Bytes address{};
    reader.bytes(address);
    AddressRecord rec;
    rec.address = net::Ipv6Address(address);
    rec.first_seen = reader.u32();
    rec.last_seen = reader.u32();
    rec.count = reader.u32();
    rec.vantage_mask = reader.u32();
    if (reader.truncated()) {
      throw std::runtime_error("corpus snapshot: truncated");
    }
    if (rec.count == 0) {
      throw std::runtime_error("corpus snapshot: empty record");
    }
    // Hostile counts must not wrap the running total: a wrapped sum can
    // collide with the header's observation field and load a forged
    // snapshot as valid.
    if (rec.count > std::numeric_limits<std::uint64_t>::max() -
                        observations_seen) {
      throw std::runtime_error("corpus snapshot: observation count overflow");
    }
    corpus.add_record(rec);
    observations_seen += rec.count;
  }
  if (observations_seen != observations) {
    throw std::runtime_error("corpus snapshot: observation count mismatch");
  }
  return corpus;
}

}  // namespace

void save_corpus(proto::BufferWriter& out, const Corpus& corpus) {
  out.bytes(magic_span(kMagicV2));
  const std::size_t header_begin = out.size();
  out.u64(corpus.size());
  out.u64(corpus.total_observations());
  out.u32(proto::crc32(std::span(out.data()).subspan(header_begin, 16)));
  const std::size_t records_begin = out.size();
  corpus.for_each([&out](const AddressRecord& rec) {
    out.bytes(rec.address.bytes());
    out.u32(rec.first_seen);
    out.u32(rec.last_seen);
    out.u32(rec.count);
    out.u32(rec.vantage_mask);
  });
  out.u32(proto::crc32(std::span(out.data()).subspan(records_begin)));
}

CorpusSnapshotWriter::CorpusSnapshotWriter(std::ostream& out,
                                           std::uint64_t records,
                                           std::uint64_t observations)
    : out_(&out), expected_records_(records) {
  proto::BufferWriter header;
  header.bytes(magic_span(kMagicV2));
  header.u64(records);
  header.u64(observations);
  header.u32(proto::crc32(std::span(header.data()).subspan(8, 16)));
  out_->write(reinterpret_cast<const char*>(header.data().data()),
              static_cast<std::streamsize>(header.size()));
  if (!*out_) throw std::runtime_error("corpus write failed");
  bytes_ = header.size();
  chunk_.reserve(kChunkRecords * kRecordBytes);
}

void CorpusSnapshotWriter::append(const AddressRecord& rec) {
  const auto put_u32 = [this](std::uint32_t v) {
    chunk_.push_back(static_cast<std::uint8_t>(v >> 24));
    chunk_.push_back(static_cast<std::uint8_t>(v >> 16));
    chunk_.push_back(static_cast<std::uint8_t>(v >> 8));
    chunk_.push_back(static_cast<std::uint8_t>(v));
  };
  const auto& address = rec.address.bytes();
  chunk_.insert(chunk_.end(), address.begin(), address.end());
  put_u32(rec.first_seen);
  put_u32(rec.last_seen);
  put_u32(rec.count);
  put_u32(rec.vantage_mask);
  ++appended_;
  if (chunk_.size() >= kChunkRecords * kRecordBytes) flush_chunk();
}

void CorpusSnapshotWriter::flush_chunk() {
  if (chunk_.empty()) return;
  // Chained CRC over successive chunks equals the one-shot CRC over the
  // whole records section — the v2 trailer contract.
  records_crc_ = proto::crc32(chunk_, records_crc_);
  out_->write(reinterpret_cast<const char*>(chunk_.data()),
              static_cast<std::streamsize>(chunk_.size()));
  if (!*out_) throw std::runtime_error("corpus write failed");
  bytes_ += chunk_.size();
  chunk_.clear();
}

std::size_t CorpusSnapshotWriter::finish() {
  if (finished_) throw std::logic_error("corpus snapshot: double finish");
  finished_ = true;
  if (appended_ != expected_records_) {
    throw std::logic_error(
        "corpus snapshot: appended record count disagrees with header");
  }
  flush_chunk();
  proto::BufferWriter trailer;
  trailer.u32(records_crc_);
  out_->write(reinterpret_cast<const char*>(trailer.data().data()),
              static_cast<std::streamsize>(trailer.size()));
  if (!*out_) throw std::runtime_error("corpus write failed");
  bytes_ += trailer.size();
  return bytes_;
}

std::size_t save_corpus(std::ostream& out, const Corpus& corpus) {
  CorpusSnapshotWriter writer(out, corpus.size(),
                              corpus.total_observations());
  corpus.for_each(
      [&writer](const AddressRecord& rec) { writer.append(rec); });
  return writer.finish();
}

Corpus load_corpus(std::span<const std::uint8_t> bytes) {
  proto::BufferReader reader(bytes);

  std::uint8_t magic[8];
  reader.bytes(magic);
  const bool v2 = !reader.truncated() &&
                  std::equal(std::begin(magic), std::end(magic), kMagicV2);
  const bool v1 = !reader.truncated() && !v2 &&
                  std::equal(std::begin(magic), std::end(magic), kMagicV1);
  if (!v1 && !v2) {
    throw std::runtime_error("corpus snapshot: bad magic");
  }
  const std::uint64_t records = reader.u64();
  const std::uint64_t observations = reader.u64();
  if (reader.truncated()) {
    throw std::runtime_error("corpus snapshot: truncated header");
  }
  if (v2) {
    const std::uint32_t header_crc = reader.u32();
    if (reader.truncated()) {
      throw std::runtime_error("corpus snapshot: truncated header");
    }
    if (header_crc != proto::crc32(bytes.subspan(8, 16))) {
      throw std::runtime_error("corpus snapshot: header CRC mismatch");
    }
  }
  // The record count is untrusted input and sizes the table allocation
  // below: insist it agrees exactly with the payload that is actually
  // present (32 bytes per record, plus the v2 trailer CRC) before
  // allocating anything. The division-form check also rejects counts
  // whose byte size would overflow 64 bits.
  const std::uint64_t trailer = v2 ? 4 : 0;
  if (reader.remaining() < trailer ||
      records > (reader.remaining() - trailer) / kRecordBytes ||
      records * kRecordBytes != reader.remaining() - trailer) {
    throw std::runtime_error(
        "corpus snapshot: record count disagrees with payload size");
  }
  if (v2) {
    // Whole-section CRC before parsing: a flipped bit inside any record
    // fails here rather than loading as a plausible-but-wrong corpus.
    const std::size_t records_begin = bytes.size() - reader.remaining();
    const auto section =
        bytes.subspan(records_begin, records * kRecordBytes);
    proto::BufferReader trailer_reader(bytes.subspan(bytes.size() - 4));
    if (trailer_reader.u32() != proto::crc32(section)) {
      throw std::runtime_error("corpus snapshot: records CRC mismatch");
    }
  }

  Corpus corpus = read_records(reader, records, observations);
  if (v2) reader.skip(4);  // the already-verified records CRC
  if (reader.remaining() != 0) {
    throw std::runtime_error("corpus snapshot: trailing bytes");
  }
  return corpus;
}

Corpus load_corpus(std::istream& in) {
  const auto read_exact = [&in](std::uint8_t* dst, std::size_t n) {
    in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    return static_cast<std::size_t>(in.gcount()) == n;
  };

  std::array<std::uint8_t, 8> magic{};
  if (!read_exact(magic.data(), magic.size())) {
    throw std::runtime_error("corpus snapshot: bad magic");
  }
  const bool v2 = std::equal(magic.begin(), magic.end(),
                             magic_span(kMagicV2).begin());
  const bool v1 = !v2 && std::equal(magic.begin(), magic.end(),
                                    magic_span(kMagicV1).begin());
  if (!v1 && !v2) {
    throw std::runtime_error("corpus snapshot: bad magic");
  }

  std::array<std::uint8_t, 16> counts{};
  if (!read_exact(counts.data(), counts.size())) {
    throw std::runtime_error("corpus snapshot: truncated header");
  }
  proto::BufferReader counts_reader{std::span<const std::uint8_t>(counts)};
  const std::uint64_t records = counts_reader.u64();
  const std::uint64_t observations = counts_reader.u64();
  if (v2) {
    std::array<std::uint8_t, 4> crc_bytes{};
    if (!read_exact(crc_bytes.data(), crc_bytes.size())) {
      throw std::runtime_error("corpus snapshot: truncated header");
    }
    proto::BufferReader crc_reader{std::span<const std::uint8_t>(crc_bytes)};
    if (crc_reader.u32() != proto::crc32(counts)) {
      throw std::runtime_error("corpus snapshot: header CRC mismatch");
    }
  }

  // Records, in bounded chunks. A hostile record count cannot trigger a
  // giant allocation here: the table's eager reserve is capped (see
  // Corpus's constructor) and the read buffer is one chunk — an absurd
  // count just fails with "truncated" at the first short read.
  Corpus corpus(records);
  std::uint64_t observations_seen = 0;
  std::uint32_t records_crc = 0;
  std::vector<std::uint8_t> chunk;
  std::uint64_t remaining = records;
  while (remaining > 0) {
    const std::uint64_t n = std::min(remaining, kChunkRecords);
    chunk.resize(static_cast<std::size_t>(n * kRecordBytes));
    if (!read_exact(chunk.data(), chunk.size())) {
      throw std::runtime_error("corpus snapshot: truncated");
    }
    records_crc = proto::crc32(chunk, records_crc);
    proto::BufferReader reader{std::span<const std::uint8_t>(chunk)};
    for (std::uint64_t i = 0; i < n; ++i) {
      net::Ipv6Address::Bytes address{};
      reader.bytes(address);
      AddressRecord rec;
      rec.address = net::Ipv6Address(address);
      rec.first_seen = reader.u32();
      rec.last_seen = reader.u32();
      rec.count = reader.u32();
      rec.vantage_mask = reader.u32();
      if (rec.count == 0) {
        throw std::runtime_error("corpus snapshot: empty record");
      }
      if (rec.count > std::numeric_limits<std::uint64_t>::max() -
                          observations_seen) {
        throw std::runtime_error(
            "corpus snapshot: observation count overflow");
      }
      corpus.add_record(rec);
      observations_seen += rec.count;
    }
    remaining -= n;
  }

  if (v2) {
    std::array<std::uint8_t, 4> crc_bytes{};
    if (!read_exact(crc_bytes.data(), crc_bytes.size())) {
      throw std::runtime_error("corpus snapshot: truncated");
    }
    proto::BufferReader crc_reader{std::span<const std::uint8_t>(crc_bytes)};
    if (crc_reader.u32() != records_crc) {
      throw std::runtime_error("corpus snapshot: records CRC mismatch");
    }
  }
  if (observations_seen != observations) {
    throw std::runtime_error("corpus snapshot: observation count mismatch");
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error("corpus snapshot: trailing bytes");
  }
  return corpus;
}

}  // namespace v6::hitlist
