// The metrics registry: monotonic counters, gauges, and fixed-bucket
// histograms, safe to hammer from every collection/analysis thread with no
// locks on the increment path.
//
// Design: every counter owns a small array of cache-line-padded atomic
// cells ("stripes"). A thread picks its stripe once (a thread-local id
// assigned on first touch) and increments it with one relaxed fetch_add —
// no mutex, no CAS loop, no false sharing between concurrently
// incrementing threads. snapshot() folds the stripes in ascending stripe
// order; because the folds are integer sums the result is independent of
// fold order and of which thread wrote which stripe, so a snapshot taken
// after writers quiesce is a pure function of the increments issued —
// the determinism guarantee the bit-identity tests lean on. A snapshot
// taken *while* writers race is torn-free (all loads are atomic) but may
// observe any prefix of in-flight increments.
//
// Handles (Counter/Gauge/Histogram) are trivially copyable POD-sized
// values. A default-constructed handle is a no-op sink: components hold
// handles unconditionally and skip the null-registry dance — unwired
// instruments cost one predictable branch.
//
// Registration is keyed by (name, labels): registering the same instrument
// twice returns a handle onto the same cells, so independent components
// can share one family (e.g. every Zmap6Scanner instance increments the
// same v6_scan_probes_total). Registration takes a mutex; do it at
// construction/wiring time, not per event.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.h"
#include "obs/trace.h"

namespace v6::obs {

namespace detail {

// Stripe count: enough that the handful of worker threads a study runs
// land on distinct cache lines with high probability. Must be a power of
// two (the thread id is masked, never divided).
inline constexpr unsigned kStripes = 16;

struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterCells {
  PaddedCell stripes[kStripes];
};

struct GaugeCell {
  // Double bits; updated with store (set) or CAS (add).
  std::atomic<std::uint64_t> bits{0};
};

struct HistogramCells {
  std::vector<double> bounds;  // ascending finite upper edges
  // bounds.size() + 1 buckets (last = +Inf), plus striped observation
  // tallies would be overkill: observations are per-stage, not per-packet,
  // so plain relaxed atomics suffice.
  std::deque<std::atomic<std::uint64_t>> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum_bits{0};  // double bits, CAS-added
};

// This thread's stripe index (assigned round-robin on first use).
unsigned thread_stripe() noexcept;

}  // namespace detail

class Registry;

// Monotonic counter handle. inc() is wait-free: one relaxed fetch_add on
// this thread's stripe.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t delta = 1) const noexcept {
    if (cells_ != nullptr) {
      cells_->stripes[detail::thread_stripe()].value.fetch_add(
          delta, std::memory_order_relaxed);
    }
  }
  bool wired() const noexcept { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCells* cells) : cells_(cells) {}
  detail::CounterCells* cells_ = nullptr;
};

// Gauge handle: a settable double. set() is a relaxed store; add() a CAS
// loop (rare path — gauges record stage-granularity facts, not packets).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept;
  void add(double delta) const noexcept;
  bool wired() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

// Fixed-bucket histogram handle. observe() is lock-free: one relaxed
// fetch_add on the bucket, one on the count, one CAS-add on the sum.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const noexcept;
  bool wired() const noexcept { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCells* cells) : cells_(cells) {}
  detail::HistogramCells* cells_ = nullptr;
};

// Exponential-ish microsecond buckets for stage timings: 100µs .. 10s.
std::vector<double> default_duration_buckets_us();

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registers (or re-opens) an instrument. The (name, labels) pair is the
  // identity; help text is taken from the first registration. Registering
  // an existing identity with a different type returns the existing
  // instrument's handle type only if it matches — a mismatch returns a
  // no-op handle (never crashes a run over a metrics name collision).
  // Re-registering a histogram with different bucket bounds (compared
  // after sort + dedup) is the same kind of clash and also yields a no-op
  // handle: silently binding to the first registration's buckets would
  // misfile the second caller's observations.
  Counter counter(std::string_view name, std::string_view help = "",
                  Labels labels = {});
  Gauge gauge(std::string_view name, std::string_view help = "",
              Labels labels = {});
  Histogram histogram(std::string_view name, std::string_view help = "",
                      std::vector<double> bounds = {}, Labels labels = {});

  // The registry's span tracer (sim-time-stamped pipeline stages).
  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }

  // Folds every stripe into plain values, sorted by (name, labels), plus a
  // copy of the tracer's spans. Safe concurrently with writers (see the
  // header comment for the consistency model).
  Snapshot snapshot() const;

  // Number of registered instruments (identities, not handles).
  std::size_t instrument_count() const;

 private:
  struct Entry {
    MetricType type;
    std::string name;
    std::string help;
    Labels labels;
    detail::CounterCells* counter = nullptr;
    detail::GaugeCell* gauge = nullptr;
    detail::HistogramCells* histogram = nullptr;
  };

  Entry* find_or_create(MetricType type, std::string_view name,
                        std::string_view help, Labels&& labels,
                        std::vector<double>&& bounds);

  mutable std::mutex mu_;
  // deques: registration never moves existing cells, so handles stay
  // valid for the registry's lifetime.
  std::deque<detail::CounterCells> counter_cells_;
  std::deque<detail::GaugeCell> gauge_cells_;
  std::deque<detail::HistogramCells> histogram_cells_;
  std::deque<Entry> entries_;
  std::map<std::string, Entry*> index_;  // keyed by name + serialized labels
  Tracer tracer_;
};

}  // namespace v6::obs
