# Empty dependencies file for backscan_aliases.
# This may be replaced when dependencies are built.
