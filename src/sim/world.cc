#include "sim/world.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/addressing.h"
#include "sim/feistel.h"

namespace v6::sim {

namespace {

constexpr std::uint64_t kSiteSlotBits = 20;
constexpr std::uint64_t kSiteSlotCount = std::uint64_t{1} << kSiteSlotBits;
constexpr std::uint32_t kSubnetsPerSite = 4;
constexpr std::uint32_t kIfacesPerRouter = 2;
constexpr std::uint64_t kCellSlotMask = 0xfffffff;  // 28 bits

// Domain-separation tags for derived randomness.
constexpr std::uint64_t kTagSiteRotation = 0x517e;
constexpr std::uint64_t kTagCellAttach = 0xce11;
constexpr std::uint64_t kTagCellAlias = 0xa11a5;
constexpr std::uint64_t kTagMobility = 0xa77ac4;

double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t next_pow2(std::uint64_t n) noexcept {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Per-country wardriving intensity multiplier: Germany and its neighbours
// are saturated with WiGLE/OpenBMap coverage (hence the paper's 75%-German
// geolocation skew); much of Asia is sparsely covered.
double wardriving_factor(geo::CountryCode c) {
  const std::string code = c.to_string();
  if (code == "DE") return 2.0;
  if (code == "LU" || code == "NL" || code == "AT" || code == "CH" ||
      code == "FR" || code == "BE") {
    return 0.9;
  }
  if (code == "US" || code == "GB" || code == "PL" || code == "CZ" ||
      code == "SE") {
    return 0.6;
  }
  if (code == "MX" || code == "IN") return 0.35;
  return 0.22;
}

struct VantageSpec {
  const char* country;
  int count;
};

// §3: 27 servers in 20 countries — 6 US, 2 JP, 2 DE, 1 each elsewhere.
constexpr VantageSpec kVantagePlan[] = {
    {"US", 6}, {"JP", 2}, {"DE", 2}, {"AU", 1}, {"BH", 1}, {"BR", 1},
    {"BG", 1}, {"HK", 1}, {"IN", 1}, {"ID", 1}, {"MX", 1}, {"NL", 1},
    {"PL", 1}, {"SG", 1}, {"ZA", 1}, {"KR", 1}, {"ES", 1}, {"SE", 1},
    {"TW", 1}, {"GB", 1},
};

IidStrategy sample_strategy(const StrategyWeights& weights, util::Rng& rng) {
  return static_cast<IidStrategy>(rng.weighted(weights));
}

}  // namespace

std::uint64_t World::rotation_generation(const AsInfo& as,
                                         util::SimTime t) const {
  if (as.profile.rotation_period <= 0) return 0;
  const util::SimTime rel = t - config_.study_start;
  if (rel <= 0) return 0;
  return static_cast<std::uint64_t>(rel / as.profile.rotation_period);
}

std::uint64_t World::site_prefix_hi(SiteId site, util::SimTime t) const {
  const Site& s = sites_[site];
  const AsInfo& as = ases_[s.as_index];
  const std::uint64_t gen = rotation_generation(as, t);
  const FeistelPermutation perm(kSiteSlotCount,
                                as.seed ^ util::mix64(gen) ^ kTagSiteRotation);
  const std::uint64_t slot = perm.apply(s.local_index);
  return as.prefix_hi | (kRegionSite << 28) | (slot << 8);
}

World::Attachment World::attachment(DeviceId device, util::SimTime t) const {
  const Device& dev = devices_[device];
  if (dev.mobility.mobile && dev.mobility.carrier_count > 0) {
    const auto epoch =
        static_cast<std::uint64_t>((t - config_.study_start) / kAttachEpoch);
    const std::uint64_t roll =
        util::mix64(dev.seed ^ util::mix64(epoch) ^ kTagMobility);
    if (to_unit(roll) < dev.mobility.cellular_fraction) {
      const auto which = static_cast<std::uint8_t>(
          util::mix64(roll) % dev.mobility.carrier_count);
      const std::uint32_t as_index = dev.mobility.carrier_as[which];
      const AsInfo& carrier = ases_[as_index];
      const FeistelPermutation perm(
          carrier.cell_domain,
          carrier.seed ^ util::mix64(epoch) ^ kTagCellAttach);
      const std::uint64_t slot = perm.apply(dev.mobility.carrier_pos[which]);
      return {true, true, as_index,
              carrier.prefix_hi | (kRegionCell << 28) | slot};
    }
  }
  // Home (or relocated) site attachment.
  SiteId home = dev.site;
  if (dev.mobility.relocation_site != kNoSite &&
      t >= dev.mobility.relocation_time) {
    home = dev.mobility.relocation_site;
  }
  if (home == kNoSite) {
    // Cellular-only device rolled "WiFi": park it on carrier 0 anyway.
    const std::uint32_t as_index = dev.mobility.carrier_as[0];
    const AsInfo& carrier = ases_[as_index];
    const auto epoch =
        static_cast<std::uint64_t>((t - config_.study_start) / kAttachEpoch);
    const FeistelPermutation perm(
        carrier.cell_domain,
        carrier.seed ^ util::mix64(epoch) ^ kTagCellAttach);
    const std::uint64_t slot = perm.apply(dev.mobility.carrier_pos[0]);
    return {true, true, as_index,
            carrier.prefix_hi | (kRegionCell << 28) | slot};
  }
  const Site& site = sites_[home];
  std::uint64_t subnet = 0;
  if (dev.kind != DeviceKind::kCpe) {
    subnet = 1 + util::mix64(dev.seed ^ 0x5b) % (kSubnetsPerSite - 1);
  }
  return {true, false, site.as_index, site_prefix_hi(home, t) | subnet};
}

net::Ipv6Address World::device_address(DeviceId device,
                                       util::SimTime t) const {
  const Device& dev = devices_[device];
  if (dev.kind == DeviceKind::kServer) return server_address(device);
  const Attachment att = attachment(device, t);
  return address_for(dev, att.prefix_hi, t);
}

net::Ipv6Address World::router_address(std::uint32_t as_index,
                                       std::uint32_t router,
                                       std::uint32_t interface) const {
  const AsInfo& as = ases_[as_index];
  const std::uint64_t hi = as.prefix_hi | (kRegionInfra << 28) |
                           (std::uint64_t{router} << 16) | interface;
  return net::Ipv6Address::from_u64(hi, 1);
}

net::Ipv6Address World::server_address(DeviceId device) const {
  const Device& dev = devices_[device];
  const AsInfo& as = ases_[dev.as_index];
  const std::uint64_t index = device - as.first_server;
  const std::uint64_t hi = as.prefix_hi | (kRegionServer << 28) | index;
  // Server addresses are stable: strategy functions that depend on time
  // (none of the server strategies do) would still get t=0.
  return address_for(dev, hi, 0);
}

std::vector<net::Ipv6Address> World::dns_seed_addresses() const {
  std::vector<net::Ipv6Address> seeds;
  for (const AsInfo& as : ases_) {
    for (std::uint32_t s = 0; s < as.server_count; ++s) {
      const DeviceId d = as.first_server + s;
      if (util::mix64(devices_[d].seed ^ 0xd25) % 5 < 2) {
        seeds.push_back(server_address(d));
      }
    }
    // CDN-style hostnames resolve into aliased datacenter space — that is
    // how real campaigns first learn of those prefixes.
    for (std::uint32_t i = 0; i < as.profile.alias_slash48_count; ++i) {
      const std::uint64_t base =
          as.prefix_hi | (kRegionAlias << 28) | (std::uint64_t{i} << 16);
      // Several names per /48, in distinct /64s.
      for (std::uint32_t k = 0; k < 3; ++k) {
        const std::uint64_t which = util::mix64(as.seed ^ 0xcd4 ^ i ^
                                                (std::uint64_t{k} << 40));
        seeds.push_back(net::Ipv6Address::from_u64(base | (which & 0xffff),
                                                   util::mix64(which)));
      }
    }
  }
  return seeds;
}

namespace {

// Whether the carrier filters unsolicited inbound to this subscriber —
// independent of the device's home-site firewall (handsets are behind the
// carrier's packet gateway when on cellular).
bool cell_firewalled(const AsInfo& carrier, const Device& dev) {
  const std::uint64_t h = util::mix64(carrier.seed ^ dev.seed ^ 0xf13e);
  return to_unit(h) < carrier.profile.firewall_fraction;
}

bool aliased_cell_slot(const AsInfo& as, std::uint64_t slot) {
  if (as.profile.cellular_fully_aliased) return true;
  if (as.profile.aliased_site_fraction <= 0.0) return false;
  const std::uint64_t h = util::mix64(as.seed ^ kTagCellAlias ^ slot);
  return to_unit(h) < as.profile.aliased_site_fraction;
}

}  // namespace

World::Resolution World::resolve(const net::Ipv6Address& address,
                                 util::SimTime t) const {
  Resolution res;
  const std::uint64_t hi = address.hi64();
  const auto as_it = as_by_prefix_.find(hi & ~std::uint64_t{0xffffffff});
  if (as_it == as_by_prefix_.end()) return res;
  const std::uint32_t as_index = as_it->second;
  const AsInfo& as = ases_[as_index];
  res.as_index = as_index;
  if (in_outage(as_index, t)) return res;  // the whole AS is dark

  const std::uint64_t low32 = hi & 0xffffffff;
  const std::uint64_t region = low32 >> 28;

  auto try_device = [&](DeviceId d, bool firewalled) -> bool {
    const Device& dev = devices_[d];
    if (t < dev.active_start || t >= dev.active_end) return false;
    if (device_address(d, t) != address) return false;
    res.kind = Resolution::Kind::kDevice;
    res.device = d;
    // Two distinct silences: a filter in front of the host (drops every
    // protocol) vs a host that merely ignores echo (but still RSTs TCP).
    res.firewalled = firewalled;
    res.icmp_silent = !dev.responds_icmp;
    return true;
  };

  switch (region) {
    case kRegionInfra: {
      const std::uint64_t router = (low32 >> 16) & 0xfff;
      const std::uint64_t iface = low32 & 0xffff;
      if (router < as.router_count && iface < kIfacesPerRouter &&
          address.iid() == 1) {
        res.kind = Resolution::Kind::kRouter;
        res.router = static_cast<std::uint32_t>(router);
      }
      return res;
    }
    case kRegionServer: {
      const std::uint64_t index = low32 & kCellSlotMask;
      if (index < as.server_count) {
        const DeviceId d = as.first_server + static_cast<DeviceId>(index);
        try_device(d, devices_[d].firewalled);
      }
      return res;
    }
    case kRegionSite: {
      const std::uint64_t slot = (low32 >> 8) & (kSiteSlotCount - 1);
      const std::uint64_t subnet = low32 & 0xff;
      const std::uint64_t gen = rotation_generation(as, t);
      const FeistelPermutation perm(
          kSiteSlotCount, as.seed ^ util::mix64(gen) ^ kTagSiteRotation);
      const std::uint64_t local = perm.invert(slot);
      if (local >= as.site_count) return res;
      const Site& site = sites_[as.first_site + local];
      // Exact device in this /64?
      const bool lan_firewalled = site.firewalled && !site.aliased;
      if (subnet == 0 && site.cpe != kNoDevice) {
        if (try_device(site.cpe, false)) return res;
      }
      if (subnet >= 1 && subnet < kSubnetsPerSite) {
        for (DeviceId d = site.first_device;
             d < site.first_device + site.device_count; ++d) {
          if (try_device(d, lan_firewalled)) return res;
        }
        for (const DeviceId d : site.adopted) {
          if (try_device(d, lan_firewalled)) return res;
        }
      }
      if (site.aliased && subnet < kSubnetsPerSite) {
        res.kind = Resolution::Kind::kAlias;
      }
      return res;
    }
    case kRegionCell: {
      const std::uint64_t slot = low32 & kCellSlotMask;
      if (slot < as.cell_domain) {
        const auto epoch = static_cast<std::uint64_t>(
            (t - config_.study_start) / kAttachEpoch);
        const FeistelPermutation perm(
            as.cell_domain, as.seed ^ util::mix64(epoch) ^ kTagCellAttach);
        const std::uint64_t pos = perm.invert(slot);
        if (pos < as.subscribers.size()) {
          const DeviceId d = as.subscribers[pos];
          const Attachment att = attachment(d, t);
          if (att.cellular && att.prefix_hi == hi &&
              try_device(d, cell_firewalled(as, devices_[d]))) {
            return res;
          }
        }
      }
      if (aliased_cell_slot(as, slot)) {
        res.kind = Resolution::Kind::kAlias;
      }
      return res;
    }
    case kRegionAlias: {
      const std::uint64_t a48 = (low32 >> 16) & 0xfff;
      if (a48 < as.profile.alias_slash48_count) {
        res.kind = Resolution::Kind::kAlias;
      }
      return res;
    }
    default:
      return res;
  }
}

std::optional<SiteId> World::site_at(const net::Ipv6Address& address,
                                     util::SimTime t) const {
  const std::uint64_t hi = address.hi64();
  const auto as_it = as_by_prefix_.find(hi & ~std::uint64_t{0xffffffff});
  if (as_it == as_by_prefix_.end()) return std::nullopt;
  const AsInfo& as = ases_[as_it->second];
  const std::uint64_t low32 = hi & 0xffffffff;
  if ((low32 >> 28) != kRegionSite) return std::nullopt;
  const std::uint64_t slot = (low32 >> 8) & (kSiteSlotCount - 1);
  const std::uint64_t gen = rotation_generation(as, t);
  const FeistelPermutation perm(kSiteSlotCount,
                                as.seed ^ util::mix64(gen) ^ kTagSiteRotation);
  const std::uint64_t local = perm.invert(slot);
  if (local >= as.site_count) return std::nullopt;
  return as.first_site + static_cast<SiteId>(local);
}

std::optional<std::uint32_t> World::as_index_of(
    const net::Ipv6Address& a) const {
  const auto it = as_by_prefix_.find(a.hi64() & ~std::uint64_t{0xffffffff});
  if (it == as_by_prefix_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> World::as_index_of_ipv4(
    net::Ipv4Address v4) const {
  const auto it = as_by_ipv4_.find(v4.value() & 0xffff0000);
  if (it == as_by_ipv4_.end()) return std::nullopt;
  return it->second;
}

bool World::in_outage(std::uint32_t as_index, util::SimTime t) const {
  const AsInfo& as = ases_[as_index];
  return as.outage_duration > 0 && t >= as.outage_start &&
         t < as.outage_start + as.outage_duration;
}

bool World::serves_tcp(DeviceId device, std::uint16_t port) const {
  const Device& dev = devices_[device];
  const std::uint64_t h =
      util::mix64(dev.seed ^ 0x7c9 ^ (std::uint64_t{port} << 32));
  const double roll = static_cast<double>(h >> 11) * 0x1.0p-53;
  switch (dev.kind) {
    case DeviceKind::kServer:
      // Most datacenter boxes serve web; 443 slightly ahead of 80.
      return roll < (port == 443 ? 0.75 : (port == 80 ? 0.65 : 0.02));
    case DeviceKind::kCpe:
      // Management UIs occasionally exposed on the WAN side.
      return port == 443 && roll < 0.15;
    default:
      return false;
  }
}

std::vector<net::Ipv6Prefix> World::aliased_datacenter_prefixes() const {
  std::vector<net::Ipv6Prefix> out;
  for (const AsInfo& as : ases_) {
    for (std::uint32_t i = 0; i < as.profile.alias_slash48_count; ++i) {
      const std::uint64_t hi =
          as.prefix_hi | (kRegionAlias << 28) | (std::uint64_t{i} << 16);
      out.emplace_back(net::Ipv6Address::from_u64(hi, 0), 48);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

World World::generate(const WorldConfig& config) {
  World w;
  w.config_ = config;
  w.ouis_ = OuiRegistry::standard();
  util::Rng rng(config.seed);

  const auto all = geo::all_countries();
  const std::size_t n_countries =
      std::min(config.country_count, all.size());
  w.countries_.assign(all.begin(),
                      all.begin() + static_cast<std::ptrdiff_t>(n_countries));
  double weight_total = 0.0;
  for (const auto& c : w.countries_) weight_total += c.client_weight;

  // ---- Pass 1: create ASes per country ----
  struct CountryAses {
    std::vector<std::uint32_t> mobile;
    std::vector<std::uint32_t> broadband;
  };
  std::vector<CountryAses> per_country(n_countries);

  auto add_as = [&](std::uint16_t country_index, AsType type,
                    std::string name) -> std::uint32_t {
    const auto index = static_cast<std::uint32_t>(w.ases_.size());
    AsInfo as;
    as.asn = 4200 + index * 3 + (index % 7);
    as.name = std::move(name);
    as.country_index = country_index;
    as.type = type;
    as.prefix_hi = (std::uint64_t{0x2a00} << 48) |
                   (static_cast<std::uint64_t>(index) << 32);
    as.seed = rng.fork(index).next();
    util::Rng as_rng(as.seed);
    as.profile = make_profile(type, as_rng);
    as.ipv4_base = 0x0b000000u + index * 0x10000u;
    w.as_by_prefix_[as.prefix_hi] = index;
    w.as_by_ipv4_[as.ipv4_base] = index;
    w.ases_.push_back(std::move(as));
    return index;
  };

  for (std::uint16_t ci = 0; ci < n_countries; ++ci) {
    const auto& country = w.countries_[ci];
    const double weight = country.client_weight / weight_total;
    const auto name = [&](const char* role, int k) {
      return std::string(country.name) + " " + role + " " +
             std::to_string(k + 1);
    };
    const int mobiles = std::clamp(static_cast<int>(weight * 25.0), 1, 3);
    const int broadbands = std::clamp(static_cast<int>(weight * 30.0), 1, 4);
    const int clouds = weight > 0.005 ? 2 : 1;
    const int edus = weight > 0.01 ? 1 : 0;
    for (int k = 0; k < mobiles; ++k) {
      per_country[ci].mobile.push_back(
          add_as(ci, AsType::kIspMobile, name("Mobile", k)));
    }
    for (int k = 0; k < broadbands; ++k) {
      per_country[ci].broadband.push_back(
          add_as(ci, AsType::kIspBroadband, name("Broadband", k)));
    }
    for (int k = 0; k < clouds; ++k) {
      add_as(ci, AsType::kCloud, name("Cloud", k));
    }
    for (int k = 0; k < edus; ++k) {
      add_as(ci, AsType::kEducation, name("University", k));
    }
    add_as(ci, AsType::kTransit, name("Backbone", 0));
  }

  // ---- Named exemplar ASes (the paper's §4.3 case studies) ----
  auto rename = [&](std::string_view country_code, bool mobile, int nth,
                    const char* name) -> AsInfo* {
    for (std::uint16_t ci = 0; ci < n_countries; ++ci) {
      if (w.countries_[ci].code.to_string() != country_code) continue;
      const auto& list =
          mobile ? per_country[ci].mobile : per_country[ci].broadband;
      if (nth < static_cast<int>(list.size())) {
        AsInfo& as = w.ases_[list[static_cast<std::size_t>(nth)]];
        as.name = name;
        // The paper's named exemplar carriers are not aliased networks;
        // aliasing stays with the anonymous long tail (its "36 ASes").
        as.profile.cellular_fully_aliased = false;
        as.profile.aliased_site_fraction =
            std::min(as.profile.aliased_site_fraction, 0.05);
        return &as;
      }
    }
    return nullptr;
  };
  using S = IidStrategy;
  if (AsInfo* jio = rename("IN", true, 0, "Reliance Jio")) {
    // Two coexisting address classes: fully random and "structured low"
    // (only the lower four IID bytes random) — Fig 4's signature.
    jio->profile.client_strategies = {};
    weight(jio->profile.client_strategies, S::kRandomEphemeral) = 0.60;
    weight(jio->profile.client_strategies, S::kStructuredLow) = 0.33;
    weight(jio->profile.client_strategies, S::kRandomStable) = 0.07;
  }
  if (AsInfo* tsel = rename("ID", true, 0, "Telekomunikasi Selular")) {
    tsel->profile.client_strategies = {};
    weight(tsel->profile.client_strategies, S::kRandomEphemeral) = 0.40;
    weight(tsel->profile.client_strategies, S::kStructuredLow) = 0.35;
    weight(tsel->profile.client_strategies, S::kDhcpSequential) = 0.25;
  }
  rename("US", true, 0, "T-Mobile US");
  rename("CN", true, 0, "China Mobile");
  rename("CN", false, 0, "ChinaNet");
  if (AsInfo* dtag = rename("DE", false, 0, "Deutsche Telekom")) {
    // German broadband ships AVM Fritz!Box CPE almost exclusively; its
    // EUI-64 WAN addressing powers the §5.3 geolocation result.
    for (std::size_t mi = 0; mi < w.ouis_.manufacturers().size(); ++mi) {
      if (w.ouis_.manufacturers()[mi].name == "AVM GmbH") {
        dtag->cpe_maker = static_cast<std::uint32_t>(mi);
      }
    }
  }

  // ---- Pass 2: sites, devices, subscribers ----
  const auto maker_list_for = [&](DeviceKind kind) {
    return w.ouis_.makers_for_kind(kind);
  };
  const auto cpe_makers = maker_list_for(DeviceKind::kCpe);
  const auto desktop_makers = maker_list_for(DeviceKind::kDesktop);
  const auto mobile_makers = maker_list_for(DeviceKind::kMobile);
  const auto iot_makers = maker_list_for(DeviceKind::kIot);
  const auto server_makers = maker_list_for(DeviceKind::kServer);

  std::vector<std::uint32_t> mac_counter(w.ouis_.manufacturers().size(), 1);
  std::optional<std::size_t> avm_maker;
  for (std::size_t mi = 0; mi < w.ouis_.manufacturers().size(); ++mi) {
    if (w.ouis_.manufacturers()[mi].name == "AVM GmbH") avm_maker = mi;
  }

  auto pick_maker = [&](const std::vector<std::size_t>& candidates,
                        util::Rng& r) -> std::size_t {
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (const auto m : candidates) {
      weights.push_back(w.ouis_.manufacturer(m).weight);
    }
    return candidates[r.weighted(weights)];
  };

  auto assign_mac = [&](std::size_t maker_index, util::Rng& r)
      -> net::MacAddress {
    const Manufacturer& maker = w.ouis_.manufacturer(maker_index);
    const net::Oui oui =
        maker.ouis[r.bounded(maker.ouis.size())];
    std::uint32_t suffix;
    if (maker.reuses_macs && r.chance(0.06)) {
      // Recycled MAC: drawn from a tiny shared pool, so the same EUI-64
      // IID shows up on devices scattered across the world.
      suffix = static_cast<std::uint32_t>(
          util::mix64(static_cast<std::uint64_t>(maker_index) ^ 0x4ec7c1ed ^
                      r.bounded(16)) &
          0xffffff);
    } else {
      // Suffixes scatter across the 24-bit space (production runs and
      // product lines), rather than counting up densely. This is what
      // makes per-OUI offset inference discriminative: a wired MAC's only
      // near neighbour in BSSID space is its own access point.
      suffix = static_cast<std::uint32_t>(
          util::mix64((static_cast<std::uint64_t>(maker_index) << 32) ^
                      mac_counter[maker_index]++) &
          0xffffff);
    }
    return net::MacAddress::from_u64(
        (static_cast<std::uint64_t>(oui.value()) << 24) | (suffix & 0xffffff));
  };

  auto client_strategy = [&](const AsInfo& as, DeviceKind kind,
                             std::size_t maker_index,
                             util::Rng& r) -> IidStrategy {
    const Manufacturer& maker = w.ouis_.manufacturer(maker_index);
    double eui64_p = maker.eui64_propensity;
    if (kind == DeviceKind::kMobile) eui64_p *= 0.12;
    if (kind == DeviceKind::kDesktop) eui64_p *= 0.10;
    if (r.chance(eui64_p)) return S::kEui64;
    StrategyWeights weights = as.profile.client_strategies;
    weight(weights, S::kEui64) = 0.0;
    // Sparse temporary addressing is a phone/desktop OS behaviour; IoT
    // firmware uses stable or vendor-specific schemes.
    if (kind == DeviceKind::kIot) weight(weights, S::kSparseEphemeral) = 0.0;
    return sample_strategy(weights, r);
  };

  // Upper bound for reservation: sites + clients + servers + cellular.
  w.sites_.reserve(config.total_sites + 64);
  w.devices_.reserve(static_cast<std::size_t>(
      config.total_sites * (1.0 + config.devices_per_site_mean) +
      config.total_sites * config.cellular_only_ratio + 4096));

  // Client-device churn: a bit under half the population is present for
  // the whole study; the rest appear for a window averaging ~2 weeks
  // (new purchases, moves, devices retired). This is what makes most
  // corpus addresses — and most EUI-64 MACs — one-time sightings.
  auto assign_activity = [&config](Device& dev, util::Rng& r) {
    if (!config.client_churn) return;  // ablation: everyone stays
    if (r.chance(0.25)) return;  // present throughout
    const auto duration = static_cast<double>(config.study_duration);
    const auto start =
        config.study_start +
        static_cast<util::SimTime>(r.uniform(-0.15, 1.0) * duration);
    const auto length = static_cast<util::SimDuration>(
                            r.exponential(12.0 * util::kDay)) +
                        util::kHour;
    dev.active_start = start;
    dev.active_end = start + length;
  };

  auto register_subscriber = [&](Device& dev, std::uint32_t carrier) {
    AsInfo& as = w.ases_[carrier];
    const auto pos = static_cast<std::uint32_t>(as.subscribers.size());
    const auto k = dev.mobility.carrier_count;
    dev.mobility.carrier_as[k] = carrier;
    dev.mobility.carrier_pos[k] = pos;
    dev.mobility.carrier_count = static_cast<std::uint8_t>(k + 1);
    as.subscribers.push_back(dev.id);
  };

  for (std::uint32_t as_index = 0; as_index < w.ases_.size(); ++as_index) {
    // Sites are appended per AS below; record the range.
    AsInfo& as = w.ases_[as_index];
    util::Rng as_rng(util::mix64(as.seed ^ 0x9e37));

    const auto& country = w.countries_[as.country_index];
    const double weight_share = country.client_weight / weight_total;

    // --- infrastructure routers ---
    // Router counts scale with world size so infrastructure stays a
    // realistic sliver of the visible address space at every scale.
    const double scale = static_cast<double>(config.total_sites);
    std::uint32_t routers = 0;
    switch (as.type) {
      case AsType::kTransit:
        routers = static_cast<std::uint32_t>(3 + scale / 3000.0 +
                                             as_rng.bounded(4));
        break;
      case AsType::kCloud:
        routers = static_cast<std::uint32_t>(3 + as_rng.bounded(4));
        break;
      default:
        routers = static_cast<std::uint32_t>(
            2 + weight_share * scale / 400.0 + as_rng.bounded(3));
        break;
    }
    as.router_count = std::min<std::uint32_t>(routers, 0xfff);

    // --- datacenter servers (cloud + education) ---
    if (as.type == AsType::kCloud || as.type == AsType::kEducation) {
      as.first_server = static_cast<DeviceId>(w.devices_.size());
      const auto servers = static_cast<std::uint32_t>(
          (as.type == AsType::kCloud ? 10 + config.total_sites / 300
                                     : 4 + config.total_sites / 1000) +
          as_rng.bounded(std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(config.total_sites / 300))));
      as.server_count = servers;
      for (std::uint32_t s = 0; s < servers; ++s) {
        Device dev;
        dev.id = static_cast<DeviceId>(w.devices_.size());
        dev.kind = DeviceKind::kServer;
        dev.as_index = as_index;
        dev.seed = as_rng.next();
        util::Rng dev_rng(dev.seed);
        const auto maker = pick_maker(server_makers, dev_rng);
        dev.maker_index = static_cast<std::uint32_t>(maker);
        dev.mac = assign_mac(maker, dev_rng);
        dev.strategy = sample_strategy(as.profile.server_strategies, dev_rng);
        dev.ipv4 = as.ipv4_base |
                   static_cast<std::uint32_t>(dev_rng.bounded(0x10000));
        dev.firewalled = dev_rng.chance(as.profile.firewall_fraction);
        dev.responds_icmp = dev_rng.chance(0.95);
        // Servers rarely use the public pool (vendor/OS defaults or
        // internal NTP); those that do poll slowly.
        dev.ntp.uses_pool = dev_rng.chance(0.10);
        dev.ntp.poll_interval =
            static_cast<util::SimDuration>(dev_rng.range(15, 60)) *
            util::kMinute;
        dev.ntp.online_fraction = 1.0;
        if (dev_rng.chance(0.7)) {
          dev.ntp.burst = static_cast<std::uint8_t>(4 + dev_rng.bounded(5));
        }
        w.devices_.push_back(std::move(dev));
      }
    }
  }

  // --- customer sites: distribute over (country, broadband/edu AS) ---
  // First compute per-AS site budgets, then materialize.
  std::vector<std::uint32_t> site_budget(w.ases_.size(), 0);
  for (std::uint16_t ci = 0; ci < n_countries; ++ci) {
    const auto& country = w.countries_[ci];
    const double share = country.client_weight / weight_total;
    auto country_sites = static_cast<std::uint32_t>(
        std::llround(share * static_cast<double>(config.total_sites)));
    const auto& bb = per_country[ci].broadband;
    if (bb.empty() || country_sites == 0) continue;
    // Fixed-line markets are fragmented; the lead ISP holds ~35%.
    std::uint32_t remaining = country_sites;
    for (std::size_t k = 0; k < bb.size(); ++k) {
      const bool last = k + 1 == bb.size();
      const auto take =
          last ? remaining
               : static_cast<std::uint32_t>(
                     static_cast<double>(remaining) * (k == 0 ? 0.35 : 0.5));
      site_budget[bb[k]] += take;
      remaining -= take;
    }
  }
  // Education ASes get a trickle of lab sites.
  for (std::uint32_t ai = 0; ai < w.ases_.size(); ++ai) {
    if (w.ases_[ai].type == AsType::kEducation) {
      site_budget[ai] = 2 + static_cast<std::uint32_t>(
                                util::mix64(w.ases_[ai].seed) % 6);
    }
  }

  for (std::uint32_t as_index = 0; as_index < w.ases_.size(); ++as_index) {
    AsInfo& as = w.ases_[as_index];
    const std::uint32_t budget = site_budget[as_index];
    if (budget == 0) continue;
    as.first_site = static_cast<std::uint32_t>(w.sites_.size());
    as.site_count = budget;
    util::Rng as_rng(util::mix64(as.seed ^ 0x51735));
    const auto& country = w.countries_[as.country_index];
    const auto& mobiles = per_country[as.country_index].mobile;

    for (std::uint32_t local = 0; local < budget; ++local) {
      Site site;
      site.id = static_cast<SiteId>(w.sites_.size());
      site.as_index = as_index;
      site.local_index = local;
      site.aliased = as_rng.chance(as.profile.aliased_site_fraction);
      site.firewalled = as_rng.chance(as.profile.firewall_fraction);
      // Tight enough that centroid-based country attribution (our stand-in
      // for reverse geocoding) stays faithful.
      site.location = {country.latitude + as_rng.uniform(-1.2, 1.2),
                       country.longitude + as_rng.uniform(-1.2, 1.2)};

      // --- the CPE ---
      {
        Device dev;
        dev.id = static_cast<DeviceId>(w.devices_.size());
        dev.kind = DeviceKind::kCpe;
        dev.as_index = as_index;
        dev.site = site.id;
        dev.seed = as_rng.next();
        util::Rng dev_rng(dev.seed);
        std::size_t maker;
        if (as.cpe_maker) {
          maker = *as.cpe_maker;
        } else if (country.code == *geo::CountryCode::parse("DE") &&
                   avm_maker && dev_rng.chance(0.85)) {
          // German retail is dominated by AVM Fritz!Box regardless of ISP.
          maker = *avm_maker;
        } else {
          maker = pick_maker(cpe_makers, dev_rng);
        }
        dev.maker_index = static_cast<std::uint32_t>(maker);
        dev.mac = assign_mac(maker, dev_rng);
        const Manufacturer& m = w.ouis_.manufacturer(maker);
        if (dev_rng.chance(m.eui64_propensity)) {
          dev.strategy = S::kEui64;
        } else {
          StrategyWeights cw = as.profile.cpe_strategies;
          weight(cw, S::kEui64) = 0.0;
          dev.strategy = sample_strategy(cw, dev_rng);
        }
        if (m.bssid_offset != 0) {
          const std::uint32_t suffix =
              (dev.mac.suffix() +
               static_cast<std::uint32_t>(m.bssid_offset)) &
              0xffffff;
          dev.bssid = net::MacAddress::from_u64(
              (static_cast<std::uint64_t>(dev.mac.oui().value()) << 24) |
              suffix);
        }
        dev.ipv4 = as.ipv4_base |
                   static_cast<std::uint32_t>(dev_rng.bounded(0x10000));
        dev.firewalled = false;  // the CPE WAN itself is reachable
        dev.responds_icmp = dev_rng.chance(0.9);
        // Most gateways sync against ISP or vendor time sources; only a
        // minority are configured for the public pool.
        // Fritz!OS ships with NTP enabled against public pools, so AVM
        // gateways are disproportionately present in the corpus.
        dev.ntp.uses_pool =
            dev_rng.chance(avm_maker && maker == *avm_maker ? 0.35 : 0.05);
        // Gateways run ntpd: steady-state polls every 2^6..2^10 seconds;
        // we model the settled cadence at tens of minutes.
        dev.ntp.poll_interval =
            static_cast<util::SimDuration>(dev_rng.range(15, 90)) *
            util::kMinute;
        dev.ntp.online_fraction = 0.95;
        if (dev_rng.chance(0.6)) {
          dev.ntp.burst = static_cast<std::uint8_t>(4 + dev_rng.bounded(5));
        }
        site.cpe = dev.id;
        w.devices_.push_back(std::move(dev));
        // Wardriving coverage of the site's access point.
        const Device& cpe = w.devices_.back();
        if (cpe.bssid) {
          const double coverage = std::min(
              0.95,
              config.wardriving_coverage * wardriving_factor(country.code));
          if (as_rng.chance(coverage)) {
            w.wardriving_.add(*cpe.bssid,
                              {site.location.latitude +
                                   as_rng.uniform(-0.01, 0.01),
                               site.location.longitude +
                                   as_rng.uniform(-0.01, 0.01)});
          }
        }
      }

      // --- client devices ---
      const int clients = 1 + static_cast<int>(as_rng.exponential(
                                  config.devices_per_site_mean - 1.0));
      site.first_device = static_cast<DeviceId>(w.devices_.size());
      site.device_count = static_cast<std::uint16_t>(
          std::min(clients, 12));
      for (int c = 0; c < static_cast<int>(site.device_count); ++c) {
        Device dev;
        dev.id = static_cast<DeviceId>(w.devices_.size());
        dev.as_index = as_index;
        dev.site = site.id;
        dev.seed = as_rng.next();
        util::Rng dev_rng(dev.seed);
        const double kind_roll = dev_rng.uniform();
        dev.kind = kind_roll < 0.30   ? DeviceKind::kDesktop
                   : kind_roll < 0.65 ? DeviceKind::kMobile
                                      : DeviceKind::kIot;
        const auto& makers = dev.kind == DeviceKind::kDesktop
                                 ? desktop_makers
                                 : dev.kind == DeviceKind::kMobile
                                       ? mobile_makers
                                       : iot_makers;
        const auto maker = pick_maker(makers, dev_rng);
        dev.maker_index = static_cast<std::uint32_t>(maker);
        dev.mac = assign_mac(maker, dev_rng);
        dev.strategy = client_strategy(as, dev.kind, maker, dev_rng);
        dev.ipv4 = as.ipv4_base |
                   static_cast<std::uint32_t>(dev_rng.bounded(0x10000));
        assign_activity(dev, dev_rng);
        dev.firewalled = site.firewalled;
        dev.responds_icmp = dev_rng.chance(0.85);
        dev.ntp.uses_pool = dev_rng.chance(as.profile.pool_usage_fraction);
        switch (dev.kind) {
          case DeviceKind::kIot:
            // Gadgets check the time occasionally (boot, scheduled
            // re-sync), not on an ntpd cadence.
            dev.ntp.poll_interval =
                static_cast<util::SimDuration>(dev_rng.range(4, 24)) *
                util::kHour;
            dev.ntp.online_fraction = dev_rng.uniform(0.6, 0.95);
            break;
          case DeviceKind::kDesktop:
            // timesyncd/ntpd poll at minute granularity whenever the
            // machine is up.
            dev.ntp.poll_interval =
                static_cast<util::SimDuration>(dev_rng.range(30, 120)) *
                util::kMinute;
            dev.ntp.online_fraction = dev_rng.uniform(0.2, 0.6);
            break;
          default:
            dev.ntp.poll_interval =
                static_cast<util::SimDuration>(dev_rng.range(2, 16)) *
                util::kHour;
            dev.ntp.online_fraction = dev_rng.uniform(0.5, 0.9);
            break;
        }
        // ntpdate/iburst-style clients send a packet burst per sync.
        if (dev_rng.chance(dev.kind == DeviceKind::kDesktop ? 0.35 : 0.12)) {
          dev.ntp.burst = static_cast<std::uint8_t>(4 + dev_rng.bounded(5));
        }
        if (dev.kind == DeviceKind::kMobile && !mobiles.empty() &&
            dev_rng.chance(0.85)) {
          dev.mobility.mobile = true;
          dev.mobility.cellular_fraction = dev_rng.uniform(0.35, 0.7);
          // ~15% of phones roam across several carriers ("user movement").
          const int carriers =
              dev_rng.chance(0.15) && mobiles.size() > 1
                  ? static_cast<int>(
                        2 + dev_rng.bounded(std::min<std::uint64_t>(
                                2, mobiles.size() - 1)))
                  : 1;
          w.devices_.push_back(dev);  // id already set
          Device& stored = w.devices_.back();
          std::vector<std::uint32_t> chosen;
          for (int k = 0; k < carriers; ++k) {
            std::uint32_t carrier;
            do {
              carrier = mobiles[dev_rng.bounded(mobiles.size())];
            } while (std::find(chosen.begin(), chosen.end(), carrier) !=
                     chosen.end());
            chosen.push_back(carrier);
            register_subscriber(stored, carrier);
          }
          continue;
        }
        // ~1.5% of static IoT devices relocate to another AS mid-study
        // ("changing providers").
        if (dev.kind == DeviceKind::kIot && dev_rng.chance(0.015)) {
          dev.mobility.relocation_time =
              config.study_start +
              static_cast<util::SimDuration>(dev_rng.range(
                  30 * util::kDay, config.study_duration - 30 * util::kDay));
          // Resolved after all sites exist; stash a sentinel for now.
          dev.mobility.relocation_site = 0;
        }
        w.devices_.push_back(std::move(dev));
      }
      w.sites_.push_back(std::move(site));
    }
  }

  // --- cellular-only subscribers ---
  for (std::uint16_t ci = 0; ci < n_countries; ++ci) {
    const auto& mobiles = per_country[ci].mobile;
    if (mobiles.empty()) continue;
    const auto& country = w.countries_[ci];
    const double share = country.client_weight / weight_total;
    auto phones = static_cast<std::uint32_t>(std::llround(
        share * static_cast<double>(config.total_sites) *
        config.cellular_only_ratio));
    util::Rng crng(util::mix64(config.seed ^ (0xce11u + ci)));
    for (std::uint32_t p = 0; p < phones; ++p) {
      Device dev;
      dev.id = static_cast<DeviceId>(w.devices_.size());
      dev.kind = DeviceKind::kMobile;
      dev.seed = crng.next();
      util::Rng dev_rng(dev.seed);
      const auto maker = pick_maker(mobile_makers, dev_rng);
      dev.maker_index = static_cast<std::uint32_t>(maker);
      dev.mac = assign_mac(maker, dev_rng);
      // Heavier share to the first carrier: the paper's top-5 ASes are
      // single dominant mobile providers.
      const std::size_t which =
          dev_rng.chance(0.7) ? 0 : dev_rng.bounded(mobiles.size());
      const std::uint32_t carrier = mobiles[which];
      dev.as_index = carrier;
      const AsInfo& as = w.ases_[carrier];
      dev.strategy = client_strategy(as, DeviceKind::kMobile, maker, dev_rng);
      dev.ipv4 =
          as.ipv4_base | static_cast<std::uint32_t>(dev_rng.bounded(0x10000));
      assign_activity(dev, dev_rng);
      dev.firewalled = dev_rng.chance(as.profile.firewall_fraction);
      dev.responds_icmp = dev_rng.chance(0.85);
      dev.ntp.uses_pool = dev_rng.chance(as.profile.pool_usage_fraction);
      dev.ntp.poll_interval =
          static_cast<util::SimDuration>(dev_rng.range(2, 12)) * util::kHour;
      dev.ntp.online_fraction = dev_rng.uniform(0.5, 0.95);
      if (dev_rng.chance(0.12)) {
        dev.ntp.burst = static_cast<std::uint8_t>(4 + dev_rng.bounded(5));
      }
      dev.mobility.mobile = true;
      dev.mobility.cellular_fraction = 1.0;
      w.devices_.push_back(dev);
      register_subscriber(w.devices_.back(), carrier);
    }
  }

  // --- finalize cellular Feistel domains ---
  for (AsInfo& as : w.ases_) {
    as.cell_domain =
        std::min<std::uint64_t>(next_pow2(as.subscribers.size() * 4 + 4),
                                kCellSlotMask + 1);
  }

  // --- resolve relocation targets now that all sites exist ---
  {
    util::Rng rrng(util::mix64(config.seed ^ 0x4e10c));
    for (Device& dev : w.devices_) {
      if (dev.mobility.relocation_time == 0 || dev.site == kNoSite) continue;
      // Prefer a site in a different AS of the same country.
      const auto& home_as = w.ases_[dev.as_index];
      const auto& bb = per_country[home_as.country_index].broadband;
      std::uint32_t target_as = dev.as_index;
      if (bb.size() > 1) {
        do {
          target_as = bb[rrng.bounded(bb.size())];
        } while (target_as == dev.as_index);
      }
      const AsInfo& tas = w.ases_[target_as];
      if (tas.site_count == 0) {
        dev.mobility.relocation_time = 0;
        dev.mobility.relocation_site = kNoSite;
        continue;
      }
      const SiteId target =
          tas.first_site +
          static_cast<SiteId>(rrng.bounded(tas.site_count));
      dev.mobility.relocation_site = target;
      w.sites_[target].adopted.push_back(dev.id);
    }
  }

  // --- vantage points ---
  {
    std::uint8_t vid = 0;
    for (const auto& spec : kVantagePlan) {
      const auto code = geo::CountryCode::parse(spec.country);
      // Only countries present in this world's (possibly truncated) list.
      std::optional<std::uint16_t> ci;
      for (std::uint16_t i = 0; i < n_countries; ++i) {
        if (w.countries_[i].code == *code) ci = i;
      }
      if (!ci) continue;
      // Host the vantage in a cloud AS of that country (there always is
      // one: every country gets >= 1 cloud AS).
      std::uint32_t host_as = 0;
      for (std::uint32_t ai = 0; ai < w.ases_.size(); ++ai) {
        if (w.ases_[ai].country_index == *ci &&
            w.ases_[ai].type == AsType::kCloud) {
          host_as = ai;
          break;
        }
      }
      for (int k = 0; k < spec.count; ++k) {
        VantagePoint v;
        v.id = vid++;
        v.country = *code;
        v.address = net::Ipv6Address::from_u64(
            w.ases_[host_as].prefix_hi | (kRegionServer << 28) |
                (0xff00000 + v.id),
            0x123);
        w.vantages_.push_back(v);
      }
    }
  }

  // --- injected outages: eyeball ASes that go dark mid-study ---
  if (config.outage_count > 0) {
    util::Rng orng(util::mix64(config.seed ^ 0x07a6e));
    std::vector<std::uint32_t> eyeballs;
    for (std::uint32_t ai = 0; ai < w.ases_.size(); ++ai) {
      const AsInfo& as = w.ases_[ai];
      if (as.site_count > 0 || !as.subscribers.empty()) eyeballs.push_back(ai);
    }
    orng.shuffle(eyeballs);
    const auto n = std::min<std::size_t>(config.outage_count,
                                         eyeballs.size());
    for (std::size_t k = 0; k < n; ++k) {
      AsInfo& as = w.ases_[eyeballs[k]];
      const auto latest = config.study_duration - config.outage_duration -
                          10 * util::kDay;
      as.outage_start =
          config.study_start + 20 * util::kDay +
          static_cast<util::SimTime>(orng.bounded(static_cast<std::uint64_t>(
              std::max<util::SimDuration>(latest - 20 * util::kDay, 1))));
      as.outage_duration = config.outage_duration;
    }
  }

  // --- IP geolocation database (with MaxMind-style errors) ---
  {
    util::Rng grng(util::mix64(config.seed ^ 0x6e0db));
    for (const AsInfo& as : w.ases_) {
      geo::CountryCode code = w.countries_[as.country_index].code;
      if (grng.chance(config.geodb_error_rate)) {
        code = w.countries_[grng.bounded(n_countries)].code;
      }
      w.geodb_.add(net::Ipv6Prefix(net::Ipv6Address::from_u64(as.prefix_hi, 0),
                                   32),
                   code);
    }
  }

  return w;
}

}  // namespace v6::sim
