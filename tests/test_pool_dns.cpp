#include "netsim/pool_dns.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.h"

namespace v6::netsim {
namespace {

class PoolDnsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 31;
    config.total_sites = 500;
    config.geodb_error_rate = 0.0;  // exact steering for these tests
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }
  static sim::World* world_;
};

sim::World* PoolDnsTest::world_ = nullptr;

// Address of some device in the given country, if any.
std::optional<net::Ipv6Address> address_in_country(const sim::World& w,
                                                   std::string_view code) {
  for (const auto& dev : w.devices()) {
    if (w.country_of_as(dev.as_index).to_string() == code) {
      return w.device_address(dev.id, 1000);
    }
  }
  return std::nullopt;
}

TEST_F(PoolDnsTest, InCountryClientsSteerToInCountryVantage) {
  const PoolDns dns(*world_, /*global_fraction=*/0.0);
  util::Rng rng(1);
  const auto client = address_in_country(*world_, "DE");
  ASSERT_TRUE(client);
  for (int i = 0; i < 50; ++i) {
    const auto* vantage = dns.resolve(*client, rng);
    ASSERT_NE(vantage, nullptr);
    EXPECT_EQ(vantage->country.to_string(), "DE");
  }
}

TEST_F(PoolDnsTest, RoundRobinRotatesAmongServers) {
  const PoolDns dns(*world_, 0.0);
  util::Rng rng(2);
  const auto client = address_in_country(*world_, "US");
  ASSERT_TRUE(client);
  std::unordered_set<std::uint8_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(dns.resolve(*client, rng)->id);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six US vantages get traffic
}

TEST_F(PoolDnsTest, NoVantageCountryFallsBackToNearest) {
  const PoolDns dns(*world_, 0.0);
  // France has no vantage; nearest vantage country should be European.
  const auto& candidates =
      dns.candidates(*geo::CountryCode::parse("FR"));
  ASSERT_FALSE(candidates.empty());
  const auto code = candidates.front()->country.to_string();
  EXPECT_TRUE(code == "DE" || code == "NL" || code == "GB" || code == "ES")
      << code;
}

TEST_F(PoolDnsTest, GlobalFractionHitsRemoteVantages) {
  const PoolDns dns(*world_, 0.5);
  util::Rng rng(3);
  const auto client = address_in_country(*world_, "DE");
  ASSERT_TRUE(client);
  std::unordered_set<std::string> countries;
  for (int i = 0; i < 300; ++i) {
    countries.insert(dns.resolve(*client, rng)->country.to_string());
  }
  EXPECT_GT(countries.size(), 5u);
}

TEST_F(PoolDnsTest, ZeroVantageShareSeesNothing) {
  const PoolDns dns(*world_, 0.0, /*vantage_share=*/0.0);
  util::Rng rng(5);
  const auto client = address_in_country(*world_, "US");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dns.resolve(*client, rng), nullptr);
  }
}

TEST_F(PoolDnsTest, PartialVantageShareSamples) {
  const PoolDns dns(*world_, 0.0, /*vantage_share=*/0.25);
  util::Rng rng(6);
  const auto client = address_in_country(*world_, "US");
  int captured = 0;
  constexpr int kQueries = 4000;
  for (int i = 0; i < kQueries; ++i) {
    if (dns.resolve(*client, rng) != nullptr) ++captured;
  }
  EXPECT_NEAR(static_cast<double>(captured) / kQueries, 0.25, 0.03);
}

TEST_F(PoolDnsTest, UnroutedClientStillGetsAServer) {
  const PoolDns dns(*world_, 0.0);
  util::Rng rng(4);
  const auto* vantage =
      dns.resolve(*net::Ipv6Address::parse("2001:db8::1"), rng);
  EXPECT_NE(vantage, nullptr);
}

TEST_F(PoolDnsTest, HealthMonitorSteersAroundDownedVantage) {
  PoolDns dns(*world_, 0.0);
  FaultSchedule faults(world_->vantages());
  const auto client = address_in_country(*world_, "US");
  ASSERT_TRUE(client);
  const auto& us = dns.candidates(*geo::CountryCode::parse("US"));
  ASSERT_EQ(us.size(), 6u);
  const std::uint8_t downed = us.front()->id;
  faults.add_window(downed, 1000, 5000);
  const util::SimDuration delay = 600;
  dns.set_health_monitor(&faults, delay);

  util::Rng rng(9);
  const auto ids_at = [&](util::SimTime t, int* steered_count) {
    std::unordered_set<std::uint8_t> seen;
    for (int i = 0; i < 300; ++i) {
      bool steered = false;
      const auto* v = dns.resolve(*client, rng, t, &steered);
      EXPECT_NE(v, nullptr) << "t=" << t;
      if (v == nullptr) continue;
      seen.insert(v->id);
      if (steered_count && steered) ++*steered_count;
    }
    return seen;
  };

  // Before the monitor notices the crash, the downed vantage still
  // receives its share and no poll is marked as steered away.
  int steered = 0;
  auto seen = ids_at(1200, &steered);
  EXPECT_TRUE(seen.contains(downed));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(steered, 0);

  // Once the detection delay elapses the downed vantage leaves rotation:
  // its polls redistribute across the surviving five candidates, and every
  // answer is flagged as steered.
  steered = 0;
  seen = ids_at(2000, &steered);
  EXPECT_FALSE(seen.contains(downed));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(steered, 300);

  // The monitor lags recovery by the same delay...
  seen = ids_at(5000 + delay - 1, nullptr);
  EXPECT_FALSE(seen.contains(downed));

  // ...then the server rejoins rotation.
  steered = 0;
  seen = ids_at(5000 + delay, &steered);
  EXPECT_TRUE(seen.contains(downed));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(steered, 0);
}

TEST_F(PoolDnsTest, AllCandidatesDownFallsBackToHealthyWorldwide) {
  PoolDns dns(*world_, 0.0);
  FaultSchedule faults(world_->vantages());
  const auto& us = dns.candidates(*geo::CountryCode::parse("US"));
  std::unordered_set<std::uint8_t> us_ids;
  for (const auto* v : us) {
    us_ids.insert(v->id);
    faults.add_window(v->id, 0, 100'000);
  }
  dns.set_health_monitor(&faults, 0);

  const auto client = address_in_country(*world_, "US");
  util::Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    bool steered = false;
    const auto* v = dns.resolve(*client, rng, 50'000, &steered);
    ASSERT_NE(v, nullptr);
    EXPECT_FALSE(us_ids.contains(v->id));
    EXPECT_TRUE(steered);
  }

  // With *every* vantage down the pool still answers (unfiltered list):
  // the real pool never returns an empty response while it has servers.
  for (const auto& v : world_->vantages()) {
    if (!us_ids.contains(v.id)) faults.add_window(v.id, 0, 100'000);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(dns.resolve(*client, rng, 50'000, nullptr), nullptr);
  }
}

TEST_F(PoolDnsTest, HealthFreePlanMatchesLegacyResolveBitForBit) {
  PoolDns dns(*world_, 0.25, 0.8);
  FaultSchedule faults(world_->vantages());  // zero faults
  dns.set_health_monitor(&faults, 600);
  const PoolDns legacy(*world_, 0.25, 0.8);

  const auto client = address_in_country(*world_, "DE");
  ASSERT_TRUE(client);
  util::Rng a(12);
  util::Rng b(12);
  for (int i = 0; i < 500; ++i) {
    bool steered = false;
    const auto* with_health =
        dns.resolve(*client, a, static_cast<util::SimTime>(i * 64), &steered);
    const auto* without = legacy.resolve(*client, b);
    EXPECT_EQ(with_health, without);
    EXPECT_FALSE(steered);
  }
  EXPECT_EQ(a.next(), b.next());  // identical draw counts
}

}  // namespace
}  // namespace v6::netsim
