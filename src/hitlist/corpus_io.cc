#include "hitlist/corpus_io.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "proto/buffer.h"

namespace v6::hitlist {

namespace {
constexpr char kMagic[8] = {'V', '6', 'C', 'O', 'R', 'P', '0', '1'};
}  // namespace

std::size_t save_corpus(std::ostream& out, const Corpus& corpus) {
  proto::BufferWriter writer;
  writer.bytes(std::span(reinterpret_cast<const std::uint8_t*>(kMagic), 8));
  writer.u64(corpus.size());
  writer.u64(corpus.total_observations());
  corpus.for_each([&writer](const AddressRecord& rec) {
    writer.bytes(rec.address.bytes());
    writer.u32(rec.first_seen);
    writer.u32(rec.last_seen);
    writer.u32(rec.count);
    writer.u32(rec.vantage_mask);
  });
  out.write(reinterpret_cast<const char*>(writer.data().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) throw std::runtime_error("corpus write failed");
  return writer.size();
}

Corpus load_corpus(std::istream& in) {
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  proto::BufferReader reader(bytes);

  std::uint8_t magic[8];
  reader.bytes(magic);
  if (reader.truncated() ||
      !std::equal(std::begin(magic), std::end(magic), kMagic)) {
    throw std::runtime_error("corpus snapshot: bad magic");
  }
  const std::uint64_t records = reader.u64();
  const std::uint64_t observations = reader.u64();
  if (reader.truncated()) {
    throw std::runtime_error("corpus snapshot: truncated header");
  }
  // The record count is untrusted input and sizes the table allocation
  // below: insist it agrees exactly with the payload that is actually
  // present (32 bytes per record) before allocating anything. The
  // division-form check also rejects counts whose byte size would
  // overflow 64 bits.
  constexpr std::uint64_t kRecordBytes = 32;
  if (records > reader.remaining() / kRecordBytes ||
      records * kRecordBytes != reader.remaining()) {
    throw std::runtime_error(
        "corpus snapshot: record count disagrees with payload size");
  }

  Corpus corpus(records);
  std::uint64_t observations_seen = 0;
  for (std::uint64_t i = 0; i < records; ++i) {
    net::Ipv6Address::Bytes address{};
    reader.bytes(address);
    AddressRecord rec;
    rec.address = net::Ipv6Address(address);
    rec.first_seen = reader.u32();
    rec.last_seen = reader.u32();
    rec.count = reader.u32();
    rec.vantage_mask = reader.u32();
    if (reader.truncated()) {
      throw std::runtime_error("corpus snapshot: truncated");
    }
    if (rec.count == 0) {
      throw std::runtime_error("corpus snapshot: empty record");
    }
    corpus.add_record(rec);
    observations_seen += rec.count;
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error("corpus snapshot: trailing bytes");
  }
  if (observations_seen != observations) {
    throw std::runtime_error("corpus snapshot: observation count mismatch");
  }
  return corpus;
}

}  // namespace v6::hitlist
