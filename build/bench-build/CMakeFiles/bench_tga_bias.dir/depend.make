# Empty dependencies file for bench_tga_bias.
# This may be replaced when dependencies are built.
