# Empty compiler generated dependencies file for outage_detection.
# This may be replaced when dependencies are built.
