// EUI-64 helpers are fully constexpr and live in the header; this file
// exists so the module has a translation unit to anchor vtables/symbols if
// any are added later.
#include "net/eui64.h"
