#include "ntp/client_schedule.h"

#include <algorithm>

namespace v6::ntp {

ClientSchedule::ClientSchedule(const sim::Device& device,
                               util::SimTime window_start,
                               util::SimTime window_end) noexcept
    : device_(&device),
      start_(std::max(window_start, device.active_start)),
      end_(std::min(window_end, device.active_end)) {}

std::optional<util::SimTime> ClientSchedule::next(
    Cursor& cursor) const noexcept {
  if (!device_->ntp.uses_pool || device_->ntp.poll_interval <= 0) {
    return std::nullopt;
  }
  if (!cursor.initialized) {
    // Phase-shift the first poll so fleets don't thunder in lockstep.
    cursor.t =
        start_ + static_cast<util::SimTime>(
                     util::mix64(device_->seed ^ 0x9011) %
                     static_cast<std::uint64_t>(device_->ntp.poll_interval));
    cursor.k = 0;
    cursor.initialized = true;
  }
  const double interval = static_cast<double>(device_->ntp.poll_interval);
  while (cursor.t < end_) {
    const util::SimTime t = cursor.t;
    const std::uint64_t k = cursor.k;
    const double online_roll =
        unit(util::mix64(device_->seed ^ 0x0411e ^ util::mix64(k)));
    // Next poll: 0.5x..1.5x the nominal interval.
    const double jitter =
        0.5 + unit(util::mix64(device_->seed ^ 0x171e4 ^ util::mix64(k)));
    cursor.t += static_cast<util::SimDuration>(interval * jitter) + 1;
    ++cursor.k;
    if (online_roll < device_->ntp.online_fraction) return t;
  }
  return std::nullopt;
}

std::uint64_t ClientSchedule::count() const noexcept {
  std::uint64_t n = 0;
  for_each([&n](util::SimTime) { ++n; });
  return n;
}

}  // namespace v6::ntp
