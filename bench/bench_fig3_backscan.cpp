// Figure 3 + §4.2 — backscanning NTP clients: entropy CDFs of responsive
// ("NTP hit") vs unresponsive ("NTP miss") clients and of responsive
// random same-/64 targets; responsiveness rates; aliased-network
// discovery and its cross-check against the Hitlist's aliased list.
#include "bench_common.h"
#include "net/entropy.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Figure 3 / §4.2: backscanning NTP clients", config);

  core::Study study(config);
  bench::timed("active campaigns (alias baseline)",
               [&] { study.run_campaigns(); });
  bench::timed("backscan week", [&] { study.run_backscan(); });
  const auto& r = study.results();
  const auto& scan = r.backscan;

  util::EmpiricalDistribution hit, miss, random_hit;
  for (const auto& outcome : scan.outcomes) {
    (outcome.client_responded ? hit : miss)
        .add(net::iid_entropy(outcome.client));
    if (outcome.random_responded) {
      random_hit.add(net::iid_entropy(outcome.random_target));
    }
  }

  bench::print_cdf("Fig 3 series: NTP hit (responsive clients)", hit);
  bench::print_cdf("Fig 3 series: NTP miss (unresponsive clients)", miss);
  bench::print_cdf("Fig 3 series: random responsive targets", random_hit);

  const double response_rate =
      static_cast<double>(scan.clients_responded) /
      static_cast<double>(std::max<std::uint64_t>(1, scan.clients_probed));
  const double random_rate =
      static_cast<double>(scan.responsive_random_addresses) /
      static_cast<double>(std::max<std::uint64_t>(1, scan.random_probed));

  std::printf("\n");
  bench::Comparison comparison;
  comparison.row("clients probed", "71,341,581 (unscaled)",
                 util::with_commas(scan.clients_probed));
  comparison.row("client response rate", "~2/3",
                 util::percent(response_rate));
  comparison.row("random same-/64 response rate", "3.5%",
                 util::percent(random_rate));
  comparison.row(
      "unresponsive clients with entropy > 0.75", "~70%",
      miss.empty() ? "-" : util::percent(1.0 - miss.cdf(0.75)));
  comparison.row("responsive clients with entropy > 0.75", "~50%",
                 hit.empty() ? "-" : util::percent(1.0 - hit.cdf(0.75)));
  comparison.row("aliased /64s discovered", "3,740,619 (unscaled)",
                 util::with_commas(scan.aliased_slash64s.size()));
  const auto& check = r.alias_check;
  const auto known_total =
      check.aliased_known_to_hitlist + check.aliased_new;
  comparison.row(
      "backscan aliases known to Hitlist", "98%",
      known_total == 0
          ? "-"
          : util::percent(static_cast<double>(
                              check.aliased_known_to_hitlist) /
                          static_cast<double>(known_total)));
  comparison.row("aliased prefixes new to Hitlist", "46,512 (unscaled)",
                 util::with_commas(check.aliased_new));
  comparison.row("NTP clients inside aliased /64s", "3,841,751 (unscaled)",
                 util::with_commas(check.ntp_clients_in_aliased));
  comparison.row("Hitlist addresses in those /64s", "only 23",
                 util::with_commas(check.hitlist_addresses_in_aliased));
  comparison.print();
  return 0;
}
