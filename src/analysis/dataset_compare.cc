#include "analysis/dataset_compare.h"

#include <array>
#include <optional>
#include <stdexcept>
#include <unordered_set>

namespace v6::analysis {

namespace {

// Per-shard coverage state for summarize_dataset's main scan. Sets merge
// by union and counters by sum — commutative aggregates, so the summary
// is independent of sharding.
struct CoverageState {
  std::unordered_set<std::uint32_t> asns;
  std::unordered_set<std::uint64_t> s48s;
  std::unordered_set<std::uint32_t> common_asns;
  std::unordered_set<std::uint64_t> common_s48s;
  std::uint64_t common_addresses = 0;
};

struct BaseState {
  std::unordered_set<std::uint32_t> asns;
  std::unordered_set<std::uint64_t> s48s;
};

template <typename T>
void union_into(std::unordered_set<T>& into, std::unordered_set<T>&& from) {
  into.insert(from.begin(), from.end());
}

}  // namespace

DatasetSummary summarize_dataset(const std::string& name,
                                 const ScanSource& corpus,
                                 const sim::World& world,
                                 const ScanSource* base,
                                 const AnalysisConfig& config,
                                 std::vector<AnalysisStageStats>* stats) {
  DatasetSummary summary;
  summary.name = name;
  summary.addresses = corpus.records;

  // common_addresses needs point membership across the two datasets:
  // probe the base from the main scan when the base supports it (the
  // in-memory path), otherwise invert — scan the base once and probe the
  // summarized corpus. Both count the same intersection.
  const bool base_has_contains = base != nullptr && base->contains != nullptr;
  const bool invert_membership = base != nullptr && !base_has_contains;
  if (invert_membership && corpus.contains == nullptr) {
    throw std::invalid_argument(
        "summarize_dataset: neither dataset supports membership probes");
  }

  // Base-dataset coverage for the "common" columns (its own scan; the
  // main scan below reads the result concurrently, but read-only).
  BaseState base_cov;
  if (base != nullptr) {
    base_cov = scan_corpus_blocks<BaseState>(
        *base, config, "summarize_dataset/base", [] { return BaseState(); },
        [&world](BaseState& s, std::span<const hitlist::AddressRecord> block) {
          for (const auto& rec : block) {
            if (const auto as_index = world.as_index_of(rec.address)) {
              s.asns.insert(*as_index);
            }
            s.s48s.insert(rec.address.hi64() >> 16);
          }
        },
        [](BaseState& into, BaseState&& from) {
          union_into(into.asns, std::move(from.asns));
          union_into(into.s48s, std::move(from.s48s));
        },
        stats);
  }

  // Set inserts and AS lookups have no batch kernel; the block form still
  // drops the per-record type-erased callback to one call per block.
  const auto cov = scan_corpus_blocks<CoverageState>(
      corpus, config, "summarize_dataset", [] { return CoverageState(); },
      [&](CoverageState& s, std::span<const hitlist::AddressRecord> block) {
        for (const auto& rec : block) {
          const std::uint64_t s48 = rec.address.hi64() >> 16;
          s.s48s.insert(s48);
          if (const auto as_index = world.as_index_of(rec.address)) {
            s.asns.insert(*as_index);
            if (base != nullptr && base_cov.asns.contains(*as_index)) {
              s.common_asns.insert(*as_index);
            }
          }
          if (base != nullptr) {
            if (base_has_contains && base->contains(rec.address)) {
              ++s.common_addresses;
            }
            if (base_cov.s48s.contains(s48)) s.common_s48s.insert(s48);
          }
        }
      },
      [](CoverageState& into, CoverageState&& from) {
        union_into(into.asns, std::move(from.asns));
        union_into(into.s48s, std::move(from.s48s));
        union_into(into.common_asns, std::move(from.common_asns));
        union_into(into.common_s48s, std::move(from.common_s48s));
        into.common_addresses += from.common_addresses;
      },
      stats);

  // Inverted membership: one extra pass over the base, counting its
  // records present in the summarized corpus. O(|base|) probes against
  // the in-memory side instead of per-record stream lookups against the
  // tiered side.
  std::uint64_t inverted_common = 0;
  if (invert_membership) {
    inverted_common = scan_corpus<std::uint64_t>(
        *base, config, "summarize_dataset/common",
        [] { return std::uint64_t{0}; },
        [&corpus](std::uint64_t& n, const hitlist::AddressRecord& rec) {
          if (corpus.contains(rec.address)) ++n;
        },
        [](std::uint64_t& into, std::uint64_t&& from) { into += from; },
        stats);
  }

  summary.asns = cov.asns.size();
  summary.slash48s = cov.s48s.size();
  summary.common_addresses =
      invert_membership ? inverted_common : cov.common_addresses;
  summary.common_asns = cov.common_asns.size();
  summary.common_slash48s = cov.common_s48s.size();
  summary.addrs_per_slash48 =
      summary.slash48s == 0
          ? 0.0
          : static_cast<double>(summary.addresses) /
                static_cast<double>(summary.slash48s);
  return summary;
}

DatasetSummary summarize_dataset(const std::string& name,
                                 const hitlist::Corpus& corpus,
                                 const sim::World& world,
                                 const hitlist::Corpus* base,
                                 const AnalysisConfig& config,
                                 std::vector<AnalysisStageStats>* stats) {
  std::optional<ScanSource> base_source;
  if (base != nullptr) base_source.emplace(make_source(*base));
  return summarize_dataset(name, make_source(corpus), world,
                           base_source ? &*base_source : nullptr, config,
                           stats);
}

std::vector<std::pair<sim::AsType, double>> as_type_fractions(
    const hitlist::Corpus& corpus, const sim::World& world,
    const AnalysisConfig& config, std::vector<AnalysisStageStats>* stats) {
  struct TypeCounts {
    std::array<std::uint64_t, 5> counts{};
    std::uint64_t total = 0;
  };
  const auto tc = scan_corpus<TypeCounts>(
      corpus, config, "as_type_fractions", [] { return TypeCounts(); },
      [&world](TypeCounts& s, const hitlist::AddressRecord& rec) {
        const auto as_index = world.as_index_of(rec.address);
        if (!as_index) return;
        ++s.counts[static_cast<std::size_t>(world.ases()[*as_index].type)];
        ++s.total;
      },
      [](TypeCounts& into, TypeCounts&& from) {
        for (std::size_t i = 0; i < into.counts.size(); ++i) {
          into.counts[i] += from.counts[i];
        }
        into.total += from.total;
      },
      stats);
  std::vector<std::pair<sim::AsType, double>> out;
  for (std::size_t i = 0; i < tc.counts.size(); ++i) {
    out.emplace_back(static_cast<sim::AsType>(i),
                     tc.total == 0 ? 0.0
                                   : static_cast<double>(tc.counts[i]) /
                                         static_cast<double>(tc.total));
  }
  return out;
}

}  // namespace v6::analysis
