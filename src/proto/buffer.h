// Bounds-checked big-endian (network byte order) buffer codecs.
//
// All wire formats in src/proto serialize through these two types so that
// byte-order and bounds handling live in exactly one place. Readers never
// throw on truncated input; they flip an error flag that codecs translate
// into a parse failure, which the fuzz-style tests drive with corrupted
// packets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace v6::proto {

class BufferWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);

  std::size_t size() const noexcept { return data_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return data_; }
  std::vector<std::uint8_t> take() && { return std::move(data_); }

  // Patches a u16 already written at `offset` (e.g. a checksum field).
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t> data_;
};

class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() noexcept;
  std::uint16_t u16() noexcept;
  std::uint32_t u32() noexcept;
  std::uint64_t u64() noexcept;
  // Copies `n` bytes into `out`; zero-fills and sets the error flag when the
  // buffer is short.
  void bytes(std::span<std::uint8_t> out) noexcept;
  // Skips n bytes.
  void skip(std::size_t n) noexcept;

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  // True once any read ran past the end of the buffer.
  bool truncated() const noexcept { return truncated_; }

 private:
  bool ensure(std::size_t n) noexcept;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

}  // namespace v6::proto
