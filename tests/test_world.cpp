#include "sim/world.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/classify.h"
#include "net/entropy.h"
#include "net/eui64.h"
#include "sim/addressing.h"
#include "util/rng.h"

namespace v6::sim {
namespace {

WorldConfig small_config(std::uint64_t seed = 1) {
  WorldConfig config;
  config.seed = seed;
  config.total_sites = 600;
  config.study_duration = 90 * util::kDay;
  return config;
}

class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new World(World::generate(small_config())); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* WorldTest::world_ = nullptr;

TEST_F(WorldTest, GeneratesRequestedStructure) {
  const World& w = *world_;
  // Country rounding plus education-lab sites add a small surplus.
  EXPECT_NEAR(static_cast<double>(w.sites().size()), 600.0, 100.0);
  EXPECT_GT(w.ases().size(), 100u);
  EXPECT_GT(w.devices().size(), w.sites().size());
  EXPECT_EQ(w.vantages().size(), 27u);  // the paper's 27 servers
}

TEST_F(WorldTest, VantageCountryPlanMatchesPaper) {
  const World& w = *world_;
  int us = 0, jp = 0, de = 0;
  std::unordered_set<std::uint16_t> countries;
  for (const auto& v : w.vantages()) {
    countries.insert(v.country.value());
    const auto code = v.country.to_string();
    us += code == "US";
    jp += code == "JP";
    de += code == "DE";
  }
  EXPECT_EQ(us, 6);
  EXPECT_EQ(jp, 2);
  EXPECT_EQ(de, 2);
  EXPECT_EQ(countries.size(), 20u);  // 20 countries
}

TEST_F(WorldTest, SiteDeviceRangesAreConsistent) {
  const World& w = *world_;
  for (const auto& site : w.sites()) {
    ASSERT_NE(site.cpe, kNoDevice);
    EXPECT_EQ(w.devices()[site.cpe].kind, DeviceKind::kCpe);
    EXPECT_EQ(w.devices()[site.cpe].site, site.id);
    for (DeviceId d = site.first_device;
         d < site.first_device + site.device_count; ++d) {
      EXPECT_EQ(w.devices()[d].site, site.id);
      EXPECT_NE(w.devices()[d].kind, DeviceKind::kCpe);
    }
  }
}

TEST_F(WorldTest, ForwardReverseAddressingAgree) {
  // The core invariant: resolve(device_address(d, t), t) returns d.
  const World& w = *world_;
  util::Rng rng(5);
  int checked = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto d = static_cast<DeviceId>(rng.bounded(w.devices().size()));
    util::SimTime t = static_cast<util::SimTime>(
        rng.bounded(static_cast<std::uint64_t>(90 * util::kDay)));
    // Clamp into the device's activity window — dead devices rightly
    // resolve to nothing (verified separately below).
    const Device& dev = w.devices()[d];
    t = std::clamp(t, dev.active_start,
                   dev.active_end == kForever ? t : dev.active_end - 1);
    const auto address = w.device_address(d, t);
    const auto res = w.resolve(address, t);
    ASSERT_EQ(res.kind, World::Resolution::Kind::kDevice)
        << "device " << d << " at t=" << t << " addr " << address.to_string();
    EXPECT_EQ(res.device, d);
    ++checked;
  }
  EXPECT_EQ(checked, 3000);
}

TEST_F(WorldTest, InactiveDevicesDoNotResolve) {
  const World& w = *world_;
  int checked = 0;
  for (const auto& dev : w.devices()) {
    if (dev.active_end == kForever) continue;
    const util::SimTime after = dev.active_end + util::kDay;
    const auto address = w.device_address(dev.id, after);
    const auto res = w.resolve(address, after);
    EXPECT_NE(res.kind, World::Resolution::Kind::kDevice)
        << "retired device " << dev.id << " still answers";
    if (++checked >= 100) break;
  }
  EXPECT_GT(checked, 10);
}

TEST_F(WorldTest, RouterAddressesResolve) {
  const World& w = *world_;
  for (std::uint32_t ai = 0; ai < w.ases().size(); ai += 7) {
    const auto& as = w.ases()[ai];
    if (as.router_count == 0) continue;
    const auto address = w.router_address(ai, as.router_count - 1, 1);
    const auto res = w.resolve(address, 1000);
    EXPECT_EQ(res.kind, World::Resolution::Kind::kRouter);
    EXPECT_EQ(res.as_index, ai);
  }
}

TEST_F(WorldTest, UnroutedAddressResolvesToNothing) {
  const World& w = *world_;
  const auto res =
      w.resolve(*net::Ipv6Address::parse("2001:db8::1"), 1000);
  EXPECT_EQ(res.kind, World::Resolution::Kind::kNone);
}

TEST_F(WorldTest, RandomIidInOrdinarySiteDoesNotResolve) {
  const World& w = *world_;
  util::Rng rng(9);
  int hits = 0, tries = 0;
  for (const auto& site : w.sites()) {
    if (site.aliased) continue;
    const auto hi = w.site_prefix_hi(site.id, 1000) | 1;
    const auto res =
        w.resolve(net::Ipv6Address::from_u64(hi, rng.next()), 1000);
    if (res.kind != World::Resolution::Kind::kNone) ++hits;
    if (++tries >= 200) break;
  }
  // Guessing a random 64-bit IID never matches a live device.
  EXPECT_EQ(hits, 0);
}

TEST_F(WorldTest, AliasedSitesAnswerAnyAddress) {
  const World& w = *world_;
  util::Rng rng(11);
  int found = 0;
  for (const auto& site : w.sites()) {
    if (!site.aliased) continue;
    const auto hi = w.site_prefix_hi(site.id, 1000) | 2;
    const auto res =
        w.resolve(net::Ipv6Address::from_u64(hi, rng.next()), 1000);
    EXPECT_NE(res.kind, World::Resolution::Kind::kNone);
    ++found;
  }
  // The config produces at least a few aliased sites.
  EXPECT_GT(found, 0);
}

TEST_F(WorldTest, RotationChangesSitePrefix) {
  const World& w = *world_;
  int rotating_found = 0;
  for (const auto& as : w.ases()) {
    if (as.profile.rotation_period != util::kDay || as.site_count == 0) {
      continue;
    }
    const auto& site = w.sites()[as.first_site];
    const auto day0 = w.site_prefix_hi(site.id, 0);
    const auto day1 = w.site_prefix_hi(site.id, util::kDay + 1);
    EXPECT_NE(day0, day1);
    // Within a generation the prefix is stable.
    EXPECT_EQ(day0, w.site_prefix_hi(site.id, util::kDay - 1));
    ++rotating_found;
  }
  EXPECT_GT(rotating_found, 0);
}

TEST_F(WorldTest, StaticAsKeepsSitePrefix) {
  const World& w = *world_;
  for (const auto& as : w.ases()) {
    if (as.profile.rotation_period != 0 || as.site_count == 0) continue;
    const auto& site = w.sites()[as.first_site];
    EXPECT_EQ(w.site_prefix_hi(site.id, 0),
              w.site_prefix_hi(site.id, 80 * util::kDay));
    break;
  }
}

TEST_F(WorldTest, MobileDevicesMoveBetweenNetworks) {
  const World& w = *world_;
  int movers = 0;
  for (const auto& dev : w.devices()) {
    if (!dev.mobility.mobile || dev.mobility.cellular_fraction >= 1.0) {
      continue;
    }
    std::unordered_set<std::uint64_t> prefixes;
    bool saw_cell = false, saw_wifi = false;
    for (util::SimTime t = 0; t < 30 * util::kDay; t += kAttachEpoch) {
      const auto att = w.attachment(dev.id, t);
      prefixes.insert(att.prefix_hi);
      saw_cell |= att.cellular;
      saw_wifi |= !att.cellular;
    }
    if (saw_cell && saw_wifi && prefixes.size() > 2) ++movers;
    if (movers > 10) break;
  }
  EXPECT_GT(movers, 10);
}

TEST_F(WorldTest, CellularOnlyPhonesAlwaysCellular) {
  const World& w = *world_;
  int checked = 0;
  for (const auto& dev : w.devices()) {
    if (dev.site != kNoSite || dev.kind != DeviceKind::kMobile) continue;
    for (util::SimTime t = 0; t < 10 * util::kDay; t += kAttachEpoch) {
      EXPECT_TRUE(w.attachment(dev.id, t).cellular);
    }
    if (++checked >= 20) break;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(WorldTest, Ipv4AsMappingMatchesDeviceHome) {
  const World& w = *world_;
  int checked = 0;
  for (const auto& dev : w.devices()) {
    if (dev.ipv4 == 0) continue;
    const auto as_index = w.as_index_of_ipv4(net::Ipv4Address(dev.ipv4));
    ASSERT_TRUE(as_index);
    EXPECT_EQ(*as_index, dev.as_index);
    if (++checked >= 200) break;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(WorldTest, DnsSeedsResolveToServersOrAliasedCdnSpace) {
  const World& w = *world_;
  const auto seeds = w.dns_seed_addresses();
  EXPECT_GT(seeds.size(), 10u);
  int servers = 0, cdn = 0;
  for (const auto& seed : seeds) {
    const auto res = w.resolve(seed, 0);
    if (res.kind == World::Resolution::Kind::kDevice) {
      EXPECT_EQ(w.devices()[res.device].kind, DeviceKind::kServer);
      ++servers;
    } else {
      // CDN names resolve into aliased datacenter space.
      EXPECT_EQ(res.kind, World::Resolution::Kind::kAlias);
      ++cdn;
    }
  }
  EXPECT_GT(servers, 0);
  EXPECT_GT(cdn, 0);
}

TEST_F(WorldTest, AliasedDatacenterPrefixesAnswer) {
  const World& w = *world_;
  util::Rng rng(13);
  const auto prefixes = w.aliased_datacenter_prefixes();
  EXPECT_GT(prefixes.size(), 0u);
  for (const auto& p : prefixes) {
    const auto target = net::Ipv6Address::from_u64(
        p.address().hi64() | rng.bounded(0x10000), rng.next());
    EXPECT_EQ(w.resolve(target, 500).kind, World::Resolution::Kind::kAlias);
  }
}

TEST_F(WorldTest, GermanBroadbandShipsAvmWithEui64) {
  const World& w = *world_;
  int avm_eui64_cpe = 0;
  for (const auto& as : w.ases()) {
    if (as.name != "Deutsche Telekom") continue;
    for (std::uint32_t s = 0; s < as.site_count; ++s) {
      const auto& site = w.sites()[as.first_site + s];
      const auto& cpe = w.devices()[site.cpe];
      const auto maker = w.ouis().manufacturer(cpe.maker_index).name;
      if (maker == "AVM GmbH" && cpe.strategy == IidStrategy::kEui64) {
        ++avm_eui64_cpe;
      }
    }
  }
  EXPECT_GT(avm_eui64_cpe, 0);
}

TEST_F(WorldTest, WardrivingDbIsPopulated) {
  EXPECT_GT(world_->wardriving().size(), 50u);
}

TEST_F(WorldTest, GeoDbResolvesGeneratedAddresses) {
  const World& w = *world_;
  util::Rng rng(17);
  int resolved = 0;
  for (int i = 0; i < 100; ++i) {
    const auto d = static_cast<DeviceId>(rng.bounded(w.devices().size()));
    if (w.geodb().lookup(w.device_address(d, 0))) ++resolved;
  }
  EXPECT_EQ(resolved, 100);
}

TEST(WorldDeterminism, SameSeedSameWorld) {
  const auto a = World::generate(small_config(7));
  const auto b = World::generate(small_config(7));
  ASSERT_EQ(a.devices().size(), b.devices().size());
  ASSERT_EQ(a.sites().size(), b.sites().size());
  for (std::size_t i = 0; i < a.devices().size(); i += 37) {
    EXPECT_EQ(a.devices()[i].mac, b.devices()[i].mac);
    EXPECT_EQ(a.devices()[i].strategy, b.devices()[i].strategy);
    EXPECT_EQ(a.device_address(static_cast<DeviceId>(i), 12345),
              b.device_address(static_cast<DeviceId>(i), 12345));
  }
}

TEST(WorldDeterminism, DifferentSeedsDifferentWorlds) {
  const auto a = World::generate(small_config(7));
  const auto b = World::generate(small_config(8));
  int same = 0, checked = 0;
  const auto n = std::min(a.devices().size(), b.devices().size());
  for (std::size_t i = 0; i < n; i += 11) {
    same += a.devices()[i].mac == b.devices()[i].mac;
    ++checked;
  }
  EXPECT_LT(same, checked / 4);
}

TEST(Addressing, StrategiesProduceExpectedShapes) {
  Device dev;
  dev.seed = 12345;
  dev.mac = net::MacAddress::from_u64(0x0c47c9123456ULL);
  dev.ipv4 = 0x0b010203;

  dev.strategy = IidStrategy::kEui64;
  EXPECT_EQ(iid_for(dev, 1, 0), net::eui64_iid_from_mac(dev.mac));

  dev.strategy = IidStrategy::kZero;
  EXPECT_EQ(iid_for(dev, 1, 0), 0u);

  dev.strategy = IidStrategy::kLowByte;
  const auto low = iid_for(dev, 1, 0);
  EXPECT_GE(low, 1u);
  EXPECT_LE(low, 0xfeu);

  dev.strategy = IidStrategy::kLow2Bytes;
  const auto low2 = iid_for(dev, 1, 0);
  EXPECT_GE(low2, 0x100u);
  EXPECT_LE(low2, 0xffffu);

  dev.strategy = IidStrategy::kIpv4Embedded;
  EXPECT_EQ(iid_for(dev, 1, 0), 0x0b010203u);

  dev.strategy = IidStrategy::kStructuredLow;
  EXPECT_EQ(iid_for(dev, 1, 0) >> 32, 0u);

  dev.strategy = IidStrategy::kDhcpSequential;
  const auto dhcp = iid_for(dev, 1, 0);
  EXPECT_GE(dhcp, 0x100u);
  EXPECT_LT(dhcp, 0x900u);
}

TEST(Addressing, SparseEphemeralIsLowEntropyAndUniqueish) {
  Device dev;
  dev.strategy = IidStrategy::kSparseEphemeral;
  std::unordered_set<std::uint64_t> seen;
  int low_band = 0, total = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    dev.seed = util::mix64(seed);
    // Non-stable devices re-roll every 8 hours.
    for (util::SimTime t = 0; t < util::kDay; t += 8 * util::kHour) {
      const auto iid = iid_for(dev, 42, t);
      seen.insert(iid);
      ++total;
      if (net::entropy_band(net::iid_entropy(iid)) == net::EntropyBand::kLow) {
        ++low_band;
      }
      // Never collides with the structural categories.
      EXPECT_NE(net::classify_iid(iid, false), net::AddressCategory::kZeroes);
      EXPECT_NE(net::classify_iid(iid, false), net::AddressCategory::kLowByte);
    }
  }
  // Overwhelmingly low-entropy yet with high distinct-value counts.
  EXPECT_GT(static_cast<double>(low_band) / total, 0.9);
  EXPECT_GT(seen.size(), static_cast<std::size_t>(total) * 6 / 10);
}

TEST_F(WorldTest, CellularPhonesChangeSlash64AcrossEpochs) {
  const World& w = *world_;
  int checked = 0;
  for (const auto& dev : w.devices()) {
    if (dev.site != kNoSite || dev.kind != DeviceKind::kMobile) continue;
    std::unordered_set<std::uint64_t> prefixes;
    for (int e = 0; e < 12; ++e) {
      prefixes.insert(
          w.attachment(dev.id, e * kAttachEpoch + 100).prefix_hi);
    }
    EXPECT_GT(prefixes.size(), 6u) << "phone " << dev.id;
    if (++checked >= 10) break;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(WorldTest, BurstPollersExist) {
  const World& w = *world_;
  int burst = 0, plain = 0;
  for (const auto& dev : w.devices()) {
    if (!dev.ntp.uses_pool) continue;
    (dev.ntp.burst > 1 ? burst : plain)++;
  }
  EXPECT_GT(burst, 0);
  EXPECT_GT(plain, burst);  // bursting is the minority behaviour
}

TEST(Addressing, EphemeralIidsRotateDaily) {
  Device dev;
  dev.seed = 999;
  dev.strategy = IidStrategy::kRandomEphemeral;
  const auto day0 = iid_for(dev, 42, 1000);
  EXPECT_EQ(day0, iid_for(dev, 42, util::kDay - 1));
  EXPECT_NE(day0, iid_for(dev, 42, util::kDay + 1));
  // And re-roll per prefix.
  EXPECT_NE(day0, iid_for(dev, 43, 1000));
}

TEST(Addressing, StableIidsArePerPrefix) {
  Device dev;
  dev.seed = 1001;
  dev.strategy = IidStrategy::kRandomStable;
  EXPECT_EQ(iid_for(dev, 42, 0), iid_for(dev, 42, 80 * util::kDay));
  EXPECT_NE(iid_for(dev, 42, 0), iid_for(dev, 43, 0));
}

}  // namespace
}  // namespace v6::sim
