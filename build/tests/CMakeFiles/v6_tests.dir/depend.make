# Empty dependencies file for v6_tests.
# This may be replaced when dependencies are built.
