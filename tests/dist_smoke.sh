#!/usr/bin/env bash
# Real multi-process fault-tolerance smoke: a coordinator drives four
# worker processes over the file mailbox in $WORK, two of them are
# kill -9'd mid-chunk, and the merged corpus must still be byte-identical
# to the single-process reference. The coordinator's frames.log must pass
# the V6DIST01 linter. Usage: dist_smoke.sh <v6pool_cli> <scratch-dir>
set -u

CLI="${1:?usage: dist_smoke.sh <v6pool_cli> <scratch-dir>}"
WORK="${2:?usage: dist_smoke.sh <v6pool_cli> <scratch-dir>}"

STUDY_FLAGS=(--sites 300 --days 30)

rm -rf "$WORK"
mkdir -p "$WORK/run"
cd "$WORK" || exit 1

echo "=== single-process reference ==="
"$CLI" study "${STUDY_FLAGS[@]}" --collect-only --save-corpus ref.corpus \
  || { echo "FAIL: reference study"; exit 1; }

echo "=== coordinator + 4 workers, kill -9 two mid-run ==="
"$CLI" coordinator --dir run --workers 4 --chunk-days 2 \
  "${STUDY_FLAGS[@]}" --heartbeat-timeout-ms 2000 --max-wall-ms 190000 \
  --cluster-metrics-out cluster_metrics.prom \
  --cluster-trace-out cluster_trace.json \
  --save-corpus dist.corpus > coordinator.log 2>&1 &
coord_pid=$!

worker_pids=()
for i in 1 2 3 4; do
  "$CLI" worker --dir run --id "$i" "${STUDY_FLAGS[@]}" \
    --chunk-delay-ms 300 > "worker$i.log" 2>&1 &
  worker_pids+=($!)
done

# Let the fleet take leases and upload a chunk or two, then murder two
# workers outright. The survivors must absorb the leases after the
# heartbeat timeout and the run must still complete bit-exactly.
sleep 1.2
kill -9 "${worker_pids[0]}" "${worker_pids[1]}" 2>/dev/null
echo "killed workers ${worker_pids[0]} ${worker_pids[1]}"

wait "$coord_pid"
coord_rc=$?
wait 2>/dev/null
if [ "$coord_rc" -ne 0 ]; then
  echo "FAIL: coordinator exited rc=$coord_rc"
  tail -40 coordinator.log
  exit 1
fi

grep "fleet" coordinator.log || true

if ! cmp ref.corpus dist.corpus; then
  echo "FAIL: merged corpus differs from single-process reference"
  exit 1
fi
echo "merged corpus byte-identical to single-process reference"

if ! "$CLI" lint-dist run/frames.log; then
  echo "FAIL: frames.log failed lint-dist"
  exit 1
fi

# The coordinator aggregated every surviving worker's kObsReport frames;
# the merged exposition and the multi-lane trace must lint clean even
# after two kill -9's and the lease reassignments they caused.
if ! "$CLI" lint-metrics cluster_metrics.prom; then
  echo "FAIL: cluster_metrics.prom failed lint-metrics"
  exit 1
fi
if ! "$CLI" lint-trace cluster_trace.json; then
  echo "FAIL: cluster_trace.json failed lint-trace"
  exit 1
fi
# Keep the merged observability artifacts next to the scratch dir so the
# caller (CI) can archive them after the scratch dir is removed.
cp cluster_metrics.prom cluster_trace.json "$(dirname "$WORK")/" 2>/dev/null \
  || true

# The coordinator must actually have observed the two deaths (otherwise
# the kill landed after the fleet finished and the smoke proved nothing).
deaths=$(sed -n 's/.*uploads, \([0-9]*\) deaths.*/\1/p' coordinator.log |
  tail -1)
if [ -z "${deaths:-}" ] || [ "$deaths" -lt 2 ]; then
  echo "FAIL: expected >= 2 observed worker deaths, got '${deaths:-none}'"
  tail -40 coordinator.log
  exit 1
fi

echo "PASS: recovered from 2 kill -9'd workers, corpus bit-identical"
rm -rf "$WORK"
exit 0
