#include "netsim/fault_schedule.h"

#include <gtest/gtest.h>

#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::netsim {
namespace {

class FaultScheduleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 33;
    config.total_sites = 200;
    world_ = new sim::World(sim::World::generate(config));
  }
  static void TearDownTestSuite() { delete world_; }

  static sim::World* world_;
};

sim::World* FaultScheduleTest::world_ = nullptr;

TEST_F(FaultScheduleTest, EmptyPlanNeverFaults) {
  const FaultSchedule faults(world_->vantages());
  for (const auto& v : world_->vantages()) {
    EXPECT_FALSE(faults.in_outage(v.id, 0));
    EXPECT_FALSE(faults.in_outage(v.id, 1'000'000));
    EXPECT_TRUE(faults.delivers(v.id, v.address, 500));
    EXPECT_FALSE(faults.marked_down(v.id, 500, 600));
    EXPECT_TRUE(faults.windows(v.id).empty());
  }
}

TEST_F(FaultScheduleTest, GeneratedPlanIsDeterministicAndWellFormed) {
  FaultPlanConfig plan;
  plan.seed = 99;
  plan.outages_per_vantage = 2.5;
  plan.flaps_per_vantage = 4.0;
  const util::SimTime start = 0;
  const util::SimTime end = 30 * util::kDay;

  const FaultSchedule a(world_->vantages(), plan, start, end);
  const FaultSchedule b(world_->vantages(), plan, start, end);

  std::size_t total_windows = 0;
  for (const auto& v : world_->vantages()) {
    const auto wa = a.windows(v.id);
    const auto wb = b.windows(v.id);
    ASSERT_EQ(wa.size(), wb.size());
    total_windows += wa.size();
    util::SimTime prev_end = start;
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i].start, wb[i].start);
      EXPECT_EQ(wa[i].end, wb[i].end);
      // Sorted, disjoint, non-empty, inside the plan window.
      EXPECT_LT(wa[i].start, wa[i].end);
      EXPECT_GE(wa[i].start, prev_end);
      EXPECT_LE(wa[i].end, end);
      prev_end = wa[i].end;
    }
  }
  // ~6.5 expected windows per vantage before merging; some must survive.
  EXPECT_GT(total_windows, world_->vantages().size());

  // A different seed reshuffles the plan.
  plan.seed = 100;
  const FaultSchedule c(world_->vantages(), plan, start, end);
  bool any_difference = false;
  for (const auto& v : world_->vantages()) {
    const auto wa = a.windows(v.id);
    const auto wc = c.windows(v.id);
    if (wa.size() != wc.size()) {
      any_difference = true;
      break;
    }
    for (std::size_t i = 0; i < wa.size(); ++i) {
      if (wa[i].start != wc[i].start || wa[i].end != wc[i].end) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(FaultScheduleTest, OutageWindowsAreDarkAndHalfOpen) {
  FaultSchedule faults(world_->vantages());
  const auto& v = world_->vantages().front();
  faults.add_window(v.id, 1000, 2000);
  faults.add_window(v.id, 5000, 5001);

  EXPECT_FALSE(faults.in_outage(v.id, 999));
  EXPECT_TRUE(faults.in_outage(v.id, 1000));
  EXPECT_TRUE(faults.in_outage(v.id, 1999));
  EXPECT_FALSE(faults.in_outage(v.id, 2000));  // end is exclusive
  EXPECT_TRUE(faults.in_outage(v.id, 5000));
  EXPECT_FALSE(faults.in_outage(v.id, 5001));

  const auto client = world_->device_address(0, 0);
  EXPECT_TRUE(faults.delivers(v.id, client, 999));
  EXPECT_FALSE(faults.delivers(v.id, client, 1500));
  // No slow start on hand-built plans: recovery is instant.
  EXPECT_TRUE(faults.delivers(v.id, client, 2000));

  // Other vantages are untouched.
  const auto& other = world_->vantages().back();
  ASSERT_NE(other.id, v.id);
  EXPECT_FALSE(faults.in_outage(other.id, 1500));
  EXPECT_TRUE(faults.delivers(other.id, client, 1500));
}

TEST_F(FaultScheduleTest, SlowStartRampsDeliveryLinearly) {
  FaultPlanConfig plan;
  plan.seed = 7;
  plan.outages_per_vantage = 0.0;  // inject the window by hand
  plan.slow_start = 1000;
  FaultSchedule faults(world_->vantages(), plan, 0, 10 * util::kDay);
  const auto& v = world_->vantages().front();
  faults.add_window(v.id, 10'000, 20'000);

  // Sample many clients at three points on the ramp; delivery fractions
  // must grow roughly linearly and reach 100% after the ramp.
  const auto fraction_at = [&](util::SimTime t) {
    int delivered = 0;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
      const auto src = net::Ipv6Address::from_u64(
          0x2001'0db8'0000'0000ull + static_cast<std::uint64_t>(i), i * 7 + 1);
      if (faults.delivers(v.id, src, t)) ++delivered;
    }
    return static_cast<double>(delivered) / n;
  };

  EXPECT_EQ(fraction_at(19'999), 0.0);  // still dark
  const double early = fraction_at(20'100);   // 10% into the ramp
  const double mid = fraction_at(20'500);     // 50%
  const double late = fraction_at(20'900);    // 90%
  EXPECT_NEAR(early, 0.10, 0.06);
  EXPECT_NEAR(mid, 0.50, 0.08);
  EXPECT_NEAR(late, 0.90, 0.06);
  EXPECT_EQ(fraction_at(21'000), 1.0);  // ramp over

  // The ramp decision is a pure function: repeated queries agree.
  const auto src = world_->device_address(3, 0);
  const bool first = faults.delivers(v.id, src, 20'500);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(faults.delivers(v.id, src, 20'500), first);
  }
}

TEST_F(FaultScheduleTest, DeliversToOnlyFaultsVantageAddresses) {
  FaultSchedule faults(world_->vantages());
  const auto& v = world_->vantages().front();
  faults.add_window(v.id, 0, 1'000'000);

  const auto client = world_->device_address(0, 0);
  EXPECT_FALSE(faults.delivers_to(v.address, client, 500));
  // A device address (not a vantage) always delivers, even mid-window.
  EXPECT_TRUE(faults.delivers_to(client, v.address, 500));
}

TEST_F(FaultScheduleTest, MarkedDownLagsCrashAndRecovery) {
  FaultSchedule faults(world_->vantages());
  const auto& v = world_->vantages().front();
  faults.add_window(v.id, 1000, 5000);
  const util::SimDuration delay = 600;

  // The monitor hasn't noticed yet right after the crash...
  EXPECT_FALSE(faults.marked_down(v.id, 1000, delay));
  EXPECT_FALSE(faults.marked_down(v.id, 1599, delay));
  // ...notices after the detection delay...
  EXPECT_TRUE(faults.marked_down(v.id, 1600, delay));
  EXPECT_TRUE(faults.marked_down(v.id, 4999, delay));
  // ...and keeps the server out of steering until `delay` past recovery.
  EXPECT_TRUE(faults.marked_down(v.id, 5000, delay));
  EXPECT_TRUE(faults.marked_down(v.id, 5599, delay));
  EXPECT_FALSE(faults.marked_down(v.id, 5600, delay));
}

// --- WorkerFaultSchedule (distributed collection) --------------------------

TEST(WorkerFaultSchedule, EmptyPlanIsHealthy) {
  const WorkerFaultSchedule plan(8);
  EXPECT_EQ(plan.worker_count(), 8u);
  for (std::uint32_t w = 0; w < 8; ++w) {
    EXPECT_FALSE(plan.kill_at(w).has_value());
    EXPECT_FALSE(plan.stalled(w, 12345));
    EXPECT_EQ(plan.stall_end(w, 12345), 12345);
    EXPECT_DOUBLE_EQ(plan.cost_factor(w, 12345), 1.0);
  }
  // Out-of-range workers (respawned replacements) are fault-free.
  EXPECT_FALSE(plan.kill_at(200).has_value());
  EXPECT_FALSE(plan.stalled(200, 0));
  EXPECT_DOUBLE_EQ(plan.cost_factor(200, 0), 1.0);
}

TEST(WorkerFaultSchedule, TooManyWorkersRejected) {
  EXPECT_THROW(WorkerFaultSchedule(256), std::invalid_argument);
}

TEST(WorkerFaultSchedule, SeededPlanIsDeterministicAndInWindow) {
  WorkerFaultPlanConfig config;
  config.seed = 11;
  config.kills_per_worker = 0.6;
  config.stalls_per_worker = 2.0;
  config.slows_per_worker = 1.0;
  const util::SimTime start = util::kDay;
  const util::SimTime end = 60 * util::kDay;

  const WorkerFaultSchedule a(16, config, start, end);
  const WorkerFaultSchedule b(16, config, start, end);
  bool any_kill = false, any_stall = false;
  for (std::uint32_t w = 0; w < 16; ++w) {
    ASSERT_EQ(a.kill_at(w), b.kill_at(w)) << w;
    if (const auto kill = a.kill_at(w)) {
      any_kill = true;
      EXPECT_GE(*kill, start);
      EXPECT_LT(*kill, end);
    }
    for (util::SimTime t = start; t < end; t += util::kHour) {
      ASSERT_EQ(a.stalled(w, t), b.stalled(w, t)) << w << " " << t;
      ASSERT_EQ(a.cost_factor(w, t), b.cost_factor(w, t)) << w << " " << t;
      any_stall = any_stall || a.stalled(w, t);
      EXPECT_GE(a.cost_factor(w, t), 1.0);
    }
  }
  EXPECT_TRUE(any_kill);
  EXPECT_TRUE(any_stall);
}

TEST(WorkerFaultSchedule, InjectedFaultsAnswerQueries) {
  WorkerFaultSchedule plan(2);
  plan.set_kill(0, 5000);
  plan.add_stall(1, 100, 400);
  plan.add_slow(1, 600, 900, 3.0);

  EXPECT_EQ(plan.kill_at(0), std::optional<util::SimTime>(5000));
  EXPECT_FALSE(plan.kill_at(1).has_value());
  EXPECT_TRUE(plan.stalled(1, 250));
  EXPECT_FALSE(plan.stalled(0, 250));
  EXPECT_EQ(plan.stall_end(1, 250), 400);
  EXPECT_DOUBLE_EQ(plan.cost_factor(1, 700), 3.0);
  EXPECT_DOUBLE_EQ(plan.cost_factor(1, 950), 1.0);
}

}  // namespace
}  // namespace v6::netsim
