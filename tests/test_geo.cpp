#include <gtest/gtest.h>

#include "geo/bssid_db.h"
#include "geo/country.h"
#include "geo/geodb.h"
#include "geo/location.h"

namespace v6::geo {
namespace {

TEST(CountryCode, ParseNormalizesCase) {
  const auto a = CountryCode::parse("de");
  const auto b = CountryCode::parse("DE");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->to_string(), "DE");
}

TEST(CountryCode, ParseRejectsJunk) {
  EXPECT_FALSE(CountryCode::parse(""));
  EXPECT_FALSE(CountryCode::parse("D"));
  EXPECT_FALSE(CountryCode::parse("DEU"));
  EXPECT_FALSE(CountryCode::parse("1A"));
}

TEST(CountryCode, DefaultIsInvalid) {
  CountryCode c;
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(c.to_string(), "??");
}

TEST(CountryRegistry, PaperCountriesPresent) {
  for (const char* code : {"IN", "CN", "US", "BR", "ID", "DE", "JP", "LU"}) {
    const auto parsed = CountryCode::parse(code);
    ASSERT_TRUE(parsed);
    EXPECT_NE(find_country(*parsed), nullptr) << code;
  }
}

TEST(CountryRegistry, WeightsDescendAndTopFiveDominate) {
  const auto all = all_countries();
  double total = 0.0, top5 = 0.0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(all[i].client_weight, all[i - 1].client_weight);
    }
    total += all[i].client_weight;
    if (i < 5) top5 += all[i].client_weight;
  }
  // §3: IN+CN+US+BR+ID = 76% of the corpus.
  EXPECT_NEAR(top5 / total, 0.76, 0.03);
}

TEST(NearestCountry, CentroidsMapToThemselves) {
  for (const auto& info : all_countries()) {
    EXPECT_EQ(nearest_country(info.latitude, info.longitude), info.code)
        << info.name;
  }
}

TEST(Distance, KnownCityPair) {
  // Berlin (52.52, 13.40) to Paris (48.86, 2.35) is ~878 km.
  const double d = distance_km({52.52, 13.40}, {48.86, 2.35});
  EXPECT_NEAR(d, 878.0, 15.0);
}

TEST(Distance, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(distance_km({10, 20}, {10, 20}), 0.0);
}

TEST(GeoDatabase, LongestPrefixMatchWins) {
  GeoDatabase db;
  const auto p32 = *net::Ipv6Prefix::parse("2001:db8::/32");
  const auto p48 = *net::Ipv6Prefix::parse("2001:db8:1::/48");
  db.add(p32, *CountryCode::parse("US"));
  db.add(p48, *CountryCode::parse("DE"));
  EXPECT_EQ(db.lookup(*net::Ipv6Address::parse("2001:db8:1::5"))->to_string(),
            "DE");
  EXPECT_EQ(db.lookup(*net::Ipv6Address::parse("2001:db8:2::5"))->to_string(),
            "US");
  EXPECT_FALSE(db.lookup(*net::Ipv6Address::parse("2002::1")));
}

TEST(GeoDatabase, OverwriteReplaces) {
  GeoDatabase db;
  const auto p = *net::Ipv6Prefix::parse("2001:db8::/32");
  db.add(p, *CountryCode::parse("US"));
  db.add(p, *CountryCode::parse("JP"));
  EXPECT_EQ(db.lookup(*net::Ipv6Address::parse("2001:db8::1"))->to_string(),
            "JP");
  EXPECT_EQ(db.size(), 1u);
}

TEST(GeoDatabase, RejectsOverlongPrefixes) {
  GeoDatabase db;
  EXPECT_THROW(db.add(*net::Ipv6Prefix::parse("2001:db8::/96"),
                      *CountryCode::parse("US")),
               std::invalid_argument);
}

TEST(BssidLocationDb, AddLookup) {
  BssidLocationDb db;
  const auto bssid = *net::MacAddress::parse("3c:a6:2f:00:00:01");
  db.add(bssid, {52.5, 13.4});
  const auto loc = db.lookup(bssid);
  ASSERT_TRUE(loc);
  EXPECT_DOUBLE_EQ(loc->latitude, 52.5);
  EXPECT_FALSE(db.lookup(*net::MacAddress::parse("3c:a6:2f:00:00:02")));
}

TEST(BssidLocationDb, GroupsByOui) {
  BssidLocationDb db;
  db.add(*net::MacAddress::parse("3c:a6:2f:00:00:01"), {1, 1});
  db.add(*net::MacAddress::parse("3c:a6:2f:00:00:02"), {2, 2});
  db.add(*net::MacAddress::parse("aa:bb:cc:00:00:01"), {3, 3});
  EXPECT_EQ(db.bssids_in_oui(net::Oui(0x3ca62f)).size(), 2u);
  EXPECT_EQ(db.bssids_in_oui(net::Oui(0xaabbcc)).size(), 1u);
  EXPECT_TRUE(db.bssids_in_oui(net::Oui(0x111111)).empty());
}

TEST(BssidLocationDb, DuplicateAddUpdatesInPlace) {
  BssidLocationDb db;
  const auto bssid = *net::MacAddress::parse("3c:a6:2f:00:00:01");
  db.add(bssid, {1, 1});
  db.add(bssid, {9, 9});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(db.lookup(bssid)->latitude, 9);
  EXPECT_EQ(db.bssids_in_oui(net::Oui(0x3ca62f)).size(), 1u);
}

}  // namespace
}  // namespace v6::geo
