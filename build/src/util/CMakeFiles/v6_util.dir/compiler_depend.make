# Empty compiler generated dependencies file for v6_util.
# This may be replaced when dependencies are built.
