#include "kernels/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace v6::kernels {

namespace {

// Cached resolution. -1 = not yet resolved; otherwise a Backend value.
std::atomic<int> g_active{-1};
// Explicit override. -1 = none; otherwise a Backend value.
std::atomic<int> g_forced{-1};

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "?";
}

Backend resolve_backend(const char* env_force_scalar,
                        std::optional<Backend> forced,
                        bool cpu_has_avx2) noexcept {
  // The env pin wins over everything: it is the knob CI matrices and the
  // identity tests rely on, and must not be silently overridden by a
  // --kernels=auto default travelling through force_backend().
  if (env_force_scalar != nullptr && env_force_scalar[0] != '\0' &&
      std::strcmp(env_force_scalar, "0") != 0) {
    return Backend::kScalar;
  }
  if (forced) return *forced;
  return cpu_has_avx2 ? Backend::kAvx2 : Backend::kScalar;
}

Backend detected_backend() noexcept {
  return cpu_supports_avx2() ? Backend::kAvx2 : Backend::kScalar;
}

Backend active_backend() noexcept {
  const int cached = g_active.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<Backend>(cached);
  // Benign race: every thread resolves from the same inputs and stores
  // the same value. (forced flips invalidate the cache in
  // force_backend(), so this path only runs on first touch.)
  const int forced_raw = g_forced.load(std::memory_order_acquire);
  const std::optional<Backend> forced =
      forced_raw < 0 ? std::nullopt
                     : std::optional<Backend>(static_cast<Backend>(forced_raw));
  const Backend resolved = resolve_backend(std::getenv("V6_FORCE_SCALAR"),
                                           forced, cpu_supports_avx2());
  g_active.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

void force_backend(std::optional<Backend> backend) noexcept {
  g_forced.store(backend ? static_cast<int>(*backend) : -1,
                 std::memory_order_release);
  g_active.store(-1, std::memory_order_release);  // re-resolve on next use
}

void register_backend_gauge(obs::Registry& registry) {
  registry
      .gauge("v6_kernel_backend",
             "Batch-kernel backend this run dispatched to (info gauge; "
             "value 1, label names the backend)",
             {{"backend", to_string(active_backend())}})
      .set(1.0);
}

}  // namespace v6::kernels
