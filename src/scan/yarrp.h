// Yarrp-style stateless randomized traceroute.
//
// Yarrp's insight is to decouple (target, TTL) probes: instead of walking
// one target's path hop by hop, it shuffles the whole (target x TTL) space
// and fires statelessly, reconstructing paths afterwards from the quoted
// invoking packets. We reproduce that structure: probes carry their state in
// the echo ident/seq, are emitted in a Feistel-permuted order, and results
// are regrouped per target at the end.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "netsim/data_plane.h"
#include "obs/metrics.h"
#include "util/sim_time.h"

namespace v6::scan {

struct YarrpConfig {
  net::Ipv6Address source;
  std::uint8_t max_hops = 16;
  std::uint64_t probe_rate = 50000;  // probes per simulated second
  std::uint64_t seed = 0;
  // Optional metrics sink (not owned). Appended last so existing
  // positional initializers stay valid.
  obs::Registry* metrics = nullptr;
};

struct TraceResult {
  net::Ipv6Address target;
  // Responding router interface per TTL (unset entries = silent hop).
  std::vector<net::Ipv6Address> hops;       // parallel to hop_responded
  std::vector<bool> hop_responded;
  bool destination_reached = false;
};

class YarrpTracer {
 public:
  YarrpTracer(netsim::DataPlane& plane, const YarrpConfig& config);

  // Traces every target; probes the (target, ttl) space in a randomized
  // stateless order like the real tool.
  std::vector<TraceResult> trace(std::span<const net::Ipv6Address> targets,
                                 util::SimTime t0);

  // All distinct responding interface addresses seen across traces
  // (the "discovered addresses" a topology campaign reports), including
  // reached destinations.
  static std::vector<net::Ipv6Address> discovered(
      std::span<const TraceResult> results);

  std::uint64_t probes_sent() const noexcept { return sent_; }

 private:
  netsim::DataPlane* plane_;
  YarrpConfig config_;
  std::uint64_t sent_ = 0;
  obs::Counter metric_probes_;
  obs::Counter metric_responses_;
};

}  // namespace v6::scan
