// The seven-way address-category breakdown of Figure 5.
//
// Structural categories (zeroes / low-byte / low-2-bytes) come straight
// from the IID; IPv4-mapped needs the paper's AS-contextual acceptance
// gates (enough instances in the AS, a meaningful share of the AS's
// addresses, and the embedded IPv4 belonging to the same AS); the rest
// fall into entropy bands.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/parallel_scan.h"
#include "hitlist/corpus.h"
#include "net/classify.h"
#include "sim/world.h"
#include "util/sim_time.h"

namespace v6::analysis {

struct CategoryConfig {
  // Paper thresholds are >=100 instances and >10% of the AS's addresses;
  // the instance floor scales with corpus size (ours default to a value
  // appropriate for worlds ~1/1000 the Internet's size).
  std::uint64_t min_instances_per_as = 20;
  double min_fraction_of_as = 0.10;
};

struct CategoryBreakdown {
  // Indexed by net::AddressCategory.
  std::array<std::uint64_t, 7> counts{};
  std::uint64_t total = 0;

  double fraction(net::AddressCategory c) const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(
                            counts[static_cast<std::size_t>(c)]) /
                            static_cast<double>(total);
  }
};

// Classifies every corpus address whose observation interval intersects
// [window_start, window_end); pass the full study window for Fig-1-style
// totals or one day for the Fig 5 comparison.
CategoryBreakdown categorize_corpus(const hitlist::Corpus& corpus,
                                    const sim::World& world,
                                    util::SimTime window_start,
                                    util::SimTime window_end,
                                    const CategoryConfig& config = {},
                                    const AnalysisConfig& analysis = {},
                                    std::vector<AnalysisStageStats>* stats =
                                        nullptr);

CategoryBreakdown categorize_corpus(const ScanSource& source,
                                    const sim::World& world,
                                    util::SimTime window_start,
                                    util::SimTime window_end,
                                    const CategoryConfig& config = {},
                                    const AnalysisConfig& analysis = {},
                                    std::vector<AnalysisStageStats>* stats =
                                        nullptr);

}  // namespace v6::analysis
