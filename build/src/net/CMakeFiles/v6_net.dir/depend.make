# Empty dependencies file for v6_net.
# This may be replaced when dependencies are built.
