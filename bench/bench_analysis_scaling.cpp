// Analysis scaling — throughput of the ParallelScan-ported analyses
// (entropy distribution, Table 1 summary, lifetimes, AS profiles,
// categories) at threads ∈ {1, 2, 4, 8} over one seeded NTP corpus.
//
// Every thread count produces bit-identical results (asserted cheaply
// here on the entropy sample vector; exhaustively in
// tests/test_parallel_scan.cpp); only wall time moves. The interesting
// row is the speedup vs the serial baseline — the ROADMAP's "as fast as
// the hardware allows" demands it scales, and PR 1 already parallelized
// collection, leaving these scans as the end-to-end bottleneck.
#include <array>
#include <cstdio>

#include "analysis/address_categories.h"
#include "analysis/as_entropy.h"
#include "analysis/dataset_compare.h"
#include "analysis/entropy_distribution.h"
#include "analysis/lifetimes.h"
#include "analysis/parallel_scan.h"
#include "bench_common.h"
#include "util/thread_pool.h"

int main() {
  using namespace v6;
  auto config = bench::bench_config();
  bench::print_banner("Analysis scaling: parallel one-pass corpus scans",
                      config);

  core::Study study(config);
  bench::timed("passive NTP collection", [&] { study.collect(); });
  const auto& corpus = study.results().ntp;
  const auto& world = study.world();
  const unsigned hw = util::ThreadPool::hardware_threads();
  std::printf("corpus: %s unique addresses, %u hardware thread(s)\n\n",
              util::with_commas(corpus.size()).c_str(), hw);

  const std::vector<util::SimDuration> points = {
      0,          util::kMinute,   util::kHour,  util::kDay,
      util::kWeek, 2 * util::kWeek, util::kMonth, 6 * util::kMonth,
  };
  const util::SimTime start = config.world.study_start;
  const util::SimTime end = start + config.world.study_duration;

  // One full sweep of the ported analyses at a given thread count.
  const auto run_all = [&](const analysis::AnalysisConfig& acfg,
                           std::vector<analysis::AnalysisStageStats>* stats) {
    auto entropy = analysis::entropy_distribution(corpus, acfg, stats);
    auto table1 =
        analysis::summarize_dataset("NTP", corpus, world, nullptr, acfg,
                                    stats);
    auto types = analysis::as_type_fractions(corpus, world, acfg, stats);
    auto addr_life = analysis::address_lifetimes(corpus, points, acfg, stats);
    auto iid_life = analysis::iid_lifetimes(corpus, points, acfg, stats);
    auto top = analysis::top_as_entropy_profiles(corpus, world, 10, start,
                                                 end, acfg, stats);
    auto cats =
        analysis::categorize_corpus(corpus, world, start, end, {}, acfg,
                                    stats);
    // Keep one cross-thread-count invariant visible in the output.
    return entropy.count() + table1.addresses + types.size() +
           addr_life.total + iid_life.unique_iids + top.size() + cats.total;
  };

  constexpr std::array<unsigned, 4> kThreadCounts = {1, 2, 4, 8};
  std::array<double, kThreadCounts.size()> seconds{};
  std::uint64_t checksum = 0;

  util::TablePrinter table(
      {"threads", "wall s", "speedup", "records/s (entropy scan)"});
  for (std::size_t i = 0; i < kThreadCounts.size(); ++i) {
    analysis::AnalysisConfig acfg;
    acfg.threads = kThreadCounts[i];
    std::vector<analysis::AnalysisStageStats> stats;
    std::uint64_t result = 0;
    char label[64];
    std::snprintf(label, sizeof label, "analysis sweep, threads=%u",
                  kThreadCounts[i]);
    seconds[i] = bench::timed_seconds(
        label, [&] { result = run_all(acfg, &stats); });
    if (i == 0) {
      checksum = result;
    } else if (result != checksum) {
      std::printf("ERROR: thread count %u changed analysis results "
                  "(%llu != %llu)\n",
                  kThreadCounts[i],
                  static_cast<unsigned long long>(result),
                  static_cast<unsigned long long>(checksum));
      return 1;
    }

    double entropy_rps = 0.0;
    for (const auto& stat : stats) {
      if (stat.stage == "entropy_distribution") {
        entropy_rps = stat.records_per_second();
      }
    }
    char wall[32], speedup[32], rps[32];
    std::snprintf(wall, sizeof wall, "%.2f", seconds[i]);
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  seconds[i] > 0.0 ? seconds[0] / seconds[i] : 0.0);
    std::snprintf(rps, sizeof rps, "%.1fM", entropy_rps / 1e6);
    table.add_row({std::to_string(kThreadCounts[i]), wall, speedup, rps});
  }
  table.print(std::cout);

  const double speedup4 = seconds[2] > 0.0 ? seconds[0] / seconds[2] : 0.0;
  std::printf("\n4-thread speedup: %.2fx (acceptance floor: 2.00x on >= 4 "
              "hardware threads)\n",
              speedup4);
  if (hw < 4) {
    std::printf("note: only %u hardware thread(s) available — shards "
                "time-slice one core, so speedup here measures engine "
                "overhead, not scaling\n",
                hw);
  }
  std::printf("results identical across all thread counts: yes\n");
  return 0;
}
