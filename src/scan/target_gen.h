// Target generation for active campaigns.
//
// Two paper-relevant generators:
//   * CAIDA routed-/48 splitting — every announced prefix of length /32 or
//     longer is split into /48s and the ::1 of each is traced (§3). A
//     deterministic sampling fraction scales the probe budget the way the
//     paper's 1.08B-trace campaign scales to our world.
//   * Hitlist-style TGA expansion — seed addresses from "public sources"
//     (DNS), plus low-IID candidates generated inside every /64 and /48
//     already known to be active, mimicking how the IPv6 Hitlist grows its
//     frontier from learned structure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "net/prefix.h"
#include "sim/world.h"

namespace v6::scan {

// CAIDA-style: ::1 of every /48 under each routed /32, deterministically
// subsampled to `fraction` of the space (1.0 probes all 65536 per /32).
std::vector<net::Ipv6Address> routed_slash48_targets(const sim::World& world,
                                                     double fraction,
                                                     std::uint64_t seed);

// Low-IID candidate addresses (::0, ::1, ::2, ::a, ::100) inside each /64.
std::vector<net::Ipv6Address> low_iid_candidates(
    std::span<const net::Ipv6Prefix> active_slash64s);

// For each known-active /48, candidate subnet-router addresses of its first
// `subnets` /64s (::1 in each) — the "expand around structure" TGA step.
std::vector<net::Ipv6Address> subnet_sweep_candidates(
    std::span<const net::Ipv6Prefix> active_slash48s, std::uint32_t subnets);

}  // namespace v6::scan
