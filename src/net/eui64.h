// EUI-64 SLAAC interface identifiers (RFC 4291 appendix A).
//
// An EUI-64 IID embeds the interface's 48-bit MAC address: the MAC is split
// after its third byte, 0xFF 0xFE is inserted, and the Universal/Local bit
// (bit 1 of byte 0) is inverted. Because the MAC is a stable link-layer
// identifier, these IIDs enable the cross-network device tracking and
// geolocation attacks of §5 of the paper.
#pragma once

#include <cstdint>
#include <optional>

#include "net/ipv6.h"
#include "net/mac.h"

namespace v6::net {

// True iff the IID has the 0xFFFE marker in bytes 3-4 (address bytes 11-12).
// Randomly generated IIDs match with probability 2^-16; the analysis layer
// accounts for that expected false-positive rate as the paper does.
constexpr bool looks_like_eui64(std::uint64_t iid) noexcept {
  return ((iid >> 24) & 0xffff) == 0xfffe;
}

constexpr bool looks_like_eui64(const Ipv6Address& a) noexcept {
  return looks_like_eui64(a.iid());
}

// Builds the EUI-64 IID for a MAC address.
constexpr std::uint64_t eui64_iid_from_mac(const MacAddress& mac) noexcept {
  const std::uint64_t m = mac.with_ul_flipped().to_u64();
  const std::uint64_t upper = (m >> 24) & 0xffffff;  // first 3 MAC bytes
  const std::uint64_t lower = m & 0xffffff;          // last 3 MAC bytes
  return (upper << 40) | (std::uint64_t{0xfffe} << 24) | lower;
}

// Recovers the embedded MAC address, or nullopt if the IID is not EUI-64
// shaped. Inverse of eui64_iid_from_mac.
constexpr std::optional<MacAddress> mac_from_eui64(std::uint64_t iid) noexcept {
  if (!looks_like_eui64(iid)) return std::nullopt;
  const std::uint64_t upper = (iid >> 40) & 0xffffff;
  const std::uint64_t lower = iid & 0xffffff;
  return MacAddress::from_u64((upper << 24) | lower).with_ul_flipped();
}

constexpr std::optional<MacAddress> mac_from_eui64(
    const Ipv6Address& a) noexcept {
  return mac_from_eui64(a.iid());
}

// Convenience: the full EUI-64 address for (prefix hi64, MAC).
constexpr Ipv6Address eui64_address(std::uint64_t prefix_hi,
                                    const MacAddress& mac) noexcept {
  return Ipv6Address::from_u64(prefix_hi, eui64_iid_from_mac(mac));
}

}  // namespace v6::net
