#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "scan/backscanner.h"
#include "scan/target_gen.h"
#include "scan/yarrp.h"
#include "scan/zmap6.h"
#include "util/rng.h"

namespace v6::scan {
namespace {

class ScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.seed = 77;
    config.total_sites = 500;
    world_ = new sim::World(sim::World::generate(config));
    plane_ = new netsim::DataPlane(*world_, {0.0, 5});
  }
  static void TearDownTestSuite() {
    delete plane_;
    delete world_;
  }
  static net::Ipv6Address source() {
    return world_->vantages().front().address;
  }
  static sim::World* world_;
  static netsim::DataPlane* plane_;
};

sim::World* ScanTest::world_ = nullptr;
netsim::DataPlane* ScanTest::plane_ = nullptr;

sim::DeviceId reachable_cpe(const sim::World& w, util::SimTime t) {
  for (const auto& dev : w.devices()) {
    if (dev.kind != sim::DeviceKind::kCpe || !dev.responds_icmp) continue;
    // Aliased sites answer everything; these tests need an ordinary one.
    if (dev.site != sim::kNoSite && w.sites()[dev.site].aliased) continue;
    const auto res = w.resolve(w.device_address(dev.id, t), t);
    if (res.kind == sim::World::Resolution::Kind::kDevice && !res.firewalled) {
      return dev.id;
    }
  }
  return sim::kNoDevice;
}

TEST_F(ScanTest, ZmapProbeHitsLiveTarget) {
  Zmap6Scanner zmap(*plane_, {source(), 100000, 0, 1});
  const auto d = reachable_cpe(*world_, 1000);
  ASSERT_NE(d, sim::kNoDevice);
  EXPECT_TRUE(zmap.probe(world_->device_address(d, 1000), 1000));
  EXPECT_EQ(zmap.probes_sent(), 1u);
}

TEST_F(ScanTest, ZmapProbeMissesDeadTarget) {
  Zmap6Scanner zmap(*plane_, {source(), 100000, 0, 1});
  EXPECT_FALSE(zmap.probe(*net::Ipv6Address::parse("2001:db8::1"), 1000));
}

TEST_F(ScanTest, ZmapScanReturnsRecordPerTarget) {
  Zmap6Scanner zmap(*plane_, {source(), 100000, 0, 2});
  const auto d = reachable_cpe(*world_, 1000);
  const std::vector<net::Ipv6Address> targets = {
      world_->device_address(d, 1000),
      *net::Ipv6Address::parse("2001:db8::1"),
  };
  const auto records = zmap.scan(targets, 1000);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].responded);
  EXPECT_FALSE(records[1].responded);
  EXPECT_EQ(records[0].target, targets[0]);
}

TEST_F(ScanTest, ZmapRetriesRecoverLostProbes) {
  netsim::DataPlane lossy(*world_, {0.4, 9});
  const auto d = reachable_cpe(*world_, 1000);
  const std::vector<net::Ipv6Address> targets(
      50, world_->device_address(d, 1000));
  Zmap6Scanner no_retry(lossy, {source(), 100000, 0, 3});
  Zmap6Scanner with_retry(lossy, {source(), 100000, 3, 3});
  int base = 0, retried = 0;
  for (const auto& r : no_retry.scan(targets, 1000)) base += r.responded;
  for (const auto& r : with_retry.scan(targets, 1000)) retried += r.responded;
  EXPECT_GT(retried, base);
}

TEST_F(ScanTest, YarrpReconstructsPath) {
  const auto d = reachable_cpe(*world_, 1000);
  const auto target = world_->device_address(d, 1000);
  const auto path = plane_->topology().path(source(), target, 1000);
  YarrpTracer yarrp(*plane_, {source(), 12, 50000, 4});
  const net::Ipv6Address targets[] = {target};
  const auto traces = yarrp.trace(targets, 1000);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0].destination_reached);
  for (std::size_t h = 0; h < path.size(); ++h) {
    if (!path[h].responds) continue;
    ASSERT_TRUE(traces[0].hop_responded[h]) << "hop " << h;
    EXPECT_EQ(traces[0].hops[h], path[h].address);
  }
}

TEST_F(ScanTest, YarrpDiscoveredIncludesHopsAndDestination) {
  const auto d = reachable_cpe(*world_, 1000);
  const auto target = world_->device_address(d, 1000);
  YarrpTracer yarrp(*plane_, {source(), 12, 50000, 5});
  const net::Ipv6Address targets[] = {target};
  const auto traces = yarrp.trace(targets, 1000);
  const auto found = YarrpTracer::discovered(traces);
  EXPECT_GE(found.size(), 2u);  // at least one hop + destination
  EXPECT_TRUE(std::find(found.begin(), found.end(), target) != found.end());
}

TEST_F(ScanTest, YarrpUnreachableTargetStillFindsRouters) {
  // A random address in a routed AS: the path answers, the target doesn't.
  const auto& as = world_->ases()[0];
  const auto target = net::Ipv6Address::from_u64(
      as.prefix_hi | (sim::kRegionSite << 28) | 0xdead00, 0x12345678);
  YarrpTracer yarrp(*plane_, {source(), 12, 50000, 6});
  const net::Ipv6Address targets[] = {target};
  const auto traces = yarrp.trace(targets, 1000);
  EXPECT_FALSE(traces[0].destination_reached);
  EXPECT_FALSE(YarrpTracer::discovered(traces).empty());
}

TEST_F(ScanTest, RoutedSlash48FractionScalesTargetCount) {
  const double full_count =
      static_cast<double>(world_->ases().size()) * 65536.0;
  const auto some = routed_slash48_targets(*world_, 0.05, 1);
  EXPECT_NEAR(static_cast<double>(some.size()), 0.05 * full_count,
              0.005 * full_count);
  // Every target is a ::1 and every target is unique.
  std::unordered_set<net::Ipv6Address> unique(some.begin(), some.end());
  EXPECT_EQ(unique.size(), some.size());
  for (std::size_t i = 0; i < some.size(); i += 1000) {
    EXPECT_EQ(some[i].lo64(), 1u);
  }
}

TEST_F(ScanTest, LowIidCandidates) {
  const net::Ipv6Prefix p64(net::Ipv6Address::from_u64(0xabc, 0), 64);
  const auto candidates = low_iid_candidates(std::span(&p64, 1));
  ASSERT_EQ(candidates.size(), 5u);
  for (const auto& c : candidates) {
    EXPECT_EQ(c.hi64(), 0xabcULL);
    EXPECT_LE(c.lo64(), 0x100u);
  }
}

TEST_F(ScanTest, SubnetSweepCandidates) {
  const net::Ipv6Prefix p48(
      net::Ipv6Address::from_u64(0x20010db800010000ULL, 0), 48);
  const auto candidates = subnet_sweep_candidates(std::span(&p48, 1), 4);
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_EQ(candidates[3].hi64(), 0x20010db800010003ULL);
  EXPECT_EQ(candidates[3].lo64(), 1u);
}

TEST_F(ScanTest, BackscannerDedupsWithinInterval) {
  Backscanner scanner(*plane_, {10 * util::kMinute, 0.0, 12, 1});
  const auto d = reachable_cpe(*world_, 1000);
  const auto client = world_->device_address(d, 1000);
  ntp::Observation obs{client, 1000, 0};
  scanner.observe(obs, source());
  scanner.observe(obs, source());  // same interval: ignored
  obs.time = 1000 + 11 * util::kMinute;  // next interval: probed again
  scanner.observe(obs, source());
  const auto report = scanner.finish();
  EXPECT_EQ(report.clients_probed, 2u);
  EXPECT_EQ(report.outcomes.size(), 2u);
  EXPECT_TRUE(report.outcomes[0].client_responded);
}

TEST_F(ScanTest, BackscannerFindsAliasedSlash64s) {
  Backscanner scanner(*plane_, {10 * util::kMinute, 0.0, 12, 2});
  // Observe a "client" inside a fully aliased datacenter /64.
  const auto prefixes = world_->aliased_datacenter_prefixes();
  ASSERT_FALSE(prefixes.empty());
  const auto client =
      net::Ipv6Address::from_u64(prefixes[0].address().hi64() | 1, 0xabcdef);
  scanner.observe({client, 5000, 1}, source());
  const auto report = scanner.finish();
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].random_responded);
  ASSERT_EQ(report.aliased_slash64s.size(), 1u);
  EXPECT_EQ(report.aliased_slash64s[0], net::slash64_of(client));
  EXPECT_EQ(report.responsive_random_addresses, 1u);
}

TEST_F(ScanTest, BackscannerRandomProbeMissesOrdinaryNetworks) {
  Backscanner scanner(*plane_, {10 * util::kMinute, 0.0, 12, 3});
  const auto d = reachable_cpe(*world_, 1000);
  scanner.observe({world_->device_address(d, 1000), 1000, 0}, source());
  const auto report = scanner.finish();
  EXPECT_FALSE(report.outcomes[0].random_responded);
  EXPECT_TRUE(report.aliased_slash64s.empty());
}

TEST_F(ScanTest, BackscannerOrderIndependent) {
  const auto d = reachable_cpe(*world_, 1000);
  const auto c1 = world_->device_address(d, 1000);
  const auto prefixes = world_->aliased_datacenter_prefixes();
  const auto c2 =
      net::Ipv6Address::from_u64(prefixes[0].address().hi64() | 2, 0x1111);

  Backscanner fwd(*plane_, {10 * util::kMinute, 0.0, 12, 4});
  fwd.observe({c1, 1000, 0}, source());
  fwd.observe({c2, 90000, 1}, source());
  const auto a = fwd.finish();

  Backscanner rev(*plane_, {10 * util::kMinute, 0.0, 12, 4});
  rev.observe({c2, 90000, 1}, source());
  rev.observe({c1, 1000, 0}, source());
  const auto b = rev.finish();

  EXPECT_EQ(a.clients_probed, b.clients_probed);
  EXPECT_EQ(a.clients_responded, b.clients_responded);
  EXPECT_EQ(a.aliased_slash64s, b.aliased_slash64s);
}

}  // namespace
}  // namespace v6::scan
