// Device model: everything the world knows about one simulated interface.
//
// A device's IPv6 address at any instant is a *pure function* of the device,
// the world's prefix-rotation state, and the simulated time (see
// sim/addressing.h). That makes collection a stateless sweep and lets the
// data plane answer reverse lookups without per-second state.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "net/mac.h"
#include "sim/types.h"
#include "util/sim_time.h"

namespace v6::sim {

// How (and whether) a mobile device hops between its home WiFi network and
// cellular carriers. Attachment is re-decided every kAttachEpoch.
struct MobilityProfile {
  bool mobile = false;
  // Home-country mobile carrier AS indices this device can attach to.
  // One entry for a typical user; several model the paper's "likely user
  // movement" class (e.g., dual-SIM or roaming between carriers).
  std::uint32_t carrier_as[3] = {0, 0, 0};
  // Position of this device in the corresponding carrier's subscriber
  // list (drives its cellular /64 slot).
  std::uint32_t carrier_pos[3] = {0, 0, 0};
  std::uint8_t carrier_count = 0;
  // Fraction of attach epochs spent on cellular rather than home WiFi.
  double cellular_fraction = 0.0;
  // Models the paper's "changing providers" class: a static device (IoT /
  // CPE-attached gadget) that moves to a different site — typically in
  // another AS of the same country — partway through the study.
  SiteId relocation_site = kNoSite;
  util::SimTime relocation_time = 0;
};

// Length of one mobility attachment epoch (how often a phone re-rolls
// which network it is on).
inline constexpr util::SimDuration kAttachEpoch = 8 * util::kHour;

// "End of time" for activity windows.
inline constexpr util::SimTime kForever =
    std::numeric_limits<util::SimTime>::max();

// When, and how, the device talks to the NTP Pool.
struct NtpBehavior {
  bool uses_pool = false;
  // Mean interval between NTP polls while online.
  util::SimDuration poll_interval = 6 * util::kHour;
  // Probability the device is online (and thus polls) in a given interval.
  double online_fraction = 1.0;
  // Packets per sync event: 1 for plain SNTP, 4-8 for ntpdate/iburst-style
  // clients. A burst rides one DNS resolution, so all of its packets hit
  // the same pool server seconds apart — the paper's corpus shows this as
  // addresses observed several times within a tiny lifetime.
  std::uint8_t burst = 1;
};

struct Device {
  DeviceId id = kNoDevice;
  DeviceKind kind = DeviceKind::kDesktop;
  IidStrategy strategy = IidStrategy::kRandomEphemeral;
  net::MacAddress mac;
  // Index into OuiRegistry::manufacturers().
  std::uint32_t maker_index = 0;
  // Customer site the device lives in; kNoSite for datacenter/cellular-only
  // devices.
  SiteId site = kNoSite;
  // Home AS (index into World::ases()).
  std::uint32_t as_index = 0;
  // Interface's IPv4 address (used by kIpv4Embedded only).
  std::uint32_t ipv4 = 0;
  // True when the site's CPE drops unsolicited inbound traffic to it.
  bool firewalled = false;
  // Whether the device answers ICMPv6 echo at all when reachable.
  bool responds_icmp = true;
  // Per-device deterministic seed (drives IIDs, schedules, mobility rolls).
  std::uint64_t seed = 0;
  // Activity window: the device exists on the network only inside
  // [active_start, active_end). Infrastructure runs for the whole study;
  // client devices churn — most are present only briefly, which is what
  // makes most corpus addresses (and most EUI-64 MACs) one-shot sightings.
  util::SimTime active_start = 0;
  util::SimTime active_end = kForever;
  MobilityProfile mobility;
  NtpBehavior ntp;
  // WiFi BSSID for devices with an access point (CPE); the geolocation
  // linkage target.
  std::optional<net::MacAddress> bssid;
};

}  // namespace v6::sim
