#include "analysis/dataset_compare.h"

#include <array>
#include <unordered_set>

namespace v6::analysis {

namespace {

// Per-shard coverage state for summarize_dataset's main scan. Sets merge
// by union and counters by sum — commutative aggregates, so the summary
// is independent of sharding.
struct CoverageState {
  std::unordered_set<std::uint32_t> asns;
  std::unordered_set<std::uint64_t> s48s;
  std::unordered_set<std::uint32_t> common_asns;
  std::unordered_set<std::uint64_t> common_s48s;
  std::uint64_t common_addresses = 0;
};

struct BaseState {
  std::unordered_set<std::uint32_t> asns;
  std::unordered_set<std::uint64_t> s48s;
};

template <typename T>
void union_into(std::unordered_set<T>& into, std::unordered_set<T>&& from) {
  into.insert(from.begin(), from.end());
}

}  // namespace

DatasetSummary summarize_dataset(const std::string& name,
                                 const hitlist::Corpus& corpus,
                                 const sim::World& world,
                                 const hitlist::Corpus* base,
                                 const AnalysisConfig& config,
                                 std::vector<AnalysisStageStats>* stats) {
  DatasetSummary summary;
  summary.name = name;
  summary.addresses = corpus.size();

  // Base-dataset coverage for the "common" columns (its own scan; the
  // main scan below reads the result concurrently, but read-only).
  BaseState base_cov;
  if (base != nullptr) {
    base_cov = scan_corpus<BaseState>(
        *base, config, "summarize_dataset/base", [] { return BaseState(); },
        [&world](BaseState& s, const hitlist::AddressRecord& rec) {
          if (const auto as_index = world.as_index_of(rec.address)) {
            s.asns.insert(*as_index);
          }
          s.s48s.insert(rec.address.hi64() >> 16);
        },
        [](BaseState& into, BaseState&& from) {
          union_into(into.asns, std::move(from.asns));
          union_into(into.s48s, std::move(from.s48s));
        },
        stats);
  }

  const auto cov = scan_corpus<CoverageState>(
      corpus, config, "summarize_dataset", [] { return CoverageState(); },
      [&](CoverageState& s, const hitlist::AddressRecord& rec) {
        const std::uint64_t s48 = rec.address.hi64() >> 16;
        s.s48s.insert(s48);
        if (const auto as_index = world.as_index_of(rec.address)) {
          s.asns.insert(*as_index);
          if (base != nullptr && base_cov.asns.contains(*as_index)) {
            s.common_asns.insert(*as_index);
          }
        }
        if (base != nullptr) {
          if (base->find(rec.address) != nullptr) ++s.common_addresses;
          if (base_cov.s48s.contains(s48)) s.common_s48s.insert(s48);
        }
      },
      [](CoverageState& into, CoverageState&& from) {
        union_into(into.asns, std::move(from.asns));
        union_into(into.s48s, std::move(from.s48s));
        union_into(into.common_asns, std::move(from.common_asns));
        union_into(into.common_s48s, std::move(from.common_s48s));
        into.common_addresses += from.common_addresses;
      },
      stats);

  summary.asns = cov.asns.size();
  summary.slash48s = cov.s48s.size();
  summary.common_addresses = cov.common_addresses;
  summary.common_asns = cov.common_asns.size();
  summary.common_slash48s = cov.common_s48s.size();
  summary.addrs_per_slash48 =
      summary.slash48s == 0
          ? 0.0
          : static_cast<double>(summary.addresses) /
                static_cast<double>(summary.slash48s);
  return summary;
}

std::vector<std::pair<sim::AsType, double>> as_type_fractions(
    const hitlist::Corpus& corpus, const sim::World& world,
    const AnalysisConfig& config, std::vector<AnalysisStageStats>* stats) {
  struct TypeCounts {
    std::array<std::uint64_t, 5> counts{};
    std::uint64_t total = 0;
  };
  const auto tc = scan_corpus<TypeCounts>(
      corpus, config, "as_type_fractions", [] { return TypeCounts(); },
      [&world](TypeCounts& s, const hitlist::AddressRecord& rec) {
        const auto as_index = world.as_index_of(rec.address);
        if (!as_index) return;
        ++s.counts[static_cast<std::size_t>(world.ases()[*as_index].type)];
        ++s.total;
      },
      [](TypeCounts& into, TypeCounts&& from) {
        for (std::size_t i = 0; i < into.counts.size(); ++i) {
          into.counts[i] += from.counts[i];
        }
        into.total += from.total;
      },
      stats);
  std::vector<std::pair<sim::AsType, double>> out;
  for (std::size_t i = 0; i < tc.counts.size(); ++i) {
    out.emplace_back(static_cast<sim::AsType>(i),
                     tc.total == 0 ? 0.0
                                   : static_cast<double>(tc.counts[i]) /
                                         static_cast<double>(tc.total));
  }
  return out;
}

}  // namespace v6::analysis
