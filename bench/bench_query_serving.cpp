// Hitlist-as-a-service: mixed read/ingest throughput of the epoch-snapshot
// QueryService, with the per-epoch bit-identity gate checked on every row.
//
// Grid: reader threads {1, 2, 4, 8} hammer point//48-density//64-entropy/
// OUI-risk queries while stage-1 collection ingests live on a background
// thread, swapping a new immutable snapshot at every epoch barrier. After
// ingest joins, a pure-read phase measures lookups/sec against the frozen
// final epoch (the millions-of-lookups/sec headline). For every reader
// count the published (epoch, as_of, records, digest) sequence must be
// bit-identical to the 1-reader reference — readers can never perturb
// what gets served — and the bench exits nonzero if any row differs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "analysis/scan_source.h"
#include "bench_common.h"
#include "net/eui64.h"
#include "obs/cluster.h"
#include "serve/query_service.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace {

using namespace v6;

struct EpochRow {
  std::uint64_t epoch = 0;
  util::SimTime as_of = 0;
  std::uint64_t records = 0;
  std::uint64_t digest = 0;
  bool operator==(const EpochRow&) const = default;
};

std::vector<EpochRow> epoch_rows(const serve::QueryService& service) {
  std::vector<EpochRow> rows;
  for (const auto& snap : service.retained()) {
    rows.push_back({snap->epoch(), snap->as_of(), snap->records(),
                    snap->digest()});
  }
  return rows;
}

core::RunOptions serve_options(util::SimDuration epoch_interval) {
  core::RunOptions options;
  options.campaigns = false;
  options.backscan = false;
  options.analysis = false;
  options.serve.enabled = true;
  options.serve.epoch_interval = epoch_interval;
  options.serve.retain_epochs = 64;
  return options;
}

// One reader's deterministic query mix: seeded per (reader, iteration), a
// rotation of the four query families over pseudorandom keys. Throughput
// is dominated by the binary searches, which cost the same for hits and
// misses.
std::uint64_t run_reader(const serve::QueryService& service,
                         std::uint64_t seed,
                         const std::atomic<bool>& done) {
  util::Rng rng(seed);
  std::uint64_t issued = 0;
  while (!done.load(std::memory_order_acquire)) {
    const auto snap = service.current();
    if (!snap) continue;
    // Epoch-pinned batch: one pointer pin amortized over 64 queries.
    for (int i = 0; i < 16; ++i) {
      const net::Ipv6Address probe =
          net::Ipv6Address::from_u64(rng.next(), rng.next());
      (void)snap->contains(probe);
      (void)snap->slash48_density(probe);
      (void)snap->slash64(probe);
      (void)snap->oui_risk(net::Oui(static_cast<std::uint32_t>(
          rng.next() & 0xffffff)));
      issued += 4;
    }
    service.count_queries(serve::QueryKind::kPoint, 16);
    service.count_queries(serve::QueryKind::kDensity48, 16);
    service.count_queries(serve::QueryKind::kEntropy64, 16);
    service.count_queries(serve::QueryKind::kOuiRisk, 16);
  }
  return issued;
}

}  // namespace

int main() {
  auto config = bench::bench_config();
  // Every row re-runs the full collection window; use a smaller world.
  config.world.total_sites =
      std::min<std::uint32_t>(config.world.total_sites, 4000);
  config.world.study_duration = std::min<util::SimDuration>(
      config.world.study_duration, 120 * util::kDay);
  bench::print_banner("Query serving: epochs under live ingest", config);

  const util::SimDuration epoch_interval = std::max<util::SimDuration>(
      config.world.study_duration / 6, util::kDay);

  bench::BenchJson json = bench::scaled_bench_json("bench_query_serving");
  // BenchJson already records the requested env scale; these are the
  // values after this bench's own caps.
  json.integer("capped_sites", config.world.total_sites);
  json.integer("capped_days",
               static_cast<std::uint64_t>(config.world.study_duration /
                                          util::kDay));
  json.integer("epoch_interval_days",
               static_cast<std::uint64_t>(epoch_interval / util::kDay));

  std::vector<EpochRow> reference;
  bool all_identical = true;
  double best_read_qps = 0;

  for (const unsigned readers : {1u, 2u, 4u, 8u}) {
    core::Study study(config);
    serve::QueryService& service = study.query_service();

    std::atomic<bool> done{false};
    const auto t0 = std::chrono::steady_clock::now();
    std::thread ingest([&] {
      study.run(serve_options(epoch_interval));
      done.store(true, std::memory_order_release);
    });

    std::vector<std::thread> pool;
    std::vector<std::uint64_t> issued(readers, 0);
    for (unsigned r = 0; r < readers; ++r) {
      pool.emplace_back([&, r] {
        issued[r] = run_reader(service, 0x5e8ef + r, done);
      });
    }
    ingest.join();
    for (auto& t : pool) t.join();
    const double mixed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::uint64_t mixed_queries = 0;
    for (const std::uint64_t n : issued) mixed_queries += n;

    // Identity gate: the served epoch sequence is a pure function of the
    // study, never of the reader schedule racing it.
    const std::vector<EpochRow> rows = epoch_rows(service);
    if (readers == 1) reference = rows;
    const bool identical = rows == reference;
    all_identical = all_identical && identical;

    // Pure-read phase: the frozen final epoch, fixed total volume.
    const auto snap = service.current();
    constexpr std::uint64_t kReadTotal = 2'000'000;
    const std::uint64_t per_thread = kReadTotal / readers;
    const auto r0 = std::chrono::steady_clock::now();
    std::vector<std::thread> readers_only;
    for (unsigned r = 0; r < readers; ++r) {
      readers_only.emplace_back([&, r] {
        util::Rng rng(0xbeef + r);
        for (std::uint64_t i = 0; i < per_thread / 4; ++i) {
          const net::Ipv6Address probe =
              net::Ipv6Address::from_u64(rng.next(), rng.next());
          (void)snap->contains(probe);
          (void)snap->slash48_density(probe);
          (void)snap->slash64(probe);
          (void)snap->oui_risk(net::Oui(static_cast<std::uint32_t>(
              rng.next() & 0xffffff)));
        }
      });
    }
    for (auto& t : readers_only) t.join();
    const double read_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
            .count();
    const double read_qps_total =
        read_s > 0 ? static_cast<double>((per_thread / 4) * 4 * readers) /
                         read_s
                   : 0;
    best_read_qps = std::max(best_read_qps, read_qps_total);

    std::printf(
        "readers %u: %llu epochs, %s mixed queries in %.2fs (%.2fM q/s "
        "during ingest), pure-read %.2fM q/s, identity %s\n",
        readers, static_cast<unsigned long long>(service.epochs_published()),
        util::with_commas(mixed_queries).c_str(), mixed_s,
        mixed_s > 0 ? static_cast<double>(mixed_queries) / mixed_s / 1e6 : 0,
        read_qps_total / 1e6, identical ? "ok" : "FAIL");

    char key[64];
    std::snprintf(key, sizeof(key), "readers_%u_mixed_per_sec", readers);
    json.number(key, mixed_s > 0
                         ? static_cast<double>(mixed_queries) / mixed_s
                         : 0);
    std::snprintf(key, sizeof(key), "readers_%u_read_per_sec", readers);
    json.number(key, read_qps_total);
    std::snprintf(key, sizeof(key), "readers_%u_bit_identical", readers);
    json.boolean(key, identical);

    if (readers == 1) {
      json.integer("epochs", service.epochs_published());
      json.integer("final_records", rows.empty() ? 0 : rows.back().records);
      char digest[32];
      std::snprintf(digest, sizeof(digest), "%016llx",
                    rows.empty() ? 0ull
                                 : static_cast<unsigned long long>(
                                       rows.back().digest));
      json.text("final_digest", digest);
      const auto current = service.current();
      json.integer("slash48_keys", current ? current->slash48_count() : 0);
      json.integer("slash64_keys", current ? current->slash64_count() : 0);
      json.integer("oui_keys", current ? current->oui_count() : 0);
      json.integer("snapshot_bytes", current ? current->memory_bytes() : 0);

      // Serve-side latency percentiles: a fixed query volume through the
      // instrumented service entry points (the reader loops above query
      // the pinned snapshot directly and bypass the latency histograms).
      // The percentile values are wall-clock — the "wall" in the key
      // names keeps them out of bench_diff's deterministic-key set.
      util::Rng lat_rng(0x1a7e);
      constexpr std::uint64_t kLatencyQueries = 20'000;
      for (std::uint64_t i = 0; i < kLatencyQueries; ++i) {
        const net::Ipv6Address probe =
            net::Ipv6Address::from_u64(lat_rng.next(), lat_rng.next());
        (void)service.point(probe);
        (void)service.slash48_density(probe);
        (void)service.slash64_entropy(probe);
        (void)service.oui_risk(net::Oui(
            static_cast<std::uint32_t>(lat_rng.next() & 0xffffff)));
      }
      json.integer("latency_queries_per_kind", kLatencyQueries);
      const obs::Snapshot metrics = study.metrics_registry().snapshot();
      for (const auto& sample : metrics.samples) {
        if (sample.name != "v6_serve_latency_us" ||
            sample.labels.size() != 1) {
          continue;
        }
        const std::string& kind = sample.labels[0].second;
        const obs::HistogramSummary summary =
            obs::summarize_histogram(sample.histogram);
        char key[64];
        std::printf(
            "serve latency %-9s p50 %.2fus p90 %.2fus p99 %.2fus "
            "(%llu observations)\n",
            kind.c_str(), summary.p50.value_or(0), summary.p90.value_or(0),
            summary.p99.value_or(0),
            static_cast<unsigned long long>(summary.count));
        std::snprintf(key, sizeof(key), "latency_%s_p50_wall_us",
                      kind.c_str());
        json.number(key, summary.p50.value_or(0));
        std::snprintf(key, sizeof(key), "latency_%s_p90_wall_us",
                      kind.c_str());
        json.number(key, summary.p90.value_or(0));
        std::snprintf(key, sizeof(key), "latency_%s_p99_wall_us",
                      kind.c_str());
        json.number(key, summary.p99.value_or(0));
      }
    }
  }

  json.boolean("all_bit_identical", all_identical);
  json.number("best_read_per_sec", best_read_qps);
  json.write("BENCH_query_serving.json");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: served epochs differ across reader thread counts\n");
    return 1;
  }
  std::printf("per-epoch answers bit-identical at every reader count\n");
  return 0;
}
